package mirage

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mirage/internal/exp"
	"mirage/internal/sim"
	"mirage/internal/vaxmodel"
	"mirage/internal/wire"
)

// One benchmark per paper table/figure (DESIGN.md's experiment index
// E1–E11). Each runs the experiment on the calibrated simulator and
// reports the reproduced quantities as custom metrics, so
// `go test -bench .` regenerates the evaluation. Wall time per
// iteration is the simulator's speed, not the paper's measurement;
// the custom metrics carry those.

func BenchmarkE1ComponentTimings(b *testing.B) {
	var r exp.ComponentTimingsResult
	for i := 0; i < b.N; i++ {
		r = exp.ComponentTimings()
	}
	b.ReportMetric(float64(r.ShortRTT.Microseconds())/1000, "shortRTT_ms")
	b.ReportMetric(float64(r.PagePlusReply.Microseconds())/1000, "pageReply_ms")
}

func BenchmarkE2Table3RemotePageFetch(b *testing.B) {
	var r exp.Table3Result
	for i := 0; i < b.N; i++ {
		r = exp.Table3()
	}
	b.ReportMetric(float64(r.MeasuredTotal.Microseconds())/1000, "fetch_ms")
}

func BenchmarkE3SingleSiteYield(b *testing.B) {
	var r exp.SingleSiteResult
	for i := 0; i < b.N; i++ {
		r = exp.SingleSiteWorstCase(5 * time.Second)
	}
	b.ReportMetric(r.NoYield, "busywait_cyc/s")
	b.ReportMetric(r.WithYield, "yield_cyc/s")
	b.ReportMetric(r.Speedup, "speedup_x")
}

func BenchmarkE4Figure7WorstCase(b *testing.B) {
	for _, ticks := range []int{0, 2, 6} {
		ticks := ticks
		b.Run(fmt.Sprintf("delta=%dticks", ticks), func(b *testing.B) {
			var pts []exp.Figure7Point
			for i := 0; i < b.N; i++ {
				pts = exp.Figure7(10*time.Second, []int{ticks})
			}
			b.ReportMetric(pts[0].Yield, "yield_cyc/s")
			b.ReportMetric(pts[0].NoYield, "busywait_cyc/s")
		})
	}
}

func BenchmarkE5Figure8Representative(b *testing.B) {
	for _, d := range []time.Duration{0, 120 * time.Millisecond, 600 * time.Millisecond, 1200 * time.Millisecond} {
		d := d
		b.Run(fmt.Sprintf("delta=%v", d), func(b *testing.B) {
			var pts []exp.Figure8Point
			for i := 0; i < b.N; i++ {
				pts = exp.Figure8(exp.CountersConfig{Duration: 10 * time.Second}, []time.Duration{d})
			}
			b.ReportMetric(pts[0].InsnPerSec, "insn/s")
		})
	}
}

func BenchmarkE6Thrashing(b *testing.B) {
	var pts []exp.ThrashPoint
	for i := 0; i < b.N; i++ {
		pts = exp.ThrashingAmelioration(10*time.Second, []int{0, 6})
	}
	b.ReportMetric(pts[0].BystanderUnits, "bystander_d0_units/s")
	b.ReportMetric(pts[1].BystanderUnits, "bystander_d6_units/s")
}

func BenchmarkE7InvalidationAblation(b *testing.B) {
	var pts []exp.PolicyPoint
	for i := 0; i < b.N; i++ {
		pts = exp.InvalidationAblation(exp.CountersConfig{Duration: 5 * time.Second},
			[]time.Duration{600 * time.Millisecond})
	}
	for _, p := range pts {
		b.ReportMetric(p.InsnPerSec, p.Policy.String()+"_insn/s")
	}
}

func BenchmarkE8DynamicDelta(b *testing.B) {
	var r exp.DynamicDeltaResult
	for i := 0; i < b.N; i++ {
		r = exp.DynamicDelta(exp.CountersConfig{Duration: 5 * time.Second})
	}
	b.ReportMetric(r.FixedZero, "fixed0_insn/s")
	b.ReportMetric(r.FixedPeak, "fixed600_insn/s")
	b.ReportMetric(r.Adaptive, "adaptive_insn/s")
}

func BenchmarkE9TestAndSet(b *testing.B) {
	var r exp.TASResult
	for i := 0; i < b.N; i++ {
		r = exp.TestAndSetScenario(5*time.Second, []int{0, 2})
	}
	b.ReportMetric(r.Solo, "solo_crit/s")
	b.ReportMetric(r.Points[0].CritPerSec, "tested_d0_crit/s")
}

func BenchmarkE10Baseline(b *testing.B) {
	var pts []exp.BaselinePoint
	for i := 0; i < b.N; i++ {
		pts = exp.BaselineComparison(5 * time.Second)
	}
	for _, p := range pts {
		name := strings.ReplaceAll(p.System+"/"+p.Workload, " ", "")
		b.ReportMetric(p.Throughput, name)
	}
}

func BenchmarkE11RemapCost(b *testing.B) {
	var pts []exp.RemapPoint
	for i := 0; i < b.N; i++ {
		pts = exp.RemapCost([]int{1, 256})
	}
	slope := (pts[1].DispatchCost - pts[0].DispatchCost) / time.Duration(pts[1].Pages-pts[0].Pages)
	b.ReportMetric(float64(slope.Nanoseconds())/1000, "remap_us/page")
}

// --- engine micro-benchmarks ---

// BenchmarkWireCodec measures the TCP wire format.
func BenchmarkWireCodec(b *testing.B) {
	m := wire.Msg{
		Kind: wire.KPageSend, Mode: wire.Write, Seg: 1, Page: 2, From: 0,
		Delta: 33 * time.Millisecond, Data: make([]byte, vaxmodel.PageSize),
	}
	buf := wire.Encode(nil, &m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.Encode(buf[:0], &m)
		if _, _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkSimKernel measures raw event throughput of the simulator.
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	k.After(time.Microsecond, tick)
	b.ResetTimer()
	k.Run()
}

// BenchmarkLiveLocalAccess measures the live library's fast path: an
// access to a page already held by the site.
func BenchmarkLiveLocalAccess(b *testing.B) {
	c, err := NewCluster(1, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Site(0).Shmget(1, 4096, Create, 0o600)
	seg, _ := c.Site(0).Attach(id, false)
	seg.SetUint32(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seg.Uint32(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLivePageMigration measures the live protocol's full
// cross-site write handoff (inproc transport).
func BenchmarkLivePageMigration(b *testing.B) {
	c, err := NewCluster(2, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Site(0).Shmget(1, 512, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	d, _ := c.Site(1).Attach(id, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.SetUint32(0, uint32(i)); err != nil {
			b.Fatal(err)
		}
		if err := d.SetUint32(0, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2, "handoffs/op")
}
