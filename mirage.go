// Package mirage is a coherent distributed shared memory library: a
// reimplementation of the Mirage DSM design (Fleisch & Popek, 1989) as
// an embeddable Go runtime.
//
// Mirage gives a set of sites a System V style shared-memory interface
// with sequential coherence at page granularity: a write to an address
// is visible to every subsequent read of that address regardless of
// site. One site per segment — the creating site — acts as the
// *library site*, queueing and sequentially processing page requests;
// the site holding a page's most recent copy is its *clock site* and
// enforces the page's *time window Δ*, during which the holder cannot
// be interrupted. Δ is the design's tuning knob: it trades per-page
// fairness against thrashing control (large Δ ameliorates ping-ponging
// at the cost of latency for competing sites).
//
// The package runs the protocol engine over real transports
// (in-process by default, TCP optionally) and real time. The same
// engine also powers the calibrated VAX/Ethernet simulator used by the
// benchmarks that reproduce the paper's evaluation; see DESIGN.md and
// EXPERIMENTS.md at the repository root.
//
// Basic use:
//
//	c, _ := mirage.NewCluster(3, mirage.Options{Delta: 20 * time.Millisecond})
//	defer c.Close()
//
//	s0 := c.Site(0)
//	id, _ := s0.Shmget(0x1234, 8192, mirage.Create, 0o600)
//	seg, _ := s0.Attach(id, false)
//	seg.SetUint32(0, 42)
//
//	s1 := c.Site(1)
//	remote, _ := s1.Attach(id, false)
//	v, _ := remote.Uint32(0) // 42, fetched coherently
package mirage

import (
	"errors"
	"time"

	"mirage/internal/chaos"
	"mirage/internal/core"
	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/vaxmodel"
)

// MaxSites is the largest cluster NewCluster accepts: the copyset
// representation tracks at most this many sites per page.
const MaxSites = mmu.MaxSites

// Key names a segment cluster-wide (System V key_t).
type Key = mem.Key

// SegID identifies a created segment (System V shmid).
type SegID = mem.SegID

// IPCPrivate always creates a fresh private segment.
const IPCPrivate = mem.IPCPrivate

// Shmget flags.
const (
	// Create makes the segment if the key is unbound.
	Create = mem.Create
	// Exclusive with Create fails if the key exists.
	Exclusive = mem.Exclusive
)

// InvalPolicy selects the clock site's handling of an invalidation
// arriving inside an unexpired window.
type InvalPolicy = core.InvalPolicy

// Invalidation policies (see the paper's §7.1: the prototype retried;
// the other two are its proposed optimizations).
const (
	PolicyRetry      = core.PolicyRetry
	PolicyHonorClose = core.PolicyHonorClose
	PolicyQueue      = core.PolicyQueue
)

// Reliability configures the optional ARQ layer: per-peer sequencing,
// ack-driven retransmission with exponential backoff, and degraded
// grants (accessors get an error instead of hanging when a peer stays
// unreachable past the retry budget). See core.Reliability for the
// field defaults.
type Reliability = core.Reliability

// Failover configures library-site failover: when a segment's library
// site stays unreachable past the reliability layer's retry budget, a
// deterministic successor (the next live site by number) reconstructs
// the library's page records by querying the surviving holders, bumps
// the segment's library epoch — carried on every subsequent protocol
// message and trace event, fencing the deposed library's stragglers —
// and resumes granting. Requires Options.Reliability. The zero value is
// usable: NewCluster fills in the cluster size, and RecoverTimeout (the
// bound on waiting for holder reports) defaults per core.Failover.
type Failover = core.Failover

// Placement configures voluntary library migration: each library site
// tracks per-segment request demand in sliding windows and, when a
// remote site dominates a window (and the runner-up is far enough
// behind that the traffic is not ping-pong write sharing), hands the
// library role to it using the same epoch-fenced handoff machinery as
// failover — but with the page records transferred exactly instead of
// reconstructed, since the outgoing library is alive and quiescent.
// Requires Options.Failover (and therefore Reliability). The zero
// value takes the defaults documented on core.Placement; see
// docs/PLACEMENT.md for the protocol and policy guidance.
type Placement = core.Placement

// Replication configures consensus-replicated library records: each
// segment's library mirrors every page-record mutation to the Replicas
// sites after it in ID order before the mutation is acknowledged, so a
// library-site crash is survived by electing a follower that installs
// the record from its replicated log — no cluster-wide holder
// interrogation, no reconstruction pause. Requires Options.Failover
// (and therefore Reliability); when the follower quorum is lost the
// takeover falls back to failover's holder rebuild. NewCluster fills in
// the cluster size. See docs/REPLICATION.md.
type Replication = core.Replication

// AutoDelta configures the built-in per-page closed-loop Δ controller:
// the library watches each page's denial signals (count and
// remaining-window EWMA of KBusy replies) and its write-sharing
// pattern, and walks Δ with an AIMD policy — additive growth while
// denials are cheap and the writer is stable, multiplicative shrink
// when denial cost or write-sharing spikes — clamped to [Min, Max] and
// rate-limited per page. The zero value takes the defaults documented
// on core.AutoDelta. Tuned values survive role movement: they ship in
// migration records, replicate through the record log, and are
// restored from holder-reported windows on failover. See DESIGN.md §16
// and docs/TUNING.md.
type AutoDelta = core.AutoDelta

// Replication acknowledgement disciplines (Replication.SyncMode).
const (
	// SyncQuorum gates each mutation on a majority of the replication
	// group, leader included — the default.
	SyncQuorum = core.SyncQuorum
	// SyncAll gates each mutation on every live follower, shrinking the
	// election quorum to any single group member.
	SyncAll = core.SyncAll
)

// FaultPlan is a deterministic, seeded fault-injection plan applied to
// the cluster's transport fabric (drops, duplicates, delays, reorders,
// partitions, crash windows). Build one with ParseFaultPlan or
// literally; see internal/chaos for the grammar.
type FaultPlan = chaos.Plan

// ChaosStats are the injector's cumulative counters.
type ChaosStats = chaos.Stats

// ParseFaultPlan parses the chaos plan grammar, e.g.
// "seed=42; drop p=0.05 kind=page-send; delay p=0.3 max=20ms;
// partition sites=1,2 from=2s until=3s".
func ParseFaultPlan(s string) (*FaultPlan, error) { return chaos.Parse(s) }

// Obs is a cluster-wide observability sink: a sharded metrics registry
// counting every coherence event (faults, invalidations, Δ-window
// denials, retransmits, chaos verdicts, flush batches) plus an optional
// structured protocol-event tracer. Attach one via Options.Obs; nil —
// the default — keeps every hot path at a single pointer test and zero
// allocations. See docs/OBSERVABILITY.md for the event vocabulary, the
// JSONL trace schema, and metric names.
type Obs = obs.Obs

// TraceEvent is one structured protocol event: a page fault, message
// send/receive, grant-cycle boundary, Δ denial, page state transition,
// retransmission, or chaos verdict. Live clusters timestamp events with
// wall-clock time since cluster start; the simulator uses virtual time,
// which makes its traces bit-reproducible.
type TraceEvent = obs.Event

// NewObs builds an observability sink with metrics and an in-memory
// bounded trace buffer (obs.DefaultBufferCap events; older events are
// kept, new ones dropped and counted once full).
func NewObs() *Obs { return obs.New() }

// Errors surfaced by segment handles.
var (
	// ErrDetached reports use of a detached or destroyed segment.
	ErrDetached = errors.New("mirage: segment detached")
	// ErrBounds reports an access outside the segment.
	ErrBounds = errors.New("mirage: access outside segment")
	// ErrReadOnly reports a write through a read-only attach.
	ErrReadOnly = errors.New("mirage: write to read-only attach")
	// ErrClosed reports use of a closed cluster.
	ErrClosed = errors.New("mirage: cluster closed")
	// ErrUnreachable reports a degraded grant: a peer needed to satisfy
	// the access stayed unreachable past the reliability layer's retry
	// budget. The access had no effect; retry once the fault heals.
	ErrUnreachable = core.ErrUnreachable
	// ErrNegativeDelta reports a rejected attempt to set a negative Δ
	// window (Site.SetSegmentDelta).
	ErrNegativeDelta = core.ErrNegativeDelta
	// ErrTooManySites reports a cluster sized beyond MaxSites, the
	// copyset capacity. Rejected explicitly — silently truncating the
	// reader record would corrupt coherence.
	ErrTooManySites = mmu.ErrTooManySites
)

// Re-exported registry errors, so callers can errors.Is against the
// System V failure modes.
var (
	ErrExists     = mem.ErrExists
	ErrNotFound   = mem.ErrNotFound
	ErrInvalid    = mem.ErrInvalid
	ErrPermission = mem.ErrPermission
	ErrRemoved    = mem.ErrRemoved
)

// Options configure a cluster. The zero value is usable.
type Options struct {
	// PageSize is the coherence unit in bytes; default 512, the
	// paper's page size. Must be positive if set.
	PageSize int
	// Delta is the default time window granted with each page. Zero
	// means pages may be invalidated as soon as a competing request is
	// processed; negative is rejected by NewCluster. Per-page windows
	// can be changed later with Site.SetSegmentDelta, or tuned online
	// by AutoDelta.
	Delta time.Duration
	// MaxSegmentBytes bounds segment size; default 16 MiB.
	MaxSegmentBytes int
	// Policy is the invalidation policy; default PolicyRetry (the
	// paper prototype's two-attempt behaviour). PolicyQueue is usually
	// the better choice for new deployments.
	Policy InvalPolicy
	// TCP, when true, carries protocol traffic over TCP loopback
	// sockets instead of in-process channels. The cluster still shares
	// one segment name space (the control plane is in-process); the
	// data plane — page transfers, invalidations, window traffic — is
	// on the wire.
	TCP bool
	// TCPAddr is the listen address pattern for TCP mode; default
	// "127.0.0.1:0" (ephemeral ports).
	TCPAddr string
	// Reliability, when non-nil, enables the ARQ layer. nil keeps the
	// paper-faithful engine, which assumes a lossless ordered fabric.
	Reliability *Reliability
	// Failover, when non-nil, enables library-site failover on top of
	// the ARQ layer: segments survive a library-site crash by electing
	// a successor that rebuilds the page records from surviving
	// holders. Requires Reliability. &Failover{} takes the defaults.
	Failover *Failover
	// Placement, when non-nil, enables voluntary library migration on
	// top of failover: a segment's library follows its demand, rehoming
	// itself to a site that dominates the request stream. Requires
	// Failover. &Placement{} takes the defaults.
	Placement *Placement
	// Replication, when non-nil with Replicas > 0, replicates each
	// segment's library record to follower sites ahead of every
	// acknowledged mutation, making library takeover pauseless (the
	// elected follower installs from its log instead of rebuilding from
	// holders). Requires Failover. &Replication{Replicas: 2} is typical.
	Replication *Replication
	// AutoDelta, when non-nil, lets each segment's library tune every
	// page's Δ online instead of granting the fixed Options.Delta: the
	// closed loop starts from Delta (clamped into the controller's
	// band) and walks it per observed sharing pattern. &AutoDelta{}
	// takes the defaults. When verifying traced AutoDelta runs, pass
	// AutoDelta.Min as the checker's Delta — the sound lower bound on
	// every granted window.
	AutoDelta *AutoDelta
	// Chaos, when non-nil, injects faults into the transport fabric per
	// the plan. Requires Reliability: the lossless-fabric engine has no
	// recovery paths for a lossy mesh.
	Chaos *FaultPlan
	// InvalFanout, when ≥ 2, invalidates large reader sets through a
	// k-ary fan-out tree (interior holder sites relay orders and return
	// aggregated acks) instead of one unicast order per reader. The
	// default (0) keeps the paper's flat unicast. See DESIGN.md §13.
	InvalFanout int
	// Obs, when non-nil, attaches an observability sink: protocol
	// counters and latency histograms for every site, and — when the
	// sink carries a tracer, as NewObs's does — a structured event
	// timeline of page faults, grant cycles, invalidations, and Δ-window
	// denials. nil (the default) disables observability entirely; the
	// protocol hot paths then cost one pointer test and zero
	// allocations.
	Obs *Obs
	// Check, when true, records a per-access operation event — offset,
	// length, and a content digest — into the trace for every segment
	// read and write, giving the coherence checker (VerifyTrace) the
	// read-your-writes oracle in addition to the protocol events.
	// Requires Obs with a tracer (NewObs provides one). Off by default:
	// op events add trace volume proportional to data accesses.
	Check bool
	// DebugAddr, when non-empty, serves debug HTTP on the address
	// (e.g. "127.0.0.1:0" for an ephemeral port): /debug/obs (metrics
	// snapshot as JSON), /debug/obs/trace (the trace buffer as JSONL),
	// plus the standard expvar and net/http/pprof endpoints. Requires
	// Obs. The bound address is available from Cluster.DebugAddr.
	DebugAddr string
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = vaxmodel.PageSize
	}
	if o.MaxSegmentBytes == 0 {
		o.MaxSegmentBytes = 16 << 20
	}
	if o.TCPAddr == "" {
		o.TCPAddr = "127.0.0.1:0"
	}
	return o
}
