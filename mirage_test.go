package mirage

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestCluster(t *testing.T, n int, opts Options) *Cluster {
	t.Helper()
	c, err := NewCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterSizeValidation(t *testing.T) {
	if _, err := NewCluster(0, Options{}); err == nil {
		t.Fatal("size 0 should fail")
	}
	if _, err := NewCluster(MaxSites+1, Options{}); !errors.Is(err, ErrTooManySites) {
		t.Fatalf("size %d: want ErrTooManySites, got %v", MaxSites+1, err)
	}
	// 65 sites used to be rejected; the copyset spill form lifted that.
	c, err := NewCluster(65, Options{})
	if err != nil {
		t.Fatalf("size 65 should be accepted now: %v", err)
	}
	c.Close()
}

func TestLocalReadWrite(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	s := c.Site(0)
	id, err := s.Shmget(1, 4096, Create, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := s.Attach(id, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.SetUint32(100, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	v, err := seg.Uint32(100)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xCAFEBABE {
		t.Fatalf("got %#x", v)
	}
	if seg.Size() != 4096 || seg.PageSize() != 512 || seg.ID() != id {
		t.Fatalf("metadata: %d %d %d", seg.Size(), seg.PageSize(), seg.ID())
	}
}

func TestCrossSiteCoherence(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	id, err := c.Site(0).Shmget(7, 2048, Create, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Site(0).Attach(id, false)
	b, _ := c.Site(1).Attach(id, false)
	d, _ := c.Site(2).Attach(id, false)

	if err := a.SetUint32(0, 11); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Uint32(0); v != 11 {
		t.Fatalf("site1 read %d", v)
	}
	if err := d.SetUint32(0, 22); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Uint32(0); v != 22 {
		t.Fatalf("site0 read %d", v)
	}
	if v, _ := b.Uint32(0); v != 22 {
		t.Fatalf("site1 read %d", v)
	}
}

func TestBulkDataAcrossPages(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	id, _ := c.Site(0).Shmget(7, 8192, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	b, _ := c.Site(1).Attach(id, false)

	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := a.WriteAt(data, 123); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5000)
	if err := b.ReadAt(got, 123); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("bulk data corrupted crossing sites and pages")
	}
}

func TestReadOnlyAttach(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	ro, _ := c.Site(1).Attach(id, true)
	a.SetUint32(0, 9)
	if v, _ := ro.Uint32(0); v != 9 {
		t.Fatalf("ro read %d", v)
	}
	if err := ro.SetUint32(0, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
}

func TestBoundsAndDetachErrors(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	id, _ := c.Site(0).Shmget(7, 100, Create, 0o600)
	seg, _ := c.Site(0).Attach(id, false)
	if err := seg.WriteAt([]byte{1}, 100); !errors.Is(err, ErrBounds) {
		t.Fatalf("err = %v", err)
	}
	if err := seg.ReadAt(make([]byte, 4), -1); !errors.Is(err, ErrBounds) {
		t.Fatalf("err = %v", err)
	}
	if err := seg.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := seg.SetUint32(0, 1); !errors.Is(err, ErrDetached) {
		t.Fatalf("err = %v", err)
	}
	if err := seg.Detach(); !errors.Is(err, ErrDetached) {
		t.Fatalf("second detach: %v", err)
	}
}

func TestLastDetachDestroys(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	b, _ := c.Site(1).Attach(id, false)
	b.SetUint32(0, 5)
	if err := b.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := a.Detach(); err != nil {
		t.Fatal(err)
	}
	// Key free again.
	if _, err := c.Site(1).Shmget(7, 512, Create|Exclusive, 0o600); err != nil {
		t.Fatalf("key not released: %v", err)
	}
}

func TestRemoteReleaseReturnsData(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	b, _ := c.Site(1).Attach(id, false)
	b.SetUint32(0, 321) // site 1 becomes writer
	if err := b.Detach(); err != nil {
		t.Fatal(err)
	}
	// Site 0 must still see the data after site 1's pages went home.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := a.Uint32(0)
		if err != nil {
			t.Fatal(err)
		}
		if v == 321 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("data lost after release: %d", v)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDeltaRetainsPage(t *testing.T) {
	delta := 120 * time.Millisecond
	c := newTestCluster(t, 2, Options{Delta: delta})
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	b, _ := c.Site(1).Attach(id, false)

	// Site 1 takes the page with a fresh window...
	if err := b.SetUint32(0, 1); err != nil {
		t.Fatal(err)
	}
	// ...so site 0's write must wait out most of Δ.
	start := time.Now()
	if err := a.SetUint32(0, 2); err != nil {
		t.Fatal(err)
	}
	waited := time.Since(start)
	if waited < delta/2 {
		t.Fatalf("write granted after %v; Δ=%v window not enforced", waited, delta)
	}
	if waited > delta+2*time.Second {
		t.Fatalf("write granted after %v; far beyond Δ", waited)
	}
}

func TestSetSegmentDelta(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	if err := c.Site(0).SetSegmentDelta(id, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.Site(1).SetSegmentDelta(id, 50*time.Millisecond); err == nil {
		t.Fatal("non-library site must not set Δ")
	}
}

func TestPermissions(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	id, err := c.Site(0).ShmgetAs(7, 512, Create, 0o600, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Site(0).AttachAs(id, false, 99); !errors.Is(err, ErrPermission) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Site(0).AttachAs(id, false, 42); err != nil {
		t.Fatal(err)
	}
}

func TestTestAndSetMutualExclusion(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	b, _ := c.Site(1).Attach(id, false)

	const iters = 40
	var wg sync.WaitGroup
	worker := func(seg *Segment) {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			for {
				old, err := seg.TestAndSet(0)
				if err != nil {
					t.Errorf("tas: %v", err)
					return
				}
				if old == 0 {
					break
				}
			}
			v, _ := seg.Uint32(4)
			seg.SetUint32(4, v+1)
			seg.Clear(0)
		}
	}
	wg.Add(2)
	go worker(a)
	go worker(b)
	wg.Wait()
	v, _ := a.Uint32(4)
	if v != 2*iters {
		t.Fatalf("counter = %d, want %d (lock not mutually exclusive)", v, 2*iters)
	}
}

func TestAddUint32Concurrent(t *testing.T) {
	c := newTestCluster(t, 3, Options{})
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	var wg sync.WaitGroup
	const per = 50
	for i := 0; i < 3; i++ {
		seg, err := c.Site(i).Attach(id, false)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := seg.AddUint32(0, 1); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	seg, _ := c.Site(0).Attach(id, false)
	v, _ := seg.Uint32(0)
	if v != 3*per {
		t.Fatalf("counter = %d, want %d", v, 3*per)
	}
}

func TestTCPCluster(t *testing.T) {
	c := newTestCluster(t, 2, Options{TCP: true})
	id, _ := c.Site(0).Shmget(7, 1024, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	b, _ := c.Site(1).Attach(id, false)

	data := []byte("over real sockets")
	if err := a.WriteAt(data, 600); err != nil { // crosses into page 1
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := b.ReadAt(got, 600); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	b.SetUint32(0, 77)
	if v, _ := a.Uint32(0); v != 77 {
		t.Fatalf("read back %d", v)
	}
}

func TestCloseUnblocksAndErrors(t *testing.T) {
	c, err := NewCluster(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	seg, _ := c.Site(0).Attach(id, false)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seg.SetUint32(0, 1); !errors.Is(err, ErrDetached) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Site(0).Shmget(8, 512, Create, 0o600); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("double close must be fine")
	}
}

func TestQuickLiveCoherenceOracle(t *testing.T) {
	// Serialized random schedule across sites: every read observes the
	// latest completed write.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := 2 + rng.Intn(2)
		c, err := NewCluster(sites, Options{})
		if err != nil {
			return false
		}
		defer c.Close()
		id, err := c.Site(0).Shmget(5, 1024, Create, 0o600)
		if err != nil {
			return false
		}
		segs := make([]*Segment, sites)
		for i := range segs {
			if segs[i], err = c.Site(i).Attach(id, false); err != nil {
				return false
			}
		}
		oracle := map[int]uint32{}
		for i := 0; i < 30; i++ {
			s := rng.Intn(sites)
			off := 4 * rng.Intn(8)
			if rng.Intn(2) == 0 {
				v := uint32(i + 1)
				if segs[s].SetUint32(off, v) != nil {
					return false
				}
				oracle[off] = v
			} else {
				v, err := segs[s].Uint32(off)
				if err != nil || v != oracle[off] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveHidesKey(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	id, _ := c.Site(0).Shmget(7, 512, Create, 0o600)
	seg, _ := c.Site(0).Attach(id, false)
	if err := c.Site(0).Remove(id); err != nil {
		t.Fatal(err)
	}
	// Key is hidden immediately; the attach stays usable until detach.
	if _, err := c.Site(0).Shmget(7, 512, 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := seg.SetUint32(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := seg.Detach(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachUnknownSegment(t *testing.T) {
	c := newTestCluster(t, 1, Options{})
	if _, err := c.Site(0).Attach(SegID(99), false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestExclusiveCreateConflict(t *testing.T) {
	c := newTestCluster(t, 2, Options{})
	if _, err := c.Site(0).Shmget(7, 512, Create, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Site(1).Shmget(7, 512, Create|Exclusive, 0o600); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestSegmentMetadataAndStats(t *testing.T) {
	c := newTestCluster(t, 2, Options{PageSize: 256})
	id, _ := c.Site(0).Shmget(7, 1000, Create, 0o600)
	a, _ := c.Site(0).Attach(id, false)
	if a.PageSize() != 256 {
		t.Fatalf("page size = %d", a.PageSize())
	}
	b, _ := c.Site(1).Attach(id, false)
	a.SetUint32(0, 1)
	b.Uint32(0)
	st := c.Site(0).Stats()
	if st.PagesSent == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}
