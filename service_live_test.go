package mirage

import (
	"errors"
	"testing"
	"time"

	"mirage/internal/load"
	"mirage/internal/obs"
)

// TestLiveServiceChaosFailover is the service-layer smoke over the
// real TCP mesh under fault injection: three sites open the sharded
// store, two of them serve an open-loop load rung, and the third — a
// pure library site running no load workers — is fail-stopped mid-run.
// The load harness's liveness invariant (every admitted op completes,
// queues stay bounded) must hold through the crash and the failover,
// post-failover writes must converge, and the checked wall-clock trace
// must verify coherent.
func TestLiveServiceChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock chaos run")
	}
	plan, err := ParseFaultPlan("seed=7; delay p=0.05 max=2ms; crash site=2 from=600ms")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(3, Options{
		TCP:   true,
		Chaos: plan,
		Reliability: &Reliability{
			AckTimeout:  5 * time.Millisecond,
			MaxBackoff:  40 * time.Millisecond,
			MaxAttempts: 6,
		},
		Failover: &Failover{},
		Obs:      NewObs(),
		Check:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := StoreConfig{Shards: 3, SlotsPerShard: 32, SlotSize: 64}
	stores, err := c.OpenStores(cfg)
	if err != nil {
		t.Fatal(err)
	}

	spec := load.Spec{
		Seed:      1,
		Rate:      40,
		Duration:  1500 * time.Millisecond,
		Frontends: 2, // sites 0 and 1 serve; site 2 is library only
		Workers:   2,
		QueueCap:  32,
		Keys:      24,
		ReadFrac:  0.7,
		CASFrac:   0.1,
		ValBytes:  16,
		Skew:      load.SkewUniform,
		SLO:       time.Second,
	}.WithDefaults()
	spec.DeleteFrac = 0 // keep probes on pre-warmed pages

	// Pre-warm every key through a serving site, so each key's slot
	// pages have surviving holders when the library of shard 2 dies.
	for k := uint64(0); k < uint64(spec.Keys); k++ {
		if err := stores[0].Put(load.KeyBytes(k), load.ValBytes(k, spec.ValBytes)); err != nil {
			t.Fatalf("pre-warm key %d: %v", k, err)
		}
	}

	rung := load.RunLive(spec, func(frontend int, op load.Op) (bool, error) {
		return load.Execute(stores[frontend], spec, op)
	})
	if rung.Completed == 0 {
		t.Fatalf("no ops completed: %+v", rung)
	}
	if !rung.LivenessOK {
		t.Fatalf("liveness invariant violated through crash: %+v", rung)
	}
	if rung.Errors >= rung.Completed {
		t.Fatalf("mostly errors (%d of %d): no service through failover", rung.Errors, rung.Completed)
	}

	// A key homed on the crashed library's shard must become writable
	// again once the successor takes over.
	var key []byte
	for k := uint64(0); ; k++ {
		key = load.KeyBytes(k % uint64(spec.Keys))
		if cfg.WithDefaults().ShardOf(key) == 2 || k > 1<<16 {
			break
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := stores[1].Put(key, []byte("post-failover"))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrUnreachable) && !errors.Is(err, ErrShardBusy) {
			t.Fatalf("post-crash put: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("post-crash put never succeeded: no takeover")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got, err := stores[0].Get(key); err != nil || string(got) != "post-failover" {
		t.Fatalf("post-failover get = %q, %v", got, err)
	}

	var sawFailover bool
	for _, ev := range c.Obs().Buffer().Events() {
		if ev.Type == obs.EvFailover {
			sawFailover = true
			break
		}
	}
	if !sawFailover {
		t.Fatal("trace has no failover event despite library crash")
	}

	// Both serving frontends attributed ops to the store.
	for i := 0; i < 2; i++ {
		if stores[i].Stats().Total().Ops() == 0 {
			t.Fatalf("site-%d frontend recorded no ops", i)
		}
	}
	if c.Obs().Metrics.Total(obs.CAppOp) == 0 {
		t.Fatal("cluster obs recorded no app ops")
	}

	viols, err := c.VerifyTrace()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("coherence violation in service trace: %v", v)
	}
}
