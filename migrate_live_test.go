package mirage

import (
	"testing"
	"time"

	"mirage/internal/load"
	"mirage/internal/obs"
)

// TestLiveMigrationUnderLoad drives the sharded store over the real TCP
// mesh with every client request entering through site 0 while the
// rendezvous placement homes some shards at sites 1 and 2. A low-rate
// remote reader keeps invalidating site 0's copies so the off-site
// libraries see a sustained, heavily skewed request stream — exactly
// the signal Options.Placement exists for. At least one shard must
// voluntarily rehome to site 0 mid-load, with no admitted op lost
// (liveness: admitted == completed), service continuing across the
// handoff, and the checked wall-clock trace verifying coherent.
func TestLiveMigrationUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock migration run")
	}
	c, err := NewCluster(3, Options{
		TCP: true,
		Reliability: &Reliability{
			AckTimeout:  5 * time.Millisecond,
			MaxBackoff:  40 * time.Millisecond,
			MaxAttempts: 6,
		},
		Failover: &Failover{},
		Placement: &Placement{
			Window:      50 * time.Millisecond,
			MinRequests: 6,
			Share:       0.6,
			PingPong:    0.8,
			Cooldown:    5 * time.Second,
		},
		Obs:   NewObs(),
		Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := StoreConfig{Shards: 4, SlotsPerShard: 32, SlotSize: 64}
	stores, err := c.OpenStores(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pc := cfg.WithDefaults()
	pc.Sites = c.Sites() // OpenStores fills Sites on its own copy
	offHome := 0
	for s := 0; s < pc.Shards; s++ {
		if pc.LibraryFor(s) != 0 {
			offHome++
		}
	}
	if offHome == 0 {
		t.Fatal("rendezvous placement homed every shard at site 0; no migration to provoke")
	}

	spec := load.Spec{
		Seed:     3,
		Rate:     200,
		Duration: 1500 * time.Millisecond,
		Workers:  2,
		QueueCap: 64,
		Keys:     24,
		ReadFrac: 0.3, // write-heavy: upgrades keep the libraries busy
		ValBytes: 16,
		Skew:     load.SkewUniform,
		SLO:      time.Second,
	}.WithDefaults()
	spec.DeleteFrac = 0
	spec.CASFrac = 0

	for k := uint64(0); k < uint64(spec.Keys); k++ {
		if err := stores[0].Put(load.KeyBytes(k), load.ValBytes(k, spec.ValBytes)); err != nil {
			t.Fatalf("pre-warm key %d: %v", k, err)
		}
	}

	// Remote reader: one key every 25ms from site 1, just enough
	// cross-site traffic to keep site 0 re-faulting (sustained demand)
	// without rivalling it in the demand window (no ping-pong refusal).
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for k := uint64(0); ; k++ {
			select {
			case <-stop:
				return
			case <-tick.C:
				stores[1].Get(load.KeyBytes(k % uint64(spec.Keys)))
			}
		}
	}()

	rung := load.RunLive(spec, func(_ int, op load.Op) (bool, error) {
		return load.Execute(stores[0], spec, op)
	})
	close(stop)
	<-readerDone

	if rung.Completed == 0 {
		t.Fatalf("no ops completed: %+v", rung)
	}
	if !rung.LivenessOK || rung.Admitted != rung.Completed {
		t.Fatalf("ops lost across migration: admitted=%d completed=%d liveness=%v",
			rung.Admitted, rung.Completed, rung.LivenessOK)
	}
	if rung.Errors > 0 {
		t.Fatalf("%d of %d ops errored across migration", rung.Errors, rung.Completed)
	}

	migrations := 0
	for i := 0; i < 3; i++ {
		migrations += c.Site(i).Stats().Migrations
	}
	if migrations == 0 {
		t.Fatalf("no shard migrated under %d off-home shards and one-sided demand", offHome)
	}
	sawMigrate := false
	for _, ev := range c.Obs().Buffer().Events() {
		if ev.Type == obs.EvMigrate {
			sawMigrate = true
			break
		}
	}
	if !sawMigrate {
		t.Fatal("stats count migrations but trace has no EvMigrate event")
	}

	// Service must still work through all frontends after the rehome.
	key := load.KeyBytes(1)
	if err := stores[2].Put(key, []byte("post-migration")); err != nil {
		t.Fatalf("post-migration put: %v", err)
	}
	if got, err := stores[0].Get(key); err != nil || string(got) != "post-migration" {
		t.Fatalf("post-migration get = %q, %v", got, err)
	}

	viols, err := c.VerifyTrace()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("coherence violation in migrated trace: %v", v)
	}
}
