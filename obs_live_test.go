package mirage_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"mirage"
	"mirage/internal/obs"
)

// driveSharing runs a small cross-site sharing workload: site 0 writes,
// site 1 reads and writes back, enough to move pages both ways.
func driveSharing(t *testing.T, c *mirage.Cluster) {
	t.Helper()
	s0 := c.Site(0)
	id, err := s0.Shmget(mirage.IPCPrivate, 4096, mirage.Create, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s0.Attach(id, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Site(1).Attach(id, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.SetUint32(0, uint32(i)); err != nil {
			t.Fatal(err)
		}
		if v, err := b.Uint32(0); err != nil || v != uint32(i) {
			t.Fatalf("round %d: read %d, %v", i, v, err)
		}
		if _, err := b.AddUint32(4, 1); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLiveTracedRun is the live-mode half of the observability
// acceptance criteria: a two-node cluster with an Obs attached produces
// a trace that summarizes and Chrome-exports, and serves its metrics
// and trace over the debug HTTP endpoints.
func TestLiveTracedRun(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		t.Run(map[bool]string{false: "inproc", true: "tcp"}[tcp], func(t *testing.T) {
			o := mirage.NewObs()
			c, err := mirage.NewCluster(2, mirage.Options{
				Delta:     5 * time.Millisecond,
				TCP:       tcp,
				Obs:       o,
				Check:     true,
				DebugAddr: "127.0.0.1:0",
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			driveSharing(t, c)

			// Counters: the workload must have produced cross-site traffic.
			for _, want := range []obs.Counter{
				obs.CReadFault, obs.CWriteFault, obs.CPageSent, obs.CGrantCycle, obs.CMsgSent,
			} {
				if o.Metrics.Total(want) == 0 {
					t.Errorf("counter %v stayed zero", want)
				}
			}
			if tcp && o.Metrics.Total(obs.CFlushBatch) == 0 {
				t.Error("TCP flush batches not counted")
			}

			// Trace: summarize and Chrome-export from the live event buffer.
			events := o.Buffer().Events()
			if len(events) == 0 {
				t.Fatal("no events traced")
			}
			sum := obs.Summarize(events)
			if sum.ByType[obs.EvFault] == 0 || sum.ByType[obs.EvGrantStart] == 0 {
				t.Errorf("summary missing faults or grants: %+v", sum.ByType)
			}
			var chrome bytes.Buffer
			if err := obs.WriteChrome(&chrome, obs.NewHeader(obs.ClockWall, 2), events); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
				t.Fatalf("chrome export is not valid JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("chrome export has no events")
			}

			// Debug HTTP: metrics snapshot and JSONL trace.
			base := "http://" + c.DebugAddr()
			var snap obs.Snapshot
			getJSON(t, base+"/debug/obs", &snap)
			if snap.Totals["read_faults"] == 0 {
				t.Errorf("/debug/obs read_faults = 0; totals: %v", snap.Totals)
			}
			resp, err := http.Get(base + "/debug/obs/trace")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			hdr, traced, err := obs.ReadJSONL(resp.Body)
			if err != nil {
				t.Fatalf("/debug/obs/trace did not parse: %v", err)
			}
			if hdr.Clock != obs.ClockWall || hdr.Sites != 2 {
				t.Errorf("trace header = %+v, want wall clock, 2 sites", hdr)
			}
			if len(traced) == 0 {
				t.Error("/debug/obs/trace returned no events")
			}
			var vars map[string]json.RawMessage
			getJSON(t, base+"/debug/vars", &vars)

			// With Options.Check the trace carries per-access op events
			// and the whole run must verify coherent: the checker sees
			// every read observe the latest write it should.
			if obs.Summarize(events).ByType[obs.EvRead] == 0 {
				t.Error("Options.Check produced no op events")
			}
			viols, err := c.VerifyTrace()
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range viols {
				t.Errorf("coherence violation in live trace: %v", v)
			}
		})
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
	}
}

// TestDebugAddrRequiresObs pins the constructor validation.
func TestDebugAddrRequiresObs(t *testing.T) {
	if _, err := mirage.NewCluster(2, mirage.Options{DebugAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("NewCluster accepted DebugAddr without Obs")
	}
}

// TestCheckRequiresTracer pins the Options.Check validation: op events
// go to the trace, so there must be a tracer to receive them.
func TestCheckRequiresTracer(t *testing.T) {
	if _, err := mirage.NewCluster(2, mirage.Options{Check: true}); err == nil {
		t.Fatal("NewCluster accepted Check without Obs")
	}
	o := &mirage.Obs{} // no tracer
	if _, err := mirage.NewCluster(2, mirage.Options{Check: true, Obs: o}); err == nil {
		t.Fatal("NewCluster accepted Check with a tracerless Obs")
	}
}

// TestVerifyTraceAPI exercises the package-level checker entry on a
// hand-rolled violating trace, and the Cluster method's error paths.
func TestVerifyTraceAPI(t *testing.T) {
	bad := []mirage.TraceEvent{
		{Type: obs.EvPageState, Seg: 1, Site: 0, Arg: 2},
		{Type: obs.EvPageState, Seg: 1, Site: 1, Cycle: 1, Arg: 2},
	}
	viols := mirage.VerifyTrace(mirage.CheckConfig{Sites: 2}, bad)
	if len(viols) == 0 {
		t.Fatal("VerifyTrace missed a two-writer trace")
	}
	c, err := mirage.NewCluster(2, mirage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.VerifyTrace(); err == nil {
		t.Fatal("Cluster.VerifyTrace should fail without Obs")
	}
}

// TestObsOffByDefault: without an Obs, a cluster runs with a nil sink
// end to end and Cluster.Obs reports that.
func TestObsOffByDefault(t *testing.T) {
	c, err := mirage.NewCluster(2, mirage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	driveSharing(t, c)
	if c.Obs() != nil {
		t.Fatal("Obs() non-nil without Options.Obs")
	}
	if c.DebugAddr() != "" {
		t.Fatalf("DebugAddr() = %q without a debug server", c.DebugAddr())
	}
}
