package mirage

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"

	"mirage/internal/obs"
)

// debugServer serves the cluster's observability state over HTTP when
// Options.DebugAddr is set:
//
//	/debug/obs        metrics registry snapshot as JSON
//	/debug/obs/trace  the in-memory trace buffer as schema-v1 JSONL
//	/debug/vars       the process-wide expvar map
//	/debug/pprof/...  the standard runtime profiles
//
// The obs endpoints read the shared registry and buffer directly — no
// engine coordination — so scraping a busy cluster never perturbs the
// protocol beyond the atomic loads the snapshot takes.
type debugServer struct {
	ln  net.Listener
	srv *http.Server
}

func startDebugServer(addr string, o *Obs, sites int) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if o.Metrics == nil {
			_ = enc.Encode(struct{}{})
			return
		}
		_ = enc.Encode(o.Metrics.Snapshot())
	})
	mux.HandleFunc("/debug/obs/trace", func(w http.ResponseWriter, r *http.Request) {
		buf := o.Buffer()
		if buf == nil {
			http.Error(w, "tracing not enabled: the cluster's Obs has no trace buffer", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = obs.WriteJSONL(w, obs.NewHeader(obs.ClockWall, sites), buf.Events())
	})
	// Use the package handlers rather than relying on their init-time
	// registration on http.DefaultServeMux: this mux serves only what
	// it names.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &debugServer{ln: ln, srv: srv}, nil
}

func (d *debugServer) addr() string { return d.ln.Addr().String() }

func (d *debugServer) close() error {
	err := d.srv.Close()
	if err == http.ErrServerClosed {
		err = nil
	}
	return err
}
