package mirage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func smallStoreConfig() StoreConfig {
	return StoreConfig{Shards: 4, SlotsPerShard: 8, SlotSize: 64}
}

// TestOpenStoresCrossSite: every site's frontend serves every key, and
// a write through one site is readable through the others — the DSM
// moves the shard pages to the accessor.
func TestOpenStoresCrossSite(t *testing.T) {
	c, err := NewCluster(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stores, err := c.OpenStores(smallStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(stores) != 3 {
		t.Fatalf("got %d stores, want one per site", len(stores))
	}
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("session-%d", i))
		if err := stores[i%3].Put(key, []byte("v1")); err != nil {
			t.Fatalf("put %q via site %d: %v", key, i%3, err)
		}
		got, err := stores[(i+1)%3].Get(key)
		if err != nil || !bytes.Equal(got, []byte("v1")) {
			t.Fatalf("get %q via site %d = %q, %v", key, (i+1)%3, got, err)
		}
	}

	// CAS through one site observed through another.
	key := []byte("session-0")
	swapped, err := stores[2].CAS(key, []byte("v1"), []byte("v2"))
	if err != nil || !swapped {
		t.Fatalf("CAS = %v, %v; want swap", swapped, err)
	}
	if got, _ := stores[0].Get(key); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("post-CAS get = %q, want v2", got)
	}

	// Delete, then the re-exported error surfaces.
	if err := stores[1].Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := stores[0].Get(key); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("get deleted key = %v, want ErrKeyNotFound", err)
	}

	// Each frontend attributes its own ops.
	if stores[0].Stats().Total().Ops() == 0 {
		t.Fatal("site-0 frontend recorded no ops")
	}
}

// TestOpenStoreSingleSite: the per-site opener on a one-site cluster
// creates everything itself.
func TestOpenStoreSingleSite(t *testing.T) {
	c, err := NewCluster(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Site(0).OpenStore(smallStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Get([]byte("k")); err != nil || string(got) != "v" {
		t.Fatalf("get = %q, %v", got, err)
	}
}

// TestOpenStoreRejectsMismatchedConfig: a site joining with different
// geometry is refused by the header check, not silently corrupted.
func TestOpenStoreRejectsMismatchedConfig(t *testing.T) {
	c, err := NewCluster(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenStores(smallStoreConfig()); err != nil {
		t.Fatal(err)
	}
	// Same ShardBytes (so shmget still matches), different slot
	// geometry: only the header check can catch this.
	bad := smallStoreConfig()
	bad.SlotsPerShard = 4
	bad.SlotSize = 128
	// Site 1 is the library of shard 1; shard 0 exists with other
	// geometry, so the attach-side check must fire.
	if _, err := c.Site(0).OpenStore(bad); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("mismatched open = %v, want ErrStoreCorrupt", err)
	}
}

// TestStoreShardFull: overfilling one shard surfaces ErrShardFull
// rather than evicting.
func TestStoreShardFull(t *testing.T) {
	c, err := NewCluster(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := StoreConfig{Shards: 1, SlotsPerShard: 4, SlotSize: 64}
	st, err := c.Site(0).OpenStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var full bool
	for i := 0; i < 16; i++ {
		err := st.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
		if errors.Is(err, ErrShardFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("16 puts into 4 slots never reported ErrShardFull")
	}
}
