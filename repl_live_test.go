package mirage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mirage/internal/obs"
)

// TestLiveReplicatedTakeoverUnderLoad runs the replicated-library
// leader-crash scenario over the real TCP mesh: two sites ping-pong
// writes across a two-page segment (every access needs a fresh library
// cycle, so the replicated log is appended to continuously) while the
// injector fail-stops the leader mid-load. A survivor's next request
// must elect a follower that installs from its log tail — not the
// KRecover holder rebuild — service must resume for both sites, and the
// wall-clock trace must verify coherent, including the log-prefix and
// acked-append-lost invariants the replication events feed.
func TestLiveReplicatedTakeoverUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock replication run")
	}
	plan, err := ParseFaultPlan("seed=3; crash site=0 from=700ms")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(3, Options{
		TCP:   true,
		Chaos: plan,
		Reliability: &Reliability{
			AckTimeout:  5 * time.Millisecond,
			MaxBackoff:  40 * time.Millisecond,
			MaxAttempts: 6,
		},
		Failover:    &Failover{},
		Replication: &Replication{Replicas: 2},
		Obs:         NewObs(),
		Check:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.Site(0).Shmget(0x5b, 1024, Create, 0o600) // two pages
	if err != nil {
		t.Fatal(err)
	}
	home, err := c.Site(0).Attach(id, false)
	if err != nil {
		t.Fatal(err)
	}
	defer home.Detach()
	if err := home.SetUint32(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := home.SetUint32(512, 1); err != nil {
		t.Fatal(err)
	}

	h1, err := c.Site(1).Attach(id, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Detach()
	h2, err := c.Site(2).Attach(id, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Detach()

	// Load: site 1 owns page 0 and reads page 1; site 2 the reverse.
	// Each site's read keeps getting invalidated by the other's write,
	// so every iteration faults to the library — sustained record
	// mutations before, during, and after the crash instant. Ops that
	// land in the takeover window surface ErrUnreachable and retry.
	until := time.Now().Add(2500 * time.Millisecond)
	loadErr := make([]error, 2)
	completed := make([]int, 2)
	var wg sync.WaitGroup
	for i, cl := range []struct {
		h      *Segment
		wr, rd int // byte offsets: own write page, other's page
	}{{h1, 0, 512}, {h2, 512, 0}} {
		wg.Add(1)
		go func(i int, h *Segment, wr, rd int) {
			defer wg.Done()
			for n := uint32(2); time.Now().Before(until); n++ {
				if err := h.SetUint32(wr, n); err != nil {
					if errors.Is(err, ErrUnreachable) {
						time.Sleep(20 * time.Millisecond)
						continue
					}
					loadErr[i] = err
					return
				}
				if _, err := h.Uint32(rd); err != nil && !errors.Is(err, ErrUnreachable) {
					loadErr[i] = err
					return
				}
				completed[i]++
				time.Sleep(5 * time.Millisecond)
			}
		}(i, cl.h, cl.wr, cl.rd)
	}
	wg.Wait()
	for i, err := range loadErr {
		if err != nil {
			t.Fatalf("site %d load: %v", i+1, err)
		}
	}
	if completed[0] == 0 || completed[1] == 0 {
		t.Fatalf("load starved: completed %v", completed)
	}

	// The takeover must have been a log-tail election, not the KRecover
	// rebuild, and service must work through both survivors afterwards.
	elections := c.Site(1).Stats().Elections + c.Site(2).Stats().Elections
	if elections == 0 {
		t.Fatal("leader crash produced no log-tail election")
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := h2.SetUint32(0, 7777); err == nil {
			break
		} else if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("post-takeover write: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("post-takeover write never succeeded")
		}
		time.Sleep(50 * time.Millisecond)
	}
	for {
		v, err := h1.Uint32(0)
		if err == nil {
			if v != 7777 {
				t.Fatalf("post-takeover read = %d, want 7777", v)
			}
			break
		} else if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("post-takeover read: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("post-takeover read never succeeded")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Trace evidence: leader commits and follower applies before the
	// crash, the election event after it.
	var commits, applies, elects int
	for _, ev := range c.Obs().Buffer().Events() {
		switch {
		case ev.Type == obs.EvReplicate && ev.From == ev.Site:
			commits++
		case ev.Type == obs.EvReplicate:
			applies++
		case ev.Type == obs.EvElect:
			elects++
		}
	}
	if commits == 0 || applies == 0 || elects == 0 {
		t.Fatalf("trace: %d commits, %d applies, %d elections; want all > 0",
			commits, applies, elects)
	}

	viols, err := c.VerifyTrace()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("coherence violation in replicated takeover trace: %v", v)
	}
}
