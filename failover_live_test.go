package mirage

import (
	"errors"
	"testing"
	"time"

	"mirage/internal/obs"
)

// TestFailoverRequiresReliability: failover rides on the ARQ layer's
// give-up verdicts; configuring it alone is an error, not a hang.
func TestFailoverRequiresReliability(t *testing.T) {
	if _, err := NewCluster(2, Options{Failover: &Failover{}}); err == nil {
		t.Fatal("NewCluster accepted Failover without Reliability")
	}
}

// TestNegativeDeltaRejected pins the Δ-validation bugfix at the public
// surface: a negative default window fails cluster construction, and a
// negative SetSegmentDelta is rejected with ErrNegativeDelta.
func TestNegativeDeltaRejected(t *testing.T) {
	if _, err := NewCluster(2, Options{Delta: -time.Millisecond}); err == nil {
		t.Fatal("NewCluster accepted a negative Options.Delta")
	}
	c, err := NewCluster(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Site(0).Shmget(7, 512, Create, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Site(0).SetSegmentDelta(id, -time.Second); !errors.Is(err, ErrNegativeDelta) {
		t.Fatalf("SetSegmentDelta(-1s) = %v, want ErrNegativeDelta", err)
	}
	if err := c.Site(0).SetSegmentDelta(id, 5*time.Millisecond); err != nil {
		t.Fatalf("SetSegmentDelta(5ms) = %v", err)
	}
}

// TestLiveLibraryFailover runs the library-crash scenario over the real
// mesh (in-process and TCP): the injector fail-stops the library site
// mid-run, a surviving holder's next request elects the successor, and
// post-crash accesses succeed. The wall-clock multi-epoch trace must
// verify coherent.
func TestLiveLibraryFailover(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		t.Run(map[bool]string{false: "inproc", true: "tcp"}[tcp], func(t *testing.T) {
			plan, err := ParseFaultPlan("seed=3; crash site=0 from=700ms")
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCluster(3, Options{
				TCP:   tcp,
				Chaos: plan,
				Reliability: &Reliability{
					AckTimeout:  5 * time.Millisecond,
					MaxBackoff:  40 * time.Millisecond,
					MaxAttempts: 6,
				},
				Failover: &Failover{},
				Obs:      NewObs(),
				Check:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			id, err := c.Site(0).Shmget(0x5a, 512, Create, 0o600)
			if err != nil {
				t.Fatal(err)
			}
			home, err := c.Site(0).Attach(id, false)
			if err != nil {
				t.Fatal(err)
			}
			defer home.Detach()
			if err := home.SetUint32(0, 42); err != nil {
				t.Fatal(err)
			}

			surv, err := c.Site(1).Attach(id, false)
			if err != nil {
				t.Fatal(err)
			}
			defer surv.Detach()
			if v, err := surv.Uint32(0); err != nil || v != 42 {
				t.Fatalf("pre-crash read = %d, %v; want 42", v, err)
			}
			other, err := c.Site(2).Attach(id, false)
			if err != nil {
				t.Fatal(err)
			}
			defer other.Detach()

			time.Sleep(1200 * time.Millisecond) // the library is now dead

			// The surviving holder's write rides through failover; allow
			// retries for wall-clock scheduling slop but demand prompt
			// overall convergence.
			deadline := time.Now().Add(15 * time.Second)
			for {
				err = surv.SetUint32(0, 100)
				if err == nil {
					break
				}
				if !errors.Is(err, ErrUnreachable) {
					t.Fatalf("post-crash write: %v", err)
				}
				if time.Now().After(deadline) {
					t.Fatal("post-crash write never succeeded: no takeover")
				}
				time.Sleep(50 * time.Millisecond)
			}
			for {
				v, err := other.Uint32(0)
				if err == nil {
					if v != 100 {
						t.Fatalf("post-failover read = %d, want 100", v)
					}
					break
				}
				if !errors.Is(err, ErrUnreachable) {
					t.Fatalf("post-failover read: %v", err)
				}
				if time.Now().After(deadline) {
					t.Fatal("post-failover read never succeeded")
				}
				time.Sleep(50 * time.Millisecond)
			}

			st := c.Site(1).Stats()
			if st.Failovers == 0 || st.Recoveries == 0 {
				t.Fatalf("successor stats %+v, want a failover trigger and a completed recovery", st)
			}
			var sawFailover, sawRecover bool
			for _, ev := range c.Obs().Buffer().Events() {
				switch ev.Type {
				case obs.EvFailover:
					sawFailover = true
				case obs.EvRecover:
					sawRecover = true
				}
			}
			if !sawFailover || !sawRecover {
				t.Fatalf("trace missing failover evidence: failover=%v recover=%v", sawFailover, sawRecover)
			}
			viols, err := c.VerifyTrace()
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range viols {
				t.Errorf("coherence violation in failover trace: %v", v)
			}
		})
	}
}
