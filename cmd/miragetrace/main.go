// Command miragetrace is the analysis front-end for Mirage's
// observability artifacts. It reads the schema-v1 JSONL protocol
// traces produced by miragesim -trace, miragebench -trace, or a live
// cluster's /debug/obs/trace endpoint, plus the library-site reference
// logs (§9.0) produced by miragesim -reflog.
//
// Subcommands:
//
//	summarize <trace.jsonl>            event/page/denial totals
//	timeline  [-seg N] [-page N] <trace.jsonl>
//	                                   the event timeline, optionally
//	                                   filtered to one page
//	chrome    [-o out.json] <trace.jsonl>
//	                                   convert to Chrome trace_event
//	                                   JSON (load in chrome://tracing
//	                                   or Perfetto)
//	denials   [-buckets N] <trace.jsonl>
//	                                   Δ-window denial breakdown by
//	                                   remaining time
//	reflog    [flags] <refs.log>       page heat, migration advice, and
//	                                   suggested Δ from a reference log
//
// Invoking miragetrace with a bare file argument keeps the historical
// behaviour and treats it as a reference log.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mirage/internal/obs"
	"mirage/internal/stats"
	"mirage/internal/trace"
	"mirage/internal/vaxmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("miragetrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "summarize":
		cmdSummarize(os.Args[2:])
	case "timeline":
		cmdTimeline(os.Args[2:])
	case "chrome":
		cmdChrome(os.Args[2:])
	case "denials":
		cmdDenials(os.Args[2:])
	case "reflog":
		cmdReflog(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		// Historical interface: miragetrace [flags] <reference-log>.
		cmdReflog(os.Args[1:])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: miragetrace <subcommand> [flags] <file>

  summarize <trace.jsonl>                 event/page/denial totals
  timeline  [-seg N] [-page N] <trace.jsonl>
  chrome    [-o out.json] <trace.jsonl>   convert for chrome://tracing
  denials   [-buckets N] <trace.jsonl>    Δ-denial remaining-time breakdown
  reflog    [flags] <refs.log>            reference-log page-heat analysis
`)
	os.Exit(2)
}

// readTrace loads and validates one JSONL protocol trace.
func readTrace(path string) (obs.Header, []obs.Event) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	hdr, events, err := obs.ReadJSONL(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return hdr, events
}

func oneArg(fs *flag.FlagSet) string {
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: miragetrace %s [flags] <file>\n", fs.Name())
		os.Exit(2)
	}
	return fs.Arg(0)
}

func cmdSummarize(args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	fs.Parse(args)
	hdr, events := readTrace(oneArg(fs))
	fmt.Printf("trace: schema v%d, %s clock, %d sites\n", hdr.Version, hdr.Clock, hdr.Sites)
	if _, err := obs.Summarize(events).WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func cmdTimeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	seg := fs.Int("seg", -1, "only this segment (-1 = all)")
	page := fs.Int("page", -1, "only this page (-1 = all)")
	fs.Parse(args)
	_, events := readTrace(oneArg(fs))
	for _, ev := range obs.Timeline(events, int32(*seg), int32(*page)) {
		fmt.Println(obs.FormatEvent(ev))
	}
}

func cmdChrome(args []string) {
	fs := flag.NewFlagSet("chrome", flag.ExitOnError)
	out := fs.String("o", "", "output file (default: stdout)")
	fs.Parse(args)
	hdr, events := readTrace(oneArg(fs))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := obs.WriteChrome(w, hdr, events); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Printf("%d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n", len(events), *out)
	}
}

func cmdDenials(args []string) {
	fs := flag.NewFlagSet("denials", flag.ExitOnError)
	buckets := fs.Int("buckets", 8, "number of remaining-time buckets")
	fs.Parse(args)
	_, events := readTrace(oneArg(fs))
	bs := obs.DenialBreakdown(events, *buckets)
	if len(bs) == 0 {
		fmt.Println("no Δ-window denials in the trace")
		return
	}
	total := 0
	for _, b := range bs {
		total += b.Count
	}
	fmt.Printf("%d Δ-window denials by remaining window time:\n", total)
	max := 0
	for _, b := range bs {
		if b.Count > max {
			max = b.Count
		}
	}
	for _, b := range bs {
		bar := ""
		if max > 0 {
			bar = barOf(40 * b.Count / max)
		}
		fmt.Printf("  ≤%-10v %6d  %s\n", b.Upper, b.Count, bar)
	}
}

func barOf(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func cmdReflog(args []string) {
	fs := flag.NewFlagSet("reflog", flag.ExitOnError)
	top := fs.Int("top", 20, "show the hottest N pages")
	threshold := fs.Float64("migrate-threshold", 0.75, "dominant-site share that triggers migration advice")
	minReq := fs.Int("migrate-min", 10, "minimum requests before advising migration")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: miragetrace reflog [flags] <reference-log>")
		os.Exit(2)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	l, err := trace.ReadLog(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d requests\n\n", l.Len())
	if l.Len() == 0 {
		return
	}

	transfer := vaxmodel.ReadRequestService + 2*vaxmodel.MsgSideElapsed(0) +
		vaxmodel.ServerRequestService + 2*vaxmodel.MsgSideElapsed(1024) + vaxmodel.PageInstallService

	heats := trace.Heat(l)
	t := stats.NewTable("seg", "page", "requests", "reads", "writes", "sites", "mean gap", "dominant", "suggested Δ")
	shown := 0
	for _, h := range heats {
		if shown >= *top {
			break
		}
		shown++
		t.Row(h.Key.Seg, h.Key.Page, h.Requests, h.Reads, h.Writes, h.Sites,
			h.MeanGap.Round(time.Millisecond),
			fmt.Sprintf("site %d (%.0f%%)", h.DominantSite, 100*h.DominantShare),
			trace.SuggestDelta(h, transfer).Round(time.Millisecond))
	}
	t.WriteTo(os.Stdout)

	adv := trace.AdviseMigration(l, *threshold, *minReq)
	if len(adv) == 0 {
		fmt.Println("\nno migration advice (no page dominated by a single remote site)")
		return
	}
	fmt.Println("\nmigration advice:")
	for _, a := range adv {
		fmt.Printf("  seg %d page %d -> colocate with site %d (%s)\n", a.Key.Seg, a.Key.Page, a.Target, a.Reason)
	}
}
