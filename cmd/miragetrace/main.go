// Command miragetrace is the analysis front-end for Mirage's
// observability artifacts. It reads the schema-v1 JSONL protocol
// traces produced by miragesim -trace, miragebench -trace, or a live
// cluster's /debug/obs/trace endpoint, plus the library-site reference
// logs (§9.0) produced by miragesim -reflog.
//
// Subcommands:
//
//	summarize <trace.jsonl>            event/page/denial totals
//	timeline  [-seg N] [-page N] <trace.jsonl>
//	                                   the event timeline, optionally
//	                                   filtered to one page
//	chrome    [-o out.json] <trace.jsonl>
//	                                   convert to Chrome trace_event
//	                                   JSON (load in chrome://tracing
//	                                   or Perfetto)
//	denials   [-buckets N] <trace.jsonl>
//	                                   Δ-window denial breakdown by
//	                                   remaining time
//	check     [-delta D] [-slack D] [-reliable] <trace.jsonl>
//	                                   verify the trace against the
//	                                   coherence invariants; exits 1
//	                                   on any violation
//	reflog    [flags] <refs.log>       page heat, migration advice, and
//	                                   suggested Δ from a reference log
//
// Invoking miragetrace with a bare file argument keeps the historical
// behaviour and treats it as a reference log.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mirage/internal/check"
	"mirage/internal/obs"
	"mirage/internal/stats"
	"mirage/internal/trace"
	"mirage/internal/vaxmodel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "summarize":
		return cmdSummarize(args[1:], stdout, stderr)
	case "timeline":
		return cmdTimeline(args[1:], stdout, stderr)
	case "chrome":
		return cmdChrome(args[1:], stdout, stderr)
	case "denials":
		return cmdDenials(args[1:], stdout, stderr)
	case "check":
		return cmdCheck(args[1:], stdout, stderr)
	case "reflog":
		return cmdReflog(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		return usage(stderr)
	default:
		// Historical interface: miragetrace [flags] <reference-log>.
		return cmdReflog(args, stdout, stderr)
	}
}

func usage(stderr io.Writer) int {
	fmt.Fprint(stderr, `usage: miragetrace <subcommand> [flags] <file>

  summarize <trace.jsonl>                 event/page/denial totals
  timeline  [-seg N] [-page N] <trace.jsonl>
  chrome    [-o out.json] <trace.jsonl>   convert for chrome://tracing
  denials   [-buckets N] <trace.jsonl>    Δ-denial remaining-time breakdown
  check     [-delta D] [-slack D] [-reliable] <trace.jsonl>
                                          verify coherence invariants
  reflog    [flags] <refs.log>            reference-log page-heat analysis
`)
	return 2
}

// readTrace loads and validates one JSONL protocol trace.
func readTrace(path string, stderr io.Writer) (obs.Header, []obs.Event, bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "miragetrace: %v\n", err)
		return obs.Header{}, nil, false
	}
	defer f.Close()
	hdr, events, err := obs.ReadJSONL(f)
	if err != nil {
		fmt.Fprintf(stderr, "miragetrace: %s: %v\n", path, err)
		return obs.Header{}, nil, false
	}
	return hdr, events, true
}

// newFlagSet builds a subcommand flag set that reports errors instead
// of exiting the process.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func oneArg(fs *flag.FlagSet, stderr io.Writer) (string, bool) {
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "usage: miragetrace %s [flags] <file>\n", fs.Name())
		return "", false
	}
	return fs.Arg(0), true
}

func cmdSummarize(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("summarize", stderr)
	if fs.Parse(args) != nil {
		return 2
	}
	path, ok := oneArg(fs, stderr)
	if !ok {
		return 2
	}
	hdr, events, ok := readTrace(path, stderr)
	if !ok {
		return 1
	}
	fmt.Fprintf(stdout, "trace: schema v%d, %s clock, %d sites\n", hdr.Version, hdr.Clock, hdr.Sites)
	if _, err := obs.Summarize(events).WriteTo(stdout); err != nil {
		fmt.Fprintf(stderr, "miragetrace: %v\n", err)
		return 1
	}
	return 0
}

func cmdTimeline(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("timeline", stderr)
	seg := fs.Int("seg", -1, "only this segment (-1 = all)")
	page := fs.Int("page", -1, "only this page (-1 = all)")
	if fs.Parse(args) != nil {
		return 2
	}
	path, ok := oneArg(fs, stderr)
	if !ok {
		return 2
	}
	_, events, ok := readTrace(path, stderr)
	if !ok {
		return 1
	}
	for _, ev := range obs.Timeline(events, int32(*seg), int32(*page)) {
		fmt.Fprintln(stdout, obs.FormatEvent(ev))
	}
	return 0
}

func cmdChrome(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("chrome", stderr)
	out := fs.String("o", "", "output file (default: stdout)")
	if fs.Parse(args) != nil {
		return 2
	}
	path, ok := oneArg(fs, stderr)
	if !ok {
		return 2
	}
	hdr, events, ok := readTrace(path, stderr)
	if !ok {
		return 1
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "miragetrace: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "miragetrace: %v\n", err)
			}
		}()
		w = f
	}
	if err := obs.WriteChrome(w, hdr, events); err != nil {
		fmt.Fprintf(stderr, "miragetrace: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stdout, "%d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n", len(events), *out)
	}
	return 0
}

func cmdDenials(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("denials", stderr)
	buckets := fs.Int("buckets", 8, "number of remaining-time buckets")
	if fs.Parse(args) != nil {
		return 2
	}
	path, ok := oneArg(fs, stderr)
	if !ok {
		return 2
	}
	_, events, ok := readTrace(path, stderr)
	if !ok {
		return 1
	}
	bs := obs.DenialBreakdown(events, *buckets)
	if len(bs) == 0 {
		fmt.Fprintln(stdout, "no Δ-window denials in the trace")
		return 0
	}
	total := 0
	for _, b := range bs {
		total += b.Count
	}
	fmt.Fprintf(stdout, "%d Δ-window denials by remaining window time:\n", total)
	max := 0
	for _, b := range bs {
		if b.Count > max {
			max = b.Count
		}
	}
	for _, b := range bs {
		bar := ""
		if max > 0 {
			bar = barOf(40 * b.Count / max)
		}
		fmt.Fprintf(stdout, "  ≤%-10v %6d  %s\n", b.Upper, b.Count, bar)
	}
	return 0
}

func barOf(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// cmdCheck runs the coherence history checker over a recorded trace.
// The site count comes from the trace header; the window length Δ is
// not recorded in traces, so the possession invariant only activates
// when -delta is given.
func cmdCheck(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("check", stderr)
	delta := fs.Duration("delta", 0, "the run's Δ window; enables the possession invariant (0 = skip it)")
	slack := fs.Duration("slack", 0, "window-invariant timestamp tolerance (use ~25ms for wall-clock traces)")
	reliable := fs.Bool("reliable", false, "trace recorded with the reliability layer (permits implicit grant aborts)")
	maxViolations := fs.Int("max-violations", 100, "stop collecting after this many violations")
	if fs.Parse(args) != nil {
		return 2
	}
	path, ok := oneArg(fs, stderr)
	if !ok {
		return 2
	}
	hdr, events, ok := readTrace(path, stderr)
	if !ok {
		return 1
	}
	if *slack == 0 && hdr.Clock == obs.ClockWall && *delta > 0 {
		fmt.Fprintln(stderr, "miragetrace: note: wall-clock trace with -delta but no -slack; timer jitter may report spurious window violations")
	}
	cfg := check.Config{
		Sites:         hdr.Sites,
		Delta:         *delta,
		Slack:         *slack,
		Reliable:      *reliable,
		MaxViolations: *maxViolations,
	}
	viols := check.Verify(cfg, events)
	ops := 0
	for _, ev := range events {
		if ev.Type == obs.EvRead || ev.Type == obs.EvWrite {
			ops++
		}
	}
	fmt.Fprintf(stdout, "trace: schema v%d, %s clock, %d sites, %d events (%d op records)\n",
		hdr.Version, hdr.Clock, hdr.Sites, len(events), ops)
	if ops == 0 {
		fmt.Fprintln(stdout, "note: no op records (run recorded without -check / Options.Check); data invariants not exercised")
	}
	if len(viols) == 0 {
		fmt.Fprintln(stdout, "coherent: no invariant violations")
		return 0
	}
	for _, v := range viols {
		fmt.Fprintf(stdout, "violation: %v\n", v)
	}
	fmt.Fprintf(stderr, "miragetrace: %d coherence violation(s)\n", len(viols))
	return 1
}

func cmdReflog(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("reflog", stderr)
	top := fs.Int("top", 20, "show the hottest N pages")
	threshold := fs.Float64("migrate-threshold", 0.75, "dominant-site share that triggers migration advice")
	minReq := fs.Int("migrate-min", 10, "minimum requests before advising migration")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: miragetrace reflog [flags] <reference-log>")
		return 2
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "miragetrace: %v\n", err)
		return 1
	}
	defer f.Close()
	l, err := trace.ReadLog(f)
	if err != nil {
		fmt.Fprintf(stderr, "miragetrace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%d requests\n\n", l.Len())
	if l.Len() == 0 {
		return 0
	}

	transfer := vaxmodel.ReadRequestService + 2*vaxmodel.MsgSideElapsed(0) +
		vaxmodel.ServerRequestService + 2*vaxmodel.MsgSideElapsed(1024) + vaxmodel.PageInstallService

	heats := trace.Heat(l)
	t := stats.NewTable("seg", "page", "requests", "reads", "writes", "sites", "mean gap", "dominant", "suggested Δ")
	shown := 0
	for _, h := range heats {
		if shown >= *top {
			break
		}
		shown++
		t.Row(h.Key.Seg, h.Key.Page, h.Requests, h.Reads, h.Writes, h.Sites,
			h.MeanGap.Round(time.Millisecond),
			fmt.Sprintf("site %d (%.0f%%)", h.DominantSite, 100*h.DominantShare),
			trace.SuggestDelta(h, transfer).Round(time.Millisecond))
	}
	t.WriteTo(stdout)

	adv := trace.AdviseMigration(l, *threshold, *minReq)
	if len(adv) == 0 {
		fmt.Fprintln(stdout, "\nno migration advice (no page dominated by a single remote site)")
		return 0
	}
	fmt.Fprintln(stdout, "\nmigration advice:")
	for _, a := range adv {
		fmt.Fprintf(stdout, "  seg %d page %d -> colocate with site %d (%s)\n", a.Key.Seg, a.Key.Page, a.Target, a.Reason)
	}
	return 0
}
