// Command miragetrace analyzes a library-site reference log (§9.0):
// per-page demand, inter-request intervals, migration advice (the
// paper's envisioned "automatic process migration facility"), and
// suggested per-page Δ values for the dynamic tuner.
//
// Produce a log with:
//
//	miragesim -workload counters -delta 0 -trace refs.log
//	miragetrace refs.log
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mirage/internal/stats"
	"mirage/internal/trace"
	"mirage/internal/vaxmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("miragetrace: ")
	top := flag.Int("top", 20, "show the hottest N pages")
	threshold := flag.Float64("migrate-threshold", 0.75, "dominant-site share that triggers migration advice")
	minReq := flag.Int("migrate-min", 10, "minimum requests before advising migration")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: miragetrace [flags] <reference-log>")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	l, err := trace.ReadLog(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d requests\n\n", l.Len())
	if l.Len() == 0 {
		return
	}

	transfer := vaxmodel.ReadRequestService + 2*vaxmodel.MsgSideElapsed(0) +
		vaxmodel.ServerRequestService + 2*vaxmodel.MsgSideElapsed(1024) + vaxmodel.PageInstallService

	heats := trace.Heat(l)
	t := stats.NewTable("seg", "page", "requests", "reads", "writes", "sites", "mean gap", "dominant", "suggested Δ")
	shown := 0
	for _, h := range heats {
		if shown >= *top {
			break
		}
		shown++
		t.Row(h.Key.Seg, h.Key.Page, h.Requests, h.Reads, h.Writes, h.Sites,
			h.MeanGap.Round(time.Millisecond),
			fmt.Sprintf("site %d (%.0f%%)", h.DominantSite, 100*h.DominantShare),
			trace.SuggestDelta(h, transfer).Round(time.Millisecond))
	}
	t.WriteTo(os.Stdout)

	adv := trace.AdviseMigration(l, *threshold, *minReq)
	if len(adv) == 0 {
		fmt.Println("\nno migration advice (no page dominated by a single remote site)")
		return
	}
	fmt.Println("\nmigration advice:")
	for _, a := range adv {
		fmt.Printf("  seg %d page %d -> colocate with site %d (%s)\n", a.Key.Seg, a.Key.Page, a.Target, a.Reason)
	}
}
