package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mirage/internal/obs"
	"mirage/internal/trace"
)

// writeTrace serializes events to a temp JSONL trace file.
func writeTrace(t *testing.T, sites int, events []obs.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(f, obs.NewHeader(obs.ClockVirtual, sites), events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sharingTrace is a tiny coherent history: site 0 creates a page with a
// write copy, grant 1 downgrades it so site 1 can read.
func sharingTrace() []obs.Event {
	return []obs.Event{
		{T: 0, Type: obs.EvPageState, Site: 0, Seg: 1, Page: 0, Arg: 2},
		{T: 1 * time.Millisecond, Type: obs.EvFault, Site: 1, Seg: 1, Page: 0},
		{T: 1 * time.Millisecond, Type: obs.EvGrantStart, Site: 0, Seg: 1, Page: 0, Cycle: 1},
		{T: 2 * time.Millisecond, Type: obs.EvDowngrade, Site: 0, Seg: 1, Page: 0, Cycle: 1},
		{T: 3 * time.Millisecond, Type: obs.EvPageState, Site: 1, Seg: 1, Page: 0, Cycle: 1, Arg: 1},
		{T: 3 * time.Millisecond, Type: obs.EvGrantEnd, Site: 0, Seg: 1, Page: 0, Cycle: 1},
	}
}

// twoWriterTrace violates single-writer exclusion: both sites install
// write copies with no invalidation between.
func twoWriterTrace() []obs.Event {
	return []obs.Event{
		{T: 0, Type: obs.EvPageState, Site: 0, Seg: 1, Page: 0, Arg: 2},
		{T: 1 * time.Millisecond, Type: obs.EvGrantStart, Site: 0, Seg: 1, Page: 0, Cycle: 1},
		{T: 2 * time.Millisecond, Type: obs.EvPageState, Site: 1, Seg: 1, Page: 0, Cycle: 1, Arg: 2},
		{T: 2 * time.Millisecond, Type: obs.EvGrantEnd, Site: 0, Seg: 1, Page: 0, Cycle: 1},
	}
}

func runTrace(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsage(t *testing.T) {
	if code, _, stderr := runTrace(t); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Fatalf("bare invocation: code %d, stderr %q", code, stderr)
	}
	if code, _, _ := runTrace(t, "help"); code != 2 {
		t.Fatal("help should exit 2")
	}
}

func TestSummarize(t *testing.T) {
	path := writeTrace(t, 2, sharingTrace())
	code, stdout, stderr := runTrace(t, "summarize", path)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, "2 sites") {
		t.Errorf("summary missing header info:\n%s", stdout)
	}
}

func TestTimeline(t *testing.T) {
	path := writeTrace(t, 2, sharingTrace())
	code, stdout, _ := runTrace(t, "timeline", "-page", "0", path)
	if code != 0 {
		t.Fatalf("code %d", code)
	}
	if len(strings.Split(strings.TrimSpace(stdout), "\n")) < 4 {
		t.Errorf("timeline too short:\n%s", stdout)
	}
}

func TestChromeExport(t *testing.T) {
	path := writeTrace(t, 2, sharingTrace())
	out := filepath.Join(t.TempDir(), "out.json")
	code, stdout, stderr := runTrace(t, "chrome", "-o", out, path)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, out) {
		t.Errorf("chrome output path not reported:\n%s", stdout)
	}
	if data, err := os.ReadFile(out); err != nil || !strings.Contains(string(data), "traceEvents") {
		t.Errorf("chrome file bad: %v", err)
	}
}

func TestDenialsEmpty(t *testing.T) {
	path := writeTrace(t, 2, sharingTrace())
	code, stdout, _ := runTrace(t, "denials", path)
	if code != 0 || !strings.Contains(stdout, "no Δ-window denials") {
		t.Fatalf("code %d:\n%s", code, stdout)
	}
}

func TestCheckCoherentTrace(t *testing.T) {
	path := writeTrace(t, 2, sharingTrace())
	code, stdout, stderr := runTrace(t, "check", path)
	if code != 0 {
		t.Fatalf("coherent trace flagged: code %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "coherent: no invariant violations") {
		t.Errorf("missing verdict:\n%s", stdout)
	}
	if !strings.Contains(stdout, "no op records") {
		t.Errorf("missing op-record note:\n%s", stdout)
	}
}

func TestCheckFlagsViolations(t *testing.T) {
	path := writeTrace(t, 2, twoWriterTrace())
	code, stdout, stderr := runTrace(t, "check", path)
	if code != 1 {
		t.Fatalf("two-writer trace passed: code %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "single-writer") {
		t.Errorf("violation invariant not named:\n%s", stdout)
	}
	if !strings.Contains(stderr, "violation(s)") {
		t.Errorf("stderr missing count: %s", stderr)
	}
}

func TestCheckMissingFile(t *testing.T) {
	if code, _, _ := runTrace(t, "check", filepath.Join(t.TempDir(), "nope.jsonl")); code != 1 {
		t.Fatalf("missing file: code %d, want 1", code)
	}
}

func TestReflog(t *testing.T) {
	l := trace.NewLog()
	for i := 0; i < 12; i++ {
		l.Record(trace.Entry{
			T: time.Duration(i) * 10 * time.Millisecond, Seg: 1, Page: 3,
			Site: 1, Pid: 7, Write: i%2 == 0,
		})
	}
	path := filepath.Join(t.TempDir(), "refs.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runTrace(t, "reflog", path)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, "12 requests") {
		t.Errorf("request count missing:\n%s", stdout)
	}
	// Dominated by remote site 1 -> migration advice expected.
	if !strings.Contains(stdout, "migration advice") {
		t.Errorf("no migration advice:\n%s", stdout)
	}
	// Historical bare-file interface routes to reflog too.
	if code, stdout, _ := runTrace(t, path); code != 0 || !strings.Contains(stdout, "12 requests") {
		t.Errorf("historical interface broken: code %d\n%s", code, stdout)
	}
}
