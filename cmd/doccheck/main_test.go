package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeGo drops one Go source file into dir.
func writeGo(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunCleanPackage(t *testing.T) {
	dir := t.TempDir()
	writeGo(t, dir, "ok.go", `// Package ok is documented.
package ok

// Exported is documented.
func Exported() {}

func unexported() {}
`)
	var out, errb strings.Builder
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced output: %s", out.String())
	}
}

func TestRunFlagsMissingDocs(t *testing.T) {
	dir := t.TempDir()
	writeGo(t, dir, "bad.go", `package bad

func Undocumented() {}

const MissingDoc = 1

type AlsoMissing struct{}
`)
	var out, errb strings.Builder
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"Undocumented", "MissingDoc", "AlsoMissing"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "3 problem(s)") {
		t.Errorf("stderr count wrong: %s", errb.String())
	}
}

func TestRunBadDir(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{filepath.Join(t.TempDir(), "missing")}, &out, &errb); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
}

// TestRepoPublicPackageIsDocumented is the check the CI job runs: the
// repository's own public package must stay fully documented.
func TestRepoPublicPackageIsDocumented(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"../.."}, &out, &errb); code != 0 {
		t.Fatalf("public package has undocumented identifiers:\n%s%s", out.String(), errb.String())
	}
}

// TestObsNamesRepoDocInSync is the other CI check: the observability
// reference and internal/obs's compiled-in vocabulary must agree in
// both directions.
func TestObsNamesRepoDocInSync(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-obs", "../../docs/OBSERVABILITY.md"}, &out, &errb); code != 0 {
		t.Fatalf("docs/OBSERVABILITY.md out of sync with internal/obs:\n%s%s", out.String(), errb.String())
	}
}

// TestObsNamesCatchesDrift feeds the checker a doc that misspells one
// counter and (being tiny) omits nearly everything: both directions
// must fire.
func TestObsNamesCatchesDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "OBS.md")
	doc := "| counter | meaning |\n|---------|---------|\n| `read_faults` | fine |\n| `not_a_counter` | drifted |\n"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-obs", path}, &out, &errb); code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"not_a_counter", which internal/obs does not define`) {
		t.Errorf("misspelled counter not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "never documented") {
		t.Errorf("undocumented names not flagged:\n%s", out.String())
	}
	if strings.Contains(out.String(), `"read_faults", which`) {
		t.Errorf("real counter wrongly flagged:\n%s", out.String())
	}
}
