// Command doccheck verifies that every exported identifier in the
// given packages carries a doc comment. It is the documentation half of
// the docs-and-vet CI job: golint is long gone and go vet does not
// check comments, so this keeps the public API's godoc complete.
//
// Usage:
//
//	go run ./cmd/doccheck [-obs docs/OBSERVABILITY.md] [dir ...]
//
// With no arguments it checks the repository's public package (the
// current directory). Exits non-zero listing every exported const, var,
// type, function, method, and struct/interface field group that lacks
// documentation. Test files and the blank-identifier idiom are ignored.
//
// -obs cross-checks an observability reference against the metric and
// event vocabulary compiled into internal/obs, in both directions:
// every name the doc's counter/histogram/event tables mention must
// exist in the registry (the doc cannot drift ahead or misspell), and
// every name the registry defines must appear somewhere in the doc (a
// new counter cannot ship undocumented).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"

	"mirage/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it checks each directory and writes
// problems to stdout, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	var dirs []string
	obsDoc := ""
	for i := 0; i < len(args); i++ {
		if args[i] == "-obs" || args[i] == "--obs" {
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "doccheck: -obs needs a markdown file argument")
				return 2
			}
			i++
			obsDoc = args[i]
			continue
		}
		dirs = append(dirs, args[i])
	}
	if len(dirs) == 0 && obsDoc == "" {
		dirs = []string{"."}
	}
	var problems []string
	for _, dir := range dirs {
		ps, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "doccheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if obsDoc != "" {
		ps, err := checkObsNames(obsDoc)
		if err != nil {
			fmt.Fprintf(stderr, "doccheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(stdout, p)
		}
		fmt.Fprintf(stderr, "doccheck: %d problem(s)\n", len(problems))
		return 1
	}
	return 0
}

// backticked matches `name` spans in markdown.
var backticked = regexp.MustCompile("`([^`]+)`")

// checkObsNames cross-checks the observability reference against
// internal/obs. The doc's counter, histogram, and event tables are
// recognized by their header's first column (`counter`, `histogram`,
// `ev`); every backticked name in a recognized table's first column
// must be a registered name of that kind. In the other direction,
// every registered counter, histogram, and event name must be
// mentioned (backticked) somewhere in the doc.
func checkObsNames(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := string(data)

	counters := map[string]bool{}
	for _, c := range obs.Counters() {
		counters[c.String()] = true
	}
	hists := map[string]bool{}
	for _, h := range obs.Hists() {
		hists[h.String()] = true
	}
	events := map[string]bool{}
	for _, t := range obs.EvTypes() {
		events[t.String()] = true
	}
	sets := map[string]map[string]bool{"counter": counters, "histogram": hists, "ev": events}

	var problems []string
	table := "" // first-column header of the table being scanned
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "|") {
			table = ""
			continue
		}
		cells := strings.Split(trimmed, "|")
		if len(cells) < 2 {
			continue
		}
		first := strings.TrimSpace(cells[1])
		if _, known := sets[first]; known {
			table = first
			continue
		}
		if table == "" || strings.Trim(first, "-: ") == "" {
			continue // outside a recognized table, or the separator row
		}
		for _, m := range backticked.FindAllStringSubmatch(first, -1) {
			if !sets[table][m[1]] {
				problems = append(problems, fmt.Sprintf(
					"%s: %s table documents %q, which internal/obs does not define", path, table, m[1]))
			}
		}
	}

	for kind, set := range sets {
		for name := range set {
			if !strings.Contains(doc, "`"+name+"`") {
				problems = append(problems, fmt.Sprintf(
					"%s: %s %q is defined in internal/obs but never documented", path, kind, name))
			}
		}
	}
	return problems, nil
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			problems = append(problems, checkFile(fset, file)...)
		}
	}
	return problems, nil
}

func checkFile(fset *token.FileSet, file *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if exported(d.Name) && d.Doc == nil && exportedRecv(d) {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
	return problems
}

// exportedRecv reports whether a method's receiver type is exported; a
// method on an unexported type is not part of the godoc surface unless
// the type is (interface satisfaction on unexported types is common and
// fine undocumented).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function: caller decides by name
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if exported(s.Name) && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			// A const/var group is fine if the group (or the spec) has a
			// comment; uncommented exported singles are flagged.
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if exported(name) {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

func exported(id *ast.Ident) bool {
	return id != nil && id.Name != "_" && id.IsExported()
}
