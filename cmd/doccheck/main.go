// Command doccheck verifies that every exported identifier in the
// given packages carries a doc comment. It is the documentation half of
// the docs-and-vet CI job: golint is long gone and go vet does not
// check comments, so this keeps the public API's godoc complete.
//
// Usage:
//
//	go run ./cmd/doccheck [dir ...]
//
// With no arguments it checks the repository's public package (the
// current directory). Exits non-zero listing every exported const, var,
// type, function, method, and struct/interface field group that lacks
// documentation. Test files and the blank-identifier idiom are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it checks each directory and writes
// problems to stdout, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	dirs := args
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var problems []string
	for _, dir := range dirs {
		ps, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "doccheck: %v\n", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(stdout, p)
		}
		fmt.Fprintf(stderr, "doccheck: %d exported identifier(s) missing doc comments\n", len(problems))
		return 1
	}
	return 0
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			problems = append(problems, checkFile(fset, file)...)
		}
	}
	return problems, nil
}

func checkFile(fset *token.FileSet, file *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if exported(d.Name) && d.Doc == nil && exportedRecv(d) {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
	return problems
}

// exportedRecv reports whether a method's receiver type is exported; a
// method on an unexported type is not part of the godoc surface unless
// the type is (interface satisfaction on unexported types is common and
// fine undocumented).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function: caller decides by name
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if exported(s.Name) && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			// A const/var group is fine if the group (or the spec) has a
			// comment; uncommented exported singles are flagged.
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if exported(name) {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

func exported(id *ast.Ident) bool {
	return id != nil && id.Name != "_" && id.IsExported()
}
