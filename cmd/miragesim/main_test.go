package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "nope"},
		{"-workload", "nope"},
		{"-runs", "0"},
		{"-workload", "readers", "-sites", "1"},
		{"-chaos", "drop q=banana"},
		{"-runs", "2", "-reflog", "x"},
	} {
		if code, _, stderr := runSim(t, args...); code != 2 {
			t.Errorf("args %v: code %d (stderr %q), want 2", args, code, stderr)
		}
	}
}

func TestCountersRun(t *testing.T) {
	code, stdout, stderr := runSim(t, "-workload", "counters", "-delta", "600ms", "-dur", "2s")
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr)
	}
	for _, want := range []string{"workload=counters", "read-write insn/s", "network:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

func TestCheckedRunClean(t *testing.T) {
	code, stdout, stderr := runSim(t, "-workload", "counters", "-delta", "600ms", "-dur", "2s", "-check")
	if code != 0 {
		t.Fatalf("coherence check failed: code %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "coherence check:") || !strings.Contains(stdout, "clean") {
		t.Errorf("check verdict missing:\n%s", stdout)
	}
}

func TestCheckedPingPongWithWindow(t *testing.T) {
	code, stdout, stderr := runSim(t, "-workload", "pingpong", "-delta", "33ms", "-dur", "2s", "-check")
	if code != 0 {
		t.Fatalf("coherence check failed: code %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "clean") {
		t.Errorf("check verdict missing:\n%s", stdout)
	}
}

func TestAutoDeltaCheckedRun(t *testing.T) {
	// A ping-pong run seeded at a deliberately large Δ: the controller
	// must shrink it (the Δ-grows/Δ-shrinks table is non-trivial) and
	// the retuned trace must verify clean at the Min bound.
	code, stdout, stderr := runSim(t,
		"-workload", "pingpong", "-delta", "100ms", "-dur", "3s",
		"-autodelta", "-check")
	if code != 0 {
		t.Fatalf("autodelta run check failed: code %d\n%s%s", code, stdout, stderr)
	}
	for _, want := range []string{"Δ-shrinks", "clean"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	if !regexp.MustCompile(`(?m)^0\s+\d+\s+[1-9]\d*$`).MatchString(stdout) {
		t.Errorf("library site should report at least one Δ-shrink:\n%s", stdout)
	}
}

func TestCheckedChaosRun(t *testing.T) {
	code, stdout, stderr := runSim(t,
		"-workload", "counters", "-delta", "120ms", "-dur", "2s",
		"-chaos", "drop p=0.05; dup p=0.1; delay p=0.2 max=5ms", "-chaos-seed", "7",
		"-check")
	if code != 0 {
		t.Fatalf("chaos run check failed: code %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "chaos plan:") {
		t.Errorf("chaos stats missing:\n%s", stdout)
	}
}

func TestFailoverCheckedRun(t *testing.T) {
	// Crash the library mid-run: the survivor elects itself successor,
	// the workload completes, and the multi-epoch trace verifies clean.
	code, stdout, stderr := runSim(t,
		"-workload", "counters", "-dur", "4s",
		"-chaos", "crash site=0 from=2s", "-failover", "-check")
	if code != 0 {
		t.Fatalf("failover run check failed: code %d\n%s%s", code, stdout, stderr)
	}
	for _, want := range []string{"failovers", "clean"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	if !regexp.MustCompile(`(?m)^1\s+1\s+1\s+0\s+0\s+0$`).MatchString(stdout) {
		t.Errorf("site 1 should report one failover and one recovery:\n%s", stdout)
	}
}

func TestServiceRun(t *testing.T) {
	// -runs 2 puts the rung headline plus the per-shard store digest
	// through the determinism comparison; -metrics shows the app
	// counters reached the registry.
	code, stdout, stderr := runSim(t,
		"-workload", "service", "-sites", "4", "-rate", "25", "-dur", "2s",
		"-runs", "2", "-metrics")
	if code != 0 {
		t.Fatalf("code %d\n%s%s", code, stdout, stderr)
	}
	for _, want := range []string{"identical results: true", "workload=service",
		"goodput", "liveness=true", "store (per shard):", "app_ops"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

func TestServiceBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "service", "-skew", "nope"},
		{"-workload", "service", "-rate", "-3"},
		{"-workload", "service", "-sites", "0"},
	} {
		if code, _, stderr := runSim(t, args...); code != 2 {
			t.Errorf("args %v: code %d (stderr %q), want 2", args, code, stderr)
		}
	}
}

func TestParallelRunsIdentical(t *testing.T) {
	code, stdout, stderr := runSim(t, "-workload", "counters", "-delta", "600ms", "-dur", "1s", "-runs", "3", "-check")
	if code != 0 {
		t.Fatalf("code %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "identical results: true") {
		t.Errorf("determinism check missing:\n%s", stdout)
	}
}

func TestTraceAndReflogFiles(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "run.jsonl")
	rl := filepath.Join(dir, "refs.log")
	code, stdout, stderr := runSim(t,
		"-workload", "counters", "-delta", "600ms", "-dur", "1s",
		"-trace", tr, "-reflog", rl, "-metrics")
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr)
	}
	for _, want := range []string{"protocol trace:", "reference log:", "metrics registry:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	for _, p := range []string{tr, rl} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty: %v", p, err)
		}
	}
}
