// Command miragesim runs one simulated Mirage scenario with explicit
// parameters and prints protocol, scheduler, and network statistics —
// the exploration tool behind the fixed sweeps in miragebench.
//
// Workloads:
//
//	pingpong — the §7.2 worst-case application (two sites)
//	counters — the §8.0 representative application (two sites)
//	readers  — one writer at the library plus N-1 polling readers
//	service  — the sharded session store under open-loop load (E19);
//	           -rate and -skew set the offered load, and the per-shard
//	           store counters join the stats tables and -runs digest
//	affinity — the service store with every site's lanes favoring
//	           shards whose libraries placement put one site over
//	           (E21); with -migrate the libraries rehome themselves
//	           to their dominant requesters mid-run
//
// Examples:
//
//	miragesim -workload pingpong -delta 33ms -dur 30s -yield=false
//	miragesim -workload counters -delta 600ms -dur 10s -trace /tmp/run.jsonl
//	miragesim -workload counters -delta 600ms -metrics
//	miragesim -workload readers -sites 4 -delta 100ms
//	miragesim -workload readers -sites 200 -fanout 8 -delta 20ms
//	miragesim -workload counters -chaos "drop p=0.05; delay p=0.3 max=20ms" -chaos-seed 7
//	miragesim -workload counters -delta 600ms -runs 8
//	miragesim -workload counters -delta 600ms -check
//	miragesim -workload readers -sites 3 -chaos "crash site=0 from=2s" -failover -check
//	miragesim -workload readers -sites 4 -replicas 2 -chaos "crash site=0 from=2s" -check
//	miragesim -workload service -sites 4 -rate 100 -skew zipf -dur 5s -metrics
//	miragesim -workload affinity -sites 4 -rate 150 -dur 16s -migrate -check
//	miragesim -workload pingpong -delta 100ms -autodelta -check
//
// -trace writes the run's protocol event timeline in the schema-v1
// JSONL encoding (docs/OBSERVABILITY.md); analyze it with miragetrace
// summarize/timeline/chrome/denials. -reflog writes the library-site
// reference log for miragetrace's page-heat analysis. -metrics dumps
// the observability counter registry after the run.
//
// -check records the run's trace (with per-access op events) and
// verifies it against the coherence invariants (internal/check); any
// violation is printed and the command exits 1. The virtual clock
// makes the check exact — no timestamp slack is needed.
//
// -failover turns on library-site failover (DESIGN.md §11): when a
// chaos plan fail-stops the library site, the next live site by number
// reconstructs its records from the survivors and resumes granting
// under a bumped library epoch. The flag implies the reliability
// layer; the per-site failover/recovery/fencing counters are printed
// after the run.
//
// -replicas R replicates each segment's library record to the R sites
// after the library in ID order (DESIGN.md §15, docs/REPLICATION.md):
// every record mutation is mirrored to a follower quorum before it is
// acknowledged, so when a chaos plan fail-stops the library the
// successor is elected from the replication group and installs from
// its log tail — no holder interrogation, no recovery pause. The flag
// implies -failover; the append/commit/degraded/election counters join
// the failover table.
//
// -autodelta turns on the per-page closed-loop Δ controller (DESIGN.md
// §16, docs/TUNING.md) at production defaults: -delta becomes the seed
// the controller walks away from, the per-site grow/shrink counters
// are printed after the run, and -check verifies the trace with the
// controller's Min as the window bound — the sound lower bound on
// every clamped grant.
//
// -migrate additionally lets a library voluntarily rehome a segment to
// the site that dominates its request demand (DESIGN.md §14,
// docs/PLACEMENT.md), reusing the failover epoch fence for the
// handoff. It implies -failover; the migrations/refused counters join
// the failover table.
//
// -runs N executes the scenario N times concurrently (one virtual
// cluster each) and verifies every run produced identical results —
// the simulator's determinism check, and a parallel speedup measure on
// multi-core hosts. With -trace the comparison includes a digest of
// each run's serialized trace, so the timeline itself is checked for
// bit-reproducibility (run 0's trace is the one written).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"mirage/internal/app"
	"mirage/internal/chaos"
	"mirage/internal/check"
	"mirage/internal/core"
	"mirage/internal/exp"
	"mirage/internal/ipc"
	"mirage/internal/load"
	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/stats"
	"mirage/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "miragesim: "+format+"\n", a...)
		return 2
	}
	fs := flag.NewFlagSet("miragesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "pingpong", "pingpong | counters | readers | service | affinity")
	delta := fs.Duration("delta", 0, "time window Δ")
	dur := fs.Duration("dur", 10*time.Second, "virtual run length")
	sites := fs.Int("sites", 2, "number of sites (readers and service workloads)")
	fanout := fs.Int("fanout", 0, "invalidation fan-out tree arity k (0 or 1 = flat per-reader unicast)")
	rate := fs.Float64("rate", 50, "offered load in req/s (service workload)")
	skew := fs.String("skew", "zipf", "key popularity: uniform | zipf | hotspot (service workload)")
	yield := fs.Bool("yield", true, "use the yield() call in wait loops (pingpong)")
	policy := fs.String("policy", "retry", "invalidation policy: retry | honor-close | queue")
	tracePath := fs.String("trace", "", "write the protocol event trace (schema-v1 JSONL) to this file")
	reflogPath := fs.String("reflog", "", "write the library's reference log to this file")
	metrics := fs.Bool("metrics", false, "dump the observability metrics registry after the run")
	chaosSpec := fs.String("chaos", "", `fault plan, e.g. "drop p=0.05; delay p=0.3 max=20ms; partition sites=1 from=2s until=3s"`)
	failover := fs.Bool("failover", false, "elect a successor library when the library site fail-stops (implies the ARQ layer)")
	migrate := fs.Bool("migrate", false, "let libraries voluntarily rehome hot segments to their dominant requester (implies -failover)")
	replicas := fs.Int("replicas", 0, "replicate library records to R follower sites for pauseless takeover (implies -failover)")
	autodelta := fs.Bool("autodelta", false, "close the Δ loop: per-page controller at production defaults (-delta seeds it)")
	chaosSeed := fs.Int64("chaos-seed", 0, "override the plan's seed (0 keeps the plan's own)")
	runs := fs.Int("runs", 1, "run the scenario N times in parallel and verify identical results")
	checkRun := fs.Bool("check", false, "verify the run's trace against the coherence invariants; exit 1 on violation")
	if fs.Parse(args) != nil {
		return 2
	}

	var pol core.InvalPolicy
	switch *policy {
	case "retry":
		pol = core.PolicyRetry
	case "honor-close":
		pol = core.PolicyHonorClose
	case "queue":
		pol = core.PolicyQueue
	default:
		return fail("unknown policy %q", *policy)
	}
	if *runs < 1 {
		return fail("-runs must be at least 1")
	}
	if *replicas < 0 {
		return fail("-replicas must be non-negative")
	}
	if *runs > 1 && *reflogPath != "" {
		return fail("-reflog is incompatible with -runs > 1")
	}

	var recorder *trace.Log
	if *reflogPath != "" {
		recorder = trace.NewLog()
	}

	if *sites > mmu.MaxSites {
		return fail("-sites %d: %v", *sites, mmu.ErrTooManySites)
	}

	n := 2
	var svcSkew load.Skew
	switch *workload {
	case "pingpong", "counters":
	case "readers":
		n = *sites
		if n < 2 {
			return fail("readers needs at least 2 sites")
		}
	case "service":
		n = *sites
		if n < 1 {
			return fail("service needs at least 1 site")
		}
		var err error
		svcSkew, err = load.ParseSkew(*skew)
		if err != nil {
			return fail("%v", err)
		}
		if *rate <= 0 {
			return fail("-rate must be positive")
		}
	case "affinity":
		n = *sites
		if n < 2 {
			return fail("affinity needs at least 2 sites")
		}
		if *rate <= 0 {
			return fail("-rate must be positive")
		}
	default:
		return fail("unknown workload %q", *workload)
	}
	if *replicas >= n {
		return fail("-replicas %d must be below the cluster size %d", *replicas, n)
	}

	var basePlan *chaos.Plan
	if *chaosSpec != "" {
		var err error
		basePlan, err = chaos.Parse(*chaosSpec)
		if err != nil {
			return fail("bad -chaos plan: %v", err)
		}
		if *chaosSeed != 0 {
			basePlan.Seed = *chaosSeed
		}
	}

	// runOnce builds a fresh virtual cluster and drives the scenario to
	// completion; every run is self-contained (own cluster, own obs
	// sink), so N of them can execute concurrently and must agree bit
	// for bit.
	wantTrace := *tracePath != "" || *checkRun
	runOnce := func() (string, *ipc.Cluster, *obs.Obs, *app.Stats) {
		opts := core.Options{Policy: pol, InvalFanout: *fanout}
		if recorder != nil {
			opts.Tracer = recorder
		}
		var o *obs.Obs
		if wantTrace || *metrics {
			o = obs.New()
			if !wantTrace {
				o.Tracer = nil // metrics only; skip event buffering
			}
			opts.Obs = o
		}
		var plan *chaos.Plan
		if basePlan != nil {
			p := *basePlan
			plan = &p
			// A lossy fabric needs the ARQ layer; zero value = defaults.
			opts.Reliability = &core.Reliability{}
		}
		if *failover || *migrate || *replicas > 0 {
			// Failover rides on the ARQ give-up verdict, so it implies
			// the reliability layer even on a clean fabric; migration
			// and replication ride on the failover epoch fence in turn.
			if opts.Reliability == nil {
				opts.Reliability = &core.Reliability{}
			}
			opts.Failover = &core.Failover{}
		}
		if *replicas > 0 {
			opts.Replication = &core.Replication{Replicas: *replicas}
		}
		if *autodelta {
			opts.AutoDelta = &core.AutoDelta{}
		}
		if *migrate {
			opts.Placement = &core.Placement{}
			if *workload == "affinity" {
				// Fault-driven demand is far sparser than op-driven load;
				// use the thresholds the E21 sweep runs with.
				opts.Placement = exp.MigrationConfig{}.Policy()
			}
		}
		c := ipc.NewCluster(n, ipc.Config{Delta: *delta, Engine: opts, Chaos: plan})
		var headline string
		var svc *app.Stats
		switch *workload {
		case "pingpong":
			cycles := exp.RunPingPongForDebug(c, 0, 1, *yield, *dur)
			headline = fmt.Sprintf("%.2f cycles/s (yield=%v)", float64(cycles)/dur.Seconds(), *yield)
		case "counters":
			insn := exp.RunCountersForDebug(c, *dur)
			headline = fmt.Sprintf("%.0f read-write insn/s", insn)
		case "readers":
			headline = runReaders(c, *dur)
		case "service":
			cfg := exp.ServiceConfig{Sites: n, Duration: *dur, Skew: svcSkew}.WithDefaults()
			svc = app.NewStats(cfg.Shards)
			g := exp.RunService(c, cfg, *rate, svc, o)
			headline = fmt.Sprintf("%.1f req/s goodput at %.0f offered; shed %d, p50 %v, p99 %v, liveness=%v",
				g.Goodput, *rate, g.Shed, time.Duration(g.Latency.P50), time.Duration(g.Latency.P99), g.LivenessOK)
		case "affinity":
			cfg := exp.MigrationConfig{Sites: n, Duration: *dur, Rate: *rate}.WithDefaults()
			svc = app.NewStats(cfg.Shards)
			g := exp.RunAffinity(c, cfg, false, svc, o)
			migs := 0
			for i := 0; i < c.Sites(); i++ {
				migs += c.Site(i).Eng.Stats().Migrations
			}
			headline = fmt.Sprintf("%.1f req/s goodput at %.0f offered; shed %d, p50 %v, p99 %v, %d voluntary migrations",
				g.Goodput, *rate, g.Shed, time.Duration(g.Latency.P50), time.Duration(g.Latency.P99), migs)
		}
		return headline, c, o, svc
	}

	var headline string
	var c *ipc.Cluster
	var o *obs.Obs
	var svc *app.Stats
	if *runs == 1 {
		headline, c, o, svc = runOnce()
	} else {
		headlines := make([]string, *runs)
		digests := make([]string, *runs)
		clusters := make([]*ipc.Cluster, *runs)
		sinks := make([]*obs.Obs, *runs)
		svcs := make([]*app.Stats, *runs)
		start := time.Now()
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i := 0; i < *runs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				h, cl, oo, st := runOnce()
				headlines[i] = h
				digests[i] = h + " | " + digest(cl) + svcDigest(st) + traceDigest(cl, oo)
				clusters[i] = cl
				sinks[i] = oo
				svcs[i] = st
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		identical := true
		for i := 1; i < *runs; i++ {
			if digests[i] != digests[0] {
				identical = false
				fmt.Fprintf(stderr, "miragesim: run %d diverged:\n  run 0: %s\n  run %d: %s\n", i, digests[0], i, digests[i])
			}
		}
		fmt.Fprintf(stdout, "%d runs in %.2fs wall (%d-way), identical results: %v\n", *runs, wall.Seconds(), runtime.GOMAXPROCS(0), identical)
		if !identical {
			return 1
		}
		headline = headlines[0]
		// The runs are interchangeable; show run 0's detailed stats.
		c = clusters[0]
		o = sinks[0]
		svc = svcs[0]
	}

	fmt.Fprintf(stdout, "workload=%s sites=%d Δ=%v dur=%v policy=%s\n", *workload, n, *delta, *dur, *policy)
	fmt.Fprintf(stdout, "result: %s\n\n", headline)

	t := stats.NewTable("site", "rd-faults", "wr-faults", "pages tx/rx", "upgrades", "downgrades", "busies", "retries", "Δ-wait",
		"cpu user", "cpu kernel", "dispatches")
	for i := 0; i < c.Sites(); i++ {
		es := c.Site(i).Eng.Stats()
		cs := c.Site(i).CPU.Stats()
		t.Row(i, es.ReadFaults, es.WriteFaults,
			fmt.Sprintf("%d/%d", es.PagesSent, es.PagesReceived),
			es.Upgrades, es.Downgrades, es.BusyReplies, es.Retries,
			es.WindowWait.Round(time.Millisecond),
			cs.UserBusy.Round(time.Millisecond), cs.KernelBusy.Round(time.Millisecond), cs.Dispatches)
	}
	t.WriteTo(stdout)
	ns := c.Net.Stats()
	fmt.Fprintf(stdout, "\nnetwork: %d msgs (%d large, %d short), %d bytes, %d loopback\n",
		ns.Delivered, ns.LargeMsgs, ns.ShortMsgs, ns.Bytes, ns.Loopback)

	if svc != nil {
		fmt.Fprintln(stdout, "\nstore (per shard):")
		if _, err := svc.WriteTo(stdout); err != nil {
			return fail("%v", err)
		}
	}

	if c.Chaos != nil {
		executed := c.Chaos.Plan()
		fmt.Fprintf(stdout, "\nchaos plan: %s\n%v\n", executed.String(), c.Chaos.Stats())
		rt := stats.NewTable("site", "retransmits", "dup-drops", "gave-up", "degraded", "stale", "denied")
		for i := 0; i < c.Sites(); i++ {
			es := c.Site(i).Eng.Stats()
			rt.Row(i, es.Retransmits, es.DupDrops, es.GaveUp, es.Degraded, es.Stale, es.Denied)
		}
		rt.WriteTo(stdout)
	}

	if *failover || *migrate || *replicas > 0 {
		ft := stats.NewTable("site", "failovers", "recoveries", "stale-epoch fenced", "migrations", "refused")
		for i := 0; i < c.Sites(); i++ {
			es := c.Site(i).Eng.Stats()
			ft.Row(i, es.Failovers, es.Recoveries, es.StaleEpoch, es.Migrations, es.MigrationsRefused)
		}
		fmt.Fprintln(stdout)
		ft.WriteTo(stdout)
	}

	if *replicas > 0 {
		rt := stats.NewTable("site", "appends", "commits", "degraded", "elections")
		for i := 0; i < c.Sites(); i++ {
			es := c.Site(i).Eng.Stats()
			rt.Row(i, es.Appends, es.ReplCommits, es.ReplDegraded, es.Elections)
		}
		fmt.Fprintln(stdout)
		rt.WriteTo(stdout)
	}

	if *autodelta {
		at := stats.NewTable("site", "Δ-grows", "Δ-shrinks")
		for i := 0; i < c.Sites(); i++ {
			es := c.Site(i).Eng.Stats()
			at.Row(i, es.DeltaGrows, es.DeltaShrinks)
		}
		fmt.Fprintln(stdout)
		at.WriteTo(stdout)
	}

	if h := c.FaultLatency; h.Count() > 0 {
		fmt.Fprintf(stdout, "\nfault latency: %d faults, mean %v, p50 ≤%v, p99 ≤%v, max %v\n",
			h.Count(), h.Mean().Round(100*time.Microsecond),
			h.Quantile(0.5), h.Quantile(0.99), h.Max().Round(100*time.Microsecond))
		h.WriteTo(stdout)
	}

	if *metrics && o != nil {
		fmt.Fprintln(stdout, "\nmetrics registry:")
		if _, err := o.Metrics.WriteTo(stdout); err != nil {
			return fail("%v", err)
		}
	}

	if *tracePath != "" && o != nil {
		buf := o.Buffer()
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail("%v", err)
		}
		if err := obs.WriteJSONL(f, obs.NewHeader(obs.ClockVirtual, c.Sites()), buf.Events()); err != nil {
			f.Close()
			return fail("%v", err)
		}
		if err := f.Close(); err != nil {
			return fail("%v", err)
		}
		note := ""
		if d := buf.Dropped(); d > 0 {
			note = fmt.Sprintf(" (%d dropped at the buffer cap)", d)
		}
		fmt.Fprintf(stdout, "protocol trace: %d events -> %s%s (analyze with miragetrace summarize)\n", buf.Len(), *tracePath, note)
	}

	if recorder != nil {
		f, err := os.Create(*reflogPath)
		if err != nil {
			return fail("%v", err)
		}
		if _, err := recorder.WriteTo(f); err != nil {
			f.Close()
			return fail("%v", err)
		}
		if err := f.Close(); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stdout, "reference log: %d entries -> %s (analyze with miragetrace reflog)\n", recorder.Len(), *reflogPath)
	}

	if *checkRun {
		buf := o.Buffer()
		if d := buf.Dropped(); d > 0 {
			return fail("trace buffer dropped %d events; coherence check would be unsound (shorten -dur)", d)
		}
		cfg := check.Config{Sites: c.Sites(), Delta: *delta, Reliable: basePlan != nil}
		if *autodelta {
			// The controller retunes windows at runtime; the only sound
			// static bound on every clamped grant is its configured Min.
			cfg.Delta = core.AutoDelta{}.Min
		}
		viols := check.Verify(cfg, buf.Events())
		if len(viols) == 0 {
			fmt.Fprintf(stdout, "\ncoherence check: %d events, clean\n", buf.Len())
		} else {
			fmt.Fprintf(stdout, "\ncoherence check: %d events, %d violation(s):\n", buf.Len(), len(viols))
			for _, v := range viols {
				fmt.Fprintf(stdout, "  %v\n", v)
			}
			return 1
		}
	}
	return 0
}

// svcDigest folds the service workload's per-shard store counters into
// the -runs determinism comparison; other workloads contribute nothing.
func svcDigest(st *app.Stats) string {
	if st == nil {
		return ""
	}
	return " app{" + st.Digest() + "}"
}

// traceDigest folds a run's serialized protocol trace into the -runs
// comparison: a sha256 over the exact JSONL bytes, so any divergence in
// event order, timing, or content between runs fails the check.
func traceDigest(c *ipc.Cluster, o *obs.Obs) string {
	if o == nil || o.Buffer() == nil {
		return ""
	}
	h := sha256.New()
	if err := obs.WriteJSONL(h, obs.NewHeader(obs.ClockVirtual, c.Sites()), o.Buffer().Events()); err != nil {
		panic(err) // sha256.New never fails to Write
	}
	return fmt.Sprintf(" trace{sha256=%x}", h.Sum(nil))
}

// digest summarizes a finished cluster's observable state for the
// -runs determinism comparison: per-site protocol counters plus the
// fabric totals.
func digest(c *ipc.Cluster) string {
	s := ""
	for i := 0; i < c.Sites(); i++ {
		es := c.Site(i).Eng.Stats()
		s += fmt.Sprintf("site%d{rf=%d wf=%d tx=%d rx=%d up=%d busy=%d retry=%d} ",
			i, es.ReadFaults, es.WriteFaults, es.PagesSent, es.PagesReceived,
			es.Upgrades, es.BusyReplies, es.Retries)
	}
	ns := c.Net.Stats()
	s += fmt.Sprintf("net{msgs=%d bytes=%d}", ns.Delivered, ns.Bytes)
	if c.Chaos != nil {
		s += " chaos{" + c.Chaos.Stats().String() + "}"
	}
	return s
}

// runReaders spawns one writer colocated with the library and N-1
// remote readers polling the same page.
func runReaders(c *ipc.Cluster, dur time.Duration) string {
	writes, reads := 0, 0
	exp.SpawnSharedWriter(c, 0, dur, &writes)
	for s := 1; s < c.Sites(); s++ {
		exp.SpawnSharedReader(c, s, dur, &reads)
	}
	c.Run()
	return fmt.Sprintf("%.1f writes/s at the writer, %.1f reads/s across %d readers",
		float64(writes)/dur.Seconds(), float64(reads)/dur.Seconds(), c.Sites()-1)
}
