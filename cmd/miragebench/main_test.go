package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runBench(t, "-nope"); code != 2 {
		t.Fatalf("bad flag: code %d, want 2", code)
	}
}

func TestUnknownExperimentRunsNothing(t *testing.T) {
	code, stdout, _ := runBench(t, "-e", "e99")
	if code != 0 {
		t.Fatalf("code %d", code)
	}
	if strings.Contains(stdout, "== ") {
		t.Errorf("unknown id ran an experiment:\n%s", stdout)
	}
}

func TestE2ModelTable(t *testing.T) {
	// E2 is pure model arithmetic plus one short simulation: fast and
	// deterministic, a good smoke test for the table plumbing.
	code, stdout, stderr := runBench(t, "-e", "e2", "-quick")
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr)
	}
	for _, want := range []string{"== E2 —", "TOTAL (component sum)", "wall"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

func TestE17ModelCheck(t *testing.T) {
	code, stdout, stderr := runBench(t, "-e", "e17", "-quick")
	if code != 0 {
		t.Fatalf("E17 found violations or failed: code %d\n%s%s", code, stdout, stderr)
	}
	for _, want := range []string{"== E17 —", "complete", "random walk under chaos:", "0 violations"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "violation:") {
		t.Errorf("unexpected violations:\n%s", stdout)
	}
}

func TestE18FailoverSweepCommand(t *testing.T) {
	out := filepath.Join(t.TempDir(), "e18.jsonl")
	code, stdout, stderr := runBench(t, "-e", "e18", "-quick", "-trace", out)
	if code != 0 {
		t.Fatalf("E18 failed: code %d\n%s%s", code, stdout, stderr)
	}
	for _, want := range []string{"== E18 —", "recoveries", "same-seed replay identical: true",
		"all multi-epoch traces verify coherent", "trace (2 crashes): "} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "violation") {
		t.Errorf("unexpected violations:\n%s", stdout)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("trace file not written: %v", err)
	}
}

func TestE19ServiceLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock live ladder plus -out microbench")
	}
	out := filepath.Join(t.TempDir(), "e19.json")
	code, stdout, stderr := runBench(t, "-e", "e19", "-quick", "-out", out)
	if code != 0 {
		t.Fatalf("E19 failed: code %d\n%s%s", code, stdout, stderr)
	}
	for _, want := range []string{"== E19 —", "[sim]", "[sim+chaos]", "[live-tcp]",
		"knee: rung 1", "liveness below knee: HOLDS", "replay determinism: HOLDS"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if rec.Service == nil || len(rec.Service.Ladders) != 3 {
		t.Fatalf("record service section = %+v", rec.Service)
	}
	sim := rec.Service.Ladders[0]
	if sim.KneeRung != 1 || sim.P99AtHalfKnee <= 0 {
		t.Errorf("sim ladder knee = %+v", sim)
	}
	if !rec.Service.ReplayMatches {
		t.Error("replay determinism violated")
	}
}

func TestE23AutoDeltaCommand(t *testing.T) {
	code, stdout, stderr := runBench(t, "-e", "e23", "-quick")
	if code != 0 {
		t.Fatalf("E23 failed: code %d\n%s%s", code, stdout, stderr)
	}
	for _, want := range []string{"== E23 —", "[pingpong]", "[service]", "[affinity]",
		"auto matches best fixed: HOLDS", "traced run clean: HOLDS",
		"replay determinism: HOLDS"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "VIOLATED") {
		t.Errorf("unexpected violated verdict:\n%s", stdout)
	}
}

func TestOutRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("microbench loopback TCP is slow")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	code, stdout, stderr := runBench(t, "-e", "e2", "-quick", "-out", out)
	if code != 0 {
		t.Fatalf("code %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, "benchmark record:") {
		t.Errorf("record path not reported:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if len(rec.Experiments) != 1 || rec.Experiments[0].ID != "e2" {
		t.Errorf("record experiments = %+v", rec.Experiments)
	}
}
