// Command miragebench regenerates every quantitative table and figure
// of the Mirage paper's evaluation (§7–§8) on the calibrated
// simulator, printing measured values beside the paper's.
//
// Usage:
//
//	miragebench [-e all|e1,e4,e5,...] [-dur 20s] [-quick]
//
// Experiment IDs follow DESIGN.md's per-experiment index. -quick cuts
// run lengths for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mirage/internal/exp"
	"mirage/internal/stats"
	"mirage/internal/vaxmodel"
)

func main() {
	which := flag.String("e", "all", "comma-separated experiment ids (e1..e14) or 'all'")
	dur := flag.Duration("dur", 20*time.Second, "virtual run length per measurement point")
	quick := flag.Bool("quick", false, "short runs for a smoke pass")
	flag.Parse()

	if *quick {
		*dur = 5 * time.Second
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*which, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	run := func(id, title string, fn func()) {
		if !all && !want[id] {
			return
		}
		fmt.Printf("== %s — %s ==\n", strings.ToUpper(id), title)
		start := time.Now()
		fn()
		fmt.Printf("   (%.2fs wall)\n\n", time.Since(start).Seconds())
	}

	run("e1", "§7.1 component timings", func() {
		r := exp.ComponentTimings()
		t := stats.NewTable("measurement", "paper", "measured")
		t.Row("short message round trip", exp.PaperShortRTT, r.ShortRTT)
		t.Row("1 KB message + short reply", exp.PaperPagePlusReply, r.PagePlusReply)
		t.WriteTo(os.Stdout)
	})

	run("e2", "Table 3: remote in-memory page fetch", func() {
		r := exp.Table3()
		t := stats.NewTable("operation", "paper", "model")
		for _, row := range r.Rows {
			t.Row(row.Name, row.Paper, row.Model)
		}
		t.Row("TOTAL (component sum)", r.PaperTotal, r.ModelTotal)
		t.Row("TOTAL ELAPSED (full simulator)", r.PaperTotal, r.MeasuredTotal)
		t.WriteTo(os.Stdout)
	})

	run("e3", "§7.2 single-site worst case: yield() vs busy wait", func() {
		r := exp.SingleSiteWorstCase(*dur)
		t := stats.NewTable("variant", "paper cycles/s", "measured cycles/s")
		t.Row("busy wait", exp.PaperSingleSite.NoYield, r.NoYield)
		t.Row("yield()", exp.PaperSingleSite.WithYield, r.WithYield)
		t.Row("speedup", fmt.Sprintf("x%.0f", exp.PaperSingleSite.Speedup), fmt.Sprintf("x%.1f", r.Speedup))
		t.WriteTo(os.Stdout)
	})

	run("e4", "Figure 7: two-site worst case vs Δ", func() {
		pts := exp.Figure7(*dur, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
		t := stats.NewTable("Δ (ticks)", "yield cycles/s", "busy-wait cycles/s", "yield/busy")
		for _, p := range pts {
			t.Row(p.DeltaTicks, p.Yield, p.NoYield, stats.Ratio(p.Yield, p.NoYield))
		}
		t.WriteTo(os.Stdout)
		fmt.Println("paper anchors: yield(0)≈8, yield(2)≈4.5 (90% of the 5/s bound), ~1.5x yield advantage at Δ=2")
		tr := exp.MeasureWorstCaseTraffic(*dur, 0)
		fmt.Printf("traffic at Δ=0: %.1f msgs/cycle (%.1f large); derived per-cycle bound %v (paper: 9 msgs, 3 large, 109 ms)\n",
			tr.MsgsPerCycle, tr.LargePerCycle, tr.DerivedBound.Round(time.Millisecond))
	})

	run("e4b", "N-site worst case (§7.2's ring variant)", func() {
		pts := exp.NSiteWorstCase(*dur, []int{2, 3, 4, 6, 8})
		t := stats.NewTable("sites", "ring rotations/s", "msgs/rotation")
		for _, p := range pts {
			t.Row(p.Sites, p.CyclesPerSec, p.MsgsPerCycle)
		}
		t.WriteTo(os.Stdout)
		fmt.Println("paper: \"in a network with a larger number of sites sharing pages than ours, invalidations may become expensive\" (§10.0)")
	})

	run("e5", "Figure 8: representative application vs Δ", func() {
		d := 10 * time.Second // the paper's run length
		if *quick {
			d = 5 * time.Second
		}
		deltas := []time.Duration{
			0, 30 * time.Millisecond, 60 * time.Millisecond, 120 * time.Millisecond,
			300 * time.Millisecond, 450 * time.Millisecond, 600 * time.Millisecond,
			750 * time.Millisecond, 900 * time.Millisecond, 1200 * time.Millisecond,
			2400 * time.Millisecond,
		}
		pts := exp.Figure8(exp.CountersConfig{Duration: d}, deltas)
		t := stats.NewTable("Δ", "read-write insn/s", "bar")
		for _, p := range pts {
			t.Row(p.Delta, int(p.InsnPerSec), strings.Repeat("#", int(p.InsnPerSec/4000)))
		}
		t.WriteTo(os.Stdout)
		fmt.Printf("paper: maximum 115,000 insn/s at Δ=600 ms; contention side Δ<120 ms poor; retention side gradual\n")
	})

	run("e6", "§7.3 thrashing amelioration (bystander throughput)", func() {
		pts := exp.ThrashingAmelioration(*dur, []int{0, 2, 4, 6, 8})
		t := stats.NewTable("Δ (ticks)", "app cycles/s", "bystander units/s")
		for _, p := range pts {
			t.Row(p.DeltaTicks, p.AppCycles, p.BystanderUnits)
		}
		t.WriteTo(os.Stdout)
		fmt.Println("paper: raising Δ cuts the thrashing app's throughput but improves other processes")
	})

	run("e7", "§7.1 invalidation policy ablation", func() {
		d := 10 * time.Second
		if *quick {
			d = 5 * time.Second
		}
		pts := exp.InvalidationAblation(exp.CountersConfig{Duration: d},
			[]time.Duration{120 * time.Millisecond, 600 * time.Millisecond, 900 * time.Millisecond})
		t := stats.NewTable("policy", "Δ", "insn/s", "retries")
		for _, p := range pts {
			t.Row(p.Policy.String(), p.Delta, int(p.InsnPerSec), p.Retries)
		}
		t.WriteTo(os.Stdout)
		fmt.Println("paper: the prototype always retried; honor-close and queue are its proposed fixes")
	})

	run("e8", "§8.0 dynamic Δ tuning", func() {
		d := 10 * time.Second
		if *quick {
			d = 5 * time.Second
		}
		r := exp.DynamicDelta(exp.CountersConfig{Duration: d})
		t := stats.NewTable("configuration", "insn/s")
		t.Row("fixed Δ=0", int(r.FixedZero))
		t.Row("fixed Δ=120 ms", int(r.FixedKnee))
		t.Row("fixed Δ=600 ms", int(r.FixedPeak))
		t.Row("fixed Δ=2400 ms", int(r.FixedLarge))
		t.Row("adaptive (gap EWMA)", int(r.Adaptive))
		t.WriteTo(os.Stdout)
		fmt.Println("paper: the tuning routine exists but ships disabled; this enables it")
	})

	run("e9", "§7.2 test&set spinlock", func() {
		r := exp.TestAndSetScenario(*dur, []int{0, 2, 4})
		t := stats.NewTable("configuration", "writer crit-sections/s", "page transfers")
		t.Row("no remote tester", r.Solo, "-")
		for _, p := range r.Points {
			t.Row(fmt.Sprintf("tester, Δ=%d ticks", p.DeltaTicks), p.CritPerSec, p.PageMoves)
		}
		t.WriteTo(os.Stdout)
		fmt.Println("paper: test&set degrades the writer substantially; it recommends against the instruction")
	})

	run("e10", "baseline: Mirage vs IVY (centralized manager SVM)", func() {
		pts := exp.BaselineComparison(*dur)
		t := stats.NewTable("system", "workload", "throughput", "unit", "page transfers")
		for _, p := range pts {
			t.Row(p.System, p.Workload, p.Throughput, p.Unit, p.PageMoves)
		}
		t.WriteTo(os.Stdout)
	})

	run("e12", "§8.0 hot-spot organization (per-page Δ)", func() {
		rs := exp.HotSpots(*dur)
		t := stats.NewTable("window assignment", "hot exchanges/s", "cold insn/s")
		for _, r := range rs {
			t.Row(r.Config, r.HotOps, int(r.ColdInsn))
		}
		t.WriteTo(os.Stdout)
		fmt.Println("paper: with hot spots inside one segment, \"per-page Δs may be useful\"")
	})

	run("e13", "§9.0 real-time Δ under site load", func() {
		r := exp.LoadSensitivity(*dur)
		t := stats.NewTable("site 1 configuration", "site 1 insn/s")
		t.Row("unloaded", int(r.UnloadedInsn))
		t.Row("sharing the CPU with a hog", int(r.LoadedInsn))
		t.WriteTo(os.Stdout)
		fmt.Printf("effective window lost to load: %.0f%% — §9.0: \"The load would decrease the effective Δ\"\n", 100*r.EffectiveDrop)
	})

	run("e14", "beyond the paper: resilience under injected faults", func() {
		perSite := 20
		if *quick {
			perSite = 8
		}
		r := exp.FaultSweep(perSite, []float64{0, 2, 5, 10})
		t := stats.NewTable("drop rate", "completed", "elapsed", "retransmits", "dup-drops", "gave-up", "net drops")
		for _, p := range r.Points {
			t.Row(fmt.Sprintf("%.0f%%", p.DropPct), p.Completed, p.Elapsed.Round(time.Millisecond),
				p.Retransmits, p.DupDrops, p.GaveUp, p.NetDropped)
		}
		t.Row("crash 0.1–0.4s", r.Crash.Completed, r.Crash.Elapsed.Round(time.Millisecond),
			r.Crash.Retransmits, r.Crash.DupDrops, r.Crash.GaveUp, r.Crash.NetDropped)
		t.WriteTo(os.Stdout)
		fmt.Printf("same-seed replay identical: %v\n", r.ReplayMatches)
		fmt.Println("paper: §10.0 \"the current implementation does not tolerate site failures\"; this sweep measures the cost of fixing that")
	})

	run("e11", "§6.2 lazy remap cost", func() {
		pts := exp.RemapCost([]int{1, 16, 64, 128, 256})
		t := stats.NewTable("mapped pages", "dispatch cost")
		for _, p := range pts {
			t.Row(p.Pages, p.DispatchCost)
		}
		t.WriteTo(os.Stdout)
		fmt.Printf("paper: %v–%v per 512-byte page, segments up to 128 KB (256 pages)\n",
			vaxmodel.RemapPerPageMin, vaxmodel.RemapPerPageMax)
	})
}
