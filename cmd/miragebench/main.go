// Command miragebench regenerates every quantitative table and figure
// of the Mirage paper's evaluation (§7–§8) on the calibrated
// simulator, printing measured values beside the paper's.
//
// Usage:
//
//	miragebench [-e all|e1,e4,e5,...] [-dur 20s] [-quick] [-par N] [-out bench.json]
//	            [-trace run.jsonl] [-metrics]
//
// Experiment IDs follow DESIGN.md's per-experiment index. -quick cuts
// run lengths for a fast smoke pass. -par caps the sweep worker pool
// (0 = GOMAXPROCS); results are identical at any setting. -out writes
// a machine-readable benchmark record (wall times per experiment plus
// the data-path microbenchmarks) to the given file.
//
// E16 re-runs the Figure 7 Δ-sweep with the observability layer on.
// -trace saves the Δ = quantum point's protocol trace (schema-v1
// JSONL, for miragetrace); -metrics prints each point's denial
// histogram in full.
//
// E17 runs the coherence model checker (internal/check): a bounded
// exhaustive enumeration of every schedule of a tiny contended
// scenario, plus a seed-swept random walk under an adversarial fault
// plan — any invariant violation fails the command.
//
// E18 fail-stops the library site — then each successor — under a
// contended counter workload and measures takeover cost: recovery
// latency per crash and end-to-end throughput versus crash count.
// Every point's multi-epoch trace is re-verified by the coherence
// checker; -trace saves the deepest point's trace for miragetrace.
//
// E20 breaks the 64-site wall: it sweeps cluster size to N=1000 on
// the calibrated simulator under a read-all-then-write-one workload
// and compares the paper's flat unicast invalidation against the
// k-ary fan-out tree (Options.InvalFanout) at several arities,
// measuring the library site's per-write-fault sends, invalidation
// latency, wire bytes, and CPU share. It then re-runs an N=100 point
// with the tracer attached — clean, and under chaos plans crashing an
// interior relay site and a leaf — and verifies every trace with the
// coherence checker; -out records the full grid and the checked runs.
//
// E19 runs the service-saturation ladder: the sharded session store
// (internal/app) under deterministic open-loop load (internal/load) on
// a rising rate ladder, on the calibrated simulator — clean and under
// a chaos plan — and again over a real loopback-TCP cluster through
// the public store API. All ladders are scored identically (knee rung,
// first SLO-violating rung, liveness below the knee); -out records the
// knee and the p99 at the last sustained rung per ladder.
//
// E22 prices consensus-replicated library records
// (Options.Replication): a replication-factor × failure-mode grid over
// a contended counter workload measures the standby cost of quorum
// gating while nothing fails, the takeover latency of the log election
// against E18's holder rebuild (isolated and correlated crashes), and
// the degraded and fallback modes. Every point's trace — including the
// replication invariants — re-verifies through the coherence checker;
// -out records the full grid.
//
// E21 prices voluntary library migration (Options.Placement): the
// affinity workload runs skewed (every shard mis-homed for the whole
// run) and shifting (matched at first, hotspot rotates at half-time),
// each with placement off and on, and the shifting+on run is traced so
// its voluntary handoffs — each an epoch bump mid-load — re-verify
// through the coherence checker; -out records all four cells.
//
// E23 closes the Δ loop (Options.AutoDelta): on three workloads — the
// E16 ping-pong worst case, an E19 service rung, and the E21 skewed
// affinity scenario with migration on — a fixed-Δ grid runs beside one
// controller cell seeded at a deliberately wrong Δ. The command fails
// unless the controller matches the best fixed Δ within tolerance on
// every workload, every traced controller run verifies clean at the
// Delta = Min sound bound, and the sweep replays deterministically;
// -out records the full grid.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mirage"
	"mirage/internal/check"
	"mirage/internal/exp"
	"mirage/internal/load"
	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/stats"
	"mirage/internal/transport"
	"mirage/internal/vaxmodel"
	"mirage/internal/wire"
)

// benchRecord is the -out JSON shape: enough to compare data-path and
// harness performance across commits.
type benchRecord struct {
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	CPUs        int                `json:"cpus"`
	Parallelism int                `json:"parallelism"` // 0 = GOMAXPROCS
	Quick       bool               `json:"quick"`
	Experiments []experimentWall   `json:"experiments"`
	TotalWallS  float64            `json:"total_wall_seconds"`
	Micro       map[string]string  `json:"microbench,omitempty"`
	Service     *serviceRecord     `json:"service,omitempty"`
	Scale       *scaleRecord       `json:"scale,omitempty"`
	Migration   *migrationRecord   `json:"migration,omitempty"`
	Replication *replicationRecord `json:"replication,omitempty"`
	AutoDelta   *autodeltaRecord   `json:"autodelta,omitempty"`
}

// autodeltaRecord is the E23 section of the -out record: per workload,
// the fixed-Δ grid beside the controller cell and its verdicts, plus
// the determinism check.
type autodeltaRecord struct {
	Workloads     []exp.AutoDeltaWorkload `json:"workloads"`
	ReplayMatches bool                    `json:"replay_matches"`
}

// replicationRecord is the E22 section of the -out record: the
// replication-factor × failure-mode grid (traces omitted) plus the
// determinism check.
type replicationRecord struct {
	Points        []exp.ReplicationPoint `json:"points"`
	ReplayMatches bool                   `json:"replay_matches"`
}

// migrationRecord is the E21 section of the -out record: the
// scenario × placement grid plus the traced run's handoff count and
// the determinism check.
type migrationRecord struct {
	Points          []exp.MigrationPoint `json:"points"`
	TraceMigrations int                  `json:"trace_migrations"`
	TraceEvents     int                  `json:"trace_events"`
	TraceViolations int                  `json:"trace_violations"`
	ReplayMatches   bool                 `json:"replay_matches"`
}

// scaleRecord is the E20 section of the -out record: the full
// size × arity grid plus the trace-verified runs.
type scaleRecord struct {
	Points  []exp.ScalePoint       `json:"points"`
	Checked []exp.ScaleCheckResult `json:"checked"`
}

type experimentWall struct {
	ID    string  `json:"id"`
	WallS float64 `json:"wall_seconds"`
}

// serviceRecord is the E19 section of the -out record: per ladder, the
// saturation knee and the tail latency at the last sustained rung
// (half the knee's offered rate on the default doubling ladder).
type serviceRecord struct {
	ReplayMatches bool                  `json:"replay_matches"`
	Ladders       []serviceLadderRecord `json:"ladders"`
}

type serviceLadderRecord struct {
	Transport     string      `json:"transport"`
	Chaos         bool        `json:"chaos"`
	KneeRung      int         `json:"knee_rung"` // -1 = no rung saturated
	KneeRate      float64     `json:"knee_rate_rps,omitempty"`
	P99AtHalfKnee int64       `json:"p99_at_half_knee_ns,omitempty"`
	Rungs         []load.Rung `json:"rungs"`
}

func serviceRecordOf(r exp.ServiceSweepResult) *serviceRecord {
	rec := &serviceRecord{ReplayMatches: r.ReplayMatches}
	for _, l := range r.Ladders {
		lr := serviceLadderRecord{Transport: l.Transport, Chaos: l.Chaos, KneeRung: l.Knee, Rungs: l.Rungs}
		if l.Knee >= 0 {
			lr.KneeRate = l.Rungs[l.Knee].Rate
		}
		if l.Knee >= 1 {
			lr.P99AtHalfKnee = l.Rungs[l.Knee-1].Latency.P99
		}
		rec.Ladders = append(rec.Ladders, lr)
	}
	return rec
}

// liveServiceLadder runs the E19 ladder over a real loopback-TCP
// cluster through the public store API, one shared store served by
// every site, same op streams and scoring as the simulated ladders.
func liveServiceLadder(cfg exp.ServiceConfig) ([]load.Rung, error) {
	cfg = cfg.WithDefaults()
	c, err := mirage.NewCluster(cfg.Sites, mirage.Options{TCP: true})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	stores, err := c.OpenStores(cfg.AppConfig())
	if err != nil {
		return nil, err
	}
	rungs := make([]load.Rung, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		spec := cfg.Spec(rate)
		rungs = append(rungs, load.RunLive(spec, func(frontend int, op load.Op) (bool, error) {
			// Lane f maps to site f / Workers, as in the simulator.
			return load.Execute(stores[frontend/cfg.Workers], spec, op)
		}))
	}
	return rungs, nil
}

// microbench measures the live data path: the wire codec hot paths and
// sustained throughput over a real loopback TCP mesh.
func microbench() map[string]string {
	out := map[string]string{}
	ctl := wire.Msg{Kind: wire.KInval, Mode: wire.Write, Seg: 3, Page: 17, Req: 2, Readers: mmu.CopysetOf(0, 1, 3)}
	page := wire.Msg{Kind: wire.KPageSend, Seg: 1, Page: 2, Data: make([]byte, 512)}
	buf := make([]byte, 0, wire.MaxFrame)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wire.Encode(buf[:0], &ctl)
		}
	})
	out["wire_encode"] = fmt.Sprintf("%.1f ns/op, %d allocs/op", float64(r.NsPerOp()), r.AllocsPerOp())
	frame := wire.Encode(nil, &page)
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := wire.Decode(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	out["wire_decode_page"] = fmt.Sprintf("%.1f ns/op, %d allocs/op", float64(r.NsPerOp()), r.AllocsPerOp())

	// Live TCP loopback throughput, short and page frames.
	tcp := func(m *wire.Msg) (float64, error) {
		var count atomic.Int64
		m0, err := transport.NewTCPSite(0, "127.0.0.1:0", func(*wire.Msg) {})
		if err != nil {
			return 0, err
		}
		defer m0.Close()
		m1, err := transport.NewTCPSite(1, "127.0.0.1:0", func(*wire.Msg) { count.Add(1) })
		if err != nil {
			return 0, err
		}
		defer m1.Close()
		addrs := []string{m0.Addr(), m1.Addr()}
		m0.SetPeers(addrs)
		m1.SetPeers(addrs)
		const n = 200_000
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := m0.Send(1, m); err != nil {
				return 0, err
			}
		}
		for count.Load() < n {
			time.Sleep(100 * time.Microsecond)
		}
		return n / time.Since(start).Seconds(), nil
	}
	if rate, err := tcp(&ctl); err == nil {
		out["tcp_short"] = fmt.Sprintf("%.0f msgs/s", rate)
	}
	if rate, err := tcp(&page); err == nil {
		out["tcp_pages"] = fmt.Sprintf("%.0f msgs/s, %.1f MB/s", rate, rate*512/1e6)
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("miragebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("e", "all", "comma-separated experiment ids (e1..e23) or 'all'")
	dur := fs.Duration("dur", 20*time.Second, "virtual run length per measurement point")
	quick := fs.Bool("quick", false, "short runs for a smoke pass")
	par := fs.Int("par", 0, "sweep worker pool size (0 = GOMAXPROCS); any value gives identical results")
	out := fs.String("out", "", "write a JSON benchmark record to this file")
	tracePath := fs.String("trace", "", "e16/e18: write a protocol trace (JSONL) to this file; e18's deepest-crash trace wins when both run")
	metrics := fs.Bool("metrics", false, "e16: print each point's full denial breakdown")
	if fs.Parse(args) != nil {
		return 2
	}

	if *quick {
		*dur = 5 * time.Second
	}
	exp.Parallelism = *par
	rec := benchRecord{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Parallelism: *par,
		Quick:       *quick,
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*which, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	code := 0
	totalStart := time.Now()
	run := func(id, title string, fn func()) {
		if !all && !want[id] {
			return
		}
		fmt.Fprintf(stdout, "== %s — %s ==\n", strings.ToUpper(id), title)
		start := time.Now()
		fn()
		wall := time.Since(start).Seconds()
		rec.Experiments = append(rec.Experiments, experimentWall{ID: id, WallS: wall})
		fmt.Fprintf(stdout, "   (%.2fs wall)\n\n", wall)
	}

	run("e1", "§7.1 component timings", func() {
		r := exp.ComponentTimings()
		t := stats.NewTable("measurement", "paper", "measured")
		t.Row("short message round trip", exp.PaperShortRTT, r.ShortRTT)
		t.Row("1 KB message + short reply", exp.PaperPagePlusReply, r.PagePlusReply)
		t.WriteTo(stdout)
	})

	run("e2", "Table 3: remote in-memory page fetch", func() {
		r := exp.Table3()
		t := stats.NewTable("operation", "paper", "model")
		for _, row := range r.Rows {
			t.Row(row.Name, row.Paper, row.Model)
		}
		t.Row("TOTAL (component sum)", r.PaperTotal, r.ModelTotal)
		t.Row("TOTAL ELAPSED (full simulator)", r.PaperTotal, r.MeasuredTotal)
		t.WriteTo(stdout)
	})

	run("e3", "§7.2 single-site worst case: yield() vs busy wait", func() {
		r := exp.SingleSiteWorstCase(*dur)
		t := stats.NewTable("variant", "paper cycles/s", "measured cycles/s")
		t.Row("busy wait", exp.PaperSingleSite.NoYield, r.NoYield)
		t.Row("yield()", exp.PaperSingleSite.WithYield, r.WithYield)
		t.Row("speedup", fmt.Sprintf("x%.0f", exp.PaperSingleSite.Speedup), fmt.Sprintf("x%.1f", r.Speedup))
		t.WriteTo(stdout)
	})

	run("e4", "Figure 7: two-site worst case vs Δ", func() {
		pts := exp.Figure7(*dur, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
		t := stats.NewTable("Δ (ticks)", "yield cycles/s", "busy-wait cycles/s", "yield/busy")
		for _, p := range pts {
			t.Row(p.DeltaTicks, p.Yield, p.NoYield, stats.Ratio(p.Yield, p.NoYield))
		}
		t.WriteTo(stdout)
		fmt.Fprintln(stdout, "paper anchors: yield(0)≈8, yield(2)≈4.5 (90% of the 5/s bound), ~1.5x yield advantage at Δ=2")
		tr := exp.MeasureWorstCaseTraffic(*dur, 0)
		fmt.Fprintf(stdout, "traffic at Δ=0: %.1f msgs/cycle (%.1f large); derived per-cycle bound %v (paper: 9 msgs, 3 large, 109 ms)\n",
			tr.MsgsPerCycle, tr.LargePerCycle, tr.DerivedBound.Round(time.Millisecond))
	})

	run("e4b", "N-site worst case (§7.2's ring variant)", func() {
		pts := exp.NSiteWorstCase(*dur, []int{2, 3, 4, 6, 8})
		t := stats.NewTable("sites", "ring rotations/s", "msgs/rotation")
		for _, p := range pts {
			t.Row(p.Sites, p.CyclesPerSec, p.MsgsPerCycle)
		}
		t.WriteTo(stdout)
		fmt.Fprintln(stdout, "paper: \"in a network with a larger number of sites sharing pages than ours, invalidations may become expensive\" (§10.0)")
	})

	run("e5", "Figure 8: representative application vs Δ", func() {
		d := 10 * time.Second // the paper's run length
		if *quick {
			d = 5 * time.Second
		}
		deltas := []time.Duration{
			0, 30 * time.Millisecond, 60 * time.Millisecond, 120 * time.Millisecond,
			300 * time.Millisecond, 450 * time.Millisecond, 600 * time.Millisecond,
			750 * time.Millisecond, 900 * time.Millisecond, 1200 * time.Millisecond,
			2400 * time.Millisecond,
		}
		pts := exp.Figure8(exp.CountersConfig{Duration: d}, deltas)
		t := stats.NewTable("Δ", "read-write insn/s", "bar")
		for _, p := range pts {
			t.Row(p.Delta, int(p.InsnPerSec), strings.Repeat("#", int(p.InsnPerSec/4000)))
		}
		t.WriteTo(stdout)
		fmt.Fprintf(stdout, "paper: maximum 115,000 insn/s at Δ=600 ms; contention side Δ<120 ms poor; retention side gradual\n")
	})

	run("e6", "§7.3 thrashing amelioration (bystander throughput)", func() {
		pts := exp.ThrashingAmelioration(*dur, []int{0, 2, 4, 6, 8})
		t := stats.NewTable("Δ (ticks)", "app cycles/s", "bystander units/s")
		for _, p := range pts {
			t.Row(p.DeltaTicks, p.AppCycles, p.BystanderUnits)
		}
		t.WriteTo(stdout)
		fmt.Fprintln(stdout, "paper: raising Δ cuts the thrashing app's throughput but improves other processes")
	})

	run("e7", "§7.1 invalidation policy ablation", func() {
		d := 10 * time.Second
		if *quick {
			d = 5 * time.Second
		}
		pts := exp.InvalidationAblation(exp.CountersConfig{Duration: d},
			[]time.Duration{120 * time.Millisecond, 600 * time.Millisecond, 900 * time.Millisecond})
		t := stats.NewTable("policy", "Δ", "insn/s", "retries")
		for _, p := range pts {
			t.Row(p.Policy.String(), p.Delta, int(p.InsnPerSec), p.Retries)
		}
		t.WriteTo(stdout)
		fmt.Fprintln(stdout, "paper: the prototype always retried; honor-close and queue are its proposed fixes")
	})

	run("e8", "§8.0 dynamic Δ tuning", func() {
		d := 10 * time.Second
		if *quick {
			d = 5 * time.Second
		}
		r := exp.DynamicDelta(exp.CountersConfig{Duration: d})
		t := stats.NewTable("configuration", "insn/s")
		t.Row("fixed Δ=0", int(r.FixedZero))
		t.Row("fixed Δ=120 ms", int(r.FixedKnee))
		t.Row("fixed Δ=600 ms", int(r.FixedPeak))
		t.Row("fixed Δ=2400 ms", int(r.FixedLarge))
		t.Row("adaptive (gap EWMA)", int(r.Adaptive))
		t.WriteTo(stdout)
		fmt.Fprintln(stdout, "paper: the tuning routine exists but ships disabled; this enables it")
	})

	run("e9", "§7.2 test&set spinlock", func() {
		r := exp.TestAndSetScenario(*dur, []int{0, 2, 4})
		t := stats.NewTable("configuration", "writer crit-sections/s", "page transfers")
		t.Row("no remote tester", r.Solo, "-")
		for _, p := range r.Points {
			t.Row(fmt.Sprintf("tester, Δ=%d ticks", p.DeltaTicks), p.CritPerSec, p.PageMoves)
		}
		t.WriteTo(stdout)
		fmt.Fprintln(stdout, "paper: test&set degrades the writer substantially; it recommends against the instruction")
	})

	run("e10", "baseline: Mirage vs IVY (centralized manager SVM)", func() {
		pts := exp.BaselineComparison(*dur)
		t := stats.NewTable("system", "workload", "throughput", "unit", "page transfers")
		for _, p := range pts {
			t.Row(p.System, p.Workload, p.Throughput, p.Unit, p.PageMoves)
		}
		t.WriteTo(stdout)
	})

	run("e12", "§8.0 hot-spot organization (per-page Δ)", func() {
		rs := exp.HotSpots(*dur)
		t := stats.NewTable("window assignment", "hot exchanges/s", "cold insn/s")
		for _, r := range rs {
			t.Row(r.Config, r.HotOps, int(r.ColdInsn))
		}
		t.WriteTo(stdout)
		fmt.Fprintln(stdout, "paper: with hot spots inside one segment, \"per-page Δs may be useful\"")
	})

	run("e13", "§9.0 real-time Δ under site load", func() {
		r := exp.LoadSensitivity(*dur)
		t := stats.NewTable("site 1 configuration", "site 1 insn/s")
		t.Row("unloaded", int(r.UnloadedInsn))
		t.Row("sharing the CPU with a hog", int(r.LoadedInsn))
		t.WriteTo(stdout)
		fmt.Fprintf(stdout, "effective window lost to load: %.0f%% — §9.0: \"The load would decrease the effective Δ\"\n", 100*r.EffectiveDrop)
	})

	run("e14", "beyond the paper: resilience under injected faults", func() {
		perSite := 20
		if *quick {
			perSite = 8
		}
		r := exp.FaultSweep(perSite, []float64{0, 2, 5, 10})
		t := stats.NewTable("drop rate", "completed", "elapsed", "retransmits", "dup-drops", "gave-up", "net drops")
		for _, p := range r.Points {
			t.Row(fmt.Sprintf("%.0f%%", p.DropPct), p.Completed, p.Elapsed.Round(time.Millisecond),
				p.Retransmits, p.DupDrops, p.GaveUp, p.NetDropped)
		}
		t.Row("crash 0.1–0.4s", r.Crash.Completed, r.Crash.Elapsed.Round(time.Millisecond),
			r.Crash.Retransmits, r.Crash.DupDrops, r.Crash.GaveUp, r.Crash.NetDropped)
		t.WriteTo(stdout)
		fmt.Fprintf(stdout, "same-seed replay identical: %v\n", r.ReplayMatches)
		fmt.Fprintln(stdout, "paper: §10.0 \"the current implementation does not tolerate site failures\"; this sweep measures the cost of fixing that")
	})

	run("e16", "Figure 7 Δ-sweep under full observability (E16)", func() {
		ticks := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		pts := exp.DeltaDenialSweep(*dur, ticks)
		t := stats.NewTable("Δ (ticks)", "cycles/s", "denials", "retries", "mean remaining", "max remaining", "events")
		for _, p := range pts {
			events := bytes.Count(p.TraceJSONL, []byte{'\n'}) - 1 // minus the header line
			t.Row(p.DeltaTicks, p.CyclesPerSec, p.Denials, p.Retries,
				p.MeanRemaining.Round(10*time.Microsecond), p.MaxRemaining.Round(10*time.Microsecond), events)
		}
		t.WriteTo(stdout)
		fmt.Fprintf(stdout, "crossover at Δ = 1 scheduling quantum (%d ticks, %v): denials fall as 1/Δ while the\n",
			vaxmodel.QuantumTicks, vaxmodel.Quantum)
		fmt.Fprintln(stdout, "remaining time at each denial grows with Δ; past the quantum the denied holder is")
		fmt.Fprintln(stdout, "preempted before it can use the protected window, so the excess is pure latency")
		if *metrics {
			for _, p := range pts {
				_, events, err := obs.ReadJSONL(bytes.NewReader(p.TraceJSONL))
				if err != nil {
					fmt.Fprintf(stderr, "miragebench: reparse e16 trace: %v\n", err)
					code = 1
					return
				}
				fmt.Fprintf(stdout, "\nΔ=%d ticks denial breakdown:\n", p.DeltaTicks)
				bs := obs.DenialBreakdown(events, 6)
				if bs == nil {
					fmt.Fprintln(stdout, "  (no denials)")
					continue
				}
				for _, b := range bs {
					fmt.Fprintf(stdout, "  ≤%-12v %d\n", b.Upper, b.Count)
				}
			}
		}
		if *tracePath != "" {
			for _, p := range pts {
				if p.DeltaTicks != vaxmodel.QuantumTicks {
					continue
				}
				if err := os.WriteFile(*tracePath, p.TraceJSONL, 0o644); err != nil {
					fmt.Fprintf(stderr, "miragebench: write %s: %v\n", *tracePath, err)
					code = 1
					return
				}
				fmt.Fprintf(stdout, "trace (Δ=%d ticks): %s\n", p.DeltaTicks, *tracePath)
			}
		}
	})

	run("e17", "coherence model check: schedule exploration (E17)", func() {
		// Exhaustive half: every schedule of a contended two-site
		// write/read scenario with a live Δ window, all three
		// invalidation policies.
		t := stats.NewTable("policy", "schedules", "choice points", "deepest", "max branch", "complete", "violations")
		for pol := 0; pol <= 2; pol++ {
			sc := check.Scenario{
				Sites: 2, Pages: 1, Delta: 10 * time.Millisecond, Policy: pol,
				Ops: []check.Op{
					{Site: 0, Page: 0, Write: true, Val: 7},
					{Site: 1, Page: 0, Write: true, Val: 9},
					{Site: 0, Page: 0},
					{Site: 1, Page: 0},
				},
			}
			res := check.Exhaustive(sc, check.ExploreOpts{})
			t.Row(pol, res.Runs, res.ChoicePoints, res.Deepest, res.MaxBranch, res.Complete, len(res.Violations))
			if len(res.Violations) > 0 {
				for _, v := range res.Violations {
					fmt.Fprintf(stdout, "violation: %v\n", v)
				}
				code = 1
			}
		}
		t.WriteTo(stdout)

		// Random-walk half: seed-swept schedules of a larger config
		// composed with an adversarial fault plan (reliability on).
		nSeeds := int64(8)
		if *quick {
			nSeeds = 4
		}
		seeds := make([]int64, 0, nSeeds)
		for s := int64(1); s <= nSeeds; s++ {
			seeds = append(seeds, s)
		}
		chaotic := check.Scenario{
			Sites: 3, Pages: 2, Delta: 5 * time.Millisecond, Policy: 2,
			Chaos: "drop p=0.15; dup p=0.1; delay p=0.2 max=5ms",
		}
		res := check.RandomWalk(chaotic, seeds, check.ExploreOpts{OpsPerWalk: 10})
		fmt.Fprintf(stdout, "random walk under chaos: %d seeds, %d choice points, %d violations\n",
			res.Runs, res.ChoicePoints, len(res.Violations))
		if len(res.Violations) > 0 {
			for _, v := range res.Violations {
				fmt.Fprintf(stdout, "violation: %v\n", v)
			}
			code = 1
		}
		fmt.Fprintln(stdout, "paper: §4–§6 protocol rules as machine-checked invariants; see DESIGN.md §10")
	})

	run("e18", "beyond the paper: library-site failover sweep (E18)", func() {
		perSite := 20
		if *quick {
			perSite = 8
		}
		r := exp.FailoverSweep(perSite, []int{0, 1, 2})
		t := stats.NewTable("library crashes", "completed", "elapsed", "inc/s",
			"failovers", "recoveries", "mean recovery", "max epoch", "stale fenced")
		for _, p := range r.Points {
			mean := "-"
			if len(p.RecoverLatency) > 0 {
				var sum time.Duration
				for _, d := range p.RecoverLatency {
					sum += d
				}
				mean = (sum / time.Duration(len(p.RecoverLatency))).Round(time.Millisecond).String()
			}
			t.Row(p.Crashes, p.Completed, p.Elapsed.Round(time.Millisecond),
				fmt.Sprintf("%.1f", p.Throughput), p.Failovers, p.Recoveries,
				mean, p.MaxEpoch, p.StaleEpoch)
		}
		t.WriteTo(stdout)
		fmt.Fprintf(stdout, "same-seed replay identical: %v\n", r.ReplayMatches)
		// Re-verify every point's trace through the coherence checker:
		// takeover must not cost correctness, only latency.
		for _, p := range r.Points {
			_, events, err := obs.ReadJSONL(bytes.NewReader(p.TraceJSONL))
			if err != nil {
				fmt.Fprintf(stderr, "miragebench: reparse e18 trace: %v\n", err)
				code = 1
				return
			}
			if viols := check.Verify(check.Config{Sites: 4, Reliable: true}, events); len(viols) > 0 {
				for _, v := range viols {
					fmt.Fprintf(stdout, "violation (crashes=%d): %v\n", p.Crashes, v)
				}
				code = 1
			}
		}
		if code == 0 {
			fmt.Fprintln(stdout, "all multi-epoch traces verify coherent")
		}
		if *tracePath != "" {
			deepest := r.Points[len(r.Points)-1]
			if err := os.WriteFile(*tracePath, deepest.TraceJSONL, 0o644); err != nil {
				fmt.Fprintf(stderr, "miragebench: write %s: %v\n", *tracePath, err)
				code = 1
				return
			}
			fmt.Fprintf(stdout, "trace (%d crashes): %s\n", deepest.Crashes, *tracePath)
		}
		fmt.Fprintln(stdout, "paper: §10.0 \"the current implementation does not tolerate site failures\" — E18 adds the tolerance and prices it")
	})

	run("e19", "beyond the paper: service saturation ladder (E19)", func() {
		cfg := exp.ServiceConfig{Chaos: true}
		if *quick {
			cfg.Rates = []float64{25, 400}
			cfg.Duration = 2 * time.Second
		}
		cfg = cfg.WithDefaults()
		r := exp.ServiceSweep(cfg)

		// The live ladder serves the same op streams wall clock, so its
		// rung windows are kept short; scoring is identical.
		liveCfg := cfg
		liveCfg.Duration = time.Second
		if *quick {
			liveCfg.Duration = 500 * time.Millisecond
		}
		if rungs, err := liveServiceLadder(liveCfg); err != nil {
			fmt.Fprintf(stderr, "miragebench: live e19 ladder: %v\n", err)
			code = 1
		} else {
			r.Ladders = append(r.Ladders, exp.ScoreLadder("live-tcp", false, liveCfg, rungs))
		}

		for _, l := range r.Ladders {
			name := l.Transport
			if l.Chaos {
				name += "+chaos"
			}
			fmt.Fprintf(stdout, "[%s]\n", name)
			load.WriteTable(stdout, l.Rungs)
			fmt.Fprintln(stdout)
		}
		r.WriteFindings(stdout)
		if !r.ReplayMatches {
			code = 1
		}
		for _, l := range r.Ladders {
			if !l.LivenessBelowKnee {
				fmt.Fprintf(stdout, "liveness violated below the knee on %s\n", l.Transport)
				code = 1
			}
		}
		rec.Service = serviceRecordOf(r)
	})

	run("e20", "beyond the paper: scaling past 64 sites — flat vs tree invalidation (E20)", func() {
		pts := exp.ScaleSweep(*quick)
		t := stats.NewTable("sites", "fanout", "lib sends/fault", "inval ms", "KB/fault", "lib CPU", "relays")
		byGrid := map[[2]int]exp.ScalePoint{}
		maxN := 0
		for _, p := range pts {
			fan := "flat"
			if p.Fanout > 0 {
				fan = fmt.Sprintf("k=%d", p.Fanout)
			}
			t.Row(p.Sites, fan, fmt.Sprintf("%.1f", p.LibSends),
				fmt.Sprintf("%.1f", p.InvalLatMs), fmt.Sprintf("%.1f", p.KBFault),
				fmt.Sprintf("%.1f%%", 100*p.LibCPU), p.Relays)
			byGrid[[2]int{p.Sites, p.Fanout}] = p
			if p.Sites > maxN {
				maxN = p.Sites
			}
		}
		t.WriteTo(stdout)
		flat := byGrid[[2]int{maxN, 0}]
		for _, k := range []int{4, 8, 16} {
			tree, ok := byGrid[[2]int{maxN, k}]
			if !ok || tree.LibSends <= 0 {
				continue
			}
			fmt.Fprintf(stdout, "N=%d k=%d: library sends per write fault %.1f vs %.1f flat (x%.1f reduction)\n",
				maxN, k, tree.LibSends, flat.LibSends, flat.LibSends/tree.LibSends)
		}

		// Trace-verified runs: clean, then chaos crashing an interior
		// relay root (orders give up at the clock) and a leaf (the
		// relay reports KInvalFail and the clock falls back).
		checkN, checkK := 100, 8
		if *quick {
			checkN, checkK = 20, 4
		}
		roots := exp.ScaleRelayRoots(checkN, checkK)
		interior := roots[1]
		specs := []string{
			"",
			fmt.Sprintf("seed=7; crash site=%d from=2200ms until=10s", interior),
			fmt.Sprintf("seed=7; crash site=%d from=2200ms until=10s", interior+1),
		}
		var checked []exp.ScaleCheckResult
		for _, spec := range specs {
			r, err := exp.ScaleChecked(checkN, checkK, spec)
			if err != nil {
				fmt.Fprintf(stderr, "miragebench: e20 checked run %q: %v\n", spec, err)
				code = 1
				continue
			}
			checked = append(checked, r)
			name := "clean"
			if spec != "" {
				name = spec
			}
			fmt.Fprintf(stdout, "checked N=%d k=%d [%s]: %d events, %d violations\n",
				checkN, checkK, name, r.Events, r.Violations)
			if r.Violations > 0 {
				code = 1
			}
		}
		rec.Scale = &scaleRecord{Points: pts, Checked: checked}
		fmt.Fprintln(stdout, "paper: §10.0 \"invalidations may become expensive\" — the fan-out tree caps the library's share at O(k)")
	})

	run("e21", "beyond the paper: voluntary library migration under skewed and shifting hotspots (E21)", func() {
		cfg := exp.MigrationConfig{}
		if *quick {
			cfg.Duration = 4 * time.Second
		}
		r := exp.MigrationSweep(cfg)
		t := stats.NewTable("scenario", "placement", "goodput", "p50", "p99", "errors", "migrations", "refused", "fenced")
		for _, p := range r.Points {
			placement := "off"
			if p.Placement {
				placement = "on"
			}
			t.Row(p.Scenario, placement, fmt.Sprintf("%.1f", p.Rung.Goodput),
				time.Duration(p.Rung.Latency.P50), time.Duration(p.Rung.Latency.P99),
				p.Rung.Errors, p.Migrations, p.Refused, p.StaleEpoch)
		}
		t.WriteTo(stdout)
		r.WriteFindings(stdout)
		if !r.ReplayMatches {
			code = 1
		}
		// Re-verify the traced shifting+placement run: every voluntary
		// handoff bumps the segment epoch mid-load, and the multi-epoch
		// stream must still verify coherent.
		hdr, events, err := obs.ReadJSONL(bytes.NewReader(r.TraceJSONL))
		if err != nil {
			fmt.Fprintf(stderr, "miragebench: reparse e21 trace: %v\n", err)
			code = 1
			return
		}
		viols := check.Verify(check.Config{Sites: hdr.Sites, Reliable: true}, events)
		for _, v := range viols {
			fmt.Fprintf(stdout, "violation (shifting+placement): %v\n", v)
			code = 1
		}
		fmt.Fprintf(stdout, "traced shifting+placement run: %d events, %d voluntary handoffs, %d violations\n",
			len(events), r.TraceMigrations, len(viols))
		rec.Migration = &migrationRecord{
			Points:          r.Points,
			TraceMigrations: r.TraceMigrations,
			TraceEvents:     len(events),
			TraceViolations: len(viols),
			ReplayMatches:   r.ReplayMatches,
		}
		fmt.Fprintln(stdout, "paper: the library site is fixed for a segment's lifetime — E21 lets it follow the demand and prices the win")
	})

	run("e23", "beyond the paper: closed-loop Δ tuning vs the best fixed Δ (E23)", func() {
		cfg := exp.AutoDeltaConfig{}
		if *quick {
			cfg = exp.AutoDeltaConfig{
				Ticks:       []int{0, 2, 6},
				PingPongDur: 6 * time.Second,
				ServiceDur:  2 * time.Second,
				AffinityDur: 6 * time.Second,
			}
		}
		r := exp.AutoDeltaSweep(cfg)
		t := stats.NewTable("workload", "cell", "score", "denials", "grows", "shrinks", "p99", "migrations")
		cell := func(wl string, p exp.AutoDeltaPoint) {
			name := fmt.Sprintf("Δ=%d ticks", p.DeltaTicks)
			if p.DeltaTicks < 0 {
				name = fmt.Sprintf("auto (seed %d)", r.Config.SeedTicks)
			}
			p99 := "-"
			if p.P99 > 0 {
				p99 = p.P99.Round(10 * time.Microsecond).String()
			}
			t.Row(wl, name, fmt.Sprintf("%.1f", p.Score), p.Denials, p.Grows, p.Shrinks, p99, p.Migrations)
		}
		for _, wl := range r.Workloads {
			for _, p := range wl.Fixed {
				cell(wl.Workload, p)
			}
			cell(wl.Workload, wl.Auto)
		}
		t.WriteTo(stdout)
		r.WriteFindings(stdout)
		for _, wl := range r.Workloads {
			if !wl.AutoMatchesBest || wl.Violations != 0 {
				code = 1
			}
		}
		if !r.ReplayMatches {
			code = 1
		}
		rec.AutoDelta = &autodeltaRecord{Workloads: r.Workloads, ReplayMatches: r.ReplayMatches}
		fmt.Fprintln(stdout, "paper: §8.0 \"a per-segment tuning routine exists but ships disabled\" — E23 turns the loop on per page and scores it against the offline optimum")
	})

	run("e22", "beyond the paper: consensus-replicated library records (E22)", func() {
		perSite := 20
		if *quick {
			perSite = 8
		}
		r := exp.ReplicationSweep(perSite)
		t := stats.NewTable("scenario", "R", "completed", "elapsed", "appends", "commits", "degraded",
			"elections", "recoveries", "recovery", "unavail", "events", "violations")
		for _, p := range r.Points {
			recLat := "-"
			if len(p.RecoverLatency) > 0 {
				var max time.Duration
				for _, d := range p.RecoverLatency {
					if d > max {
						max = d
					}
				}
				recLat = max.Round(time.Millisecond).String()
			}
			rep := "off"
			if p.Replicas > 0 {
				rep = fmt.Sprintf("%d", p.Replicas)
			}
			t.Row(p.Name, rep, p.Completed, p.Elapsed.Round(time.Millisecond),
				p.Appends, p.Commits, p.Degraded, p.Elections, p.Recoveries,
				recLat, fmt.Sprintf("%.0fms", p.UnavailMs), p.Events, p.Violations)
			if !p.Completed || p.Violations > 0 {
				code = 1
			}
		}
		t.WriteTo(stdout)
		fmt.Fprintf(stdout, "same-seed replay identical: %v\n", r.ReplayMatches)
		if !r.ReplayMatches {
			code = 1
		}
		// The -out record keeps the grid numbers; the per-point traces
		// (verified above) would bloat it hundredfold.
		pts := make([]exp.ReplicationPoint, len(r.Points))
		copy(pts, r.Points)
		for i := range pts {
			pts[i].TraceJSONL = nil
		}
		rec.Replication = &replicationRecord{Points: pts, ReplayMatches: r.ReplayMatches}
		fmt.Fprintln(stdout, "paper: §10.0 tolerates no site failures; E18 rebuilt records reactively — E22 replicates them ahead of the crash and prices both sides")
	})

	run("e11", "§6.2 lazy remap cost", func() {
		pts := exp.RemapCost([]int{1, 16, 64, 128, 256})
		t := stats.NewTable("mapped pages", "dispatch cost")
		for _, p := range pts {
			t.Row(p.Pages, p.DispatchCost)
		}
		t.WriteTo(stdout)
		fmt.Fprintf(stdout, "paper: %v–%v per 512-byte page, segments up to 128 KB (256 pages)\n",
			vaxmodel.RemapPerPageMin, vaxmodel.RemapPerPageMax)
	})

	rec.TotalWallS = time.Since(totalStart).Seconds()
	if *out != "" {
		rec.Micro = microbench()
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "miragebench: marshal record: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "miragebench: write %s: %v\n", *out, err)
			return 1
		}
		fmt.Fprintf(stdout, "benchmark record: %s (parallelism=%d over %d CPUs, %.2fs total wall)\n",
			*out, *par, rec.CPUs, rec.TotalWallS)
	}
	return code
}
