package mirage

import (
	"sync"
	"time"

	"mirage/internal/core"
	"mirage/internal/transport"
	"mirage/internal/wire"
)

// node is one live site: a protocol engine owned by an actor loop.
// Every engine call happens on the loop goroutine; accessors and the
// transport post operations and (when needed) wait for replies.
type node struct {
	site  int
	eng   *core.Engine
	tr    transport.Transport
	start time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	ops    []loopItem
	spare  []loopItem // recycled batch backing array
	closed bool
	done   chan struct{}
}

// loopItem is one queued actor operation: either a function to run or
// an inbound protocol message to hand to the engine. Messages get
// their own variant so the transport's delivery path enqueues a bare
// pointer instead of allocating a closure per message.
type loopItem struct {
	fn func()
	m  *wire.Msg
}

func newNode(site int, start time.Time) *node {
	n := &node{site: site, start: start, done: make(chan struct{})}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// startLoop runs the actor loop; call after eng and tr are set. Each
// wakeup drains the whole inbox: the queue is swapped out under the
// lock and processed as one batch, with the drained backing array
// recycled so a steady message stream costs no allocation and one
// lock round trip per batch rather than per message.
func (n *node) startLoop() {
	go func() {
		defer close(n.done)
		for {
			n.mu.Lock()
			for len(n.ops) == 0 && !n.closed {
				n.cond.Wait()
			}
			if len(n.ops) == 0 && n.closed {
				n.mu.Unlock()
				return
			}
			batch := n.ops
			n.ops = n.spare[:0]
			n.spare = nil
			n.mu.Unlock()
			for i, it := range batch {
				if it.m != nil {
					n.eng.Deliver(it.m)
				} else {
					it.fn()
				}
				batch[i] = loopItem{}
			}
			n.mu.Lock()
			if n.spare == nil {
				n.spare = batch[:0]
			}
			n.mu.Unlock()
		}
	}()
}

// enqueue adds one item to the actor inbox; it reports whether the
// item was accepted (after close everything is dropped).
func (n *node) enqueue(it loopItem) bool {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return false
	}
	n.ops = append(n.ops, it)
	n.cond.Signal()
	n.mu.Unlock()
	return true
}

// post queues fn on the actor loop. It never blocks, so it is safe to
// call from within the loop itself (engine callbacks). It reports
// whether the op was accepted; after close it is dropped.
func (n *node) post(fn func()) bool {
	return n.enqueue(loopItem{fn: fn})
}

// call runs fn on the loop and waits for it to finish.
func (n *node) call(fn func()) {
	ch := make(chan struct{})
	n.post(func() {
		fn()
		close(ch)
	})
	<-ch
}

func (n *node) close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.cond.Signal()
	n.mu.Unlock()
	<-n.done
}

// deliver is the transport handler: it hands a received message to the
// engine on the loop. The message rides the inbox as a bare pointer —
// no per-message closure — and the loop feeds it to the engine.
func (n *node) deliver(m *wire.Msg) {
	n.enqueue(loopItem{m: m})
}

// nodeEnv adapts the node to core.Env. Live mode keeps real time and
// ignores the simulated CPU costs: Exec is just loop scheduling.
type nodeEnv struct{ n *node }

func (e nodeEnv) Site() int          { return e.n.site }
func (e nodeEnv) Now() time.Duration { return time.Since(e.n.start) }

func (e nodeEnv) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, func() { e.n.post(fn) })
	return func() { t.Stop() }
}

func (e nodeEnv) Send(to int, m core.NetMsg) {
	// Errors here mean the fabric is down (cluster closing); the
	// blocked accessors are woken by Close.
	_ = e.n.tr.Send(to, m.(*wire.Msg))
}

func (e nodeEnv) Exec(cost time.Duration, fn func()) {
	_ = cost // live nodes run at native speed
	e.n.post(fn)
}
