package mirage

// The service layer: a sharded key/value (session) store built
// directly on coherently shared segments. Each shard is one public
// segment whose creating site is its library — sharding spreads the
// coherence-management role across the cluster — and any site's Store
// frontend can serve any key, because the DSM moves the pages to the
// accessor. See docs/SERVICE.md for the design and internal/app for
// the record layout.

import (
	"encoding/binary"
	"fmt"

	"mirage/internal/app"
)

// StoreConfig fixes a store's cluster-wide geometry: shard count,
// slots per shard, slot size. Every site must open the store with an
// identical config; the key→shard→slot mapping is derived from it and
// stamped into each shard's header. The zero value takes the app
// package defaults (8 shards × 64 slots of 128 bytes).
type StoreConfig = app.Config

// Store is one site's frontend onto the sharded store: Get, Put,
// Delete, CAS, and per-shard Stats. A frontend over live segment
// handles is safe for concurrent goroutines.
type Store = app.Store

// StoreStats is the per-shard operation attribution table of one
// Store frontend.
type StoreStats = app.Stats

// ShardCounters is one shard's cumulative operation counts.
type ShardCounters = app.ShardCounters

// Store errors. DSM-level failures (ErrUnreachable and friends) pass
// through wrapped; errors.Is still matches them.
var (
	// ErrKeyNotFound reports a Get/Delete/CAS of an absent key.
	ErrKeyNotFound = app.ErrNoKey
	// ErrShardFull reports a Put that found no free slot in the key's
	// shard.
	ErrShardFull = app.ErrShardFull
	// ErrValueTooLarge reports a key+value that cannot fit a record
	// slot.
	ErrValueTooLarge = app.ErrTooLarge
	// ErrShardBusy reports a mutation that could not take the shard
	// lock within its retry budget (a wedged or crashed lock holder).
	ErrShardBusy = app.ErrShardBusy
	// ErrStoreCorrupt reports a shard segment whose header does not
	// match the store config.
	ErrStoreCorrupt = app.ErrCorrupt
)

// StoreKeyBase is the segment key of shard 0; shard i lives at
// StoreKeyBase+i. One store per cluster — callers needing private
// keyspaces can shard by hand with the app-layer conventions.
const StoreKeyBase Key = 0x4B56 // "KV"

// OpenStores creates, formats, and opens the store cluster-wide: each
// shard segment is created at its library site (the rendezvous-hash
// winner, StoreConfig.LibraryFor), then
// every site attaches all shards and builds its frontend. The returned
// slice has one Store per site, in site order. Each frontend has its
// own StoreStats; the cluster's Obs (when configured) receives app_ops
// counters and app_op_latency_ns samples from all of them.
func (c *Cluster) OpenStores(cfg StoreConfig) ([]*Store, error) {
	cfg = cfg.WithDefaults()
	cfg.Sites = c.Sites()
	cfg.PageSize = c.opts.PageSize
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	handles := make([][]app.Segment, c.Sites())
	for i := range handles {
		handles[i] = make([]app.Segment, cfg.Shards)
	}
	// Pass 1: every shard is created and formatted at its library site.
	for shard := 0; shard < cfg.Shards; shard++ {
		lib := cfg.LibraryFor(shard)
		h, err := createStoreShard(c.Site(lib), cfg, shard)
		if err != nil {
			return nil, err
		}
		handles[lib][shard] = h
	}
	// Pass 2: the other sites attach and validate the headers.
	stores := make([]*Store, c.Sites())
	for i := range stores {
		site := c.Site(i)
		for shard := 0; shard < cfg.Shards; shard++ {
			if handles[i][shard] != nil {
				continue
			}
			h, err := attachStoreShard(site, cfg, shard)
			if err != nil {
				return nil, err
			}
			handles[i][shard] = h
		}
		st, err := app.New(cfg, handles[i], app.Options{Site: i, Obs: c.opts.Obs})
		if err != nil {
			return nil, err
		}
		stores[i] = st
	}
	return stores, nil
}

// OpenStore opens this site's frontend onto the store: shards whose
// library is this site are created and formatted, the rest must
// already exist (their headers are validated against cfg). On a
// multi-site cluster, Cluster.OpenStores handles the cross-site
// creation ordering; OpenStore suits single-site clusters and sites
// joining a store that is already fully created.
func (s *Site) OpenStore(cfg StoreConfig) (*Store, error) {
	cfg = cfg.WithDefaults()
	cfg.Sites = s.c.Sites()
	cfg.PageSize = s.c.opts.PageSize
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	segs := make([]app.Segment, cfg.Shards)
	for shard := range segs {
		var h app.Segment
		var err error
		if cfg.LibraryFor(shard) == s.id {
			h, err = createStoreShard(s, cfg, shard)
		} else {
			h, err = attachStoreShard(s, cfg, shard)
		}
		if err != nil {
			return nil, err
		}
		segs[shard] = h
	}
	return app.New(cfg, segs, app.Options{Site: s.id, Obs: s.c.opts.Obs})
}

// createStoreShard creates (or joins) shard's segment at its library
// site. A freshly created segment gets a formatted header; an existing
// one is validated against cfg instead — rejoining a live store must
// never reformat it.
func createStoreShard(s *Site, cfg StoreConfig, shard int) (*Segment, error) {
	id, err := s.Shmget(StoreKeyBase+Key(shard), cfg.ShardBytes(), Create, 0o600)
	if err != nil {
		return nil, fmt.Errorf("mirage: create store shard %d: %w", shard, err)
	}
	h, err := s.Attach(id, false)
	if err != nil {
		return nil, fmt.Errorf("mirage: attach store shard %d: %w", shard, err)
	}
	var magic [4]byte
	if err := h.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("mirage: read store shard %d header: %w", shard, err)
	}
	if binary.LittleEndian.Uint32(magic[:]) == app.Magic {
		if err := app.CheckShard(h, cfg, shard); err != nil {
			return nil, err
		}
		return h, nil
	}
	if err := app.Format(h, cfg, shard); err != nil {
		return nil, fmt.Errorf("mirage: format store shard %d: %w", shard, err)
	}
	return h, nil
}

// attachStoreShard attaches an existing shard segment and validates
// its header against cfg.
func attachStoreShard(s *Site, cfg StoreConfig, shard int) (*Segment, error) {
	id, err := s.Shmget(StoreKeyBase+Key(shard), cfg.ShardBytes(), 0, 0)
	if err != nil {
		return nil, fmt.Errorf("mirage: locate store shard %d: %w", shard, err)
	}
	h, err := s.Attach(id, false)
	if err != nil {
		return nil, fmt.Errorf("mirage: attach store shard %d: %w", shard, err)
	}
	if err := app.CheckShard(h, cfg, shard); err != nil {
		return nil, err
	}
	return h, nil
}
