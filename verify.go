package mirage

import (
	"fmt"
	"time"

	"mirage/internal/check"
)

// Violation is one coherence-invariant breach found in a trace: which
// invariant, the offending event, and why. See internal/check for the
// invariant catalogue (single-writer exclusion, write serialization,
// read-latest-write, valid-copy, Δ-window possession, exactly-once
// grants).
type Violation = check.Violation

// CheckConfig parameterizes trace verification. The zero value checks
// everything except the Δ-window invariant (Delta 0 disables it, since
// the window length is not recorded in the trace).
type CheckConfig = check.Config

// VerifyTrace runs the coherence checker over a recorded event trace
// (TraceBuffer events, or a trace re-read from JSONL) and returns every
// invariant violation found; nil means the trace is coherent. Traces
// recorded with Options.Check additionally carry per-access op events,
// enabling the read-latest-write oracle; without them the protocol
// invariants are still checked.
func VerifyTrace(cfg CheckConfig, events []TraceEvent) []Violation {
	return check.Verify(cfg, events)
}

// liveCheckSlack is the window-invariant timestamp tolerance applied to
// wall-clock traces by Cluster.VerifyTrace: live timers and event
// emission both run on real schedulers, so possession boundaries can
// appear a few milliseconds off from timer truth. The simulator's
// virtual-clock traces need no slack.
const liveCheckSlack = 25 * time.Millisecond

// VerifyTrace checks the cluster's own trace buffer against the
// coherence invariants, with the configuration (site count, Δ,
// reliability) derived from the cluster's options. It is valid while
// the cluster is running or after Close.
//
// With Options.AutoDelta set, the derived config uses AutoDelta.Min as
// the window bound: every granted window is clamped to at least Min,
// so Min is a sound one-sided bound — any violation it reports is real
// (Min 0 disables the window invariant, as usual).
//
// Caveat: the derived config otherwise assumes the uniform
// Options.Delta; if the run retuned windows with SetSegmentDelta,
// verify with an explicit config (Delta 0 disables the window
// invariant) via the package-level VerifyTrace instead.
func (c *Cluster) VerifyTrace() ([]Violation, error) {
	if c.opts.Obs == nil {
		return nil, fmt.Errorf("mirage: VerifyTrace requires Options.Obs")
	}
	buf := c.opts.Obs.Buffer()
	if buf == nil {
		return nil, fmt.Errorf("mirage: VerifyTrace requires the Obs tracer to be a trace buffer (mirage.NewObs())")
	}
	if buf.Dropped() > 0 {
		return nil, fmt.Errorf("mirage: trace buffer dropped %d events; verification would be unsound", buf.Dropped())
	}
	delta := c.opts.Delta
	if c.opts.AutoDelta != nil {
		delta = c.opts.AutoDelta.Min
	}
	cfg := CheckConfig{
		Sites:    len(c.sites),
		Delta:    delta,
		Slack:    liveCheckSlack,
		Reliable: c.opts.Reliability != nil,
	}
	return check.Verify(cfg, buf.Events()), nil
}
