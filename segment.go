package mirage

import (
	"fmt"
	"sync"

	"mirage/internal/mem"
	"mirage/internal/mmu"
)

// Segment is one attach of a shared segment at a site: the handle
// through which processes read and write coherently shared memory.
// Handles are safe for concurrent use by multiple goroutines (they
// model colocated processes sharing the site's page frames).
type Segment struct {
	site     *Site
	seg      *mem.Segment
	readonly bool
	pid      int32

	mu       sync.Mutex
	detached bool
}

// Size returns the segment size in bytes.
func (g *Segment) Size() int { return g.seg.Size }

// ID returns the segment id.
func (g *Segment) ID() SegID { return g.seg.ID }

// PageSize returns the coherence unit.
func (g *Segment) PageSize() int { return g.seg.PageSize }

// Detach unmaps the segment (System V shmdt). The cluster-wide last
// detach destroys the segment.
func (g *Segment) Detach() error {
	g.mu.Lock()
	if g.detached {
		g.mu.Unlock()
		return ErrDetached
	}
	g.detached = true
	g.mu.Unlock()
	return g.site.detach(g.seg.ID)
}

// access runs fn over each page-aligned chunk of [off, off+n) with the
// page held in the needed mode, faulting through the protocol engine
// as required. fn runs on the site's actor loop, serialized with the
// protocol, so the frame bytes are stable for its duration.
func (g *Segment) access(off, n int, write bool, fn func(frame []byte, frameOff, bufOff, k int)) error {
	g.mu.Lock()
	detached := g.detached
	g.mu.Unlock()
	if detached {
		return ErrDetached
	}
	if write && g.readonly {
		return ErrReadOnly
	}
	if off < 0 || n < 0 || off+n > g.seg.Size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBounds, off, off+n, g.seg.Size)
	}
	nd := g.site.node
	segID := int32(g.seg.ID)
	ps := g.seg.PageSize
	bufOff := 0
	for n > 0 {
		page := off / ps
		fo := off % ps
		k := ps - fo
		if k > n {
			k = n
		}
		for {
			if g.seg.Removed() {
				return ErrDetached
			}
			done := make(chan bool, 1)
			var faultErr error
			fo, bufOff, k := fo, bufOff, k
			ok := nd.post(func() {
				if err := nd.eng.FaultError(segID, int32(page)); err != nil {
					// A previous fault on this page was degraded (peer
					// unreachable past the retry budget). Surface it
					// instead of refaulting into the same partition.
					faultErr = err
					done <- true
					return
				}
				if nd.eng.CheckAccess(segID, int32(page), write) == mmu.NoFault {
					frame := nd.eng.Frame(segID, int32(page))
					fn(frame, fo, bufOff, k)
					if g.site.c.opts.Check {
						// Op record for VerifyTrace; on the actor loop,
						// so it lands in causal order with the protocol
						// events.
						nd.eng.RecordOp(segID, int32(page), fo, write, frame[fo:fo+k])
					}
					done <- true
					return
				}
				nd.eng.Fault(segID, int32(page), write, g.pid, func() {
					select {
					case done <- false:
					default: // already woken once for this attempt
					}
				})
			})
			if !ok {
				return ErrDetached
			}
			if <-done {
				if faultErr != nil {
					return faultErr
				}
				break
			}
		}
		off += k
		bufOff += k
		n -= k
	}
	return nil
}

// ReadAt copies len(b) bytes from the segment at off into b,
// coherently: the bytes reflect the latest completed writes anywhere
// in the cluster.
func (g *Segment) ReadAt(b []byte, off int) error {
	return g.access(off, len(b), false, func(frame []byte, fo, bo, k int) {
		copy(b[bo:bo+k], frame[fo:fo+k])
	})
}

// WriteAt copies b into the segment at off.
func (g *Segment) WriteAt(b []byte, off int) error {
	return g.access(off, len(b), true, func(frame []byte, fo, bo, k int) {
		copy(frame[fo:fo+k], b[bo:bo+k])
	})
}

// Uint32 reads a 32-bit little-endian word.
func (g *Segment) Uint32(off int) (uint32, error) {
	var v uint32
	err := g.access(off, 4, false, func(frame []byte, fo, bo, k int) {
		for i := 0; i < k; i++ {
			v |= uint32(frame[fo+i]) << (8 * uint(bo+i))
		}
	})
	return v, err
}

// SetUint32 writes a 32-bit little-endian word.
func (g *Segment) SetUint32(off int, v uint32) error {
	return g.access(off, 4, true, func(frame []byte, fo, bo, k int) {
		for i := 0; i < k; i++ {
			frame[fo+i] = byte(v >> (8 * uint(bo+i)))
		}
	})
}

// AddUint32 atomically (with respect to the page's single-writer
// protocol state) adds delta to the word at off and returns the new
// value. The word must not span pages.
func (g *Segment) AddUint32(off int, delta uint32) (uint32, error) {
	var out uint32
	err := g.access(off, 4, true, func(frame []byte, fo, bo, k int) {
		if k != 4 {
			panic("mirage: AddUint32 across a page boundary")
		}
		v := uint32(frame[fo]) | uint32(frame[fo+1])<<8 | uint32(frame[fo+2])<<16 | uint32(frame[fo+3])<<24
		v += delta
		frame[fo] = byte(v)
		frame[fo+1] = byte(v >> 8)
		frame[fo+2] = byte(v >> 16)
		frame[fo+3] = byte(v >> 24)
		out = v
	})
	return out, err
}

// TestAndSet sets the byte at off to 1 under write access and returns
// its previous value: the interlocked instruction §7.2 studies (and
// recommends against for cross-site spinlocks).
func (g *Segment) TestAndSet(off int) (old byte, err error) {
	err = g.access(off, 1, true, func(frame []byte, fo, bo, k int) {
		old = frame[fo]
		frame[fo] = 1
	})
	return old, err
}

// Clear zeroes the byte at off under write access (spinlock release).
func (g *Segment) Clear(off int) error {
	return g.access(off, 1, true, func(frame []byte, fo, bo, k int) {
		frame[fo] = 0
	})
}
