package mirage_test

import (
	"fmt"
	"time"

	"mirage"
)

// The basic System V workflow: create a segment at one site, attach it
// at another, and read coherently.
func Example() {
	c, err := mirage.NewCluster(2, mirage.Options{Delta: 20 * time.Millisecond})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	s0 := c.Site(0)
	id, _ := s0.Shmget(mirage.IPCPrivate, 8192, mirage.Create, 0o600)
	seg, _ := s0.Attach(id, false)
	seg.SetUint32(0, 42)

	remote, _ := c.Site(1).Attach(id, false)
	v, _ := remote.Uint32(0) // faults, fetches the page, reads 42
	fmt.Println(v)
	// Output: 42
}

// Attaching an Obs makes every coherence event observable: counters
// and histograms through the metrics snapshot, and — because NewObs
// carries a trace buffer — a structured timeline of protocol events.
func Example_observability() {
	o := mirage.NewObs()
	c, err := mirage.NewCluster(2, mirage.Options{Obs: o})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	s0 := c.Site(0)
	id, _ := s0.Shmget(mirage.IPCPrivate, 4096, mirage.Create, 0o600)
	seg, _ := s0.Attach(id, false)
	seg.SetUint32(0, 7)

	remote, _ := c.Site(1).Attach(id, false)
	remote.Uint32(0)

	snap := o.Metrics.Snapshot()
	fmt.Println("read faulted:", snap.Totals["read_faults"] > 0)
	fmt.Println("page moved:", snap.Totals["pages_sent"] > 0)
	fmt.Println("events traced:", o.Buffer().Len() > 0)
	// Output:
	// read faulted: true
	// page moved: true
	// events traced: true
}
