package mirage

import (
	"fmt"
	"sync"
	"time"

	"mirage/internal/chaos"
	"mirage/internal/core"
	"mirage/internal/mem"
	"mirage/internal/transport"
	"mirage/internal/wire"
)

// Cluster is a set of Mirage sites sharing one segment name space.
type Cluster struct {
	opts  Options
	nodes []*node
	sites []*Site

	// closer tears down the shared transport fabric.
	closer func() error
	// chaos is the fault injector when Options.Chaos is set.
	chaos *chaos.Injector
	// debug is the debug HTTP server when Options.DebugAddr is set.
	debug *debugServer

	mu       sync.Mutex
	registry *mem.Registry
	nextPid  int32
	closed   bool
}

// NewCluster starts n sites. With Options.TCP the sites exchange
// protocol traffic over TCP sockets; otherwise over in-process queues.
func NewCluster(n int, opts Options) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mirage: cluster size %d out of range [1,%d]", n, MaxSites)
	}
	if n > MaxSites {
		return nil, fmt.Errorf("mirage: cluster size %d: %w", n, ErrTooManySites)
	}
	opts = opts.withDefaults()
	if opts.PageSize < 0 {
		return nil, fmt.Errorf("mirage: negative page size")
	}
	if opts.Delta < 0 {
		return nil, fmt.Errorf("mirage: negative Options.Delta %v", opts.Delta)
	}
	if opts.Chaos != nil && opts.Reliability == nil {
		return nil, fmt.Errorf("mirage: Options.Chaos requires Options.Reliability")
	}
	if opts.Failover != nil && opts.Reliability == nil {
		return nil, fmt.Errorf("mirage: Options.Failover requires Options.Reliability")
	}
	if opts.Placement != nil && opts.Failover == nil {
		return nil, fmt.Errorf("mirage: Options.Placement requires Options.Failover")
	}
	if opts.Replication != nil && opts.Replication.Replicas > 0 {
		if opts.Failover == nil {
			return nil, fmt.Errorf("mirage: Options.Replication requires Options.Failover")
		}
		if opts.Replication.Replicas >= n {
			return nil, fmt.Errorf("mirage: Options.Replication.Replicas %d must be below the cluster size %d",
				opts.Replication.Replicas, n)
		}
	}
	if opts.AutoDelta != nil {
		ad := opts.AutoDelta
		if ad.Min < 0 || ad.Max < 0 || ad.Step < 0 || ad.CheapDenial < 0 ||
			ad.Cooldown < 0 || ad.MinCycles < 0 {
			return nil, fmt.Errorf("mirage: negative Options.AutoDelta field")
		}
		if ad.Max != 0 && ad.Max < ad.Min {
			return nil, fmt.Errorf("mirage: Options.AutoDelta.Max %v below Min %v", ad.Max, ad.Min)
		}
	}
	if opts.DebugAddr != "" && opts.Obs == nil {
		return nil, fmt.Errorf("mirage: Options.DebugAddr requires Options.Obs")
	}
	if opts.Check && !opts.Obs.Tracing() {
		return nil, fmt.Errorf("mirage: Options.Check requires Options.Obs with a tracer (e.g. mirage.NewObs())")
	}
	c := &Cluster{
		opts:     opts,
		registry: mem.NewRegistry(opts.PageSize, opts.Delta, opts.MaxSegmentBytes),
		nextPid:  1,
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, newNode(i, start))
	}

	engOpts := core.Options{
		Policy:      opts.Policy,
		Costs:       &core.Costs{}, // live nodes run at native speed
		Reliability: opts.Reliability,
		Placement:   opts.Placement,
		AutoDelta:   opts.AutoDelta,
		Obs:         opts.Obs,
		InvalFanout: opts.InvalFanout,
	}
	if opts.Reliability != nil && opts.Reliability.Sites == 0 {
		rl := *opts.Reliability
		rl.Sites = n
		engOpts.Reliability = &rl
	}
	if opts.Failover != nil {
		// Copy so the caller's struct is untouched; the cluster knows
		// its own size better than the caller does.
		fo := *opts.Failover
		fo.Sites = n
		engOpts.Failover = &fo
	}
	if opts.Replication != nil {
		rp := *opts.Replication
		rp.Sites = n
		engOpts.Replication = &rp
	}
	if opts.TCP {
		var meshes []*transport.TCPMesh
		addrs := make([]string, n)
		for i, nd := range c.nodes {
			nd := nd
			m, err := transport.NewTCPSite(i, opts.TCPAddr, nd.deliver)
			if err != nil {
				for _, prev := range meshes {
					prev.Close()
				}
				return nil, err
			}
			meshes = append(meshes, m)
			addrs[i] = m.Addr()
		}
		for i, m := range meshes {
			m.SetPeers(addrs)
			m.SetObs(opts.Obs)
			c.nodes[i].tr = m
		}
		c.closer = func() error {
			var first error
			for _, m := range meshes {
				if err := m.Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		}
	} else {
		handlers := make([]transport.Handler, n)
		for i, nd := range c.nodes {
			handlers[i] = nd.deliver
		}
		mesh := transport.NewInprocMesh(handlers)
		mesh.SetObs(opts.Obs)
		for i := range c.nodes {
			c.nodes[i].tr = mesh.Site(i)
		}
		c.closer = mesh.Close
	}

	if opts.Chaos != nil {
		c.chaos = chaos.New(*opts.Chaos)
		c.chaos.SetObs(opts.Obs)
		now := func() time.Duration { return time.Since(start) }
		for i, nd := range c.nodes {
			nd.tr = chaos.WrapTransport(nd.tr, c.chaos, i, now)
		}
	}

	if opts.DebugAddr != "" {
		srv, err := startDebugServer(opts.DebugAddr, opts.Obs, n)
		if err != nil {
			c.closer()
			return nil, err
		}
		c.debug = srv
	}

	for i, nd := range c.nodes {
		nd.eng = core.New(nodeEnv{nd}, engOpts)
		nd.startLoop()
		c.sites = append(c.sites, &Site{c: c, node: nd, id: i, attaches: map[SegID]int{}})
	}
	return c, nil
}

// Sites returns the number of sites.
func (c *Cluster) Sites() int { return len(c.sites) }

// Site returns site i's interface.
func (c *Cluster) Site(i int) *Site { return c.sites[i] }

// ChaosStats returns the fault injector's counters. ok is false when
// the cluster runs without a chaos plan.
func (c *Cluster) ChaosStats() (stats ChaosStats, ok bool) {
	if c.chaos == nil {
		return ChaosStats{}, false
	}
	return c.chaos.Stats(), true
}

// Obs returns the cluster's observability sink, or nil when the
// cluster runs without one.
func (c *Cluster) Obs() *Obs { return c.opts.Obs }

// DebugAddr returns the bound address of the debug HTTP server, or ""
// when Options.DebugAddr was not set. Useful with an ephemeral listen
// address ("127.0.0.1:0").
func (c *Cluster) DebugAddr() string {
	if c.debug == nil {
		return ""
	}
	return c.debug.addr()
}

// Close shuts the cluster down: transports first (unblocking engines),
// then the actor loops. Outstanding accessors return ErrDetached.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	segs := c.registry.Segments()
	// Mark every segment removed so blocked accessors observe it.
	c.registry.DestroyAll()
	c.mu.Unlock()

	// Destroy engine state so blocked fault loops wake and error out.
	for _, s := range segs {
		for _, nd := range c.nodes {
			id := int32(s.ID)
			nd.call(func() { nd.eng.DestroySegment(id) })
		}
	}
	err := c.closer()
	for _, nd := range c.nodes {
		nd.close()
	}
	if c.debug != nil {
		if derr := c.debug.close(); err == nil {
			err = derr
		}
	}
	return err
}

func (c *Cluster) pid() int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.nextPid
	c.nextPid++
	return p
}

// Site is one machine's view of the cluster: the System V interface
// plus Mirage's tuning handles.
type Site struct {
	c    *Cluster
	node *node
	id   int

	attaches map[SegID]int // local attach counts (guarded by c.mu)
}

// ID returns the site's number.
func (s *Site) ID() int { return s.id }

// Shmget locates or creates a segment by key (System V shmget). uid 0
// is used; use ShmgetAs for permission experiments.
func (s *Site) Shmget(key Key, size int, flags, mode int) (SegID, error) {
	return s.ShmgetAs(key, size, flags, mode, 0)
}

// ShmgetAs is Shmget with an explicit calling uid.
func (s *Site) ShmgetAs(key Key, size int, flags, mode, uid int) (SegID, error) {
	s.c.mu.Lock()
	if s.c.closed {
		s.c.mu.Unlock()
		return 0, ErrClosed
	}
	seg, err := s.c.registry.GetSegment(key, size, flags, mode, uid, s.id)
	s.c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if seg.Library == s.id {
		nd := s.node
		nd.call(func() {
			if !nd.eng.Attached(int32(seg.ID)) {
				nd.eng.CreateSegment(seg)
			}
		})
	}
	return seg.ID, nil
}

// Attach maps the segment at this site (System V shmat). readonly
// attaches reject writes at the interface (SHM_RDONLY).
func (s *Site) Attach(id SegID, readonly bool) (*Segment, error) {
	return s.AttachAs(id, readonly, 0)
}

// AttachAs is Attach with an explicit calling uid.
func (s *Site) AttachAs(id SegID, readonly bool, uid int) (*Segment, error) {
	s.c.mu.Lock()
	if s.c.closed {
		s.c.mu.Unlock()
		return nil, ErrClosed
	}
	seg, err := s.c.registry.Attach(id, uid, !readonly)
	if err != nil {
		s.c.mu.Unlock()
		return nil, err
	}
	s.attaches[id]++
	s.c.mu.Unlock()

	nd := s.node
	nd.call(func() { nd.eng.AttachSegment(seg) })
	return &Segment{site: s, seg: seg, readonly: readonly, pid: s.c.pid()}, nil
}

// Remove marks the segment for destruction (shmctl IPC_RMID): hidden
// now, destroyed at the last detach.
func (s *Site) Remove(id SegID) error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	return s.c.registry.Remove(id, 0)
}

// SetSegmentDelta changes Δ for every page of a segment. It must be
// called on the segment's library site; negative windows are rejected.
func (s *Site) SetSegmentDelta(id SegID, delta time.Duration) error {
	var err error
	nd := s.node
	nd.call(func() {
		defer func() {
			if recover() != nil {
				err = fmt.Errorf("mirage: SetSegmentDelta: site %d is not the library for segment %d", s.id, id)
			}
		}()
		err = nd.eng.SetSegmentDelta(int32(id), delta)
	})
	return err
}

// Stats returns the site's protocol counters.
func (s *Site) Stats() core.Stats {
	var st core.Stats
	nd := s.node
	nd.call(func() { st = nd.eng.Stats() })
	return st
}

// detach performs the bookkeeping for one detach of id at this site.
func (s *Site) detach(id SegID) error {
	s.c.mu.Lock()
	if s.c.closed {
		s.c.mu.Unlock()
		return ErrClosed
	}
	s.attaches[id]--
	lastLocal := s.attaches[id] == 0
	destroyed, err := s.c.registry.Detach(id)
	s.c.mu.Unlock()
	if err != nil {
		return err
	}
	if destroyed {
		for _, nd := range s.c.nodes {
			nd := nd
			nd.call(func() { nd.eng.DestroySegment(int32(id)) })
		}
		return nil
	}
	if lastLocal {
		nd := s.node
		nd.call(func() { nd.eng.ReleaseSegment(int32(id)) })
	}
	return nil
}

// ensure wire is linked for the transport assertions.
var _ = wire.KReadReq
