// Quickstart: a three-site Mirage cluster sharing one System V style
// segment with full coherence — writes at any site are visible to
// subsequent reads everywhere.
package main

import (
	"fmt"
	"log"
	"time"

	"mirage"
)

func main() {
	log.SetFlags(0)

	// Three sites, 20 ms page windows: enough retention to stop a hot
	// page from thrashing, small enough to stay responsive.
	c, err := mirage.NewCluster(3, mirage.Options{Delta: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Site 0 creates the segment and becomes its library site.
	home := c.Site(0)
	id, err := home.Shmget(0x4D495241, 8192, mirage.Create, 0o600)
	if err != nil {
		log.Fatal(err)
	}
	seg0, err := home.Attach(id, false)
	if err != nil {
		log.Fatal(err)
	}
	defer seg0.Detach()

	// Other sites attach by id (they'd find it by key in a larger
	// program) and see each other's writes coherently.
	seg1, err := c.Site(1).Attach(id, false)
	if err != nil {
		log.Fatal(err)
	}
	defer seg1.Detach()
	seg2, err := c.Site(2).Attach(id, true) // read-only attach
	if err != nil {
		log.Fatal(err)
	}
	defer seg2.Detach()

	if err := seg0.WriteAt([]byte("hello from site 0"), 0); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 17)
	if err := seg1.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site 1 reads: %q\n", buf)

	// Site 1 updates a counter; the read-only attach at site 2
	// observes the latest value.
	for i := 0; i < 5; i++ {
		if _, err := seg1.AddUint32(1024, 10); err != nil {
			log.Fatal(err)
		}
	}
	v, err := seg2.Uint32(1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site 2 sees counter: %d\n", v)

	// Writes through a read-only attach are refused at the interface.
	if err := seg2.SetUint32(0, 1); err != nil {
		fmt.Printf("site 2 write refused as expected: %v\n", err)
	}

	st := home.Stats()
	fmt.Printf("site 0 protocol: %d read faults, %d write faults, %d pages sent\n",
		st.ReadFaults, st.WriteFaults, st.PagesSent)
}
