// Tcpcluster runs the Mirage protocol over real TCP loopback sockets:
// page transfers, invalidations, and window traffic all cross the
// kernel's network stack. A small producer/consumer pipeline built on
// shared memory demonstrates coherent cross-socket sharing plus the
// TestAndSet primitive as a lock.
package main

import (
	"fmt"
	"log"
	"time"

	"mirage"
)

const items = 25

func main() {
	log.SetFlags(0)
	c, err := mirage.NewCluster(2, mirage.Options{
		TCP:   true,
		Delta: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	id, err := c.Site(0).Shmget(0xBEEF, 2048, mirage.Create, 0o600)
	if err != nil {
		log.Fatal(err)
	}
	prod, err := c.Site(0).Attach(id, false)
	if err != nil {
		log.Fatal(err)
	}
	cons, err := c.Site(1).Attach(id, false)
	if err != nil {
		log.Fatal(err)
	}

	// Layout: [0] lock byte, [4] sequence number, [8..] payload.
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := uint32(0)
		for last < items {
			lockWith(cons, func() {
				seq, _ := cons.Uint32(4)
				if seq > last {
					buf := make([]byte, 32)
					cons.ReadAt(buf, 8)
					fmt.Printf("consumer: item %2d: %q\n", seq, trim(buf))
					last = seq
				}
			})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	start := time.Now()
	for i := 1; i <= items; i++ {
		msg := fmt.Sprintf("payload #%d over TCP", i)
		lockWith(prod, func() {
			prod.WriteAt(make([]byte, 32), 8) // clear
			prod.WriteAt([]byte(msg), 8)
			prod.SetUint32(4, uint32(i))
		})
		time.Sleep(3 * time.Millisecond)
	}
	<-done

	s0, s1 := c.Site(0).Stats(), c.Site(1).Stats()
	fmt.Printf("\n%d items in %v; %d page transfers over TCP; %d upgrades\n",
		items, time.Since(start).Round(time.Millisecond),
		s0.PagesSent+s1.PagesSent, s0.Upgrades+s1.Upgrades)
}

// lockWith runs fn under the segment's TAS lock at byte 0.
func lockWith(seg *mirage.Segment, fn func()) {
	for {
		old, err := seg.TestAndSet(0)
		if err != nil {
			log.Fatal(err)
		}
		if old == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fn()
	if err := seg.Clear(0); err != nil {
		log.Fatal(err)
	}
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
