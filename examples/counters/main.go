// Counters runs the paper's §8.0 "representative" application live:
// two sites decrement separate values that share one page, in bursts
// separated by local work, sweeping the window Δ. The live run shows
// the same contention/retention trade-off the simulator reproduces
// from Figure 8, compressed to wall-clock-friendly scales.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"mirage"
)

const (
	burstIters = 4000                  // decrements per burst
	localWork  = 20 * time.Millisecond // off-page phase between bursts
	runFor     = 2 * time.Second
)

func main() {
	log.SetFlags(0)
	fmt.Printf("burst=%d iters, local=%v, run=%v\n\n", burstIters, localWork, runFor)
	fmt.Printf("%-10s  %12s  %14s\n", "Δ", "iters/s", "page transfers")
	for _, delta := range []time.Duration{
		0, 2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond, 160 * time.Millisecond,
	} {
		rate, moves := run(delta)
		fmt.Printf("%-10v  %12.0f  %14d\n", delta, rate, moves)
	}
	fmt.Println("\nsmall Δ: the page ping-pongs mid-burst (contention);")
	fmt.Println("large Δ: a finished burst retains the idle page (retention).")
}

func run(delta time.Duration) (itersPerSec float64, pageMoves int) {
	c, err := mirage.NewCluster(2, mirage.Options{Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	id, err := c.Site(0).Shmget(1, 512, mirage.Create, 0o600)
	if err != nil {
		log.Fatal(err)
	}

	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := time.Now().Add(runFor)
	for s := 0; s < 2; s++ {
		seg, err := c.Site(s).Attach(id, false)
		if err != nil {
			log.Fatal(err)
		}
		off := s * 4
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := 0
			for time.Now().Before(deadline) {
				if seg.SetUint32(off, burstIters) != nil {
					break
				}
				for r := burstIters; r > 0 && time.Now().Before(deadline); {
					n := 200
					if n > r {
						n = r
					}
					// n decrement-and-test iterations, committed as one
					// read-modify-write on the shared page.
					if _, err := seg.AddUint32(off, uint32(-n)); err != nil {
						return
					}
					r -= n
					mine += n
				}
				time.Sleep(localWork) // off-page phase
			}
			mu.Lock()
			total += int64(mine)
			mu.Unlock()
		}()
	}
	wg.Wait()
	s0, s1 := c.Site(0).Stats(), c.Site(1).Stats()
	return float64(total) / runFor.Seconds(), s0.PagesSent + s1.PagesSent
}
