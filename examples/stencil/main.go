// Stencil runs two classic DSM workloads on a live Mirage cluster:
//
//  1. A 1-D heat-diffusion kernel: each site owns one page-aligned
//     block of cells and reads a halo cell from each neighbour every
//     iteration — the bulk-synchronous pattern DSM handles well.
//  2. The paper's §5.1 colocation hazard, directly: each site
//     increments a private counter that is either packed next to the
//     others on one page (false sharing: the page ping-pongs on every
//     increment) or placed on its own page (one transfer each, total).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"mirage"
)

const (
	sites      = 3
	cellsPer   = 128 // cells per site; 128 × 4 B = exactly one 512 B page
	iterations = 12
	cellBytes  = 4
	scale      = 1000 // fixed-point: value 1.0 == 1000
)

func main() {
	log.SetFlags(0)
	fmt.Printf("stencil: %d sites × %d cells, %d iterations\n", sites, cellsPer, iterations)
	moves, edge := run(0)
	fmt.Printf("  %d page transfers, cell[4] -> %.3f\n\n", moves, float64(edge)/scale)

	fmt.Println("false sharing (§5.1): per-site counters, 50 paced increments each")
	packed := falseSharing(true)
	spread := falseSharing(false)
	fmt.Printf("  packed on one page : %4d page transfers\n", packed)
	fmt.Printf("  one page per site  : %4d page transfers\n", spread)
	fmt.Println("\nunrelated data colocated on a page makes every private write a")
	fmt.Println("coherence event — the hazard §5.1 uses to motivate coherence at")
	fmt.Println("the lowest level (and careful data placement).")
}

// falseSharing has each site hammer its own counter; only the byte
// placement differs between the two configurations.
func falseSharing(packed bool) (pageMoves int) {
	c, err := mirage.NewCluster(sites, mirage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	id, err := c.Site(0).Shmget(0x4653, sites*512, mirage.Create, 0o600)
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		seg, err := c.Site(s).Attach(id, false)
		if err != nil {
			log.Fatal(err)
		}
		off := s * 512 // own page
		if packed {
			off = s * 4 // all counters on page 0
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Paced like real work, so the sites genuinely interleave.
			for i := 0; i < 50; i++ {
				if _, err := seg.AddUint32(off, 1); err != nil {
					log.Fatal(err)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	total := 0
	for s := 0; s < sites; s++ {
		total += c.Site(s).Stats().PagesSent
	}
	return total
}

// run executes the diffusion and returns total page transfers and the
// final value of the first site's last cell.
func run(misalign int) (pageMoves int, edgeCell uint32) {
	c, err := mirage.NewCluster(sites, mirage.Options{Delta: 2 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Data segment: one page of slack for the misalignment, one page
	// per site, plus a separate page of round stamps for the barrier.
	dataBytes := misalign + sites*cellsPer*cellBytes
	segSize := dataBytes + 512 // stamps page at the tail, page-aligned
	stampBase := (dataBytes + 511) / 512 * 512
	id, err := c.Site(0).Shmget(0x5745, segSize+512, mirage.Create, 0o600)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	var edge uint32
	for s := 0; s < sites; s++ {
		seg, err := c.Site(s).Attach(id, false)
		if err != nil {
			log.Fatal(err)
		}
		s := s
		base := misalign + s*cellsPer*cellBytes
		cellOff := func(i int) int { return base + i*cellBytes }
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Initialize own block: site 0 holds the heat source.
			for i := 0; i < cellsPer; i++ {
				v := uint32(0)
				if s == 0 && i == 0 {
					v = 100 * scale
				}
				must(seg.SetUint32(cellOff(i), v))
			}
			barrier(seg, stampBase, s, 0)

			for it := 1; it <= iterations; it++ {
				// In-place sweep: read both neighbours (halo cells come
				// from the adjacent site's block), then update the cell.
				// With misaligned blocks the first and last cells of a
				// sweep live on a page another site is actively
				// updating — false sharing on every iteration.
				for i := 0; i < cellsPer; i++ {
					gi := s*cellsPer + i // global index
					l := uint32(0)
					if gi > 0 {
						l = get(seg, misalign+(gi-1)*cellBytes)
					}
					r := uint32(0)
					if gi < sites*cellsPer-1 {
						r = get(seg, misalign+(gi+1)*cellBytes)
					}
					v := get(seg, cellOff(i))
					nv := (l + 2*v + r) / 4
					if s == 0 && i == 0 {
						nv = 100 * scale
					}
					must(seg.SetUint32(cellOff(i), nv))
				}
				barrier(seg, stampBase, s, uint32(it))
			}
			if s == 0 {
				edge = get(seg, cellOff(4))
			}
		}()
	}
	wg.Wait()
	total := 0
	for s := 0; s < sites; s++ {
		total += c.Site(s).Stats().PagesSent
	}
	return total, edge
}

// barrier publishes this site's round stamp and waits for the others.
func barrier(seg *mirage.Segment, base, site int, round uint32) {
	must(seg.SetUint32(base+4*site, round+1))
	for s := 0; s < sites; s++ {
		for get(seg, base+4*s) < round+1 {
			time.Sleep(500 * time.Microsecond)
		}
	}
}

func get(seg *mirage.Segment, off int) uint32 {
	v, err := seg.Uint32(off)
	must(err)
	return v
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
