// Pingpong runs the paper's worst-case application (Figure 4) on a
// live two-site cluster: two workers alternate writes to adjacent
// words of one page, the access pattern that maximizes page traffic.
// It reports throughput for a sweep of Δ values so the window's
// effect is visible on a real clock.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"mirage"
)

const (
	trials   = 30
	checkTag = 1 << 20
	replyTag = 2 << 20
)

func main() {
	log.SetFlags(0)
	for _, delta := range []time.Duration{0, 5 * time.Millisecond, 20 * time.Millisecond} {
		cps, moves := run(delta)
		fmt.Printf("Δ=%-6v  %6.1f cycles/s  %4d page transfers\n", delta, cps, moves)
	}
	fmt.Println("\nlarger Δ retains pages longer: fewer transfers, slower alternation —")
	fmt.Println("the paper's worst case is exactly the workload Δ cannot help.")
}

func run(delta time.Duration) (cyclesPerSec float64, pageMoves int) {
	c, err := mirage.NewCluster(2, mirage.Options{Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	id, err := c.Site(0).Shmget(1, 512, mirage.Create, 0o600)
	if err != nil {
		log.Fatal(err)
	}
	a, err := c.Site(0).Attach(id, false)
	if err != nil {
		log.Fatal(err)
	}
	b, err := c.Site(1).Attach(id, false)
	if err != nil {
		log.Fatal(err)
	}

	slots := func(i int) (int, int) {
		k := i % (512 / 8)
		return k * 8, k*8 + 4
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // process 1 (Figure 4, site 1 code)
		defer wg.Done()
		for i := 0; i < trials; i++ {
			o1, o2 := slots(i)
			if a.SetUint32(o1, uint32(checkTag+i)) != nil {
				return
			}
			for {
				v, err := a.Uint32(o2)
				if err != nil || v == uint32(replyTag+i) {
					break
				}
				// The paper's fix: don't busy-wait the quantum away.
				time.Sleep(time.Millisecond)
			}
		}
	}()
	go func() { // process 2 (site 2 code)
		defer wg.Done()
		for i := 0; i < trials; i++ {
			o1, o2 := slots(i)
			for {
				v, err := b.Uint32(o1)
				if err != nil || v == uint32(checkTag+i) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if b.SetUint32(o2, uint32(replyTag+i)) != nil {
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)

	s0, s1 := c.Site(0).Stats(), c.Site(1).Stats()
	return float64(trials) / elapsed.Seconds(), s0.PagesSent + s1.PagesSent
}
