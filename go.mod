module mirage

go 1.22
