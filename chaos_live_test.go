package mirage

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestChaosRequiresReliability: a fault plan without the ARQ layer is
// a configuration error, not a latent hang.
func TestChaosRequiresReliability(t *testing.T) {
	plan, err := ParseFaultPlan("seed=1; drop p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(2, Options{Chaos: plan}); err == nil {
		t.Fatal("NewCluster accepted Chaos without Reliability")
	}
}

// TestLiveChaosCoherence runs the contended-counter workload over the
// real mesh (in-process and TCP) while the injector drops, duplicates
// and delays traffic: the reliability layer must absorb it all without
// losing an update, and the recorded trace must pass the coherence
// checker — with retransmission on, zero violations.
func TestLiveChaosCoherence(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		t.Run(map[bool]string{false: "inproc", true: "tcp"}[tcp], func(t *testing.T) {
			plan, err := ParseFaultPlan("seed=7; drop p=0.05; dup p=0.1; delay p=0.2 max=2ms")
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCluster(2, Options{
				TCP:   tcp,
				Chaos: plan,
				Reliability: &Reliability{
					AckTimeout:  5 * time.Millisecond,
					MaxBackoff:  40 * time.Millisecond,
					MaxAttempts: 10,
				},
				Obs:   NewObs(),
				Check: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			id, err := c.Site(0).Shmget(0x77, 512, Create, 0o600)
			if err != nil {
				t.Fatal(err)
			}
			// Hold one attach for the final check so the workers'
			// detaches don't destroy the segment.
			hold, err := c.Site(0).Attach(id, false)
			if err != nil {
				t.Fatal(err)
			}
			defer hold.Detach()
			const perSite = 40
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				seg, err := c.Site(i).Attach(id, false)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer seg.Detach()
					for k := 0; k < perSite; k++ {
						for {
							_, err := seg.AddUint32(0, 1)
							if err == nil {
								break
							}
							if !errors.Is(err, ErrUnreachable) {
								t.Errorf("increment: %v", err)
								return
							}
							time.Sleep(10 * time.Millisecond)
						}
					}
				}()
			}
			wg.Wait()

			v, err := hold.Uint32(0)
			if err != nil {
				t.Fatal(err)
			}
			if v != 2*perSite {
				t.Fatalf("final counter = %d, want %d (lost updates under chaos)", v, 2*perSite)
			}
			st, ok := c.ChaosStats()
			if !ok || st.Decisions == 0 {
				t.Fatalf("injector saw no traffic: ok=%v %+v", ok, st)
			}
			if st.Dropped == 0 {
				t.Log("note: plan dropped nothing this run")
			}

			// The whole chaotic run, recorded with op events, must
			// verify coherent: drops and duplicates may slow the
			// protocol down but never let two writers coexist or a
			// read observe a stale value.
			viols, err := c.VerifyTrace()
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range viols {
				t.Errorf("coherence violation in chaos trace: %v", v)
			}
		})
	}
}
