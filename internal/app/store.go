package app

import (
	"bytes"
	"fmt"
	"time"

	"mirage/internal/obs"
)

// Options binds a Store frontend to its execution mode.
type Options struct {
	// Site is this frontend's site id, for obs counter attribution.
	Site int
	// Obs, when non-nil, receives app_ops/app_hits/app_misses/
	// app_conflicts counts and app_op_latency_ns samples.
	Obs *obs.Obs
	// Stats, when non-nil, is the shared per-shard counter table;
	// frontends of the same site pass the same one. nil allocates a
	// private table.
	Stats *Stats
	// Sleep blocks the calling context for d: time.Sleep in live mode,
	// the simulated process's Sleep in the simulator. Default
	// time.Sleep.
	Sleep func(d time.Duration)
	// Now is the run clock used for op latency: wall time in live
	// mode (the default), virtual time in the simulator.
	Now func() time.Duration
}

// Store is one site's frontend onto the sharded KV store. Any site can
// serve any key — the DSM moves the pages. A Store built over
// mirage.Segment handles is safe for concurrent use by multiple
// goroutines; in the simulator each worker process opens its own Store
// over its own attaches (sharing Stats), since simulated accesses
// block the owning process.
type Store struct {
	cfg   Config
	segs  []Segment
	site  int
	o     *obs.Obs
	stats *Stats
	sleep func(time.Duration)
	now   func() time.Duration
}

// New builds a frontend over one attached segment handle per shard
// (segs[i] is shard i, already formatted by its creating site). The
// config must match the one the shards were formatted with; use
// CheckShard to validate when opening segments you did not create.
func New(cfg Config, segs []Segment, opt Options) (*Store, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(segs) != cfg.Shards {
		return nil, fmt.Errorf("app: %d segments for %d shards", len(segs), cfg.Shards)
	}
	s := &Store{
		cfg:   cfg,
		segs:  segs,
		site:  opt.Site,
		o:     opt.Obs,
		stats: opt.Stats,
		sleep: opt.Sleep,
		now:   opt.Now,
	}
	if s.stats == nil {
		s.stats = NewStats(cfg.Shards)
	}
	if s.sleep == nil {
		s.sleep = time.Sleep
	}
	if s.now == nil {
		base := time.Now()
		s.now = func() time.Duration { return time.Since(base) }
	}
	return s, nil
}

// Config returns the store's (defaulted) geometry.
func (s *Store) Config() Config { return s.cfg }

// Stats returns the frontend's per-shard counter table.
func (s *Store) Stats() *Stats { return s.stats }

// record is one parsed slot.
type record struct {
	state byte
	klen  int
	vlen  int
	seq   uint32
}

func parseSlot(buf []byte) record {
	return record{
		state: buf[slotState],
		klen:  int(buf[slotKLen]),
		vlen:  int(getU16(buf[slotVLen:])),
		seq:   getU32(buf[slotSeq:]),
	}
}

// op wraps an operation with latency and op-count accounting.
func (s *Store) op(shard int) func() {
	start := s.now()
	return func() {
		s.o.Observe(obs.HAppOpLatency, int64(s.now()-start))
		s.o.Count(s.site, obs.CAppOp)
	}
}

// probe scans the key's probe window in its shard. It returns the
// matching slot index and parsed record when the key is present
// (found), and otherwise the first insertable slot (a tombstone or the
// terminating empty slot; -1 when the window is full). buf must be
// SlotSize bytes and holds the found slot's bytes on return.
func (s *Store) probe(shard int, key []byte, buf []byte) (idx int, rec record, found bool, free int, err error) {
	seg := s.segs[shard]
	home := s.cfg.homeSlot(key)
	free = -1
	for p := 0; p < s.cfg.ProbeWindow; p++ {
		i := (home + p) % s.cfg.SlotsPerShard
		if err = seg.ReadAt(buf, s.cfg.slotOff(i)); err != nil {
			return 0, rec, false, free, err
		}
		r := parseSlot(buf)
		switch r.state {
		case SlotEmpty:
			if free == -1 {
				free = i
			}
			return 0, rec, false, free, nil
		case SlotTomb:
			if free == -1 {
				free = i
			}
		case SlotLive:
			if r.klen == len(key) && bytes.Equal(buf[slotHdr:slotHdr+r.klen], key) {
				return i, r, true, free, nil
			}
		default:
			// A torn or foreign byte pattern: treat like a tombstone so
			// one bad slot cannot wedge the probe chain.
			if free == -1 {
				free = i
			}
		}
	}
	return 0, rec, false, free, nil
}

// Get returns a copy of the key's value, or ErrNoKey. Gets take no
// lock: a slot is rewritten atomically (it never spans a page), so a
// concurrent reader sees the old or the new record, never a torn one.
func (s *Store) Get(key []byte) ([]byte, error) {
	shard, err := s.checkKey(key, nil)
	if err != nil {
		return nil, err
	}
	defer s.op(shard)()
	sc := &s.stats.shards[shard]
	sc.gets.Add(1)
	buf := make([]byte, s.cfg.SlotSize)
	_, rec, found, _, err := s.probe(shard, key, buf)
	if err != nil {
		sc.errors.Add(1)
		return nil, fmt.Errorf("app: get shard %d: %w", shard, err)
	}
	if !found {
		sc.misses.Add(1)
		s.o.Count(s.site, obs.CAppMiss)
		return nil, ErrNoKey
	}
	sc.hits.Add(1)
	s.o.Count(s.site, obs.CAppHit)
	val := make([]byte, rec.vlen)
	copy(val, buf[slotHdr+rec.klen:slotHdr+rec.klen+rec.vlen])
	return val, nil
}

// Put stores the value under key, inserting or updating in place. The
// record's sequence number advances by one on every rewrite.
func (s *Store) Put(key, val []byte) error {
	shard, err := s.checkKey(key, val)
	if err != nil {
		return err
	}
	defer s.op(shard)()
	sc := &s.stats.shards[shard]
	sc.puts.Add(1)
	if err := s.lock(shard); err != nil {
		sc.errors.Add(1)
		return err
	}
	defer s.unlock(shard)
	buf := make([]byte, s.cfg.SlotSize)
	idx, rec, found, free, err := s.probe(shard, key, buf)
	if err != nil {
		sc.errors.Add(1)
		return fmt.Errorf("app: put shard %d: %w", shard, err)
	}
	seq := uint32(1)
	if found {
		seq = rec.seq + 1
		free = idx
		sc.hits.Add(1)
		s.o.Count(s.site, obs.CAppHit)
	} else {
		sc.misses.Add(1)
		s.o.Count(s.site, obs.CAppMiss)
		if free == -1 {
			sc.errors.Add(1)
			return fmt.Errorf("%w: shard %d", ErrShardFull, shard)
		}
	}
	s.fillSlot(buf, key, val, seq)
	if err := s.segs[shard].WriteAt(buf, s.cfg.slotOff(free)); err != nil {
		sc.errors.Add(1)
		return fmt.Errorf("app: put shard %d: %w", shard, err)
	}
	return nil
}

// Delete removes the key, leaving a tombstone; ErrNoKey when absent.
func (s *Store) Delete(key []byte) error {
	shard, err := s.checkKey(key, nil)
	if err != nil {
		return err
	}
	defer s.op(shard)()
	sc := &s.stats.shards[shard]
	sc.deletes.Add(1)
	if err := s.lock(shard); err != nil {
		sc.errors.Add(1)
		return err
	}
	defer s.unlock(shard)
	buf := make([]byte, s.cfg.SlotSize)
	idx, _, found, _, err := s.probe(shard, key, buf)
	if err != nil {
		sc.errors.Add(1)
		return fmt.Errorf("app: delete shard %d: %w", shard, err)
	}
	if !found {
		sc.misses.Add(1)
		s.o.Count(s.site, obs.CAppMiss)
		return ErrNoKey
	}
	sc.hits.Add(1)
	s.o.Count(s.site, obs.CAppHit)
	if err := s.segs[shard].WriteAt([]byte{SlotTomb}, s.cfg.slotOff(idx)+slotState); err != nil {
		sc.errors.Add(1)
		return fmt.Errorf("app: delete shard %d: %w", shard, err)
	}
	return nil
}

// CAS conditionally replaces the key's value: when old is nil the key
// must be absent (compare-and-create), otherwise the current value
// must equal old. It reports whether the swap landed; a false return
// with nil error is a value conflict (counted per shard).
func (s *Store) CAS(key, old, val []byte) (swapped bool, err error) {
	shard, err := s.checkKey(key, val)
	if err != nil {
		return false, err
	}
	defer s.op(shard)()
	sc := &s.stats.shards[shard]
	sc.cases.Add(1)
	if err := s.lock(shard); err != nil {
		sc.errors.Add(1)
		return false, err
	}
	defer s.unlock(shard)
	buf := make([]byte, s.cfg.SlotSize)
	idx, rec, found, free, err := s.probe(shard, key, buf)
	if err != nil {
		sc.errors.Add(1)
		return false, fmt.Errorf("app: cas shard %d: %w", shard, err)
	}
	seq := uint32(1)
	switch {
	case !found && old == nil:
		// Compare-and-create.
		sc.misses.Add(1)
		s.o.Count(s.site, obs.CAppMiss)
		if free == -1 {
			sc.errors.Add(1)
			return false, fmt.Errorf("%w: shard %d", ErrShardFull, shard)
		}
	case !found:
		sc.misses.Add(1)
		s.o.Count(s.site, obs.CAppMiss)
		return false, ErrNoKey
	default:
		sc.hits.Add(1)
		s.o.Count(s.site, obs.CAppHit)
		cur := buf[slotHdr+rec.klen : slotHdr+rec.klen+rec.vlen]
		if old == nil || !bytes.Equal(cur, old) {
			sc.conflicts.Add(1)
			s.o.Count(s.site, obs.CAppConflict)
			return false, nil
		}
		seq = rec.seq + 1
		free = idx
	}
	s.fillSlot(buf, key, val, seq)
	if err := s.segs[shard].WriteAt(buf, s.cfg.slotOff(free)); err != nil {
		sc.errors.Add(1)
		return false, fmt.Errorf("app: cas shard %d: %w", shard, err)
	}
	return true, nil
}

// Seq returns the key's current record sequence number (0 when
// absent) — the session-version read used by optimistic callers.
func (s *Store) Seq(key []byte) (uint32, error) {
	shard, err := s.checkKey(key, nil)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, s.cfg.SlotSize)
	_, rec, found, _, err := s.probe(shard, key, buf)
	if err != nil || !found {
		return 0, err
	}
	return rec.seq, nil
}

// checkKey validates sizes and resolves the shard.
func (s *Store) checkKey(key, val []byte) (int, error) {
	if len(key) == 0 || len(key) > 255 || slotHdr+len(key)+len(val) > s.cfg.SlotSize {
		return 0, fmt.Errorf("%w: key %d val %d bytes into %d-byte slots",
			ErrTooLarge, len(key), len(val), s.cfg.SlotSize)
	}
	return s.cfg.ShardOf(key), nil
}

// fillSlot serializes a live record into buf (len SlotSize).
func (s *Store) fillSlot(buf, key, val []byte, seq uint32) {
	for i := range buf {
		buf[i] = 0
	}
	buf[slotState] = SlotLive
	buf[slotKLen] = byte(len(key))
	putU16(buf[slotVLen:], uint16(len(val)))
	putU32(buf[slotSeq:], seq)
	copy(buf[slotHdr:], key)
	copy(buf[slotHdr+len(key):], val)
}

// lock takes the shard's writer lock: the §7.2 interlocked TestAndSet
// on the header page, with exponential-backoff retries. Every
// collision counts as a conflict; exhausting the budget returns
// ErrShardBusy rather than spinning forever, so a crashed lock holder
// degrades the shard instead of hanging its clients.
func (s *Store) lock(shard int) error {
	seg := s.segs[shard]
	sc := &s.stats.shards[shard]
	backoff := s.cfg.LockBackoff
	maxBackoff := s.cfg.LockBackoff * 64
	for i := 0; i < s.cfg.LockRetries; i++ {
		old, err := seg.TestAndSet(hdrLock)
		if err != nil {
			return fmt.Errorf("app: lock shard %d: %w", shard, err)
		}
		if old == 0 {
			return nil
		}
		sc.conflicts.Add(1)
		s.o.Count(s.site, obs.CAppConflict)
		s.sleep(backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
	return fmt.Errorf("%w: shard %d", ErrShardBusy, shard)
}

// unlock releases the shard lock.
func (s *Store) unlock(shard int) {
	// A failed Clear (e.g. a degraded grant mid-fault) leaves the lock
	// set; the next locker's retry budget surfaces ErrShardBusy, and
	// the error is already visible on the mutation that failed.
	_ = s.segs[shard].Clear(hdrLock)
}
