package app

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mirage/internal/obs"
)

// memSeg is an in-memory Segment for layout and logic tests: the same
// atomicity the DSM provides (whole-call serialization), delivered by
// a mutex.
type memSeg struct {
	mu sync.Mutex
	b  []byte
}

func newMemSeg(n int) *memSeg { return &memSeg{b: make([]byte, n)} }

func (m *memSeg) ReadAt(b []byte, off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+len(b) > len(m.b) {
		return fmt.Errorf("memSeg: out of bounds [%d,%d) of %d", off, off+len(b), len(m.b))
	}
	copy(b, m.b[off:])
	return nil
}

func (m *memSeg) WriteAt(b []byte, off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off+len(b) > len(m.b) {
		return fmt.Errorf("memSeg: out of bounds [%d,%d) of %d", off, off+len(b), len(m.b))
	}
	copy(m.b[off:], b)
	return nil
}

func (m *memSeg) TestAndSet(off int) (byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.b[off]
	m.b[off] = 1
	return old, nil
}

func (m *memSeg) Clear(off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.b[off] = 0
	return nil
}

func newTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	cfg = cfg.WithDefaults()
	segs := make([]Segment, cfg.Shards)
	for i := range segs {
		seg := newMemSeg(cfg.ShardBytes())
		if err := Format(seg, cfg, i); err != nil {
			t.Fatalf("format shard %d: %v", i, err)
		}
		if err := CheckShard(seg, cfg, i); err != nil {
			t.Fatalf("check shard %d: %v", i, err)
		}
		segs[i] = seg
	}
	st, err := New(cfg, segs, Options{Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{SlotSize: 100}).Validate(); err == nil {
		t.Fatal("SlotSize 100 does not divide 512; want error")
	}
	if err := (Config{SlotSize: 4}).Validate(); err == nil {
		t.Fatal("SlotSize below record header; want error")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := Config{}.WithDefaults()
	if c.ShardBytes()%c.PageSize != 0 {
		t.Fatalf("ShardBytes %d not page-aligned", c.ShardBytes())
	}
}

func TestCheckShardRejects(t *testing.T) {
	cfg := Config{}.WithDefaults()
	seg := newMemSeg(cfg.ShardBytes())
	if err := CheckShard(seg, cfg, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unformatted shard: got %v, want ErrCorrupt", err)
	}
	if err := Format(seg, cfg, 3); err != nil {
		t.Fatal(err)
	}
	if err := CheckShard(seg, cfg, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong shard index: got %v, want ErrCorrupt", err)
	}
	if err := CheckShard(seg, cfg, 3); err != nil {
		t.Fatalf("matching shard: %v", err)
	}
	other := cfg
	other.SlotsPerShard = cfg.SlotsPerShard * 2
	if err := CheckShard(seg, other, 3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("geometry mismatch: got %v, want ErrCorrupt", err)
	}
}

func TestCRUD(t *testing.T) {
	st := newTestStore(t, Config{})
	key := []byte("session-1")
	if _, err := st.Get(key); !errors.Is(err, ErrNoKey) {
		t.Fatalf("get absent: %v", err)
	}
	if err := st.Put(key, []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, err := st.Get(key)
	if err != nil || string(v) != "alice" {
		t.Fatalf("get: %q, %v", v, err)
	}
	if seq, _ := st.Seq(key); seq != 1 {
		t.Fatalf("seq after insert: %d", seq)
	}
	// Update in place bumps the sequence.
	if err := st.Put(key, []byte("bob")); err != nil {
		t.Fatal(err)
	}
	v, _ = st.Get(key)
	if string(v) != "bob" {
		t.Fatalf("get after update: %q", v)
	}
	if seq, _ := st.Seq(key); seq != 2 {
		t.Fatalf("seq after update: %d", seq)
	}
	if err := st.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(key); !errors.Is(err, ErrNoKey) {
		t.Fatalf("get after delete: %v", err)
	}
	if err := st.Delete(key); !errors.Is(err, ErrNoKey) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestCAS(t *testing.T) {
	st := newTestStore(t, Config{})
	key := []byte("k")
	// Compare-and-create.
	ok, err := st.CAS(key, nil, []byte("v1"))
	if err != nil || !ok {
		t.Fatalf("cas create: %v %v", ok, err)
	}
	// Create again fails as a conflict.
	ok, err = st.CAS(key, nil, []byte("v2"))
	if err != nil || ok {
		t.Fatalf("cas re-create: %v %v", ok, err)
	}
	// Wrong expectation.
	ok, err = st.CAS(key, []byte("nope"), []byte("v2"))
	if err != nil || ok {
		t.Fatalf("cas wrong old: %v %v", ok, err)
	}
	// Right expectation.
	ok, err = st.CAS(key, []byte("v1"), []byte("v2"))
	if err != nil || !ok {
		t.Fatalf("cas: %v %v", ok, err)
	}
	v, _ := st.Get(key)
	if string(v) != "v2" {
		t.Fatalf("after cas: %q", v)
	}
	// CAS of an absent key with a non-nil expectation.
	if _, err := st.CAS([]byte("absent"), []byte("x"), []byte("y")); !errors.Is(err, ErrNoKey) {
		t.Fatalf("cas absent: %v", err)
	}
	total := st.Stats().Total()
	if total.Conflicts != 2 {
		t.Fatalf("conflicts: %d, want 2", total.Conflicts)
	}
}

func TestProbeCollisionsAndTombstoneReuse(t *testing.T) {
	// A single tiny shard forces every key into the same probe chain.
	cfg := Config{Shards: 1, SlotsPerShard: 8, SlotSize: 64}
	st := newTestStore(t, cfg)
	keys := make([][]byte, 6)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%02d", i))
		if err := st.Put(keys[i], []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i, k := range keys {
		v, err := st.Get(k)
		if err != nil || v[0] != byte(i) {
			t.Fatalf("get %d: %v %v", i, v, err)
		}
	}
	// Delete one, insert another: the tombstone is reused and the keys
	// probing past it stay reachable.
	if err := st.Delete(keys[2]); err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("key-xx"), []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if i == 2 {
			continue
		}
		v, err := st.Get(k)
		if err != nil || v[0] != byte(i) {
			t.Fatalf("get %d after churn: %v %v", i, v, err)
		}
	}
	if v, err := st.Get([]byte("key-xx")); err != nil || v[0] != 0xAA {
		t.Fatalf("get reused slot: %v %v", v, err)
	}
}

func TestShardFull(t *testing.T) {
	cfg := Config{Shards: 1, SlotsPerShard: 4, SlotSize: 64}
	st := newTestStore(t, cfg)
	var err error
	for i := 0; i < 5; i++ {
		err = st.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrShardFull) {
		t.Fatalf("overfill: %v, want ErrShardFull", err)
	}
}

func TestTooLarge(t *testing.T) {
	st := newTestStore(t, Config{})
	big := bytes.Repeat([]byte("x"), st.Config().SlotSize)
	if err := st.Put([]byte("k"), big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize value: %v", err)
	}
	if err := st.Put(nil, []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
	if st.Config().MaxValue(1) != st.Config().SlotSize-slotHdr-1 {
		t.Fatalf("MaxValue: %d", st.Config().MaxValue(1))
	}
}

func TestShardSpread(t *testing.T) {
	cfg := Config{Shards: 8}.WithDefaults()
	var seen [8]int
	for i := 0; i < 1000; i++ {
		seen[cfg.ShardOf([]byte(fmt.Sprintf("user-%d", i)))]++
	}
	for s, n := range seen {
		if n == 0 {
			t.Fatalf("shard %d never chosen over 1000 keys", s)
		}
	}
}

func TestLibraryForRendezvous(t *testing.T) {
	// Single site owns everything.
	one := Config{Shards: 8, Sites: 1}
	for s := 0; s < 8; s++ {
		if one.LibraryFor(s) != 0 {
			t.Fatalf("Sites=1: shard %d placed at %d", s, one.LibraryFor(s))
		}
	}
	// Placement is deterministic, in range, and touches every site when
	// shards comfortably outnumber sites.
	cfg := Config{Shards: 64, Sites: 5}
	used := map[int]int{}
	for s := 0; s < 64; s++ {
		lib := cfg.LibraryFor(s)
		if lib < 0 || lib >= 5 {
			t.Fatalf("shard %d placed at out-of-range site %d", s, lib)
		}
		if lib != cfg.LibraryFor(s) {
			t.Fatalf("shard %d placement not deterministic", s)
		}
		used[lib]++
	}
	if len(used) != 5 {
		t.Fatalf("64 shards over 5 sites used only sites %v", used)
	}
	// The rendezvous property: adding one site moves only the shards it
	// wins. Everything that stays must keep its exact library.
	grown := Config{Shards: 64, Sites: 6}
	moved := 0
	for s := 0; s < 64; s++ {
		was, is := cfg.LibraryFor(s), grown.LibraryFor(s)
		if was != is {
			if is != 5 {
				t.Fatalf("shard %d moved %d -> %d, not to the new site", s, was, is)
			}
			moved++
		}
	}
	if moved == 0 || moved > 32 {
		t.Fatalf("growing 5 -> 6 sites moved %d of 64 shards", moved)
	}
}

func TestLockContention(t *testing.T) {
	// Hammer one shard from many goroutines: every put lands, the lock
	// serializes, and conflicts are counted.
	cfg := Config{Shards: 1, SlotsPerShard: 64, SlotSize: 64, LockBackoff: time.Microsecond}
	st := newTestStore(t, cfg)
	const g, n = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, g)
	for w := 0; w < g; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := []byte(fmt.Sprintf("w%d", w))
			for i := 0; i < n; i++ {
				if err := st.Put(key, []byte{byte(i)}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < g; w++ {
		v, err := st.Get([]byte(fmt.Sprintf("w%d", w)))
		if err != nil || v[0] != n-1 {
			t.Fatalf("w%d: %v %v", w, v, err)
		}
	}
	if seq, _ := st.Seq([]byte("w0")); seq != n {
		t.Fatalf("seq: %d, want %d", seq, n)
	}
}

func TestShardBusyOnWedgedLock(t *testing.T) {
	cfg := Config{Shards: 1, LockRetries: 3, LockBackoff: time.Microsecond}
	st := newTestStore(t, cfg)
	// Wedge the lock as a crashed holder would.
	if _, err := st.segs[0].TestAndSet(hdrLock); err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrShardBusy) {
		t.Fatalf("wedged lock: %v, want ErrShardBusy", err)
	}
	// Gets stay lock-free and keep serving.
	if _, err := st.Get([]byte("k")); !errors.Is(err, ErrNoKey) {
		t.Fatalf("get under wedged lock: %v", err)
	}
}

func TestStatsAttribution(t *testing.T) {
	cfg := Config{Shards: 4}
	st := newTestStore(t, cfg)
	key := []byte("hot")
	shard := st.Config().ShardOf(key)
	for i := 0; i < 10; i++ {
		if err := st.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats().Shard(shard)
	if s.Puts != 10 || s.Gets != 10 || s.Hits != 19 || s.Misses != 1 {
		t.Fatalf("shard counters: %+v", s)
	}
	for i := 0; i < st.Stats().Shards(); i++ {
		if i != shard && st.Stats().Shard(i).Ops() != 0 {
			t.Fatalf("traffic leaked to shard %d", i)
		}
	}
	var out bytes.Buffer
	if _, err := st.Stats().WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("total")) {
		t.Fatalf("stats table missing totals: %s", out.String())
	}
	if st.Stats().Digest() == "" {
		t.Fatal("empty digest")
	}
}
