package app

import (
	"fmt"
	"io"
	"sync/atomic"
)

// ShardCounters is one shard's operation attribution. All fields are
// cumulative; Conflicts counts shard-lock collisions (a TestAndSet
// that found the lock held) plus CAS value mismatches — the store's
// contention signal, the application-level analogue of the protocol's
// Δ-denial counter.
type ShardCounters struct {
	Gets, Puts, Deletes, CASes int64
	Hits, Misses               int64
	Conflicts                  int64
	Errors                     int64
}

// Ops returns the shard's total operation count.
func (s ShardCounters) Ops() int64 { return s.Gets + s.Puts + s.Deletes + s.CASes }

// shardCell is the atomic backing of one shard's counters.
type shardCell struct {
	gets, puts, deletes, cases atomic.Int64
	hits, misses               atomic.Int64
	conflicts                  atomic.Int64
	errors                     atomic.Int64
}

// Stats is the per-shard counter table for one store. Frontends on the
// same site (or the per-worker stores of a simulated site) share one
// Stats via Options so the attribution aggregates; its methods are
// safe for concurrent use.
type Stats struct {
	shards []shardCell
}

// NewStats returns a zeroed table for a store with the given shard
// count.
func NewStats(shards int) *Stats {
	return &Stats{shards: make([]shardCell, shards)}
}

// Shard returns a point-in-time copy of one shard's counters.
func (st *Stats) Shard(i int) ShardCounters {
	c := &st.shards[i]
	return ShardCounters{
		Gets: c.gets.Load(), Puts: c.puts.Load(), Deletes: c.deletes.Load(), CASes: c.cases.Load(),
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Conflicts: c.conflicts.Load(), Errors: c.errors.Load(),
	}
}

// Shards returns the shard count.
func (st *Stats) Shards() int { return len(st.shards) }

// Total returns the sum over all shards.
func (st *Stats) Total() ShardCounters {
	var t ShardCounters
	for i := range st.shards {
		s := st.Shard(i)
		t.Gets += s.Gets
		t.Puts += s.Puts
		t.Deletes += s.Deletes
		t.CASes += s.CASes
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Conflicts += s.Conflicts
		t.Errors += s.Errors
	}
	return t
}

// Digest renders a compact deterministic one-line summary, used by the
// simulator's -runs determinism comparison.
func (st *Stats) Digest() string {
	t := st.Total()
	return fmt.Sprintf("app{ops=%d get=%d put=%d del=%d cas=%d hit=%d miss=%d conflict=%d err=%d}",
		t.Ops(), t.Gets, t.Puts, t.Deletes, t.CASes, t.Hits, t.Misses, t.Conflicts, t.Errors)
}

// WriteTo prints the per-shard table (one row per shard with any
// traffic, plus a totals row).
func (st *Stats) WriteTo(w io.Writer) (int64, error) {
	var written int64
	pf := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		written += int64(n)
		return err
	}
	if err := pf("%-6s %8s %8s %8s %8s %8s %8s %9s %6s\n",
		"shard", "gets", "puts", "deletes", "cas", "hits", "misses", "conflicts", "errs"); err != nil {
		return written, err
	}
	for i := range st.shards {
		s := st.Shard(i)
		if s.Ops() == 0 && s.Errors == 0 {
			continue
		}
		if err := pf("%-6d %8d %8d %8d %8d %8d %8d %9d %6d\n",
			i, s.Gets, s.Puts, s.Deletes, s.CASes, s.Hits, s.Misses, s.Conflicts, s.Errors); err != nil {
			return written, err
		}
	}
	t := st.Total()
	err := pf("%-6s %8d %8d %8d %8d %8d %8d %9d %6d\n",
		"total", t.Gets, t.Puts, t.Deletes, t.CASes, t.Hits, t.Misses, t.Conflicts, t.Errors)
	return written, err
}
