// Package app is Mirage's first application layer: a sharded key/value
// (session) store implemented directly on coherently shared segments.
//
// The store is the workload the DSM design is ultimately judged by —
// protocol microbenchmarks show Δ-window mechanics, but only a service
// shows what they cost per request. Each shard is one segment; the
// segment's library site — picked by rendezvous hashing over (shard,
// site), see Config.LibraryFor — is that shard's coherence manager, so
// sharding spreads the library role across the cluster. Placement is
// only the starting point: with voluntary migration enabled
// (mirage.Options.Placement) a shard's library follows its demand.
//
// Layout: a shard segment begins with one header page (magic, geometry,
// and the shard's writer lock byte), followed by a contiguous array of
// fixed-size record slots. SlotSize divides PageSize, so a slot never
// crosses a page: a one-call ReadAt or WriteAt of a slot is atomic
// under the protocol's page-granularity single-writer rule, which is
// what makes lock-free Gets safe. Mutations (Put/Delete/CAS) serialize
// per shard on the header lock via the interlocked TestAndSet the
// paper studies in §7.2 — expensive across sites, which is precisely
// the per-shard hotspot the obs counters are there to show.
//
// Keys hash with FNV-1a 64: the low digits pick the shard, the high
// digits the home slot; collisions probe linearly with tombstones, so
// a record's slot is stable for its lifetime (updates rewrite in
// place and bump the record's sequence number).
//
// The same Store front-end serves both execution modes: the public
// mirage.Segment and the simulator's ipc.Shm both satisfy Segment, and
// Options carries the mode's sleep/clock (virtual in the simulator).
package app

import (
	"errors"
	"fmt"
	"time"
)

// Segment is the slice of a DSM segment handle the store needs. Both
// mirage.Segment (live clusters) and ipc.Shm (the simulator) satisfy
// it. ReadAt/WriteAt spans within one page are atomic with respect to
// the coherence protocol; TestAndSet/Clear are the interlocked byte
// operations backing the shard lock.
type Segment interface {
	ReadAt(b []byte, off int) error
	WriteAt(b []byte, off int) error
	TestAndSet(off int) (old byte, err error)
	Clear(off int) error
}

// Store errors. DSM-level failures (mirage.ErrUnreachable and friends)
// pass through wrapped, so callers can still errors.Is against them.
var (
	// ErrNoKey reports a Get/Delete/CAS of an absent key.
	ErrNoKey = errors.New("app: key not found")
	// ErrShardFull reports a Put that found no free slot within the
	// probe window of the key's shard.
	ErrShardFull = errors.New("app: shard full")
	// ErrTooLarge reports a key or value that cannot fit a slot.
	ErrTooLarge = errors.New("app: key+value exceed slot capacity")
	// ErrShardBusy reports a mutation that could not take the shard
	// lock within the retry budget (a crashed or wedged lock holder).
	ErrShardBusy = errors.New("app: shard lock busy")
	// ErrCorrupt reports a shard whose header does not carry the
	// expected magic and geometry.
	ErrCorrupt = errors.New("app: shard header corrupt")
)

// Magic is the value at byte 0 of every formatted shard (little
// endian): "MKV1".
const Magic uint32 = 0x31564B4D

// Header page layout (byte offsets within page 0 of a shard segment).
const (
	hdrMagic    = 0  // uint32: Magic
	hdrShard    = 4  // uint32: shard index
	hdrSlots    = 8  // uint32: slot count
	hdrSlotSize = 12 // uint32: slot size in bytes
	hdrLock     = 16 // byte: shard writer lock (TestAndSet/Clear)
	hdrBytes    = 17
)

// Slot layout (byte offsets within a slot).
const (
	slotState = 0 // byte: slot state
	slotKLen  = 1 // byte: key length
	slotVLen  = 2 // uint16: value length
	slotSeq   = 4 // uint32: record sequence, bumped by every mutation
	slotHdr   = 8 // key bytes, then value bytes
)

// Slot states.
const (
	// SlotEmpty has never held a record; probes stop here.
	SlotEmpty byte = 0
	// SlotLive holds a record.
	SlotLive byte = 1
	// SlotTomb held a deleted record; probes continue past it and Puts
	// may reuse it.
	SlotTomb byte = 2
)

// Config fixes a store's cluster-wide geometry. Every site must open
// the store with an identical Config — the key→shard→slot mapping is
// derived from it, and Format stamps it into each shard header for
// Open-time validation.
type Config struct {
	// Shards is the number of shard segments (default 8).
	Shards int
	// Sites is the cluster size; shard s's segment is created by (and
	// so has its library at) LibraryFor(s), the rendezvous-hash winner
	// among the Sites (default 1).
	Sites int
	// PageSize is the coherence unit the cluster runs with (default
	// 512, the paper's page size). SlotSize must divide it.
	PageSize int
	// SlotsPerShard is the record capacity of each shard (default 64).
	SlotsPerShard int
	// SlotSize is the fixed record slot size in bytes; must divide
	// PageSize (default 128). Capacity per record is SlotSize-8 bytes
	// of key+value.
	SlotSize int
	// ProbeWindow bounds linear probing; 0 means the whole shard.
	ProbeWindow int
	// LockRetries bounds the shard-lock acquisition loop (default 64
	// attempts with exponential backoff).
	LockRetries int
	// LockBackoff is the initial retry sleep, doubling per attempt up
	// to 64× (default 100µs).
	LockBackoff time.Duration
}

// WithDefaults returns the config with zero fields defaulted.
func (c Config) WithDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Sites == 0 {
		c.Sites = 1
	}
	if c.PageSize == 0 {
		c.PageSize = 512
	}
	if c.SlotsPerShard == 0 {
		c.SlotsPerShard = 64
	}
	if c.SlotSize == 0 {
		c.SlotSize = 128
	}
	if c.ProbeWindow == 0 || c.ProbeWindow > c.SlotsPerShard {
		c.ProbeWindow = c.SlotsPerShard
	}
	if c.LockRetries == 0 {
		c.LockRetries = 64
	}
	if c.LockBackoff == 0 {
		c.LockBackoff = 100 * time.Microsecond
	}
	return c
}

// Validate reports a config the layout rules reject.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.SlotSize < slotHdr+2 {
		return fmt.Errorf("app: SlotSize %d below minimum %d", c.SlotSize, slotHdr+2)
	}
	if c.PageSize%c.SlotSize != 0 {
		return fmt.Errorf("app: SlotSize %d does not divide PageSize %d", c.SlotSize, c.PageSize)
	}
	if c.SlotSize > c.PageSize {
		return fmt.Errorf("app: SlotSize %d exceeds PageSize %d", c.SlotSize, c.PageSize)
	}
	return nil
}

// ShardBytes returns the segment size one shard needs: the header page
// plus the slot array, rounded up to whole pages.
func (c Config) ShardBytes() int {
	c = c.WithDefaults()
	n := c.PageSize + c.SlotsPerShard*c.SlotSize
	if r := n % c.PageSize; r != 0 {
		n += c.PageSize - r
	}
	return n
}

// LibraryFor returns the site that creates (and so serves as library
// for) shard s. Placement is rendezvous (highest-random-weight)
// hashing: every site independently scores each (shard, site) pair and
// the highest score wins, so the mapping is a pure function of the
// Config — no ring state to agree on — and spreads shards uniformly.
// Unlike the original shard%Sites convention, growing or shrinking the
// cluster by one site remaps only the ~1/Sites of shards whose winner
// changed; the rest keep their library, which keeps a resize from
// stampeding every segment through failover or migration at once.
func (c Config) LibraryFor(shard int) int {
	c = c.WithDefaults()
	best, bestScore := 0, uint64(0)
	for s := 0; s < c.Sites; s++ {
		var b [8]byte
		putU32(b[:4], uint32(shard))
		putU32(b[4:], uint32(s))
		if score := fnv1a(b[:]); s == 0 || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// fnv1a is the 64-bit FNV-1a hash of key.
func fnv1a(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// ShardOf returns the shard a key maps to.
func (c Config) ShardOf(key []byte) int {
	c = c.WithDefaults()
	return int(fnv1a(key) % uint64(c.Shards))
}

// homeSlot returns the key's first probe slot within its shard. The
// shard is taken from the hash's low digits, the slot from the high,
// so the two indices stay uncorrelated.
func (c Config) homeSlot(key []byte) int {
	return int((fnv1a(key) >> 17) % uint64(c.SlotsPerShard))
}

// slotOff returns the byte offset of slot i. Slots start after the
// header page and pack contiguously; SlotSize divides PageSize, so no
// slot crosses a page boundary.
func (c Config) slotOff(i int) int {
	return c.PageSize + i*c.SlotSize
}

// MaxValue returns the largest value the store can hold for a key of
// length klen (0 when the key itself cannot fit).
func (c Config) MaxValue(klen int) int {
	c = c.WithDefaults()
	n := c.SlotSize - slotHdr - klen
	if n < 0 || klen > 255 {
		return 0
	}
	return n
}

// Format writes shard's header page. The creating site calls it once
// after creating the segment, before any frontend opens the shard.
func Format(seg Segment, c Config, shard int) error {
	c = c.WithDefaults()
	if err := c.Validate(); err != nil {
		return err
	}
	var hdr [hdrBytes]byte
	putU32(hdr[hdrMagic:], Magic)
	putU32(hdr[hdrShard:], uint32(shard))
	putU32(hdr[hdrSlots:], uint32(c.SlotsPerShard))
	putU32(hdr[hdrSlotSize:], uint32(c.SlotSize))
	return seg.WriteAt(hdr[:], 0)
}

// CheckShard validates shard's header against the config: magic,
// index, and geometry must match. It returns ErrCorrupt (wrapped with
// detail) on mismatch, including the all-zero header of a shard that
// was never formatted.
func CheckShard(seg Segment, c Config, shard int) error {
	c = c.WithDefaults()
	var hdr [hdrBytes]byte
	if err := seg.ReadAt(hdr[:], 0); err != nil {
		return err
	}
	if m := getU32(hdr[hdrMagic:]); m != Magic {
		return fmt.Errorf("%w: shard %d magic %#x", ErrCorrupt, shard, m)
	}
	if s := getU32(hdr[hdrShard:]); s != uint32(shard) {
		return fmt.Errorf("%w: segment is shard %d, expected %d", ErrCorrupt, s, shard)
	}
	if n := getU32(hdr[hdrSlots:]); n != uint32(c.SlotsPerShard) {
		return fmt.Errorf("%w: shard %d has %d slots, config says %d", ErrCorrupt, shard, n, c.SlotsPerShard)
	}
	if n := getU32(hdr[hdrSlotSize:]); n != uint32(c.SlotSize) {
		return fmt.Errorf("%w: shard %d slot size %d, config says %d", ErrCorrupt, shard, n, c.SlotSize)
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}
