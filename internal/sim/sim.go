// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event queue ordered by
// (time, insertion sequence). Everything above it — the simulated
// network, the per-site CPU schedulers, the Mirage protocol engines —
// is driven by events, so a whole multi-site distributed run executes
// on one OS thread and is bit-for-bit reproducible.
//
// Two styles of simulated activity are supported:
//
//   - Passive callbacks: At/After schedule a func() at a virtual time.
//     Protocol state machines and device models use these.
//   - Processes: Spawn starts a goroutine that models a sequential
//     thread of control (a simulated UNIX process). The kernel and
//     process goroutines hand control back and forth strictly — at any
//     instant at most one goroutine runs — preserving determinism while
//     letting workloads be written as straight-line code.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp: the duration since the start of the
// simulation. The zero Time is the instant the kernel was created.
type Time time.Duration

// Add returns the timestamp d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the timestamp to the duration since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at    Time
	seq   uint64 // tiebreak: FIFO among events at the same instant
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator. The zero value is not usable;
// call NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventHeap
	running bool
	procs   int // live processes (diagnostic)

	// sameInstant counts consecutively executed events that did not
	// advance the clock. A zero-cost event cycle (A schedules B at the
	// same instant, B schedules A, ...) would otherwise spin the real
	// CPU forever while virtual time stands still; the guard turns that
	// silent hang into a diagnosable panic.
	sameInstant int

	choose Chooser // nil: FIFO among same-instant events
	ready  []*event
}

// Chooser resolves scheduling nondeterminism: when n (>= 2) events are
// runnable at the same virtual instant, it returns the index of the one
// to run next. Indices follow insertion (FIFO) order, so index 0 always
// reproduces the default schedule. Out-of-range returns are clamped.
//
// The hook exists for the coherence schedule explorer (internal/check):
// permuting same-instant event order is exactly the interleaving freedom
// a real cluster has that the default deterministic kernel hides.
type Chooser func(n int) int

// SetChooser installs (or, with nil, removes) the same-instant event
// chooser. Call it before running; swapping mid-run is allowed but the
// chooser only affects events popped after the call.
func (k *Kernel) SetChooser(c Chooser) { k.choose = c }

// NewKernel returns a kernel with an empty event queue at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Timer is a handle to a scheduled event; it can be cancelled.
type Timer struct {
	k *Kernel
	e *event
}

// Cancel removes the event from the queue if it has not fired.
// It reports whether the event was pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.e == nil || t.e.index < 0 {
		return false
	}
	heap.Remove(&t.k.queue, t.e.index)
	t.e.fn = nil
	return true
}

// Pending reports whether the timer's event has not yet fired or been
// cancelled.
func (t *Timer) Pending() bool { return t != nil && t.e != nil && t.e.index >= 0 }

// At schedules fn to run at the virtual time at. Scheduling in the past
// panics: it indicates a model bug, not a recoverable condition.
func (k *Kernel) At(at Time, fn func()) *Timer {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	k.seq++
	e := &event{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.queue, e)
	return &Timer{k: k, e: e}
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	return k.At(k.now.Add(d), fn)
}

// Post schedules fn at the current instant, after all callbacks already
// queued for this instant.
func (k *Kernel) Post(fn func()) *Timer { return k.At(k.now, fn) }

// Step runs the next event, advancing the clock to its timestamp.
// It reports whether an event was run. With a Chooser installed and
// several events runnable at the same instant, the chooser picks which
// one runs; otherwise insertion order breaks the tie.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*event)
		if e.fn == nil { // cancelled
			continue
		}
		if k.choose != nil {
			e = k.stepChoice(e)
		}
		if e.at == k.now {
			k.sameInstant++
			// Far beyond any legitimate same-instant burst (bounded by
			// sites × pages × processes), yet cheap to hit quickly when a
			// model bug schedules work in a zero-cost cycle.
			if k.sameInstant > 1<<21 {
				panic(fmt.Sprintf("sim: livelock: %d events executed at %v without advancing the clock", k.sameInstant, k.now))
			}
		} else {
			k.sameInstant = 0
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}

// stepChoice gathers every live event sharing first's instant, asks the
// chooser to pick one, and re-queues the rest. The gathered slice is in
// seq (FIFO) order because the heap pops equal-time events that way, so
// chooser index 0 is always the default schedule.
func (k *Kernel) stepChoice(first *event) *event {
	k.ready = append(k.ready[:0], first)
	for len(k.queue) > 0 && k.queue[0].at == first.at {
		e := heap.Pop(&k.queue).(*event)
		if e.fn == nil {
			continue
		}
		k.ready = append(k.ready, e)
	}
	pick := 0
	if len(k.ready) > 1 {
		pick = k.choose(len(k.ready))
		if pick < 0 || pick >= len(k.ready) {
			pick = 0
		}
	}
	chosen := k.ready[pick]
	for i, e := range k.ready {
		if i != pick {
			heap.Push(&k.queue, e)
		}
		k.ready[i] = nil
	}
	return chosen
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events scheduled beyond t remain queued.
func (k *Kernel) RunUntil(t Time) {
	for len(k.queue) > 0 {
		// Peek.
		e := k.queue[0]
		if e.fn == nil {
			heap.Pop(&k.queue)
			continue
		}
		if e.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor executes events for d of virtual time from now.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now.Add(d)) }

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool {
	for len(k.queue) > 0 {
		if k.queue[0].fn != nil {
			return false
		}
		heap.Pop(&k.queue)
	}
	return true
}

// Live returns the number of live (spawned, not yet finished) processes.
func (k *Kernel) Live() int { return k.procs }
