package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if !k.Idle() {
		t.Fatal("new kernel should be idle")
	}
}

func TestAfterRunsInOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.After(30*time.Millisecond, func() { got = append(got, 3) })
	k.After(10*time.Millisecond, func() { got = append(got, 1) })
	k.After(20*time.Millisecond, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if k.Now() != Time(30*time.Millisecond) {
		t.Fatalf("Now() = %v, want 30ms", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO at same instant)", i, v, i)
		}
	}
}

func TestPostRunsAtCurrentInstant(t *testing.T) {
	k := NewKernel()
	var at Time
	k.After(7*time.Millisecond, func() {
		k.Post(func() { at = k.Now() })
	})
	k.Run()
	if at != Time(7*time.Millisecond) {
		t.Fatalf("posted event ran at %v, want 7ms", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.After(10*time.Millisecond, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	k.At(Time(5*time.Millisecond), func() {})
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.After(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("Cancel should report true for a pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Pending() {
		t.Fatal("cancelled timer still pending")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	k := NewKernel()
	var got []int
	var timers []*Timer
	for i := 0; i < 5; i++ {
		i := i
		timers = append(timers, k.After(time.Duration(i+1)*time.Millisecond, func() { got = append(got, i) }))
	}
	timers[2].Cancel()
	k.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.After(10*time.Millisecond, func() { ran++ })
	k.After(20*time.Millisecond, func() { ran++ })
	k.RunUntil(Time(15 * time.Millisecond))
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if k.Now() != Time(15*time.Millisecond) {
		t.Fatalf("Now() = %v, want 15ms", k.Now())
	}
	k.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 after Run", ran)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	k := NewKernel()
	ran := false
	k.After(15*time.Millisecond, func() { ran = true })
	k.RunUntil(Time(15 * time.Millisecond))
	if !ran {
		t.Fatal("event exactly at the boundary should run")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	k := NewKernel()
	k.RunFor(10 * time.Millisecond)
	k.RunFor(10 * time.Millisecond)
	if k.Now() != Time(20*time.Millisecond) {
		t.Fatalf("Now() = %v, want 20ms", k.Now())
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(10 * time.Millisecond)
	b := a.Add(5 * time.Millisecond)
	if b != Time(15*time.Millisecond) {
		t.Fatalf("Add: got %v", b)
	}
	if b.Sub(a) != 5*time.Millisecond {
		t.Fatalf("Sub: got %v", b.Sub(a))
	}
	if b.Duration() != 15*time.Millisecond {
		t.Fatalf("Duration: got %v", b.Duration())
	}
	if a.String() != "10ms" {
		t.Fatalf("String: got %q", a.String())
	}
}

func TestProcSpawnAndSleep(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	k.Run()
	if wake != Time(42*time.Millisecond) {
		t.Fatalf("woke at %v, want 42ms", wake)
	}
	if k.Live() != 0 {
		t.Fatalf("Live() = %d, want 0", k.Live())
	}
}

func TestProcParkUnpark(t *testing.T) {
	k := NewKernel()
	var p1 *Proc
	order := []string{}
	p1 = k.Spawn("waiter", func(p *Proc) {
		order = append(order, "park")
		p.Park()
		order = append(order, "resumed")
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, "unpark")
		p1.Unpark()
	})
	k.Run()
	want := []string{"park", "unpark", "resumed"}
	for i, s := range want {
		if i >= len(order) || order[i] != s {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUnparkNonParkedPanics(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("p", func(p *Proc) { p.Sleep(time.Hour) })
	k.Step() // dispatch p; it blocks in Sleep (timer-parked)
	// p is parked inside Sleep via Park, so Unpark would be legal.
	// Drain: run the hour.
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Unpark of non-parked proc")
		}
	}()
	p.Unpark()
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []int {
		k := NewKernel()
		var got []int
		for i := 0; i < 20; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				p.Sleep(time.Duration(i%5+1) * time.Millisecond)
				got = append(got, i)
				p.Sleep(time.Duration(10-i%7) * time.Millisecond)
				got = append(got, 100+i)
			})
		}
		k.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 40 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProcPingPongViaParkUnpark(t *testing.T) {
	k := NewKernel()
	var a, b *Proc
	count := 0
	a = k.Spawn("a", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Park()
			count++
			if b.Parked() {
				b.Unpark()
			}
		}
	})
	b = k.Spawn("b", func(p *Proc) {
		for i := 0; i < 100; i++ {
			if a.Parked() {
				a.Unpark()
			}
			p.Park()
			count++
		}
	})
	k.Run()
	if count != 200 {
		t.Fatalf("count = %d, want 200", count)
	}
}

// Property: for any random batch of (delay, id) pairs, events fire in
// nondecreasing time order and FIFO within equal times.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		if len(delaysRaw) > 200 {
			delaysRaw = delaysRaw[:200]
		}
		k := NewKernel()
		type fired struct {
			at  Time
			seq int
		}
		var got []fired
		for i, d := range delaysRaw {
			i, d := i, d
			k.After(time.Duration(d)*time.Microsecond, func() {
				got = append(got, fired{k.Now(), i})
			})
		}
		k.Run()
		if len(got) != len(delaysRaw) {
			return false
		}
		// Times nondecreasing; equal times in insertion order.
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		// Each event fired exactly at its delay.
		byTime := make([]fired, len(got))
		copy(byTime, got)
		sort.Slice(byTime, func(i, j int) bool { return byTime[i].seq < byTime[j].seq })
		for i, f := range byTime {
			if f.at != Time(time.Duration(delaysRaw[i])*time.Microsecond) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of timers never affects the
// firing of the rest.
func TestQuickCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		k := NewKernel()
		firedSet := make(map[int]bool)
		timers := make([]*Timer, count)
		for i := 0; i < count; i++ {
			i := i
			timers[i] = k.After(time.Duration(rng.Intn(1000))*time.Microsecond, func() {
				firedSet[i] = true
			})
		}
		cancelled := make(map[int]bool)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				timers[i].Cancel()
				cancelled[i] = true
			}
		}
		k.Run()
		for i := 0; i < count; i++ {
			if cancelled[i] == firedSet[i] {
				return false // cancelled must not fire; uncancelled must fire
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
