package sim

import (
	"reflect"
	"testing"
	"time"
)

// TestChooserDefaultOrder: a chooser that always picks index 0 must
// reproduce the FIFO schedule exactly.
func TestChooserDefaultOrder(t *testing.T) {
	run := func(choose Chooser) []int {
		k := NewKernel()
		k.SetChooser(choose)
		var got []int
		for i := 0; i < 5; i++ {
			i := i
			k.At(Time(10*time.Millisecond), func() { got = append(got, i) })
		}
		k.Run()
		return got
	}
	want := run(nil)
	if got := run(func(n int) int { return 0 }); !reflect.DeepEqual(got, want) {
		t.Fatalf("chooser(0) schedule %v != FIFO %v", got, want)
	}
}

// TestChooserPermutes: picking the last ready event each time reverses
// the same-instant order, and events at different instants are never
// offered together.
func TestChooserPermutes(t *testing.T) {
	k := NewKernel()
	var sizes []int
	k.SetChooser(func(n int) int {
		sizes = append(sizes, n)
		return n - 1
	})
	var got []int
	for i := 0; i < 4; i++ {
		i := i
		k.At(Time(time.Millisecond), func() { got = append(got, i) })
	}
	k.At(Time(2*time.Millisecond), func() { got = append(got, 99) })
	k.Run()
	want := []int{3, 2, 1, 0, 99}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reverse chooser ran %v, want %v", got, want)
	}
	// Ready-set sizes shrink as the instant drains: 4, 3, 2 (singletons
	// are not offered).
	if !reflect.DeepEqual(sizes, []int{4, 3, 2}) {
		t.Fatalf("chooser saw ready sizes %v, want [4 3 2]", sizes)
	}
}

// TestChooserCancelled: cancelled events never reach the chooser and a
// chooser pick of an out-of-range index falls back to FIFO.
func TestChooserCancelled(t *testing.T) {
	k := NewKernel()
	k.SetChooser(func(n int) int { return 1000 })
	var got []int
	a := k.At(Time(time.Millisecond), func() { got = append(got, 0) })
	k.At(Time(time.Millisecond), func() { got = append(got, 1) })
	k.At(Time(time.Millisecond), func() { got = append(got, 2) })
	a.Cancel()
	k.Run()
	if want := []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestChooserTimersStayCancelable: events scheduled by chosen callbacks
// at the same instant re-enter the ready set on later steps.
func TestChooserTimersStayCancelable(t *testing.T) {
	k := NewKernel()
	k.SetChooser(func(n int) int { return n - 1 })
	var got []int
	k.Post(func() {
		got = append(got, 1)
		tm := k.Post(func() { got = append(got, 2) })
		k.Post(func() { got = append(got, 3); tm.Cancel() })
	})
	k.Post(func() { got = append(got, 4) })
	k.Run()
	// First step offers {1,4}: reverse chooser runs 4; then 1; then its
	// children {2,3}: runs 3, which cancels 2.
	if want := []int{4, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
