package sim

import (
	"fmt"
	"time"
)

// Proc models a sequential thread of control inside the simulation: a
// simulated process (or kernel daemon). The function passed to Spawn
// runs on its own goroutine, but the kernel hands control to at most
// one goroutine at a time, so simulation state needs no locking and
// runs are deterministic.
//
// A Proc interacts with virtual time only through its blocking
// primitives (Sleep, Park) and through higher-level facilities built on
// them (the sched package's CPU, the ipc package's calls). Returning
// from the spawned function terminates the process.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{} // kernel -> proc: you hold control
	yield  chan struct{} // proc -> kernel: control returned
	parked bool
	dead   bool
}

// Spawn starts a new simulated process executing fn. The process begins
// running at the current instant (as a queued event). Spawn may be
// called from kernel callbacks or from other processes.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs++
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.dead = true
		k.procs--
		p.yield <- struct{}{} // return control to kernel forever
	}()
	k.Post(func() { p.transfer() })
	return p
}

// transfer hands control to the process goroutine and waits for it to
// block or terminate. Must be called from the kernel's goroutine (i.e.
// inside an event callback).
func (p *Proc) transfer() {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// park blocks the process until something calls Unpark. It must be
// called from the process's own goroutine.
func (p *Proc) park() {
	p.parked = true
	p.yield <- struct{}{} // give control back to the kernel
	<-p.resume            // wait to be rescheduled
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Dead reports whether the process function has returned.
func (p *Proc) Dead() bool { return p.dead }

// Park blocks the calling process indefinitely until Unpark is called
// on it. Calling Park from any goroutine other than the process's own
// corrupts the handoff protocol; it panics where detectably misused.
func (p *Proc) Park() {
	if p.dead {
		panic(fmt.Sprintf("sim: Park on dead process %q", p.name))
	}
	p.park()
}

// Unpark makes a parked process runnable again at the current instant.
// It must be called with the kernel in control (from an event callback
// or from another process); the parked process resumes when the
// scheduled event fires. Unpark of a non-parked process panics: it
// indicates a lost-wakeup style model bug.
func (p *Proc) Unpark() {
	if !p.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked process %q", p.name))
	}
	p.parked = false
	p.k.Post(func() { p.transfer() })
}

// Parked reports whether the process is blocked in Park.
func (p *Proc) Parked() bool { return p.parked }

// Resume transfers control to a parked process synchronously: the
// process runs at the current instant until it parks again (or
// terminates), and then Resume returns. It must be called from kernel
// (event) context, never from another process's goroutine. Schedulers
// use Resume to run a task and inspect, inline, what the task asked
// for next.
func (p *Proc) Resume() {
	if p.dead {
		return
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: Resume of non-parked process %q", p.name))
	}
	p.parked = false
	p.transfer()
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	p.k.After(d, func() { p.Unpark() })
	p.Park()
}
