// Package obs is the unified observability layer for the Mirage DSM:
// a cheap sharded metrics registry (monotonic counters plus fixed-bucket
// histograms) and a structured protocol event tracer sharing one event
// vocabulary between the deterministic simulator (virtual clock) and
// live mode (wall clock).
//
// The paper's entire evaluation (§7–§9) is built on seeing the
// protocol: component timings, fault counts per window Δ, the library
// reference string. This package makes that first-class. Every
// coherence event — read/write faults, invalidations sent and acked,
// reader→writer upgrades, writer→reader downgrades, Δ-window denials
// with remaining time, retransmissions, chaos verdicts, transport batch
// flushes — is countable through the Registry and traceable through a
// Tracer.
//
// Design constraints, in priority order:
//
//  1. Off is free. A nil *Obs (the default everywhere) must add zero
//     allocations and only a pointer test to the hot paths. The
//     AllocsPerRun gates in obs_test.go enforce this.
//  2. Deterministic in simulation. Event order and timestamps come from
//     the virtual clock, so a traced sim run serializes to identical
//     bytes at any host parallelism.
//  3. Zero dependencies. Standard library only, like the rest of the
//     repository.
//
// The JSONL trace schema and the metric vocabulary are documented in
// docs/OBSERVABILITY.md at the repository root; SchemaVersion below is
// the version stamped into every trace header.
package obs

import (
	"sync"
	"time"

	"mirage/internal/wire"
)

// SchemaVersion is the version of the JSONL trace schema this package
// writes. Readers reject traces with a newer major version.
const SchemaVersion = 1

// EvType discriminates protocol trace events.
type EvType uint8

// The event vocabulary. One set of types serves both execution modes;
// docs/OBSERVABILITY.md describes each event's fields in detail.
const (
	// EvInvalid is the zero EvType; it never appears in a trace.
	EvInvalid EvType = iota
	// EvFault is a local access fault (Arg: 0 read, 1 write).
	EvFault
	// EvMsgSend is a protocol message handed to the fabric (From/To set,
	// Kind is the wire message kind).
	EvMsgSend
	// EvMsgRecv is a protocol message handled by an engine.
	EvMsgRecv
	// EvGrantStart is a library grant cycle opening (Arg: 0 read batch,
	// 1 write grant; To is the new writer for write grants).
	EvGrantStart
	// EvGrantEnd is a library grant cycle committing.
	EvGrantEnd
	// EvDeltaDeny is a clock site refusing an invalidation inside an
	// unexpired Δ window (Arg: remaining window in nanoseconds).
	EvDeltaDeny
	// EvRetry is the library re-sending an invalidation after a KBusy
	// (Arg: the wait in nanoseconds).
	EvRetry
	// EvPageState is a per-page protection transition at a site (Arg:
	// 0 invalid, 1 read, 2 write).
	EvPageState
	// EvUpgrade is an in-place reader→writer upgrade landing.
	EvUpgrade
	// EvDowngrade is a writer→reader downgrade at the old writer.
	EvDowngrade
	// EvRetransmit is the reliability layer re-sending a sequenced
	// message after an ack timeout (To: peer, Arg: sequence number).
	EvRetransmit
	// EvChaos is a fault-injection verdict (Arg: a ChaosVerdict).
	EvChaos
	// EvRead is a completed application-level read of a page range.
	// From is the byte offset within the page, To the length, Arg the
	// FNV-1a 64-bit digest of the bytes read. Emitted by the access
	// layers when op recording is on; the coherence history checker
	// (internal/check) replays these against the latest-write oracle.
	EvRead
	// EvWrite is a completed application-level write of a page range;
	// fields as EvRead, with Arg digesting the bytes as written.
	EvWrite
	// EvFailover is a site detecting a dead library and triggering
	// failover (From: the unreachable library site, To: the successor
	// site the trigger was sent to).
	EvFailover
	// EvRecover is a successor completing library takeover for a
	// segment: its Epoch field is the new library epoch, Arg the site id
	// of the failed library it replaces. Emitted once per recovery at
	// the new library site.
	EvRecover
	// EvInvalFanout is a site partitioning an invalidation target set
	// into delegated subtrees (Arg: the number of direct children the
	// orders went to).
	EvInvalFanout
	// EvRelay is an interior site accepting a delegated invalidation
	// subtree: it discards its own copy, relays orders onward, and owes
	// its parent (From) one aggregated ack (Arg: subtree size excluding
	// this site).
	EvRelay
	// EvMigrate is a successor completing a voluntary library migration
	// for a segment: its Epoch field is the new library epoch, Arg the
	// site id of the old library that handed the role over. Emitted once
	// per migration at the new library site. Unlike EvRecover the old
	// library is alive and its copies stay valid.
	EvMigrate
	// EvReplicate is replication log activity (docs/REPLICATION.md).
	// From == Site: the leader committed the entry at quorum; From !=
	// Site: a follower applied an entry replicated from the leader in
	// From. Arg is the log index, Cycle the entry's 32-bit digest.
	EvReplicate
	// EvElect is an election winner installing the library from its
	// replicated log tail instead of reconstructing holdings: its Epoch
	// field is the new library epoch, From the dead leader, Cycle the
	// merged log's epoch (term), Arg the merged tail index.
	EvElect
	// EvRetune is the AutoDelta controller adjusting a page's Δ at the
	// library: Arg is the new Δ in nanoseconds, Cycle the grant cycle
	// the adjustment landed on. Emitted only when Δ actually changed.
	EvRetune

	evTypeCount
)

// Chaos verdict codes carried in EvChaos.Arg.
const (
	ChaosDrop = iota
	ChaosDup
	ChaosDelay
	ChaosPartition
	ChaosCrash
)

var evNames = [...]string{
	EvInvalid:     "invalid",
	EvFault:       "fault",
	EvMsgSend:     "msg-send",
	EvMsgRecv:     "msg-recv",
	EvGrantStart:  "grant-start",
	EvGrantEnd:    "grant-end",
	EvDeltaDeny:   "delta-deny",
	EvRetry:       "retry",
	EvPageState:   "page-state",
	EvUpgrade:     "upgrade",
	EvDowngrade:   "downgrade",
	EvRetransmit:  "retransmit",
	EvChaos:       "chaos",
	EvRead:        "read",
	EvWrite:       "write",
	EvFailover:    "failover",
	EvRecover:     "recover",
	EvInvalFanout: "inval-fanout",
	EvRelay:       "relay",
	EvMigrate:     "migrate",
	EvReplicate:   "replicate",
	EvElect:       "elect",
	EvRetune:      "retune",
}

func (t EvType) String() string {
	if int(t) < len(evNames) {
		return evNames[t]
	}
	return "invalid"
}

// EvTypes lists every real event type (EvInvalid excluded) in
// declaration order.
func EvTypes() []EvType {
	out := make([]EvType, 0, evTypeCount-1)
	for t := EvInvalid + 1; t < evTypeCount; t++ {
		out = append(out, t)
	}
	return out
}

// ParseEvType resolves an event type's String() name back to its value.
func ParseEvType(s string) (EvType, bool) {
	for t := EvInvalid + 1; t < evTypeCount; t++ {
		if evNames[t] == s {
			return t, true
		}
	}
	return EvInvalid, false
}

// Event is one protocol trace event. It is a fixed-size value with no
// pointers so a buffer of them is one allocation and emitting one is
// a struct copy.
//
// T is the time since run start: virtual time in the simulator, wall
// time since cluster start in live mode — the trace header's Clock
// field says which. From and To are only meaningful for message-flow
// events (EvMsgSend, EvMsgRecv, EvRetransmit, EvChaos); Arg is the
// event-specific scalar documented on each EvType.
type Event struct {
	T     time.Duration
	Site  int32
	Type  EvType
	Kind  wire.Kind // message kind for message events; KInvalid otherwise
	Seg   int32
	Page  int32
	From  int32
	To    int32
	Cycle uint32
	Epoch uint32 // segment's library epoch at emission; 0 before any failover
	Arg   int64
}

// Tracer receives protocol events. Implementations must be safe for
// concurrent use: live-mode sites emit from independent goroutines.
// The simulator is single-threaded per run, so any Tracer sees a
// deterministic event order there.
type Tracer interface {
	Emit(Event)
}

// Obs bundles the two observability sinks handed through the stack.
// Either field may be nil: a nil Metrics drops counts, a nil Tracer
// drops events. The nil *Obs drops everything and is the default.
type Obs struct {
	Metrics *Registry
	Tracer  Tracer
}

// New returns an Obs with a fresh Registry and an unbounded-ish Buffer
// tracer — the standard fully-on configuration.
func New() *Obs {
	return &Obs{Metrics: NewRegistry(), Tracer: NewBuffer()}
}

// Count increments a counter for a site. Nil-safe.
func (o *Obs) Count(site int, c Counter) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Inc(site, c)
}

// CountN adds n to a counter for a site. Nil-safe.
func (o *Obs) CountN(site int, c Counter, n int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Add(site, c, n)
}

// Observe records one histogram sample. Nil-safe.
func (o *Obs) Observe(h HistID, v int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Observe(h, v)
}

// Emit hands one event to the tracer. Nil-safe.
func (o *Obs) Emit(ev Event) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.Emit(ev)
}

// Tracing reports whether events would be recorded (used to skip
// event construction entirely on hot paths).
func (o *Obs) Tracing() bool { return o != nil && o.Tracer != nil }

// Buffer returns the tracer as a *Buffer when it is one, else nil.
func (o *Obs) Buffer() *Buffer {
	if o == nil {
		return nil
	}
	b, _ := o.Tracer.(*Buffer)
	return b
}

// DefaultBufferCap bounds an event Buffer: past it, events are counted
// as dropped rather than stored, so a forgotten tracer on a long run
// cannot consume unbounded memory.
const DefaultBufferCap = 1 << 20

// Buffer is an in-memory Tracer. It preserves emission order; in the
// simulator that order (and every timestamp) is deterministic, which is
// what makes traced runs byte-identical across host parallelism.
type Buffer struct {
	mu      sync.Mutex
	events  []Event
	dropped int64
	max     int
}

// NewBuffer returns an empty buffer with the default capacity bound.
func NewBuffer() *Buffer { return &Buffer{max: DefaultBufferCap} }

// NewBufferCap returns an empty buffer bounded to max events.
func NewBufferCap(max int) *Buffer { return &Buffer{max: max} }

// Emit appends one event, or counts it dropped past the bound.
func (b *Buffer) Emit(ev Event) {
	b.mu.Lock()
	if len(b.events) >= b.max {
		b.dropped++
	} else {
		b.events = append(b.events, ev)
	}
	b.mu.Unlock()
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Dropped returns the number of events lost to the capacity bound.
func (b *Buffer) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Events returns a snapshot copy of the buffered events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Reset discards all buffered events.
func (b *Buffer) Reset() {
	b.mu.Lock()
	b.events = b.events[:0]
	b.dropped = 0
	b.mu.Unlock()
}
