package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"mirage/internal/wire"
)

// ClockVirtual and ClockWall are the two clock domains a trace can be
// recorded in. Virtual timestamps come from the simulator's
// discrete-event kernel and are exactly reproducible; wall timestamps
// are time since cluster start on the host clock.
const (
	ClockVirtual = "virtual"
	ClockWall    = "wall"
)

// Header is the first line of a JSONL trace: schema version, clock
// domain, and cluster size. It distinguishes a trace file from a bare
// event stream and lets readers reject incompatible versions.
type Header struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Clock   string `json:"clock"`
	Sites   int    `json:"sites"`
}

// headerSchema is the Header.Schema magic value.
const headerSchema = "mirage-trace"

// NewHeader returns a v1 header for the given clock domain and size.
func NewHeader(clock string, sites int) Header {
	return Header{Schema: headerSchema, Version: SchemaVersion, Clock: clock, Sites: sites}
}

// appendEvent encodes one event as a JSON object with a fixed field
// order, so identical event sequences serialize to identical bytes —
// the property the determinism tests assert. Optional fields follow
// fixed inclusion rules: kind only for message events, from/to only
// for message-flow and op events (op events reuse them as offset and
// length), cycle only when non-zero.
func appendEvent(b []byte, ev Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(ev.T), 10)
	b = append(b, `,"site":`...)
	b = strconv.AppendInt(b, int64(ev.Site), 10)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Type.String()...)
	b = append(b, '"')
	if ev.Kind != 0 {
		b = append(b, `,"kind":"`...)
		b = append(b, ev.Kind.String()...)
		b = append(b, '"')
	}
	b = append(b, `,"seg":`...)
	b = strconv.AppendInt(b, int64(ev.Seg), 10)
	b = append(b, `,"page":`...)
	b = strconv.AppendInt(b, int64(ev.Page), 10)
	switch ev.Type {
	case EvMsgSend, EvMsgRecv, EvRetransmit, EvChaos, EvRead, EvWrite:
		b = append(b, `,"from":`...)
		b = strconv.AppendInt(b, int64(ev.From), 10)
		b = append(b, `,"to":`...)
		b = strconv.AppendInt(b, int64(ev.To), 10)
	case EvGrantStart:
		b = append(b, `,"to":`...)
		b = strconv.AppendInt(b, int64(ev.To), 10)
	}
	if ev.Cycle != 0 {
		b = append(b, `,"cycle":`...)
		b = strconv.AppendUint(b, uint64(ev.Cycle), 10)
	}
	if ev.Epoch != 0 {
		b = append(b, `,"epoch":`...)
		b = strconv.AppendUint(b, uint64(ev.Epoch), 10)
	}
	b = append(b, `,"arg":`...)
	b = strconv.AppendInt(b, ev.Arg, 10)
	b = append(b, '}', '\n')
	return b
}

// WriteJSONL writes a header line followed by one JSON object per
// event. The byte stream is a pure function of (hdr, events).
func WriteJSONL(w io.Writer, hdr Header, events []Event) error {
	bw := bufio.NewWriter(w)
	hb, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	bw.Write(hb)
	bw.WriteByte('\n')
	var line []byte
	for _, ev := range events {
		line = appendEvent(line[:0], ev)
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// jsonEvent is the decode shape for one trace line.
type jsonEvent struct {
	T     int64  `json:"t"`
	Site  int32  `json:"site"`
	Ev    string `json:"ev"`
	Kind  string `json:"kind"`
	Seg   int32  `json:"seg"`
	Page  int32  `json:"page"`
	From  int32  `json:"from"`
	To    int32  `json:"to"`
	Cycle uint32 `json:"cycle"`
	Epoch uint32 `json:"epoch"`
	Arg   int64  `json:"arg"`
}

// ReadJSONL parses a trace produced by WriteJSONL. It validates the
// header and rejects unknown schema versions or event types.
func ReadJSONL(r io.Reader) (Header, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Header{}, nil, err
		}
		return Header{}, nil, fmt.Errorf("obs: empty trace")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Header{}, nil, fmt.Errorf("obs: bad trace header: %w", err)
	}
	if hdr.Schema != headerSchema {
		return Header{}, nil, fmt.Errorf("obs: not a mirage trace (schema %q)", hdr.Schema)
	}
	if hdr.Version > SchemaVersion {
		return Header{}, nil, fmt.Errorf("obs: trace schema v%d is newer than supported v%d", hdr.Version, SchemaVersion)
	}
	var events []Event
	line := 1
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return hdr, nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		t, ok := ParseEvType(je.Ev)
		if !ok {
			return hdr, nil, fmt.Errorf("obs: trace line %d: unknown event type %q", line, je.Ev)
		}
		ev := Event{
			T:     time.Duration(je.T),
			Site:  je.Site,
			Type:  t,
			Seg:   je.Seg,
			Page:  je.Page,
			From:  je.From,
			To:    je.To,
			Cycle: je.Cycle,
			Epoch: je.Epoch,
			Arg:   je.Arg,
		}
		if je.Kind != "" {
			k, ok := wire.ParseKind(je.Kind)
			if !ok {
				return hdr, nil, fmt.Errorf("obs: trace line %d: unknown message kind %q", line, je.Kind)
			}
			ev.Kind = k
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	if len(events) == 0 {
		// A header with no events is a truncated or aborted recording,
		// not a verifiable trace: callers like `miragetrace check` must
		// not report a run coherent on the strength of zero evidence.
		return hdr, nil, fmt.Errorf("obs: trace has no events (truncated or empty recording)")
	}
	return hdr, events, nil
}
