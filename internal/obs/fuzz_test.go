package obs

import (
	"bytes"
	"testing"
	"time"
)

// seedTrace builds a representative well-formed trace for the corpus.
func seedTrace() []byte {
	events := []Event{
		{T: 0, Site: 0, Type: EvPageState, Seg: 1, Page: 0, Arg: 2},
		{T: time.Millisecond, Site: 1, Type: EvFault, Seg: 1, Page: 0, Arg: 1},
		{T: time.Millisecond, Site: 0, Type: EvGrantStart, Seg: 1, Page: 0, To: 1, Cycle: 1},
		{T: 2 * time.Millisecond, Site: 0, Type: EvMsgSend, Seg: 1, Page: 0, From: 0, To: 1, Kind: 3},
		{T: 3 * time.Millisecond, Site: 1, Type: EvPageState, Seg: 1, Page: 0, Cycle: 1, Arg: 1},
		{T: 3 * time.Millisecond, Site: 0, Type: EvGrantEnd, Seg: 1, Page: 0, Cycle: 1},
		{T: 4 * time.Millisecond, Site: 1, Type: EvRead, Seg: 1, Page: 0, From: 8, To: 4, Arg: -12345},
		{T: 5 * time.Millisecond, Site: 1, Type: EvWrite, Seg: 1, Page: 0, From: 8, To: 4, Arg: 7},
	}
	var b bytes.Buffer
	if err := WriteJSONL(&b, NewHeader(ClockVirtual, 2), events); err != nil {
		panic(err)
	}
	return b.Bytes()
}

// FuzzReadJSONL checks the decode→encode→decode loop: whatever
// ReadJSONL accepts must re-serialize deterministically, and the
// re-serialized form must be a fixpoint (one normalization pass, then
// byte-stable forever). This is the property the simulator's
// determinism checks and the trace-digest comparisons rely on.
func FuzzReadJSONL(f *testing.F) {
	f.Add(seedTrace())
	f.Add([]byte(`{"schema":"mirage-trace","version":1,"clock":"wall","sites":3}` + "\n"))
	f.Add([]byte(`{"schema":"mirage-trace","version":1,"clock":"virtual","sites":2}` + "\n" +
		`{"t":5,"site":1,"ev":"read","seg":1,"page":0,"from":0,"to":4,"arg":-1}` + "\n"))
	f.Add([]byte(`{"schema":"other"}` + "\n"))
	f.Add([]byte(`not json`))
	f.Add([]byte(""))
	// Degenerate recordings that must produce a clean error, never an
	// "ok" verdict: header-only, and a record truncated mid-JSON.
	f.Add([]byte(`{"schema":"mirage-trace","version":1,"clock":"virtual","sites":2}` + "\n"))
	f.Add([]byte(`{"schema":"mirage-trace","version":1,"clock":"virtual","sites":2}` + "\n" +
		`{"t":5,"site":1,"ev":"read","se`))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, events, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // malformed inputs just need a clean error
		}
		var first bytes.Buffer
		if err := WriteJSONL(&first, hdr, events); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		hdr2, events2, err := ReadJSONL(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v\n%s", err, first.Bytes())
		}
		if hdr2 != hdr {
			t.Fatalf("header changed across round trip: %+v -> %+v", hdr, hdr2)
		}
		if len(events2) != len(events) {
			t.Fatalf("event count changed: %d -> %d", len(events), len(events2))
		}
		var second bytes.Buffer
		if err := WriteJSONL(&second, hdr2, events2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not a fixpoint:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}
