package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"mirage/internal/wire"
)

func sampleEvents() []Event {
	return []Event{
		{T: 0, Site: 0, Type: EvFault, Seg: 1, Page: 0, Arg: 1},
		{T: time.Millisecond, Site: 0, Type: EvMsgSend, Kind: wire.KWriteReq, Seg: 1, Page: 0, From: 0, To: 1},
		{T: 2 * time.Millisecond, Site: 1, Type: EvMsgRecv, Kind: wire.KWriteReq, Seg: 1, Page: 0, From: 0, To: 1},
		{T: 2 * time.Millisecond, Site: 1, Type: EvGrantStart, Seg: 1, Page: 0, To: 0, Cycle: 1, Arg: 1},
		{T: 3 * time.Millisecond, Site: 1, Type: EvDeltaDeny, Seg: 1, Page: 0, Arg: int64(5 * time.Millisecond)},
		{T: 9 * time.Millisecond, Site: 0, Type: EvUpgrade, Seg: 1, Page: 0},
		{T: 9 * time.Millisecond, Site: 0, Type: EvPageState, Seg: 1, Page: 0, Arg: 2},
		{T: 10 * time.Millisecond, Site: 1, Type: EvGrantEnd, Seg: 1, Page: 0, Cycle: 1},
	}
}

func TestEvTypeNamesRoundTrip(t *testing.T) {
	for typ := EvInvalid + 1; typ < evTypeCount; typ++ {
		got, ok := ParseEvType(typ.String())
		if !ok || got != typ {
			t.Fatalf("ParseEvType(%q) = %v, %v; want %v", typ.String(), got, ok, typ)
		}
	}
	if _, ok := ParseEvType("nope"); ok {
		t.Fatal("ParseEvType accepted a bogus name")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	hdr := NewHeader(ClockVirtual, 2)
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, hdr, events); err != nil {
		t.Fatal(err)
	}
	gotHdr, got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr != hdr {
		t.Fatalf("header round-trip: got %+v want %+v", gotHdr, hdr)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d round-trip: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	hdr := NewHeader(ClockVirtual, 2)
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, hdr, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, hdr, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSONL is not byte-deterministic for identical inputs")
	}
}

func TestReadJSONLRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not a trace": `{"schema":"other","version":1}` + "\n",
		"future":      `{"schema":"mirage-trace","version":99,"clock":"virtual","sites":2}` + "\n",
		"bad event":   `{"schema":"mirage-trace","version":1,"clock":"virtual","sites":2}` + "\n" + `{"t":0,"site":0,"ev":"bogus","seg":0,"page":0,"arg":0}` + "\n",
		"header only": `{"schema":"mirage-trace","version":1,"clock":"virtual","sites":2}` + "\n",
		"truncated":   `{"schema":"mirage-trace","version":1,"clock":"virtual","sites":2}` + "\n" + `{"t":0,"site":0,"ev":"fault","se`,
	}
	for name, in := range cases {
		if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSONL accepted bad input", name)
		}
	}
}

func TestRegistryCountsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Inc(0, CReadFault)
	r.Inc(0, CReadFault)
	r.Inc(1, CWriteFault)
	r.Add(1, CFlushByte, 4096)
	r.Inc(-5, CRetry)  // out of range folds into site 0
	r.Inc(999, CRetry) // likewise
	if got := r.Get(0, CReadFault); got != 2 {
		t.Fatalf("Get(0, CReadFault) = %d, want 2", got)
	}
	if got := r.Total(CRetry); got != 2 {
		t.Fatalf("Total(CRetry) = %d, want 2", got)
	}
	s := r.Snapshot()
	if s.Totals["read_faults"] != 2 || s.Totals["write_faults"] != 1 || s.Totals["flush_bytes"] != 4096 {
		t.Fatalf("snapshot totals wrong: %+v", s.Totals)
	}
	if s.PerSite["site1"]["write_faults"] != 1 {
		t.Fatalf("snapshot per-site wrong: %+v", s.PerSite)
	}
	if _, ok := s.PerSite["site2"]; ok {
		t.Fatal("snapshot includes an idle site")
	}
}

func TestHistObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Hist(HDenialRemaining)
	for _, v := range []int64{int64(time.Millisecond), int64(10 * time.Millisecond), int64(100 * time.Millisecond)} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Max() != int64(100*time.Millisecond) {
		t.Fatalf("Max = %d", h.Max())
	}
	if q := h.Quantile(1.0); q < int64(100*time.Millisecond) {
		t.Fatalf("Quantile(1.0) = %d, below max sample", q)
	}
	s := r.Snapshot()
	if len(s.Hists) != 1 || s.Hists[0].Name != "denial_remaining_ns" || s.Hists[0].Count != 3 {
		t.Fatalf("hist snapshot wrong: %+v", s.Hists)
	}
}

// TestRegistryConcurrent hammers the sharded registry from many
// goroutines; run under -race this is the registry's concurrency gate.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := w % MaxSites
			for i := 0; i < per; i++ {
				r.Inc(site, CMsgSent)
				r.Add(site, CFlushByte, 64)
				r.Observe(HFlushBytes, 64)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Total(CMsgSent); got != workers*per {
		t.Fatalf("Total(CMsgSent) = %d, want %d", got, workers*per)
	}
	if got := r.Hist(HFlushBytes).Count(); got != workers*per {
		t.Fatalf("hist count = %d, want %d", got, workers*per)
	}
}

// TestBufferConcurrent exercises the tracer buffer under concurrent
// emitters (the live-mode shape) with -race.
func TestBufferConcurrent(t *testing.T) {
	b := NewBufferCap(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Emit(Event{Site: int32(w), Type: EvMsgSend})
			}
		}(w)
	}
	wg.Wait()
	if b.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000 (capacity bound)", b.Len())
	}
	if b.Dropped() != 3000 {
		t.Fatalf("Dropped = %d, want 3000", b.Dropped())
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Fatal("Reset did not clear the buffer")
	}
}

// TestNilObsAllocFree proves the disabled path is free: every nil-safe
// helper on a nil *Obs must not allocate.
func TestNilObsAllocFree(t *testing.T) {
	var o *Obs
	ev := Event{Type: EvMsgSend, Kind: wire.KInval}
	if n := testing.AllocsPerRun(1000, func() {
		o.Count(1, CMsgSent)
		o.CountN(1, CFlushByte, 64)
		o.Observe(HFlushBytes, 64)
		o.Emit(ev)
		_ = o.Tracing()
	}); n != 0 {
		t.Fatalf("nil *Obs path allocates %.1f allocs/op, want 0", n)
	}
}

// TestRegistryIncAllocFree proves enabled counting stays allocation
// free: an Inc/Add/Observe is a few atomic adds, nothing more.
func TestRegistryIncAllocFree(t *testing.T) {
	r := NewRegistry()
	if n := testing.AllocsPerRun(1000, func() {
		r.Inc(3, CMsgSent)
		r.Add(3, CFlushByte, 64)
		r.Observe(HFlushBytes, 64)
	}); n != 0 {
		t.Fatalf("registry hot path allocates %.1f allocs/op, want 0", n)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents())
	if s.Events != 8 {
		t.Fatalf("Events = %d, want 8", s.Events)
	}
	if s.ByType[EvFault] != 1 || s.ByType[EvDeltaDeny] != 1 {
		t.Fatalf("ByType wrong: %v", s.ByType)
	}
	if s.ByKind["write-req"] != 1 {
		t.Fatalf("ByKind wrong: %v", s.ByKind)
	}
	if s.Denials != 1 || s.DenialMax != 5*time.Millisecond {
		t.Fatalf("denial stats wrong: %d max %v", s.Denials, s.DenialMax)
	}
	if len(s.Pages) != 1 || s.Pages[0].Faults != 1 || s.Pages[0].Upgrades != 1 {
		t.Fatalf("page summary wrong: %+v", s.Pages)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Δ denials: 1") {
		t.Fatalf("summary output missing denial line:\n%s", buf.String())
	}
}

func TestTimelineFilter(t *testing.T) {
	events := sampleEvents()
	if got := Timeline(events, 1, 0); len(got) != len(events) {
		t.Fatalf("Timeline(1,0) = %d events, want %d", len(got), len(events))
	}
	if got := Timeline(events, 2, 0); len(got) != 0 {
		t.Fatalf("Timeline(2,0) = %d events, want 0", len(got))
	}
	if got := Timeline(events, -1, -1); len(got) != len(events) {
		t.Fatal("wildcard timeline dropped events")
	}
	for _, ev := range events {
		if FormatEvent(ev) == "" {
			t.Fatal("FormatEvent returned empty")
		}
	}
}

func TestDenialBreakdown(t *testing.T) {
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, Event{Type: EvDeltaDeny, Arg: int64(i) * int64(time.Millisecond)})
	}
	rows := DenialBreakdown(events, 3)
	if len(rows) != 3 {
		t.Fatalf("got %d buckets, want 3", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Count
	}
	if total != 10 {
		t.Fatalf("bucket counts sum to %d, want 10", total)
	}
	if DenialBreakdown(nil, 3) != nil {
		t.Fatal("empty input should yield nil")
	}
}

func TestRegistryWriteTo(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no events") {
		t.Fatalf("empty dump unexpected: %q", buf.String())
	}
	r.Inc(0, CReadFault)
	r.Observe(HFaultLatency, int64(2*time.Millisecond))
	buf.Reset()
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "read_faults") || !strings.Contains(out, "fault_latency_ns") {
		t.Fatalf("dump missing entries:\n%s", out)
	}
}
