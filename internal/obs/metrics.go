package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"mirage/internal/quantile"
)

// Counter identifies one monotonic per-site counter in a Registry.
type Counter uint8

// The counter vocabulary. Every coherence event the protocol can
// produce has a counter; units are plain event counts unless the name
// says bytes. docs/OBSERVABILITY.md carries the prose definitions.
const (
	// Protocol faults and message flow.
	CReadFault Counter = iota
	CWriteFault
	CMsgSent
	CMsgRecv
	CPageSent
	CPageRecv
	// Library grant machinery.
	CGrantCycle
	CInvalSent
	CInvalAcked
	CUpgrade
	CDowngrade
	// Δ-window interactions.
	CDeltaDenial
	CRetry
	CAlready
	// Reliability (ARQ) layer.
	CRetransmit
	CDupDrop
	CGaveUp
	CDenied
	CDegraded
	CStale
	CLost
	// Library failover.
	CFailover
	CRecovery
	CStaleEpoch
	// Chaos (fault-injection) verdicts.
	CChaosDrop
	CChaosDup
	CChaosDelay
	CChaosPartition
	CChaosCrash
	// Transport batching.
	CFlushBatch
	CFlushFrame
	CFlushByte
	// Simulated fabric delivery.
	CNetDelivered
	CNetByte
	// Application layer (internal/app sharded KV store).
	CAppOp
	CAppHit
	CAppMiss
	CAppConflict
	// Scale path: fan-out tree invalidation and wire accounting.
	CInvalFanout
	CRelay
	CWireByte
	// Placement layer: voluntary library migration.
	CMigration
	CMigrationRefused
	// Replication layer: consensus-replicated library records.
	CAppend
	CReplCommit
	CReplDegraded
	CElect
	// AutoDelta controller: per-page closed-loop Δ adjustments.
	CDeltaGrow
	CDeltaShrink

	counterCount
)

var counterNames = [...]string{
	CReadFault:        "read_faults",
	CWriteFault:       "write_faults",
	CMsgSent:          "msgs_sent",
	CMsgRecv:          "msgs_recv",
	CPageSent:         "pages_sent",
	CPageRecv:         "pages_recv",
	CGrantCycle:       "grant_cycles",
	CInvalSent:        "invals_sent",
	CInvalAcked:       "invals_acked",
	CUpgrade:          "upgrades",
	CDowngrade:        "downgrades",
	CDeltaDenial:      "delta_denials",
	CRetry:            "retries",
	CAlready:          "already_held",
	CRetransmit:       "retransmits",
	CDupDrop:          "dup_drops",
	CGaveUp:           "gave_up",
	CDenied:           "denied",
	CDegraded:         "degraded",
	CStale:            "stale",
	CLost:             "lost",
	CFailover:         "failovers",
	CRecovery:         "recoveries",
	CStaleEpoch:       "stale_epoch",
	CChaosDrop:        "chaos_drops",
	CChaosDup:         "chaos_dups",
	CChaosDelay:       "chaos_delays",
	CChaosPartition:   "chaos_partitioned",
	CChaosCrash:       "chaos_crashed",
	CFlushBatch:       "flush_batches",
	CFlushFrame:       "flush_frames",
	CFlushByte:        "flush_bytes",
	CNetDelivered:     "net_delivered",
	CNetByte:          "net_bytes",
	CAppOp:            "app_ops",
	CAppHit:           "app_hits",
	CAppMiss:          "app_misses",
	CAppConflict:      "app_conflicts",
	CInvalFanout:      "inval_fanout",
	CRelay:            "relays",
	CWireByte:         "wire_bytes",
	CMigration:        "migrations",
	CMigrationRefused: "refused_migrations",
	CAppend:           "appends",
	CReplCommit:       "repl_commits",
	CReplDegraded:     "repl_degraded",
	CElect:            "elections",
	CDeltaGrow:        "delta_grow",
	CDeltaShrink:      "delta_shrink",
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// Counters lists every counter in declaration order.
func Counters() []Counter {
	out := make([]Counter, counterCount)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Hists lists every histogram id in declaration order.
func Hists() []HistID {
	out := make([]HistID, histCount)
	for i := range out {
		out[i] = HistID(i)
	}
	return out
}

// MaxSites is the registry's site capacity; it matches mmu.MaxSites,
// the copyset (and therefore cluster-size) cap on the public API.
const MaxSites = 65536

// blockSites is how many per-site shards one lazily-allocated block
// holds. Shard storage for 65536 sites would be tens of megabytes per
// registry if allocated eagerly; blocks materialize on first touch, so
// a 16-site cluster pays for one block, not a thousand.
const blockSites = 64

// shard holds one site's counters on its own cache lines so sites
// never contend on increments.
type shard struct {
	v [counterCount]atomic.Int64
	_ [64]byte
}

// shardBlock is one lazily-allocated run of site shards.
type shardBlock struct {
	shards [blockSites]shard
}

// HistID identifies one histogram in a Registry.
type HistID uint8

// The histogram vocabulary.
const (
	// HDenialRemaining: remaining Δ-window time (ns) at each denial.
	HDenialRemaining HistID = iota
	// HFaultLatency: fault-to-resume latency (ns) at the faulting site.
	HFaultLatency
	// HFlushFrames: frames per transport write-batch flush.
	HFlushFrames
	// HFlushBytes: bytes per transport write-batch flush.
	HFlushBytes
	// HRecoverLatency: library-failover duration (ns), from the
	// successor starting recovery to it resuming grants.
	HRecoverLatency
	// HAppOpLatency: application store operation latency (ns), from op
	// entry to completion including any DSM faults and lock waits.
	HAppOpLatency
	// HMigrateLatency: voluntary migration duration (ns), from the old
	// library freezing the segment to the successor's ack deposing it.
	HMigrateLatency
	// HReplLag: replication lag (ns) at the leader, from appending an
	// intent to its quorum commit — the synchronous overhead replication
	// adds to each gated mutation.
	HReplLag
	// HTunedDelta: the Δ (ns) a page was left at after each AutoDelta
	// controller adjustment — the distribution of where the closed loop
	// settles.
	HTunedDelta

	histCount
)

var histNames = [...]string{
	HDenialRemaining: "denial_remaining_ns",
	HFaultLatency:    "fault_latency_ns",
	HFlushFrames:     "flush_frames_per_batch",
	HFlushBytes:      "flush_bytes_per_batch",
	HRecoverLatency:  "recover_latency_ns",
	HAppOpLatency:    "app_op_latency_ns",
	HMigrateLatency:  "migrate_latency_ns",
	HReplLag:         "repl_lag_ns",
	HTunedDelta:      "tuned_delta_ns",
}

func (h HistID) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return fmt.Sprintf("hist(%d)", uint8(h))
}

// histBuckets is the shared fixed bucket geometry: powers of two.
// Duration-valued histograms start at 1ms and size-valued ones at 1,
// but both use upper bounds ub[i] = lo << i with a final +Inf bucket,
// so one atomic layout serves every histogram.
const histBucketCount = 24

var histLow = [histCount]int64{
	HDenialRemaining: int64(time.Millisecond),
	HFaultLatency:    int64(time.Millisecond),
	HFlushFrames:     1,
	HFlushBytes:      1,
	HRecoverLatency:  int64(time.Millisecond),
	HAppOpLatency:    int64(time.Microsecond),
	HMigrateLatency:  int64(time.Millisecond),
	HReplLag:         int64(time.Microsecond),
	HTunedDelta:      int64(time.Millisecond),
}

// NewHist returns a standalone histogram whose lowest bucket bound is
// lo (buckets double from there). Registry histograms are built in
// place; standalone ones serve ad hoc measurements like the load
// generator's per-rung latency distributions.
func NewHist(lo int64) *Hist { return &Hist{lo: lo} }

// Hist is a fixed-bucket, lock-free histogram. Buckets double from the
// configured low bound; samples above the last bound land in the
// overflow bucket.
type Hist struct {
	lo      int64
	buckets [histBucketCount + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	ub := h.lo
	for i := 0; i < histBucketCount; i++ {
		if v <= ub {
			h.buckets[i].Add(1)
			return
		}
		ub <<= 1
	}
	h.buckets[histBucketCount].Add(1)
}

// Count returns the number of samples recorded.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum returns the total of all samples.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Max returns the largest sample, or 0 when empty.
func (h *Hist) Max() int64 { return h.max.Load() }

// Mean returns the average sample, or 0 when empty.
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) from
// the bucket boundaries, or 0 when empty. The scan is the shared
// internal/quantile helper over a point-in-time copy of the atomic
// buckets.
func (h *Hist) Quantile(q float64) int64 {
	var counts [histBucketCount + 1]int64
	var bounds [histBucketCount]int64
	ub := h.lo
	for i := 0; i < histBucketCount; i++ {
		counts[i] = h.buckets[i].Load()
		bounds[i] = ub
		ub <<= 1
	}
	counts[histBucketCount] = h.buckets[histBucketCount].Load()
	return quantile.Q(q, counts[:], bounds[:], h.max.Load())
}

// Summary returns the histogram's standard p50/p95/p99/p999 quartet.
func (h *Hist) Summary() quantile.Summary { return quantile.Of(h) }

// HistSnapshot is a point-in-time copy of one histogram, JSON-friendly.
type HistSnapshot struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
	Mean    float64 `json:"mean"`
	Bounds  []int64 `json:"bounds,omitempty"`  // upper bounds of non-empty buckets
	Buckets []int64 `json:"buckets,omitempty"` // counts matching Bounds; last may be overflow (bound -1)
}

// Snapshot copies the histogram's current state, keeping only
// non-empty buckets.
func (h *Hist) snapshot(name string) HistSnapshot {
	s := HistSnapshot{Name: name, Count: h.Count(), Sum: h.Sum(), Max: h.Max(), Mean: h.Mean()}
	ub := h.lo
	for i := 0; i <= histBucketCount; i++ {
		n := h.buckets[i].Load()
		bound := ub
		if i == histBucketCount {
			bound = -1 // overflow
		}
		if n > 0 {
			s.Bounds = append(s.Bounds, bound)
			s.Buckets = append(s.Buckets, n)
		}
		ub <<= 1
	}
	return s
}

// Registry is the sharded metrics store: one cache-line-isolated shard
// of monotonic counters per site plus a small set of global histograms.
// All methods are safe for concurrent use and increments are a single
// atomic add — cheap enough to leave on in live mode. Shard blocks are
// allocated on a site's first increment (a one-time CAS); warm-path
// increments stay allocation-free.
type Registry struct {
	blocks [MaxSites / blockSites]atomic.Pointer[shardBlock]
	hists  [histCount]Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.hists {
		r.hists[i].lo = histLow[i]
	}
	return r
}

// shard returns site's shard, materializing its block on first touch.
func (r *Registry) shard(site int) *shard {
	if site < 0 || site >= MaxSites {
		site = 0
	}
	bp := &r.blocks[site/blockSites]
	b := bp.Load()
	if b == nil {
		nb := &shardBlock{}
		if !bp.CompareAndSwap(nil, nb) {
			b = bp.Load()
		} else {
			b = nb
		}
	}
	return &b.shards[site%blockSites]
}

// Inc adds one to counter c for site. Out-of-range sites fold into
// shard 0 rather than panicking — metrics must never take a run down.
func (r *Registry) Inc(site int, c Counter) { r.Add(site, c, 1) }

// Add adds n to counter c for site.
func (r *Registry) Add(site int, c Counter, n int64) {
	r.shard(site).v[c].Add(n)
}

// Get returns counter c for one site.
func (r *Registry) Get(site int, c Counter) int64 {
	if site < 0 || site >= MaxSites {
		site = 0
	}
	b := r.blocks[site/blockSites].Load()
	if b == nil {
		return 0
	}
	return b.shards[site%blockSites].v[c].Load()
}

// Total returns counter c summed across all sites.
func (r *Registry) Total(c Counter) int64 {
	var t int64
	for i := range r.blocks {
		b := r.blocks[i].Load()
		if b == nil {
			continue
		}
		for s := range b.shards {
			t += b.shards[s].v[c].Load()
		}
	}
	return t
}

// Hist returns the identified histogram for direct observation.
func (r *Registry) Hist(id HistID) *Hist { return &r.hists[id] }

// Observe records one sample into the identified histogram.
func (r *Registry) Observe(id HistID, v int64) { r.hists[id].Observe(v) }

// Snapshot is a point-in-time, JSON-friendly copy of a Registry.
// Totals holds every counter (zeros included, so consumers see the
// full vocabulary); PerSite keeps only non-zero entries for sites that
// recorded anything.
type Snapshot struct {
	Totals  map[string]int64            `json:"totals"`
	PerSite map[string]map[string]int64 `json:"per_site,omitempty"`
	Hists   []HistSnapshot              `json:"hists,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Totals: make(map[string]int64, int(counterCount))}
	for c := Counter(0); c < counterCount; c++ {
		s.Totals[c.String()] = r.Total(c)
	}
	for bi := range r.blocks {
		b := r.blocks[bi].Load()
		if b == nil {
			continue
		}
		for si := range b.shards {
			site := bi*blockSites + si
			var m map[string]int64
			for c := Counter(0); c < counterCount; c++ {
				if v := b.shards[si].v[c].Load(); v != 0 {
					if m == nil {
						m = make(map[string]int64)
					}
					m[c.String()] = v
				}
			}
			if m != nil {
				if s.PerSite == nil {
					s.PerSite = make(map[string]map[string]int64)
				}
				s.PerSite[fmt.Sprintf("site%d", site)] = m
			}
		}
	}
	for id := HistID(0); id < histCount; id++ {
		if r.hists[id].Count() > 0 {
			s.Hists = append(s.Hists, r.hists[id].snapshot(id.String()))
		}
	}
	return s
}

// WriteTo prints a human-readable dump of every non-zero counter
// (totals plus per-site breakdown) and every non-empty histogram, in
// deterministic order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var written int64
	pf := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		written += int64(n)
		return err
	}
	s := r.Snapshot()
	names := make([]string, 0, len(s.Totals))
	for name, v := range s.Totals {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		if err := pf("metrics: no events recorded\n"); err != nil {
			return written, err
		}
		return written, nil
	}
	sites := make([]string, 0, len(s.PerSite))
	for site := range s.PerSite {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool {
		return len(sites[i]) < len(sites[j]) || (len(sites[i]) == len(sites[j]) && sites[i] < sites[j])
	})
	for _, name := range names {
		if err := pf("%-24s %12d", name, s.Totals[name]); err != nil {
			return written, err
		}
		parts := ""
		for _, site := range sites {
			if v, ok := s.PerSite[site][name]; ok {
				parts += fmt.Sprintf(" %s=%d", site, v)
			}
		}
		if err := pf("  %s\n", parts); err != nil {
			return written, err
		}
	}
	for _, hs := range s.Hists {
		if err := pf("%s: n=%d mean=%.1f max=%d\n", hs.Name, hs.Count, hs.Mean, hs.Max); err != nil {
			return written, err
		}
		for i, b := range hs.Bounds {
			label := fmt.Sprintf("≤%d", b)
			if b == -1 {
				label = fmt.Sprintf(">%d", histLowBound(hs.Name))
			}
			if err := pf("  %-16s %d\n", label, hs.Buckets[i]); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// histLowBound recovers a histogram's largest finite bucket bound from
// its name, for labeling the overflow bucket in dumps.
func histLowBound(name string) int64 {
	for id := HistID(0); id < histCount; id++ {
		if id.String() == name {
			return histLow[id] << (histBucketCount - 1)
		}
	}
	return 0
}
