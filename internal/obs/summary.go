package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Summary aggregates a trace: per-type event counts, per-kind message
// counts, per-page activity, and the span of time covered. It is the
// data behind `miragetrace summarize`.
type Summary struct {
	Events    int
	Span      time.Duration
	ByType    map[EvType]int
	ByKind    map[string]int // message kind name → sends
	Pages     []PageSummary
	Denials   int
	DenialSum time.Duration // total remaining-window time across denials
	DenialMax time.Duration
}

// PageSummary is one page's activity totals within a trace.
type PageSummary struct {
	Seg, Page  int32
	Faults     int
	Grants     int
	Upgrades   int
	Downgrades int
	Denials    int
}

// Summarize reduces a trace to its Summary.
func Summarize(events []Event) Summary {
	s := Summary{ByType: make(map[EvType]int), ByKind: make(map[string]int)}
	pages := make(map[[2]int32]*PageSummary)
	page := func(ev Event) *PageSummary {
		k := [2]int32{ev.Seg, ev.Page}
		p := pages[k]
		if p == nil {
			p = &PageSummary{Seg: ev.Seg, Page: ev.Page}
			pages[k] = p
		}
		return p
	}
	for _, ev := range events {
		s.Events++
		if ev.T > s.Span {
			s.Span = ev.T
		}
		s.ByType[ev.Type]++
		switch ev.Type {
		case EvMsgSend:
			s.ByKind[ev.Kind.String()]++
		case EvFault:
			page(ev).Faults++
		case EvGrantStart:
			page(ev).Grants++
		case EvUpgrade:
			page(ev).Upgrades++
		case EvDowngrade:
			page(ev).Downgrades++
		case EvDeltaDeny:
			page(ev).Denials++
			s.Denials++
			rem := time.Duration(ev.Arg)
			s.DenialSum += rem
			if rem > s.DenialMax {
				s.DenialMax = rem
			}
		}
	}
	for _, p := range pages {
		s.Pages = append(s.Pages, *p)
	}
	sort.Slice(s.Pages, func(i, j int) bool {
		if s.Pages[i].Seg != s.Pages[j].Seg {
			return s.Pages[i].Seg < s.Pages[j].Seg
		}
		return s.Pages[i].Page < s.Pages[j].Page
	})
	return s
}

// WriteTo prints the summary in a fixed human-readable layout.
func (s Summary) WriteTo(w io.Writer) (int64, error) {
	var written int64
	pf := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		written += int64(n)
		return err
	}
	if err := pf("%d events over %v\n", s.Events, s.Span.Round(time.Millisecond)); err != nil {
		return written, err
	}
	for t := EvInvalid + 1; t < evTypeCount; t++ {
		if n := s.ByType[t]; n > 0 {
			if err := pf("  %-12s %d\n", t.String(), n); err != nil {
				return written, err
			}
		}
	}
	if len(s.ByKind) > 0 {
		if err := pf("message sends by kind:\n"); err != nil {
			return written, err
		}
		kinds := make([]string, 0, len(s.ByKind))
		for k := range s.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			if err := pf("  %-12s %d\n", k, s.ByKind[k]); err != nil {
				return written, err
			}
		}
	}
	if len(s.Pages) > 0 {
		if err := pf("per-page activity:\n"); err != nil {
			return written, err
		}
		for _, p := range s.Pages {
			if err := pf("  seg%d/p%d: %d faults, %d grants, %d upgrades, %d downgrades, %d Δ-denials\n",
				p.Seg, p.Page, p.Faults, p.Grants, p.Upgrades, p.Downgrades, p.Denials); err != nil {
				return written, err
			}
		}
	}
	if s.Denials > 0 {
		mean := s.DenialSum / time.Duration(s.Denials)
		if err := pf("Δ denials: %d, mean remaining %v, max %v\n",
			s.Denials, mean.Round(10*time.Microsecond), s.DenialMax.Round(10*time.Microsecond)); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Timeline filters a trace to one page's events, in order. Pass
// seg = -1 or page = -1 to wildcard that coordinate.
func Timeline(events []Event, seg, page int32) []Event {
	var out []Event
	for _, ev := range events {
		if (seg < 0 || ev.Seg == seg) && (page < 0 || ev.Page == page) {
			out = append(out, ev)
		}
	}
	return out
}

// FormatEvent renders one event as a fixed-width timeline line.
func FormatEvent(ev Event) string {
	detail := ""
	switch ev.Type {
	case EvMsgSend, EvMsgRecv, EvRetransmit:
		detail = fmt.Sprintf("%s %d→%d", ev.Kind, ev.From, ev.To)
	case EvFault:
		if ev.Arg == 1 {
			detail = "write"
		} else {
			detail = "read"
		}
	case EvDeltaDeny, EvRetry:
		detail = fmt.Sprintf("remaining %v", time.Duration(ev.Arg).Round(10*time.Microsecond))
	case EvPageState:
		switch ev.Arg {
		case 2:
			detail = "write"
		case 1:
			detail = "read"
		default:
			detail = "invalid"
		}
	case EvGrantStart:
		if ev.Arg == 1 {
			detail = fmt.Sprintf("write → site %d", ev.To)
		} else {
			detail = "read batch"
		}
	case EvChaos:
		switch ev.Arg {
		case ChaosDup:
			detail = "dup"
		case ChaosDelay:
			detail = "delay"
		case ChaosPartition:
			detail = "partition"
		case ChaosCrash:
			detail = "crash"
		default:
			detail = "drop"
		}
	}
	line := fmt.Sprintf("%12v  site%-2d  seg%d/p%-3d  %-12s", ev.T, ev.Site, ev.Seg, ev.Page, ev.Type)
	if ev.Cycle != 0 {
		line += fmt.Sprintf("  [cycle %d]", ev.Cycle)
	}
	if detail != "" {
		line += "  " + detail
	}
	return line
}

// DenialBucket is one row of a Δ-denial remaining-time breakdown.
type DenialBucket struct {
	Upper time.Duration // inclusive upper bound; -1 duration = overflow
	Count int
}

// DenialBreakdown buckets EvDeltaDeny remaining times into the given
// number of equal-width buckets across [0, max remaining]. It answers
// the tuning question the paper's Δ discussion raises: how close were
// denied invalidations to the window expiring?
func DenialBreakdown(events []Event, buckets int) []DenialBucket {
	if buckets < 1 {
		buckets = 8
	}
	var rems []time.Duration
	var max time.Duration
	for _, ev := range events {
		if ev.Type == EvDeltaDeny {
			r := time.Duration(ev.Arg)
			rems = append(rems, r)
			if r > max {
				max = r
			}
		}
	}
	if len(rems) == 0 {
		return nil
	}
	width := max/time.Duration(buckets) + 1
	out := make([]DenialBucket, buckets)
	for i := range out {
		out[i].Upper = width * time.Duration(i+1)
	}
	for _, r := range rems {
		i := int(r / width)
		if i >= buckets {
			i = buckets - 1
		}
		out[i].Count++
	}
	return out
}
