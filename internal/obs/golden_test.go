package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenExports locks the exact bytes both exporters produce for a
// fixed event sequence. Any schema change must be deliberate: rerun
// with -update and bump SchemaVersion if the JSONL shape changed.
func TestGoldenExports(t *testing.T) {
	hdr := NewHeader(ClockVirtual, 2)
	events := sampleEvents()

	var jsonl, chrome bytes.Buffer
	if err := WriteJSONL(&jsonl, hdr, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&chrome, hdr, events); err != nil {
		t.Fatal(err)
	}

	check := func(name string, got []byte) {
		t.Helper()
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run `go test -run TestGoldenExports -update ./internal/obs`): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s", name, got, want)
		}
	}
	check("trace.jsonl", jsonl.Bytes())
	check("chrome.json", chrome.Bytes())

	// The golden trace must also read back cleanly.
	gotHdr, gotEvents, err := ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr != hdr || len(gotEvents) != len(events) {
		t.Fatalf("golden trace did not round-trip: %+v, %d events", gotHdr, len(gotEvents))
	}
}
