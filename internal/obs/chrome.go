package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteChrome exports events in Chrome's trace_event JSON format,
// loadable in chrome://tracing or https://ui.perfetto.dev. Each site
// maps to a process (pid); point events become instant events ("i")
// and library grant cycles become async spans ("b"/"e") correlated by
// cycle id, so a grant's full lifetime renders as a bar. Timestamps
// are microseconds from run start. The output is deterministic for a
// given event sequence.
func WriteChrome(w io.Writer, hdr Header, events []Event) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","otherData":{"schema":"` + headerSchema + `","clock":`)
	bw.WriteString(strconv.Quote(hdr.Clock))
	bw.WriteString(`,"sites":`)
	bw.WriteString(strconv.Itoa(hdr.Sites))
	bw.WriteString("},\n\"traceEvents\":[\n")
	var line []byte
	first := true
	emit := func() error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(line)
		return err
	}
	for _, ev := range events {
		line = line[:0]
		switch ev.Type {
		case EvGrantStart, EvGrantEnd:
			ph := byte('b')
			if ev.Type == EvGrantEnd {
				ph = 'e'
			}
			line = append(line, `{"name":"grant seg`...)
			line = strconv.AppendInt(line, int64(ev.Seg), 10)
			line = append(line, "/p"...)
			line = strconv.AppendInt(line, int64(ev.Page), 10)
			line = append(line, `","cat":"grant","ph":"`...)
			line = append(line, ph)
			line = append(line, `","id":`...)
			line = strconv.AppendUint(line, uint64(ev.Cycle), 10)
			line = appendChromeCommon(line, ev)
		default:
			line = append(line, `{"name":"`...)
			line = append(line, chromeName(ev)...)
			line = append(line, `","cat":"`...)
			line = append(line, chromeCat(ev.Type)...)
			line = append(line, `","ph":"i","s":"t"`...)
			line = appendChromeCommon(line, ev)
		}
		if err := emit(); err != nil {
			return err
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// appendChromeCommon appends ts/pid/tid/args and closes the object.
func appendChromeCommon(b []byte, ev Event) []byte {
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, ev.T.Microseconds(), 10)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(ev.Site), 10)
	b = append(b, `,"tid":0,"args":{"seg":`...)
	b = strconv.AppendInt(b, int64(ev.Seg), 10)
	b = append(b, `,"page":`...)
	b = strconv.AppendInt(b, int64(ev.Page), 10)
	b = append(b, `,"arg":`...)
	b = strconv.AppendInt(b, ev.Arg, 10)
	switch ev.Type {
	case EvMsgSend, EvMsgRecv, EvRetransmit, EvChaos:
		b = append(b, `,"from":`...)
		b = strconv.AppendInt(b, int64(ev.From), 10)
		b = append(b, `,"to":`...)
		b = strconv.AppendInt(b, int64(ev.To), 10)
	}
	b = append(b, "}}"...)
	return b
}

// chromeName picks the display name for an instant event.
func chromeName(ev Event) string {
	switch ev.Type {
	case EvMsgSend, EvMsgRecv, EvRetransmit:
		return ev.Type.String() + " " + ev.Kind.String()
	case EvFault:
		if ev.Arg == 1 {
			return "write-fault"
		}
		return "read-fault"
	case EvPageState:
		switch ev.Arg {
		case 2:
			return "page→write"
		case 1:
			return "page→read"
		default:
			return "page→invalid"
		}
	case EvChaos:
		switch ev.Arg {
		case ChaosDup:
			return "chaos dup"
		case ChaosDelay:
			return "chaos delay"
		case ChaosPartition:
			return "chaos partition"
		case ChaosCrash:
			return "chaos crash"
		default:
			return "chaos drop"
		}
	}
	return ev.Type.String()
}

// chromeCat groups event types into trace categories for filtering.
func chromeCat(t EvType) string {
	switch t {
	case EvFault, EvPageState, EvUpgrade, EvDowngrade:
		return "page"
	case EvMsgSend, EvMsgRecv:
		return "msg"
	case EvDeltaDeny, EvRetry:
		return "delta"
	case EvRetransmit:
		return "rel"
	case EvChaos:
		return "chaos"
	}
	return "proto"
}
