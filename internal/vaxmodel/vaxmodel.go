// Package vaxmodel centralizes the timing model calibrated from the
// Mirage paper (Fleisch & Popek 1989). The prototype ran on VAX 11/750s
// under Locus over 10 Mbit Ethernet; every constant here is traceable
// to a measurement or derivation in the paper (section references in
// the comments). All simulated costs are expressed in these terms so
// that changing the machine model is a one-file edit.
package vaxmodel

import "time"

// Page and segment geometry (§6.2).
const (
	// PageSize is the hardware page size used as the unit of coherence.
	PageSize = 512
	// MaxSegmentBytes is the largest segment allowed in the paper's
	// intersection of VAX memory configurations.
	MaxSegmentBytes = 128 * 1024
)

// Network cost model (Table 3, §7.1).
//
// A message's elapsed cost is charged in two halves: transmission
// elapsed at the sender and reception elapsed at the receiver, each
// covering protocol-layer processing and the network interface. Short
// (bufferless) messages cost 3.2 ms per side; a 1024-byte page message
// costs 7.5 ms per side. Between those, cost grows linearly with the
// payload: 12.9 ms measured for a short round trip (2×3.2 + 2×3.2 =
// 12.8 in the model) and 21.5 ms for 1 KB out, short back (7.5+7.5 +
// 3.2+3.2 = 21.4).
const (
	// ShortSideElapsed is the per-side elapsed time of a short message.
	ShortSideElapsed = 3200 * time.Microsecond
	// PageSideElapsed is the per-side elapsed time of a 1024-byte message.
	PageSideElapsed = 7500 * time.Microsecond
	// pageMsgBytes is the payload size PageSideElapsed corresponds to.
	pageMsgBytes = 1024
)

// MsgSideElapsed returns the per-side (tx or rx) elapsed cost of a
// message carrying payload bytes of data. Zero-payload messages are
// "short" messages; cost grows linearly to PageSideElapsed at 1024
// bytes and continues linearly beyond.
func MsgSideElapsed(payload int) time.Duration {
	if payload <= 0 {
		return ShortSideElapsed
	}
	extra := time.Duration(payload) * (PageSideElapsed - ShortSideElapsed) / pageMsgBytes
	return ShortSideElapsed + extra
}

// CPU-side protocol costs (Table 3, §7.2).
const (
	// ReadRequestService is the using site's CPU time to form and issue
	// a page request ("Using Site Read Request", 2.5 ms).
	ReadRequestService = 2500 * time.Microsecond
	// ServerRequestService is the library/server process time to handle
	// one incoming request (1.5 ms).
	ServerRequestService = 1500 * time.Microsecond
	// PageInstallService is the processing time to install a received
	// page (map frame, copy, unmap — "Processing Time", 2 ms).
	PageInstallService = 2 * time.Millisecond
	// InputInterruptService is the CPU charge at a site for servicing
	// one incoming protocol interrupt that installs, invalidates or
	// upgrades a page (§7.2 adds 9 ms for 6 such interrupts).
	InputInterruptService = 1500 * time.Microsecond
	// LocalFaultService is the cost of a fault serviced entirely by a
	// colocated library (§7.2 adds 3 ms for two local faults).
	LocalFaultService = 1500 * time.Microsecond
)

// Scheduler model (§6.2, §7.2, §7.3).
const (
	// ClockTick is the scheduling clock period (60 Hz line clock).
	ClockTick = 16667 * time.Microsecond
	// QuantumTicks is the scheduling quantum. §7.3: the Figure 7 curves
	// intersect at Δ=6, "the system's scheduling quantum".
	QuantumTicks = 6
	// RescheduleLatency approximates the delay before a process that
	// yielded the CPU runs again on a lightly loaded site. §7.3 observed
	// "sleeps of 33 msecs" (two ticks) per yield.
	RescheduleLatency = 2 * ClockTick
	// ContextSwitch is the dispatch cost of switching to a process,
	// excluding the per-page shared memory remap charge. Calibrated so
	// the single-site yield() ping-pong runs at the paper's ~166
	// cycles/second (§7.2).
	ContextSwitch = 1400 * time.Microsecond
	// YieldCost is the CPU cost of the yield() system call itself
	// (trap, scheduler pass), part of the same calibration.
	YieldCost = 1500 * time.Microsecond
	// KernelPreemptGrid is the period of the scheduler passes at which
	// a woken kernel server process preempts a computing user process
	// of interactive priority (three clock ticks; calibrated against
	// §7.3's yield-vs-busy-wait gap at Δ=2).
	KernelPreemptGrid = 3 * ClockTick
	// HogThreshold is the recent-usage fraction beyond which a process
	// counts as compute-bound: its decayed UNIX priority lets kernel
	// servers preempt it at the next clock tick.
	HogThreshold = 0.55
	// PriorityDecayTau is the horizon of the p_cpu usage decay.
	PriorityDecayTau = time.Second
	// RemapPerPage is the lazy remap cost per shared page on dispatch
	// (§6.2: measured 106–125 µs per 512-byte page).
	RemapPerPage = 115 * time.Microsecond
	// RemapPerPageMin and RemapPerPageMax bound the measured range.
	RemapPerPageMin = 106 * time.Microsecond
	RemapPerPageMax = 125 * time.Microsecond
)

// Quantum is the scheduling quantum as a duration.
const Quantum = QuantumTicks * ClockTick

// Application instruction costs (§8.0).
const (
	// SharedMemInstruction is the cost of one shared-memory read or
	// write instruction in the representative application's loop (the
	// loop does a read to test the termination condition and a write to
	// decrement, so one iteration costs two of these). Back-derived
	// from Figure 8's 115,000 read-write instructions/second peak at
	// Δ=600 ms with ~94% page utilization.
	SharedMemInstruction = 8200 * time.Nanosecond
	// SpinCheck is the cost of one busy-wait poll iteration (read,
	// compare, branch) in the worst-case application's wait loops.
	SpinCheck = 4 * time.Microsecond
	// LocalInstruction approximates a simple local VAX instruction.
	LocalInstruction = 1300 * time.Nanosecond
)

// Invalidation policy thresholds (§7.1).
const (
	// ShortRTT is the measured short-message round trip; the paper notes
	// an invalidation with less than this remaining in Δ should be
	// honored rather than retried (the prototype did not implement it).
	ShortRTT = 12900 * time.Microsecond
)
