package vaxmodel

import (
	"testing"
	"time"
)

// The model must reproduce the paper's §7.1 component measurements.

func TestShortRoundTripMatchesPaper(t *testing.T) {
	// Short message out and short reply back: 4 message sides.
	rtt := 4 * MsgSideElapsed(0)
	if rtt < 12*time.Millisecond || rtt > 13*time.Millisecond {
		t.Fatalf("short RTT model = %v, paper measured 12.9 ms", rtt)
	}
}

func TestPagePlusShortReplyMatchesPaper(t *testing.T) {
	// 1024-byte message out, short response back: 21.5 ms measured.
	e := 2*MsgSideElapsed(1024) + 2*MsgSideElapsed(0)
	if e < 21*time.Millisecond || e > 22*time.Millisecond {
		t.Fatalf("1KB+short model = %v, paper measured 21.5 ms", e)
	}
}

func TestMsgSideElapsedMonotonic(t *testing.T) {
	prev := time.Duration(0)
	for _, n := range []int{0, 1, 64, 128, 512, 1024, 2048} {
		e := MsgSideElapsed(n)
		if e < prev {
			t.Fatalf("MsgSideElapsed not monotonic at %d: %v < %v", n, e, prev)
		}
		prev = e
	}
}

func TestMsgSideElapsedEndpoints(t *testing.T) {
	if MsgSideElapsed(0) != ShortSideElapsed {
		t.Fatalf("short side = %v", MsgSideElapsed(0))
	}
	if MsgSideElapsed(1024) != PageSideElapsed {
		t.Fatalf("1024B side = %v", MsgSideElapsed(1024))
	}
	if MsgSideElapsed(-5) != ShortSideElapsed {
		t.Fatalf("negative payload should be short: %v", MsgSideElapsed(-5))
	}
}

func TestTable3TotalElapsed(t *testing.T) {
	// Table 3: total elapsed time to obtain an in-memory page remotely
	// is 27.5 ms: 2.5 request service + 3.2 request tx + 3.2 request rx
	// + 1.5 server + 7.5 page tx + 7.5 page rx + 2 install.
	total := ReadRequestService +
		MsgSideElapsed(0) + MsgSideElapsed(0) +
		ServerRequestService +
		MsgSideElapsed(1024) + MsgSideElapsed(1024) +
		PageInstallService
	if total < 27*time.Millisecond || total > 28*time.Millisecond {
		t.Fatalf("Table 3 total = %v, paper reports 27.5 ms", total)
	}
}

func TestQuantumIsSixTicks(t *testing.T) {
	if Quantum != 6*ClockTick {
		t.Fatalf("Quantum = %v, want 6 ticks", Quantum)
	}
	// ~100 ms on a 60 Hz clock.
	if Quantum < 99*time.Millisecond || Quantum > 101*time.Millisecond {
		t.Fatalf("Quantum = %v, want ~100 ms", Quantum)
	}
}

func TestRescheduleLatencyIs33ms(t *testing.T) {
	if RescheduleLatency < 33*time.Millisecond || RescheduleLatency > 34*time.Millisecond {
		t.Fatalf("RescheduleLatency = %v, paper observed 33 ms sleeps", RescheduleLatency)
	}
}

func TestRemapWithinMeasuredRange(t *testing.T) {
	if RemapPerPage < RemapPerPageMin || RemapPerPage > RemapPerPageMax {
		t.Fatalf("RemapPerPage %v outside measured range [%v,%v]",
			RemapPerPage, RemapPerPageMin, RemapPerPageMax)
	}
}

func TestGeometry(t *testing.T) {
	if PageSize != 512 {
		t.Fatalf("PageSize = %d, paper uses 512", PageSize)
	}
	if MaxSegmentBytes%PageSize != 0 {
		t.Fatal("MaxSegmentBytes must be page aligned")
	}
	if MaxSegmentBytes/PageSize != 256 {
		t.Fatalf("128K segment should be 256 pages, got %d", MaxSegmentBytes/PageSize)
	}
}

func TestWorstCaseRawCommunicationBound(t *testing.T) {
	// §7.2: "With 2 sites, 9 messages are sent for one cycle... Three of
	// these messages are large responses (1024 bytes); the other 6 are
	// short. Based on the component timings, the raw communications
	// component should be 84 msec."
	raw := 3*2*MsgSideElapsed(1024) + 6*2*MsgSideElapsed(0)
	if raw < 83*time.Millisecond || raw > 85*time.Millisecond {
		t.Fatalf("raw comm for 9 msgs (3 large) = %v, paper derives 84 ms", raw)
	}
	// Adding 12.5 ms (5 request interrupts at 2.5), 9 ms (6 input
	// interrupts at 1.5) and 3 ms (2 local faults) gives ~109 ms.
	total := raw + 5*ReadRequestService + 6*InputInterruptService + 2*LocalFaultService
	if total < 107*time.Millisecond || total > 111*time.Millisecond {
		t.Fatalf("cycle bound = %v, paper derives 109 ms", total)
	}
}
