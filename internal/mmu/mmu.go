// Package mmu models the memory-management hardware and kernel tables
// Mirage layers its protocol on (paper §6.2).
//
// For each shared segment a site keeps:
//
//   - a master page-table: one PTE per page with a valid bit and a
//     protection bit (read-only or read-write), exactly the state the
//     VAX hardware consults;
//   - an auxiliary parallel page table (auxpte, Table 2): per page,
//     the reader mask, the current writer site, the page's time window
//     in ticks (Δ), and the installation time at this site;
//   - the page frames themselves, for pages present at the site.
//
// Processes attach segments into address spaces managed by the ipc
// package; each attached process carries a copy of the master PTEs
// refreshed lazily at dispatch (§6.2), which the sched layer charges
// as remap cost. Coherence checks consult the master table: in the
// paper every path from a master-table change back to user mode passes
// through the scheduler's remap, so user code never observes a stale
// process PTE.
package mmu

import (
	"fmt"
	"time"
)

// Prot is a page protection level.
type Prot uint8

const (
	// Invalid marks a page not present at this site.
	Invalid Prot = iota
	// ReadOnly marks a readable copy.
	ReadOnly
	// ReadWrite marks the (single) writable copy.
	ReadWrite
)

func (p Prot) String() string {
	switch p {
	case Invalid:
		return "invalid"
	case ReadOnly:
		return "read-only"
	case ReadWrite:
		return "read-write"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// FaultType classifies a page fault, which the VAX reports (and the
// modified Locus interrupt service routine passes through, §6.2).
type FaultType uint8

const (
	// NoFault means the access is permitted by the current PTE.
	NoFault FaultType = iota
	// ReadFault is an access to a page not present at the site.
	ReadFault
	// WriteFault is a write to a page that is absent or read-only.
	WriteFault
)

func (f FaultType) String() string {
	switch f {
	case NoFault:
		return "none"
	case ReadFault:
		return "read-fault"
	case WriteFault:
		return "write-fault"
	}
	return fmt.Sprintf("FaultType(%d)", uint8(f))
}

// PTE is one master page-table entry.
type PTE struct {
	Prot Prot
}

// AuxPTE is one auxiliary parallel page table entry (paper Table 2).
type AuxPTE struct {
	ReaderMask  Copyset       // set of sites using this page
	Writer      int           // current writer site, or NoWriter
	Window      time.Duration // Δ allocated for this page ("window ticks")
	InstallTime time.Duration // installation time of this page at this site
}

// NoWriter is the AuxPTE.Writer value when no site holds a writable copy.
const NoWriter = -1

// Seg is the per-site MMU state for one segment.
type Seg struct {
	pageSize int
	pte      []PTE
	aux      []AuxPTE
	frames   [][]byte
}

// NewSeg creates MMU state for a segment of npages pages.
func NewSeg(npages, pageSize int) *Seg {
	if npages <= 0 || pageSize <= 0 {
		panic(fmt.Sprintf("mmu: bad geometry %d x %d", npages, pageSize))
	}
	s := &Seg{
		pageSize: pageSize,
		pte:      make([]PTE, npages),
		aux:      make([]AuxPTE, npages),
		frames:   make([][]byte, npages),
	}
	for i := range s.aux {
		s.aux[i].Writer = NoWriter
	}
	return s
}

// Pages returns the number of pages.
func (s *Seg) Pages() int { return len(s.pte) }

// PageSize returns the page size in bytes.
func (s *Seg) PageSize() int { return s.pageSize }

// Prot returns the current protection of page p.
func (s *Seg) Prot(p int) Prot { return s.pte[p].Prot }

// Aux returns a pointer to page p's auxpte for inspection or update.
func (s *Seg) Aux(p int) *AuxPTE { return &s.aux[p] }

// Check classifies an access against the master page table without
// performing it.
func (s *Seg) Check(p int, write bool) FaultType {
	switch s.pte[p].Prot {
	case ReadWrite:
		return NoFault
	case ReadOnly:
		if write {
			return WriteFault
		}
		return NoFault
	default:
		if write {
			return WriteFault
		}
		return ReadFault
	}
}

// Frame returns the frame backing page p, or nil when the page is not
// present. Callers must respect the protection; the protocol engine is
// the only writer of invalid/RO frames.
func (s *Seg) Frame(p int) []byte { return s.frames[p] }

// Install maps page p at this site with protection prot and contents
// data (copied; nil means zero-filled), recording the install time for
// the Δ clock check. Installing with Invalid protection is a model bug.
func (s *Seg) Install(p int, data []byte, prot Prot, now time.Duration) {
	if prot == Invalid {
		panic("mmu: Install with Invalid protection")
	}
	if s.frames[p] == nil {
		s.frames[p] = make([]byte, s.pageSize)
	}
	if data != nil {
		if len(data) != s.pageSize {
			panic(fmt.Sprintf("mmu: install %d bytes into %d-byte page", len(data), s.pageSize))
		}
		copy(s.frames[p], data)
	} else {
		for i := range s.frames[p] {
			s.frames[p][i] = 0
		}
	}
	s.pte[p].Prot = prot
	s.aux[p].InstallTime = now
}

// Invalidate unmaps page p and discards the frame. It returns the old
// contents so a caller forwarding the page (invalidated writer sending
// its data to the new writer) can use them without an extra copy.
func (s *Seg) Invalidate(p int) []byte {
	f := s.frames[p]
	s.frames[p] = nil
	s.pte[p].Prot = Invalid
	return f
}

// Downgrade reduces a read-write page to read-only, retaining the
// frame (optimization 2, §6.1). Downgrading a non-writable page is a
// protocol bug and panics.
func (s *Seg) Downgrade(p int, now time.Duration) {
	if s.pte[p].Prot != ReadWrite {
		panic(fmt.Sprintf("mmu: downgrade of %v page %d", s.pte[p].Prot, p))
	}
	s.pte[p].Prot = ReadOnly
	s.aux[p].InstallTime = now
}

// Upgrade raises a read-only page to read-write in place (optimization
// 1: a reader becoming writer receives no page copy). Upgrading a page
// that is not read-only panics.
func (s *Seg) Upgrade(p int, now time.Duration) {
	if s.pte[p].Prot != ReadOnly {
		panic(fmt.Sprintf("mmu: upgrade of %v page %d", s.pte[p].Prot, p))
	}
	s.pte[p].Prot = ReadWrite
	s.aux[p].InstallTime = now
}

// Present reports whether page p has a frame at this site.
func (s *Seg) Present(p int) bool { return s.pte[p].Prot != Invalid }

// PresentCount returns how many pages are present at this site.
func (s *Seg) PresentCount() int {
	n := 0
	for i := range s.pte {
		if s.pte[i].Prot != Invalid {
			n++
		}
	}
	return n
}

// WindowExpired reports whether page p's Δ window has elapsed at time
// now. A zero window is always expired.
func (s *Seg) WindowExpired(p int, now time.Duration) bool {
	a := &s.aux[p]
	return now >= a.InstallTime+a.Window
}

// WindowRemaining returns how much of page p's Δ window remains at
// time now (zero if expired).
func (s *Seg) WindowRemaining(p int, now time.Duration) time.Duration {
	a := &s.aux[p]
	rem := a.InstallTime + a.Window - now
	if rem < 0 {
		return 0
	}
	return rem
}
