package mmu

import "testing"

// Inline vs spilled representation microbenches: the inline form
// covers the paper's common case (§7.2, a handful of readers); the
// spilled bitmap covers 100-1000-site fan-out.

func BenchmarkCopysetAddInline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := Copyset{}
		c = c.Add(3).Add(1).Add(5).Add(2)
		if c.Count() != 4 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkCopysetAddSpilled(b *testing.B) {
	base := CopysetOf(0, 100, 200, 300, 400, 500, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := base.Add(700)
		if c.Count() != 8 {
			b.Fatal("bad count")
		}
	}
}

func benchIterate(b *testing.B, c Copyset) {
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		c.ForEach(func(s int) { sum += s })
	}
	_ = sum
}

func BenchmarkCopysetIterateInline(b *testing.B) {
	benchIterate(b, CopysetOf(1, 2, 3, 4, 5))
}

func BenchmarkCopysetIterateSpilled1000(b *testing.B) {
	c := Copyset{}
	for s := 0; s < 1000; s++ {
		c = c.Add(s)
	}
	benchIterate(b, c)
}

func BenchmarkCopysetHasInline(b *testing.B) {
	c := CopysetOf(1, 2, 3, 4, 5)
	for i := 0; i < b.N; i++ {
		if !c.Has(3) || c.Has(9) {
			b.Fatal("bad membership")
		}
	}
}

func BenchmarkCopysetHasSpilled(b *testing.B) {
	c := Copyset{}
	for s := 0; s < 1000; s++ {
		c = c.Add(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Has(999) || c.Has(2000) {
			b.Fatal("bad membership")
		}
	}
}

func BenchmarkCopysetWireEncode1000(b *testing.B) {
	c := Copyset{}
	for s := 0; s < 1000; s++ {
		c = c.Add(s)
	}
	buf := make([]byte, 0, MaxCopysetWireLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendWire(buf[:0])
	}
	_ = buf
}
