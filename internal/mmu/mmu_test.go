package mmu

import (
	"testing"
	"time"
)

func newSeg() *Seg { return NewSeg(4, 512) }

func TestNewSegInitialState(t *testing.T) {
	s := newSeg()
	if s.Pages() != 4 || s.PageSize() != 512 {
		t.Fatalf("geometry %d x %d", s.Pages(), s.PageSize())
	}
	for p := 0; p < 4; p++ {
		if s.Prot(p) != Invalid {
			t.Fatalf("page %d prot = %v", p, s.Prot(p))
		}
		if s.Present(p) {
			t.Fatalf("page %d present", p)
		}
		if s.Aux(p).Writer != NoWriter {
			t.Fatalf("page %d writer = %d", p, s.Aux(p).Writer)
		}
	}
	if s.PresentCount() != 0 {
		t.Fatal("fresh seg has present pages")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeg(0, 512)
}

func TestCheckFaultTypes(t *testing.T) {
	s := newSeg()
	if s.Check(0, false) != ReadFault {
		t.Fatalf("invalid read: %v", s.Check(0, false))
	}
	if s.Check(0, true) != WriteFault {
		t.Fatalf("invalid write: %v", s.Check(0, true))
	}
	s.Install(0, nil, ReadOnly, 0)
	if s.Check(0, false) != NoFault {
		t.Fatal("RO read should not fault")
	}
	if s.Check(0, true) != WriteFault {
		t.Fatal("RO write should write-fault")
	}
	s.Upgrade(0, 0)
	if s.Check(0, false) != NoFault || s.Check(0, true) != NoFault {
		t.Fatal("RW access should not fault")
	}
}

func TestInstallCopiesData(t *testing.T) {
	s := newSeg()
	data := make([]byte, 512)
	data[0], data[511] = 0xAB, 0xCD
	s.Install(1, data, ReadWrite, 7*time.Millisecond)
	data[0] = 0 // mutate source; frame must hold the copy
	f := s.Frame(1)
	if f[0] != 0xAB || f[511] != 0xCD {
		t.Fatalf("frame = %x..%x", f[0], f[511])
	}
	if s.Aux(1).InstallTime != 7*time.Millisecond {
		t.Fatalf("install time = %v", s.Aux(1).InstallTime)
	}
}

func TestInstallNilZeroFills(t *testing.T) {
	s := newSeg()
	s.Install(0, nil, ReadWrite, 0)
	f := s.Frame(0)
	f[5] = 9
	// Reinstall with nil must zero the recycled frame.
	s.Install(0, nil, ReadOnly, 0)
	if s.Frame(0)[5] != 0 {
		t.Fatal("reinstall with nil did not zero the frame")
	}
}

func TestInstallWrongSizePanics(t *testing.T) {
	s := newSeg()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Install(0, make([]byte, 100), ReadOnly, 0)
}

func TestInstallInvalidProtPanics(t *testing.T) {
	s := newSeg()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Install(0, nil, Invalid, 0)
}

func TestInvalidateReturnsOldContents(t *testing.T) {
	s := newSeg()
	data := make([]byte, 512)
	data[3] = 0x7E
	s.Install(2, data, ReadWrite, 0)
	old := s.Invalidate(2)
	if old[3] != 0x7E {
		t.Fatal("invalidate lost contents")
	}
	if s.Present(2) || s.Frame(2) != nil || s.Prot(2) != Invalid {
		t.Fatal("page still mapped after invalidate")
	}
}

func TestDowngradeKeepsFrame(t *testing.T) {
	s := newSeg()
	data := make([]byte, 512)
	data[9] = 1
	s.Install(0, data, ReadWrite, 0)
	s.Downgrade(0, 50*time.Millisecond)
	if s.Prot(0) != ReadOnly {
		t.Fatalf("prot = %v", s.Prot(0))
	}
	if s.Frame(0)[9] != 1 {
		t.Fatal("downgrade discarded frame")
	}
	if s.Aux(0).InstallTime != 50*time.Millisecond {
		t.Fatal("downgrade must restart the window clock")
	}
}

func TestDowngradeNonWriterPanics(t *testing.T) {
	s := newSeg()
	s.Install(0, nil, ReadOnly, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Downgrade(0, 0)
}

func TestUpgradeInPlace(t *testing.T) {
	s := newSeg()
	data := make([]byte, 512)
	data[100] = 42
	s.Install(0, data, ReadOnly, 0)
	s.Upgrade(0, 99*time.Millisecond)
	if s.Prot(0) != ReadWrite {
		t.Fatalf("prot = %v", s.Prot(0))
	}
	if s.Frame(0)[100] != 42 {
		t.Fatal("upgrade must not touch data (optimization 1)")
	}
	if s.Aux(0).InstallTime != 99*time.Millisecond {
		t.Fatal("upgrade must restart the window clock")
	}
}

func TestUpgradeInvalidPanics(t *testing.T) {
	s := newSeg()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Upgrade(0, 0)
}

func TestWindowExpiry(t *testing.T) {
	s := newSeg()
	s.Install(0, nil, ReadWrite, 100*time.Millisecond)
	s.Aux(0).Window = 30 * time.Millisecond
	if s.WindowExpired(0, 110*time.Millisecond) {
		t.Fatal("window should be live at +10ms")
	}
	if got := s.WindowRemaining(0, 110*time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("remaining = %v", got)
	}
	if !s.WindowExpired(0, 130*time.Millisecond) {
		t.Fatal("window should expire exactly at +30ms")
	}
	if got := s.WindowRemaining(0, 200*time.Millisecond); got != 0 {
		t.Fatalf("remaining after expiry = %v", got)
	}
}

func TestZeroWindowAlwaysExpired(t *testing.T) {
	s := newSeg()
	s.Install(0, nil, ReadWrite, 5*time.Millisecond)
	if !s.WindowExpired(0, 5*time.Millisecond) {
		t.Fatal("Δ=0 must be expired immediately")
	}
}

func TestPresentCount(t *testing.T) {
	s := newSeg()
	s.Install(0, nil, ReadOnly, 0)
	s.Install(3, nil, ReadWrite, 0)
	if s.PresentCount() != 2 {
		t.Fatalf("present = %d", s.PresentCount())
	}
	s.Invalidate(0)
	if s.PresentCount() != 1 {
		t.Fatalf("present = %d", s.PresentCount())
	}
}

func TestProtAndFaultStrings(t *testing.T) {
	cases := map[string]string{
		Invalid.String():    "invalid",
		ReadOnly.String():   "read-only",
		ReadWrite.String():  "read-write",
		NoFault.String():    "none",
		ReadFault.String():  "read-fault",
		WriteFault.String(): "write-fault",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("got %q want %q", got, want)
		}
	}
	if Prot(9).String() == "" || FaultType(9).String() == "" {
		t.Fatal("unknown values must still render")
	}
}
