package mmu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// MaxSites is the largest site ID a Copyset can hold, plus one. The
// Mirage prototype ran on 3 VAXs and the first cut of this repo used a
// uint64 mask ("64 sites is ample" — it was not); copysets now carry
// 16-bit members so clusters scale to tens of thousands of simulated
// sites.
const MaxSites = 1 << 16

// ErrTooManySites is returned wherever a cluster is sized beyond what
// a Copyset can represent. Sizing is validated up front so that site
// IDs never silently truncate inside the protocol.
var ErrTooManySites = errors.New("too many sites: copysets hold at most 65536 sites")

// inlineSites is the member capacity of the inline representation.
// Mirage sharing is narrow in the common case (§7.2 measures a
// handful of readers per page), so small sets must stay heap-free.
const inlineSites = 6

// Copyset is a set of site IDs, used as the auxpte "reader mask"
// (paper Table 2), in every per-page library record, and on the wire.
// It replaces the old uint64 SiteMask.
//
// It is a value type with copy-on-write spill storage: every method
// returns a new set and never mutates shared state, so a Copyset may
// be copied, stored, and compared like the integer mask it replaces.
//
// Representation: up to inlineSites members live in a small sorted
// array with no heap storage; larger sets spill to a bitmap of 64-site
// words. Both forms are kept canonical — spill != nil exactly when
// Count() > inlineSites, inline members sorted and zero-padded, spill
// trailing zero words trimmed — so reflect.DeepEqual agrees with
// Equal.
type Copyset struct {
	n      int32
	inline [inlineSites]uint16
	spill  []uint64
}

// CopysetOf builds a Copyset from site IDs.
func CopysetOf(sites ...int) Copyset {
	var c Copyset
	for _, s := range sites {
		c = c.Add(s)
	}
	return c
}

// CopysetFromWords builds a Copyset from a bitmap of 64-site words
// (site s lives at word s>>6, bit s&63). It takes ownership of words
// and canonicalizes: trailing zero words are trimmed and small results
// collapse to the inline form. Words beyond MaxSites/64 are ignored.
func CopysetFromWords(words []uint64) Copyset {
	if len(words) > MaxSites/64 {
		words = words[:MaxSites/64]
	}
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	if n == 0 {
		return Copyset{}
	}
	if n <= inlineSites {
		var c Copyset
		for w, v := range words {
			for v != 0 {
				b := bits.TrailingZeros64(v)
				c.inline[c.n] = uint16(w<<6 + b)
				c.n++
				v &^= 1 << uint(b)
			}
		}
		return c
	}
	i := len(words)
	for i > 0 && words[i-1] == 0 {
		i--
	}
	return Copyset{n: int32(n), spill: words[:i]}
}

// inlineIndex returns the position of s among the sorted inline
// members, or the index it would be inserted at.
func (c *Copyset) inlineIndex(s int) int {
	i := 0
	for i < int(c.n) && int(c.inline[i]) < s {
		i++
	}
	return i
}

// Add returns c with site s added. Site IDs outside [0, MaxSites)
// indicate a sizing bug upstream — cluster construction rejects such
// clusters with ErrTooManySites — and panic here.
func (c Copyset) Add(s int) Copyset {
	if s < 0 || s >= MaxSites {
		panic(fmt.Sprintf("mmu: site %d outside copyset range [0,%d)", s, MaxSites))
	}
	if c.spill == nil {
		i := c.inlineIndex(s)
		if i < int(c.n) && c.inline[i] == uint16(s) {
			return c
		}
		if c.n < inlineSites {
			copy(c.inline[i+1:c.n+1], c.inline[i:c.n])
			c.inline[i] = uint16(s)
			c.n++
			return c
		}
		return c.spillAdd(s)
	}
	w, b := s>>6, uint(s&63)
	if w < len(c.spill) && c.spill[w]&(1<<b) != 0 {
		return c
	}
	nw := len(c.spill)
	if w >= nw {
		nw = w + 1
	}
	words := make([]uint64, nw)
	copy(words, c.spill)
	words[w] |= 1 << b
	return Copyset{n: c.n + 1, spill: words}
}

// spillAdd converts a full inline set plus one new member to spill
// form.
func (c Copyset) spillAdd(s int) Copyset {
	max := s
	if m := int(c.inline[c.n-1]); m > max {
		max = m
	}
	words := make([]uint64, max>>6+1)
	for i := 0; i < int(c.n); i++ {
		m := int(c.inline[i])
		words[m>>6] |= 1 << uint(m&63)
	}
	words[s>>6] |= 1 << uint(s&63)
	return Copyset{n: c.n + 1, spill: words}
}

// Remove returns c with site s removed. Removing an absent (or
// out-of-range) site is a no-op.
func (c Copyset) Remove(s int) Copyset {
	if s < 0 || s >= MaxSites {
		return c
	}
	if c.spill == nil {
		i := c.inlineIndex(s)
		if i >= int(c.n) || c.inline[i] != uint16(s) {
			return c
		}
		copy(c.inline[i:], c.inline[i+1:int(c.n)])
		c.n--
		c.inline[c.n] = 0
		return c
	}
	w, b := s>>6, uint(s&63)
	if w >= len(c.spill) || c.spill[w]&(1<<b) == 0 {
		return c
	}
	if int(c.n)-1 <= inlineSites {
		var out Copyset
		c.forEachSpill(func(m int) {
			if m != s {
				out.inline[out.n] = uint16(m)
				out.n++
			}
		})
		return out
	}
	words := make([]uint64, len(c.spill))
	copy(words, c.spill)
	words[w] &^= 1 << b
	i := len(words)
	for i > 0 && words[i-1] == 0 {
		i--
	}
	return Copyset{n: c.n - 1, spill: words[:i]}
}

// Has reports whether site s is in the set.
func (c Copyset) Has(s int) bool {
	if s < 0 || s >= MaxSites {
		return false
	}
	if c.spill == nil {
		for i := 0; i < int(c.n); i++ {
			if int(c.inline[i]) == s {
				return true
			}
		}
		return false
	}
	w := s >> 6
	return w < len(c.spill) && c.spill[w]&(1<<uint(s&63)) != 0
}

// Count returns the number of sites in the set.
func (c Copyset) Count() int { return int(c.n) }

// Empty reports whether the set has no sites.
func (c Copyset) Empty() bool { return c.n == 0 }

// Sites returns the members in ascending order.
func (c Copyset) Sites() []int {
	out := make([]int, 0, c.n)
	c.ForEach(func(s int) { out = append(out, s) })
	return out
}

// ForEach calls fn for each member in ascending order.
func (c Copyset) ForEach(fn func(s int)) {
	if c.spill == nil {
		for i := 0; i < int(c.n); i++ {
			fn(int(c.inline[i]))
		}
		return
	}
	c.forEachSpill(fn)
}

func (c Copyset) forEachSpill(fn func(s int)) {
	for w, v := range c.spill {
		for v != 0 {
			b := bits.TrailingZeros64(v)
			fn(w<<6 + b)
			v &^= 1 << uint(b)
		}
	}
}

// Union returns the set of sites in either c or o.
func (c Copyset) Union(o Copyset) Copyset {
	if o.Empty() {
		return c
	}
	if c.Empty() {
		return o
	}
	if c.spill == nil && o.spill == nil {
		out := c
		for i := 0; i < int(o.n); i++ {
			out = out.Add(int(o.inline[i]))
		}
		return out
	}
	words := make([]uint64, c.maxWord()+1)
	if m := o.maxWord(); m >= len(words) {
		grown := make([]uint64, m+1)
		copy(grown, words)
		words = grown
	}
	set := func(s int) { words[s>>6] |= 1 << uint(s&63) }
	c.ForEach(set)
	o.ForEach(set)
	return CopysetFromWords(words)
}

// Subtract returns the sites in c that are not in o.
func (c Copyset) Subtract(o Copyset) Copyset {
	if c.Empty() || o.Empty() {
		return c
	}
	if c.spill == nil {
		var out Copyset
		for i := 0; i < int(c.n); i++ {
			if !o.Has(int(c.inline[i])) {
				out.inline[out.n] = c.inline[i]
				out.n++
			}
		}
		return out
	}
	words := make([]uint64, len(c.spill))
	copy(words, c.spill)
	o.ForEach(func(s int) {
		if w := s >> 6; w < len(words) {
			words[w] &^= 1 << uint(s&63)
		}
	})
	return CopysetFromWords(words)
}

// Intersect returns the sites present in both c and o.
func (c Copyset) Intersect(o Copyset) Copyset {
	if c.Empty() || o.Empty() {
		return Copyset{}
	}
	if c.spill == nil {
		var out Copyset
		for i := 0; i < int(c.n); i++ {
			if o.Has(int(c.inline[i])) {
				out.inline[out.n] = c.inline[i]
				out.n++
			}
		}
		return out
	}
	words := make([]uint64, len(c.spill))
	o.ForEach(func(s int) {
		if w := s >> 6; w < len(words) {
			words[w] |= c.spill[w] & (1 << uint(s&63))
		}
	})
	return CopysetFromWords(words)
}

// Equal reports whether c and o contain the same sites.
func (c Copyset) Equal(o Copyset) bool {
	if c.n != o.n {
		return false
	}
	if c.spill == nil {
		return o.spill == nil && c.inline == o.inline
	}
	if o.spill == nil || len(c.spill) != len(o.spill) {
		return false
	}
	for i := range c.spill {
		if c.spill[i] != o.spill[i] {
			return false
		}
	}
	return true
}

// Spilled reports whether the set uses the bitmap representation
// (more than inlineSites members).
func (c Copyset) Spilled() bool { return c.spill != nil }

// Words returns the spill bitmap (site s at word s>>6, bit s&63), or
// nil for inline-form sets. The returned slice is shared: callers must
// not mutate it.
func (c Copyset) Words() []uint64 { return c.spill }

// maxWord returns the word index of the largest member. The set must
// be non-empty.
func (c Copyset) maxWord() int {
	if c.spill != nil {
		return len(c.spill) - 1
	}
	return int(c.inline[c.n-1]) >> 6
}

// String renders the set like "{0,2,5}".
func (c Copyset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	c.ForEach(func(s int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", s)
	})
	b.WriteByte('}')
	return b.String()
}

// Wire form. A copyset travels as a one-byte tag plus either a list of
// 16-bit big-endian members (csWireList) or big-endian 64-bit bitmap
// words (csWireBitmap). The empty set encodes as zero bytes. Encoders
// pick whichever form is smaller; decoders accept both and canonicalize
// duplicate or unordered members, so the choice is not protocol.
const (
	csWireList   = 0
	csWireBitmap = 1
)

// MaxCopysetWireLen is the largest legal encoded copyset: a bitmap
// covering all MaxSites sites. Decoders reject longer inputs, bounding
// allocation.
const MaxCopysetWireLen = 1 + 8*(MaxSites/64)

// WireLen returns the number of bytes AppendWire will write.
func (c Copyset) WireLen() int {
	if c.n == 0 {
		return 0
	}
	list := 1 + 2*int(c.n)
	if c.spill != nil {
		if bm := 1 + 8*len(c.spill); bm < list {
			return bm
		}
	}
	return list
}

// AppendWire appends the wire form of c to buf and returns the
// extended slice. It allocates only if buf lacks capacity.
func (c Copyset) AppendWire(buf []byte) []byte {
	if c.n == 0 {
		return buf
	}
	if c.spill != nil && 1+8*len(c.spill) < 1+2*int(c.n) {
		buf = append(buf, csWireBitmap)
		for _, w := range c.spill {
			buf = append(buf,
				byte(w>>56), byte(w>>48), byte(w>>40), byte(w>>32),
				byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
		}
		return buf
	}
	buf = append(buf, csWireList)
	if c.spill == nil {
		for i := 0; i < int(c.n); i++ {
			s := c.inline[i]
			buf = append(buf, byte(s>>8), byte(s))
		}
		return buf
	}
	for w, v := range c.spill {
		for v != 0 {
			b := bits.TrailingZeros64(v)
			s := w<<6 + b
			buf = append(buf, byte(s>>8), byte(s))
			v &^= 1 << uint(b)
		}
	}
	return buf
}

// DecodeCopysetWire decodes one copyset in the form produced by
// AppendWire; b must be exactly the encoded bytes. Inline-sized lists
// decode without allocating.
func DecodeCopysetWire(b []byte) (Copyset, error) {
	if len(b) == 0 {
		return Copyset{}, nil
	}
	if len(b) > MaxCopysetWireLen {
		return Copyset{}, fmt.Errorf("copyset: %d bytes exceeds max %d", len(b), MaxCopysetWireLen)
	}
	switch b[0] {
	case csWireList:
		mb := b[1:]
		if len(mb) == 0 || len(mb)%2 != 0 {
			return Copyset{}, fmt.Errorf("copyset: bad member-list length %d", len(mb))
		}
		n := len(mb) / 2
		if n <= inlineSites {
			var c Copyset
			for i := 0; i < n; i++ {
				c = c.Add(int(binary.BigEndian.Uint16(mb[2*i:])))
			}
			return c, nil
		}
		max := 0
		for i := 0; i < n; i++ {
			if s := int(binary.BigEndian.Uint16(mb[2*i:])); s > max {
				max = s
			}
		}
		words := make([]uint64, max>>6+1)
		for i := 0; i < n; i++ {
			s := int(binary.BigEndian.Uint16(mb[2*i:]))
			words[s>>6] |= 1 << uint(s&63)
		}
		return CopysetFromWords(words), nil
	case csWireBitmap:
		wb := b[1:]
		if len(wb) == 0 || len(wb)%8 != 0 {
			return Copyset{}, fmt.Errorf("copyset: bad bitmap length %d", len(wb))
		}
		words := make([]uint64, len(wb)/8)
		for i := range words {
			words[i] = binary.BigEndian.Uint64(wb[8*i:])
		}
		return CopysetFromWords(words), nil
	}
	return Copyset{}, fmt.Errorf("copyset: unknown tag %d", b[0])
}
