package mmu

import (
	"fmt"
	"math/bits"
	"strings"
)

// SiteMask is a set of site IDs, used as the auxpte "reader mask"
// (paper Table 2). Mirage networks are small (the prototype had 3
// VAXs); 64 sites is ample.
type SiteMask uint64

// MaxSites is the largest site ID a SiteMask can hold, plus one.
const MaxSites = 64

// Add returns m with site s added.
func (m SiteMask) Add(s int) SiteMask { return m | 1<<uint(s) }

// Remove returns m with site s removed.
func (m SiteMask) Remove(s int) SiteMask { return m &^ (1 << uint(s)) }

// Has reports whether site s is in the set.
func (m SiteMask) Has(s int) bool { return m&(1<<uint(s)) != 0 }

// Count returns the number of sites in the set.
func (m SiteMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Empty reports whether the set has no sites.
func (m SiteMask) Empty() bool { return m == 0 }

// Sites returns the members in ascending order.
func (m SiteMask) Sites() []int {
	out := make([]int, 0, m.Count())
	for v := uint64(m); v != 0; {
		s := bits.TrailingZeros64(v)
		out = append(out, s)
		v &^= 1 << uint(s)
	}
	return out
}

// ForEach calls fn for each member in ascending order.
func (m SiteMask) ForEach(fn func(s int)) {
	for v := uint64(m); v != 0; {
		s := bits.TrailingZeros64(v)
		fn(s)
		v &^= 1 << uint(s)
	}
}

// String renders the set like "{0,2,5}".
func (m SiteMask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range m.Sites() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	b.WriteByte('}')
	return b.String()
}

// MaskOf builds a SiteMask from site IDs.
func MaskOf(sites ...int) SiteMask {
	var m SiteMask
	for _, s := range sites {
		m = m.Add(s)
	}
	return m
}
