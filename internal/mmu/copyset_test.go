package mmu

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCopysetBasics(t *testing.T) {
	var c Copyset
	if !c.Empty() || c.Count() != 0 {
		t.Fatal("zero copyset should be empty")
	}
	c = c.Add(0).Add(2).Add(5)
	if c.Count() != 3 {
		t.Fatalf("count = %d", c.Count())
	}
	for _, s := range []int{0, 2, 5} {
		if !c.Has(s) {
			t.Fatalf("missing %d", s)
		}
	}
	if c.Has(1) || c.Has(63) || c.Has(65535) {
		t.Fatal("unexpected members")
	}
	c = c.Remove(2)
	if c.Has(2) || c.Count() != 2 {
		t.Fatalf("after remove: %v", c)
	}
	if c.String() != "{0,5}" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestCopysetSitesAndForEach(t *testing.T) {
	c := CopysetOf(7, 1, 63, 1000)
	want := []int{1, 7, 63, 1000}
	if got := c.Sites(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Sites = %v, want %v", got, want)
	}
	var walked []int
	c.ForEach(func(s int) { walked = append(walked, s) })
	if !reflect.DeepEqual(walked, want) {
		t.Fatalf("ForEach = %v", walked)
	}
}

func TestCopysetAddIdempotent(t *testing.T) {
	c := CopysetOf(3).Add(3).Add(3)
	if c.Count() != 1 {
		t.Fatalf("count = %d", c.Count())
	}
	if !c.Remove(9).Equal(c) {
		t.Fatal("removing absent member changed the set")
	}
}

func TestCopysetSpillAndShrink(t *testing.T) {
	c := CopysetOf(10, 20, 30, 40, 50, 60)
	if c.Spilled() {
		t.Fatal("6 members should stay inline")
	}
	c = c.Add(70)
	if !c.Spilled() || c.Count() != 7 {
		t.Fatalf("7 members should spill: spilled=%v count=%d", c.Spilled(), c.Count())
	}
	for _, s := range []int{10, 20, 30, 40, 50, 60, 70} {
		if !c.Has(s) {
			t.Fatalf("spilled set missing %d", s)
		}
	}
	c = c.Remove(40)
	if c.Spilled() || c.Count() != 6 {
		t.Fatalf("should shrink back inline: spilled=%v count=%d", c.Spilled(), c.Count())
	}
	if !c.Equal(CopysetOf(10, 20, 30, 50, 60, 70)) {
		t.Fatalf("after shrink: %v", c)
	}
}

func TestCopysetValueSemantics(t *testing.T) {
	a := CopysetOf(1, 100, 200, 300, 400, 500, 600) // spilled
	if b := a.Add(700); a.Has(700) || !b.Has(700) {
		t.Fatal("Add mutated the receiver's shared storage")
	}
	d := a.Remove(300)
	if !a.Has(300) || d.Has(300) {
		t.Fatal("Remove mutated the receiver's shared storage")
	}
}

func TestCopysetCanonicalForms(t *testing.T) {
	// The same set reached by different op orders must be DeepEqual.
	a := CopysetOf(5, 900, 70).Add(3).Remove(900)
	b := CopysetOf(3, 5, 70)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("canonical mismatch: %#v vs %#v", a, b)
	}
	// Spilled high member removed: trailing words must trim.
	x := CopysetOf(1, 2, 3, 4, 5, 6, 7, 5000).Remove(5000).Add(8)
	y := CopysetOf(1, 2, 3, 4, 5, 6, 7, 8)
	if !reflect.DeepEqual(x, y) {
		t.Fatalf("trim mismatch: %#v vs %#v", x, y)
	}
}

func TestCopysetUnionSubtract(t *testing.T) {
	a := CopysetOf(1, 2, 3)
	b := CopysetOf(3, 4, 5000)
	u := a.Union(b)
	if !u.Equal(CopysetOf(1, 2, 3, 4, 5000)) {
		t.Fatalf("union = %v", u)
	}
	if got := a.Subtract(b); !got.Equal(CopysetOf(1, 2)) {
		t.Fatalf("subtract = %v", got)
	}
	big := CopysetOf(10, 11, 12, 13, 14, 15, 16, 17)
	if got := big.Subtract(CopysetOf(12, 16, 99)); !got.Equal(CopysetOf(10, 11, 13, 14, 15, 17)) {
		t.Fatalf("spilled subtract = %v", got)
	}
	if got := big.Union(Copyset{}); !got.Equal(big) {
		t.Fatal("union with empty changed the set")
	}
	if got := a.Intersect(b); !got.Equal(CopysetOf(3)) {
		t.Fatalf("intersect = %v", got)
	}
	if got := big.Intersect(CopysetOf(11, 17, 5000)); !got.Equal(CopysetOf(11, 17)) {
		t.Fatalf("spilled intersect = %v", got)
	}
	if got := big.Intersect(Copyset{}); !got.Empty() {
		t.Fatalf("intersect with empty = %v", got)
	}
}

func TestCopysetOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add past MaxSites must panic")
		}
	}()
	CopysetOf(MaxSites)
}

// TestCopysetOracle drives randomized add/remove/union/subtract/iterate
// sequences against a naive map[int]bool reference.
func TestCopysetOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		c := Copyset{}
		ref := map[int]bool{}
		// Mix of tight site IDs (forces dup hits and inline<->spill
		// transitions) and sparse high IDs (forces multi-word bitmaps).
		site := func() int {
			if rng.Intn(2) == 0 {
				return rng.Intn(10)
			}
			return rng.Intn(MaxSites)
		}
		for op := 0; op < 300; op++ {
			switch rng.Intn(11) {
			case 0, 1, 2, 3:
				s := site()
				c = c.Add(s)
				ref[s] = true
			case 4, 5, 6:
				s := site()
				c = c.Remove(s)
				delete(ref, s)
			case 7:
				var other Copyset
				for i := rng.Intn(9); i > 0; i-- {
					s := site()
					other = other.Add(s)
					ref[s] = true
				}
				c = c.Union(other)
			case 8:
				var other Copyset
				for i := rng.Intn(4); i > 0; i-- {
					s := site()
					other = other.Add(s)
					delete(ref, s)
				}
				c = c.Subtract(other)
			case 9:
				// Intersect with a set built from half the current
				// members plus noise; the oracle keeps the overlap.
				var other Copyset
				for s := range ref {
					if rng.Intn(2) == 0 {
						other = other.Add(s)
					}
				}
				for i := rng.Intn(4); i > 0; i-- {
					other = other.Add(site())
				}
				c = c.Intersect(other)
				for s := range ref {
					if !other.Has(s) {
						delete(ref, s)
					}
				}
			case 10:
				// Wire round trip mid-sequence.
				enc := c.AppendWire(nil)
				if len(enc) != c.WireLen() {
					t.Fatalf("WireLen %d != encoded %d", c.WireLen(), len(enc))
				}
				dec, err := DecodeCopysetWire(enc)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if !reflect.DeepEqual(dec, c) {
					t.Fatalf("wire round trip: %#v vs %#v", dec, c)
				}
			}
		}
		if c.Count() != len(ref) {
			t.Fatalf("trial %d: count %d != oracle %d", trial, c.Count(), len(ref))
		}
		prev := -1
		n := 0
		c.ForEach(func(s int) {
			if s <= prev {
				t.Fatalf("trial %d: iteration not strictly ascending: %d after %d", trial, s, prev)
			}
			if !ref[s] {
				t.Fatalf("trial %d: iterated phantom member %d", trial, s)
			}
			prev = s
			n++
		})
		if n != len(ref) {
			t.Fatalf("trial %d: iterated %d members, oracle has %d", trial, n, len(ref))
		}
		for s := range ref {
			if !c.Has(s) {
				t.Fatalf("trial %d: missing member %d", trial, s)
			}
		}
		if c.Spilled() != (len(ref) > inlineSites) {
			t.Fatalf("trial %d: form not canonical: spilled=%v count=%d", trial, c.Spilled(), len(ref))
		}
	}
}

func TestCopysetWireDecodeTolerance(t *testing.T) {
	// Duplicate and unordered list members collapse to set semantics.
	raw := []byte{csWireList, 0, 9, 0, 5, 0, 9, 0, 5, 0, 1, 0, 9, 0, 9}
	c, err := DecodeCopysetWire(raw)
	if err != nil {
		t.Fatalf("decode dup list: %v", err)
	}
	if !reflect.DeepEqual(c, CopysetOf(1, 5, 9)) {
		t.Fatalf("dup list = %v", c)
	}
	// Bitmap with trailing zero words canonicalizes.
	raw = []byte{csWireBitmap, 0, 0, 0, 0, 0, 0, 0, 6, 0, 0, 0, 0, 0, 0, 0, 0}
	c, err = DecodeCopysetWire(raw)
	if err != nil {
		t.Fatalf("decode bitmap: %v", err)
	}
	if !reflect.DeepEqual(c, CopysetOf(1, 2)) {
		t.Fatalf("bitmap = %v", c)
	}
	for _, bad := range [][]byte{
		{csWireList},                      // empty member list
		{csWireList, 0, 1, 0},             // odd member bytes
		{csWireBitmap, 1, 2, 3},           // partial word
		{2, 0, 0},                         // unknown tag
		make([]byte, MaxCopysetWireLen+1), // oversized
	} {
		if _, err := DecodeCopysetWire(bad); err == nil {
			t.Fatalf("decode accepted malformed %v", bad)
		}
	}
}

func TestCopysetWirePicksSmallerForm(t *testing.T) {
	dense := CopysetOf()
	for s := 0; s < 100; s++ {
		dense = dense.Add(s)
	}
	if got, want := dense.WireLen(), 1+8*2; got != want {
		t.Fatalf("dense 100-member set should use a 2-word bitmap: len=%d want %d", got, want)
	}
	sparse := CopysetOf(1, 5000, 10000, 20000, 30000, 40000, 50000)
	if got, want := sparse.WireLen(), 1+2*7; got != want {
		t.Fatalf("sparse 7-member set should use a member list: len=%d want %d", got, want)
	}
	for _, c := range []Copyset{dense, sparse} {
		dec, err := DecodeCopysetWire(c.AppendWire(nil))
		if err != nil || !reflect.DeepEqual(dec, c) {
			t.Fatalf("round trip failed: %v %v", err, dec)
		}
	}
}

// Alloc gates: the protocol hot paths add to, iterate, and encode
// copysets on every fault; the inline form must stay heap-free and
// spilled iteration/encoding must not allocate beyond the buffer.
func TestCopysetAllocGates(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		c := CopysetOf(1).Add(3).Add(5).Remove(3).Add(2)
		if c.Count() != 3 {
			t.Fatal("bad count")
		}
	}); n != 0 {
		t.Fatalf("inline add/remove allocates %v/run", n)
	}
	inline := CopysetOf(1, 2, 3, 4, 5)
	spilled := CopysetOf(0)
	for s := 10; s < 1010; s++ {
		spilled = spilled.Add(s)
	}
	sum := 0
	if n := testing.AllocsPerRun(100, func() {
		inline.ForEach(func(s int) { sum += s })
		spilled.ForEach(func(s int) { sum += s })
	}); n != 0 {
		t.Fatalf("iterate allocates %v/run", n)
	}
	buf := make([]byte, 0, MaxCopysetWireLen)
	if n := testing.AllocsPerRun(100, func() {
		buf = inline.AppendWire(buf[:0])
		buf = spilled.AppendWire(buf[:0])
	}); n != 0 {
		t.Fatalf("AppendWire into sized buffer allocates %v/run", n)
	}
}
