package check

import (
	"testing"
	"time"

	"mirage/internal/core"
	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/sim"
)

// migNet is a minimal deterministic cluster for driving a voluntary
// migration and feeding its full trace to the checker. The scenario
// harness (harness.go) issues ops concurrently, which makes demand
// windows timing-sensitive; this driver sequences accesses explicitly
// so the 2:1 demand skew — and therefore the handoff — is guaranteed.
type migNet struct {
	t       *testing.T
	k       *sim.Kernel
	engines []*core.Engine
}

type migEnv struct {
	n    *migNet
	site int
}

func (e migEnv) Site() int          { return e.site }
func (e migEnv) Now() time.Duration { return e.n.k.Now().Duration() }
func (e migEnv) After(d time.Duration, fn func()) func() {
	t := e.n.k.After(d, fn)
	return func() { t.Cancel() }
}
func (e migEnv) Send(to int, m core.NetMsg) {
	d := time.Millisecond
	if to == e.site {
		d = 0
	}
	e.n.k.After(d, func() { e.n.engines[to].Deliver(m) })
}
func (e migEnv) Exec(cost time.Duration, fn func()) { e.n.k.After(cost, fn) }

func newMigNet(t *testing.T, sites int, o *obs.Obs) *migNet {
	n := &migNet{t: t, k: sim.NewKernel()}
	opt := core.Options{
		Costs: &core.Costs{},
		Reliability: &core.Reliability{
			AckTimeout: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			MaxAttempts: 5, RequestTimeout: 10 * time.Second,
		},
		Failover: &core.Failover{Sites: sites},
		Placement: &core.Placement{
			Window: 50 * time.Millisecond, MinRequests: 4,
			Share: 0.5, PingPong: 0.8, Cooldown: time.Hour,
		},
		Obs: o,
	}
	for i := 0; i < sites; i++ {
		n.engines = append(n.engines, core.New(migEnv{n, i}, opt))
	}
	meta := &mem.Segment{
		ID: 1, Key: 7, Size: 1024, PageSize: 512, Pages: 2,
		Library: 0, Mode: 0o666,
	}
	n.engines[0].CreateSegment(meta)
	for i := 1; i < sites; i++ {
		n.engines[i].AttachSegment(meta)
	}
	return n
}

func (n *migNet) access(site int, page int32, write bool, val byte) {
	n.t.Helper()
	e := n.engines[site]
	done := false
	var loop func()
	loop = func() {
		if err := e.FaultError(1, page); err != nil {
			n.t.Fatalf("site %d degraded: %v", site, err)
		}
		if e.CheckAccess(1, page, write) == mmu.NoFault {
			f := e.Frame(1, page)
			if write {
				f[0] = val
			}
			e.RecordOp(1, page, 0, write, f[:1])
			done = true
			return
		}
		e.Fault(1, page, write, 100+int32(site), loop)
	}
	loop()
	for !done {
		if !n.k.Step() {
			n.t.Fatalf("site %d access(page=%d write=%v) starved", site, page, write)
		}
	}
}

// TestVerifyAcceptsMigratedTrace drives a real two-epoch history — a
// skewed workload that makes the library volunteer the role to its
// hottest writer, then post-handoff traffic including a straggler that
// slept through the switch — and requires the checker to pass it, with
// the commit visible as EvMigrate.
func TestVerifyAcceptsMigratedTrace(t *testing.T) {
	o := obs.New()
	n := newMigNet(t, 3, o)

	// Site 0's writes invalidate site 1, which pays a read fault plus an
	// upgrade per round: 2:1 demand for site 1 at the library.
	for i := 0; i < 40; i++ {
		n.access(0, 0, true, byte(i))
		n.access(1, 0, false, 0)
		n.access(1, 0, true, byte(i)+1)
	}
	if n.engines[1].Stats().Migrations != 1 {
		t.Fatal("workload did not trigger a migration")
	}
	// Straggler: site 2 still believes epoch 0 / library 0; its request
	// is fenced by the deposed library and re-aimed at the successor.
	n.access(2, 0, false, 0)
	// Post-handoff coherence traffic under the new library.
	n.access(0, 0, true, 99)
	n.access(2, 0, false, 0)
	n.k.Run()

	events := o.Buffer().Events()
	sawMigrate := false
	for _, ev := range events {
		if ev.Type == obs.EvMigrate {
			sawMigrate = true
		}
	}
	if !sawMigrate {
		t.Fatal("trace has no EvMigrate event")
	}
	if n.engines[0].Stats().StaleEpoch == 0 {
		t.Error("deposed library never fenced the straggler")
	}
	for _, v := range Verify(Config{Sites: 3, Reliable: true}, events) {
		t.Errorf("checker rejected migrated trace: %v", v)
	}
}

// TestVerifyStillCatchesViolationsAcrossMigration guards against the
// migrate hook silencing the checker: a fabricated double-write after
// a migration event must still be reported.
func TestVerifyStillCatchesViolationsAcrossMigration(t *testing.T) {
	base := time.Millisecond
	events := []obs.Event{
		{T: 1 * base, Site: 1, Type: obs.EvMigrate, Seg: 1, Epoch: 1, Arg: 0},
		{T: 2 * base, Site: 0, Type: obs.EvPageState, Seg: 1, Page: 0, Epoch: 1, Arg: 2},
		{T: 2 * base, Site: 2, Type: obs.EvPageState, Seg: 1, Page: 0, Epoch: 1, Arg: 2},
	}
	if len(Verify(Config{Sites: 3, Reliable: true}, events)) == 0 {
		t.Error("two concurrent writable copies after EvMigrate went unreported")
	}
}
