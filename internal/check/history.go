package check

import (
	"fmt"
	"sort"
	"time"

	"mirage/internal/obs"
)

// InvSchema: an event was structurally invalid for the configured
// cluster (site out of range, negative page, ...).
const InvSchema = "trace-schema"

type pageKey struct {
	seg, page int32
}

type rangeKey struct {
	off, n int32
}

type installKey struct {
	site  int32
	epoch uint32
	cycle uint32
	state int8
}

type cycleKey struct {
	epoch, cycle uint32
}

// pageCheck is the checker's shadow of one page's global state.
type pageCheck struct {
	// st maps site -> copy state (0 invalid, 1 read, 2 write). A site
	// absent from the map has never been observed: ops there are
	// permitted (the trace may have started mid-run).
	st map[int32]int8
	// clock is the site the checker believes holds the clock role, or
	// -1 when unknown (e.g. after an unobservable clock handoff on
	// release).
	clock int32
	// windowUntil is, per site, the virtual instant the Δ window of its
	// current granted copy expires. Only consulted at the clock.
	windowUntil map[int32]time.Duration
	// openCycle is, per library epoch, the grant cycle currently running
	// at that epoch's library (0 = none); lastStart the highest cycle
	// ever started there. Cycle numbers restart from scratch when a
	// successor library takes over, so serialization is per epoch.
	openCycle map[uint32]uint32
	lastStart map[uint32]uint32
	// ended records committed cycles; installs records applied granted
	// installs. Both back the exactly-once invariant, per (cycle, epoch).
	ended    map[cycleKey]bool
	installs map[installKey]bool
	// writes holds the digest of the last completed write per exact
	// byte range; overlapping writes of a different shape evict stale
	// entries rather than guess at partial overlaps.
	writes map[rangeKey]uint64
}

// replPosKey identifies one position of a segment's replicated log.
type replPosKey struct {
	epoch uint32
	index uint32
}

// replApplyKey identifies one site's applied-index stream in one epoch.
type replApplyKey struct {
	site  int32
	epoch uint32
}

// replEntrySeen is the first-observed identity of a log position.
type replEntrySeen struct {
	digest uint32
	page   int32
}

// replCheck is the checker's shadow of one segment's replicated log
// (Options.Replication traces only; allocated on the first EvReplicate
// or EvElect for the segment).
type replCheck struct {
	// seen is the entry identity first observed per log position; every
	// later leader commit or follower apply of that position must match.
	seen map[replPosKey]replEntrySeen
	// applied is, per site and epoch, the highest log index the site has
	// applied; follower applies must be strictly increasing.
	applied map[replApplyKey]uint32
	// committed tracks the latest quorum-acknowledged log position (from
	// leader-commit events); a takeover election must install a tail at
	// or past it. Cleared when a takeover or migration restarts the log.
	committed   bool
	commitEpoch uint32
	commitIdx   uint32
}

// Checker is the streaming history checker. Feed it a schema-v1 trace
// in emission order; that order is sound for live traces too, because
// same-site events are emitted by one goroutine and cross-site events
// are separated by the message exchange that caused them.
type Checker struct {
	cfg   Config
	idx   int
	pages map[pageKey]*pageCheck
	repl  map[int32]*replCheck
	viols []Violation
	extra int // violations dropped past MaxViolations
}

// NewChecker returns a Checker for one trace.
func NewChecker(cfg Config) *Checker {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 100
	}
	return &Checker{
		cfg:   cfg,
		pages: make(map[pageKey]*pageCheck),
		repl:  make(map[int32]*replCheck),
	}
}

func (c *Checker) report(inv string, ev obs.Event, format string, args ...any) {
	if len(c.viols) >= c.cfg.MaxViolations {
		c.extra++
		return
	}
	c.viols = append(c.viols, Violation{
		Invariant: inv, Index: c.idx, Event: ev,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Violations returns everything found so far, nil if clean.
func (c *Checker) Violations() []Violation { return c.viols }

// Dropped reports violations discarded past Config.MaxViolations.
func (c *Checker) Dropped() int { return c.extra }

func (c *Checker) page(ev obs.Event) *pageCheck {
	k := pageKey{ev.Seg, ev.Page}
	p := c.pages[k]
	if p == nil {
		p = &pageCheck{
			st:          make(map[int32]int8),
			clock:       -1,
			windowUntil: make(map[int32]time.Duration),
			openCycle:   make(map[uint32]uint32),
			lastStart:   make(map[uint32]uint32),
			ended:       make(map[cycleKey]bool),
			installs:    make(map[installKey]bool),
			writes:      make(map[rangeKey]uint64),
		}
		c.pages[k] = p
	}
	return p
}

// Feed advances the checker by one event. Call in trace order; Index in
// any resulting Violation is the running event count.
func (c *Checker) Feed(ev obs.Event) {
	defer func() { c.idx++ }()
	if c.cfg.Sites > 0 && (ev.Site < 0 || int(ev.Site) >= c.cfg.Sites) {
		c.report(InvSchema, ev, "site %d outside cluster of %d", ev.Site, c.cfg.Sites)
		return
	}
	switch ev.Type {
	case obs.EvPageState:
		c.pageState(ev)
	case obs.EvUpgrade:
		c.upgrade(ev)
	case obs.EvDowngrade:
		c.downgrade(ev)
	case obs.EvGrantStart:
		c.grantStart(ev)
	case obs.EvGrantEnd:
		c.grantEnd(ev)
	case obs.EvRead, obs.EvWrite:
		c.op(ev)
	case obs.EvRecover:
		c.recover(ev)
	case obs.EvMigrate:
		c.migrate(ev)
	case obs.EvReplicate:
		c.replicate(ev)
	case obs.EvElect:
		c.elect(ev)
	}
}

func (c *Checker) replSeg(seg int32) *replCheck {
	rc := c.repl[seg]
	if rc == nil {
		rc = &replCheck{
			seen:    make(map[replPosKey]replEntrySeen),
			applied: make(map[replApplyKey]uint32),
		}
		c.repl[seg] = rc
	}
	return rc
}

// replicate handles one replicated-log event: a leader commit (From
// names the emitting site — a gated entry reached its follower quorum)
// or a follower apply (From names the leader). Arg is the log index,
// Cycle the 32-bit digest of the entry's encoded bytes; leader and
// follower digest the identical bytes, so any disagreement at one
// (epoch, index) position means the logs diverged (InvLogPrefix). A
// follower's applied indexes must be strictly increasing within an
// epoch — the leader streams in index order over a FIFO channel, and a
// re-base snapshot only carries entries the follower has not applied.
func (c *Checker) replicate(ev obs.Event) {
	rc := c.replSeg(ev.Seg)
	idx := uint32(ev.Arg)
	pos := replPosKey{ev.Epoch, idx}
	dig := ev.Cycle
	if prev, ok := rc.seen[pos]; ok {
		if prev.digest != dig || prev.page != ev.Page {
			c.report(InvLogPrefix, ev,
				"log position (epoch %d, index %d) seen as page %d digest %x, now page %d digest %x",
				ev.Epoch, idx, prev.page, prev.digest, ev.Page, dig)
		}
	} else {
		rc.seen[pos] = replEntrySeen{digest: dig, page: ev.Page}
	}
	if ev.From == ev.Site {
		// Leader commit: the entry is quorum-acknowledged. Commits may
		// settle out of index order (acks are cumulative, gates drain as
		// a set), so only the high-water mark is tracked.
		if !rc.committed || ev.Epoch > rc.commitEpoch ||
			(ev.Epoch == rc.commitEpoch && idx > rc.commitIdx) {
			rc.committed = true
			rc.commitEpoch = ev.Epoch
			rc.commitIdx = idx
		}
		return
	}
	ak := replApplyKey{ev.Site, ev.Epoch}
	if last, ok := rc.applied[ak]; ok && idx <= last {
		c.report(InvLogPrefix, ev,
			"site %d applied log index %d after %d (epoch %d): applied stream not ascending",
			ev.Site, idx, last, ev.Epoch)
		return
	}
	rc.applied[ak] = idx
}

// elect handles a takeover election commit: ev.Site installed the
// library from the merged log tail (Cycle = merged log epoch, Arg =
// merged last index; ev.From is the dead leader). Every mutation that
// was acknowledged to a requester was first committed by a follower
// quorum, and the vote quorum is sized to intersect every commit
// quorum — so a merged tail behind the committed high-water mark means
// an acknowledged mutation was lost (InvApplyLost). Degraded releases
// deliberately emit no commit event, which keeps this one-sided-sound
// when the group has lost its quorum.
func (c *Checker) elect(ev obs.Event) {
	rc := c.replSeg(ev.Seg)
	tailEpoch, tailIdx := uint32(ev.Cycle), uint32(ev.Arg)
	if rc.committed && (tailEpoch < rc.commitEpoch ||
		(tailEpoch == rc.commitEpoch && tailIdx < rc.commitIdx)) {
		c.report(InvApplyLost, ev,
			"takeover at site %d installed log tail (epoch %d, index %d) behind committed (epoch %d, index %d)",
			ev.Site, tailEpoch, tailIdx, rc.commitEpoch, rc.commitIdx)
	}
	// The winner reseeds the log under the new epoch; commit tracking
	// restarts with it.
	rc.committed = false
}

// recover handles a library-failover recovery commit: the successor
// (ev.Site) rebuilt the segment's records for a new epoch and ev.Arg is
// the dead library site. Everything the checker believed about the dead
// site is fenced to "never observed": copies it held are unreachable,
// not provably invalid, and the recovery may have reassigned roles the
// trace cannot observe directly.
func (c *Checker) recover(ev obs.Event) {
	dead := int32(ev.Arg)
	for k, p := range c.pages {
		if k.seg != ev.Seg {
			continue
		}
		delete(p.st, dead)
		delete(p.windowUntil, dead)
		if p.clock == dead {
			p.clock = -1
		}
	}
}

// migrate handles a voluntary library migration commit: ev.Site accepted
// the library role from ev.Arg under a bumped epoch (ev.Epoch). Unlike a
// crash recovery the old library is alive and every copy it granted stays
// valid — the page record moved by exact transfer, not reconstruction —
// so nothing is fenced. Grant cycles under the new epoch are serialized
// against the old epoch's by the per-epoch keying of openCycle, lastStart
// and the install maps, which Feed already applies to every event.
func (c *Checker) migrate(ev obs.Event) {
	// The successor reseeds the replicated log from the migrated record
	// (an exact transfer, so nothing can be lost); commit tracking
	// restarts under the new epoch.
	if rc := c.repl[ev.Seg]; rc != nil {
		rc.committed = false
	}
}

// windowCheck fires when possession at the believed clock site ends at
// instant t while its granted window is still running.
func (c *Checker) windowCheck(p *pageCheck, ev obs.Event, what string) {
	if c.cfg.Delta == 0 || c.cfg.InsiderUpgrades {
		return
	}
	if p.clock != ev.Site {
		return // only the clock site's window is enforced (§6.1)
	}
	wu, ok := p.windowUntil[ev.Site]
	if !ok {
		return
	}
	if ev.T+c.cfg.Slack < wu {
		c.report(InvWindow, ev,
			"%s at clock site %d with %v left of its Δ window (expires %v)",
			what, ev.Site, wu-ev.T, wu)
	}
}

// installOnce backs the exactly-once invariant for granted installs.
func (c *Checker) installOnce(p *pageCheck, ev obs.Event, state int8) {
	if ev.Cycle == 0 {
		return
	}
	k := installKey{ev.Site, ev.Epoch, ev.Cycle, state}
	if p.installs[k] {
		c.report(InvExactlyOnce, ev,
			"granted install (cycle %d, state %d) applied twice at site %d",
			ev.Cycle, state, ev.Site)
	}
	p.installs[k] = true
}

func (c *Checker) pageState(ev obs.Event) {
	p := c.page(ev)
	switch ev.Arg {
	case 2: // writable copy installed
		if p.st[ev.Site] == 2 {
			return // echo after EvUpgrade; already applied
		}
		c.installOnce(p, ev, 2)
		p.st[ev.Site] = 2
		p.clock = ev.Site
		if ev.Cycle != 0 {
			p.windowUntil[ev.Site] = ev.T + c.cfg.Delta
		} else {
			// Ungranted hold (segment creation, reclaim, rehome):
			// possession without a window.
			delete(p.windowUntil, ev.Site)
		}
		c.exclusion(p, ev)
	case 1: // read copy installed (or write copy demoted)
		if p.st[ev.Site] == 2 {
			// A demotion that skipped EvDowngrade; still a revocation
			// of write possession.
			c.windowCheck(p, ev, "downgrade")
		}
		c.installOnce(p, ev, 1)
		p.st[ev.Site] = 1
		if ev.Cycle != 0 {
			p.windowUntil[ev.Site] = ev.T + c.cfg.Delta
		} else {
			delete(p.windowUntil, ev.Site)
		}
		c.exclusion(p, ev)
	case 0: // copy invalidated / discarded
		if ev.Cycle != 0 {
			// Protocol revocation (invalidation or inval-order).
			c.windowCheck(p, ev, "invalidation")
		}
		// Cycle 0 marks a voluntary or recovery discard (release,
		// degradation): never window-bound, and the clock role may be
		// handed off without a trace event, so it goes unknown below.
		p.st[ev.Site] = 0
		delete(p.windowUntil, ev.Site)
		if p.clock == ev.Site {
			p.clock = -1
		}
	default:
		c.report(InvSchema, ev, "page-state arg %d not in {0,1,2}", ev.Arg)
	}
}

func (c *Checker) upgrade(ev obs.Event) {
	p := c.page(ev)
	c.installOnce(p, ev, 2)
	p.st[ev.Site] = 2
	p.clock = ev.Site
	if ev.Cycle != 0 {
		p.windowUntil[ev.Site] = ev.T + c.cfg.Delta
	}
	c.exclusion(p, ev)
}

func (c *Checker) downgrade(ev obs.Event) {
	p := c.page(ev)
	if p.st[ev.Site] == 2 {
		c.windowCheck(p, ev, "downgrade")
	}
	p.st[ev.Site] = 1
	// The downgraded writer keeps the clock role and receives a fresh
	// window with its read copy.
	p.clock = ev.Site
	p.windowUntil[ev.Site] = ev.T + c.cfg.Delta
	c.exclusion(p, ev)
}

// exclusion is the single-writer invariant: a writable copy never
// coexists with any other copy (Table 1).
func (c *Checker) exclusion(p *pageCheck, ev obs.Event) {
	var writers, readers []int32
	for s, st := range p.st {
		switch st {
		case 2:
			writers = append(writers, s)
		case 1:
			readers = append(readers, s)
		}
	}
	// Map order is random; violation text must be replay-stable.
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
	sort.Slice(readers, func(i, j int) bool { return readers[i] < readers[j] })
	if len(writers) > 1 {
		c.report(InvSingleWriter, ev, "writable copies at sites %v", writers)
	} else if len(writers) == 1 && len(readers) > 0 {
		c.report(InvSingleWriter, ev,
			"writable copy at site %d coexists with read copies at %v",
			writers[0], readers)
	}
}

func (c *Checker) grantStart(ev obs.Event) {
	p := c.page(ev)
	if ev.Cycle == 0 {
		c.report(InvSchema, ev, "grant start with cycle 0")
		return
	}
	if ev.Cycle <= p.lastStart[ev.Epoch] {
		c.report(InvWriteSerial, ev,
			"cycle %d started after cycle %d (epoch %d)",
			ev.Cycle, p.lastStart[ev.Epoch], ev.Epoch)
	}
	if p.openCycle[ev.Epoch] != 0 && !c.cfg.Reliable {
		c.report(InvWriteSerial, ev,
			"cycle %d started while cycle %d still open", ev.Cycle, p.openCycle[ev.Epoch])
	}
	// Under the reliability layer an open cycle may have been aborted
	// without a commit event; the new start closes it implicitly.
	p.openCycle[ev.Epoch] = ev.Cycle
	if ev.Cycle > p.lastStart[ev.Epoch] {
		p.lastStart[ev.Epoch] = ev.Cycle
	}
}

func (c *Checker) grantEnd(ev obs.Event) {
	p := c.page(ev)
	ck := cycleKey{ev.Epoch, ev.Cycle}
	if p.ended[ck] {
		c.report(InvExactlyOnce, ev, "cycle %d committed twice", ev.Cycle)
		return
	}
	if p.openCycle[ev.Epoch] != ev.Cycle {
		c.report(InvWriteSerial, ev,
			"cycle %d committed but open cycle is %d", ev.Cycle, p.openCycle[ev.Epoch])
	}
	p.ended[ck] = true
	if p.openCycle[ev.Epoch] == ev.Cycle {
		p.openCycle[ev.Epoch] = 0
	}
}

// op checks EvRead/EvWrite records: the copy must be live, and a read's
// digest must match the last completed write of the same byte range.
func (c *Checker) op(ev obs.Event) {
	p := c.page(ev)
	st, known := p.st[ev.Site]
	rk := rangeKey{ev.From, ev.To}
	if ev.Type == obs.EvWrite {
		if known && st != 2 {
			c.report(InvValidCopy, ev,
				"write at site %d whose copy state is %d", ev.Site, st)
		}
		// Evict overlapping ranges of a different shape: the oracle
		// only ever compares exact ranges.
		for k := range p.writes {
			if k != rk && k.off < rk.off+rk.n && rk.off < k.off+k.n {
				delete(p.writes, k)
			}
		}
		p.writes[rk] = uint64(ev.Arg)
		return
	}
	if known && st == 0 {
		c.report(InvValidCopy, ev,
			"read at site %d of an invalidated copy", ev.Site)
	}
	if want, ok := p.writes[rk]; ok && want != uint64(ev.Arg) {
		c.report(InvLatestWrite, ev,
			"read [%d,+%d) digest %x, latest write was %x",
			ev.From, ev.To, uint64(ev.Arg), want)
	}
}
