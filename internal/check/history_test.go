package check

import (
	"testing"
	"time"

	"mirage/internal/obs"
)

const ms = time.Millisecond

// pse builds an EvPageState event on seg 1 page 0.
func pse(t time.Duration, site int32, arg int64, cycle uint32) obs.Event {
	return obs.Event{T: t, Site: site, Type: obs.EvPageState, Seg: 1, Cycle: cycle, Arg: arg}
}

func gstart(t time.Duration, cycle uint32) obs.Event {
	return obs.Event{T: t, Type: obs.EvGrantStart, Seg: 1, Cycle: cycle}
}

func gend(t time.Duration, cycle uint32) obs.Event {
	return obs.Event{T: t, Type: obs.EvGrantEnd, Seg: 1, Cycle: cycle}
}

func oprec(t time.Duration, site int32, typ obs.EvType, off, n int32, digest uint64) obs.Event {
	return obs.Event{T: t, Site: site, Type: typ, Seg: 1, From: off, To: n, Arg: int64(digest)}
}

func wantInv(t *testing.T, viols []Violation, inv string) {
	t.Helper()
	for _, v := range viols {
		if v.Invariant == inv {
			return
		}
	}
	t.Fatalf("expected a %s violation, got %v", inv, viols)
}

func wantClean(t *testing.T, viols []Violation) {
	t.Helper()
	if len(viols) != 0 {
		t.Fatalf("expected clean trace, got %v", viols)
	}
}

// A full legal write handoff: create at library 0, grant cycle 1 moves
// the page to site 1 after the (expired) window.
func legalHandoff() []obs.Event {
	return []obs.Event{
		pse(0, 0, 2, 0),    // creation: ungranted write hold at library
		gstart(1*ms, 1),    // cycle 1: write grant to site 1
		pse(2*ms, 0, 0, 1), // library's copy invalidated for the grant
		pse(3*ms, 1, 2, 1), // site 1 installs writable
		gend(4*ms, 1),      // cycle commits
	}
}

func TestCleanHandoff(t *testing.T) {
	wantClean(t, Verify(Config{Sites: 2}, legalHandoff()))
}

func TestSingleWriterTwoWritables(t *testing.T) {
	evs := []obs.Event{
		pse(0, 0, 2, 0),
		pse(1*ms, 1, 2, 1), // second writable copy with no invalidation
	}
	wantInv(t, Verify(Config{Sites: 2}, evs), InvSingleWriter)
}

func TestSingleWriterWriterWithReader(t *testing.T) {
	evs := []obs.Event{
		pse(0, 0, 2, 0),
		pse(1*ms, 1, 1, 1), // read copy appears while writer still live
	}
	wantInv(t, Verify(Config{Sites: 2}, evs), InvSingleWriter)
}

func TestWriteSerializationBackwardsCycle(t *testing.T) {
	evs := []obs.Event{gstart(1*ms, 2), gend(2*ms, 2), gstart(3*ms, 1)}
	wantInv(t, Verify(Config{}, evs), InvWriteSerial)
}

func TestWriteSerializationOverlap(t *testing.T) {
	evs := []obs.Event{gstart(1*ms, 1), gstart(2*ms, 2)}
	wantInv(t, Verify(Config{}, evs), InvWriteSerial)
	// With the reliability layer, cycle 1 may have aborted without a
	// commit event: the overlap is legal.
	wantClean(t, Verify(Config{Reliable: true}, evs))
}

func TestExactlyOnceDoubleCommit(t *testing.T) {
	evs := []obs.Event{gstart(1*ms, 1), gend(2*ms, 1), gend(3*ms, 1)}
	wantInv(t, Verify(Config{}, evs), InvExactlyOnce)
}

func TestExactlyOnceDuplicateInstall(t *testing.T) {
	evs := append(legalHandoff(),
		pse(5*ms, 1, 0, 0), // voluntary discard ...
		pse(6*ms, 1, 2, 1), // ... then the same granted install applied again
	)
	wantInv(t, Verify(Config{Sites: 2}, evs), InvExactlyOnce)
}

func TestCommitWithoutOpenCycle(t *testing.T) {
	wantInv(t, Verify(Config{}, []obs.Event{gend(1*ms, 7)}), InvWriteSerial)
}

func TestWindowRevokedEarly(t *testing.T) {
	evs := []obs.Event{
		pse(0, 1, 2, 1),     // granted install at site 1: window until 50ms
		pse(30*ms, 1, 0, 2), // protocol revocation at 30ms — inside the window
	}
	wantInv(t, Verify(Config{Delta: 50 * ms}, evs), InvWindow)
	// Same revocation after expiry is legal.
	late := []obs.Event{pse(0, 1, 2, 1), pse(70*ms, 1, 0, 2)}
	wantClean(t, Verify(Config{Delta: 50 * ms}, late))
	// Slack forgives wall-clock timer coarseness.
	wantClean(t, Verify(Config{Delta: 50 * ms, Slack: 25 * ms}, evs))
	// Delta 0 disables the invariant entirely.
	wantClean(t, Verify(Config{}, evs))
}

func TestWindowVoluntaryReleaseExempt(t *testing.T) {
	evs := []obs.Event{
		pse(0, 1, 2, 1),
		pse(10*ms, 1, 0, 0), // Cycle 0: voluntary release, never window-bound
	}
	wantClean(t, Verify(Config{Delta: 50 * ms}, evs))
}

func TestWindowNonClockReaderUnprotected(t *testing.T) {
	// Site 2 gets a read copy but is not the clock: an inval-order
	// inside its nominal window is legal (§6.1: only the clock's
	// window is enforced).
	evs := []obs.Event{
		pse(0, 1, 2, 1), // clock: site 1
		obs.Event{T: 60 * ms, Site: 1, Type: obs.EvDowngrade, Seg: 1, Cycle: 2},
		pse(60*ms, 1, 1, 0), // echo of the downgrade
		pse(61*ms, 2, 1, 2), // site 2 joins the read set
		pse(65*ms, 2, 0, 3), // revoked 4ms in — not the clock, fine
	}
	wantClean(t, Verify(Config{Delta: 50 * ms}, evs))
}

func TestWindowEarlyDowngradeCaught(t *testing.T) {
	evs := []obs.Event{
		pse(0, 1, 2, 1),
		{T: 10 * ms, Site: 1, Type: obs.EvDowngrade, Seg: 1, Cycle: 2},
	}
	wantInv(t, Verify(Config{Delta: 50 * ms}, evs), InvWindow)
	// InsiderUpgrades mode waives the window invariant.
	wantClean(t, Verify(Config{Delta: 50 * ms, InsiderUpgrades: true}, evs))
}

func TestDowngradeRefreshesWindow(t *testing.T) {
	evs := []obs.Event{
		pse(0, 1, 2, 1),
		{T: 60 * ms, Site: 1, Type: obs.EvDowngrade, Seg: 1, Cycle: 2}, // legal: window expired
		pse(80*ms, 1, 0, 3), // 20ms into the fresh read window — violation
	}
	wantInv(t, Verify(Config{Delta: 50 * ms}, evs), InvWindow)
}

func TestUpgradeWindowEnforced(t *testing.T) {
	evs := []obs.Event{
		pse(0, 1, 1, 1), // read copy; clock unknown yet
		{T: 5 * ms, Site: 1, Type: obs.EvUpgrade, Seg: 1, Cycle: 2},
		pse(5*ms, 1, 2, 0),  // echo install after upgrade
		pse(20*ms, 1, 0, 3), // revoked 15ms into the upgrade's window
	}
	wantInv(t, Verify(Config{Delta: 50 * ms}, evs), InvWindow)
}

func TestReadOfInvalidatedCopy(t *testing.T) {
	evs := append(legalHandoff(),
		pse(5*ms, 1, 0, 2),                       // site 1 invalidated
		oprec(6*ms, 1, obs.EvRead, 0, 1, 0xbeef), // ...but still reads
	)
	wantInv(t, Verify(Config{Sites: 2}, evs), InvValidCopy)
}

func TestWriteOnReadOnlyCopy(t *testing.T) {
	evs := []obs.Event{
		pse(0, 1, 1, 1), // read copy
		oprec(1*ms, 1, obs.EvWrite, 0, 1, 0xbeef),
	}
	wantInv(t, Verify(Config{Sites: 2}, evs), InvValidCopy)
}

func TestOpAtUnknownSitePermitted(t *testing.T) {
	// A trace that starts mid-run: ops at sites never mentioned before
	// are not violations.
	evs := []obs.Event{
		oprec(1*ms, 1, obs.EvRead, 0, 1, 0xbeef),
		oprec(2*ms, 1, obs.EvWrite, 0, 1, 0xcafe),
	}
	wantClean(t, Verify(Config{Sites: 2}, evs))
}

func TestReadLatestWrite(t *testing.T) {
	evs := append(legalHandoff(),
		oprec(5*ms, 1, obs.EvWrite, 0, 1, 0xcafe),
		oprec(6*ms, 1, obs.EvRead, 0, 1, 0xbeef), // stale digest
	)
	wantInv(t, Verify(Config{Sites: 2}, evs), InvLatestWrite)
	clean := append(legalHandoff(),
		oprec(5*ms, 1, obs.EvWrite, 0, 1, 0xcafe),
		oprec(6*ms, 1, obs.EvRead, 0, 1, 0xcafe),
	)
	wantClean(t, Verify(Config{Sites: 2}, clean))
}

func TestOverlappingWriteEvictsOracle(t *testing.T) {
	evs := append(legalHandoff(),
		oprec(5*ms, 1, obs.EvWrite, 0, 4, 0xcafe), // write [0,4)
		oprec(6*ms, 1, obs.EvWrite, 2, 4, 0xf00d), // overlapping [2,6) evicts it
		oprec(7*ms, 1, obs.EvRead, 0, 4, 0x9999),  // unknown now — permissive
	)
	wantClean(t, Verify(Config{Sites: 2}, evs))
}

func TestSchemaSiteOutOfRange(t *testing.T) {
	wantInv(t, Verify(Config{Sites: 2}, []obs.Event{pse(0, 5, 2, 0)}), InvSchema)
}

func TestSchemaBadPageStateArg(t *testing.T) {
	wantInv(t, Verify(Config{}, []obs.Event{pse(0, 0, 7, 0)}), InvSchema)
}

func TestMaxViolationsBounds(t *testing.T) {
	c := NewChecker(Config{MaxViolations: 2})
	for i := 0; i < 5; i++ {
		c.Feed(pse(time.Duration(i)*ms, 0, 7, 0))
	}
	if len(c.Violations()) != 2 || c.Dropped() != 3 {
		t.Fatalf("got %d violations, %d dropped", len(c.Violations()), c.Dropped())
	}
}
