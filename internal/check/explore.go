package check

import (
	"math/rand"

	"mirage/internal/chaos"
)

// ExploreOpts bounds an exploration.
type ExploreOpts struct {
	// MaxRuns caps executed schedules; 0 = unlimited for Exhaustive
	// (runs until the choice tree is exhausted) and len(seeds) for
	// RandomWalk.
	MaxRuns int
	// MaxDepth is how many choice points (counted from the start of a
	// run) are branched exhaustively; ties past it take kernel FIFO
	// order and are counted in Result.Truncated. 0 = unlimited.
	MaxDepth int
	// MaxSteps is the kernel step budget per run (0 = 2e6); exceeding
	// it is a liveness violation, not a hang.
	MaxSteps int
	// ShrinkBudget caps replays spent minimizing a counterexample
	// (0 = 400).
	ShrinkBudget int
	// OpsPerWalk is the generated workload length when RandomWalk gets
	// a scenario with nil Ops (0 = 8).
	OpsPerWalk int
}

// Result summarizes one exploration.
type Result struct {
	// Runs is the number of schedules executed.
	Runs int
	// ChoicePoints is the total scheduling decisions taken across runs.
	ChoicePoints int64
	// Deepest is the most choice points seen in a single run; MaxBranch
	// the widest tie.
	Deepest   int
	MaxBranch int
	// Complete reports that Exhaustive enumerated the entire bounded
	// choice tree (always false for RandomWalk).
	Complete bool
	// Truncated counts runs that hit ties past MaxDepth which were not
	// branched.
	Truncated int
	// Counterexample is the shrunk, replayable repro of the first
	// violating schedule, nil when every explored schedule was clean.
	Counterexample *Repro
	// Violations are the counterexample's violations as its replay
	// reports them.
	Violations []Violation
}

func (r *Result) observe(sch *scheduler) {
	r.Runs++
	r.ChoicePoints += int64(len(sch.branch))
	if len(sch.branch) > r.Deepest {
		r.Deepest = len(sch.branch)
	}
	for _, b := range sch.branch {
		if b > r.MaxBranch {
			r.MaxBranch = b
		}
	}
}

func (r *Result) counterexample(sc Scenario, sch *scheduler, opt ExploreOpts) {
	repro := Repro{Scenario: sc, Choices: append([]int(nil), sch.taken...)}
	repro = Shrink(repro, opt)
	r.Counterexample = &repro
	r.Violations = repro.Violations
}

// Exhaustive enumerates every same-instant interleaving of the scenario
// (depth-first over the choice tree via an odometer on recorded
// branching factors), stopping at the first violating schedule. Only
// tiny configurations are tractable: 2–3 sites, 1–2 pages, ≤6 ops.
func Exhaustive(sc Scenario, opt ExploreOpts) Result {
	var res Result
	var prefix []int
	for {
		if opt.MaxRuns > 0 && res.Runs >= opt.MaxRuns {
			return res
		}
		sch := &scheduler{choices: prefix}
		r := runScenario(sc, sch, opt.MaxSteps)
		res.observe(sch)
		if len(r.violations) > 0 {
			res.counterexample(sc, sch, opt)
			return res
		}
		// Odometer increment: find the rightmost branched choice point
		// with siblings left, bump it, and clear everything after.
		depth := len(sch.branch)
		if opt.MaxDepth > 0 && depth > opt.MaxDepth {
			for _, b := range sch.branch[opt.MaxDepth:] {
				if b > 1 {
					res.Truncated++
					break
				}
			}
			depth = opt.MaxDepth
		}
		j := depth - 1
		for j >= 0 && sch.taken[j]+1 >= sch.branch[j] {
			j--
		}
		if j < 0 {
			res.Complete = res.Truncated == 0
			return res
		}
		prefix = append(append(prefix[:0:0], sch.taken[:j]...), sch.taken[j]+1)
	}
}

// RandomWalk explores one seeded random schedule per seed, stopping at
// the first violation. When the scenario has nil Ops a workload is
// generated per seed (GenOps), and a chaos plan with seed 0 inherits
// the walk's seed — so each seed explores a distinct (workload, fault
// schedule, interleaving) triple. The returned counterexample's
// scenario has the generated ops and seeded plan materialized: replay
// needs no seed.
func RandomWalk(sc Scenario, seeds []int64, opt ExploreOpts) Result {
	var res Result
	for _, seed := range seeds {
		if opt.MaxRuns > 0 && res.Runs >= opt.MaxRuns {
			return res
		}
		run := sc
		if run.Ops == nil {
			n := opt.OpsPerWalk
			if n <= 0 {
				n = 8
			}
			run.Ops = GenOps(seed, run.Sites, max(run.Pages, 1), n)
		}
		if run.Chaos != "" {
			if p, err := chaos.Parse(run.Chaos); err == nil && p.Seed == 0 {
				p.Seed = seed
				run.Chaos = p.String()
			}
		}
		sch := &scheduler{rng: rand.New(rand.NewSource(seed))}
		r := runScenario(run, sch, opt.MaxSteps)
		res.observe(sch)
		if len(r.violations) > 0 {
			res.counterexample(run, sch, opt)
			return res
		}
	}
	return res
}

// newRng is the one rand constructor in the package; exploration and
// shrinking must derive all randomness from explicit seeds.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// GenOps generates a deterministic n-op workload for a seed: random
// sites and pages, ~half writes, each write with a distinct value so
// the latest-write oracle has teeth.
func GenOps(seed int64, sites, pages, n int) []Op {
	rng := rand.New(rand.NewSource(seed ^ 0x6d697261)) // "mira"
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{
			Site:  rng.Intn(sites),
			Page:  int32(rng.Intn(pages)),
			Write: rng.Intn(2) == 0,
		}
		if ops[i].Write {
			ops[i].Val = byte(1 + i%250)
		}
	}
	return ops
}
