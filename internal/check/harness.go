package check

import (
	"fmt"
	"math/rand"
	"time"

	"mirage/internal/chaos"
	"mirage/internal/core"
	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/sim"
	"mirage/internal/wire"
)

// Op is one shared-memory access in an explored scenario: a 1-byte
// read or write at offset 0 of a page. Ops are issued concurrently
// across sites and sequentially within a site, like processes on
// distinct Mirage machines.
type Op struct {
	Site  int   `json:"site"`
	Page  int32 `json:"page"`
	Write bool  `json:"write"`
	Val   byte  `json:"val,omitempty"`
}

func (o Op) String() string {
	if o.Write {
		return fmt.Sprintf("s%d:w(p%d)=%d", o.Site, o.Page, o.Val)
	}
	return fmt.Sprintf("s%d:r(p%d)", o.Site, o.Page)
}

// Scenario is a self-contained explorable configuration: cluster shape,
// protocol knobs, the op workload, and an optional chaos plan. It
// serializes to JSON inside a Repro, so everything that influences the
// run must live here.
type Scenario struct {
	Sites int           `json:"sites"`
	Pages int           `json:"pages"`
	Delta time.Duration `json:"delta"`
	// Policy is the clock site's invalidation policy (core.InvalPolicy:
	// 0 retry, 1 honor-close, 2 queue).
	Policy int `json:"policy"`
	// Hop is the per-hop message delay; 0 means 1ms. Distinct from 0 so
	// protocol steps have duration and Δ windows mean something.
	Hop time.Duration `json:"hop,omitempty"`
	Ops []Op          `json:"ops"`
	// Chaos, when non-empty, is an internal/chaos plan in its grammar;
	// it switches the reliability layer on (chaos without it livelocks
	// by design).
	Chaos string `json:"chaos,omitempty"`
	// Failover enables the takeover layer (and the reliability layer it
	// requires), so crash windows in Chaos lead to recoveries instead of
	// failed ops.
	Failover bool `json:"failover,omitempty"`
	// Replicas is the segment's replication factor
	// (core.Replication.Replicas); > 0 implies Failover.
	Replicas int `json:"replicas,omitempty"`
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Pages <= 0 {
		sc.Pages = 1
	}
	if sc.Hop == 0 {
		sc.Hop = time.Millisecond
	}
	return sc
}

// checkerConfig derives the history-checker configuration implied by a
// scenario.
func (sc Scenario) checkerConfig() Config {
	return Config{
		Sites:    sc.Sites,
		Delta:    sc.Delta,
		Reliable: sc.reliable(),
	}
}

// reliable reports whether the scenario runs with the reliability layer
// (and so grant cycles may abort without a commit).
func (sc Scenario) reliable() bool {
	return sc.Chaos != "" || sc.Failover || sc.Replicas > 0
}

// scheduler records and replays same-instant scheduling choices. A
// prescribed prefix (choices) is consumed first; past it, picks come
// from rng when set and otherwise default to 0 (kernel FIFO order).
// branch/taken record the branching factor and pick at every choice
// point, which is what the odometer in Exhaustive and the Repro
// serialization consume.
type scheduler struct {
	choices []int
	rng     *rand.Rand
	branch  []int
	taken   []int
}

func (s *scheduler) choose(n int) int {
	i := len(s.taken)
	pick := 0
	switch {
	case i < len(s.choices):
		pick = s.choices[i]
		if pick < 0 || pick >= n {
			pick = 0
		}
	case s.rng != nil:
		pick = s.rng.Intn(n)
	}
	s.branch = append(s.branch, n)
	s.taken = append(s.taken, pick)
	return pick
}

// runResult is everything one explored execution produced.
type runResult struct {
	violations []Violation
	trace      []obs.Event
	steps      int
	opsDone    int
	opsFailed  int // degraded ops (chaos runs only)
}

// defaultMaxSteps bounds one explored run; a run that exhausts it is
// reported as a liveness violation rather than hanging the explorer.
const defaultMaxSteps = 2_000_000

// harness wires core engines over the sim kernel with chooser-driven
// scheduling, mirroring the ipc cluster's environment in miniature.
type harness struct {
	k       *sim.Kernel
	engines []*core.Engine
	inj     *chaos.Injector
	hop     time.Duration
	done    int
	failed  int
}

type hEnv struct {
	h    *harness
	site int
}

func (e hEnv) Site() int          { return e.site }
func (e hEnv) Now() time.Duration { return e.h.k.Now().Duration() }
func (e hEnv) After(d time.Duration, fn func()) func() {
	t := e.h.k.After(d, fn)
	return func() { t.Cancel() }
}
func (e hEnv) Exec(cost time.Duration, fn func()) { e.h.k.After(cost, fn) }

func (e hEnv) Send(to int, m core.NetMsg) {
	h := e.h
	d := h.hop
	if to == e.site {
		// Loopback: immediate and exempt from chaos, like ipc's.
		d = 0
	} else if h.inj != nil {
		kind := wire.KInvalid
		if wm, ok := m.(*wire.Msg); ok {
			kind = wm.Kind
		}
		a := h.inj.Apply(h.k.Now().Duration(), e.site, to, kind)
		if a.Drop {
			return
		}
		d += a.Delay
		for i := 0; i < a.Dup; i++ {
			h.k.After(d, func() { h.engines[to].Deliver(m) })
		}
	}
	h.k.After(d, func() { h.engines[to].Deliver(m) })
}

const (
	scenarioSeg      = 1
	scenarioPageSize = 64
)

// runScenario executes one schedule of the scenario and checks it: the
// trace goes through the history checker, and the quiesced cluster
// through the record-agreement checks. maxSteps 0 means
// defaultMaxSteps.
func runScenario(sc Scenario, sch *scheduler, maxSteps int) runResult {
	sc = sc.withDefaults()
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	h := &harness{k: sim.NewKernel(), hop: sc.Hop}
	h.k.SetChooser(sch.choose)

	o := &obs.Obs{Tracer: obs.NewBufferCap(1 << 22)}
	opt := core.Options{
		Policy: core.InvalPolicy(sc.Policy),
		Costs:  &core.Costs{},
		Obs:    o,
	}
	if sc.Chaos != "" {
		plan, err := chaos.Parse(sc.Chaos)
		if err != nil {
			return runResult{violations: []Violation{{
				Invariant: InvSchema, Index: -1,
				Detail: fmt.Sprintf("bad chaos plan: %v", err),
			}}}
		}
		h.inj = chaos.New(*plan)
	}
	if sc.reliable() {
		// Timeouts sized to the hop so give-up happens in bounded
		// virtual time.
		opt.Reliability = &core.Reliability{
			AckTimeout:     20 * sc.Hop,
			MaxBackoff:     200 * sc.Hop,
			MaxAttempts:    5,
			RequestTimeout: 4000 * sc.Hop,
		}
	}
	if sc.Failover || sc.Replicas > 0 {
		opt.Failover = &core.Failover{Sites: sc.Sites, RecoverTimeout: 100 * sc.Hop}
	}
	if sc.Replicas > 0 {
		opt.Replication = &core.Replication{Replicas: sc.Replicas, Sites: sc.Sites}
	}
	for i := 0; i < sc.Sites; i++ {
		h.engines = append(h.engines, core.New(hEnv{h, i}, opt))
	}
	meta := &mem.Segment{
		ID: scenarioSeg, Key: 42, Size: sc.Pages * scenarioPageSize,
		PageSize: scenarioPageSize, Pages: sc.Pages, Library: 0,
		Delta: sc.Delta, Mode: 0o666,
	}
	h.engines[0].CreateSegment(meta)
	for i := 1; i < sc.Sites; i++ {
		h.engines[i].AttachSegment(meta)
	}

	// Queue ops per site; each site runs its ops sequentially through a
	// fault loop, all sites starting concurrently at t=0.
	bySite := make([][]Op, sc.Sites)
	for _, op := range sc.Ops {
		if op.Site < 0 || op.Site >= sc.Sites || op.Page < 0 || int(op.Page) >= sc.Pages {
			return runResult{violations: []Violation{{
				Invariant: InvSchema, Index: -1,
				Detail: fmt.Sprintf("op %v outside scenario bounds", op),
			}}}
		}
		bySite[op.Site] = append(bySite[op.Site], op)
	}
	for site := range bySite {
		if len(bySite[site]) > 0 {
			h.startSite(site, bySite[site])
		}
	}

	res := runResult{}
	for res.steps < maxSteps && h.k.Step() {
		res.steps++
	}
	res.opsDone, res.opsFailed = h.done, h.failed
	res.violations = Verify(sc.checkerConfig(), traceOf(o))
	res.trace = traceOf(o)
	if res.steps >= maxSteps {
		res.violations = append(res.violations, Violation{
			Invariant: InvLiveness, Index: -1,
			Detail: fmt.Sprintf("run exceeded %d kernel steps", maxSteps),
		})
	} else if h.done+h.failed < len(sc.Ops) {
		res.violations = append(res.violations, Violation{
			Invariant: InvLiveness, Index: -1,
			Detail: fmt.Sprintf("%d of %d ops starved at drain",
				len(sc.Ops)-h.done-h.failed, len(sc.Ops)),
		})
	}
	if sc.Chaos == "" {
		// Without faults the drained cluster must be quiescent with the
		// library record matching actual placement; under chaos the
		// record may legitimately be degraded (shed entries, denied
		// grants), and the trace checker already covered safety.
		res.violations = append(res.violations, finalChecks(sc, h.engines)...)
	}
	return res
}

func traceOf(o *obs.Obs) []obs.Event {
	b := o.Buffer()
	if b == nil {
		return nil
	}
	return b.Events()
}

// startSite chains ops[0..] at a site: fault-loop until granted (or
// degraded), perform the byte access, record it, then post the next op.
func (h *harness) startSite(site int, ops []Op) {
	e := h.engines[site]
	next := 0
	var issue func()
	var attempt func()
	issue = func() {
		if next >= len(ops) {
			return
		}
		op := ops[next]
		next++
		attempt = func() {
			if err := e.FaultError(scenarioSeg, op.Page); err != nil {
				h.failed++
				h.k.After(0, issue)
				return
			}
			if e.CheckAccess(scenarioSeg, op.Page, op.Write) != mmu.NoFault {
				e.Fault(scenarioSeg, op.Page, op.Write, 100+int32(site), attempt)
				return
			}
			f := e.Frame(scenarioSeg, op.Page)
			if op.Write {
				f[0] = op.Val
			}
			e.RecordOp(scenarioSeg, op.Page, 0, op.Write, f[:1])
			h.done++
			h.k.After(0, issue)
		}
		attempt()
	}
	h.k.After(0, issue)
}

// finalChecks compares the quiesced library record against actual page
// placement — the explorer's port of the core quick-test oracle.
func finalChecks(sc Scenario, engines []*core.Engine) []Violation {
	var out []Violation
	bad := func(page int32, format string, args ...any) {
		out = append(out, Violation{
			Invariant: InvRecord, Index: -1,
			Detail: fmt.Sprintf("page %d: ", page) + fmt.Sprintf(format, args...),
		})
	}
	for p := 0; p < sc.Pages; p++ {
		page := int32(p)
		st := engines[0].LibraryState(scenarioSeg, page)
		if st.Busy || st.Queued > 0 {
			bad(page, "library not quiescent at drain (busy=%v queued=%d)",
				st.Busy, st.Queued)
			continue
		}
		for s, e := range engines {
			prot := e.Seg(scenarioSeg).Prot(p)
			switch {
			case st.Writer == s:
				if prot != mmu.ReadWrite {
					bad(page, "library records site %d as writer, copy is %v", s, prot)
				}
			case st.Readers.Has(s):
				if prot != mmu.ReadOnly {
					bad(page, "library records site %d as reader, copy is %v", s, prot)
				}
			default:
				if prot != mmu.Invalid {
					bad(page, "site %d holds a %v copy the library does not record", s, prot)
				}
			}
		}
	}
	return out
}
