package check

import (
	"testing"
	"time"

	"mirage/internal/core"
	"mirage/internal/mem"
	"mirage/internal/obs"
)

// nullEnv is a do-nothing core.Env for alloc measurement.
type nullEnv struct{}

func (nullEnv) Site() int                          { return 0 }
func (nullEnv) Now() time.Duration                 { return 0 }
func (nullEnv) After(time.Duration, func()) func() { return func() {} }
func (nullEnv) Send(int, core.NetMsg)              {}
func (nullEnv) Exec(cost time.Duration, fn func()) { fn() }

func opTestEngine(o *obs.Obs) *core.Engine {
	e := core.New(nullEnv{}, core.Options{Costs: &core.Costs{}, Obs: o})
	e.CreateSegment(&mem.Segment{
		ID: 1, Key: 1, Size: 128, PageSize: 64, Pages: 2, Library: 0, Mode: 0o666,
	})
	return e
}

// The acceptance gate: with checking/tracing off, the per-access
// RecordOp hook must cost zero allocations — it sits on the hottest
// path in the tree (every Read/Write/At access).
func TestRecordOpDisabledZeroAllocs(t *testing.T) {
	buf := []byte{42}
	for _, tc := range []struct {
		name string
		o    *obs.Obs
	}{
		{"nil-obs", nil},
		{"metrics-only", &obs.Obs{Metrics: obs.NewRegistry()}},
	} {
		e := opTestEngine(tc.o)
		n := testing.AllocsPerRun(1000, func() {
			e.RecordOp(1, 0, 0, true, buf)
			e.RecordOp(1, 0, 0, false, buf)
		})
		if n != 0 {
			t.Errorf("%s: RecordOp allocates %.1f/op, want 0", tc.name, n)
		}
	}
}

// With tracing on, RecordOp must actually emit both op events.
func TestRecordOpEmits(t *testing.T) {
	o := &obs.Obs{Tracer: obs.NewBuffer()}
	e := opTestEngine(o)
	e.RecordOp(1, 1, 3, true, []byte{1, 2})
	e.RecordOp(1, 1, 3, false, []byte{1, 2})
	evs := o.Buffer().Events()
	if len(evs) < 2 {
		t.Fatalf("got %d events", len(evs))
	}
	w, r := evs[len(evs)-2], evs[len(evs)-1]
	if w.Type != obs.EvWrite || r.Type != obs.EvRead {
		t.Fatalf("types %v, %v", w.Type, r.Type)
	}
	if w.Seg != 1 || w.Page != 1 || w.From != 3 || w.To != 2 {
		t.Fatalf("write event fields %+v", w)
	}
	if w.Arg != r.Arg || w.Arg == 0 {
		t.Fatalf("digest mismatch: write %x read %x", w.Arg, r.Arg)
	}
}
