// Package check is the coherence verification subsystem: a trace-driven
// history checker and a schedule explorer for the Mirage DSM protocol.
//
// Mirage's claim (PAPER.md §3–§4) is coherence: at most one writable
// copy of a page ever exists, every read observes the latest completed
// write, and the clock site's time window Δ guarantees uninterrupted
// possession. This package turns those claims into executable
// invariants.
//
// The history checker (Checker, Verify) consumes the schema-v1 protocol
// event trace from internal/obs — including the EvRead/EvWrite per-op
// records the access layers emit — and verifies, per page:
//
//   - single-writer exclusion: a writable copy never coexists with any
//     other copy (paper Table 1);
//   - write serialization: library grant cycles never overlap and cycle
//     numbers only move forward (§6.0);
//   - read-your-writes / latest-write: a read of a byte range observes
//     the digest of the most recent completed write to it (§3);
//   - no reads of invalidated copies: op events only occur at sites
//     whose copy is live (§6.1);
//   - Δ-window possession: a granted window is never revoked early at
//     the clock site, under any invalidation policy (§6.1, Table 1);
//   - exactly-once grant application: no grant cycle commits twice and
//     no granted install is applied twice (reliability layer, DESIGN.md
//     §7);
//   - replicated-log agreement: with Options.Replication on, sites
//     apply log entries in strictly ascending index order and agree on
//     every (epoch, index) position, and no quorum-acknowledged
//     mutation is lost across a takeover election (DESIGN.md §15).
//
// The schedule explorer (Exhaustive, RandomWalk) drives small clusters
// of real protocol engines over the internal/sim kernel, permuting
// same-instant event order through the kernel's Chooser hook: bounded
// exhaustive enumeration for tiny configurations, seed-swept random
// walks — optionally composed with internal/chaos fault plans — for
// larger ones. A violating schedule is shrunk and serialized as a Repro
// (scenario + choice prefix) that replays byte-identically.
package check

import (
	"fmt"
	"time"

	"mirage/internal/obs"
)

// Invariant names reported in Violations.
const (
	// InvSingleWriter: a writable copy coexisted with another copy.
	InvSingleWriter = "single-writer"
	// InvWriteSerial: grant cycles overlapped or ran backwards.
	InvWriteSerial = "write-serialization"
	// InvLatestWrite: a read observed a value other than the latest
	// completed write.
	InvLatestWrite = "read-latest-write"
	// InvValidCopy: an op ran at a site whose copy was invalid.
	InvValidCopy = "read-valid-copy"
	// InvWindow: possession was revoked inside an unexpired Δ window.
	InvWindow = "window-revoked-early"
	// InvExactlyOnce: a grant cycle or granted install applied twice.
	InvExactlyOnce = "grant-exactly-once"
	// InvLogPrefix: replicated-log prefix agreement was broken — a site
	// applied log indexes out of order within an epoch, or two sites
	// disagreed on the entry at one (epoch, index) position.
	InvLogPrefix = "log-prefix"
	// InvApplyLost: a takeover election installed a log tail behind a
	// quorum-acknowledged (committed) mutation — an acked append was
	// lost across the takeover.
	InvApplyLost = "acked-append-lost"
	// InvLiveness: the run drained with ops still blocked (explorer
	// harness only; never produced by the trace checker).
	InvLiveness = "liveness"
	// InvRecord: the library's record disagreed with actual page
	// placement after quiescence (explorer harness only).
	InvRecord = "final-record-agreement"
)

// Config parameterizes the history checker.
type Config struct {
	// Sites is the cluster size; events naming sites outside [0,Sites)
	// are rejected. Zero skips the bound check.
	Sites int `json:"sites"`
	// Delta is the window granted with every page (Options.Delta /
	// ipc.Config.Delta). Zero disables the early-revocation invariant.
	// Grants do not carry Δ in the trace, so for runs with per-page or
	// dynamically tuned Δs pass a LOWER BOUND on every granted window —
	// AutoDelta runs pass AutoDelta.Min (the controller's clamp floor).
	// The invariant is one-sided sound under any under-estimate: a
	// revocation earlier than grant+bound is earlier than the true
	// window too, so every violation reported is real; only violations
	// inside [bound, trueΔ) go unreported. Hand-retuned runs
	// (SetSegmentDelta mid-run) with no known floor still need 0.
	Delta time.Duration `json:"delta"`
	// Slack is the timestamp tolerance for the window invariant. Keep 0
	// for virtual-clock traces; wall-clock traces may need a little for
	// timer coarseness.
	Slack time.Duration `json:"slack"`
	// Reliable marks a trace recorded with the reliability layer on:
	// grant cycles may abort without a commit, so a new cycle opening
	// while one is open is legal (the checker closes it implicitly).
	Reliable bool `json:"reliable"`
	// InsiderUpgrades marks a trace recorded with
	// core.Options.SkipInsiderUpgradeCheck: clock sites legitimately
	// yield inside the window to insider upgrades, so the window
	// invariant is skipped.
	InsiderUpgrades bool `json:"insiderUpgrades,omitempty"`
	// MaxViolations stops the checker after that many findings;
	// default 100.
	MaxViolations int `json:"-"`
}

// Violation is one invariant breach found in a trace.
type Violation struct {
	// Invariant is one of the Inv* names.
	Invariant string `json:"invariant"`
	// Index is the 0-based position of the offending event in the
	// checked trace, -1 for post-run findings.
	Index int `json:"index"`
	// Event is the offending event (zero for post-run findings).
	Event obs.Event `json:"event"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	if v.Index < 0 {
		return fmt.Sprintf("[%s] %s", v.Invariant, v.Detail)
	}
	return fmt.Sprintf("[%s] event %d (%v site=%d seg=%d page=%d t=%v): %s",
		v.Invariant, v.Index, v.Event.Type, v.Event.Site, v.Event.Seg,
		v.Event.Page, v.Event.T, v.Detail)
}

// Verify runs the history checker over a complete trace and returns
// every violation found (nil for a clean trace).
func Verify(cfg Config, events []obs.Event) []Violation {
	c := NewChecker(cfg)
	for _, ev := range events {
		c.Feed(ev)
	}
	return c.Violations()
}
