package check

import (
	"bytes"
	"testing"
	"time"

	"mirage/internal/obs"
)

// tinyScenario is the canonical exhaustively-enumerable configuration:
// two sites, one page, conflicting writes plus a read-back.
func tinyScenario() Scenario {
	return Scenario{
		Sites: 2, Pages: 1, Delta: 10 * ms, Policy: 2, // queue
		Ops: []Op{
			{Site: 0, Write: true, Val: 7},
			{Site: 1, Write: true, Val: 9},
			{Site: 1, Write: false},
			{Site: 0, Write: false},
		},
	}
}

// windowScenario provokes a revocation attempt inside a generous Δ
// window: site 1 takes the page (and the window), site 2 immediately
// wants it. Correct engines park the invalidation until expiry; the
// mirage_mutation build honors it early, which the mutation test must
// catch. Shared with mutation_test.go.
func windowScenario() Scenario {
	return Scenario{
		Sites: 3, Pages: 1, Delta: 50 * ms, Policy: 2,
		Ops: []Op{
			{Site: 1, Write: true, Val: 7},
			{Site: 2, Write: true, Val: 9},
		},
	}
}

// replScenario is the replicated-takeover configuration shared with
// mutation_test.go: 3 sites, replication factor 2, the leader crashing
// mid-run. Sites 1 and 2 each alternate writing their own page and
// reading the other's, so every op needs a fresh library cycle (the
// other site's write keeps invalidating the read copy) and the workload
// stays active across the crash instant: early cycles commit through
// the gated quorum, later ones run into the dead leader and force the
// give-up → election takeover. Δ is 0 so the window invariant (and its
// own mutation) stays out of the picture: what this scenario checks is
// the replicated log.
func replScenario() Scenario {
	var ops []Op
	for i := 0; i < 6; i++ {
		ops = append(ops,
			Op{Site: 1, Page: 0, Write: true, Val: byte(1 + i)},
			Op{Site: 1, Page: 1, Write: false},
			Op{Site: 2, Page: 1, Write: true, Val: byte(101 + i)},
			Op{Site: 2, Page: 0, Write: false},
		)
	}
	return Scenario{
		Sites: 3, Pages: 2, Policy: 2, Replicas: 2,
		Chaos: "crash site=0 from=25ms",
		Ops:   ops,
	}
}

// In the default build the replicated takeover must explore clean: the
// election installs a log tail at or past every committed mutation
// (acked-append-lost) and every site's applied stream agrees
// (log-prefix).
func TestReplScenarioCleanDefault(t *testing.T) {
	// The default schedule must actually exercise what the scenario
	// claims: commits before the crash, an election takeover after it.
	base := runScenario(replScenario(), &scheduler{}, 0)
	var commits, elects int
	for _, ev := range base.trace {
		switch {
		case ev.Type == obs.EvReplicate && ev.From == ev.Site:
			commits++
		case ev.Type == obs.EvElect:
			elects++
		}
	}
	if commits == 0 || elects == 0 {
		t.Fatalf("scenario exercised %d commits and %d elections; want both > 0", commits, elects)
	}

	res := Exhaustive(replScenario(), ExploreOpts{MaxRuns: 50})
	if res.Counterexample != nil {
		t.Fatalf("violation in correct protocol: %v", res.Violations)
	}
}

// In the default build the same scenario must explore clean — the
// window is always waited out (Table 1), under every policy.
func TestWindowScenarioCleanDefault(t *testing.T) {
	for pol := 0; pol <= 2; pol++ {
		sc := windowScenario()
		sc.Policy = pol
		res := Exhaustive(sc, ExploreOpts{MaxRuns: 5000})
		if res.Counterexample != nil {
			t.Fatalf("policy %d: %v", pol, res.Violations)
		}
		if !res.Complete {
			t.Fatalf("policy %d: window scenario should enumerate fully (runs=%d)", pol, res.Runs)
		}
	}
}

func TestExhaustiveTinyComplete(t *testing.T) {
	res := Exhaustive(tinyScenario(), ExploreOpts{})
	t.Logf("runs=%d choicePoints=%d deepest=%d maxBranch=%d",
		res.Runs, res.ChoicePoints, res.Deepest, res.MaxBranch)
	if res.Counterexample != nil {
		t.Fatalf("violation in correct protocol: %v", res.Violations)
	}
	if !res.Complete {
		t.Fatalf("enumeration incomplete (truncated=%d)", res.Truncated)
	}
	if res.Runs < 2 {
		t.Fatalf("expected >1 interleaving, got %d runs", res.Runs)
	}
}

func TestExhaustiveAllPolicies(t *testing.T) {
	for pol := 0; pol <= 2; pol++ {
		sc := tinyScenario()
		sc.Policy = pol
		sc.Ops = sc.Ops[:3] // keep retry-policy trees small
		res := Exhaustive(sc, ExploreOpts{MaxDepth: 20, MaxRuns: 20000})
		t.Logf("policy=%d runs=%d complete=%v truncated=%d", pol, res.Runs, res.Complete, res.Truncated)
		if res.Counterexample != nil {
			t.Fatalf("policy %d: violation in correct protocol: %v", pol, res.Violations)
		}
	}
}

func TestExhaustiveMaxRunsBound(t *testing.T) {
	res := Exhaustive(tinyScenario(), ExploreOpts{MaxRuns: 3})
	if res.Runs != 3 || res.Complete {
		t.Fatalf("runs=%d complete=%v, want exactly 3 incomplete", res.Runs, res.Complete)
	}
}

func TestRandomWalkCleanUnderChaos(t *testing.T) {
	sc := Scenario{
		Sites: 3, Pages: 2, Delta: 5 * ms, Policy: 2,
		Chaos: "drop p=0.15; dup p=0.1; delay p=0.2 max=5ms",
	}
	seeds := make([]int64, 12)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	res := RandomWalk(sc, seeds, ExploreOpts{OpsPerWalk: 10})
	t.Logf("runs=%d choicePoints=%d deepest=%d", res.Runs, res.ChoicePoints, res.Deepest)
	if res.Counterexample != nil {
		t.Fatalf("violation under chaos with reliability on: %v", res.Violations)
	}
	if res.Runs != len(seeds) {
		t.Fatalf("ran %d walks, want %d", res.Runs, len(seeds))
	}
}

func TestRandomWalkCleanNoChaos(t *testing.T) {
	sc := Scenario{Sites: 3, Pages: 2, Delta: 8 * ms, Policy: 0}
	res := RandomWalk(sc, []int64{101, 102, 103, 104, 105}, ExploreOpts{OpsPerWalk: 12})
	if res.Counterexample != nil {
		t.Fatalf("violation in correct protocol: %v", res.Violations)
	}
}

// A starved run must surface as a liveness counterexample with a
// replayable, shrunk repro — this exercises the whole counterexample
// pipeline without needing a protocol bug.
func TestStepBudgetProducesReplayableCounterexample(t *testing.T) {
	sc := tinyScenario()
	res := Exhaustive(sc, ExploreOpts{MaxSteps: 10, MaxRuns: 50})
	if res.Counterexample == nil {
		t.Fatal("expected a liveness counterexample under a 10-step budget")
	}
	wantInv(t, res.Violations, InvLiveness)
	r := *res.Counterexample
	// Shrinking must not leave irrelevant trailing choices.
	if n := len(r.Choices); n > 0 && r.Choices[n-1] == 0 {
		t.Fatalf("unshrunk trailing zero choices: %v", r.Choices)
	}
	// Hmm: replay runs with the full default step budget, so the
	// liveness violation will not reproduce there — the repro's
	// violations field is authoritative for budget-bound findings.
	if len(r.Violations) == 0 {
		t.Fatal("shrunk repro lost its violations")
	}
}

func TestReplayByteIdentical(t *testing.T) {
	r := Repro{Scenario: tinyScenario(), Choices: []int{1, 0, 1, 1, 0, 1}}
	a := r.Replay()
	b := r.Replay()
	if a.TraceSHA != b.TraceSHA || a.Events != b.Events || a.Steps != b.Steps {
		t.Fatalf("replays diverged: %+v vs %+v", a, b)
	}
	if a.Events == 0 {
		t.Fatal("replay produced no trace")
	}
	// A different schedule must generally produce a different trace —
	// sanity that the chooser actually steers execution.
	r2 := Repro{Scenario: tinyScenario(), Choices: nil}
	c := r2.Replay()
	if c.TraceSHA == a.TraceSHA {
		t.Log("note: chosen schedule coincided with FIFO; not failing, but suspicious")
	}
}

func TestReplayChaosDeterministic(t *testing.T) {
	sc := Scenario{
		Sites: 3, Pages: 1, Delta: 5 * ms, Policy: 2,
		Ops:   GenOps(42, 3, 1, 8),
		Chaos: "seed=42; drop p=0.2; delay p=0.3 max=4ms",
	}
	r := Repro{Scenario: sc, Choices: []int{2, 1, 0, 1}}
	a, b := r.Replay(), r.Replay()
	if a.TraceSHA != b.TraceSHA {
		t.Fatalf("chaos replay diverged: %s vs %s", a.TraceSHA, b.TraceSHA)
	}
}

func TestReproEncodeDecodeRoundTrip(t *testing.T) {
	r := Repro{Scenario: tinyScenario(), Choices: []int{1, 2, 3}}
	r.Scenario.Chaos = "seed=7; drop p=0.1"
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRepro(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario.Sites != r.Scenario.Sites || got.Scenario.Chaos != r.Scenario.Chaos ||
		len(got.Choices) != 3 || got.Choices[1] != 2 {
		t.Fatalf("round trip mangled repro: %+v", got)
	}
	if got.Replay().TraceSHA != r.Replay().TraceSHA {
		t.Fatal("decoded repro replays differently")
	}
}

func TestDecodeReproRejectsGarbage(t *testing.T) {
	if _, err := DecodeRepro(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("want error for truncated JSON")
	}
	if _, err := DecodeRepro(bytes.NewReader([]byte("{}"))); err == nil {
		t.Fatal("want error for empty scenario")
	}
}

func TestGenOpsDeterministic(t *testing.T) {
	a := GenOps(7, 3, 2, 10)
	b := GenOps(7, 3, 2, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	writes := 0
	for _, op := range a {
		if op.Write {
			writes++
		}
	}
	if writes == 0 || writes == len(a) {
		t.Fatalf("degenerate workload: %d/%d writes", writes, len(a))
	}
}

func TestScenarioBoundsChecked(t *testing.T) {
	sc := Scenario{Sites: 2, Pages: 1, Ops: []Op{{Site: 5, Write: true}}}
	res := runScenario(sc, &scheduler{}, 0)
	wantInv(t, res.violations, InvSchema)
}

func TestSchedulerPrefixThenDefault(t *testing.T) {
	s := &scheduler{choices: []int{1, 9}}
	if got := s.choose(3); got != 1 {
		t.Fatalf("prescribed pick = %d, want 1", got)
	}
	if got := s.choose(3); got != 0 {
		t.Fatalf("out-of-range prescription = %d, want clamp to 0", got)
	}
	if got := s.choose(4); got != 0 {
		t.Fatalf("beyond-prefix pick = %d, want FIFO 0", got)
	}
	if len(s.branch) != 3 || s.branch[2] != 4 {
		t.Fatalf("branch record %v", s.branch)
	}
}

func BenchmarkExploredRun(b *testing.B) {
	sc := tinyScenario()
	for i := 0; i < b.N; i++ {
		runScenario(sc, &scheduler{}, 0)
	}
}

var _ = time.Second
