package check

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"mirage/internal/obs"
)

// Repro is a serialized counterexample: a scenario plus the schedule
// prefix that drives it to a violation. Everything is explicit — ops,
// chaos plan with seed, choices — so Replay is deterministic down to
// the trace bytes on any machine.
type Repro struct {
	Scenario Scenario `json:"scenario"`
	// Choices prescribes the pick at each same-instant choice point;
	// past the prefix the kernel's FIFO order (pick 0) applies.
	Choices []int `json:"choices"`
	// Violations is what the recorded replay reported, for human
	// consumption; Replay recomputes it.
	Violations []Violation `json:"violations,omitempty"`
}

// ReplayResult is one deterministic re-execution of a Repro.
type ReplayResult struct {
	Violations []Violation
	// TraceSHA fingerprints the full event trace; identical across
	// replays of the same Repro.
	TraceSHA string
	Events   int
	Steps    int
}

// Replay re-executes the repro's schedule and re-checks it.
func (r Repro) Replay() ReplayResult {
	sch := &scheduler{choices: r.Choices}
	res := runScenario(r.Scenario, sch, 0)
	return ReplayResult{
		Violations: res.violations,
		TraceSHA:   traceSHA(res.trace),
		Events:     len(res.trace),
		Steps:      res.steps,
	}
}

// traceSHA hashes the binary image of every event field, giving a
// formatting-independent fingerprint of a run.
func traceSHA(events []obs.Event) string {
	h := sha256.New()
	var buf [48]byte
	for _, ev := range events {
		binary.LittleEndian.PutUint64(buf[0:], uint64(ev.T))
		binary.LittleEndian.PutUint32(buf[8:], uint32(ev.Site))
		binary.LittleEndian.PutUint32(buf[12:], uint32(ev.Type))
		binary.LittleEndian.PutUint32(buf[16:], uint32(ev.Kind))
		binary.LittleEndian.PutUint32(buf[20:], uint32(ev.Seg))
		binary.LittleEndian.PutUint32(buf[24:], uint32(ev.Page))
		binary.LittleEndian.PutUint32(buf[28:], uint32(ev.From))
		binary.LittleEndian.PutUint32(buf[32:], uint32(ev.To))
		binary.LittleEndian.PutUint32(buf[36:], ev.Cycle)
		binary.LittleEndian.PutUint64(buf[40:], uint64(ev.Arg))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Encode writes the repro as indented JSON (the CI artifact format).
func (r Repro) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeRepro reads a repro written by Encode.
func DecodeRepro(rd io.Reader) (Repro, error) {
	var r Repro
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return Repro{}, fmt.Errorf("check: decode repro: %w", err)
	}
	if r.Scenario.Sites <= 0 {
		return Repro{}, fmt.Errorf("check: repro scenario has no sites")
	}
	return r, nil
}

// Shrink minimizes a violating repro: first it tries dropping ops (each
// removal re-validated by replaying, then by a handful of fresh random
// schedules), then it truncates the choice prefix to the shortest that
// still violates and zeroes the remaining picks. The result's
// Violations are from its final replay. Budget: opt.ShrinkBudget
// replays (default 400).
func Shrink(r Repro, opt ExploreOpts) Repro {
	budget := opt.ShrinkBudget
	if budget <= 0 {
		budget = 400
	}
	// A candidate "still violates" if replaying its choices does, or —
	// for op removals, where old choices may no longer line up — if a
	// short deterministic search finds a new violating schedule.
	try := func(sc Scenario, choices []int, search bool) ([]int, []Violation, bool) {
		if budget <= 0 {
			return nil, nil, false
		}
		budget--
		sch := &scheduler{choices: choices}
		if res := runScenario(sc, sch, opt.MaxSteps); len(res.violations) > 0 {
			return append([]int(nil), sch.taken...), res.violations, true
		}
		if !search {
			return nil, nil, false
		}
		for s := int64(1); s <= 4 && budget > 0; s++ {
			budget--
			sch := &scheduler{rng: newRng(s)}
			if res := runScenario(sc, sch, opt.MaxSteps); len(res.violations) > 0 {
				return append([]int(nil), sch.taken...), res.violations, true
			}
		}
		return nil, nil, false
	}

	// Phase 1: op removal to fixpoint.
	for again := true; again && budget > 0; {
		again = false
		for i := 0; i < len(r.Scenario.Ops) && budget > 0; i++ {
			sc := r.Scenario
			sc.Ops = append(append([]Op(nil), sc.Ops[:i]...), sc.Ops[i+1:]...)
			if ch, v, ok := try(sc, r.Choices, true); ok {
				r.Scenario, r.Choices, r.Violations = sc, ch, v
				again = true
				break
			}
		}
	}

	// Phase 2a: shortest violating choice prefix (binary search).
	lo, hi := 0, len(r.Choices)
	for lo < hi && budget > 0 {
		mid := (lo + hi) / 2
		if ch, v, ok := try(r.Scenario, r.Choices[:mid], false); ok {
			r.Choices, r.Violations = ch[:min(len(ch), mid)], v
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Phase 2b: zero individual picks.
	for i := 0; i < len(r.Choices) && budget > 0; i++ {
		if r.Choices[i] == 0 {
			continue
		}
		cand := append([]int(nil), r.Choices...)
		cand[i] = 0
		if _, v, ok := try(r.Scenario, cand, false); ok {
			r.Choices, r.Violations = cand, v
		}
	}
	// Trailing zeros equal the beyond-prefix default; drop them.
	for len(r.Choices) > 0 && r.Choices[len(r.Choices)-1] == 0 {
		r.Choices = r.Choices[:len(r.Choices)-1]
	}
	if rr, v, ok := try(r.Scenario, r.Choices, false); ok {
		_ = rr
		r.Violations = v
	}
	return r
}
