//go:build mirage_mutation

package check

import (
	"bytes"
	"testing"
)

// TestMutationWindowViolationCaught is the detector-of-detectors: the
// build tag mirage_mutation flips core's mutateSkipWindowCheck, making
// the clock site honor invalidations inside an unexpired Δ window. The
// explorer must catch that as a window-revoked-early violation and hand
// back a shrunk, replayable counterexample.
//
// Run it alone — the tag breaks the protocol, so the package's other
// tests rightly fail under it:
//
//	go test -tags mirage_mutation ./internal/check -run TestMutation
//
// TestMutationReplAckLostCaught targets the other lie the tag enables:
// core's mutateReplAckWithoutApply makes replica followers acknowledge
// log appends without applying them, so the leader's gated mutations
// "commit" against logs that hold nothing. When the leader crashes, the
// election merges empty ballots and installs a log tail behind the
// committed high-water mark — exactly what the acked-append-lost
// invariant exists to catch, with a replayable counterexample.
//
// Run it alone, like the window test:
//
//	go test -tags mirage_mutation ./internal/check -run TestMutation
func TestMutationReplAckLostCaught(t *testing.T) {
	res := Exhaustive(replScenario(), ExploreOpts{MaxRuns: 200})
	if res.Counterexample == nil {
		t.Fatalf("mutation not caught in %d runs", res.Runs)
	}
	wantInv(t, res.Violations, InvApplyLost)

	r := *res.Counterexample
	t.Logf("counterexample: ops=%v choices=%v", r.Scenario.Ops, r.Choices)

	// The repro must replay byte-identically and still show the bug.
	a, b := r.Replay(), r.Replay()
	if a.TraceSHA != b.TraceSHA {
		t.Fatalf("replay diverged: %s vs %s", a.TraceSHA, b.TraceSHA)
	}
	wantInv(t, a.Violations, InvApplyLost)

	// And survive the serialization round trip CI artifacts go through.
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRepro(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := dec.Replay()
	if c.TraceSHA != a.TraceSHA {
		t.Fatal("decoded repro replays a different trace")
	}
	wantInv(t, c.Violations, InvApplyLost)
}

func TestMutationWindowViolationCaught(t *testing.T) {
	res := Exhaustive(windowScenario(), ExploreOpts{MaxRuns: 200})
	if res.Counterexample == nil {
		t.Fatalf("mutation not caught in %d runs", res.Runs)
	}
	wantInv(t, res.Violations, InvWindow)

	r := *res.Counterexample
	t.Logf("counterexample: ops=%v choices=%v", r.Scenario.Ops, r.Choices)
	if len(r.Scenario.Ops) > 2 {
		t.Errorf("shrink left %d ops, want <=2 (one write to own the window, one to revoke it)",
			len(r.Scenario.Ops))
	}

	// The repro must replay byte-identically and still show the bug.
	a, b := r.Replay(), r.Replay()
	if a.TraceSHA != b.TraceSHA {
		t.Fatalf("replay diverged: %s vs %s", a.TraceSHA, b.TraceSHA)
	}
	wantInv(t, a.Violations, InvWindow)

	// And survive the serialization round trip CI artifacts go through.
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRepro(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := dec.Replay()
	if c.TraceSHA != a.TraceSHA {
		t.Fatal("decoded repro replays a different trace")
	}
	wantInv(t, c.Violations, InvWindow)
}
