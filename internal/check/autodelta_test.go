package check

import (
	"testing"
	"time"

	"mirage/internal/core"
	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/sim"
)

// autoNet drives AutoDelta clusters for the checker: like migNet but
// with crash support, so both rehoming paths — voluntary migration and
// takeover election — can be traced under the controller.
type autoNet struct {
	t       *testing.T
	k       *sim.Kernel
	engines []*core.Engine
	down    map[int]bool
}

type autoEnv struct {
	n    *autoNet
	site int
}

func (e autoEnv) Site() int          { return e.site }
func (e autoEnv) Now() time.Duration { return e.n.k.Now().Duration() }
func (e autoEnv) After(d time.Duration, fn func()) func() {
	t := e.n.k.After(d, fn)
	return func() { t.Cancel() }
}
func (e autoEnv) Send(to int, m core.NetMsg) {
	if e.n.down[to] || e.n.down[e.site] {
		return
	}
	d := time.Millisecond
	if to == e.site {
		d = 0
	}
	e.n.k.After(d, func() { e.n.engines[to].Deliver(m) })
}
func (e autoEnv) Exec(cost time.Duration, fn func()) { e.n.k.After(cost, fn) }

// fastAutoDelta opens the controller's rate limiter up so the short
// driven workloads retune several times inside the trace.
func fastAutoDelta() *core.AutoDelta {
	return &core.AutoDelta{
		Min: 2 * time.Millisecond, Max: 100 * time.Millisecond,
		Step: 5 * time.Millisecond, CheapDenial: time.Second,
		MinCycles: 1, Cooldown: time.Millisecond,
	}
}

// newAutoNet builds a cluster with the AutoDelta controller on and a
// deliberately oversized seed Δ, so the trace carries retunes and
// denials for the checker to digest. opt should already hold the
// failover/placement/replication stack under test.
func newAutoNet(t *testing.T, sites int, opt core.Options, seed time.Duration) *autoNet {
	n := &autoNet{t: t, k: sim.NewKernel(), down: make(map[int]bool)}
	opt.Costs = &core.Costs{}
	for i := 0; i < sites; i++ {
		n.engines = append(n.engines, core.New(autoEnv{n, i}, opt))
	}
	meta := &mem.Segment{
		ID: 1, Key: 7, Size: 1024, PageSize: 512, Pages: 2,
		Library: 0, Delta: seed, Mode: 0o666,
	}
	n.engines[0].CreateSegment(meta)
	for i := 1; i < sites; i++ {
		n.engines[i].AttachSegment(meta)
	}
	return n
}

func (n *autoNet) access(site int, page int32, write bool, val byte) {
	n.t.Helper()
	e := n.engines[site]
	done := false
	var loop func()
	loop = func() {
		if err := e.FaultError(1, page); err != nil {
			n.t.Fatalf("site %d degraded: %v", site, err)
		}
		if e.CheckAccess(1, page, write) == mmu.NoFault {
			f := e.Frame(1, page)
			if write {
				f[0] = val
			}
			e.RecordOp(1, page, 0, write, f[:1])
			done = true
			return
		}
		e.Fault(1, page, write, 100+int32(site), loop)
	}
	loop()
	for !done {
		if !n.k.Step() {
			n.t.Fatalf("site %d access(page=%d write=%v) starved", site, page, write)
		}
	}
}

func countEvents(events []obs.Event, typ obs.EvType) int {
	c := 0
	for _, ev := range events {
		if ev.Type == typ {
			c++
		}
	}
	return c
}

// TestVerifyAcceptsAutoDeltaMigratedTrace: a controller-tuned workload
// that crosses a voluntary migration (epoch bump) must verify clean
// with Delta = AutoDelta.Min, the sound lower bound on every granted
// window (check.Config.Delta). The trace must actually contain retunes
// — a clean pass over a controller that never fired proves nothing.
func TestVerifyAcceptsAutoDeltaMigratedTrace(t *testing.T) {
	o := obs.New()
	ad := fastAutoDelta()
	opt := core.Options{
		Reliability: &core.Reliability{
			AckTimeout: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			MaxAttempts: 5, RequestTimeout: 10 * time.Second,
		},
		Failover: &core.Failover{Sites: 3},
		Placement: &core.Placement{
			Window: 50 * time.Millisecond, MinRequests: 4,
			Share: 0.5, PingPong: 0.8, Cooldown: time.Hour,
		},
		AutoDelta: ad,
		Obs:       o,
	}
	n := newAutoNet(t, 3, opt, 30*time.Millisecond)

	// The 2:1 skew that makes site 0's library volunteer the role to
	// site 1, under ping-pong writes the controller is shrinking Δ for.
	for i := 0; i < 40 && n.engines[1].Stats().Migrations == 0; i++ {
		n.access(0, 0, true, byte(i))
		n.access(1, 0, false, 0)
		n.access(1, 0, true, byte(i)+1)
	}
	if n.engines[1].Stats().Migrations != 1 {
		t.Fatal("workload did not trigger a migration")
	}
	// Post-handoff traffic: the successor keeps tuning in epoch 1.
	n.access(2, 0, false, 0)
	n.access(0, 0, true, 99)
	n.access(2, 0, false, 0)
	n.k.Run()

	events := o.Buffer().Events()
	if countEvents(events, obs.EvMigrate) == 0 {
		t.Fatal("trace has no EvMigrate event")
	}
	if countEvents(events, obs.EvRetune) == 0 {
		t.Fatal("trace has no EvRetune event; the controller never fired")
	}
	for _, v := range Verify(Config{Sites: 3, Delta: ad.Min, Reliable: true}, events) {
		t.Errorf("checker rejected AutoDelta migrated trace: %v", v)
	}
}

// TestVerifyAcceptsAutoDeltaTakeoverTrace: same bound, other rehoming
// path — the leader dies mid-tuning, the replicated log elects a
// successor (epoch bump), and the whole history including the
// post-takeover tuned grants must verify clean with Delta = Min.
func TestVerifyAcceptsAutoDeltaTakeoverTrace(t *testing.T) {
	o := obs.New()
	ad := fastAutoDelta()
	opt := core.Options{
		Reliability: &core.Reliability{
			AckTimeout: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			MaxAttempts: 5, RequestTimeout: 10 * time.Second,
		},
		Failover:    &core.Failover{Sites: 3, RecoverTimeout: 500 * time.Millisecond},
		Replication: &core.Replication{Replicas: 2, Sites: 3},
		AutoDelta:   ad,
		Obs:         o,
	}
	n := newAutoNet(t, 3, opt, 30*time.Millisecond)

	for i := 0; i < 8; i++ {
		n.access(2, 0, true, byte(i))
		n.access(1, 0, true, byte(i)+1)
	}
	n.k.Run()

	n.down[0] = true
	// Site 2 was invalidated by site 1's last write: this access gives
	// up on the dead library and triggers the takeover at site 1.
	n.access(2, 0, false, 0)
	n.access(2, 0, true, 123)
	n.access(1, 0, false, 0)
	n.k.Run()

	if el := n.engines[1].Stats().Elections; el != 1 {
		t.Fatalf("successor Elections = %d, want 1", el)
	}
	events := o.Buffer().Events()
	if countEvents(events, obs.EvElect) == 0 {
		t.Fatal("trace has no EvElect event")
	}
	if countEvents(events, obs.EvRetune) == 0 {
		t.Fatal("trace has no EvRetune event; the controller never fired")
	}
	for _, v := range Verify(Config{Sites: 3, Delta: ad.Min, Reliable: true}, events) {
		t.Errorf("checker rejected AutoDelta takeover trace: %v", v)
	}
}
