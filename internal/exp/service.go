package exp

import (
	"fmt"
	"io"
	"time"

	"mirage/internal/app"
	"mirage/internal/chaos"
	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/load"
	"mirage/internal/mem"
	"mirage/internal/obs"
)

// ---------------------------------------------------------------------------
// E19 — beyond the paper: service-level saturation. The paper evaluates
// Mirage with microbenchmarks (worst-case ping-pong, a representative
// application); E19 asks what the design costs per *request* by running
// a real service — the sharded session store of internal/app — under
// deterministic open-loop load (internal/load) on a rising rate ladder.
// The report per rung: goodput, shed load, p50/p95/p99/p999 latency,
// and the liveness invariant (every admitted request completes; queue
// depth stays bounded). The ladder's knee — the first rung where the
// service stops keeping up — is the headline number, with the first
// SLO-violating rung (p99 over ServiceConfig.SLO) alongside it.

// serviceKey is the segment key base for shard segments; shard i uses
// serviceKey+i.
const serviceKey mem.Key = 0x5345 // "SE"

// ServiceConfig parameterizes the E19 ladder.
type ServiceConfig struct {
	// Seed drives the load streams and any chaos schedule (default 1).
	Seed int64
	// Sites is the cluster size; shards spread their library sites
	// round-robin across it (default 4).
	Sites int
	// Shards and SlotsPerShard fix the store geometry (defaults 8 and
	// 32).
	Shards        int
	SlotsPerShard int
	// Rates is the offered-load ladder in requests/second (default
	// {25, 50, 100, 200, 400} — the simulated cluster's capacity is
	// ~250 req/s, so the default ladder straddles its knee).
	Rates []float64
	// Duration is each rung's offered window of virtual time (default
	// 5s).
	Duration time.Duration
	// Workers is the per-site service concurrency (default 4).
	Workers int
	// QueueCap bounds each service lane's backlog (default 16).
	QueueCap int
	// Keys is the keyspace size (default 128 — half the store's slot
	// capacity at the default geometry).
	Keys int
	// Skew is the key-popularity distribution (default SkewZipf).
	Skew load.Skew
	// OpCost is per-request CPU charged by a worker before the store
	// call (default 500µs).
	OpCost time.Duration
	// SLO is the p99 objective the findings report against (default
	// 1s — the base service time is ~65ms of 1989-vintage page moves,
	// so the objective is one second of queueing headroom over it).
	SLO time.Duration
	// Chaos adds a second ladder under message drops and delays (with
	// the reliability layer on, so the protocol retries through them).
	Chaos bool
}

// WithDefaults returns the config with zero fields defaulted.
func (c ServiceConfig) WithDefaults() ServiceConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sites == 0 {
		c.Sites = 4
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.SlotsPerShard == 0 {
		c.SlotsPerShard = 32
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{25, 50, 100, 200, 400}
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 16
	}
	if c.Keys == 0 {
		c.Keys = 128
	}
	if c.Skew == 0 && c.Keys > 0 {
		c.Skew = load.SkewZipf
	}
	if c.OpCost == 0 {
		c.OpCost = 500 * time.Microsecond
	}
	if c.SLO == 0 {
		c.SLO = time.Second
	}
	return c
}

// Spec builds the load spec for one rung at the given offered rate.
// The live ladder uses the same method so both transports serve an
// identical op stream. Each of the Sites×Workers service lanes is its
// own open-loop frontend.
func (c ServiceConfig) Spec(rate float64) load.Spec {
	c = c.WithDefaults()
	return load.Spec{
		Seed:      c.Seed,
		Rate:      rate,
		Duration:  c.Duration,
		Frontends: c.Sites * c.Workers,
		Workers:   1,
		QueueCap:  c.QueueCap,
		Keys:      c.Keys,
		Skew:      c.Skew,
		SLO:       c.SLO,
		OpCost:    c.OpCost,
	}
}

// AppConfig builds the store geometry both transports share. SlotSize
// is kept small (64 bytes): under §6.2's lazy remap every mapped page
// is re-mapped on each dispatch at vaxmodel.RemapPerPage, so a service
// proc's mapped footprint is a direct per-wakeup CPU tax.
func (c ServiceConfig) AppConfig() app.Config {
	c = c.WithDefaults()
	return app.Config{Shards: c.Shards, Sites: c.Sites, SlotsPerShard: c.SlotsPerShard, SlotSize: 64}
}

// ServiceChaosPlan is the fault schedule the chaos ladder runs under:
// 0.5% drops and 5% delays up to 5ms, uniformly across sites and
// message kinds.
func ServiceChaosPlan(seed int64) *chaos.Plan {
	return &chaos.Plan{Seed: seed, Rules: []chaos.Rule{
		{Op: chaos.OpDrop, P: 0.005, From: chaos.Any, To: chaos.Any},
		{Op: chaos.OpDelay, P: 0.05, From: chaos.Any, To: chaos.Any, MaxDelay: 5 * time.Millisecond},
	}}
}

// openServiceStore attaches every shard segment (polling until the
// creator has made it) and builds this proc's store frontend on the
// virtual clock. Each simulated worker needs its own frontend: a
// segment access blocks the proc that owns the attach.
func openServiceStore(p *ipc.Proc, cfg app.Config, site int, stats *app.Stats, o *obs.Obs) *app.Store {
	segs := make([]app.Segment, cfg.Shards)
	for shard := range segs {
		var id mem.SegID
		for {
			var err error
			id, err = p.Shmget(serviceKey+mem.Key(shard), cfg.ShardBytes(), 0, 0)
			if err == nil {
				break
			}
			p.Sleep(time.Millisecond)
		}
		h, err := p.Shmat(id, false)
		if err != nil {
			return nil
		}
		segs[shard] = h
	}
	st, err := app.New(cfg, segs, app.Options{
		Site:  site,
		Obs:   o,
		Stats: stats,
		Sleep: p.Sleep,
		Now:   func() time.Duration { return p.Now() },
	})
	if err != nil {
		return nil
	}
	return st
}

// SpawnService wires one rung's service workload onto an existing
// simulated cluster: per site, a creator proc that formats this site's
// shards and holds the attaches, plus Workers service lanes. Each lane
// is an independent open-loop frontend — it releases its own Poisson
// sub-stream, serves ops in arrival order through its own store
// frontend, and sheds arrivals that find its backlog at QueueCap.
// Lanes never poll: an idle lane sleeps until its next scheduled
// arrival, which matters because §6.2's lazy remap charges every
// mapped page on every dispatch. Results accumulate into rep and
// stats; o (which may be nil) receives the store's app counters. Run
// the cluster for at least spec.Duration plus drain slack afterwards.
func SpawnService(c *ipc.Cluster, cfg ServiceConfig, rate float64, rep *load.Report, stats *app.Stats, o *obs.Obs) {
	cfg = cfg.WithDefaults()
	spec := cfg.Spec(rate)
	appCfg := cfg.AppConfig()
	hold := cfg.Duration + serviceSlack
	for s := 0; s < cfg.Sites; s++ {
		s := s
		c.Site(s).Spawn("creator", 0, func(p *ipc.Proc) {
			for shard := 0; shard < appCfg.Shards; shard++ {
				if appCfg.LibraryFor(shard) != s {
					continue
				}
				id, err := p.Shmget(serviceKey+mem.Key(shard), appCfg.ShardBytes(), mem.Create, rwMode)
				if err != nil {
					return
				}
				h, err := p.Shmat(id, false)
				if err != nil {
					return
				}
				if err := app.Format(h, appCfg, shard); err != nil {
					return
				}
			}
			p.Sleep(hold) // hold the attaches: the library must outlive the ladder
		})
		for w := 0; w < cfg.Workers; w++ {
			lane := s*cfg.Workers + w
			c.Site(s).Spawn("lane", 0, func(p *ipc.Proc) {
				st := openServiceStore(p, appCfg, s, stats, o)
				if st == nil {
					return
				}
				g := load.NewGen(spec, lane)
				var backlog []load.Op
				next, more := g.Next()
				for {
					if len(backlog) == 0 {
						if !more {
							return
						}
						if d := next.T - p.Now(); d > 0 {
							p.Sleep(d)
						}
						backlog = append(backlog, next)
						rep.Admit()
						next, more = g.Next()
					}
					// Absorb every arrival that came due while serving;
					// past QueueCap they are shed, keeping the backlog
					// bounded.
					for more && next.T <= p.Now() {
						if len(backlog) >= spec.QueueCap {
							rep.Shed()
						} else {
							backlog = append(backlog, next)
							rep.Admit()
						}
						next, more = g.Next()
					}
					rep.ObserveQueue(len(backlog))
					op := backlog[0]
					backlog = backlog[1:]
					if spec.OpCost > 0 {
						p.Compute(spec.OpCost)
					}
					hit, err := load.Execute(st, spec, op)
					rep.Done(p.Now()-op.T, hit, err)
				}
			})
		}
	}
}

// serviceSlack bounds post-window drain: backlogs hold at most
// QueueCap ops per lane, so a healthy rung finishes well inside it.
const serviceSlack = 10 * time.Second

// RunService wires one rung's service workload onto a caller-owned
// simulated cluster, drives it to completion (the rung's window plus
// drain slack), and scores it. Store attribution accumulates into
// stats; o (which may be nil) receives the app counters. This is the
// miragesim -workload service entry point.
func RunService(c *ipc.Cluster, cfg ServiceConfig, rate float64, stats *app.Stats, o *obs.Obs) load.Rung {
	cfg = cfg.WithDefaults()
	rep := load.NewReport()
	SpawnService(c, cfg, rate, rep, stats, o)
	c.RunFor(cfg.Duration + serviceSlack)
	return rep.Rung(cfg.Spec(rate))
}

// serviceRungSim runs one rung on a private simulated cluster and
// scores it.
func serviceRungSim(cfg ServiceConfig, rate float64, withChaos bool) (load.Rung, *app.Stats) {
	cfg = cfg.WithDefaults()
	var plan *chaos.Plan
	var eng core.Options
	if withChaos {
		plan = ServiceChaosPlan(cfg.Seed)
		eng.Reliability = failoverRel()
	}
	c := ipc.NewCluster(cfg.Sites, ipc.Config{Chaos: plan, Engine: eng})
	stats := app.NewStats(cfg.Shards)
	return RunService(c, cfg, rate, stats, nil), stats
}

// ServiceLadder is one transport's scored rate ladder.
type ServiceLadder struct {
	// Transport names the execution mode ("sim", "live-tcp").
	Transport string
	// Chaos reports whether the ladder ran under the fault plan.
	Chaos bool
	// Rungs are the scored rungs in ladder (rate) order.
	Rungs []load.Rung
	// Knee indexes the first saturated rung, -1 if none.
	Knee int
	// FirstSLO indexes the first rung whose p99 breaks the SLO, -1 if
	// none.
	FirstSLO int
	// LivenessBelowKnee reports whether every rung below the knee kept
	// the liveness invariant.
	LivenessBelowKnee bool
	// App is the aggregated store attribution (sim ladders only; the
	// live ladder reports through its own cluster's stats).
	App app.ShardCounters
}

// ScoreLadder folds scored rungs into a ladder verdict; the live
// runner uses it so both transports are judged identically.
func ScoreLadder(transport string, withChaos bool, cfg ServiceConfig, rungs []load.Rung) ServiceLadder {
	cfg = cfg.WithDefaults()
	l := ServiceLadder{Transport: transport, Chaos: withChaos, Rungs: rungs}
	l.Knee = load.Knee(rungs, cfg.Spec(0))
	l.FirstSLO = load.FirstSLOViolation(rungs, cfg.SLO)
	l.LivenessBelowKnee = true
	end := len(rungs)
	if l.Knee >= 0 {
		end = l.Knee
	}
	for _, g := range rungs[:end] {
		if !g.LivenessOK {
			l.LivenessBelowKnee = false
		}
	}
	return l
}

// ServiceSweepResult is the whole E19 run.
type ServiceSweepResult struct {
	Config ServiceConfig
	// Ladders holds the simulated ladders (no-chaos first, chaos
	// second when enabled); callers may append live ladders before
	// rendering findings.
	Ladders []ServiceLadder
	// ReplayMatches reports the determinism check: the busiest
	// no-chaos rung run twice produced identical scores and store
	// attribution.
	ReplayMatches bool
}

// ServiceSweep runs the simulated E19 ladder(s): every rung is an
// independent deterministic cluster, so the whole grid fans out across
// the worker pool, plus a determinism double-run of the busiest rung.
func ServiceSweep(cfg ServiceConfig) ServiceSweepResult {
	cfg = cfg.WithDefaults()
	r := ServiceSweepResult{Config: cfg}
	ladders := 1
	if cfg.Chaos {
		ladders = 2
	}
	n := len(cfg.Rates)
	rungs := make([]load.Rung, ladders*n)
	stats := make([]*app.Stats, ladders*n)
	replay := make([]load.Rung, 2)
	replayDigest := make([]string, 2)
	sweepTasks(ladders*n+2, func(i int) {
		if i < ladders*n {
			rungs[i], stats[i] = serviceRungSim(cfg, cfg.Rates[i%n], i >= n)
			return
		}
		g, st := serviceRungSim(cfg, cfg.Rates[n-1], false)
		replay[i-ladders*n] = g
		replayDigest[i-ladders*n] = st.Digest()
	})
	for l := 0; l < ladders; l++ {
		lad := ScoreLadder("sim", l == 1, cfg, rungs[l*n:(l+1)*n])
		for _, st := range stats[l*n : (l+1)*n] {
			t := st.Total()
			lad.App.Gets += t.Gets
			lad.App.Puts += t.Puts
			lad.App.Deletes += t.Deletes
			lad.App.CASes += t.CASes
			lad.App.Hits += t.Hits
			lad.App.Misses += t.Misses
			lad.App.Conflicts += t.Conflicts
			lad.App.Errors += t.Errors
		}
		r.Ladders = append(r.Ladders, lad)
	}
	r.ReplayMatches = replay[0] == replay[1] && replayDigest[0] == replayDigest[1]
	return r
}

// WriteFindings renders the FINDINGS-style verdict: hypothesis, seeds,
// and per-ladder knee, SLO, and liveness conclusions.
func (r ServiceSweepResult) WriteFindings(w io.Writer) {
	cfg := r.Config.WithDefaults()
	fmt.Fprintf(w, "E19 — service saturation (seed %d, %d sites, %d shards, %s skew, %s rungs)\n",
		cfg.Seed, cfg.Sites, cfg.Shards, cfg.Skew, cfg.Duration)
	fmt.Fprintf(w, "Hypothesis: the session store on Mirage shows a clean saturation knee on an\n")
	fmt.Fprintf(w, "open-loop rate ladder; below the knee every admitted request completes with\n")
	fmt.Fprintf(w, "bounded queues (liveness), and the p99 SLO of %v breaks at or before the knee.\n", cfg.SLO)
	for _, l := range r.Ladders {
		name := l.Transport
		if l.Chaos {
			name += "+chaos"
		}
		fmt.Fprintf(w, "[%s]\n", name)
		switch {
		case l.Knee < 0:
			fmt.Fprintf(w, "  knee: none — ladder top %.0f req/s sustained (goodput %.0f req/s)\n",
				l.Rungs[len(l.Rungs)-1].Rate, l.Rungs[len(l.Rungs)-1].Goodput)
		case l.Knee == 0:
			fmt.Fprintf(w, "  knee: rung 0 (%.0f req/s) — already saturated at the ladder floor\n",
				l.Rungs[0].Rate)
		default:
			fmt.Fprintf(w, "  knee: rung %d (%.0f req/s); last sustained %.0f req/s at p99 %v\n",
				l.Knee, l.Rungs[l.Knee].Rate, l.Rungs[l.Knee-1].Rate,
				time.Duration(l.Rungs[l.Knee-1].Latency.P99))
		}
		if l.FirstSLO < 0 {
			fmt.Fprintf(w, "  SLO: p99 ≤ %v on every rung\n", cfg.SLO)
		} else {
			fmt.Fprintf(w, "  SLO: first p99 > %v at rung %d (%.0f req/s, p99 %v)\n",
				cfg.SLO, l.FirstSLO, l.Rungs[l.FirstSLO].Rate,
				time.Duration(l.Rungs[l.FirstSLO].Latency.P99))
		}
		fmt.Fprintf(w, "  liveness below knee: %v\n", verdict(l.LivenessBelowKnee))
		if l.App.Ops() > 0 {
			fmt.Fprintf(w, "  store: %d ops, %d conflicts, %d errors\n",
				l.App.Ops(), l.App.Conflicts, l.App.Errors)
		}
	}
	fmt.Fprintf(w, "replay determinism: %v\n", verdict(r.ReplayMatches))
}

func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "VIOLATED"
}
