package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mirage/internal/app"
	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/load"
	"mirage/internal/obs"
)

// The short two-rung ladder: one rung well under the simulated
// cluster's ~250 req/s capacity, one far over it.
func shortServiceConfig() ServiceConfig {
	return ServiceConfig{Rates: []float64{25, 400}, Duration: 2 * time.Second}
}

func TestServiceSweepShortLadder(t *testing.T) {
	cfg := shortServiceConfig()
	cfg.Chaos = true
	r := ServiceSweep(cfg)
	if len(r.Ladders) != 2 {
		t.Fatalf("got %d ladders, want sim and sim+chaos", len(r.Ladders))
	}
	for _, l := range r.Ladders {
		name := l.Transport
		if l.Chaos {
			name += "+chaos"
		}
		if len(l.Rungs) != 2 {
			t.Fatalf("[%s] %d rungs, want 2", name, len(l.Rungs))
		}
		low, high := l.Rungs[0], l.Rungs[1]
		if low.Completed == 0 {
			t.Fatalf("[%s] low rung completed nothing", name)
		}
		if !low.LivenessOK || low.Shed != 0 {
			t.Errorf("[%s] low rung must be healthy: %+v", name, low)
		}
		if !high.Saturated(cfg.Spec(high.Rate)) {
			t.Errorf("[%s] 400 req/s rung should saturate: %+v", name, high)
		}
		if l.Knee != 1 {
			t.Errorf("[%s] knee = %d, want 1", name, l.Knee)
		}
		if !l.LivenessBelowKnee {
			t.Errorf("[%s] liveness below knee must hold", name)
		}
		if l.App.Ops() == 0 {
			t.Errorf("[%s] no store attribution", name)
		}
	}
	if !r.ReplayMatches {
		t.Fatal("determinism double-run diverged")
	}
}

func TestServiceFindingsRender(t *testing.T) {
	r := ServiceSweep(shortServiceConfig())
	var buf bytes.Buffer
	r.WriteFindings(&buf)
	out := buf.String()
	for _, want := range []string{"E19", "Hypothesis", "knee: rung 1", "[sim]",
		"liveness below knee: HOLDS", "replay determinism: HOLDS"} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q:\n%s", want, out)
		}
	}
}

func TestScoreLadder(t *testing.T) {
	cfg := ServiceConfig{}.WithDefaults()
	ok := load.Rung{Rate: 50, Offered: 250, Admitted: 250, Completed: 250,
		Goodput: 50, LivenessOK: true}
	sat := load.Rung{Rate: 400, Offered: 2000, Admitted: 1500, Shed: 500,
		Completed: 1500, Goodput: 300, LivenessOK: true}
	l := ScoreLadder("live-tcp", false, cfg, []load.Rung{ok, sat})
	if l.Knee != 1 {
		t.Fatalf("knee = %d, want 1", l.Knee)
	}
	if !l.LivenessBelowKnee {
		t.Fatal("liveness below knee should hold")
	}
	if l.FirstSLO != -1 {
		t.Fatalf("FirstSLO = %d, want -1 (no latency recorded)", l.FirstSLO)
	}
}

// SpawnService is also the miragesim -service workload; check it runs
// on a caller-owned cluster and feeds obs counters.
func TestSpawnServiceOnCallerCluster(t *testing.T) {
	cfg := ServiceConfig{Duration: 2 * time.Second}.WithDefaults()
	o := obs.New()
	c := ipc.NewCluster(cfg.Sites, ipc.Config{Engine: core.Options{Obs: o}})
	rep := load.NewReport()
	stats := app.NewStats(cfg.Shards)
	SpawnService(c, cfg, 25, rep, stats, o)
	c.RunFor(cfg.Duration + serviceSlack)
	g := rep.Rung(cfg.Spec(25))
	if g.Completed == 0 || !g.LivenessOK {
		t.Fatalf("unhealthy rung: %+v", g)
	}
	ops := o.Metrics.Total(obs.CAppOp)
	// Execute issues two store calls per CAS, so obs ops ≥ completions.
	if ops < g.Completed {
		t.Fatalf("obs app_ops %d < completed %d", ops, g.Completed)
	}
	if stats.Total().Ops() != ops {
		t.Fatalf("stats ops %d != obs ops %d", stats.Total().Ops(), ops)
	}
}
