package exp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/netsim"
)

// Failure-injection and stress tests: the protocol must stay coherent
// under slow links, process churn, and detach races.

// TestSlowLinksPreserveCoherence injects random extra per-message
// delays (seeded per case) and checks the cross-site oracle still
// holds. Ordering per circuit is preserved — the Locus virtual-circuit
// property the protocol assumes — but global interleavings shift
// drastically.
func TestSlowLinksPreserveCoherence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		delays := make([]time.Duration, 4) // per destination site
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(80)) * time.Millisecond
		}
		c := ipc.NewCluster(3, ipc.Config{
			Delta: time.Duration(rng.Intn(3)) * 20 * time.Millisecond,
		})
		c.Net.Delay = func(m netsim.Message) time.Duration {
			return delays[int(m.To)%len(delays)]
		}

		ok := true
		oracle := uint32(0)
		steps := 8 + rng.Intn(6)
		plan := make([]struct {
			site  int
			write bool
			val   uint32
		}, steps)
		for i := range plan {
			plan[i].site = rng.Intn(3)
			plan[i].write = rng.Intn(2) == 0
			plan[i].val = uint32(100 + i)
		}
		for s := 0; s < 3; s++ {
			s := s
			c.Site(s).Spawn("driver", 0, func(p *ipc.Proc) {
				var h *ipc.Shm
				if s == 0 {
					h = attachShared(p, true, 512)
				} else {
					p.Sleep(time.Millisecond)
					h = attachShared(p, false, 512)
				}
				for i, op := range plan {
					slot := time.Duration(i+1) * 2 * time.Second
					if d := slot - p.Now(); d > 0 {
						p.Sleep(d)
					}
					if op.site != s {
						continue
					}
					if op.write {
						if h.SetUint32(0, op.val) != nil {
							ok = false
							return
						}
						oracle = op.val
					} else {
						v, err := h.Uint32(0)
						if err != nil || v != oracle {
							ok = false
						}
					}
				}
				p.Sleep(time.Duration(steps+2) * 2 * time.Second)
			})
		}
		c.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestProcessChurn attaches and detaches processes continuously while
// a long-lived pair keeps mutating the page; no data may be lost and
// the segment must survive until the true last detach.
func TestProcessChurn(t *testing.T) {
	c := ipc.NewCluster(3, ipc.Config{Delta: 10 * time.Millisecond})
	var final uint32
	c.Site(0).Spawn("anchor", 0, func(p *ipc.Proc) {
		h := attachShared(p, true, 512)
		for i := uint32(1); i <= 30; i++ {
			if h.SetUint32(0, i) != nil {
				t.Error("anchor write failed")
				return
			}
			p.Sleep(20 * time.Millisecond)
		}
		p.Sleep(500 * time.Millisecond)
		final, _ = h.Uint32(0)
	})
	// Churners on other sites: attach, touch, detach, repeat.
	for s := 1; s < 3; s++ {
		s := s
		c.Site(s).Spawn("churn", 0, func(p *ipc.Proc) {
			p.Sleep(5 * time.Millisecond)
			for round := 0; round < 6; round++ {
				h := attachShared(p, false, 512)
				if _, err := h.Uint32(0); err != nil {
					t.Errorf("churn read: %v", err)
					return
				}
				if h.SetUint32(4+4*s, uint32(round)) != nil {
					t.Error("churn write failed")
					return
				}
				if err := p.Shmdt(h); err != nil {
					t.Errorf("churn detach: %v", err)
					return
				}
				p.Sleep(35 * time.Millisecond)
			}
		})
	}
	c.Run()
	if final != 30 {
		t.Fatalf("final = %d, want 30 (churn corrupted the page)", final)
	}
}

// TestDetachDuringWindow detaches a site that holds a page under an
// unexpired window while another site's request is queued; the data
// must arrive at the requester, not vanish with the releaser.
func TestDetachDuringWindow(t *testing.T) {
	c := ipc.NewCluster(3, ipc.Config{Delta: 150 * time.Millisecond})
	var got uint32
	c.Site(0).Spawn("home", 0, func(p *ipc.Proc) {
		h := attachShared(p, true, 512)
		p.Sleep(2 * time.Second)
		_ = h
	})
	c.Site(1).Spawn("holder", 0, func(p *ipc.Proc) {
		p.Sleep(5 * time.Millisecond)
		h := attachShared(p, false, 512)
		h.SetUint32(0, 4242) // fresh window starts here
		p.Shmdt(h)           // detach immediately, inside the window
	})
	c.Site(2).Spawn("requester", 0, func(p *ipc.Proc) {
		p.Sleep(60 * time.Millisecond) // request lands mid-window
		h := attachShared(p, false, 512)
		got, _ = h.Uint32(0)
	})
	c.Run()
	if got != 4242 {
		t.Fatalf("requester read %d, want 4242", got)
	}
}

// TestManyPagesManySites drives a multi-page segment from several
// sites concurrently and verifies per-page oracles at the end.
func TestManyPagesManySites(t *testing.T) {
	const sites, pages = 4, 6
	c := ipc.NewCluster(sites, ipc.Config{Delta: 5 * time.Millisecond})
	// Page p is owned logically by site p%sites; each owner increments
	// its pages' counters; everyone else reads them.
	for s := 0; s < sites; s++ {
		s := s
		c.Site(s).Spawn("mix", 0, func(p *ipc.Proc) {
			var h *ipc.Shm
			if s == 0 {
				h = attachShared(p, true, pages*512)
			} else {
				p.Sleep(time.Millisecond)
				h = attachShared(p, false, pages*512)
			}
			for i := 0; i < 10; i++ {
				for pg := 0; pg < pages; pg++ {
					off := pg * 512
					if pg%sites == s {
						if err := h.AddUint32(off, 1); err != nil {
							t.Errorf("site %d page %d: %v", s, pg, err)
							return
						}
					} else if i%3 == 0 {
						if _, err := h.Uint32(off); err != nil {
							t.Errorf("site %d read page %d: %v", s, pg, err)
							return
						}
					}
				}
				p.Sleep(10 * time.Millisecond)
			}
			p.Sleep(3 * time.Second) // hold attach for the check
			if s == 0 {
				for pg := 0; pg < pages; pg++ {
					v, err := h.Uint32(pg * 512)
					if err != nil || v != 10 {
						t.Errorf("page %d counter = %d (err %v), want 10", pg, v, err)
					}
				}
			}
		})
	}
	c.Run()
}

// TestLibraryQueueNeverLosesRequests floods one page with interleaved
// read and write requests from every site; the total number of
// successful accesses must equal the number issued.
func TestLibraryQueueNeverLosesRequests(t *testing.T) {
	const sites = 5
	c := ipc.NewCluster(sites, ipc.Config{Delta: 2 * time.Millisecond})
	completed := 0
	want := 0
	for s := 0; s < sites; s++ {
		s := s
		n := 6 + s
		want += n
		c.Site(s).Spawn("flood", 0, func(p *ipc.Proc) {
			var h *ipc.Shm
			if s == 0 {
				h = attachShared(p, true, 512)
			} else {
				p.Sleep(time.Millisecond)
				h = attachShared(p, false, 512)
			}
			for i := 0; i < n; i++ {
				var err error
				if (i+s)%2 == 0 {
					_, err = h.Uint32(0)
				} else {
					err = h.SetUint32(0, uint32(s*100+i))
				}
				if err != nil {
					t.Errorf("site %d op %d: %v", s, i, err)
					return
				}
				completed++
			}
			p.Sleep(5 * time.Second)
		})
	}
	var st core.LibraryPageState
	// Sample the library while the segment is still attached.
	c.K.After(4500*time.Millisecond, func() {
		st = c.Site(0).Eng.LibraryState(1, 0)
	})
	c.Run()
	if completed != want {
		t.Fatalf("completed %d of %d accesses", completed, want)
	}
	if st.Busy || st.Queued != 0 {
		t.Fatalf("library not quiescent: %+v", st)
	}
}

// TestPolicySweepUnderDelays runs the representative app briefly under
// every invalidation policy with a slow reverse link; throughput must
// stay positive and the runs must terminate (no protocol wedging).
func TestPolicySweepUnderDelays(t *testing.T) {
	for _, pol := range []core.InvalPolicy{core.PolicyRetry, core.PolicyHonorClose, core.PolicyQueue} {
		c := ipc.NewCluster(2, ipc.Config{
			Delta:  40 * time.Millisecond,
			Engine: core.Options{Policy: pol},
		})
		c.Net.Delay = func(m netsim.Message) time.Duration {
			if m.To == 0 {
				return 25 * time.Millisecond
			}
			return 0
		}
		st := runCounters(c, 0, 1, CountersConfig{Duration: 3 * time.Second})
		c.Run()
		if st.iters[0]+st.iters[1] == 0 {
			t.Fatalf("policy %v: no progress under delay", pol)
		}
	}
}

// TestSingleWriterInvariantDuringChurn samples the cross-site
// protection invariant repeatedly during a busy run.
func TestSingleWriterInvariantDuringChurn(t *testing.T) {
	c := ipc.NewCluster(3, ipc.Config{Delta: 3 * time.Millisecond})
	runCounters(c, 0, 1, CountersConfig{Duration: 2 * time.Second})
	violations := 0
	var sample func()
	sample = func() {
		writers, readers := 0, 0
		for s := 0; s < 3; s++ {
			seg := c.Site(s).Eng.Seg(1)
			if seg == nil {
				continue
			}
			switch seg.Prot(0) {
			case mmu.ReadWrite:
				writers++
			case mmu.ReadOnly:
				readers++
			}
		}
		if writers > 1 || (writers == 1 && readers > 0) {
			violations++
		}
		if c.K.Now().Duration() < 2*time.Second {
			c.K.After(777*time.Microsecond, sample)
		}
	}
	c.K.After(time.Millisecond, sample)
	c.Run()
	if violations != 0 {
		t.Fatalf("%d invariant violations sampled", violations)
	}
}

// TestOversizeAndZeroSegments covers registry edge cases through the
// full stack.
func TestOversizeAndZeroSegments(t *testing.T) {
	c := ipc.NewCluster(1, ipc.Config{})
	okErrs := true
	c.Site(0).Spawn("edge", 0, func(p *ipc.Proc) {
		if _, err := p.Shmget(90, 0, mem.Create, rwMode); err == nil {
			okErrs = false
		}
		if _, err := p.Shmget(91, 1<<30, mem.Create, rwMode); err == nil {
			okErrs = false
		}
		// One byte rounds to one page.
		id, err := p.Shmget(92, 1, mem.Create, rwMode)
		if err != nil {
			okErrs = false
			return
		}
		h, err := p.Shmat(id, false)
		if err != nil {
			okErrs = false
			return
		}
		if err := h.WriteAt([]byte{7}, 0); err != nil {
			okErrs = false
		}
		if err := h.WriteAt([]byte{7}, 1); err == nil { // beyond Size
			okErrs = false
		}
	})
	c.Run()
	if !okErrs {
		t.Fatal("edge-case handling wrong")
	}
}
