package exp

import "testing"

// TestE22ReplicationSweep pins the E22 grid's qualitative shape: every
// point completes and verifies coherent, the leader crash takes the
// log-election path at R>0 and the holder rebuild at R=0, quorum loss
// falls back, and under the correlated crash the election is strictly
// cheaper than the interrogation it replaces.
func TestE22ReplicationSweep(t *testing.T) {
	r := ReplicationSweep(8)
	if !r.ReplayMatches {
		t.Error("same-seed replay diverged")
	}
	pts := map[string]ReplicationPoint{}
	for _, p := range r.Points {
		if !p.Completed {
			t.Errorf("%s R=%d: workload incomplete (%d/%d)", p.Name, p.Replicas, p.Final, p.Want)
		}
		if p.Violations != 0 {
			t.Errorf("%s R=%d: %d coherence violations", p.Name, p.Replicas, p.Violations)
		}
		pts[p.Name+string(rune('0'+p.Replicas))] = p
	}
	if p := pts["clean2"]; p.Commits == 0 || p.Degraded != 0 {
		t.Errorf("clean R=2: commits=%d degraded=%d, want a working quorum", p.Commits, p.Degraded)
	}
	if p := pts["leader-crash0"]; p.Elections != 0 || p.Recoveries != 1 {
		t.Errorf("leader-crash R=0: elections=%d recoveries=%d, want the holder rebuild", p.Elections, p.Recoveries)
	}
	for _, k := range []string{"leader-crash2", "leader-crash4"} {
		if p := pts[k]; p.Elections != 1 {
			t.Errorf("%s: elections=%d, want the log takeover", k, p.Elections)
		}
	}
	if p := pts["follower-crash2"]; p.Failovers != 0 || p.Commits == 0 {
		t.Errorf("follower-crash R=2: failovers=%d commits=%d, want the leader to keep granting", p.Failovers, p.Commits)
	}
	if p := pts["quorum-loss2"]; p.Elections != 0 || p.Recoveries != 1 {
		t.Errorf("quorum-loss R=2: elections=%d recoveries=%d, want the rebuild fallback", p.Elections, p.Recoveries)
	}
	base, repl := pts["correlated-crash0"], pts["correlated-crash2"]
	if len(base.RecoverLatency) != 1 || len(repl.RecoverLatency) != 1 {
		t.Fatalf("correlated crash recovery counts: base %v repl %v", base.RecoverLatency, repl.RecoverLatency)
	}
	if repl.RecoverLatency[0] >= base.RecoverLatency[0] {
		t.Errorf("correlated crash: log takeover %v not below holder rebuild %v",
			repl.RecoverLatency[0], base.RecoverLatency[0])
	}
	if repl.UnavailMs >= base.UnavailMs {
		t.Errorf("correlated crash: unavailable window %.1fms not below baseline %.1fms",
			repl.UnavailMs, base.UnavailMs)
	}
}
