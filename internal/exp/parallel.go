package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism caps how many sweep points run concurrently across the
// package's experiment sweeps. Zero (the default) means GOMAXPROCS.
// Every sweep point owns a private virtual-time cluster, so results are
// bit-identical at any setting — parallelism changes wall time only.
var Parallelism int

// workers resolves the effective worker count for a sweep of n points.
func workers(n int) int {
	w := Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// sweep runs fn over every point, fanning the points across workers(),
// and returns the results in input order. Each invocation of fn must be
// self-contained (its own cluster, its own accumulators): fn runs
// concurrently with itself at other indices.
func sweep[P, R any](points []P, fn func(P) R) []R {
	out := make([]R, len(points))
	w := workers(len(points))
	if w == 1 {
		for i, p := range points {
			out[i] = fn(p)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				out[i] = fn(points[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// sweepTasks runs n heterogeneous tasks (index-addressed) across the
// worker pool; callers write results into their own slots.
func sweepTasks(n int, fn func(i int)) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sweep(idx, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
