package exp

import (
	"bytes"
	"testing"
	"time"

	"mirage/internal/check"
	"mirage/internal/obs"
)

// TestMigrationSweep runs the full E21 grid on the default config and
// asserts the properties BENCH_PR8 and the findings rely on: the
// on-cells actually migrate, the traced run's handoffs pass the
// coherence checker, the sweep replays deterministically, and under the
// shifting hotspot migration beats the static baseline on p99 or
// goodput. The sim is virtual-time and seeded, so the numbers are
// bit-for-bit reproducible — a failure here is a real regression, not
// noise.
func TestMigrationSweep(t *testing.T) {
	r := MigrationSweep(MigrationConfig{})
	if len(r.Points) != 4 {
		t.Fatalf("points: got %d, want 4", len(r.Points))
	}
	for _, scenario := range []string{"skewed", "shifting"} {
		off, on := r.Cell(scenario, false), r.Cell(scenario, true)
		if off == nil || on == nil {
			t.Fatalf("%s: missing cells", scenario)
		}
		if off.Migrations != 0 {
			t.Errorf("%s off-cell migrated %d times with no policy", scenario, off.Migrations)
		}
		if on.Migrations == 0 {
			t.Errorf("%s on-cell never migrated", scenario)
		}
		if on.Rung.Completed == 0 {
			t.Errorf("%s on-cell completed no ops", scenario)
		}
	}
	if !r.ReplayMatches {
		t.Errorf("replay determinism violated: identical runs scored differently")
	}
	if r.TraceMigrations < 1 {
		t.Errorf("traced shifting+on run has %d EvMigrate commits, want >= 1", r.TraceMigrations)
	}

	// The shifting scenario is the one migration exists for: the run
	// starts matched and the hotspot moves, so the static baseline pays
	// remote faults for the whole second half.
	off, on := r.Cell("shifting", false), r.Cell("shifting", true)
	better := on.Rung.Latency.P99 < off.Rung.Latency.P99 || on.Rung.Goodput > off.Rung.Goodput
	if !better {
		t.Errorf("shifting: migration did not win (off p99=%v goodput=%.1f; on p99=%v goodput=%.1f)",
			time.Duration(off.Rung.Latency.P99), off.Rung.Goodput,
			time.Duration(on.Rung.Latency.P99), on.Rung.Goodput)
	}

	// The voluntary handoffs must not cost coherence: the traced run's
	// full event stream — spanning at least one EvMigrate epoch bump —
	// verifies clean.
	hdr, evs, err := obs.ReadJSONL(bytes.NewReader(r.TraceJSONL))
	if err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if viols := check.Verify(check.Config{Sites: hdr.Sites, Reliable: true}, evs); len(viols) > 0 {
		for i, v := range viols {
			if i >= 10 {
				t.Errorf("... %d more violations", len(viols)-10)
				break
			}
			t.Errorf("coherence violation: %v", v)
		}
	}
}

// TestMigrationFindings exercises the findings renderer and checks the
// verdict lines it prints are derived from the cells it reports.
func TestMigrationFindings(t *testing.T) {
	r := MigrationSweep(MigrationConfig{Duration: 4 * time.Second})
	var buf bytes.Buffer
	r.WriteFindings(&buf)
	out := buf.String()
	for _, want := range []string{"E21", "[skewed]", "[shifting]", "replay determinism"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("findings missing %q:\n%s", want, out)
		}
	}
}
