package exp

import (
	"bytes"
	"errors"
	"time"

	"mirage/internal/chaos"
	"mirage/internal/check"
	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/obs"
)

// ---------------------------------------------------------------------------
// E22 — beyond the paper: consensus-replicated library records
// (Options.Replication, DESIGN.md §15). E18 priced reactive takeover:
// the successor interrogates every surviving holder and rebuilds the
// page records from their reports, an outage bounded below by a network
// round trip to the slowest survivor. This experiment prices the
// proactive alternative — every record mutation is mirrored to a
// follower quorum before it is acknowledged, so the elected follower
// installs from its own log tail with no interrogation at all — and
// measures what the standby costs while nothing is failing.
//
// The sweep crosses replication factor {off, 2, 4} with a clean run and
// a leader fail-stop, then adds the two non-leader failure modes at
// R=2: a follower crash (the group degrades but the leader keeps
// granting) and a quorum loss (leader and one of two followers die
// together, forcing the election to fall back to E18's holder rebuild).
// Every point's trace re-verifies through the coherence checker,
// including the two replication invariants (log-prefix,
// acked-append-lost).

// ReplicationPoint is one cell of the E22 grid: a failure scenario at a
// replication factor, measured over a contended counter workload.
type ReplicationPoint struct {
	Name     string // clean | leader-crash | follower-crash | quorum-loss
	Replicas int    // replication factor R (0 = KRecover baseline)

	Completed  bool          // workload finished with the exact expected total
	Final      uint32        // final counter value observed
	Want       uint32        // incrementers × increments
	Elapsed    time.Duration // virtual time to completion
	Throughput float64       // increments per virtual second

	Failovers  int // takeover triggers across all sites
	Recoveries int // completed takeovers (either path)
	Elections  int // takeovers completed from the replicated log
	Appends    int // log entries appended by leaders
	Commits    int // entries acknowledged by a follower quorum
	Degraded   int // gated mutations released without quorum

	// RecoverLatency is, per takeover, the virtual time from the first
	// failover trigger to the successor resuming grants (trace
	// EvFailover → EvRecover).
	RecoverLatency []time.Duration
	// UnavailMs is the longest single accessor operation in the run,
	// ms: the user-visible unavailable-request window around a crash.
	UnavailMs float64

	Events     int // trace events verified
	Violations int // coherence violations (must be 0)
	// TraceJSONL is the run's full schema-v1 trace, replayable through
	// miragetrace (timeline/check).
	TraceJSONL []byte
}

// ReplicationSweepResult is the whole E22 run.
type ReplicationSweepResult struct {
	Points []ReplicationPoint
	// ReplayMatches reports the determinism check: the leader-crash R=2
	// point run twice produced identical timings and counters.
	ReplayMatches bool
}

// replSites is the E22 cluster size: large enough for an R=4 group
// (leader + 4 followers) plus two never-crashed incrementer sites.
const replSites = 7

// runReplicationWorkload drives the contended counter workload at the
// given replication factor with the listed sites fail-stopped at 400ms.
func runReplicationWorkload(name string, replicas, perSite int, crash []int) ReplicationPoint {
	plan := &chaos.Plan{Seed: 42}
	for _, s := range crash {
		plan.Crashes = append(plan.Crashes, chaos.Crash{Site: s, From: 400 * time.Millisecond})
	}
	o := obs.New()
	engOpts := core.Options{
		Reliability: failoverRel(),
		Failover:    &core.Failover{},
		Obs:         o,
	}
	if replicas > 0 {
		engOpts.Replication = &core.Replication{Replicas: replicas}
	}
	c := ipc.NewCluster(replSites, ipc.Config{Chaos: plan, Engine: engOpts})

	pt := ReplicationPoint{Name: name, Replicas: replicas, Want: uint32(2 * perSite)}
	var doneAt time.Duration
	var maxStall time.Duration
	// Site 0 creates the segment (initial library and log leader),
	// writes the seed value, and idles into its crash window.
	c.Site(0).Spawn("lib", 0, func(p *ipc.Proc) {
		id, err := p.Shmget(0x4522, 512, mem.Create, rwMode)
		if err != nil {
			return
		}
		h, err := p.Shmat(id, false)
		if err != nil {
			return
		}
		h.SetUint32(0, 0)
		p.Sleep(10 * time.Minute)
	})
	// Sites 1..4 attach without accessing: silent members covering the
	// largest replication group. An unattached site refuses the log
	// stream (it has no segment state to mirror into) and gets benched,
	// so the standbys are what make them real followers — and, on a
	// leader crash, takeover candidates with populated logs.
	for i := 1; i < replSites-2; i++ {
		c.Site(i).Spawn("standby", 0, func(p *ipc.Proc) {
			var id mem.SegID
			for {
				var err error
				id, err = p.Shmget(0x4522, 512, 0, 0)
				if err == nil {
					break
				}
				p.Sleep(time.Millisecond)
			}
			if _, err := p.Shmat(id, false); err != nil {
				return
			}
			p.Sleep(10 * time.Minute)
		})
	}
	// Sites 5 and 6 — outside every replication group and never
	// crashed — do the increments, paced so the workload straddles the
	// crash window. Each op's duration is tracked: the longest one is
	// the user-visible unavailability.
	for i := replSites - 2; i < replSites; i++ {
		site := c.Site(i)
		last := i == replSites-1
		marker := 4 * (i - (replSites - 3)) // per-site done-marker word
		site.Spawn("inc", 0, func(p *ipc.Proc) {
			var id mem.SegID
			for {
				var err error
				id, err = p.Shmget(0x4522, 512, 0, 0)
				if err == nil {
					break
				}
				p.Sleep(time.Millisecond)
			}
			h, err := p.Shmat(id, false)
			if err != nil {
				return
			}
			add := func(off int) {
				start := p.Now()
				for {
					if err := h.AddUint32(off, 1); err == nil {
						break
					} else if !errors.Is(err, core.ErrUnreachable) {
						return
					}
					p.Sleep(50 * time.Millisecond)
				}
				if d := p.Now() - start; d > maxStall {
					maxStall = d
				}
			}
			for k := 0; k < perSite; k++ {
				add(0)
				p.Sleep(100 * time.Millisecond)
			}
			add(marker)
			if last {
				for {
					a, erra := h.Uint32(4)
					b, errb := h.Uint32(8)
					if erra == nil && errb == nil && a == 1 && b == 1 {
						break
					}
					p.Sleep(20 * time.Millisecond)
				}
				v, _ := h.Uint32(0)
				pt.Final = v
				doneAt = p.Now()
			}
			p.Sleep(10 * time.Minute) // hold the attach past the run
		})
	}
	c.RunFor(5 * time.Minute)
	pt.Completed = pt.Final == pt.Want
	pt.Elapsed = doneAt
	if doneAt > 0 {
		pt.Throughput = float64(pt.Want) / doneAt.Seconds()
	}
	pt.UnavailMs = float64(maxStall.Microseconds()) / 1e3
	for i := 0; i < replSites; i++ {
		st := c.Site(i).Eng.Stats()
		pt.Failovers += st.Failovers
		pt.Recoveries += st.Recoveries
		pt.Elections += st.Elections
		pt.Appends += st.Appends
		pt.Commits += st.ReplCommits
		pt.Degraded += st.ReplDegraded
	}
	events := o.Buffer().Events()
	trigger := time.Duration(-1)
	for _, ev := range events {
		switch ev.Type {
		case obs.EvFailover:
			if trigger < 0 {
				trigger = ev.T
			}
		case obs.EvRecover:
			if trigger >= 0 {
				pt.RecoverLatency = append(pt.RecoverLatency, ev.T-trigger)
				trigger = -1
			}
		}
	}
	pt.Events = len(events)
	pt.Violations = len(check.Verify(check.Config{Sites: replSites, Reliable: true}, events))
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, obs.NewHeader(obs.ClockVirtual, replSites), events); err == nil {
		pt.TraceJSONL = buf.Bytes()
	}
	return pt
}

// replicationGrid is the E22 scenario set. The crash lists name sites
// by their group role: 0 is the leader, 1..R its followers.
func replicationGrid() []struct {
	name     string
	replicas int
	crash    []int
} {
	return []struct {
		name     string
		replicas int
		crash    []int
	}{
		{"clean", 0, nil},
		{"clean", 2, nil},
		{"clean", 4, nil},
		{"leader-crash", 0, []int{0}},
		{"leader-crash", 2, []int{0}},
		{"leader-crash", 4, []int{0}},
		// The correlated crash fells the library together with a
		// bystander holder (site 4, outside the R=2 group): the holder
		// rebuild must wait out the dead bystander's ARQ give-up before
		// committing, while the log election never consults it.
		{"correlated-crash", 0, []int{0, 4}},
		{"correlated-crash", 2, []int{0, 4}},
		{"follower-crash", 2, []int{1}},
		{"quorum-loss", 2, []int{0, 2}},
	}
}

// ReplicationSweep runs the E22 grid plus a determinism double-run of
// the leader-crash R=2 point. Every scenario is an independent
// deterministic cluster, so the set fans out across the worker pool.
func ReplicationSweep(perSite int) ReplicationSweepResult {
	grid := replicationGrid()
	var r ReplicationSweepResult
	r.Points = make([]ReplicationPoint, len(grid))
	n := len(grid)
	replay := make([]ReplicationPoint, 2)
	sweepTasks(n+2, func(i int) {
		if i < n {
			g := grid[i]
			r.Points[i] = runReplicationWorkload(g.name, g.replicas, perSite, g.crash)
			return
		}
		replay[i-n] = runReplicationWorkload("leader-crash", 2, perSite, []int{0})
	})
	r.ReplayMatches = replay[0].Elapsed == replay[1].Elapsed &&
		replay[0].Recoveries == replay[1].Recoveries &&
		replay[0].Appends == replay[1].Appends &&
		replay[0].UnavailMs == replay[1].UnavailMs &&
		bytes.Equal(replay[0].TraceJSONL, replay[1].TraceJSONL)
	return r
}
