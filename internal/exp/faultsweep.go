package exp

import (
	"errors"
	"fmt"
	"time"

	"mirage/internal/chaos"
	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/mem"
)

// ---------------------------------------------------------------------------
// E14 — beyond the paper: protocol resilience under injected faults.
// The paper's prototype assumed a lossless Ethernet ("the current
// implementation does not tolerate site failures", §10.0); this sweep
// measures the cost of dropping that assumption — the reliability
// layer's retransmission overhead and completion-time inflation as the
// message loss rate rises, plus behaviour across a site crash window.

// FaultSweepPoint is one loss-rate measurement of the contended-counter
// workload (3 sites, every increment a cross-site coherence cycle).
type FaultSweepPoint struct {
	DropPct     float64       // injected per-message drop probability, percent
	Completed   bool          // workload finished with the exact expected total
	Final       uint32        // final counter value observed
	Want        uint32        // sites × increments
	Elapsed     time.Duration // virtual time to completion
	Retransmits int           // ARQ resends across all sites
	DupDrops    int           // duplicate deliveries suppressed
	GaveUp      int           // retry budgets exhausted
	Degraded    int           // accessor-visible degraded grants
	NetDropped  int           // messages the injector destroyed
	Delivered   int           // messages the fabric delivered
}

// FaultSweepResult is the whole E14 run.
type FaultSweepResult struct {
	Points []FaultSweepPoint
	// Crash is the same workload with a site crashed for a window
	// mid-run instead of random loss.
	Crash FaultSweepPoint
	// ReplayMatches reports the determinism check: the 5% point run
	// twice produced identical virtual end times and fault schedules.
	ReplayMatches bool
}

// faultSweepRel is the reliability configuration under test: tight
// timers keep the virtual completion times readable.
func faultSweepRel() *core.Reliability {
	// AckTimeout must clear the worst-case simulated RTT (a page each
	// way is ~30 ms) plus injected delay, or the sweep measures spurious
	// retransmissions instead of loss recovery.
	return &core.Reliability{
		AckTimeout:     50 * time.Millisecond,
		MaxBackoff:     200 * time.Millisecond,
		MaxAttempts:    8,
		RequestTimeout: 20 * time.Second,
	}
}

// runFaultWorkload drives the counter workload under the plan and
// reports the observed point plus the cluster for deeper inspection.
func runFaultWorkload(plan *chaos.Plan, sites, perSite int) (FaultSweepPoint, *ipc.Cluster) {
	c := ipc.NewCluster(sites, ipc.Config{
		Chaos:  plan,
		Engine: core.Options{Reliability: faultSweepRel()},
	})
	var pt FaultSweepPoint
	pt.Want = uint32(sites * perSite)
	var doneAt time.Duration
	for i := 0; i < sites; i++ {
		site := c.Site(i)
		last := i == 0
		site.Spawn("inc", 0, func(p *ipc.Proc) {
			var id mem.SegID
			for {
				var err error
				id, err = p.Shmget(0x4531, 512, mem.Create, rwMode)
				if err == nil {
					break
				}
				p.Sleep(time.Millisecond)
			}
			h, err := p.Shmat(id, false)
			if err != nil {
				return
			}
			add := func(off int) {
				for {
					err := h.AddUint32(off, 1)
					if err == nil {
						return
					}
					if !errors.Is(err, core.ErrUnreachable) {
						return
					}
					p.Sleep(50 * time.Millisecond)
				}
			}
			for k := 0; k < perSite; k++ {
				add(0)
				// Let a rival steal the page: every increment then
				// costs a full invalidate-and-transfer cycle, giving
				// the injector real protocol traffic to harass.
				p.Sleep(2 * time.Millisecond)
			}
			add(8) // per-site completion marker
			if last {
				for {
					v, err := h.Uint32(8)
					if err == nil && v == uint32(sites) {
						break
					}
					p.Sleep(10 * time.Millisecond)
				}
				v, _ := h.Uint32(0)
				pt.Final = v
				doneAt = p.Now()
			}
		})
	}
	c.RunFor(10 * time.Minute)
	pt.Completed = pt.Final == pt.Want
	pt.Elapsed = doneAt
	for i := 0; i < sites; i++ {
		st := c.Site(i).Eng.Stats()
		pt.Retransmits += st.Retransmits
		pt.DupDrops += st.DupDrops
		pt.GaveUp += st.GaveUp
		pt.Degraded += st.Degraded
	}
	ns := c.Net.Stats()
	pt.NetDropped = ns.Dropped
	pt.Delivered = ns.Delivered
	return pt, c
}

// FaultSweep runs the loss-rate sweep (dup and delay stay constant so
// the drop probability is the only variable), the crash-window
// scenario, and the determinism double-run. Every scenario is an
// independent deterministic cluster, so the whole set — loss points,
// crash, and both replay runs — fans out across the worker pool (see
// Parallelism) with results identical at any worker count.
func FaultSweep(perSite int, dropPcts []float64) FaultSweepResult {
	const sites = 3
	var r FaultSweepResult
	r.Points = make([]FaultSweepPoint, len(dropPcts))
	replay := make([]FaultSweepPoint, 2)
	replayStats := make([]string, 2)

	// Task layout: [0, len) loss points, then crash, then the two
	// determinism runs.
	nPoints := len(dropPcts)
	sweepTasks(nPoints+3, func(i int) {
		switch {
		case i < nPoints:
			pct := dropPcts[i]
			spec := "seed=42; dup p=0.05; delay p=0.1 max=5ms"
			if pct > 0 {
				spec = fmt.Sprintf("seed=42; drop p=%g; dup p=0.05; delay p=0.1 max=5ms", pct/100)
			}
			plan, err := chaos.Parse(spec)
			if err != nil {
				panic(err)
			}
			pt, _ := runFaultWorkload(plan, sites, perSite)
			pt.DropPct = pct
			r.Points[i] = pt
		case i == nPoints:
			// Crash window: site 2 is dead (all its traffic destroyed,
			// both directions) for half the run, then comes back. The
			// window sits inside the workload's ~500 ms span so the
			// protocol actually rides through it; the retry budget
			// (~1.3 s) outlasts the outage, so the stalled cycles
			// complete on retransmission once the site returns.
			plan, err := chaos.Parse("seed=42; crash site=2 from=100ms until=400ms")
			if err != nil {
				panic(err)
			}
			r.Crash, _ = runFaultWorkload(plan, sites, perSite)
		default:
			// Determinism: the 5% point twice must replay the exact
			// schedule.
			plan, err := chaos.Parse("seed=42; drop p=0.05; dup p=0.05; delay p=0.1 max=5ms")
			if err != nil {
				panic(err)
			}
			pt, c := runFaultWorkload(plan, sites, perSite)
			replay[i-nPoints-1] = pt
			replayStats[i-nPoints-1] = c.Chaos.Stats().String()
		}
	})
	r.ReplayMatches = replay[0].Elapsed == replay[1].Elapsed &&
		replay[0].Retransmits == replay[1].Retransmits &&
		replayStats[0] == replayStats[1]
	return r
}
