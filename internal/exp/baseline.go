package exp

import (
	"time"

	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/ivy"
	"mirage/internal/vaxmodel"
)

// ---------------------------------------------------------------------------
// E10 — baseline comparison: Mirage vs a Li/Hudak-style centralized
// manager SVM (Appendix I context). Both run on the identical
// simulated substrate; the differences are exactly the paper's
// mechanisms (Δ, upgrade without page copy, downgrade retention).

// BaselinePoint is one (system, workload) throughput measurement.
type BaselinePoint struct {
	System     string // "mirage(Δ=...)" or "ivy"
	Workload   string // "worst-case" or "representative"
	Throughput float64
	Unit       string
	PageMoves  int // page-carrying transfers observed
}

// ivyCluster builds a cluster running the centralized-manager baseline.
func ivyCluster(n int) *ipc.Cluster {
	return ipc.NewCluster(n, ipc.Config{
		NewDSM: func(env core.Env) ipc.DSM { return ivy.New(env) },
	})
}

// ivyDynCluster builds a cluster running Li & Hudak's dynamic
// distributed manager.
func ivyDynCluster(n int) *ipc.Cluster {
	return ipc.NewCluster(n, ipc.Config{
		NewDSM: func(env core.Env) ipc.DSM { return ivy.NewDynamic(env) },
	})
}

func mirageCluster(n int, delta time.Duration) *ipc.Cluster {
	return ipc.NewCluster(n, ipc.Config{Delta: delta})
}

// BaselineComparison runs the two paper workloads under Mirage (Δ=0
// and a tuned Δ) and under IVY.
func BaselineComparison(dur time.Duration) []BaselinePoint {
	var out []BaselinePoint

	pageMoves := func(c *ipc.Cluster) int {
		total := 0
		for i := 0; i < c.Sites(); i++ {
			switch eng := c.Site(i).DSM.(type) {
			case interface{ Stats() core.Stats }:
				total += eng.Stats().PagesSent
			case *ivy.Engine:
				total += eng.Stats().PagesSent
			case *ivy.Dynamic:
				total += eng.Stats().PagesSent
			}
		}
		return total
	}

	worst := func(name string, c *ipc.Cluster) {
		st := runPingPong(c, 0, 1, PingPongConfig{UseYield: true}, 512, dur)
		c.Run()
		out = append(out, BaselinePoint{
			System: name, Workload: "worst-case",
			Throughput: float64(st.cycles) / dur.Seconds(),
			Unit:       "cycles/s",
			PageMoves:  pageMoves(c),
		})
	}
	rep := func(name string, c *ipc.Cluster) {
		st := runCounters(c, 0, 1, CountersConfig{Duration: dur})
		c.Run()
		out = append(out, BaselinePoint{
			System: name, Workload: "representative",
			Throughput: 2 * float64(st.iters[0]+st.iters[1]) / dur.Seconds(),
			Unit:       "insn/s",
			PageMoves:  pageMoves(c),
		})
	}

	worst("mirage(Δ=0)", mirageCluster(2, 0))
	worst("mirage(Δ=2 ticks)", mirageCluster(2, 2*vaxmodel.ClockTick))
	worst("ivy-central", ivyCluster(2))
	worst("ivy-dynamic", ivyDynCluster(2))
	rep("mirage(Δ=0)", mirageCluster(2, 0))
	rep("mirage(Δ=600ms)", mirageCluster(2, 600*time.Millisecond))
	rep("ivy-central", ivyCluster(2))
	rep("ivy-dynamic", ivyDynCluster(2))
	return out
}
