package exp

import (
	"bytes"
	"testing"

	"mirage/internal/check"
	"mirage/internal/obs"
)

func TestE18FailoverSweep(t *testing.T) {
	r := FailoverSweep(10, []int{0, 1, 2})
	if len(r.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(r.Points))
	}
	for _, p := range r.Points {
		if !p.Completed {
			t.Errorf("crashes=%d: final=%d want=%d", p.Crashes, p.Final, p.Want)
		}
		if p.Recoveries != p.Crashes {
			t.Errorf("crashes=%d: %d recoveries, want one per crash", p.Crashes, p.Recoveries)
		}
		if len(p.RecoverLatency) != p.Crashes {
			t.Errorf("crashes=%d: %d recovery latencies measured", p.Crashes, len(p.RecoverLatency))
		}
		if p.MaxEpoch != uint32(p.Crashes) {
			t.Errorf("crashes=%d: max epoch %d, want %d", p.Crashes, p.MaxEpoch, p.Crashes)
		}
		// Every point's trace — single- or multi-epoch — must verify.
		_, events, err := obs.ReadJSONL(bytes.NewReader(p.TraceJSONL))
		if err != nil {
			t.Errorf("crashes=%d: reparse trace: %v", p.Crashes, err)
			continue
		}
		for _, v := range check.Verify(check.Config{Sites: 4, Reliable: true}, events) {
			t.Errorf("crashes=%d: coherence violation: %v", p.Crashes, v)
		}
	}
	if !r.ReplayMatches {
		t.Error("same seed did not replay the same schedule")
	}
}
