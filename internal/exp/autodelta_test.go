package exp

import (
	"bytes"
	"testing"
	"time"
)

// quickAutoDelta is the CI-sized E23 config: a three-point grid and
// short windows, still long enough for the controller's production
// cooldown (three clock ticks) to fire many times.
func quickAutoDelta() AutoDeltaConfig {
	return AutoDeltaConfig{
		Ticks:       []int{0, 2, 6},
		PingPongDur: 6 * time.Second,
		ServiceDur:  2 * time.Second,
		AffinityDur: 6 * time.Second,
	}
}

// TestAutoDeltaSweep runs the quick E23 grid and asserts the properties
// the findings rely on: the controller actually retunes on every
// workload, matches the best fixed Δ within tolerance, every traced
// controller run verifies clean, and the sweep replays
// deterministically. Virtual-time and seeded: a failure is a
// regression, not noise.
func TestAutoDeltaSweep(t *testing.T) {
	r := AutoDeltaSweep(quickAutoDelta())
	if len(r.Workloads) != 3 {
		t.Fatalf("workloads: got %d, want 3", len(r.Workloads))
	}
	for _, wl := range r.Workloads {
		if wl.Auto.Score == 0 {
			t.Errorf("%s: controller cell scored 0", wl.Workload)
		}
		if wl.Auto.Grows+wl.Auto.Shrinks == 0 || wl.Retunes == 0 {
			t.Errorf("%s: controller never adjusted (grows=%d shrinks=%d retunes=%d)",
				wl.Workload, wl.Auto.Grows, wl.Auto.Shrinks, wl.Retunes)
		}
		if !wl.AutoMatchesBest {
			best := wl.Fixed[wl.BestFixed]
			t.Errorf("%s: auto score %.1f below best fixed Δ=%d ticks (%.1f)",
				wl.Workload, wl.Auto.Score, best.DeltaTicks, best.Score)
		}
		if wl.Violations != 0 {
			t.Errorf("%s: traced controller run has %d coherence violations", wl.Workload, wl.Violations)
		}
	}
	// The affinity controller cell must exercise the rehoming path the
	// tuned state ships through.
	if aff := r.Workloads[2]; aff.Auto.Migrations == 0 {
		t.Errorf("affinity controller cell never migrated")
	}
	if !r.ReplayMatches {
		t.Errorf("replay determinism violated: identical controller runs scored differently")
	}
}

// TestAutoDeltaFindings exercises the findings renderer.
func TestAutoDeltaFindings(t *testing.T) {
	r := AutoDeltaSweep(AutoDeltaConfig{
		Ticks:       []int{0, 6},
		PingPongDur: time.Second,
		ServiceDur:  time.Second,
		AffinityDur: 4 * time.Second,
	})
	var buf bytes.Buffer
	r.WriteFindings(&buf)
	out := buf.String()
	for _, want := range []string{"E23", "[pingpong]", "[service]", "[affinity]",
		"auto matches best fixed", "replay determinism"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("findings missing %q:\n%s", want, out)
		}
	}
}
