package exp

import (
	"time"

	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/netsim"
	"mirage/internal/sim"
	"mirage/internal/vaxmodel"
)

// ---------------------------------------------------------------------------
// E1 — §7.1 component timings.

// ComponentTimingsResult reproduces the two measured message costs.
type ComponentTimingsResult struct {
	ShortRTT      time.Duration // paper: 12.9 ms
	PagePlusReply time.Duration // paper: 21.5 ms
}

// PaperShortRTT and PaperPagePlusReply are the paper's measurements.
const (
	PaperShortRTT      = 12900 * time.Microsecond
	PaperPagePlusReply = 21500 * time.Microsecond
)

// ComponentTimings measures a short round trip and a 1 KB message with
// a short reply between two otherwise idle sites.
func ComponentTimings() ComponentTimingsResult {
	measure := func(size int) time.Duration {
		k := sim.NewKernel()
		n := netsim.New(k, 2)
		var done sim.Time
		n.Bind(1, func(m netsim.Message) { n.Send(netsim.Message{From: 1, To: 0}) })
		n.Bind(0, func(m netsim.Message) { done = k.Now() })
		n.Send(netsim.Message{From: 0, To: 1, Size: size})
		k.Run()
		return done.Duration()
	}
	return ComponentTimingsResult{
		ShortRTT:      measure(0),
		PagePlusReply: measure(1024),
	}
}

// ---------------------------------------------------------------------------
// E2 — Table 3: time to obtain an in-memory page remotely.

// Table3Row is one line of the component breakdown.
type Table3Row struct {
	Name  string
	Paper time.Duration
	Model time.Duration
}

// Table3Result carries the breakdown and the end-to-end measurement.
type Table3Result struct {
	Rows          []Table3Row
	PaperTotal    time.Duration // 27.5 ms
	ModelTotal    time.Duration // sum of rows
	MeasuredTotal time.Duration // observed fault-to-return time in the full simulator
}

// Table3 reproduces the remote page fetch breakdown: a process on site
// 1 read-faults on a page checked in at the library (site 0).
func Table3() Table3Result {
	rows := []Table3Row{
		{"Using Site Read Request", 2500 * time.Microsecond, vaxmodel.ReadRequestService},
		{"Read Request output transmission elapsed", 3200 * time.Microsecond, vaxmodel.MsgSideElapsed(0)},
		{"Read request input reception elapsed", 3200 * time.Microsecond, vaxmodel.MsgSideElapsed(0)},
		{"Server process time for request", 1500 * time.Microsecond, vaxmodel.ServerRequestService},
		{"Page output transmission elapsed", 7500 * time.Microsecond, vaxmodel.MsgSideElapsed(1024)},
		{"Page input reception elapsed", 7500 * time.Microsecond, vaxmodel.MsgSideElapsed(1024)},
		{"Processing Time", 2 * time.Millisecond, vaxmodel.PageInstallService},
	}
	var modelTotal time.Duration
	for _, r := range rows {
		modelTotal += r.Model
	}

	c := ipc.NewCluster(2, ipc.Config{})
	var measured time.Duration
	c.Site(0).Spawn("library", 0, func(p *ipc.Proc) {
		h := attachShared(p, true, 512)
		h.SetUint32(0, 1)
		p.Sleep(2 * time.Second)
	})
	c.Site(1).Spawn("requester", 0, func(p *ipc.Proc) {
		p.Sleep(100 * time.Millisecond)
		h := attachShared(p, false, 512)
		t0 := p.Now()
		h.Uint32(0)
		measured = p.Now() - t0
	})
	c.Run()
	return Table3Result{
		Rows:          rows,
		PaperTotal:    27500 * time.Microsecond,
		ModelTotal:    modelTotal,
		MeasuredTotal: measured,
	}
}

// ---------------------------------------------------------------------------
// E3 — §7.2 single-site worst case: yield() vs busy waiting.

// SingleSiteResult holds cycles/second for the two program variants on
// one site. The paper measured 5 without yield and 166 with (×35).
type SingleSiteResult struct {
	NoYield   float64
	WithYield float64
	Speedup   float64
}

// PaperSingleSite are the §7.2 measurements.
var PaperSingleSite = SingleSiteResult{NoYield: 5, WithYield: 166, Speedup: 35}

// SingleSiteWorstCase runs both variants for dur of virtual time with
// the two processes colocated (no network traffic at all).
func SingleSiteWorstCase(dur time.Duration) SingleSiteResult {
	run := func(useYield bool) float64 {
		c := ipc.NewCluster(1, ipc.Config{})
		st := runPingPong(c, 0, 0, PingPongConfig{UseYield: useYield}, 512, dur)
		c.Run()
		return float64(st.cycles) / dur.Seconds()
	}
	r := SingleSiteResult{NoYield: run(false), WithYield: run(true)}
	if r.NoYield > 0 {
		r.Speedup = r.WithYield / r.NoYield
	}
	return r
}

// ---------------------------------------------------------------------------
// E4 — Figure 7: two-site worst case throughput vs Δ.

// Figure7Point is throughput at one Δ (in clock ticks, as the paper's
// x-axis).
type Figure7Point struct {
	DeltaTicks int
	Yield      float64 // cycles/second with yield()
	NoYield    float64 // cycles/second busy-waiting
}

// Figure7 sweeps Δ over tick values for both program variants. Each
// point runs for dur of virtual time. Site 0 hosts process 1 and the
// library ("one site acts as user and library site", §7.3); site 1
// hosts process 2. Points run in parallel (see Parallelism): each owns
// a private virtual cluster, so the sweep is deterministic regardless
// of worker count.
func Figure7(dur time.Duration, ticks []int) []Figure7Point {
	return sweep(ticks, func(k int) Figure7Point {
		delta := time.Duration(k) * vaxmodel.ClockTick
		p := Figure7Point{DeltaTicks: k}
		for _, yield := range []bool{true, false} {
			c := ipc.NewCluster(2, ipc.Config{Delta: delta})
			st := runPingPong(c, 0, 1, PingPongConfig{UseYield: yield}, 512, dur)
			c.Run()
			v := float64(st.cycles) / dur.Seconds()
			if yield {
				p.Yield = v
			} else {
				p.NoYield = v
			}
		}
		return p
	})
}

// WorstCaseTraffic reports protocol traffic per worst-case cycle at a
// given Δ: the analogue of §7.2's "9 messages are sent for one cycle
// of the application; three of these are large". The derived
// communications bound recomputes the paper's 109 ms arithmetic from
// the measured counts.
type WorstCaseTraffic struct {
	DeltaTicks    int
	Cycles        int
	MsgsPerCycle  float64
	LargePerCycle float64
	DerivedBound  time.Duration // raw comm + request/input interrupt charges per cycle
}

// MeasureWorstCaseTraffic runs the yield variant and counts messages.
func MeasureWorstCaseTraffic(dur time.Duration, deltaTicks int) WorstCaseTraffic {
	delta := time.Duration(deltaTicks) * vaxmodel.ClockTick
	c := ipc.NewCluster(2, ipc.Config{Delta: delta})
	st := runPingPong(c, 0, 1, PingPongConfig{UseYield: true}, 512, dur)
	c.Run()
	ns := c.Net.Stats()
	t := WorstCaseTraffic{DeltaTicks: deltaTicks, Cycles: st.cycles}
	if st.cycles == 0 {
		return t
	}
	cyc := float64(st.cycles)
	t.MsgsPerCycle = float64(ns.Delivered) / cyc
	t.LargePerCycle = float64(ns.LargeMsgs) / cyc
	short := t.MsgsPerCycle - t.LargePerCycle
	raw := time.Duration(t.LargePerCycle*float64(2*vaxmodel.MsgSideElapsed(1024))) +
		time.Duration(short*float64(2*vaxmodel.MsgSideElapsed(0)))
	// The paper adds 2.5 ms per remote page request and 1.5 ms per
	// input interrupt; approximate with the same per-message mapping.
	reqs := float64(c.Site(0).Eng.Stats().RequestsSent+c.Site(1).Eng.Stats().RequestsSent) / cyc
	t.DerivedBound = raw +
		time.Duration(reqs*float64(vaxmodel.ReadRequestService)) +
		time.Duration(t.MsgsPerCycle*float64(vaxmodel.InputInterruptService))
	return t
}

// ---------------------------------------------------------------------------
// E5 — Figure 8: representative application throughput vs Δ.

// Figure8Point is one sweep point: shared read-write instructions per
// second at a given Δ.
type Figure8Point struct {
	Delta      time.Duration
	InsnPerSec float64
}

// PaperFigure8Peak is the paper's maximum: 115,000 read-write
// instructions/second at Δ=600 ms; below Δ=120 ms throughput is poor
// (the "contention" side), above 600 ms it decays gently (the
// "retention" side).
const (
	PaperFigure8Peak      = 115000.0
	PaperFigure8PeakDelta = 600 * time.Millisecond
	PaperFigure8Knee      = 120 * time.Millisecond
)

// Figure8 sweeps Δ for the two conflicting read-writers. Each point
// runs cfg.Duration of virtual time (the paper's 10 s).
func Figure8(cfg CountersConfig, deltas []time.Duration) []Figure8Point {
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	return sweep(deltas, func(d time.Duration) Figure8Point {
		c := ipc.NewCluster(2, ipc.Config{Delta: d})
		st := runCounters(c, 0, 1, cfg)
		c.Run()
		iters := st.iters[0] + st.iters[1]
		return Figure8Point{
			Delta:      d,
			InsnPerSec: 2 * float64(iters) / cfg.Duration.Seconds(), // read + write per iteration
		}
	})
}

// ---------------------------------------------------------------------------
// E6 — §7.3: thrashing amelioration. "By increasing Δ, although
// application throughput is reduced, system performance is improved
// for other processes."

// ThrashPoint pairs the thrashing application's throughput with a
// compute-only bystander's progress at one Δ.
type ThrashPoint struct {
	DeltaTicks     int
	AppCycles      float64 // worst-case app cycles/second
	BystanderUnits float64 // bystander work units/second (1 ms of CPU each)
}

// ThrashingAmelioration runs the two-site worst case (yield variant,
// so the application's own CPU appetite is small and the bystander's
// loss is protocol service overhead) with an unrelated compute-bound
// process sharing site 0, sweeping Δ.
func ThrashingAmelioration(dur time.Duration, ticks []int) []ThrashPoint {
	return sweep(ticks, func(k int) ThrashPoint {
		delta := time.Duration(k) * vaxmodel.ClockTick
		c := ipc.NewCluster(2, ipc.Config{Delta: delta})
		st := runPingPong(c, 0, 1, PingPongConfig{UseYield: true}, 512, dur)
		units := 0
		c.Site(0).Spawn("bystander", 0, func(p *ipc.Proc) {
			for p.Now() < dur {
				p.Compute(time.Millisecond)
				units++
			}
		})
		c.Run()
		return ThrashPoint{
			DeltaTicks:     k,
			AppCycles:      float64(st.cycles) / dur.Seconds(),
			BystanderUnits: float64(units) / dur.Seconds(),
		}
	})
}

// ---------------------------------------------------------------------------
// E7 — §7.1 caveats as ablations: invalidation retry policies.

// PolicyPoint is one (policy, Δ) measurement of the representative
// application.
type PolicyPoint struct {
	Policy     core.InvalPolicy
	Delta      time.Duration
	InsnPerSec float64
	Retries    int // library invalidation retries observed
}

// InvalidationAblation compares the paper's two-attempt retry against
// the honor-if-close and queued-invalidation optimizations it proposes
// (§7.1: both were unimplemented in the prototype).
func InvalidationAblation(cfg CountersConfig, deltas []time.Duration) []PolicyPoint {
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	// Flatten the policy × Δ grid so every cell is one parallel point.
	type cell struct {
		policy core.InvalPolicy
		d      time.Duration
	}
	var cells []cell
	for _, policy := range []core.InvalPolicy{core.PolicyRetry, core.PolicyHonorClose, core.PolicyQueue} {
		for _, d := range deltas {
			cells = append(cells, cell{policy, d})
		}
	}
	return sweep(cells, func(cl cell) PolicyPoint {
		c := ipc.NewCluster(2, ipc.Config{
			Delta:  cl.d,
			Engine: core.Options{Policy: cl.policy},
		})
		st := runCounters(c, 0, 1, cfg)
		c.Run()
		iters := st.iters[0] + st.iters[1]
		return PolicyPoint{
			Policy:     cl.policy,
			Delta:      cl.d,
			InsnPerSec: 2 * float64(iters) / cfg.Duration.Seconds(),
			Retries:    c.Site(0).Eng.Stats().Retries + c.Site(1).Eng.Stats().Retries,
		}
	})
}

// ---------------------------------------------------------------------------
// E8 — §8.0 dynamic Δ tuning (the routine Mirage ships disabled).

// DynamicDeltaResult compares fixed Δ choices against the adaptive
// tuner on the representative application.
type DynamicDeltaResult struct {
	FixedZero  float64 // Δ=0 (deep contention side)
	FixedKnee  float64 // Δ=120 ms
	FixedPeak  float64 // Δ=600 ms
	FixedLarge float64 // Δ=2400 ms (deep retention side)
	Adaptive   float64 // library tunes per page from observed demand
}

// DynamicDelta enables a tuner that sets a page's window to the EWMA
// of its inter-request gap, clamped to [0, 1s] — pages with fast
// re-request get windows about as long as their observed locality
// interval.
func DynamicDelta(cfg CountersConfig) DynamicDeltaResult {
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	fixed := func(d time.Duration) float64 {
		c := ipc.NewCluster(2, ipc.Config{Delta: d})
		st := runCounters(c, 0, 1, cfg)
		c.Run()
		return 2 * float64(st.iters[0]+st.iters[1]) / cfg.Duration.Seconds()
	}
	tuner := func(ti core.TuneInfo) time.Duration {
		d := ti.MeanGap
		if ti.Requests < 4 {
			return ti.Delta
		}
		if d > time.Second {
			d = 0 // cold page: no window needed
		}
		return d
	}
	adaptive := func() float64 {
		c := ipc.NewCluster(2, ipc.Config{
			Delta:  0,
			Engine: core.Options{TuneDelta: tuner},
		})
		st := runCounters(c, 0, 1, cfg)
		c.Run()
		return 2 * float64(st.iters[0]+st.iters[1]) / cfg.Duration.Seconds()
	}
	// The five configurations are independent runs: fan them out.
	var r DynamicDeltaResult
	tasks := []func(){
		func() { r.FixedZero = fixed(0) },
		func() { r.FixedKnee = fixed(120 * time.Millisecond) },
		func() { r.FixedPeak = fixed(600 * time.Millisecond) },
		func() { r.FixedLarge = fixed(2400 * time.Millisecond) },
		func() { r.Adaptive = adaptive() },
	}
	sweepTasks(len(tasks), func(i int) { tasks[i]() })
	return r
}

// ---------------------------------------------------------------------------
// E9 — §7.2 test&set: a spinlock whose lock shares a page with the
// data it protects thrashes; Δ>0 helps the locking writer.

// TASPoint is one Δ measurement of the test&set scenario.
type TASPoint struct {
	DeltaTicks int
	CritPerSec float64 // completed critical sections/second at the writer
	PageMoves  int     // page transfers observed
}

// TASResult is the §7.2 test&set study: the locking writer's critical
// section rate alone, and with a remote busy-waiting tester at each Δ.
// The paper's conclusion — "the use of test&set can degrade
// performance substantially if the process in the locked region writes
// to the particular page of the lock while a remote test&set reader is
// testing" — shows as Solo far above every contended point.
type TASResult struct {
	Solo   float64 // crit sections/s with no remote tester
	Points []TASPoint
}

// TestAndSetScenario measures the locking writer with and without the
// remote tester.
func TestAndSetScenario(dur time.Duration, ticks []int) TASResult {
	var r TASResult
	// The solo run is one more independent point: fold it into the fan-out
	// as index 0, with the contended Δ points after it.
	tasks := append([]int{-1}, ticks...)
	pts := sweep(tasks, func(k int) TASPoint {
		if k < 0 {
			solo := ipc.NewCluster(2, ipc.Config{})
			return TASPoint{CritPerSec: runTASWriter(solo, dur, false)}
		}
		delta := time.Duration(k) * vaxmodel.ClockTick
		c := ipc.NewCluster(2, ipc.Config{Delta: delta})
		crit := runTASWriter(c, dur, true)
		moves := c.Site(0).Eng.Stats().PagesSent + c.Site(1).Eng.Stats().PagesSent
		return TASPoint{DeltaTicks: k, CritPerSec: crit, PageMoves: moves}
	})
	r.Solo = pts[0].CritPerSec
	r.Points = pts[1:]
	return r
}

// runTASWriter spawns the locking writer (and optionally the remote
// tester) and returns the writer's critical sections per second.
func runTASWriter(c *ipc.Cluster, dur time.Duration, withTester bool) float64 {
	crit := 0
	c.Site(0).Spawn("locker", 0, func(p *ipc.Proc) {
		h := attachShared(p, true, 512)
		for p.Now() < dur {
			for {
				old, err := h.TestAndSet(0)
				if err != nil {
					return
				}
				if old == 0 {
					break
				}
				p.Yield()
			}
			// Critical section: ~25 ms of data access on the lock's
			// own page, long enough that a remote tester's page steal
			// lands mid-section.
			for i := 0; i < 24; i++ {
				if h.SetUint32(4+4*(i%32), uint32(i)) != nil {
					return
				}
				p.Compute(time.Millisecond)
			}
			if h.Clear(0) != nil {
				return
			}
			crit++
		}
	})
	if withTester {
		c.Site(1).Spawn("tester", 0, func(p *ipc.Proc) {
			p.Sleep(time.Millisecond)
			h := attachShared(p, false, 512)
			for p.Now() < dur {
				old, err := h.TestAndSet(0)
				if err != nil {
					return
				}
				if old == 0 {
					// Got the lock by accident of timing; release at
					// once — the scenario studies the remote *tester*.
					h.Clear(0)
				}
				// §7.2's test&set "uses busy waiting": the tester
				// hammers the interlocked instruction.
				p.Compute(8 * vaxmodel.SpinCheck)
			}
		})
	}
	c.Run()
	return float64(crit) / dur.Seconds()
}

// ---------------------------------------------------------------------------
// E11 — §6.2: lazy remap cost scales with mapped segment size.

// RemapPoint is the dispatch cost for a process with a given number of
// mapped shared pages.
type RemapPoint struct {
	Pages        int
	DispatchCost time.Duration // mean switch cost per dispatch
}

// RemapCost measures mean dispatch (context switch + remap) cost for
// processes attached to segments of increasing size. The paper reports
// 106–125 µs per 512-byte page up to 128 KB segments.
func RemapCost(pageCounts []int) []RemapPoint {
	return sweep(pageCounts, func(pages int) RemapPoint {
		c := ipc.NewCluster(1, ipc.Config{})
		c.Site(0).Spawn("mapped", 0, func(p *ipc.Proc) {
			id, err := p.Shmget(segKey, pages*vaxmodel.PageSize, mem.Create, rwMode)
			if err != nil {
				panic(err)
			}
			h, err := p.Shmat(id, false)
			if err != nil {
				panic(err)
			}
			_ = h
			// Sleep repeatedly: every wakeup is a fresh dispatch that
			// must remap all shared pages.
			for i := 0; i < 50; i++ {
				p.Sleep(time.Millisecond)
			}
		})
		c.Run()
		st := c.Site(0).CPU.Stats()
		mean := time.Duration(0)
		if st.Dispatches > 0 {
			mean = st.SwitchBusy / time.Duration(st.Dispatches)
		}
		return RemapPoint{Pages: pages, DispatchCost: mean}
	})
}

// ---------------------------------------------------------------------------
// E4b — the N-site worst case (§7.2 mentions the application's
// "N-site version"): N processes on N sites pass the token around the
// same page in a ring — every hop is a full invalidate-and-transfer.

// NSitePoint is throughput for one ring size.
type NSitePoint struct {
	Sites        int
	CyclesPerSec float64 // full ring rotations per second
	MsgsPerCycle float64
}

// NSiteWorstCase measures ring-token throughput for each cluster size.
// Site 0 hosts the library; Δ is left at zero (the best setting for a
// pure ping-pong per §10.0's "Δ be small or equal to zero" guidance).
func NSiteWorstCase(dur time.Duration, sizes []int) []NSitePoint {
	return sweep(sizes, func(n int) NSitePoint {
		c := ipc.NewCluster(n, ipc.Config{})
		rounds := 0
		for s := 0; s < n; s++ {
			s := s
			c.Site(s).Spawn("ring", 0, func(p *ipc.Proc) {
				var h *ipc.Shm
				if s == 0 {
					h = attachShared(p, true, 512)
					h.SetUint32(0, 0) // token starts at site 0
				} else {
					p.Sleep(time.Millisecond)
					h = attachShared(p, false, 512)
				}
				for p.Now() < dur {
					v, err := h.Uint32(0)
					if err != nil {
						return
					}
					if int(v)%n == s {
						if h.SetUint32(0, v+1) != nil {
							return
						}
						if s == n-1 {
							rounds++
						}
					} else {
						p.Yield()
					}
				}
			})
		}
		c.Run()
		ns := c.Net.Stats()
		pt := NSitePoint{Sites: n, CyclesPerSec: float64(rounds) / dur.Seconds()}
		if rounds > 0 {
			pt.MsgsPerCycle = float64(ns.Delivered) / float64(rounds)
		}
		return pt
	})
}
