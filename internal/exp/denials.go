package exp

import (
	"bytes"
	"time"

	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/obs"
	"mirage/internal/vaxmodel"
)

// ---------------------------------------------------------------------------
// E16 — the Figure 7 Δ-sweep re-run under full observability: metrics
// registry on, protocol tracer on. Beyond the throughput curve, each
// point reports what the denial histogram saw — how often the clock
// site refused an invalidation inside an unexpired window, and how much
// window time remained when it did. The remaining-time distribution is
// what explains Figure 7's shape: past Δ = one scheduling quantum the
// denial stops buying the holder CPU time it can use.

// DeltaDenialPoint is one traced Δ setting of the two-site worst case.
type DeltaDenialPoint struct {
	DeltaTicks   int
	CyclesPerSec float64

	// From the metrics registry.
	Denials       int64
	Retries       int64
	MeanRemaining time.Duration // mean Δ-window time left at denial
	MaxRemaining  time.Duration

	// TraceJSONL is the run's full protocol trace in the schema-v1
	// JSONL encoding — a pure function of the virtual run, so it is
	// byte-identical across repeats and worker counts.
	TraceJSONL []byte
}

// DeltaDenialSweep runs the §7.2 worst case (yield variant) at each Δ
// tick value with an observability sink attached, and returns per-point
// throughput, denial statistics, and the serialized trace. Points run
// in parallel (see Parallelism); each owns a private cluster and a
// private sink, so results are deterministic at any worker count.
func DeltaDenialSweep(dur time.Duration, ticks []int) []DeltaDenialPoint {
	return sweep(ticks, func(k int) DeltaDenialPoint {
		o := obs.New()
		delta := time.Duration(k) * vaxmodel.ClockTick
		c := ipc.NewCluster(2, ipc.Config{Delta: delta, Engine: core.Options{Obs: o}})
		st := runPingPong(c, 0, 1, PingPongConfig{UseYield: true}, 512, dur)
		c.Run()

		h := o.Metrics.Hist(obs.HDenialRemaining)
		p := DeltaDenialPoint{
			DeltaTicks:    k,
			CyclesPerSec:  float64(st.cycles) / dur.Seconds(),
			Denials:       o.Metrics.Total(obs.CDeltaDenial),
			Retries:       o.Metrics.Total(obs.CRetry),
			MaxRemaining:  time.Duration(h.Max()),
			MeanRemaining: time.Duration(h.Mean()),
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, obs.NewHeader(obs.ClockVirtual, c.Sites()), o.Buffer().Events()); err != nil {
			panic(err) // bytes.Buffer cannot fail; a failure here is a bug
		}
		p.TraceJSONL = buf.Bytes()
		return p
	})
}
