package exp

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"mirage/internal/app"
	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/load"
	"mirage/internal/mem"
	"mirage/internal/obs"
)

// ---------------------------------------------------------------------------
// E21 — beyond the paper: voluntary library migration. E19 measures the
// service with every shard's library fixed where rendezvous placement
// put it; E21 asks what Options.Placement buys when the demand does not
// match that placement. The workload gives every service site strong
// affinity for a set of shards (its lanes draw almost all their keys
// from those shards) while the shards' libraries start elsewhere, so
// each hot site pays a network round trip per fault that a local
// library would not charge. Two scenarios: "skewed" starts every shard
// mis-homed (placement must fix a bad static layout), "shifting"
// starts matched and rotates the affinity mid-run (placement must track
// a moving hotspot). Each runs with migration off and on; the verdict
// compares p99 and goodput, with the on-runs' traces carrying the
// EvMigrate commits for the coherence checker.

// MigrationConfig parameterizes the E21 sweep.
type MigrationConfig struct {
	// Seed drives the load streams (default 1).
	Seed int64
	// Sites is the cluster size (default 4).
	Sites int
	// Shards and SlotsPerShard fix the store geometry (defaults 8, 32).
	Shards        int
	SlotsPerShard int
	// Rate is the offered aggregate load in requests/second (default
	// 150 — below the E19 knee, so latency reflects page-move distance
	// rather than saturation).
	Rate float64
	// Duration is the offered window (default 16s); the shifting
	// scenario rotates affinity at Duration/2, so half the run is
	// post-rotation — long enough for the policy's window and cooldown
	// to rehome the hot shards and for the benefit to register.
	Duration time.Duration
	// Workers is the per-site lane count (default 2).
	Workers int
	// QueueCap bounds each lane's backlog (default 16).
	QueueCap int
	// KeysPerShard sizes each shard's key pool (default 12).
	KeysPerShard int
	// CrossFrac is the fraction of each lane's ops aimed at the whole
	// keyspace instead of its affine pool (default 0.1). The cross
	// traffic keeps invalidating the hot sites' copies, which is what
	// sustains library demand after warm-up — and what keeps the
	// hot/cold demand ratio visible to the placement policy.
	CrossFrac float64
	// ReadFrac is the read fraction of the op mix (default 0.65 — more
	// writes than the library default so cross traffic keeps
	// invalidating the hot sites' copies, sustaining the fault-driven
	// demand signal the placement policy feeds on).
	ReadFrac float64
	// OpCost is per-request CPU before the store call (default 500µs).
	OpCost time.Duration
	// SLO is the p99 objective findings report against (default 1s).
	SLO time.Duration
}

// WithDefaults returns the config with zero fields defaulted.
func (c MigrationConfig) WithDefaults() MigrationConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sites == 0 {
		c.Sites = 4
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.SlotsPerShard == 0 {
		c.SlotsPerShard = 32
	}
	if c.Rate == 0 {
		c.Rate = 150
	}
	if c.Duration == 0 {
		c.Duration = 16 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 16
	}
	if c.KeysPerShard == 0 {
		c.KeysPerShard = 12
	}
	if c.CrossFrac == 0 {
		c.CrossFrac = 0.1
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.65
	}
	if c.OpCost == 0 {
		c.OpCost = 500 * time.Microsecond
	}
	if c.SLO == 0 {
		c.SLO = time.Second
	}
	return c
}

// AppConfig builds the store geometry.
func (c MigrationConfig) AppConfig() app.Config {
	c = c.WithDefaults()
	return app.Config{Shards: c.Shards, Sites: c.Sites, SlotsPerShard: c.SlotsPerShard, SlotSize: 64}
}

// Policy is the placement policy the on-points run. The knobs are
// sized for fault-driven demand, which is far sparser than op-driven
// load: a library only hears from a site when an invalidation made it
// re-fault, so a shard serving tens of ops/s may see single-digit
// library requests per second. Window 1s with a floor of 8 catches
// that while filtering the noise windows where a lucky burst of cross
// traffic could elect the wrong site; Share 0.5 accepts the hot site's
// ~half of a stream whose other half is spread over several
// cross-traffic sites. PingPong 0.7 refuses windows where the
// runner-up rivals the leader — both true 1:1 write sharing and the
// post-migration steady state, where the rehomed site's loopback
// re-faults roughly match the interrupting cross traffic.
func (c MigrationConfig) Policy() *core.Placement {
	return &core.Placement{
		Window:      time.Second,
		MinRequests: 8,
		Share:       0.5,
		PingPong:    0.7,
		Cooldown:    3 * time.Second,
	}
}

// Spec builds the rung's load spec: one frontend per service lane.
func (c MigrationConfig) Spec() load.Spec {
	c = c.WithDefaults()
	return load.Spec{
		Seed:      c.Seed,
		Rate:      c.Rate,
		Duration:  c.Duration,
		Frontends: c.Sites * c.Workers,
		Workers:   1,
		QueueCap:  c.QueueCap,
		Keys:      c.Shards * c.KeysPerShard,
		ReadFrac:  c.ReadFrac,
		Skew:      load.SkewUniform,
		SLO:       c.SLO,
		OpCost:    c.OpCost,
	}
}

// shardPools scans the key id space upward until every shard holds
// KeysPerShard ids, returning the per-shard pools plus the union in
// scan order. Key ids are what load.Execute hashes through KeyBytes,
// so pool membership is exact.
func (c MigrationConfig) shardPools() (pools [][]uint64, all []uint64) {
	c = c.WithDefaults()
	appCfg := c.AppConfig()
	pools = make([][]uint64, c.Shards)
	need := c.Shards * c.KeysPerShard
	for k := uint64(0); len(all) < need; k++ {
		s := appCfg.ShardOf(load.KeyBytes(k))
		if len(pools[s]) >= c.KeysPerShard {
			continue
		}
		pools[s] = append(pools[s], k)
		all = append(all, k)
	}
	return pools, all
}

// affinityHome maps shard -> hot site for one phase. rot == 0 matches
// the rendezvous placement (demand lands where the library already
// is); rot >= 1 rotates every shard's hot site away from its library,
// the mismatch migration exists to fix.
func (c MigrationConfig) affinityHome(shard, rot int) int {
	c = c.WithDefaults()
	return (c.AppConfig().LibraryFor(shard) + rot) % c.Sites
}

// MigrationPoint is one scenario×placement cell of the sweep.
type MigrationPoint struct {
	// Scenario is "skewed" (static mismatch) or "shifting" (affinity
	// rotates at half-time).
	Scenario string `json:"scenario"`
	// Placement reports whether voluntary migration was enabled.
	Placement bool `json:"placement"`
	// Rung is the scored service run.
	Rung load.Rung `json:"rung"`
	// Migrations and Refused sum the cluster's voluntary-migration
	// counters; StaleEpoch counts fenced stragglers.
	Migrations int `json:"migrations"`
	Refused    int `json:"refused"`
	StaleEpoch int `json:"stale_epoch"`
}

// MigrationSweepResult is the whole E21 run.
type MigrationSweepResult struct {
	Config MigrationConfig
	// Points holds skewed{off,on} then shifting{off,on}.
	Points []MigrationPoint
	// TraceJSONL is the shifting+placement run's full trace; its
	// EvMigrate commits are the handoffs the checker must accept.
	TraceJSONL []byte
	// TraceMigrations counts EvMigrate events in that trace.
	TraceMigrations int
	// ReplayMatches reports the determinism check: the skewed+placement
	// point run twice scored identically.
	ReplayMatches bool
}

// spawnMigrationLoad wires the affinity workload onto the cluster. Per
// site: a creator proc formatting the shards rendezvous places there,
// and Workers lanes whose ops are re-keyed into the pools of the
// shards hot at this site for the current phase. shift rotates the
// affinity at Duration/2.
func spawnMigrationLoad(c *ipc.Cluster, cfg MigrationConfig, shift bool, rep *load.Report, stats *app.Stats, o *obs.Obs) {
	cfg = cfg.WithDefaults()
	spec := cfg.Spec()
	appCfg := cfg.AppConfig()
	pools, all := cfg.shardPools()
	half := cfg.Duration / 2
	// Per-phase, per-site affine pools. The skewed scenario mis-homes
	// every shard from the start and never changes; shifting starts
	// matched and rotates at half-time.
	firstRot, secondRot := 1, 1
	if shift {
		firstRot, secondRot = 0, 1
	}
	sitePool := func(site, rot int) []uint64 {
		var out []uint64
		for s := 0; s < cfg.Shards; s++ {
			if cfg.affinityHome(s, rot) == site {
				out = append(out, pools[s]...)
			}
		}
		if len(out) == 0 {
			return all
		}
		return out
	}
	crossMod := uint64(100)
	crossCut := uint64(float64(crossMod) * cfg.CrossFrac)
	hold := cfg.Duration + serviceSlack
	for s := 0; s < cfg.Sites; s++ {
		s := s
		first, second := sitePool(s, firstRot), sitePool(s, secondRot)
		c.Site(s).Spawn("creator", 0, func(p *ipc.Proc) {
			for shard := 0; shard < appCfg.Shards; shard++ {
				if appCfg.LibraryFor(shard) != s {
					continue
				}
				id, err := p.Shmget(serviceKey+mem.Key(shard), appCfg.ShardBytes(), mem.Create, rwMode)
				if err != nil {
					return
				}
				h, err := p.Shmat(id, false)
				if err != nil {
					return
				}
				if err := app.Format(h, appCfg, shard); err != nil {
					return
				}
			}
			p.Sleep(hold)
		})
		for w := 0; w < cfg.Workers; w++ {
			lane := s*cfg.Workers + w
			c.Site(s).Spawn("lane", 0, func(p *ipc.Proc) {
				st := openServiceStore(p, appCfg, s, stats, o)
				if st == nil {
					return
				}
				g := load.NewGen(spec, lane)
				rekey := func(op load.Op) load.Op {
					// A CrossFrac slice of the stream roams the whole
					// keyspace; the rest stays on this site's affine
					// shards for the phase in force at arrival time.
					mix := op.Key * 2654435761 % crossMod
					pool := first
					if shift && op.T >= half {
						pool = second
					}
					if mix < crossCut {
						op.Key = all[op.Key%uint64(len(all))]
					} else {
						op.Key = pool[op.Key%uint64(len(pool))]
					}
					return op
				}
				var backlog []load.Op
				next, more := g.Next()
				for {
					if len(backlog) == 0 {
						if !more {
							return
						}
						if d := next.T - p.Now(); d > 0 {
							p.Sleep(d)
						}
						backlog = append(backlog, rekey(next))
						rep.Admit()
						next, more = g.Next()
					}
					for more && next.T <= p.Now() {
						if len(backlog) >= spec.QueueCap {
							rep.Shed()
						} else {
							backlog = append(backlog, rekey(next))
							rep.Admit()
						}
						next, more = g.Next()
					}
					rep.ObserveQueue(len(backlog))
					op := backlog[0]
					backlog = backlog[1:]
					if spec.OpCost > 0 {
						p.Compute(spec.OpCost)
					}
					hit, err := load.Execute(st, spec, op)
					rep.Done(p.Now()-op.T, hit, err)
				}
			})
		}
	}
}

// RunAffinity drives the E21 affinity workload on a caller-built
// cluster and scores it: every site's lanes favor shards whose
// libraries rendezvous-placed one site over (the mismatch voluntary
// migration exists to fix), with shift rotating the affinity at
// Duration/2. miragesim's affinity workload is this entry point; the
// caller decides whether the cluster's engines run a placement policy.
func RunAffinity(c *ipc.Cluster, cfg MigrationConfig, shift bool, stats *app.Stats, o *obs.Obs) load.Rung {
	cfg = cfg.WithDefaults()
	rep := load.NewReport()
	spawnMigrationLoad(c, cfg, shift, rep, stats, o)
	c.RunFor(cfg.Duration + serviceSlack)
	return rep.Rung(cfg.Spec())
}

// runMigrationPoint runs one scenario×placement cell on a private
// deterministic cluster. The returned events are nil unless o was
// wanted (traced cells attach a fresh obs).
func runMigrationPoint(cfg MigrationConfig, shift, placement, traced bool) (MigrationPoint, []obs.Event) {
	cfg = cfg.WithDefaults()
	var o *obs.Obs
	if traced {
		o = obs.New()
	}
	eng := core.Options{
		Reliability: failoverRel(),
		Failover:    &core.Failover{},
		Obs:         o,
	}
	if placement {
		eng.Placement = cfg.Policy()
	}
	c := ipc.NewCluster(cfg.Sites, ipc.Config{Engine: eng})
	pt := MigrationPoint{Placement: placement, Rung: RunAffinity(c, cfg, shift, app.NewStats(cfg.Shards), o)}
	pt.Scenario = "skewed"
	if shift {
		pt.Scenario = "shifting"
	}
	for i := 0; i < cfg.Sites; i++ {
		st := c.Site(i).Eng.Stats()
		pt.Migrations += st.Migrations
		pt.Refused += st.MigrationsRefused
		pt.StaleEpoch += st.StaleEpoch
	}
	if o != nil {
		return pt, o.Buffer().Events()
	}
	return pt, nil
}

// MigrationSweep runs the four-cell E21 grid plus a determinism
// double-run; every cell is an independent deterministic cluster, so
// the set fans out across the worker pool.
func MigrationSweep(cfg MigrationConfig) MigrationSweepResult {
	cfg = cfg.WithDefaults()
	r := MigrationSweepResult{Config: cfg}
	r.Points = make([]MigrationPoint, 4)
	var traceEvents []obs.Event
	replay := make([]MigrationPoint, 2)
	sweepTasks(6, func(i int) {
		switch i {
		case 0:
			r.Points[0], _ = runMigrationPoint(cfg, false, false, false)
		case 1:
			r.Points[1], _ = runMigrationPoint(cfg, false, true, false)
		case 2:
			r.Points[2], _ = runMigrationPoint(cfg, true, false, false)
		case 3:
			r.Points[3], traceEvents = runMigrationPoint(cfg, true, true, true)
		default:
			replay[i-4], _ = runMigrationPoint(cfg, false, true, false)
		}
	})
	for _, ev := range traceEvents {
		if ev.Type == obs.EvMigrate {
			r.TraceMigrations++
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, obs.NewHeader(obs.ClockVirtual, cfg.Sites), traceEvents); err == nil {
		r.TraceJSONL = buf.Bytes()
	}
	r.ReplayMatches = replay[0] == replay[1]
	return r
}

// Cell returns the point for a scenario×placement cell.
func (r MigrationSweepResult) Cell(scenario string, placement bool) *MigrationPoint {
	for i := range r.Points {
		if r.Points[i].Scenario == scenario && r.Points[i].Placement == placement {
			return &r.Points[i]
		}
	}
	return nil
}

// WriteFindings renders the FINDINGS-style verdict: per scenario, the
// off/on comparison on p99 and goodput, migration counts, and the
// determinism check.
func (r MigrationSweepResult) WriteFindings(w io.Writer) {
	cfg := r.Config.WithDefaults()
	fmt.Fprintf(w, "E21 — voluntary library migration (seed %d, %d sites, %d shards, %.0f req/s, %s)\n",
		cfg.Seed, cfg.Sites, cfg.Shards, cfg.Rate, cfg.Duration)
	fmt.Fprintf(w, "Hypothesis: when request affinity and library placement disagree, enabling\n")
	fmt.Fprintf(w, "Options.Placement rehomes the hot shards' libraries to their dominant\n")
	fmt.Fprintf(w, "requesters and improves p99 latency or goodput; with affinity matched it\n")
	fmt.Fprintf(w, "stays quiet until the hotspot moves.\n")
	for _, scenario := range []string{"skewed", "shifting"} {
		off, on := r.Cell(scenario, false), r.Cell(scenario, true)
		if off == nil || on == nil {
			continue
		}
		fmt.Fprintf(w, "[%s]\n", scenario)
		fmt.Fprintf(w, "  off: p99 %v, goodput %.1f req/s, %d shed\n",
			time.Duration(off.Rung.Latency.P99), off.Rung.Goodput, off.Rung.Shed)
		fmt.Fprintf(w, "  on:  p99 %v, goodput %.1f req/s, %d shed; %d migrations (%d refused), %d stragglers fenced\n",
			time.Duration(on.Rung.Latency.P99), on.Rung.Goodput, on.Rung.Shed,
			on.Migrations, on.Refused, on.StaleEpoch)
		better := on.Rung.Latency.P99 < off.Rung.Latency.P99 || on.Rung.Goodput > off.Rung.Goodput
		fmt.Fprintf(w, "  migration wins on p99 or goodput: %s\n", verdict(better))
		fmt.Fprintf(w, "  migrated at least once: %s\n", verdict(on.Migrations > 0))
	}
	fmt.Fprintf(w, "traced handoffs in shifting+on run: %d\n", r.TraceMigrations)
	fmt.Fprintf(w, "replay determinism: %v\n", verdict(r.ReplayMatches))
}
