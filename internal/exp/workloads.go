// Package exp implements the paper's evaluation: the workload programs
// of §7–§8 and one function per table/figure that regenerates its
// numbers on the calibrated simulator. cmd/miragebench and the
// top-level benchmarks are thin wrappers over this package.
package exp

import (
	"time"

	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/vaxmodel"
)

const segKey mem.Key = 0x4D49 // "MI"

const rwMode = mem.OwnerRead | mem.OwnerWrite | mem.OtherRead | mem.OtherWrite

// attachShared attaches the experiment segment, creating it when this
// process is the designated creator, otherwise polling until the
// creator has made it.
func attachShared(p *ipc.Proc, create bool, size int) *ipc.Shm {
	if create {
		id, err := p.Shmget(segKey, size, mem.Create, rwMode)
		if err != nil {
			panic(err)
		}
		h, err := p.Shmat(id, false)
		if err != nil {
			panic(err)
		}
		return h
	}
	for {
		id, err := p.Shmget(segKey, size, 0, 0)
		if err == nil {
			h, err2 := p.Shmat(id, false)
			if err2 == nil {
				return h
			}
		}
		p.Sleep(time.Millisecond)
	}
}

// PingPongConfig parameterizes the worst-case application (Figure 4).
type PingPongConfig struct {
	UseYield  bool
	SpinBatch int // busy-wait polls bundled per shared read (model granularity)
}

// pingPongStats is written by the workload processes.
type pingPongStats struct {
	cycles int
}

// spinWait polls until read() reports done. With yield() the process
// relinquishes the CPU between polls (§7.2's fix); without it the
// process busy-waits, burning its scheduling quantum.
func spinWait(p *ipc.Proc, cfg PingPongConfig, read func() bool) {
	batch := cfg.SpinBatch
	if batch <= 0 {
		batch = 32
	}
	for {
		if read() {
			return
		}
		if cfg.UseYield {
			p.Yield()
		} else {
			p.Compute(time.Duration(batch) * vaxmodel.SpinCheck)
		}
	}
}

// pingPongSlots maps trial i to the byte offsets of its adjacent pair
// of memory locations; pairs walk through the page(s) and wrap
// (Figure 4's pint++ walking the segment).
func pingPongSlots(i, segSize int) (off1, off2 int) {
	pairs := segSize / 8
	k := i % pairs
	return k * 8, k*8 + 4
}

// Values are unique per trial so wrapped slots never alias earlier
// trials.
func checkVal(i int) uint32 { return uint32(1_000_000 + i) }
func replyVal(i int) uint32 { return uint32(2_000_000 + i) }

// runPingPong spawns the two worst-case processes: proc 1 at siteA
// writes CHECKVAL into the first location of each pair and waits for
// proc 2 at siteB to write CHECKVAL+1 into the second (Figure 4). Both
// run until the virtual deadline; the returned counter is read after
// the cluster drains.
func runPingPong(c *ipc.Cluster, siteA, siteB int, cfg PingPongConfig, segSize int, deadline time.Duration) *pingPongStats {
	st := &pingPongStats{}
	c.Site(siteA).Spawn("pp1", 0, func(p *ipc.Proc) {
		h := attachShared(p, true, segSize)
		for i := 0; ; i++ {
			if p.Now() >= deadline {
				return
			}
			o1, o2 := pingPongSlots(i, segSize)
			traceEv(p, "p1 write o1 begin")
			if err := h.SetUint32(o1, checkVal(i)); err != nil {
				return
			}
			traceEv(p, "p1 write o1 done; spin o2")
			spinWait(p, cfg, func() bool {
				if p.Now() >= deadline {
					return true
				}
				v, err := h.Uint32(o2)
				return err != nil || v == replyVal(i)
			})
			if p.Now() >= deadline {
				return
			}
			traceEv(p, "p1 saw reply: cycle done")
			st.cycles++
		}
	})
	c.Site(siteB).Spawn("pp2", 0, func(p *ipc.Proc) {
		p.Sleep(time.Millisecond) // let the creator win segment creation
		h := attachShared(p, false, segSize)
		for i := 0; ; i++ {
			if p.Now() >= deadline {
				return
			}
			o1, o2 := pingPongSlots(i, segSize)
			traceEv(p, "p2 spin o1")
			spinWait(p, cfg, func() bool {
				if p.Now() >= deadline {
					return true
				}
				v, err := h.Uint32(o1)
				return err != nil || v == checkVal(i)
			})
			if p.Now() >= deadline {
				return
			}
			traceEv(p, "p2 saw check; write o2")
			if err := h.SetUint32(o2, replyVal(i)); err != nil {
				return
			}
			traceEv(p, "p2 wrote o2")
		}
	})
	return st
}

// CountersConfig parameterizes the representative application (§8.0):
// two processes on different sites run for-loops that decrement
// separate values living on the same page, testing the termination
// condition each iteration (one shared read plus one shared write per
// iteration; the VAX decrement is a read-modify-write, so the faulting
// access is a write fault). A process counts its value down from
// IterPerRound — about 600 ms of loop work at the default, the
// processor-locality interval behind Figure 8's Δ=600 ms knee — then
// spends LocalWork of purely local computation before starting the
// next countdown. The run lasts Duration (the paper's 10 s).
type CountersConfig struct {
	IterPerRound int           // decrements per countdown (default ≈600 ms of work)
	LocalWork    time.Duration // off-page computation between countdowns
	Duration     time.Duration // measurement window
	Chunk        int           // iterations bundled per model step
}

// DefaultIterPerRound makes one countdown ≈600 ms of pure loop work:
// the locality knee the paper's Figure 8 exhibits at Δ=600 ms.
func DefaultIterPerRound() int {
	iterCost := 2 * vaxmodel.SharedMemInstruction
	return int((600 * time.Millisecond) / iterCost)
}

type countersStats struct {
	iters [2]int // committed loop iterations per process
}

// runCounters spawns the two conflicting read-writers. Offsets 0 and 4
// of the shared page hold the two counters.
func runCounters(c *ipc.Cluster, siteA, siteB int, cfg CountersConfig) *countersStats {
	st := &countersStats{}
	iterCost := 2 * vaxmodel.SharedMemInstruction
	if cfg.IterPerRound == 0 {
		cfg.IterPerRound = DefaultIterPerRound()
	}
	if cfg.LocalWork == 0 {
		cfg.LocalWork = 200 * time.Millisecond
	}
	chunk := cfg.Chunk
	if chunk <= 0 {
		chunk = 96
	}
	worker := func(idx int, create bool) func(p *ipc.Proc) {
		myOff := idx * 4
		return func(p *ipc.Proc) {
			if !create {
				p.Sleep(time.Millisecond)
			}
			h := attachShared(p, create, 512)
			deadline := cfg.Duration
			for {
				if p.Now() >= deadline {
					return
				}
				// Reset this process's value: a write (fault) that
				// starts the countdown burst.
				if h.SetUint32(myOff, uint32(cfg.IterPerRound)) != nil {
					return
				}
				remaining := cfg.IterPerRound
				for remaining > 0 {
					if p.Now() >= deadline {
						return
					}
					n := chunk
					if n > remaining {
						n = remaining
					}
					// The chunk models n decrement-and-test iterations:
					// CPU burn followed by the committed store. The
					// store write-faults if the page moved away
					// mid-chunk, re-acquiring it before the commit.
					p.Compute(time.Duration(n) * iterCost)
					if h.AddUint32(myOff, -uint32(n)) != nil {
						return
					}
					remaining -= n
					st.iters[idx] += n
				}
				// Local phase: work that does not touch the page. The
				// page stays here, idle, until the partner's request
				// and this page's window pry it loose — the
				// "retention" behaviour of §8.0.
				p.Compute(cfg.LocalWork)
			}
		}
	}
	c.Site(siteA).Spawn("dec0", 0, worker(0, true))
	c.Site(siteB).Spawn("dec1", 0, worker(1, false))
	return st
}

// RunPingPongForDebug exposes the worst-case run for calibration
// tooling; it returns completed cycles after the cluster drains.
func RunPingPongForDebug(c *ipc.Cluster, a, b int, yield bool, dur time.Duration) int {
	st := runPingPong(c, a, b, PingPongConfig{UseYield: yield}, 512, dur)
	c.Run()
	return st.cycles
}

// RunCountersForDebug exposes the representative run for calibration
// tooling; it returns read-write instructions per second.
func RunCountersForDebug(c *ipc.Cluster, dur time.Duration) float64 {
	st := runCounters(c, 0, 1, CountersConfig{Duration: dur})
	c.Run()
	return 2 * float64(st.iters[0]+st.iters[1]) / dur.Seconds()
}

// TraceHook, when set, receives workload-level events for calibration
// debugging.
var TraceHook func(site int, ev string)

func traceEv(p *ipc.Proc, ev string) {
	if TraceHook != nil {
		TraceHook(p.Site(), ev)
	}
}

// RunCountersChunk is a calibration helper with explicit chunking.
func RunCountersChunk(c *ipc.Cluster, dur time.Duration, chunk int) float64 {
	st := runCounters(c, 0, 1, CountersConfig{Duration: dur, Chunk: chunk})
	c.Run()
	return 2 * float64(st.iters[0]+st.iters[1]) / dur.Seconds()
}

// SpawnSharedWriter starts a process at the site that periodically
// writes a counter into the shared page until the deadline; *writes
// counts completed stores (read after the cluster drains).
func SpawnSharedWriter(c *ipc.Cluster, site int, dur time.Duration, writes *int) {
	c.Site(site).Spawn("writer", 0, func(p *ipc.Proc) {
		h := attachShared(p, true, 512)
		for i := uint32(1); p.Now() < dur; i++ {
			if h.SetUint32(0, i) != nil {
				return
			}
			*writes++
			p.Compute(2 * vaxmodel.SharedMemInstruction)
			p.Sleep(10 * time.Millisecond)
		}
	})
}

// SpawnSharedReader starts a polling reader at the site; *reads counts
// completed loads.
func SpawnSharedReader(c *ipc.Cluster, site int, dur time.Duration, reads *int) {
	c.Site(site).Spawn("reader", 0, func(p *ipc.Proc) {
		p.Sleep(time.Millisecond)
		h := attachShared(p, false, 512)
		for p.Now() < dur {
			if _, err := h.Uint32(0); err != nil {
				return
			}
			*reads++
			p.Compute(vaxmodel.SharedMemInstruction)
			p.Yield()
		}
	})
}
