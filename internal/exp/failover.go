package exp

import (
	"bytes"
	"errors"
	"time"

	"mirage/internal/chaos"
	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/obs"
)

// ---------------------------------------------------------------------------
// E18 — beyond the paper: library-site failover. The paper's prototype
// ties every segment to its immortal library site ("the current
// implementation does not tolerate site failures", §10.0). This sweep
// fail-stops the library — then its successor — mid-workload and
// measures what the takeover protocol costs: per-takeover recovery
// latency (trigger to records rebuilt) and end-to-end throughput as the
// crash count rises.

// FailoverPoint is one crash-count measurement of the contended-counter
// workload. The two incrementing sites are never crashed; the library
// chain (creator, then each successor) is.
type FailoverPoint struct {
	Crashes    int           // library-site crashes injected
	Completed  bool          // workload finished with the exact expected total
	Final      uint32        // final counter value observed
	Want       uint32        // incrementers × increments
	Elapsed    time.Duration // virtual time to completion
	Throughput float64       // increments per virtual second
	Failovers  int           // takeover triggers across all sites
	Recoveries int           // completed takeovers
	StaleEpoch int           // messages fenced for carrying a dead epoch
	Degraded   int           // accessor-visible degraded grants
	MaxEpoch   uint32        // highest library epoch seen in the trace
	// RecoverLatency is, per takeover, the virtual time from the first
	// failover trigger to the successor committing the rebuilt records
	// (both taken from the trace).
	RecoverLatency []time.Duration
	// TraceJSONL is the run's full schema-v1 trace, replayable through
	// miragetrace (timeline/check).
	TraceJSONL []byte
}

// FailoverSweepResult is the whole E18 run.
type FailoverSweepResult struct {
	Points []FailoverPoint
	// ReplayMatches reports the determinism check: the deepest point run
	// twice produced identical end times and fault schedules.
	ReplayMatches bool
}

// failoverRel keeps give-up horizons short so takeover latency, not
// retransmission backoff, dominates the measurement.
func failoverRel() *core.Reliability {
	return &core.Reliability{
		AckTimeout:     20 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		MaxAttempts:    5,
		RequestTimeout: 10 * time.Second,
	}
}

// runFailoverWorkload drives the counter workload with the first
// `crashes` sites of the library chain fail-stopped mid-run.
func runFailoverWorkload(crashes, perSite int) (FailoverPoint, *ipc.Cluster) {
	const sites = 4
	plan := &chaos.Plan{Seed: 42}
	for i := 0; i < crashes; i++ {
		// The creator dies first; each successor (the next site by
		// number) follows 600 ms later, inside the workload span.
		plan.Crashes = append(plan.Crashes, chaos.Crash{
			Site: i, From: 400*time.Millisecond + time.Duration(i)*600*time.Millisecond,
		})
	}
	o := obs.New()
	c := ipc.NewCluster(sites, ipc.Config{
		Chaos: plan,
		Engine: core.Options{
			Reliability: failoverRel(),
			Failover:    &core.Failover{},
			Obs:         o,
		},
	})
	var pt FailoverPoint
	pt.Crashes = crashes
	pt.Want = uint32(2 * perSite)
	var doneAt time.Duration
	// Site 0 creates the segment (and so is the initial library), writes
	// the seed value, and idles into its crash window.
	c.Site(0).Spawn("lib", 0, func(p *ipc.Proc) {
		id, err := p.Shmget(0x4518, 512, mem.Create, rwMode)
		if err != nil {
			return
		}
		h, err := p.Shmat(id, false)
		if err != nil {
			return
		}
		h.SetUint32(0, 0)
		p.Sleep(10 * time.Minute) // hold the attach; dead from 500ms on
	})
	// Site 1 attaches without accessing: a silent member that is
	// eligible (and first in line) for takeover. Holding every attach
	// past the measured window keeps release traffic out of the trace.
	c.Site(1).Spawn("standby", 0, func(p *ipc.Proc) {
		var id mem.SegID
		for {
			var err error
			id, err = p.Shmget(0x4518, 512, 0, 0)
			if err == nil {
				break
			}
			p.Sleep(time.Millisecond)
		}
		if _, err := p.Shmat(id, false); err != nil {
			return
		}
		p.Sleep(10 * time.Minute)
	})
	// Sites 2 and 3 — never crashed in any point — do the increments,
	// paced so the workload straddles every crash window.
	for i := 2; i < sites; i++ {
		site := c.Site(i)
		last := i == sites-1
		marker := 4 * (i - 1) // per-site done-marker word
		site.Spawn("inc", 0, func(p *ipc.Proc) {
			var id mem.SegID
			for {
				var err error
				id, err = p.Shmget(0x4518, 512, 0, 0)
				if err == nil {
					break
				}
				p.Sleep(time.Millisecond)
			}
			h, err := p.Shmat(id, false)
			if err != nil {
				return
			}
			add := func(off int) {
				for {
					if err := h.AddUint32(off, 1); err == nil {
						return
					} else if !errors.Is(err, core.ErrUnreachable) {
						return
					}
					p.Sleep(50 * time.Millisecond)
				}
			}
			for k := 0; k < perSite; k++ {
				add(0)
				p.Sleep(100 * time.Millisecond)
			}
			add(marker)
			if last {
				for {
					a, erra := h.Uint32(4)
					b, errb := h.Uint32(8)
					if erra == nil && errb == nil && a == 1 && b == 1 {
						break
					}
					p.Sleep(20 * time.Millisecond)
				}
				v, _ := h.Uint32(0)
				pt.Final = v
				doneAt = p.Now()
			}
			p.Sleep(10 * time.Minute) // hold the attach past the run
		})
	}
	c.RunFor(5 * time.Minute)
	pt.Completed = pt.Final == pt.Want
	pt.Elapsed = doneAt
	if doneAt > 0 {
		pt.Throughput = float64(pt.Want) / doneAt.Seconds()
	}
	for i := 0; i < sites; i++ {
		st := c.Site(i).Eng.Stats()
		pt.Failovers += st.Failovers
		pt.Recoveries += st.Recoveries
		pt.StaleEpoch += st.StaleEpoch
		pt.Degraded += st.Degraded
	}
	events := o.Buffer().Events()
	// Pair each takeover commit with the first trigger since the last
	// commit: that span is the accessor-visible recovery outage.
	trigger := time.Duration(-1)
	for _, ev := range events {
		if ev.Epoch > pt.MaxEpoch {
			pt.MaxEpoch = ev.Epoch
		}
		switch ev.Type {
		case obs.EvFailover:
			if trigger < 0 {
				trigger = ev.T
			}
		case obs.EvRecover:
			if trigger >= 0 {
				pt.RecoverLatency = append(pt.RecoverLatency, ev.T-trigger)
				trigger = -1
			}
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, obs.NewHeader(obs.ClockVirtual, c.Sites()), events); err == nil {
		pt.TraceJSONL = buf.Bytes()
	}
	return pt, c
}

// FailoverSweep runs the crash-count sweep plus a determinism
// double-run of the deepest point. Every scenario is an independent
// deterministic cluster, so the set fans out across the worker pool.
func FailoverSweep(perSite int, crashCounts []int) FailoverSweepResult {
	var r FailoverSweepResult
	r.Points = make([]FailoverPoint, len(crashCounts))
	n := len(crashCounts)
	deepest := 0
	for _, k := range crashCounts {
		if k > deepest {
			deepest = k
		}
	}
	replay := make([]FailoverPoint, 2)
	replayStats := make([]string, 2)
	sweepTasks(n+2, func(i int) {
		if i < n {
			r.Points[i], _ = runFailoverWorkload(crashCounts[i], perSite)
			return
		}
		pt, c := runFailoverWorkload(deepest, perSite)
		replay[i-n] = pt
		replayStats[i-n] = c.Chaos.Stats().String()
	})
	r.ReplayMatches = replay[0].Elapsed == replay[1].Elapsed &&
		replay[0].Recoveries == replay[1].Recoveries &&
		replayStats[0] == replayStats[1]
	return r
}
