package exp

import (
	"errors"
	"fmt"
	"time"

	"mirage/internal/chaos"
	"mirage/internal/check"
	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/obs"
	"mirage/internal/vaxmodel"
)

// ---------------------------------------------------------------------------
// E20 — breaking the 64-site wall. The paper's prototype ran on a
// handful of VAXen and §8.0 only speculates about larger networks; the
// protocol itself invalidates readers one unicast order at a time, so
// the clock site's NIC serializes O(N) sends per write fault. This
// study sweeps cluster size to N=1000 on the calibrated simulator and
// compares that flat unicast against the k-ary fan-out tree
// (Options.InvalFanout, DESIGN.md §13), where the clock sends O(k)
// orders carrying subtree copysets and interior holder sites relay.
//
// The workload is the worst case for invalidation: every site reads
// one page, then a single writer (colocated with the library and clock
// at site 0) writes it, invalidating all N-1 readers at once. A
// Go-side barrier — invisible to the simulated network — separates the
// read phase from the write, so the measured write fault carries
// exactly the invalidation cycle and nothing else.

// ScalePoint is one cell of the E20 grid: a cluster size × fan-out
// arity, measured over several barriered write faults.
type ScalePoint struct {
	Sites  int // cluster size N
	Fanout int // tree arity k; 0 = the paper's flat unicast
	Rounds int // write faults measured (each invalidates N-1 readers)

	LibSends   float64 // site-0 protocol sends per write fault
	InvalLatMs float64 // mean write-fault completion latency, ms
	KBFault    float64 // wire kilobytes per write fault (all sites)
	LibCPU     float64 // site-0 CPU busy share over the whole run
	Relays     int64   // relay forwards observed across the run
}

// ScaleSizes is the E20 cluster-size axis.
var ScaleSizes = []int{10, 50, 100, 250, 500, 1000}

// ScaleFanouts is the E20 arity axis (0 = flat unicast baseline).
var ScaleFanouts = []int{0, 4, 8, 16}

// quickScaleSizes and quickScaleFanouts are the CI smoke grid.
var (
	quickScaleSizes   = []int{10, 100, 250}
	quickScaleFanouts = []int{0, 8}
)

// ScaleSweep runs the E20 grid. quick shrinks it to the CI smoke
// subset (N ≤ 250, k ∈ {0, 8}). Points run in parallel (each on a
// private virtual-time cluster) and results are deterministic.
func ScaleSweep(quick bool) []ScalePoint {
	sizes, fanouts := ScaleSizes, ScaleFanouts
	if quick {
		sizes, fanouts = quickScaleSizes, quickScaleFanouts
	}
	type pt struct{ n, k int }
	var grid []pt
	for _, n := range sizes {
		for _, k := range fanouts {
			grid = append(grid, pt{n, k})
		}
	}
	return sweep(grid, func(p pt) ScalePoint {
		r, _ := runScalePoint(p.n, p.k, 3, nil, "", nil)
		return r
	})
}

// scaleRounds etc. pace the barriered workload. The poll interval
// trades simulator event count against barrier slack; the settle sleep
// lets the last read grant's Δ window expire so the measured write
// never hits a retry.
const (
	scalePoll     = 25 * time.Millisecond
	scaleSettle   = 50 * time.Millisecond
	scaleDelta    = 2 * time.Millisecond
	scaleDeadline = 5 * time.Minute // virtual-time bail-out for every loop
)

// runScalePoint builds an n-site cluster with fan-out k and runs
// rounds barriered read-all-then-write cycles, measuring the write
// faults. o, when non-nil, supplies the observability sink (a caller
// wanting the trace passes obs.New()); otherwise a metrics-only sink
// is used. chaosSpec, when non-empty, is a chaos plan injected with
// the reliability layer enabled; rel overrides the auto-scaled ARQ
// profile for such runs (nil takes scaleReliability). The returned
// error reports a workload that failed to complete every round
// (deadline hit or access error).
func runScalePoint(n, k, rounds int, o *obs.Obs, chaosSpec string, rel *core.Reliability) (ScalePoint, error) {
	if o == nil {
		o = &obs.Obs{Metrics: obs.NewRegistry()}
	}
	cfg := ipc.Config{
		Delta:  scaleDelta,
		Engine: core.Options{InvalFanout: k, Obs: o},
	}
	if chaosSpec != "" {
		plan, err := chaos.Parse(chaosSpec)
		if err != nil {
			return ScalePoint{}, fmt.Errorf("chaos plan: %w", err)
		}
		cfg.Chaos = plan
		if rel == nil {
			rel = scaleReliability(n)
		}
		cfg.Engine.Reliability = rel
	}
	c := ipc.NewCluster(n, cfg)
	res := ScalePoint{Sites: n, Fanout: k, Rounds: rounds}

	// Go-side barrier state: the simulator is single-threaded, so
	// plain variables shared by the processes are race-free and cost
	// the simulated network nothing.
	round := 0    // writer bumps; readers follow
	done := 0     // readers increment after each round's read
	quit := false // writer sets after its last measurement; readers then exit
	// A reader's proc exit auto-detaches, which ships a release home;
	// without the quit barrier the early finishers' release flood
	// lands in the library queue ahead of the final write-req and the
	// measured window counts hundreds of release-dones as "write
	// fault" traffic.
	var (
		totalLat   time.Duration
		totalSends int64
		totalBytes int64
		workErr    error
	)
	fail := func(err error) {
		if workErr == nil {
			workErr = err
		}
	}

	const segBytes = vaxmodel.PageSize
	c.Site(0).Spawn("writer", 0, func(p *ipc.Proc) {
		defer func() { quit = true }() // release the readers on any exit
		id, err := p.Shmget(segKey, segBytes, mem.Create, rwMode)
		if err != nil {
			fail(err)
			return
		}
		h, err := p.Shmat(id, false)
		if err != nil {
			fail(err)
			return
		}
		for r := 1; r <= rounds; r++ {
			round = r
			for done < (n-1)*r && p.Now() < scaleDeadline {
				p.Sleep(scalePoll)
			}
			if done < (n-1)*r {
				fail(fmt.Errorf("round %d: %d/%d readers ready at deadline", r, done-(n-1)*(r-1), n-1))
				return
			}
			// Let the read cycle commit before faulting the write: the
			// library drains N-1 serialized KInstalled acks (~3.2 ms
			// each) after the last reader's install, and the Δ window
			// of the last grant must expire. Without this the write-req
			// queues behind the commit and the window measures drain,
			// not invalidation.
			p.Sleep(scaleSettle + time.Duration(n)*4*time.Millisecond)
			sent0 := o.Metrics.Get(0, obs.CMsgSent)
			bytes0 := o.Metrics.Total(obs.CWireByte)
			start := p.Now()
			for {
				err := h.SetUint32(0, uint32(r))
				if err == nil {
					break
				}
				if !errors.Is(err, core.ErrUnreachable) {
					fail(err)
					return
				}
				p.Sleep(100 * time.Millisecond) // crashed peer; retry after heal
				if p.Now() >= scaleDeadline {
					fail(fmt.Errorf("round %d: write unreachable at deadline", r))
					return
				}
			}
			totalLat += p.Now() - start
			totalSends += o.Metrics.Get(0, obs.CMsgSent) - sent0
			totalBytes += o.Metrics.Total(obs.CWireByte) - bytes0
		}
	})
	for i := 1; i < n; i++ {
		c.Site(i).Spawn("reader", 0, func(p *ipc.Proc) {
			var h *ipc.Shm
			for {
				id, err := p.Shmget(segKey, segBytes, 0, 0)
				if err == nil {
					h, err = p.Shmat(id, false)
					if err != nil {
						return
					}
					break
				}
				p.Sleep(scalePoll)
				if p.Now() >= scaleDeadline {
					return
				}
			}
			for r := 1; r <= rounds; r++ {
				for round < r && p.Now() < scaleDeadline {
					p.Sleep(scalePoll)
				}
				for {
					_, err := h.Uint32(0)
					if err == nil {
						break
					}
					if !errors.Is(err, core.ErrUnreachable) {
						return
					}
					p.Sleep(100 * time.Millisecond)
					if p.Now() >= scaleDeadline {
						return
					}
				}
				done++
			}
			for !quit && p.Now() < scaleDeadline {
				p.Sleep(scalePoll)
			}
		})
	}
	c.Run()

	if workErr != nil {
		return res, workErr
	}
	res.LibSends = float64(totalSends) / float64(rounds)
	res.InvalLatMs = float64(totalLat.Microseconds()) / 1e3 / float64(rounds)
	res.KBFault = float64(totalBytes) / 1024 / float64(rounds)
	cpu := c.Site(0).CPU.Stats()
	if now := c.K.Now().Duration(); now > 0 {
		res.LibCPU = float64(cpu.UserBusy+cpu.KernelBusy+cpu.SwitchBusy) / float64(now)
	}
	res.Relays = o.Metrics.Total(obs.CRelay)
	return res, nil
}

// scaleReliability sizes the ARQ timers for an n-site cluster. The
// linear-in-N profile this experiment discovered (a fixed 30 ms
// AckTimeout retransmits into the library's own install backlog at
// scale and congestion-collapses the cluster) is now the engine's
// documented auto-scale: an unset AckTimeout with Sites ≥ 16 takes
// Sites×8ms and the matching backoff/attempt/deadline profile. See
// core.Reliability.Sites.
func scaleReliability(n int) *core.Reliability {
	return &core.Reliability{Sites: n}
}

// ScaleCheckResult reports one checked E20 run: the full protocol
// trace was captured and replayed through the coherence checker.
type ScaleCheckResult struct {
	Point      ScalePoint
	Chaos      string // chaos plan in force, "" for a clean run
	Events     int    // trace events verified
	Violations int    // invariant violations found (must be 0)
}

// ScaleChecked runs one E20 point with the tracer attached and
// verifies the trace against the coherence invariants. chaosSpec,
// when non-empty, injects the fault plan (with the reliability layer
// enabled) — pass a crash window over an interior relay site to
// exercise the tree's unicast fallback under verification.
func ScaleChecked(n, k int, chaosSpec string) (ScaleCheckResult, error) {
	o := obs.New()
	pt, err := runScalePoint(n, k, 2, o, chaosSpec, nil)
	if err != nil {
		return ScaleCheckResult{}, err
	}
	events := o.Buffer().Events()
	cfg := check.Config{Sites: n, Delta: scaleDelta, Reliable: chaosSpec != ""}
	viols := check.Verify(cfg, events)
	return ScaleCheckResult{
		Point:      pt,
		Chaos:      chaosSpec,
		Events:     len(events),
		Violations: len(viols),
	}, nil
}

// ScaleRelayRoots returns the interior relay sites a k-ary fan-out
// tree uses for a fresh N-site E20 copyset (readers 1..N-1): the first
// member of each top-level partition. Useful for aiming a chaos crash
// window at a relay (see ScaleChecked).
func ScaleRelayRoots(n, k int) []int {
	m := n - 1 // readers 1..n-1, sorted
	if k < 2 || m <= k {
		return nil
	}
	var roots []int
	for i := 0; i < k; i++ {
		lo, hi := i*m/k, (i+1)*m/k
		if hi-lo > 1 { // singleton partitions are sent direct, not relayed
			roots = append(roots, 1+lo)
		}
	}
	return roots
}
