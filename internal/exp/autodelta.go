package exp

import (
	"fmt"
	"io"
	"time"

	"mirage/internal/app"
	"mirage/internal/check"
	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/obs"
	"mirage/internal/vaxmodel"
)

// ---------------------------------------------------------------------------
// E23 — closing the Δ loop. E16 located the denial crossover offline by
// sweeping fixed Δs; Options.AutoDelta is the online answer, a per-page
// AIMD controller at the library (DESIGN.md §16). E23 asks the question
// that justifies shipping it: started from a deliberately wrong Δ, does
// the controller match the best hand-tuned fixed Δ — without being told
// which one that is? Three workloads, in rising realism: the E16
// ping-pong worst case (write-sharing; best fixed Δ is the floor), the
// E19 service rung (mixed sharing under open-loop load), and the E21
// skewed-affinity scenario with voluntary migration on, so tuned Δs
// ride migration records in the measured path. Each workload runs a
// fixed-Δ grid and one controller cell; the controller's traced runs
// feed the coherence checker with Delta = AutoDelta.Min, the sound
// lower bound on every clamped window.

// AutoDeltaConfig parameterizes the E23 sweep.
type AutoDeltaConfig struct {
	// Ticks is the fixed-Δ grid in scheduling clock ticks (default
	// {0, 1, 2, 6, 12} — the E16 shape: floor, sub-quantum, the quantum
	// crossover at 6, and past it).
	Ticks []int
	// SeedTicks is the segment Δ the controller cell starts from
	// (default 6 — one scheduling quantum, maximally wrong for the
	// write-sharing workloads whose best fixed Δ is 0).
	SeedTicks int
	// PingPongDur is the ping-pong measurement window (default 5s).
	PingPongDur time.Duration
	// Warmup runs the ping-pong workload unmeasured before the window,
	// so every cell is scored at steady state (default 2s — the
	// controller converges from the quantum seed in about one second;
	// fixed cells get the same protocol for fairness). The open-loop
	// service/affinity workloads need none: their goodput scores
	// integrate the whole offered window by construction.
	Warmup time.Duration
	// Rate is the service/affinity offered load in req/s (default 150,
	// below the E19 knee so latency reflects page movement).
	Rate float64
	// ServiceDur is the service rung's offered window (default 3s).
	ServiceDur time.Duration
	// AffinityDur is the affinity scenario's offered window (default
	// 10s; placement needs its demand windows and cooldown).
	AffinityDur time.Duration
	// Tolerance is the relative margin the controller must reach of the
	// best fixed cell's score (default 0.05).
	Tolerance float64
}

// WithDefaults returns the config with zero fields defaulted.
func (c AutoDeltaConfig) WithDefaults() AutoDeltaConfig {
	if len(c.Ticks) == 0 {
		c.Ticks = []int{0, 1, 2, 6, 12}
	}
	if c.SeedTicks == 0 {
		c.SeedTicks = 6
	}
	if c.PingPongDur == 0 {
		c.PingPongDur = 5 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Rate == 0 {
		c.Rate = 150
	}
	if c.ServiceDur == 0 {
		c.ServiceDur = 3 * time.Second
	}
	if c.AffinityDur == 0 {
		c.AffinityDur = 10 * time.Second
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.05
	}
	return c
}

// AutoDeltaPoint is one cell of a workload's grid: a fixed Δ, or the
// controller (DeltaTicks -1).
type AutoDeltaPoint struct {
	// DeltaTicks is the fixed Δ in clock ticks; -1 marks the controller
	// cell (seeded at AutoDeltaConfig.SeedTicks).
	DeltaTicks int `json:"delta_ticks"`
	// Score is the workload's figure of merit, higher better:
	// cycles/sec for ping-pong, goodput req/s for service and affinity.
	Score float64 `json:"score"`
	// P99 is the request p99 latency (service and affinity cells).
	P99 time.Duration `json:"p99,omitempty"`
	// Denials sums KBusy replies across sites — how often a window
	// turned a request away.
	Denials int `json:"denials"`
	// Grows and Shrinks sum the controller's adjustments across sites
	// (zero in fixed cells).
	Grows   int `json:"grows"`
	Shrinks int `json:"shrinks"`
	// Migrations sums accepted voluntary migrations (affinity cells).
	Migrations int `json:"migrations,omitempty"`
}

// AutoDeltaWorkload is one workload's grid plus the controller verdict.
type AutoDeltaWorkload struct {
	// Workload is "pingpong", "service", or "affinity".
	Workload string `json:"workload"`
	// Fixed holds one point per AutoDeltaConfig.Ticks entry.
	Fixed []AutoDeltaPoint `json:"fixed"`
	// Auto is the controller cell.
	Auto AutoDeltaPoint `json:"auto"`
	// BestFixed indexes the highest-scoring fixed cell.
	BestFixed int `json:"best_fixed"`
	// AutoMatchesBest reports Auto.Score >= best fixed score scaled by
	// (1 - Tolerance).
	AutoMatchesBest bool `json:"auto_matches_best"`
	// Retunes counts EvRetune events in the controller cell's trace.
	Retunes int `json:"retunes"`
	// Violations counts coherence-checker findings against the
	// controller cell's trace, verified with Delta = AutoDelta.Min.
	Violations int `json:"violations"`
}

// AutoDeltaSweepResult is the whole E23 run.
type AutoDeltaSweepResult struct {
	Config AutoDeltaConfig `json:"config"`
	// Workloads holds pingpong, service, affinity in that order.
	Workloads []AutoDeltaWorkload `json:"workloads"`
	// ReplayMatches reports the determinism check: the affinity
	// controller cell run twice (once traced, once not) scored
	// identically.
	ReplayMatches bool `json:"replay_matches"`
}

// autoDeltaEngine resolves one cell's engine options and segment Δ:
// fixed cells pin Δ at ticks, the controller cell (ticks < 0) starts
// from the deliberately wrong SeedTicks with the production-default
// controller.
func (c AutoDeltaConfig) autoDeltaEngine(ticks int, o *obs.Obs) (core.Options, time.Duration) {
	eng := core.Options{Obs: o}
	if ticks < 0 {
		eng.AutoDelta = &core.AutoDelta{}
		return eng, time.Duration(c.SeedTicks) * vaxmodel.ClockTick
	}
	return eng, time.Duration(ticks) * vaxmodel.ClockTick
}

// tallyEngine folds one site's engine counters into the point.
func (p *AutoDeltaPoint) tallyEngine(st core.Stats) {
	p.Denials += st.BusyReplies
	p.Grows += st.DeltaGrows
	p.Shrinks += st.DeltaShrinks
	p.Migrations += st.Migrations
}

// pingPongCell runs the E16 worst case (yield variant) at one cell. The
// workload runs for Warmup+PingPongDur but only cycles completed after
// the warmup count, so the controller cell is scored on its converged Δ
// rather than its transient — and every fixed cell is scored over the
// identical window.
func (c AutoDeltaConfig) pingPongCell(ticks int, o *obs.Obs) AutoDeltaPoint {
	eng, delta := c.autoDeltaEngine(ticks, o)
	cl := ipc.NewCluster(2, ipc.Config{Delta: delta, Engine: eng})
	st := runPingPong(cl, 0, 1, PingPongConfig{UseYield: true}, 512, c.Warmup+c.PingPongDur)
	warm := 0
	cl.Site(0).Spawn("warmup-mark", 0, func(p *ipc.Proc) {
		p.Sleep(c.Warmup)
		warm = st.cycles
	})
	cl.Run()
	p := AutoDeltaPoint{DeltaTicks: ticks, Score: float64(st.cycles-warm) / c.PingPongDur.Seconds()}
	for i := 0; i < cl.Sites(); i++ {
		p.tallyEngine(cl.Site(i).Eng.Stats())
	}
	return p
}

// serviceCell runs one E19 rung at one cell.
func (c AutoDeltaConfig) serviceCell(ticks int, o *obs.Obs) AutoDeltaPoint {
	scfg := ServiceConfig{Duration: c.ServiceDur, Rates: []float64{c.Rate}}.WithDefaults()
	eng, delta := c.autoDeltaEngine(ticks, o)
	cl := ipc.NewCluster(scfg.Sites, ipc.Config{Delta: delta, Engine: eng})
	rung := RunService(cl, scfg, c.Rate, app.NewStats(scfg.Shards), nil)
	p := AutoDeltaPoint{DeltaTicks: ticks, Score: rung.Goodput, P99: time.Duration(rung.Latency.P99)}
	for i := 0; i < cl.Sites(); i++ {
		p.tallyEngine(cl.Site(i).Eng.Stats())
	}
	return p
}

// affinityCell runs the E21 skewed scenario with placement on at one
// cell: every site's demand favors shards homed one site over, so the
// measured path includes voluntary migrations — and, in the controller
// cell, tuned Δs shipping in the migration records.
func (c AutoDeltaConfig) affinityCell(ticks int, o *obs.Obs) AutoDeltaPoint {
	mcfg := MigrationConfig{Rate: c.Rate, Duration: c.AffinityDur}.WithDefaults()
	eng, delta := c.autoDeltaEngine(ticks, o)
	eng.Reliability = failoverRel()
	eng.Failover = &core.Failover{}
	eng.Placement = mcfg.Policy()
	cl := ipc.NewCluster(mcfg.Sites, ipc.Config{Delta: delta, Engine: eng})
	rung := RunAffinity(cl, mcfg, false, app.NewStats(mcfg.Shards), nil)
	p := AutoDeltaPoint{DeltaTicks: ticks, Score: rung.Goodput, P99: time.Duration(rung.Latency.P99)}
	for i := 0; i < cl.Sites(); i++ {
		p.tallyEngine(cl.Site(i).Eng.Stats())
	}
	return p
}

// autoDeltaCell dispatches one workload×cell run.
func (c AutoDeltaConfig) autoDeltaCell(workload string, ticks int, o *obs.Obs) AutoDeltaPoint {
	switch workload {
	case "pingpong":
		return c.pingPongCell(ticks, o)
	case "service":
		return c.serviceCell(ticks, o)
	default:
		return c.affinityCell(ticks, o)
	}
}

// autoDeltaSites returns the cluster size a workload's trace was
// recorded with, for the checker config.
func (c AutoDeltaConfig) autoDeltaSites(workload string) int {
	switch workload {
	case "pingpong":
		return 2
	case "service":
		return ServiceConfig{}.WithDefaults().Sites
	default:
		return MigrationConfig{}.WithDefaults().Sites
	}
}

// AutoDeltaSweep runs the E23 grid: per workload, every fixed-Δ cell
// plus a traced controller cell, all on private deterministic clusters
// fanned across the worker pool, plus a determinism re-run of the
// affinity controller cell. The controller traces are verified in
// process with Delta = AutoDelta.Min (zero at the production default,
// which disables only the window invariant; the single-writer,
// serialization, and data-oracle invariants still apply).
func AutoDeltaSweep(cfg AutoDeltaConfig) AutoDeltaSweepResult {
	cfg = cfg.WithDefaults()
	workloads := []string{"pingpong", "service", "affinity"}
	r := AutoDeltaSweepResult{Config: cfg}
	r.Workloads = make([]AutoDeltaWorkload, len(workloads))
	nt := len(cfg.Ticks)
	perWL := nt + 1 // fixed grid + traced controller cell
	traces := make([][]obs.Event, len(workloads))
	var replay AutoDeltaPoint
	for w := range r.Workloads {
		r.Workloads[w] = AutoDeltaWorkload{Workload: workloads[w], Fixed: make([]AutoDeltaPoint, nt)}
	}
	sweepTasks(len(workloads)*perWL+1, func(i int) {
		if i == len(workloads)*perWL {
			// Determinism arm: the affinity controller cell again,
			// untraced; compared against the traced grid cell below.
			replay = cfg.autoDeltaCell("affinity", -1, nil)
			return
		}
		w, k := i/perWL, i%perWL
		wl := workloads[w]
		if k < nt {
			r.Workloads[w].Fixed[k] = cfg.autoDeltaCell(wl, cfg.Ticks[k], nil)
			return
		}
		o := obs.New()
		r.Workloads[w].Auto = cfg.autoDeltaCell(wl, -1, o)
		traces[w] = o.Buffer().Events()
	})
	auto := core.AutoDelta{} // production defaults; Min is the checker bound
	for w := range r.Workloads {
		wl := &r.Workloads[w]
		best := 0
		for i, p := range wl.Fixed {
			if p.Score > wl.Fixed[best].Score {
				best = i
			}
		}
		wl.BestFixed = best
		wl.AutoMatchesBest = wl.Auto.Score >= wl.Fixed[best].Score*(1-cfg.Tolerance)
		for _, ev := range traces[w] {
			if ev.Type == obs.EvRetune {
				wl.Retunes++
			}
		}
		wl.Violations = len(check.Verify(check.Config{
			Sites:    cfg.autoDeltaSites(wl.Workload),
			Delta:    auto.Min,
			Reliable: wl.Workload == "affinity", // the affinity cells run the reliability layer
		}, traces[w]))
	}
	r.ReplayMatches = r.Workloads[2].Auto == replay
	return r
}

// WriteFindings renders the FINDINGS-style verdict: per workload, the
// fixed grid, the controller cell, and whether it matched the best
// fixed Δ; plus the trace and determinism checks.
func (r AutoDeltaSweepResult) WriteFindings(w io.Writer) {
	cfg := r.Config.WithDefaults()
	fmt.Fprintf(w, "E23 — closed-loop Δ tuning (seed Δ %d ticks, grid %v, tolerance %.0f%%)\n",
		cfg.SeedTicks, cfg.Ticks, cfg.Tolerance*100)
	fmt.Fprintf(w, "Hypothesis: started from a deliberately wrong Δ, Options.AutoDelta matches the\n")
	fmt.Fprintf(w, "best fixed Δ on every workload (within tolerance), with every traced run clean\n")
	fmt.Fprintf(w, "under the coherence checker at the Delta = Min sound bound.\n")
	for _, wl := range r.Workloads {
		fmt.Fprintf(w, "[%s]\n", wl.Workload)
		for _, p := range wl.Fixed {
			fmt.Fprintf(w, "  Δ=%2d ticks: score %8.1f  denials %6d", p.DeltaTicks, p.Score, p.Denials)
			if p.P99 > 0 {
				fmt.Fprintf(w, "  p99 %v", p.P99)
			}
			if p.Migrations > 0 {
				fmt.Fprintf(w, "  migrations %d", p.Migrations)
			}
			fmt.Fprintln(w)
		}
		best := wl.Fixed[wl.BestFixed]
		fmt.Fprintf(w, "  auto (seed %d): score %8.1f  denials %6d  %d grows / %d shrinks / %d retunes",
			cfg.SeedTicks, wl.Auto.Score, wl.Auto.Denials, wl.Auto.Grows, wl.Auto.Shrinks, wl.Retunes)
		if wl.Auto.P99 > 0 {
			fmt.Fprintf(w, "  p99 %v", wl.Auto.P99)
		}
		if wl.Auto.Migrations > 0 {
			fmt.Fprintf(w, "  migrations %d", wl.Auto.Migrations)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  best fixed: Δ=%d ticks (score %.1f)\n", best.DeltaTicks, best.Score)
		fmt.Fprintf(w, "  auto matches best fixed: %s\n", verdict(wl.AutoMatchesBest))
		fmt.Fprintf(w, "  traced run clean: %s (%d violations)\n", verdict(wl.Violations == 0), wl.Violations)
	}
	fmt.Fprintf(w, "replay determinism: %v\n", verdict(r.ReplayMatches))
}
