package exp

import (
	"time"

	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/vaxmodel"
)

// ---------------------------------------------------------------------------
// E12 — §8.0 hot-spot organization. The paper: "consider hot spot
// pages... In one approach, hot spots are separated from the remainder
// of the segment data... In another approach all data is in one
// segment, including the hot spots. In this organization, per-page Δs
// may be useful."
//
// The workload mixes two sharing grains in one segment: page 0 is a
// hot exchange page (fine-grained ping-pong, best served by a small
// window) while page 1 carries coarse countdown bursts (best served by
// the Figure 8 peak window). A uniform Δ must sacrifice one of them;
// per-page Δs serve both.

// HotSpotResult reports both workloads' throughput under one Δ policy.
type HotSpotResult struct {
	Config   string
	HotOps   float64 // hot-page exchanges per second
	ColdInsn float64 // cold-page read-write instructions per second
}

// HotSpots measures uniform-small, uniform-large, and per-page window
// assignments over the mixed workload.
func HotSpots(dur time.Duration) []HotSpotResult {
	small := 30 * time.Millisecond
	large := 600 * time.Millisecond
	return []HotSpotResult{
		runHotSpot("uniform Δ=30ms", dur, small, small),
		runHotSpot("uniform Δ=600ms", dur, large, large),
		runHotSpot("per-page Δ (30ms hot, 600ms cold)", dur, small, large),
	}
}

func runHotSpot(name string, dur time.Duration, hotDelta, coldDelta time.Duration) HotSpotResult {
	c := ipc.NewCluster(2, ipc.Config{Delta: hotDelta})
	const segBytes = 2 * vaxmodel.PageSize

	// Create the segment up front so the per-page windows can be set
	// before the workers start faulting.
	c.Site(0).Spawn("setup", 0, func(p *ipc.Proc) {
		id, err := p.Shmget(segKey, segBytes, mem.Create, rwMode)
		if err != nil {
			panic(err)
		}
		h, err := p.Shmat(id, false)
		if err != nil {
			panic(err)
		}
		_ = h
		p.Sleep(dur + time.Second) // hold the segment for the whole run
	})
	// The setup process needs a dispatch (~1.4 ms) before the segment
	// exists; the workers hold off until after the windows are set.
	c.K.After(5*time.Millisecond, func() {
		c.Site(0).Eng.SetPageDelta(1, 0, hotDelta)
		c.Site(0).Eng.SetPageDelta(1, 1, coldDelta)
	})

	// Hot exchange: the two processes alternate writes on page 0 and
	// poll for each other (a paced ping-pong; small windows keep the
	// page moving).
	hotOps := 0
	hotWorker := func(site, idx int) {
		c.Site(site).Spawn("hot", 0, func(p *ipc.Proc) {
			p.Sleep(10 * time.Millisecond)
			h := attachShared(p, false, segBytes)
			my, other := idx*4, (1-idx)*4
			for i := uint32(1); p.Now() < dur; i++ {
				if h.SetUint32(my, i) != nil {
					return
				}
				for {
					v, err := h.Uint32(other)
					if err != nil || v >= i || p.Now() >= dur {
						break
					}
					p.Yield()
				}
				if idx == 0 {
					hotOps++
				}
			}
		})
	}
	hotWorker(0, 0)
	hotWorker(1, 1)

	// Cold bursts: Figure 8's countdown pattern on page 1.
	iterCost := 2 * vaxmodel.SharedMemInstruction
	coldIters := 0
	coldWorker := func(site, idx int) {
		c.Site(site).Spawn("cold", 0, func(p *ipc.Proc) {
			p.Sleep(10 * time.Millisecond)
			h := attachShared(p, false, segBytes)
			off := vaxmodel.PageSize + idx*4
			burst := DefaultIterPerRound()
			for p.Now() < dur {
				if h.SetUint32(off, uint32(burst)) != nil {
					return
				}
				for r := burst; r > 0 && p.Now() < dur; {
					n := 96
					if n > r {
						n = r
					}
					p.Compute(time.Duration(n) * iterCost)
					if h.AddUint32(off, -uint32(n)) != nil {
						return
					}
					r -= n
					coldIters += n
				}
				p.Compute(200 * time.Millisecond)
			}
		})
	}
	coldWorker(0, 0)
	coldWorker(1, 1)

	c.Run()
	return HotSpotResult{
		Config:   name,
		HotOps:   float64(hotOps) / dur.Seconds(),
		ColdInsn: 2 * float64(coldIters) / dur.Seconds(),
	}
}

// ---------------------------------------------------------------------------
// E13 — §9.0 measuring time: "In Mirage Δ is measured using real-time.
// However, site loads can influence a real-time measure because heavy
// loads influence scheduling latencies. The load would decrease the
// effective Δ."
//
// The experiment runs the representative application at its peak Δ
// with and without a compute-bound competitor sharing site 1: under
// load, site 1's process gets only part of each real-time window's
// CPU, so its committed work per window — the effective Δ — shrinks.

// LoadSensitivityResult compares the loaded and unloaded site's work.
type LoadSensitivityResult struct {
	UnloadedInsn  float64 // site 1's insn/s with no competitor
	LoadedInsn    float64 // site 1's insn/s sharing the CPU with a hog
	EffectiveDrop float64 // fraction of the unloaded rate lost to load
}

// LoadSensitivity runs both configurations at Δ=600 ms.
func LoadSensitivity(dur time.Duration) LoadSensitivityResult {
	run := func(loaded bool) float64 {
		c := ipc.NewCluster(2, ipc.Config{Delta: 600 * time.Millisecond})
		st := runCounters(c, 0, 1, CountersConfig{Duration: dur})
		if loaded {
			c.Site(1).Spawn("hog", 0, func(p *ipc.Proc) {
				for p.Now() < dur {
					p.Compute(time.Millisecond)
				}
			})
		}
		c.Run()
		return 2 * float64(st.iters[1]) / dur.Seconds()
	}
	r := LoadSensitivityResult{
		UnloadedInsn: run(false),
		LoadedInsn:   run(true),
	}
	if r.UnloadedInsn > 0 {
		r.EffectiveDrop = 1 - r.LoadedInsn/r.UnloadedInsn
	}
	return r
}
