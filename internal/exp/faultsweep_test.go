package exp

import "testing"

func TestE14FaultSweep(t *testing.T) {
	r := FaultSweep(8, []float64{0, 5, 10})
	for _, p := range r.Points {
		if !p.Completed {
			t.Errorf("drop %.0f%%: final=%d want=%d", p.DropPct, p.Final, p.Want)
		}
		if p.DropPct >= 5 && p.Retransmits == 0 {
			t.Errorf("drop %.0f%%: no retransmissions despite %d net drops", p.DropPct, p.NetDropped)
		}
	}
	// Loss costs work: the lossy points must resend more than lossless.
	if len(r.Points) == 3 && r.Points[2].Retransmits <= r.Points[0].Retransmits {
		t.Errorf("10%% drop retransmitted %d times, lossless %d", r.Points[2].Retransmits, r.Points[0].Retransmits)
	}
	if !r.Crash.Completed {
		t.Errorf("crash window: final=%d want=%d", r.Crash.Final, r.Crash.Want)
	}
	if !r.ReplayMatches {
		t.Error("same seed did not replay the same schedule")
	}
}
