package exp

import (
	"reflect"
	"testing"

	"mirage/internal/core"
)

func TestE20ScalePoint(t *testing.T) {
	flat, err := runScalePoint(10, 0, 2, nil, "", nil)
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	tree, err := runScalePoint(10, 4, 2, nil, "", nil)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	if flat.Relays != 0 {
		t.Errorf("flat run recorded %d relays", flat.Relays)
	}
	if tree.Relays == 0 {
		t.Error("tree run recorded no relays")
	}
	// Flat unicast sends one order per reader from the library site;
	// the k-ary tree caps the library at ~k orders plus the grant
	// traffic, so per-fault sends must drop.
	if tree.LibSends >= flat.LibSends {
		t.Errorf("tree LibSends %.1f not below flat %.1f", tree.LibSends, flat.LibSends)
	}
	if flat.InvalLatMs <= 0 || tree.InvalLatMs <= 0 {
		t.Errorf("non-positive latency: flat %.2f tree %.2f", flat.InvalLatMs, tree.InvalLatMs)
	}
}

func TestE20ScaleChecked(t *testing.T) {
	r, err := ScaleChecked(20, 4, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 {
		t.Fatalf("clean checked run: %d violations", r.Violations)
	}
	if r.Events == 0 {
		t.Fatal("checked run produced no trace events")
	}
}

func TestE20ScaleCheckedUnderRelayCrash(t *testing.T) {
	// Crash an interior relay root mid-run: the write cycle must abort
	// cleanly (KInvalFail / order give-up), roll back without
	// resurrecting released copies, and retry after the heal.
	r, err := ScaleChecked(20, 4, "seed=7; crash site=5 from=400ms until=10s")
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 {
		t.Fatalf("relay-crash checked run: %d violations", r.Violations)
	}
}

// TestAutoScaleReliabilityN100 is the livelock regression test behind
// core.Reliability's Sites auto-scale (promoted from this experiment's
// scaleReliability): at N=100 under a light drop plan, the scaled ARQ
// profile completes the barriered workload, while the fixed 30ms
// profile (NoAutoScale) retransmits into the library's own install
// backlog. The collapse compounds across rounds — each round's
// retransmit storm leaves the backlog deeper than the last — so one
// round squeaks through but the third wedges every write cycle and the
// run hits the virtual-time deadline instead of finishing.
func TestAutoScaleReliabilityN100(t *testing.T) {
	const plan = "seed=3; drop p=0.02"
	if _, err := runScalePoint(100, 8, 3, nil, plan, nil); err != nil {
		t.Fatalf("auto-scaled profile failed at N=100: %v", err)
	}
	if testing.Short() {
		t.Skip("skipping the livelock (negative) half in -short mode")
	}
	fixed := &core.Reliability{Sites: 100, NoAutoScale: true}
	if _, err := runScalePoint(100, 8, 3, nil, plan, fixed); err == nil {
		t.Fatal("fixed 30ms profile completed 3 rounds at N=100; the auto-scale rationale no longer holds")
	}
}

func TestScaleRelayRoots(t *testing.T) {
	if got := ScaleRelayRoots(100, 8); !reflect.DeepEqual(got, []int{1, 13, 25, 38, 50, 62, 75, 87}) {
		t.Errorf("roots(100,8) = %v", got)
	}
	if got := ScaleRelayRoots(10, 0); got != nil {
		t.Errorf("roots(10,0) = %v, want none for flat mode", got)
	}
	if got := ScaleRelayRoots(5, 8); got != nil {
		t.Errorf("roots(5,8) = %v, want none when every order is direct", got)
	}
}
