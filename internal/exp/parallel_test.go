package exp

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// The acceptance property of the parallel harness: a sweep's results
// are bit-identical at any worker count, because every point owns a
// private virtual-time cluster. Run representative sweeps at
// Parallelism 1 and 4 and require deep equality.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) (f7 []Figure7Point, f8 []Figure8Point, ns []NSitePoint, pp []PolicyPoint) {
		old := Parallelism
		Parallelism = par
		defer func() { Parallelism = old }()
		dur := 200 * time.Millisecond
		f7 = Figure7(dur, []int{0, 2, 8})
		f8 = Figure8(CountersConfig{Duration: dur}, []time.Duration{0, 120 * time.Millisecond, 600 * time.Millisecond})
		ns = NSiteWorstCase(dur, []int{2, 3})
		pp = InvalidationAblation(CountersConfig{Duration: dur}, []time.Duration{0, 120 * time.Millisecond})
		return
	}
	f7a, f8a, nsa, ppa := run(1)
	f7b, f8b, nsb, ppb := run(4)
	if !reflect.DeepEqual(f7a, f7b) {
		t.Errorf("Figure7 differs across parallelism:\n par=1: %+v\n par=4: %+v", f7a, f7b)
	}
	if !reflect.DeepEqual(f8a, f8b) {
		t.Errorf("Figure8 differs across parallelism:\n par=1: %+v\n par=4: %+v", f8a, f8b)
	}
	if !reflect.DeepEqual(nsa, nsb) {
		t.Errorf("NSiteWorstCase differs across parallelism:\n par=1: %+v\n par=4: %+v", nsa, nsb)
	}
	if !reflect.DeepEqual(ppa, ppb) {
		t.Errorf("InvalidationAblation differs across parallelism:\n par=1: %+v\n par=4: %+v", ppa, ppb)
	}
}

// The observability acceptance property: a traced run's serialized
// protocol timeline — not just its aggregate counters — is
// byte-identical at any worker count. This is what makes traces
// diffable artifacts: two runs of the same scenario can be compared
// with cmp(1).
func TestDeltaDenialSweepTraceDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) []DeltaDenialPoint {
		old := Parallelism
		Parallelism = par
		defer func() { Parallelism = old }()
		return DeltaDenialSweep(500*time.Millisecond, []int{0, 2, 6})
	}
	a := run(1)
	b := run(4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("DeltaDenialSweep differs across parallelism")
	}
	for i := range a {
		if !bytes.Equal(a[i].TraceJSONL, b[i].TraceJSONL) {
			t.Errorf("point %d (Δ=%d ticks): trace bytes differ across parallelism", i, a[i].DeltaTicks)
		}
		if len(a[i].TraceJSONL) == 0 {
			t.Errorf("point %d: empty trace", i)
		}
	}
	// The traced points must see denials where Δ > 0 — otherwise the
	// byte comparison is vacuous.
	if a[1].Denials == 0 || a[2].Denials == 0 {
		t.Errorf("expected Δ-window denials at Δ>0, got %d and %d", a[1].Denials, a[2].Denials)
	}
}

func TestFaultSweepDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is slow")
	}
	run := func(par int) FaultSweepResult {
		old := Parallelism
		Parallelism = par
		defer func() { Parallelism = old }()
		return FaultSweep(3, []float64{0, 5})
	}
	a := run(1)
	b := run(4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("FaultSweep differs across parallelism:\n par=1: %+v\n par=4: %+v", a, b)
	}
	if !a.ReplayMatches {
		t.Error("replay determinism check failed")
	}
}

func TestWorkersResolution(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 3
	if w := workers(10); w != 3 {
		t.Fatalf("workers(10) = %d, want 3", w)
	}
	if w := workers(2); w != 2 {
		t.Fatalf("workers(2) = %d, want capped 2", w)
	}
	Parallelism = 0
	if w := workers(1); w != 1 {
		t.Fatalf("workers(1) = %d, want 1", w)
	}
}
