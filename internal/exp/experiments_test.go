package exp

import (
	"testing"
	"time"

	"mirage/internal/vaxmodel"
)

// The experiment tests assert the paper-shape properties at reduced
// durations; the full-length sweeps run in cmd/miragebench and the
// top-level benchmarks.

func TestE1ComponentTimings(t *testing.T) {
	r := ComponentTimings()
	if r.ShortRTT < 12*time.Millisecond || r.ShortRTT > 13*time.Millisecond {
		t.Fatalf("short RTT = %v, paper 12.9 ms", r.ShortRTT)
	}
	if r.PagePlusReply < 21*time.Millisecond || r.PagePlusReply > 22*time.Millisecond {
		t.Fatalf("1KB+reply = %v, paper 21.5 ms", r.PagePlusReply)
	}
}

func TestE2Table3(t *testing.T) {
	r := Table3()
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.ModelTotal < 27*time.Millisecond || r.ModelTotal > 28*time.Millisecond {
		t.Fatalf("model total = %v, paper 27.5 ms", r.ModelTotal)
	}
	// Full-simulator measurement includes waking the faulting process.
	if r.MeasuredTotal < r.ModelTotal || r.MeasuredTotal > r.ModelTotal+4*time.Millisecond {
		t.Fatalf("measured = %v vs model %v", r.MeasuredTotal, r.ModelTotal)
	}
	for _, row := range r.Rows {
		if row.Model != row.Paper {
			t.Fatalf("row %q: model %v != paper %v", row.Name, row.Model, row.Paper)
		}
	}
}

func TestE3SingleSiteYield(t *testing.T) {
	r := SingleSiteWorstCase(5 * time.Second)
	if r.NoYield < 3 || r.NoYield > 7 {
		t.Fatalf("no-yield = %.1f cycles/s, paper ≈5", r.NoYield)
	}
	if r.WithYield < 130 || r.WithYield > 200 {
		t.Fatalf("with-yield = %.1f cycles/s, paper ≈166", r.WithYield)
	}
	if r.Speedup < 20 {
		t.Fatalf("speedup = %.1f, paper ≈35", r.Speedup)
	}
}

func TestE4Figure7Shape(t *testing.T) {
	pts := Figure7(10*time.Second, []int{0, 2, 6})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	d0, d2, d6 := pts[0], pts[1], pts[2]
	// §7.3: "At Δ=0 we would expect roughly 8 cycles/second."
	if d0.Yield < 6.5 || d0.Yield > 9.5 {
		t.Fatalf("yield(0) = %.2f, paper expects ≈8", d0.Yield)
	}
	// §7.3: ≈4.5 cycles/s at Δ=2 (90%% of the 5/s bound).
	if d2.Yield < 4 || d2.Yield > 6.5 {
		t.Fatalf("yield(2) = %.2f, paper ≈4.5", d2.Yield)
	}
	// "nearly a 50% improvement in throughput using yield" at Δ=2.
	if d2.Yield < 1.25*d2.NoYield {
		t.Fatalf("yield advantage at Δ=2 = %.2fx, paper ≈1.5x", d2.Yield/d2.NoYield)
	}
	// Throughput decreases with Δ for the yield version.
	if !(d0.Yield > d2.Yield && d2.Yield > d6.Yield) {
		t.Fatalf("yield curve not declining: %v", pts)
	}
	// The curves converge toward the quantum.
	gap2 := d2.Yield / d2.NoYield
	gap6 := d6.Yield / d6.NoYield
	if gap6 >= gap2 {
		t.Fatalf("curves must converge: ratio(2)=%.2f ratio(6)=%.2f", gap2, gap6)
	}
}

func TestE4TrafficPerCycle(t *testing.T) {
	tr := MeasureWorstCaseTraffic(10*time.Second, 0)
	if tr.Cycles < 10 {
		t.Fatalf("cycles = %d", tr.Cycles)
	}
	// The paper counts 9 messages (3 large) per cycle; our protocol
	// carries explicit completion traffic, so somewhat more.
	if tr.MsgsPerCycle < 6 || tr.MsgsPerCycle > 20 {
		t.Fatalf("msgs/cycle = %.1f", tr.MsgsPerCycle)
	}
	if tr.LargePerCycle < 1.5 || tr.LargePerCycle > 4.5 {
		t.Fatalf("large/cycle = %.1f, paper counts 3", tr.LargePerCycle)
	}
	if tr.DerivedBound < 80*time.Millisecond || tr.DerivedBound > 200*time.Millisecond {
		t.Fatalf("derived bound = %v, paper derives 109 ms", tr.DerivedBound)
	}
}

func TestE5Figure8Shape(t *testing.T) {
	cfg := CountersConfig{Duration: 10 * time.Second}
	pts := Figure8(cfg, []time.Duration{
		0, 120 * time.Millisecond, 600 * time.Millisecond, 1200 * time.Millisecond,
	})
	at := func(d time.Duration) float64 {
		for _, p := range pts {
			if p.Delta == d {
				return p.InsnPerSec
			}
		}
		t.Fatalf("missing %v", d)
		return 0
	}
	peak := at(600 * time.Millisecond)
	// Peak near the paper's 115,000 insn/s at Δ=600 ms.
	if peak < 0.8*PaperFigure8Peak || peak > 1.1*PaperFigure8Peak {
		t.Fatalf("peak = %.0f, paper 115,000", peak)
	}
	// Contention side below the good range; retention side declining.
	if at(0) >= at(120*time.Millisecond) {
		t.Fatalf("contention side not rising: %v", pts)
	}
	if at(120*time.Millisecond) >= peak {
		t.Fatalf("Δ=120 should be below the peak: %v", pts)
	}
	if at(1200*time.Millisecond) >= peak {
		t.Fatalf("retention side not falling: %v", pts)
	}
	// §8.0: the retention falloff is more gradual than the contention
	// falloff (same 600 ms distance from the peak each way).
	contentionDrop := peak - at(0)
	retentionDrop := peak - at(1200*time.Millisecond)
	if retentionDrop >= contentionDrop {
		t.Fatalf("retention drop %.0f should be gentler than contention drop %.0f",
			retentionDrop, contentionDrop)
	}
}

func TestE6ThrashingAmelioration(t *testing.T) {
	pts := ThrashingAmelioration(10*time.Second, []int{0, 6})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Raising Δ must help the bystander (§7.3) even as it costs the
	// thrashing application.
	if pts[1].BystanderUnits <= pts[0].BystanderUnits {
		t.Fatalf("bystander did not improve with Δ: %v", pts)
	}
	if pts[1].AppCycles >= pts[0].AppCycles {
		t.Fatalf("app throughput should drop with Δ: %v", pts)
	}
}

func TestE7InvalidationAblation(t *testing.T) {
	pts := InvalidationAblation(CountersConfig{Duration: 8 * time.Second},
		[]time.Duration{900 * time.Millisecond})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	var retry, queue PolicyPoint
	for _, p := range pts {
		switch p.Policy.String() {
		case "retry":
			retry = p
		case "queue":
			queue = p
		}
	}
	if retry.Retries == 0 {
		t.Fatal("paper policy must exhibit invalidation retries")
	}
	if queue.Retries != 0 {
		t.Fatal("queued-invalidation policy must not retry")
	}
	// On the retention side a promptly honored invalidation frees the
	// idle page sooner; the queued optimization must not lose there.
	if queue.InsnPerSec < 0.98*retry.InsnPerSec {
		t.Fatalf("queue %f vs retry %f at Δ=900ms", queue.InsnPerSec, retry.InsnPerSec)
	}
}

func TestE8DynamicDelta(t *testing.T) {
	r := DynamicDelta(CountersConfig{Duration: 8 * time.Second})
	if r.FixedPeak <= r.FixedZero {
		t.Fatalf("Δ=600 should beat Δ=0: %+v", r)
	}
	// The adaptive tuner should land well above the worst fixed choice.
	worst := r.FixedZero
	if r.FixedLarge < worst {
		worst = r.FixedLarge
	}
	if r.Adaptive < worst {
		t.Fatalf("adaptive %f below worst fixed %f", r.Adaptive, worst)
	}
}

func TestE9TestAndSet(t *testing.T) {
	r := TestAndSetScenario(10*time.Second, []int{0, 2})
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// §7.2: "the use of test&set can degrade performance substantially
	// if the process in the locked region writes to the particular
	// page of the lock while a remote test&set reader is testing."
	for _, p := range r.Points {
		if p.CritPerSec > 0.75*r.Solo {
			t.Fatalf("remote tester should cost the writer substantially: solo %.1f vs %.1f at Δ=%d",
				r.Solo, p.CritPerSec, p.DeltaTicks)
		}
		if p.PageMoves < 20 {
			t.Fatalf("expected lock-page thrashing, moves = %d", p.PageMoves)
		}
	}
}

func TestE10Baseline(t *testing.T) {
	pts := BaselineComparison(8 * time.Second)
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	get := func(sys, wl string) BaselinePoint {
		for _, p := range pts {
			if p.System == sys && p.Workload == wl {
				return p
			}
		}
		t.Fatalf("missing %s/%s", sys, wl)
		return BaselinePoint{}
	}
	// With its tuned window, Mirage's representative throughput must
	// beat the windowless baseline.
	mir := get("mirage(Δ=600ms)", "representative")
	for _, sys := range []string{"ivy-central", "ivy-dynamic"} {
		base := get(sys, "representative")
		if mir.Throughput <= base.Throughput {
			t.Fatalf("mirage(600ms) %.0f <= %s %.0f", mir.Throughput, sys, base.Throughput)
		}
	}
	// Every system makes progress on both workloads.
	for _, p := range pts {
		if p.Throughput <= 0 {
			t.Fatalf("no progress: %+v", p)
		}
	}
}

func TestE11RemapCost(t *testing.T) {
	pts := RemapCost([]int{1, 32, 128, 256})
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Dispatch cost grows linearly at ~RemapPerPage per page.
	for i := 1; i < len(pts); i++ {
		if pts[i].DispatchCost <= pts[i-1].DispatchCost {
			t.Fatalf("dispatch cost not increasing: %v", pts)
		}
	}
	slope := (pts[3].DispatchCost - pts[0].DispatchCost) / time.Duration(pts[3].Pages-pts[0].Pages)
	if slope < vaxmodel.RemapPerPageMin || slope > vaxmodel.RemapPerPageMax {
		t.Fatalf("remap slope = %v/page, paper measures 106–125 µs", slope)
	}
}

func TestE4bNSiteWorstCase(t *testing.T) {
	pts := NSiteWorstCase(20*time.Second, []int{2, 3, 4})
	for _, p := range pts {
		if p.CyclesPerSec <= 0 {
			t.Fatalf("no progress at %d sites: %+v", p.Sites, pts)
		}
	}
	// More sites per rotation: each rotation costs more transfers, so
	// rotation rate falls and per-cycle traffic grows.
	if !(pts[0].CyclesPerSec > pts[1].CyclesPerSec && pts[1].CyclesPerSec > pts[2].CyclesPerSec) {
		t.Fatalf("ring rate should fall with sites: %+v", pts)
	}
	if pts[2].MsgsPerCycle <= pts[0].MsgsPerCycle {
		t.Fatalf("per-cycle traffic should grow with sites: %+v", pts)
	}
}

func TestE12HotSpots(t *testing.T) {
	rs := HotSpots(10 * time.Second)
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	uniSmall, uniLarge, perPage := rs[0], rs[1], rs[2]
	// Uniform small: cold suffers relative to uniform large.
	if uniSmall.ColdInsn >= uniLarge.ColdInsn {
		t.Fatalf("cold should prefer the large window: %+v", rs)
	}
	// Uniform large: hot suffers badly relative to uniform small.
	if uniLarge.HotOps >= uniSmall.HotOps/2 {
		t.Fatalf("hot should prefer the small window: %+v", rs)
	}
	// Per-page windows recover most of both.
	if perPage.HotOps < 0.7*uniSmall.HotOps {
		t.Fatalf("per-page hot %f << uniform-small hot %f", perPage.HotOps, uniSmall.HotOps)
	}
	if perPage.ColdInsn < 0.8*uniLarge.ColdInsn {
		t.Fatalf("per-page cold %f << uniform-large cold %f", perPage.ColdInsn, uniLarge.ColdInsn)
	}
}

func TestE13LoadSensitivity(t *testing.T) {
	r := LoadSensitivity(8 * time.Second)
	if r.UnloadedInsn <= 0 || r.LoadedInsn <= 0 {
		t.Fatalf("no progress: %+v", r)
	}
	// §9.0: load decreases the effective Δ — the loaded site must do
	// meaningfully less within the same real-time windows.
	if r.EffectiveDrop < 0.15 {
		t.Fatalf("load barely affected the window (drop %.2f): %+v", r.EffectiveDrop, r)
	}
	if r.EffectiveDrop > 0.95 {
		t.Fatalf("loaded site nearly starved (drop %.2f): %+v", r.EffectiveDrop, r)
	}
}
