package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func entry(ms int, seg, page, site, pid int32, w bool) Entry {
	return Entry{T: time.Duration(ms) * time.Millisecond, Seg: seg, Page: page, Site: site, Pid: pid, Write: w}
}

func TestLogRecordAndReset(t *testing.T) {
	l := NewLog()
	l.Record(entry(1, 0, 0, 1, 100, false))
	l.Record(entry(2, 0, 0, 2, 200, true))
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Entries()[1].Site != 2 || !l.Entries()[1].Write {
		t.Fatalf("entry = %+v", l.Entries()[1])
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := NewLog()
	l.Record(entry(1, 3, 7, 0, 41, false))
	l.Record(entry(5, 3, 7, 1, 42, true))
	l.Record(entry(9, 4, 0, 2, 43, false))
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Entries(), l.Entries()) {
		t.Fatalf("round trip: %+v vs %+v", got.Entries(), l.Entries())
	}
}

func TestReadLogSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1000000 0 1 2 3 r\n"
	l, err := ReadLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 || l.Entries()[0].Page != 1 {
		t.Fatalf("entries = %+v", l.Entries())
	}
}

func TestReadLogBadLine(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("nonsense\n")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadLog(strings.NewReader("1 2 3 4 5 x\n")); err == nil {
		t.Fatal("expected bad-mode error")
	}
}

func TestHeatCountsAndGaps(t *testing.T) {
	l := NewLog()
	l.Record(entry(0, 1, 0, 0, 1, false))
	l.Record(entry(10, 1, 0, 1, 2, true))
	l.Record(entry(30, 1, 0, 1, 2, true))
	l.Record(entry(100, 1, 1, 0, 1, false))
	hs := Heat(l)
	if len(hs) != 2 {
		t.Fatalf("pages = %d", len(hs))
	}
	h := hs[0] // hottest first: page 0 with 3 requests
	if h.Key != (PageKey{1, 0}) || h.Requests != 3 || h.Reads != 1 || h.Writes != 2 {
		t.Fatalf("heat = %+v", h)
	}
	if h.Sites != 2 {
		t.Fatalf("sites = %d", h.Sites)
	}
	if h.MeanGap != 15*time.Millisecond {
		t.Fatalf("mean gap = %v", h.MeanGap)
	}
	if h.MinGap != 10*time.Millisecond {
		t.Fatalf("min gap = %v", h.MinGap)
	}
	if h.DominantSite != 1 || h.DominantShare < 0.66 || h.DominantShare > 0.67 {
		t.Fatalf("dominant = %d %.2f", h.DominantSite, h.DominantShare)
	}
	// Single-request page: zero gaps.
	if hs[1].MeanGap != 0 || hs[1].MinGap != 0 {
		t.Fatalf("single-request gaps = %+v", hs[1])
	}
}

func TestAdviseMigration(t *testing.T) {
	l := NewLog()
	// Page (1,0): site 2 dominates with 4/5 of requests from 2 sites.
	for i := 0; i < 4; i++ {
		l.Record(entry(i*10, 1, 0, 2, 9, true))
	}
	l.Record(entry(50, 1, 0, 0, 3, false))
	// Page (1,1): only one site requests — no advice (nothing to migrate).
	for i := 0; i < 10; i++ {
		l.Record(entry(i, 1, 1, 0, 3, false))
	}
	adv := AdviseMigration(l, 0.75, 3)
	if len(adv) != 1 {
		t.Fatalf("advice = %+v", adv)
	}
	if adv[0].Key != (PageKey{1, 0}) || adv[0].Target != 2 {
		t.Fatalf("advice = %+v", adv[0])
	}
	if adv[0].Reason == "" {
		t.Fatal("advice needs a reason")
	}
}

func TestAdviseMigrationThresholds(t *testing.T) {
	l := NewLog()
	l.Record(entry(0, 1, 0, 0, 1, false))
	l.Record(entry(1, 1, 0, 1, 1, false))
	// Even split: 50% share, below a 0.75 threshold.
	if adv := AdviseMigration(l, 0.75, 2); len(adv) != 0 {
		t.Fatalf("advice = %+v", adv)
	}
	// minRequests filters low-traffic pages.
	if adv := AdviseMigration(l, 0.4, 5); len(adv) != 0 {
		t.Fatalf("advice = %+v", adv)
	}
}

func TestSuggestDelta(t *testing.T) {
	transfer := 27 * time.Millisecond
	hot := PageHeat{Requests: 10, MeanGap: 40 * time.Millisecond}
	if d := SuggestDelta(hot, transfer); d != 40*time.Millisecond {
		t.Fatalf("hot page Δ = %v", d)
	}
	cold := PageHeat{Requests: 10, MeanGap: time.Second}
	if d := SuggestDelta(cold, transfer); d != 0 {
		t.Fatalf("cold page Δ = %v", d)
	}
	sparse := PageHeat{Requests: 2, MeanGap: time.Millisecond}
	if d := SuggestDelta(sparse, transfer); d != 0 {
		t.Fatalf("sparse page Δ = %v", d)
	}
}

// Property: text round trip preserves arbitrary logs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLog()
		for i := 0; i < int(n%64); i++ {
			l.Record(Entry{
				T:     time.Duration(rng.Int63n(1 << 40)),
				Seg:   rng.Int31n(100),
				Page:  rng.Int31n(256),
				Site:  rng.Int31n(64),
				Pid:   rng.Int31(),
				Write: rng.Intn(2) == 0,
			})
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadLog(&buf)
		if err != nil {
			return false
		}
		if got.Len() != l.Len() {
			return false
		}
		return reflect.DeepEqual(got.Entries(), l.Entries()) || (l.Len() == 0 && got.Len() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Heat request counts always sum to the log length, and
// reads+writes == requests per page.
func TestQuickHeatConsistency(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLog()
		tm := time.Duration(0)
		for i := 0; i < int(n); i++ {
			tm += time.Duration(rng.Intn(1000)) * time.Microsecond
			l.Record(Entry{T: tm, Seg: rng.Int31n(2), Page: rng.Int31n(4), Site: rng.Int31n(3), Write: rng.Intn(2) == 0})
		}
		total := 0
		for _, h := range Heat(l) {
			if h.Reads+h.Writes != h.Requests {
				return false
			}
			if h.DominantShare < 0 || h.DominantShare > 1 {
				return false
			}
			total += h.Requests
		}
		return total == l.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
