// Package trace implements the library-site reference-string log of
// paper §9.0 and the user-level analyses the paper envisions being
// built on it (page heat, inter-request intervals, and a process/page
// migration advisor).
//
// The library logs every page request it receives: the memory location
// (segment and page), a timestamp, the requesting site and process
// identifier, and the access mode. As the paper notes, references from
// sites that already hold valid copies never reach the library and so
// are not recorded — the log captures protocol-visible demand, not raw
// access counts.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Entry is one logged page request.
type Entry struct {
	T     time.Duration // arrival time at the library
	Seg   int32
	Page  int32
	Site  int32
	Pid   int32
	Write bool
}

// Recorder receives log entries; the protocol engine calls Record for
// every request the library processes.
type Recorder interface {
	Record(Entry)
}

// Log is an in-memory Recorder.
type Log struct {
	entries []Entry
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Record appends an entry.
func (l *Log) Record(e Entry) { l.entries = append(l.entries, e) }

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.entries) }

// Entries returns the log contents in arrival order. The slice is the
// log's backing store; callers must not modify it.
func (l *Log) Entries() []Entry { return l.entries }

// Reset discards all entries.
func (l *Log) Reset() { l.entries = l.entries[:0] }

// WriteTo writes the log in the textual interchange format (one entry
// per line: time-ns seg page site pid mode).
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	for _, e := range l.entries {
		mode := "r"
		if e.Write {
			mode = "w"
		}
		n, err := fmt.Fprintf(bw, "%d %d %d %d %d %s\n",
			e.T.Nanoseconds(), e.Seg, e.Page, e.Site, e.Pid, mode)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadLog parses the textual format written by WriteTo.
func ReadLog(r io.Reader) (*Log, error) {
	l := NewLog()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ns int64
		var e Entry
		var mode string
		if _, err := fmt.Sscanf(text, "%d %d %d %d %d %s",
			&ns, &e.Seg, &e.Page, &e.Site, &e.Pid, &mode); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		e.T = time.Duration(ns)
		switch mode {
		case "r":
		case "w":
			e.Write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad mode %q", line, mode)
		}
		l.Record(e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// PageKey identifies a page across segments.
type PageKey struct {
	Seg  int32
	Page int32
}

// PageHeat summarizes demand for one page.
type PageHeat struct {
	Key           PageKey
	Requests      int
	Reads         int
	Writes        int
	Sites         int           // distinct requesting sites
	MeanGap       time.Duration // mean inter-request interval (0 if <2 requests)
	MinGap        time.Duration
	FirstT        time.Duration
	LastT         time.Duration
	BySite        map[int32]int
	DominantSite  int32   // site with the most requests
	DominantShare float64 // its fraction of requests
}

// Heat computes per-page demand summaries, hottest first (by request
// count, ties by key).
func Heat(l *Log) []PageHeat {
	acc := map[PageKey]*PageHeat{}
	last := map[PageKey]time.Duration{}
	for _, e := range l.entries {
		k := PageKey{e.Seg, e.Page}
		h := acc[k]
		if h == nil {
			h = &PageHeat{Key: k, BySite: map[int32]int{}, FirstT: e.T, MinGap: -1}
			acc[k] = h
		} else {
			gap := e.T - last[k]
			h.MeanGap += gap // accumulate; divide later
			if h.MinGap < 0 || gap < h.MinGap {
				h.MinGap = gap
			}
		}
		last[k] = e.T
		h.Requests++
		if e.Write {
			h.Writes++
		} else {
			h.Reads++
		}
		h.BySite[e.Site]++
		h.LastT = e.T
	}
	out := make([]PageHeat, 0, len(acc))
	for _, h := range acc {
		if h.Requests > 1 {
			h.MeanGap /= time.Duration(h.Requests - 1)
		}
		if h.MinGap < 0 {
			h.MinGap = 0
		}
		h.Sites = len(h.BySite)
		best, bestN := int32(-1), -1
		for s, n := range h.BySite {
			if n > bestN || (n == bestN && s < best) {
				best, bestN = s, n
			}
		}
		h.DominantSite = best
		h.DominantShare = float64(bestN) / float64(h.Requests)
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		if out[i].Key.Seg != out[j].Key.Seg {
			return out[i].Key.Seg < out[j].Key.Seg
		}
		return out[i].Key.Page < out[j].Key.Page
	})
	return out
}

// Advice is a migration recommendation for one page: the paper §9.0
// envisions a user-level process analyzing reference strings "as the
// basis for an automatic process migration facility".
type Advice struct {
	Key    PageKey
	Target int32 // site whose processes dominate demand for this page
	Share  float64
	Reason string
}

// AdviseMigration recommends, for every page whose demand is dominated
// by a single remote-heavy site (share >= threshold and at least
// minRequests requests), colocating the page's users — i.e. migrating
// the library/processes toward the dominant site.
func AdviseMigration(l *Log, threshold float64, minRequests int) []Advice {
	var out []Advice
	for _, h := range Heat(l) {
		if h.Requests < minRequests || h.Sites < 2 {
			continue
		}
		if h.DominantShare >= threshold {
			out = append(out, Advice{
				Key:    h.Key,
				Target: h.DominantSite,
				Share:  h.DominantShare,
				Reason: fmt.Sprintf("site %d issues %.0f%% of %d requests", h.DominantSite, h.DominantShare*100, h.Requests),
			})
		}
	}
	return out
}

// SuggestDelta proposes a per-page Δ from the observed inter-request
// gap: pages re-requested faster than the page-transfer time are
// thrashing and deserve a window about as long as the mean gap (§8.0's
// "contention" side guidance); pages with slow demand get Δ=0.
func SuggestDelta(h PageHeat, transferCost time.Duration) time.Duration {
	if h.Requests < 3 || h.MeanGap == 0 {
		return 0
	}
	if h.MeanGap < 4*transferCost {
		// Hot page: grant roughly the observed locality interval.
		return h.MeanGap
	}
	return 0
}
