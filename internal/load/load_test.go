package load

import (
	"sync"
	"testing"
	"time"

	"mirage/internal/app"
)

func TestDeterministicStream(t *testing.T) {
	spec := Spec{Seed: 7, Rate: 500, Duration: 2 * time.Second, Frontends: 3, Skew: SkewZipf}
	collect := func(f int) []Op {
		g := NewGen(spec, f)
		var ops []Op
		for {
			op, ok := g.Next()
			if !ok {
				return ops
			}
			ops = append(ops, op)
		}
	}
	a, b := collect(1), collect(1)
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := collect(2)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("frontends 1 and 2 produced identical streams")
	}
}

func TestPoissonRate(t *testing.T) {
	spec := Spec{Seed: 1, Rate: 1000, Duration: 10 * time.Second, Frontends: 4}
	var n int
	for f := 0; f < spec.Frontends; f++ {
		g := NewGen(spec, f)
		for {
			if _, ok := g.Next(); !ok {
				break
			}
			n++
		}
	}
	want := spec.Rate * spec.Duration.Seconds()
	if float64(n) < 0.9*want || float64(n) > 1.1*want {
		t.Fatalf("generated %d arrivals, want about %.0f", n, want)
	}
}

func TestOpMix(t *testing.T) {
	spec := Spec{Seed: 3, Rate: 2000, Duration: 10 * time.Second,
		ReadFrac: 0.6, DeleteFrac: 0.1, CASFrac: 0.1}
	counts := map[OpKind]int{}
	g := NewGen(spec, 0)
	n := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		counts[op.Kind]++
		n++
	}
	frac := func(k OpKind) float64 { return float64(counts[k]) / float64(n) }
	for k, want := range map[OpKind]float64{OpGet: 0.6, OpDelete: 0.1, OpCAS: 0.1, OpPut: 0.2} {
		if got := frac(k); got < want-0.05 || got > want+0.05 {
			t.Errorf("%v fraction %.3f, want about %.2f", k, got, want)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	spec := Spec{Seed: 5, Rate: 5000, Duration: 4 * time.Second, Keys: 1000, Skew: SkewZipf}
	counts := map[uint64]int{}
	g := NewGen(spec, 0)
	n := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if int(op.Key) >= spec.Keys {
			t.Fatalf("key %d outside keyspace %d", op.Key, spec.Keys)
		}
		counts[op.Key]++
		n++
	}
	// Under Zipf(1.2) the hottest key takes a large multiple of the
	// uniform share 1/Keys.
	var max int
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 20*float64(n)/float64(spec.Keys) {
		t.Fatalf("hottest key got %d of %d ops — not skewed", max, n)
	}
}

func TestHotspotShifts(t *testing.T) {
	spec := Spec{Seed: 9, Rate: 2000, Duration: 4 * time.Second, Keys: 4096,
		Skew: SkewHotspot, HotFrac: 1.0, HotKeys: 64, HotShift: time.Second}
	g := NewGen(spec, 0)
	epochKeys := map[int64]map[uint64]bool{}
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		e := int64(op.T / spec.HotShift)
		if epochKeys[e] == nil {
			epochKeys[e] = map[uint64]bool{}
		}
		epochKeys[e][op.Key] = true
	}
	if len(epochKeys) < 3 {
		t.Fatalf("only %d epochs observed", len(epochKeys))
	}
	// Each epoch draws from a window of HotKeys keys; windows of
	// adjacent epochs must differ.
	for e, keys := range epochKeys {
		if len(keys) > spec.HotKeys {
			t.Fatalf("epoch %d touched %d distinct keys, window is %d", e, len(keys), spec.HotKeys)
		}
	}
	same := true
	for k := range epochKeys[0] {
		if !epochKeys[1][k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("hot window did not move between epochs 0 and 1")
	}
}

func TestReportRung(t *testing.T) {
	spec := Spec{Rate: 100, Duration: time.Second, QueueCap: 8}
	rep := NewReport()
	for i := 0; i < 90; i++ {
		rep.Admit()
		rep.Done(time.Millisecond, i%2 == 0, nil)
	}
	rep.Shed()
	rep.ObserveQueue(5)
	rep.ObserveQueue(3)
	g := rep.Rung(spec)
	if g.Offered != 91 || g.Admitted != 90 || g.Shed != 1 || g.Completed != 90 {
		t.Fatalf("accounting wrong: %+v", g)
	}
	if g.QueueMax != 5 {
		t.Fatalf("QueueMax = %d, want 5", g.QueueMax)
	}
	if !g.LivenessOK {
		t.Fatal("liveness should hold: all admitted completed, queue bounded")
	}
	if g.Goodput != 90 {
		t.Fatalf("goodput = %v, want 90", g.Goodput)
	}
	if g.Latency.P50 <= 0 {
		t.Fatalf("latency summary empty: %+v", g.Latency)
	}
	if !g.Saturated(spec) {
		t.Fatal("a shed arrival must mark the rung saturated")
	}

	// An incomplete admitted request breaks liveness.
	rep2 := NewReport()
	rep2.Admit()
	g2 := rep2.Rung(spec)
	if g2.LivenessOK {
		t.Fatal("admitted-but-incomplete must break liveness")
	}
}

func TestKneeAndSLO(t *testing.T) {
	spec := Spec{Rate: 100, Duration: time.Second, QueueCap: 8}
	ok := Rung{Offered: 100, Admitted: 100, Completed: 100, Goodput: 100, LivenessOK: true}
	sat := Rung{Offered: 200, Admitted: 150, Shed: 50, Completed: 150, Goodput: 150, LivenessOK: true}
	rungs := []Rung{ok, ok, sat}
	if k := Knee(rungs, spec); k != 2 {
		t.Fatalf("knee = %d, want 2", k)
	}
	if k := Knee([]Rung{ok, ok}, spec); k != -1 {
		t.Fatalf("knee of healthy ladder = %d, want -1", k)
	}
	slow := ok
	slow.Latency.P99 = int64(80 * time.Millisecond)
	if i := FirstSLOViolation([]Rung{ok, slow, sat}, 50*time.Millisecond); i != 1 {
		t.Fatalf("first SLO violation = %d, want 1", i)
	}
	if i := FirstSLOViolation([]Rung{ok}, 50*time.Millisecond); i != -1 {
		t.Fatalf("SLO violation in healthy ladder = %d, want -1", i)
	}
}

func TestRunLiveBelowSaturation(t *testing.T) {
	spec := Spec{Seed: 11, Rate: 2000, Duration: 300 * time.Millisecond,
		Frontends: 2, Workers: 8, QueueCap: 64}
	g := RunLive(spec, func(f int, op Op) (bool, error) {
		time.Sleep(50 * time.Microsecond)
		return true, nil
	})
	if g.Offered == 0 {
		t.Fatal("no arrivals generated")
	}
	if !g.LivenessOK {
		t.Fatalf("liveness broken below saturation: %+v", g)
	}
	if g.Shed != 0 {
		t.Fatalf("shed %d below saturation", g.Shed)
	}
	if g.Completed != g.Admitted {
		t.Fatalf("completed %d != admitted %d", g.Completed, g.Admitted)
	}
}

func TestRunLiveSheds(t *testing.T) {
	// One worker at 20ms per op can absorb 50 req/s; offer 2000.
	spec := Spec{Seed: 13, Rate: 2000, Duration: 200 * time.Millisecond,
		Frontends: 1, Workers: 1, QueueCap: 4}
	g := RunLive(spec, func(f int, op Op) (bool, error) {
		time.Sleep(20 * time.Millisecond)
		return true, nil
	})
	if g.Shed == 0 {
		t.Fatalf("expected shed load at 40x overload: %+v", g)
	}
	if !g.Saturated(spec) {
		t.Fatal("overloaded rung must report saturated")
	}
	// Bounded queues: even overloaded, everything admitted completes.
	if g.Completed != g.Admitted {
		t.Fatalf("completed %d != admitted %d", g.Completed, g.Admitted)
	}
	if g.QueueMax > int64(spec.QueueCap) {
		t.Fatalf("queue high-water %d above cap %d", g.QueueMax, spec.QueueCap)
	}
}

// memSeg is an in-memory app.Segment for exercising Execute without a
// cluster.
type memSeg struct {
	mu sync.Mutex
	b  []byte
}

func (m *memSeg) ReadAt(b []byte, off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(b, m.b[off:])
	return nil
}

func (m *memSeg) WriteAt(b []byte, off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.b[off:], b)
	return nil
}

func (m *memSeg) TestAndSet(off int) (byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.b[off]
	m.b[off] = 1
	return old, nil
}

func (m *memSeg) Clear(off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.b[off] = 0
	return nil
}

func newTestStore(t *testing.T, cfg app.Config) *app.Store {
	t.Helper()
	cfg = cfg.WithDefaults()
	segs := make([]app.Segment, cfg.Shards)
	for i := range segs {
		seg := &memSeg{b: make([]byte, cfg.ShardBytes())}
		if err := app.Format(seg, cfg, i); err != nil {
			t.Fatal(err)
		}
		segs[i] = seg
	}
	st, err := app.New(cfg, segs, app.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestExecuteAgainstStore(t *testing.T) {
	cfg := app.Config{Shards: 4, SlotsPerShard: 256}
	st := newTestStore(t, cfg)
	spec := Spec{Seed: 17, Rate: 3000, Duration: 2 * time.Second, Keys: 200, ValBytes: 24}
	g := NewGen(spec, 0)
	n, storeOps := 0, 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if _, err := Execute(st, spec, op); err != nil {
			t.Fatalf("op %d (%v key %d): %v", n, op.Kind, op.Key, err)
		}
		n++
		if op.Kind == OpCAS {
			storeOps += 2 // Execute issues a Get then the CAS
		} else {
			storeOps++
		}
	}
	tot := st.Stats().Total()
	if tot.Ops() != int64(storeOps) {
		t.Fatalf("store saw %d ops, expected %d from %d load ops", tot.Ops(), storeOps, n)
	}
	if tot.Puts == 0 || tot.Gets == 0 || tot.CASes == 0 {
		t.Fatalf("mix not exercised: %+v", tot)
	}
}

func TestRunLiveOverStore(t *testing.T) {
	cfg := app.Config{Shards: 8, SlotsPerShard: 256}
	st := newTestStore(t, cfg)
	spec := Spec{Seed: 19, Rate: 4000, Duration: 200 * time.Millisecond,
		Frontends: 2, Workers: 4, QueueCap: 128, Keys: 500, ValBytes: 24}
	g := RunLive(spec, func(f int, op Op) (bool, error) {
		return Execute(st, spec, op)
	})
	if g.Errors != 0 {
		t.Fatalf("store errors under load: %+v", g)
	}
	if !g.LivenessOK {
		t.Fatalf("liveness broken: %+v", g)
	}
	// CAS load ops issue two store calls, so store ops ≥ completions.
	if got := st.Stats().Total().Ops(); got < g.Completed {
		t.Fatalf("store ops %d < completed %d", got, g.Completed)
	}
}
