package load

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"mirage/internal/obs"
	"mirage/internal/quantile"
)

// Report accumulates one rung's outcome. Both runners feed it — the
// live runner from worker goroutines (its methods are atomic), the
// simulator from cooperative tasks. Latency is measured from the op's
// scheduled arrival, not its dequeue, so queueing delay is charged to
// the system (no coordinated omission).
type Report struct {
	admitted  atomic.Int64
	shed      atomic.Int64
	completed atomic.Int64
	errs      atomic.Int64
	hits      atomic.Int64
	qmax      atomic.Int64
	lat       *obs.Hist
}

// NewReport returns an empty report (latency buckets start at 1µs).
func NewReport() *Report {
	return &Report{lat: obs.NewHist(int64(time.Microsecond))}
}

// Admit records an arrival accepted into a frontend queue.
func (r *Report) Admit() { r.admitted.Add(1) }

// Shed records an arrival dropped because its queue was full.
func (r *Report) Shed() { r.shed.Add(1) }

// ObserveQueue records a frontend queue depth sample; the rung keeps
// the high-water mark.
func (r *Report) ObserveQueue(depth int) {
	for {
		cur := r.qmax.Load()
		if int64(depth) <= cur || r.qmax.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// Done records a completed request: its scheduled-arrival→completion
// latency, whether it hit (found its key), and any error.
func (r *Report) Done(lat time.Duration, hit bool, err error) {
	r.completed.Add(1)
	if lat < 0 {
		lat = 0
	}
	r.lat.Observe(int64(lat))
	if hit {
		r.hits.Add(1)
	}
	if err != nil {
		r.errs.Add(1)
	}
}

// Rung is one ladder step's scored outcome.
type Rung struct {
	// Rate is the offered arrival rate (req/s).
	Rate float64 `json:"rate"`
	// Offered counts generated arrivals (Admitted + Shed).
	Offered int64 `json:"offered"`
	// Admitted counts arrivals accepted into a queue.
	Admitted int64 `json:"admitted"`
	// Shed counts arrivals dropped at a full queue.
	Shed int64 `json:"shed"`
	// Completed counts requests that finished service.
	Completed int64 `json:"completed"`
	// Errors counts completed requests that returned an error.
	Errors int64 `json:"errors"`
	// Hits counts completed requests that found their key.
	Hits int64 `json:"hits"`
	// QueueMax is the observed queue-depth high-water mark.
	QueueMax int64 `json:"queue_max"`
	// Goodput is completions per offered second (req/s).
	Goodput float64 `json:"goodput"`
	// Latency summarizes scheduled-arrival→completion time (ns).
	Latency quantile.Summary `json:"latency_ns"`
	// MeanLatency is the mean of the same distribution (ns).
	MeanLatency int64 `json:"mean_latency_ns"`
	// LivenessOK reports the liveness invariant: every admitted
	// request completed, and queue depth stayed within its bound.
	LivenessOK bool `json:"liveness_ok"`
}

// Rung scores the report against the spec that produced it.
func (r *Report) Rung(spec Spec) Rung {
	spec = spec.WithDefaults()
	g := Rung{
		Rate:      spec.Rate,
		Admitted:  r.admitted.Load(),
		Shed:      r.shed.Load(),
		Completed: r.completed.Load(),
		Errors:    r.errs.Load(),
		Hits:      r.hits.Load(),
		QueueMax:  r.qmax.Load(),
		Latency:   r.lat.Summary(),
	}
	g.Offered = g.Admitted + g.Shed
	if secs := spec.Duration.Seconds(); secs > 0 {
		g.Goodput = float64(g.Completed) / secs
	}
	g.MeanLatency = int64(r.lat.Mean())
	g.LivenessOK = g.Admitted == g.Completed && g.QueueMax <= int64(spec.QueueCap)
	return g
}

// Saturated reports whether a rung shows saturation: shed arrivals, a
// broken liveness invariant, or goodput below 90% of what was actually
// offered (Offered/Duration, so a short stream is judged against
// itself, not the nominal rate).
func (g Rung) Saturated(spec Spec) bool {
	spec = spec.WithDefaults()
	if g.Shed > 0 || !g.LivenessOK {
		return true
	}
	offered := float64(g.Offered) / spec.Duration.Seconds()
	return g.Goodput < 0.9*offered
}

// Knee returns the index of the first saturated rung in ladder order,
// or -1 if every rung kept up. The rung before the knee is the highest
// sustainable rate the ladder demonstrated.
func Knee(rungs []Rung, spec Spec) int {
	for i, g := range rungs {
		if g.Saturated(spec) {
			return i
		}
	}
	return -1
}

// FirstSLOViolation returns the index of the first rung whose p99
// exceeds the SLO, or -1 if none does.
func FirstSLOViolation(rungs []Rung, slo time.Duration) int {
	for i, g := range rungs {
		if g.Latency.P99 > int64(slo) {
			return i
		}
	}
	return -1
}

// WriteTable renders a ladder as an aligned table.
func WriteTable(w io.Writer, rungs []Rung) {
	fmt.Fprintf(w, "%9s %9s %7s %9s %9s %6s %10s %10s %10s %5s %5s\n",
		"rate", "offered", "shed", "completed", "goodput", "qmax", "p50", "p99", "p999", "errs", "live")
	for _, g := range rungs {
		fmt.Fprintf(w, "%9.0f %9d %7d %9d %9.0f %6d %10v %10v %10v %5d %5v\n",
			g.Rate, g.Offered, g.Shed, g.Completed, g.Goodput, g.QueueMax,
			time.Duration(g.Latency.P50), time.Duration(g.Latency.P99), time.Duration(g.Latency.P999),
			g.Errors, g.LivenessOK)
	}
}
