package load

import (
	"errors"
	"sync"
	"time"

	"mirage/internal/app"
)

// Execute applies one generated op to a store frontend and folds the
// outcome into (hit, err) for the report: a miss on Get/Delete is a
// valid outcome, not an error, and a CAS of an absent key becomes a
// compare-and-create. A lost CAS race reports hit (the key exists) with
// no error — the conflict is attributed by the store's own counters.
func Execute(st *app.Store, spec Spec, op Op) (hit bool, err error) {
	spec = spec.WithDefaults()
	key := KeyBytes(op.Key)
	switch op.Kind {
	case OpGet:
		_, err := st.Get(key)
		if errors.Is(err, app.ErrNoKey) {
			return false, nil
		}
		return err == nil, err
	case OpPut:
		return false, st.Put(key, ValBytes(op.Key, spec.ValBytes))
	case OpDelete:
		err := st.Delete(key)
		if errors.Is(err, app.ErrNoKey) {
			return false, nil
		}
		return err == nil, err
	default: // OpCAS
		cur, err := st.Get(key)
		if errors.Is(err, app.ErrNoKey) {
			_, err := st.CAS(key, nil, ValBytes(op.Key, spec.ValBytes))
			return false, err
		}
		if err != nil {
			return false, err
		}
		_, err = st.CAS(key, cur, ValBytes(op.Key, spec.ValBytes))
		return true, err
	}
}

// RunLive drives one rung open loop on the wall clock: per frontend, a
// dispatcher goroutine releases ops at their scheduled Poisson arrival
// times into a bounded queue (cap Spec.QueueCap; a full queue sheds),
// and Spec.Workers goroutines drain it through do. It blocks until the
// offered window ends and every admitted op completes, then scores the
// rung. do is called concurrently; latency is charged from each op's
// scheduled arrival.
func RunLive(spec Spec, do func(frontend int, op Op) (hit bool, err error)) Rung {
	spec = spec.WithDefaults()
	rep := NewReport()
	start := time.Now()
	var wg sync.WaitGroup
	for f := 0; f < spec.Frontends; f++ {
		q := make(chan Op, spec.QueueCap)
		for w := 0; w < spec.Workers; w++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				for op := range q {
					hit, err := do(f, op)
					rep.Done(time.Since(start)-op.T, hit, err)
				}
			}(f)
		}
		wg.Add(1)
		go func(f int, q chan Op) {
			defer wg.Done()
			defer close(q)
			g := NewGen(spec, f)
			for {
				op, ok := g.Next()
				if !ok {
					return
				}
				if d := op.T - time.Since(start); d > 0 {
					time.Sleep(d)
				}
				select {
				case q <- op:
					rep.Admit()
					rep.ObserveQueue(len(q))
				default:
					rep.Shed()
				}
			}
		}(f, q)
	}
	wg.Wait()
	return rep.Rung(spec)
}
