// Package load is Mirage's deterministic open-loop workload generator:
// the traffic side of the service-level evaluation (EXPERIMENTS.md
// E19).
//
// Open loop means arrivals come from a seeded Poisson process on a
// fixed schedule, regardless of how fast the system absorbs them — the
// generator never waits for a response before offering the next
// request, so saturation shows up as queueing and shed load instead of
// silently throttled throughput (the coordinated-omission trap a
// closed-loop driver falls into). Admission queues are bounded: an
// arrival that finds its frontend's queue full is shed and counted,
// never buffered without limit.
//
// Everything is derived from Spec.Seed: per-frontend arrival times,
// key choices (uniform, Zipf, or a shifting hotspot), operation mix,
// and value bytes. Two runs with one Spec offer byte-identical op
// streams — on the virtual-clock simulator the whole rung is
// bit-reproducible; live, the schedule is identical and only service
// times vary.
//
// The liveness invariant the reports check (Rung.LivenessOK): every
// admitted request completes, and queue depth never exceeds its bound.
// Below the saturation knee a healthy system also sheds nothing.
package load

import (
	"fmt"
	"math/rand"
	"time"
)

// Skew selects the key-popularity distribution.
type Skew int

// The key skew vocabulary.
const (
	// SkewUniform draws keys uniformly over the keyspace.
	SkewUniform Skew = iota
	// SkewZipf draws keys Zipf-distributed (parameter Spec.ZipfS) —
	// the classic few-hot-keys shape.
	SkewZipf
	// SkewHotspot concentrates Spec.HotFrac of the traffic on a window
	// of Spec.HotKeys keys that jumps elsewhere every Spec.HotShift —
	// the migration-bait workload ROADMAP item 1 needs.
	SkewHotspot
)

var skewNames = map[Skew]string{SkewUniform: "uniform", SkewZipf: "zipf", SkewHotspot: "hot"}

func (s Skew) String() string {
	if n, ok := skewNames[s]; ok {
		return n
	}
	return fmt.Sprintf("skew(%d)", int(s))
}

// ParseSkew resolves a skew name (uniform | zipf | hot).
func ParseSkew(s string) (Skew, error) {
	for k, n := range skewNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("load: unknown skew %q (uniform | zipf | hot)", s)
}

// OpKind is one request type.
type OpKind uint8

// The operation vocabulary, a session-store mix.
const (
	// OpGet reads a key (a miss is a valid outcome, not an error).
	OpGet OpKind = iota
	// OpPut inserts or updates a key.
	OpPut
	// OpDelete removes a key (a miss is a valid outcome).
	OpDelete
	// OpCAS reads the current value and conditionally replaces it —
	// the optimistic session-update shape.
	OpCAS
)

var opNames = [...]string{OpGet: "get", OpPut: "put", OpDelete: "delete", OpCAS: "cas"}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one generated request: a scheduled arrival time (relative to
// rung start) plus the operation itself.
type Op struct {
	T    time.Duration
	Key  uint64
	Kind OpKind
}

// Spec parameterizes one rung of offered load. The zero value is not
// runnable; call WithDefaults (Rate and Duration always need explicit
// values).
type Spec struct {
	// Seed drives every random draw; same seed, same op streams.
	Seed int64
	// Rate is the aggregate offered arrival rate in requests/second,
	// split evenly over the frontends.
	Rate float64
	// Duration is the offered-load window; arrivals stop after it.
	Duration time.Duration
	// Frontends is the number of independent open-loop streams —
	// one per serving site (default 1).
	Frontends int
	// Workers is the service concurrency per frontend (default 4).
	Workers int
	// QueueCap bounds each frontend's admission queue (default 64);
	// arrivals beyond it are shed.
	QueueCap int
	// Keys is the keyspace size (default 4096).
	Keys int
	// ReadFrac is the fraction of ops that are Gets (default 0.75).
	ReadFrac float64
	// DeleteFrac is the fraction of ops that are Deletes (default
	// 0.02).
	DeleteFrac float64
	// CASFrac is the fraction of ops that are CAS updates (default
	// 0.05). The remainder after reads/deletes/CAS are Puts.
	CASFrac float64
	// ValBytes is the stored value size (default 32).
	ValBytes int
	// Skew selects the key distribution (default SkewUniform).
	Skew Skew
	// ZipfS is the Zipf exponent for SkewZipf (default 1.2; must be
	// > 1).
	ZipfS float64
	// HotFrac is the probability a SkewHotspot op lands in the hot
	// window (default 0.9).
	HotFrac float64
	// HotKeys is the hot-window size for SkewHotspot (default
	// Keys/64, at least 1).
	HotKeys int
	// HotShift is the hot-window rotation period for SkewHotspot
	// (default Duration/4: the hotspot moves three times per rung).
	HotShift time.Duration
	// SLO is the p99 latency objective the findings report against
	// (default 50ms).
	SLO time.Duration
	// OpCost is the per-request CPU cost a simulated worker charges
	// before touching the store, modeling request parsing and business
	// logic (default 0; ignored by the live runner, where real CPU
	// time is already being spent).
	OpCost time.Duration
}

// WithDefaults returns the spec with zero fields defaulted.
func (s Spec) WithDefaults() Spec {
	if s.Frontends == 0 {
		s.Frontends = 1
	}
	if s.Workers == 0 {
		s.Workers = 4
	}
	if s.QueueCap == 0 {
		s.QueueCap = 64
	}
	if s.Keys == 0 {
		s.Keys = 4096
	}
	if s.ReadFrac == 0 {
		s.ReadFrac = 0.75
	}
	if s.DeleteFrac == 0 {
		s.DeleteFrac = 0.02
	}
	if s.CASFrac == 0 {
		s.CASFrac = 0.05
	}
	if s.ValBytes == 0 {
		s.ValBytes = 32
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.2
	}
	if s.HotFrac == 0 {
		s.HotFrac = 0.9
	}
	if s.HotKeys == 0 {
		s.HotKeys = s.Keys / 64
		if s.HotKeys < 1 {
			s.HotKeys = 1
		}
	}
	if s.HotShift == 0 {
		s.HotShift = s.Duration / 4
		if s.HotShift <= 0 {
			s.HotShift = time.Second
		}
	}
	if s.SLO == 0 {
		s.SLO = 50 * time.Millisecond
	}
	return s
}

// Gen is one frontend's deterministic op stream: Poisson arrivals at
// Rate/Frontends with the spec's key skew and op mix.
type Gen struct {
	spec Spec
	rnd  *rand.Rand
	zipf *rand.Zipf
	t    time.Duration
	rate float64 // this frontend's arrival rate
}

// NewGen returns frontend f's stream for the spec. Streams for
// different frontends (and different seeds) are independent.
func NewGen(spec Spec, f int) *Gen {
	spec = spec.WithDefaults()
	// Golden-ratio mixing keeps per-frontend streams decorrelated
	// while staying a pure function of (Seed, f).
	src := rand.NewSource(spec.Seed ^ int64(uint64(f+1)*0x9E3779B97F4A7C15))
	g := &Gen{spec: spec, rnd: rand.New(src), rate: spec.Rate / float64(spec.Frontends)}
	if spec.Skew == SkewZipf {
		g.zipf = rand.NewZipf(g.rnd, spec.ZipfS, 1, uint64(spec.Keys-1))
	}
	return g
}

// Next returns the stream's next op, or ok=false once the offered
// window is exhausted.
func (g *Gen) Next() (op Op, ok bool) {
	g.t += time.Duration(g.rnd.ExpFloat64() / g.rate * float64(time.Second))
	if g.t > g.spec.Duration {
		return Op{}, false
	}
	op.T = g.t
	op.Key = g.key()
	op.Kind = g.kind()
	return op, true
}

func (g *Gen) key() uint64 {
	s := g.spec
	switch s.Skew {
	case SkewZipf:
		return g.zipf.Uint64()
	case SkewHotspot:
		epoch := int64(g.t / s.HotShift)
		// The window start jumps pseudo-randomly but deterministically
		// with each epoch.
		start := uint64(epoch*7919) * uint64(s.HotKeys) % uint64(s.Keys)
		if g.rnd.Float64() < s.HotFrac {
			return (start + uint64(g.rnd.Intn(s.HotKeys))) % uint64(s.Keys)
		}
		return uint64(g.rnd.Intn(s.Keys))
	default:
		return uint64(g.rnd.Intn(s.Keys))
	}
}

func (g *Gen) kind() OpKind {
	u := g.rnd.Float64()
	s := g.spec
	switch {
	case u < s.ReadFrac:
		return OpGet
	case u < s.ReadFrac+s.DeleteFrac:
		return OpDelete
	case u < s.ReadFrac+s.DeleteFrac+s.CASFrac:
		return OpCAS
	default:
		return OpPut
	}
}

// KeyBytes renders a key id as the store key ("u%07d" — a fixed-width
// session-id shape).
func KeyBytes(k uint64) []byte {
	return []byte(fmt.Sprintf("u%07d", k))
}

// ValBytes builds the deterministic value body for a key: n bytes
// derived from the key id, so a later read can attribute a value to
// its writer key.
func ValBytes(k uint64, n int) []byte {
	b := make([]byte, n)
	x := k*2654435761 + 1
	for i := range b {
		b[i] = byte(x >> (8 * uint(i%8)))
	}
	return b
}
