package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"mirage/internal/sim"
	"mirage/internal/vaxmodel"
)

func newNet(t *testing.T, sites int) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel()
	n := New(k, sites)
	return k, n
}

func TestShortMessageElapsed(t *testing.T) {
	k, n := newNet(t, 2)
	var at sim.Time
	n.Bind(0, func(m Message) {})
	n.Bind(1, func(m Message) { at = k.Now() })
	n.Send(Message{From: 0, To: 1, Size: 0, Payload: "hi"})
	k.Run()
	want := sim.Time(2 * vaxmodel.ShortSideElapsed)
	if at != want {
		t.Fatalf("short message delivered at %v, want %v", at, want)
	}
}

func TestShortRoundTripIs12point9ms(t *testing.T) {
	k, n := newNet(t, 2)
	var done sim.Time
	n.Bind(1, func(m Message) { n.Send(Message{From: 1, To: 0}) })
	n.Bind(0, func(m Message) { done = k.Now() })
	n.Send(Message{From: 0, To: 1})
	k.Run()
	rtt := done.Duration()
	if rtt < 12500*time.Microsecond || rtt > 13*time.Millisecond {
		t.Fatalf("RTT = %v, paper measured 12.9 ms", rtt)
	}
}

func TestPagePlusReplyIs21point5ms(t *testing.T) {
	k, n := newNet(t, 2)
	var done sim.Time
	n.Bind(1, func(m Message) { n.Send(Message{From: 1, To: 0}) })
	n.Bind(0, func(m Message) { done = k.Now() })
	n.Send(Message{From: 0, To: 1, Size: 1024})
	k.Run()
	e := done.Duration()
	if e < 21*time.Millisecond || e > 22*time.Millisecond {
		t.Fatalf("1KB+short = %v, paper measured 21.5 ms", e)
	}
}

func TestPerCircuitFIFO(t *testing.T) {
	k, n := newNet(t, 2)
	var got []int
	n.Bind(0, func(m Message) {})
	n.Bind(1, func(m Message) { got = append(got, m.Payload.(int)) })
	// Mix of sizes: a large message first must still arrive first.
	n.Send(Message{From: 0, To: 1, Size: 1024, Payload: 1})
	n.Send(Message{From: 0, To: 1, Size: 0, Payload: 2})
	n.Send(Message{From: 0, To: 1, Size: 1024, Payload: 3})
	k.Run()
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("delivery order = %v, want [1 2 3]", got)
		}
	}
}

func TestSenderSerialization(t *testing.T) {
	k, n := newNet(t, 3)
	arrivals := map[int]sim.Time{}
	n.Bind(0, func(m Message) {})
	n.Bind(1, func(m Message) { arrivals[m.Payload.(int)] = k.Now() })
	n.Bind(2, func(m Message) { arrivals[m.Payload.(int)] = k.Now() })
	n.Send(Message{From: 0, To: 1, Payload: 1})
	n.Send(Message{From: 0, To: 2, Payload: 2})
	k.Run()
	// First: tx [0,3.2], rx [3.2,6.4]. Second: tx [3.2,6.4], rx [6.4,9.6].
	if arrivals[1] != sim.Time(6400*time.Microsecond) {
		t.Fatalf("first arrival %v", arrivals[1])
	}
	if arrivals[2] != sim.Time(9600*time.Microsecond) {
		t.Fatalf("second arrival %v, want 9.6ms (tx serialized)", arrivals[2])
	}
}

func TestReceiverSerialization(t *testing.T) {
	k, n := newNet(t, 3)
	var arrivals []sim.Time
	n.Bind(1, func(m Message) {})
	n.Bind(2, func(m Message) {})
	n.Bind(0, func(m Message) { arrivals = append(arrivals, k.Now()) })
	// Two senders transmit simultaneously to site 0; receptions must
	// serialize on site 0's interface.
	n.Send(Message{From: 1, To: 0})
	n.Send(Message{From: 2, To: 0})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if arrivals[0] != sim.Time(6400*time.Microsecond) {
		t.Fatalf("first %v", arrivals[0])
	}
	if arrivals[1] != sim.Time(9600*time.Microsecond) {
		t.Fatalf("second %v, want serialized rx", arrivals[1])
	}
}

func TestLoopbackIsFreeAndCounted(t *testing.T) {
	k, n := newNet(t, 2)
	var at sim.Time
	delivered := false
	n.Bind(0, func(m Message) { at, delivered = k.Now(), true })
	n.Bind(1, func(m Message) {})
	k.After(5*time.Millisecond, func() {
		n.Send(Message{From: 0, To: 0, Payload: "local"})
	})
	k.Run()
	if !delivered {
		t.Fatal("loopback not delivered")
	}
	if at != sim.Time(5*time.Millisecond) {
		t.Fatalf("loopback delivered at %v, want 5ms (no network charge)", at)
	}
	s := n.Stats()
	if s.Loopback != 1 || s.Sent != 0 || s.Delivered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsCounters(t *testing.T) {
	k, n := newNet(t, 2)
	n.Bind(0, func(m Message) {})
	n.Bind(1, func(m Message) {})
	n.Send(Message{From: 0, To: 1, Size: 1024})
	n.Send(Message{From: 0, To: 1, Size: 0})
	n.Send(Message{From: 1, To: 0, Size: 64})
	k.Run()
	s := n.Stats()
	if s.Sent != 3 || s.Delivered != 3 {
		t.Fatalf("sent/delivered = %d/%d", s.Sent, s.Delivered)
	}
	if s.LargeMsgs != 1 || s.ShortMsgs != 2 {
		t.Fatalf("large/short = %d/%d", s.LargeMsgs, s.ShortMsgs)
	}
	if s.Bytes != 1088 {
		t.Fatalf("bytes = %d", s.Bytes)
	}
	n.ResetStats()
	if n.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestDelayHook(t *testing.T) {
	k, n := newNet(t, 2)
	n.Delay = func(m Message) time.Duration { return 100 * time.Millisecond }
	var at sim.Time
	n.Bind(0, func(m Message) {})
	n.Bind(1, func(m Message) { at = k.Now() })
	n.Send(Message{From: 0, To: 1})
	k.Run()
	want := sim.Time(100*time.Millisecond + 2*vaxmodel.ShortSideElapsed)
	if at != want {
		t.Fatalf("delayed delivery at %v, want %v", at, want)
	}
}

func TestDoubleBindPanics(t *testing.T) {
	_, n := newNet(t, 1)
	n.Bind(0, func(Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double bind")
		}
	}()
	n.Bind(0, func(Message) {})
}

func TestSendOutOfRangePanics(t *testing.T) {
	_, n := newNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range site")
		}
	}()
	n.Send(Message{From: 0, To: 5})
}

func TestDeliverToUnboundPanics(t *testing.T) {
	k, n := newNet(t, 2)
	n.Bind(0, func(Message) {})
	n.Send(Message{From: 0, To: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic delivering to unbound site")
		}
	}()
	k.Run()
}

// Property: per-circuit FIFO holds for arbitrary message size sequences
// and interleaved circuits.
func TestQuickFIFOAllCircuits(t *testing.T) {
	f := func(sizes []uint16, toBits []bool) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		k := sim.NewKernel()
		n := New(k, 3)
		got := map[SiteID][]int{}
		for s := SiteID(0); s < 3; s++ {
			s := s
			n.Bind(s, func(m Message) { got[s] = append(got[s], m.Payload.(int)) })
		}
		want := map[SiteID][]int{}
		for i, sz := range sizes {
			to := SiteID(1)
			if i < len(toBits) && toBits[i] {
				to = 2
			}
			n.Send(Message{From: 0, To: to, Size: int(sz % 2048), Payload: i})
			want[to] = append(want[to], i)
		}
		k.Run()
		for s, w := range want {
			g := got[s]
			if len(g) != len(w) {
				return false
			}
			for i := range w {
				if g[i] != w[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
