// Package netsim models the Locus communication substrate of the
// Mirage prototype: point-to-point virtual circuits over a 10 Mbit
// Ethernet connecting a small number of sites.
//
// The cost model follows the paper's Table 3 accounting: each message
// is charged a transmission-elapsed interval at the sending site's
// network interface and a reception-elapsed interval at the receiving
// site's interface, both functions of the payload size
// (vaxmodel.MsgSideElapsed). Interfaces are serially reusable — a NIC
// transmits (or receives) one message at a time — which preserves the
// per-circuit FIFO ordering Locus guarantees and produces realistic
// queueing when protocol traffic bunches up.
//
// Delivery is reliable; Locus maintained virtual circuits beneath its
// network messages. For failure-injection tests a per-network Delay
// hook can stretch individual deliveries.
package netsim

import (
	"fmt"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/sim"
	"mirage/internal/vaxmodel"
)

// SiteID identifies a site (machine) on the network. Sites are
// numbered 0..n-1.
type SiteID int

// Message is a network message in flight.
type Message struct {
	From, To SiteID
	Size     int // payload bytes; 0 means a short (bufferless) message
	Payload  any // protocol-level content, opaque to the network
}

// Handler receives delivered messages at a site. It runs in kernel
// (event) context at the instant reception-elapsed completes.
type Handler func(m Message)

// Stats are cumulative traffic counters.
type Stats struct {
	Sent       int // messages handed to the network, excluding loopback
	Delivered  int // messages delivered to handlers, excluding loopback
	Loopback   int // messages where From == To (no network cost)
	ShortMsgs  int // delivered messages with Size < LargeThreshold
	LargeMsgs  int // delivered messages with Size >= LargeThreshold
	Bytes      int // cumulative payload bytes delivered
	Dropped    int // messages lost to the fault hook
	Duplicated int // extra copies delivered by the fault hook
	TxBusy     time.Duration
	RxBusy     time.Duration
}

// Fault is the injection verdict for one message, produced by the
// Inject hook (internal/chaos adapts its Injector to it). A dropped
// message still charges the sender's transmitter — the bits went out,
// the wire ate them — but never reaches the receiver. Each duplicate
// is a full extra transmission. Delay stretches propagation between
// the sender's tx-done and the receiver's interface, which can reorder
// messages on the same circuit.
type Fault struct {
	Drop  bool
	Dup   int // extra copies to deliver
	Delay time.Duration
}

// LargeThreshold classifies messages for Stats: the paper counts
// 1024-byte page-carrying responses as "large" and the rest as short.
const LargeThreshold = 512

type nic struct {
	txBusyUntil sim.Time
	rxBusyUntil sim.Time
	handler     Handler
}

// Network is a simulated Ethernet connecting n sites.
type Network struct {
	k     *sim.Kernel
	nics  []nic
	stats Stats

	// Delay, if non-nil, returns extra propagation delay to add to a
	// message delivery. Used by tests to inject slow links.
	Delay func(m Message) time.Duration

	// Inject, if non-nil, is consulted once per non-loopback Send and
	// applies the returned Fault. Loopback messages model intra-site
	// calls and are never faulted.
	Inject func(m Message) Fault

	// SideElapsed computes the per-side elapsed cost of a message.
	// Defaults to vaxmodel.MsgSideElapsed.
	SideElapsed func(payload int) time.Duration

	// Obs, if non-nil, receives per-site delivery counters
	// (net_delivered / net_bytes, attributed to the receiving site).
	Obs *obs.Obs
}

// New creates a network of n sites on kernel k. Site counts beyond
// mmu.MaxSites (the copyset capacity) are a configuration bug and
// panic rather than silently corrupting reader records downstream.
func New(k *sim.Kernel, n int) *Network {
	if n > mmu.MaxSites {
		panic(fmt.Sprintf("netsim: %d sites: %v", n, mmu.ErrTooManySites))
	}
	return &Network{
		k:           k,
		nics:        make([]nic, n),
		SideElapsed: vaxmodel.MsgSideElapsed,
	}
}

// Sites returns the number of sites.
func (n *Network) Sites() int { return len(n.nics) }

// Bind registers the delivery handler for a site. Each site must be
// bound exactly once before messages are sent to it.
func (n *Network) Bind(s SiteID, h Handler) {
	if n.nics[s].handler != nil {
		panic(fmt.Sprintf("netsim: site %d bound twice", s))
	}
	n.nics[s].handler = h
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the traffic counters.
func (n *Network) ResetStats() { n.stats = Stats{} }

// Send queues a message for delivery. It may be called from any event
// or process context; it returns immediately, having scheduled the
// transmit/deliver events. Sending to an unbound site panics at
// delivery time.
//
// Loopback messages (From == To) model the colocated-library case: they
// are delivered at the current instant with no network charge. Callers
// account for local service CPU themselves.
func (n *Network) Send(m Message) {
	if m.To < 0 || int(m.To) >= len(n.nics) || m.From < 0 || int(m.From) >= len(n.nics) {
		panic(fmt.Sprintf("netsim: send %d -> %d out of range", m.From, m.To))
	}
	if m.From == m.To {
		n.stats.Loopback++
		n.k.Post(func() { n.deliverNow(m) })
		return
	}
	n.stats.Sent++
	var f Fault
	if n.Inject != nil {
		f = n.Inject(m)
	}
	if f.Drop {
		// The sender still transmitted; charge its NIC and stop there.
		n.stats.Dropped++
		n.chargeTx(m)
		return
	}
	n.stats.Duplicated += f.Dup
	for i := 0; i <= f.Dup; i++ {
		n.transmit(m, f.Delay)
	}
}

// chargeTx serializes one transmission on the sender's NIC and returns
// its completion instant.
func (n *Network) chargeTx(m Message) sim.Time {
	side := n.SideElapsed(m.Size)
	tx := &n.nics[m.From]
	start := n.k.Now()
	if tx.txBusyUntil > start {
		start = tx.txBusyUntil
	}
	txDone := start.Add(side)
	tx.txBusyUntil = txDone
	n.stats.TxBusy += side
	return txDone
}

// transmit carries one copy of m across the wire with extra
// propagation delay.
func (n *Network) transmit(m Message, extra time.Duration) {
	side := n.SideElapsed(m.Size)
	txDone := n.chargeTx(m)
	if n.Delay != nil {
		extra += n.Delay(m)
	}
	n.k.At(txDone.Add(extra), func() {
		// Serialize on the receiver's interface.
		rx := &n.nics[m.To]
		rstart := n.k.Now()
		if rx.rxBusyUntil > rstart {
			rstart = rx.rxBusyUntil
		}
		rxDone := rstart.Add(side)
		rx.rxBusyUntil = rxDone
		n.stats.RxBusy += side
		n.k.At(rxDone, func() { n.deliverNow(m) })
	})
}

func (n *Network) deliverNow(m Message) {
	h := n.nics[m.To].handler
	if h == nil {
		panic(fmt.Sprintf("netsim: deliver to unbound site %d", m.To))
	}
	if m.From != m.To {
		n.stats.Delivered++
		if m.Size >= LargeThreshold {
			n.stats.LargeMsgs++
		} else {
			n.stats.ShortMsgs++
		}
		n.stats.Bytes += m.Size
		n.Obs.Count(int(m.To), obs.CNetDelivered)
		n.Obs.CountN(int(m.To), obs.CNetByte, int64(m.Size))
	}
	h(m)
}
