package ivy

import (
	"fmt"
	"time"

	"mirage/internal/core"
	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/wire"
)

// Dynamic implements Li & Hudak's *dynamic distributed manager*
// algorithm, their best-performing design: there is no manager at all.
// Every site keeps a per-page probable-owner hint (probOwner);
// requests are forwarded along the hint chain until they reach the
// true owner, and each hop updates its hint toward the requester, so
// chains stay short. Ownership travels with write grants, carrying the
// copy set; the new owner invalidates the copies itself.
//
// It plugs into ipc.Config.NewDSM like the centralized Engine and the
// Mirage engine, so the three protocols are directly comparable on the
// identical substrate.
type Dynamic struct {
	env   core.Env
	site  int
	segs  map[int32]*dynSeg
	stats Stats
	costs core.Costs
}

// dynPage is one page's state at one site.
type dynPage struct {
	probOwner int
	owner     bool
	copyset   siteMask // meaningful only while owner
	busy      bool     // owner collecting invalidation acks
	queue     []*Msg   // requests awaiting the owner
	waitInv   int      // outstanding invalidation acks
	grantUp   bool     // the ack completion upgrades this site in place
}

type dynSeg struct {
	meta  *mem.Segment
	m     *mmu.Seg
	pages []dynPage

	waiters map[int32][]func()
	outR    map[int32]bool
	outW    map[int32]bool

	releasing       bool
	releasesPending int
}

// NewDynamic creates a dynamic-manager engine on env.
func NewDynamic(env core.Env) *Dynamic {
	return &Dynamic{
		env:   env,
		site:  env.Site(),
		segs:  make(map[int32]*dynSeg),
		costs: core.DefaultCosts(),
	}
}

// Stats returns a snapshot of the counters.
func (e *Dynamic) Stats() Stats { return e.stats }

// CreateSegment initializes the creating site as initial owner of all
// pages.
func (e *Dynamic) CreateSegment(meta *mem.Segment) {
	sn := e.register(meta)
	now := e.env.Now()
	for p := 0; p < meta.Pages; p++ {
		sn.m.Install(p, nil, mmu.ReadWrite, now)
		sn.pages[p].owner = true
		sn.pages[p].probOwner = e.site
		sn.pages[p].copyset = maskOf(e.site)
	}
}

// AttachSegment registers the segment here; the initial probOwner hint
// is the creating site.
func (e *Dynamic) AttachSegment(meta *mem.Segment) { e.register(meta) }

func (e *Dynamic) register(meta *mem.Segment) *dynSeg {
	if sn, ok := e.segs[int32(meta.ID)]; ok {
		return sn
	}
	sn := &dynSeg{
		meta:    meta,
		m:       mmu.NewSeg(meta.Pages, meta.PageSize),
		pages:   make([]dynPage, meta.Pages),
		waiters: make(map[int32][]func()),
		outR:    make(map[int32]bool),
		outW:    make(map[int32]bool),
	}
	for p := range sn.pages {
		sn.pages[p].probOwner = meta.Library
	}
	e.segs[int32(meta.ID)] = sn
	return sn
}

// DestroySegment drops local state and wakes waiters.
func (e *Dynamic) DestroySegment(id int32) {
	sn, ok := e.segs[id]
	if !ok {
		return
	}
	delete(e.segs, id)
	for p, ws := range sn.waiters {
		for _, w := range ws {
			w()
		}
		delete(sn.waiters, p)
	}
}

// Attached reports whether the segment is known here.
func (e *Dynamic) Attached(id int32) bool {
	_, ok := e.segs[id]
	return ok
}

// CheckAccess classifies a local access.
func (e *Dynamic) CheckAccess(seg, page int32, write bool) mmu.FaultType {
	sn, ok := e.segs[seg]
	if !ok || sn.releasing {
		if write {
			return mmu.WriteFault
		}
		return mmu.ReadFault
	}
	return sn.m.Check(int(page), write)
}

// Frame exposes the local frame for the data path.
func (e *Dynamic) Frame(seg, page int32) []byte {
	sn, ok := e.segs[seg]
	if !ok {
		return nil
	}
	return sn.m.Frame(int(page))
}

// MappedPages reports resident pages for the remap charge.
func (e *Dynamic) MappedPages() int {
	n := 0
	for _, sn := range e.segs {
		n += sn.m.PresentCount()
	}
	return n
}

func (e *Dynamic) send(to int, m *Msg) {
	m.From = int32(e.site)
	e.env.Send(to, m)
}

// Fault requests page access for a local process.
func (e *Dynamic) Fault(seg, page int32, write bool, pid int32, wake func()) {
	sn, ok := e.segs[seg]
	if !ok {
		e.env.Exec(0, wake)
		return
	}
	if write {
		e.stats.WriteFaults++
	} else {
		e.stats.ReadFaults++
	}
	sn.waiters[page] = append(sn.waiters[page], wake)

	dp := &sn.pages[page]
	if write && dp.owner {
		// Owner upgrading its own (read-only) copy: no forwarding —
		// invalidate the copy set directly, in place.
		if !sn.outW[page] {
			sn.outW[page] = true
			e.env.Exec(e.costs.LocalFault, func() { e.ownerLocalUpgrade(sn, page) })
		}
		return
	}
	var k kind
	switch {
	case write && !sn.outW[page]:
		sn.outW[page] = true
		k = kWriteReq
	case !write && !sn.outR[page] && !sn.outW[page]:
		sn.outR[page] = true
		k = kReadReq
	default:
		return
	}
	e.stats.RequestsSent++
	m := &Msg{Kind: k, Seg: seg, Page: page, Req: int32(e.site)}
	to := dp.probOwner
	e.env.Exec(e.costs.Request, func() { e.send(to, m) })
}

func (e *Dynamic) wakeWaiters(sn *dynSeg, page int32) {
	ws := sn.waiters[page]
	if len(ws) == 0 {
		return
	}
	delete(sn.waiters, page)
	for _, w := range ws {
		w()
	}
}

// Deliver injects a received message.
func (e *Dynamic) Deliver(payload any) {
	m := payload.(*Msg)
	cost := time.Duration(0)
	if int(m.From) != e.site {
		switch m.Kind {
		case kPage:
			cost = e.costs.Install
		default:
			cost = e.costs.Input
		}
	}
	e.env.Exec(cost, func() { e.handle(m) })
}

func (e *Dynamic) handle(m *Msg) {
	sn, ok := e.segs[m.Seg]
	if !ok {
		return // straggler after destroy
	}
	switch m.Kind {
	case kReadReq, kWriteReq:
		e.handleRequest(sn, m)
	case kInvalidate:
		e.handleDynInvalidate(sn, m)
	case kInvAck:
		e.handleDynInvAck(sn, m)
	case kPage:
		e.handleDynPage(sn, m)
	case kRelease:
		e.handleDynRelease(sn, m)
	case kReleaseDone:
		e.handleDynReleaseDone(sn, m)
	default:
		panic(fmt.Sprintf("ivy/dynamic: site %d: unhandled %v", e.site, m))
	}
}

// handleRequest runs at any site a request reaches: the owner serves
// it, everyone else forwards along its probOwner hint (updating the
// hint toward the requester — Li & Hudak's path compression).
func (e *Dynamic) handleRequest(sn *dynSeg, m *Msg) {
	dp := &sn.pages[m.Page]
	if !dp.owner {
		to := dp.probOwner
		if to == e.site || int(m.Req) == e.site {
			// Hint points at ourselves but we are not the owner: the
			// ownership we transferred is still in flight somewhere.
			// Queue until a page message fixes our state.
			dp.queue = append(dp.queue, m)
			return
		}
		// Path compression: future requests chase the requester, who
		// is about to be (or know) the owner.
		dp.probOwner = int(m.Req)
		e.send(to, m)
		return
	}
	if dp.busy {
		dp.queue = append(dp.queue, m)
		return
	}
	e.serveAsOwner(sn, m)
}

// serveAsOwner grants a request from the owning site.
func (e *Dynamic) serveAsOwner(sn *dynSeg, m *Msg) {
	dp := &sn.pages[m.Page]
	p := int(m.Page)
	req := int(m.Req)
	now := e.env.Now()
	if m.Kind == kReadReq {
		if req == e.site {
			// Stale self-request; our copy is valid.
			e.finishLocal(sn, m.Page, wire.Read)
			return
		}
		if sn.m.Prot(p) == mmu.ReadWrite {
			sn.m.Downgrade(p, now)
		}
		dp.copyset = dp.copyset.Add(req)
		e.stats.PagesSent++
		e.send(req, &Msg{
			Kind: kPage, Mode: wire.Read, Seg: m.Seg, Page: m.Page, Req: m.Req,
			Data: append([]byte(nil), sn.m.Frame(p)...),
		})
		return
	}
	// Write request: ownership moves to the requester along with the
	// copy set; the new owner invalidates the copies.
	if req == e.site {
		e.ownerLocalUpgrade(sn, m.Page)
		return
	}
	data := append([]byte(nil), sn.m.Frame(p)...)
	cs := dp.copyset.Remove(e.site).Remove(req)
	sn.m.Invalidate(p)
	dp.owner = false
	dp.copyset = 0
	dp.probOwner = req
	e.stats.PagesSent++
	e.send(req, &Msg{
		Kind: kPage, Mode: wire.Write, Seg: m.Seg, Page: m.Page, Req: m.Req,
		Copyset: uint64(cs), Data: data,
	})
	// Requests queued behind this grant chase the new owner.
	e.drainQueue(sn, m.Page)
}

// ownerLocalUpgrade invalidates the copy set and upgrades the owner's
// own copy in place.
func (e *Dynamic) ownerLocalUpgrade(sn *dynSeg, page int32) {
	dp := &sn.pages[page]
	if !dp.owner {
		// Ownership moved before the local upgrade ran; refault via
		// the normal path.
		sn.outW[page] = false
		e.wakeWaiters(sn, page)
		return
	}
	if dp.busy {
		// A grant cycle is in flight; queue a self write request to be
		// served when it completes.
		dp.queue = append(dp.queue, &Msg{
			Kind: kWriteReq, Seg: int32(sn.meta.ID), Page: page, Req: int32(e.site),
		})
		return
	}
	targets := dp.copyset.Remove(e.site)
	if targets.Empty() {
		e.finishOwnerUpgrade(sn, page)
		return
	}
	dp.busy = true
	dp.grantUp = true
	dp.waitInv = targets.Count()
	targets.ForEach(func(s int) {
		e.send(s, &Msg{Kind: kInvalidate, Seg: int32(sn.meta.ID), Page: page})
	})
}

func (e *Dynamic) finishOwnerUpgrade(sn *dynSeg, page int32) {
	dp := &sn.pages[page]
	now := e.env.Now()
	if sn.m.Prot(int(page)) == mmu.ReadOnly {
		sn.m.Upgrade(int(page), now)
	}
	dp.copyset = maskOf(e.site)
	dp.busy = false
	dp.grantUp = false
	e.finishLocal(sn, page, wire.Write)
	e.drainQueue(sn, page)
}

// finishLocal completes a locally-satisfied fault.
func (e *Dynamic) finishLocal(sn *dynSeg, page int32, mode wire.Mode) {
	if mode == wire.Write {
		sn.outW[page] = false
		sn.outR[page] = false
	} else {
		sn.outR[page] = false
	}
	e.wakeWaiters(sn, page)
}

// handleDynPage installs a granted page; write grants carry ownership
// and the copy set to invalidate.
func (e *Dynamic) handleDynPage(sn *dynSeg, m *Msg) {
	e.stats.PagesReceived++
	dp := &sn.pages[m.Page]
	p := int(m.Page)
	now := e.env.Now()
	if m.Mode == wire.Read {
		if sn.m.Present(p) {
			sn.m.Invalidate(p)
		}
		sn.m.Install(p, m.Data, mmu.ReadOnly, now)
		dp.probOwner = int(m.From)
		e.finishLocal(sn, m.Page, wire.Read)
		e.drainQueue(sn, m.Page)
		return
	}
	// Ownership arrives.
	if sn.m.Present(p) {
		sn.m.Invalidate(p)
	}
	sn.m.Install(p, m.Data, mmu.ReadWrite, now)
	dp.owner = true
	dp.probOwner = e.site
	dp.copyset = maskOf(e.site)
	targets := siteMask(m.Copyset).Remove(e.site)
	if targets.Empty() {
		e.finishLocal(sn, m.Page, wire.Write)
		e.drainQueue(sn, m.Page)
		return
	}
	dp.busy = true
	dp.grantUp = true
	dp.waitInv = targets.Count()
	targets.ForEach(func(s int) {
		e.send(s, &Msg{Kind: kInvalidate, Seg: m.Seg, Page: m.Page})
	})
}

func (e *Dynamic) handleDynInvalidate(sn *dynSeg, m *Msg) {
	e.stats.Invalidations++
	p := int(m.Page)
	if sn.m.Present(p) && !sn.pages[m.Page].owner {
		sn.m.Invalidate(p)
	}
	e.send(int(m.From), &Msg{Kind: kInvAck, Seg: m.Seg, Page: m.Page})
}

func (e *Dynamic) handleDynInvAck(sn *dynSeg, m *Msg) {
	dp := &sn.pages[m.Page]
	if !dp.busy || dp.waitInv <= 0 {
		panic(fmt.Sprintf("ivy/dynamic: site %d: unexpected inv-ack %v", e.site, m))
	}
	dp.waitInv--
	if dp.waitInv == 0 {
		e.finishOwnerUpgrade(sn, m.Page)
	}
}

// drainQueue re-dispatches requests parked at this site.
func (e *Dynamic) drainQueue(sn *dynSeg, page int32) {
	dp := &sn.pages[page]
	q := dp.queue
	dp.queue = nil
	for _, m := range q {
		e.handleRequest(sn, m)
	}
}

// ReleaseSegment returns copies on the last local detach: read copies
// are dropped (stale copy-set entries are tolerated by unconditional
// invalidation acks); owned pages transfer ownership home to the
// creating site.
func (e *Dynamic) ReleaseSegment(seg int32) {
	sn, ok := e.segs[seg]
	if !ok || sn.meta.Library == e.site {
		return
	}
	sn.releasing = true
	for p := 0; p < sn.m.Pages(); p++ {
		dp := &sn.pages[p]
		if dp.owner {
			sn.releasesPending++
			e.send(sn.meta.Library, &Msg{
				Kind: kRelease, Seg: seg, Page: int32(p),
				Copyset: uint64(dp.copyset.Remove(e.site)),
				Data:    append([]byte(nil), sn.m.Frame(p)...),
			})
		} else if sn.m.Present(p) {
			sn.m.Invalidate(p)
		}
	}
	if sn.releasesPending == 0 {
		sn.releasing = false
	}
}

// handleDynRelease runs at the creating site: it adopts ownership of a
// released page.
func (e *Dynamic) handleDynRelease(sn *dynSeg, m *Msg) {
	dp := &sn.pages[m.Page]
	p := int(m.Page)
	now := e.env.Now()
	if sn.m.Present(p) {
		sn.m.Invalidate(p)
	}
	cs := siteMask(m.Copyset).Remove(int(m.From))
	prot := mmu.ReadWrite
	if !cs.Remove(e.site).Empty() {
		prot = mmu.ReadOnly
	}
	sn.m.Install(p, m.Data, prot, now)
	dp.owner = true
	dp.probOwner = e.site
	dp.copyset = cs.Add(e.site)
	e.send(int(m.From), &Msg{Kind: kReleaseDone, Seg: m.Seg, Page: m.Page})
	e.drainQueue(sn, m.Page)
}

func (e *Dynamic) handleDynReleaseDone(sn *dynSeg, m *Msg) {
	p := int(m.Page)
	if sn.m.Present(p) {
		sn.m.Invalidate(p)
	}
	dp := &sn.pages[m.Page]
	dp.owner = false
	dp.copyset = 0
	dp.probOwner = sn.meta.Library
	sn.releasesPending--
	if sn.releasesPending == 0 {
		sn.releasing = false
		for page := range sn.waiters {
			e.wakeWaiters(sn, page)
		}
	}
}

// FaultError implements ipc.DSM; the dynamic-manager baseline has no
// failure model, so accesses never surface degraded-grant errors.
func (d *Dynamic) FaultError(seg, page int32) error { return nil }

// RecordOp implements ipc.DSM; the dynamic-manager baseline does not
// emit the coherence checker's op events.
func (d *Dynamic) RecordOp(seg, page int32, off int, write bool, b []byte) {}
