// Package ivy implements a Li/Hudak-style shared virtual memory
// system (the "IVY" line of work the paper's Appendix I discusses) as
// a baseline for the Mirage benches. It is a write-invalidate,
// single-owner protocol with a centralized manager per segment:
//
//   - The manager (the creating site) records each page's owner and
//     copy set and serializes requests per page.
//   - A read fault asks the manager, which forwards to the owner; the
//     owner keeps a read copy and sends the page to the requester.
//   - A write fault asks the manager, which invalidates every copy
//     (collecting acknowledgements), then has the owner transfer the
//     page — always a full page copy, even when the requester already
//     held it read-only; ownership moves to the writer.
//
// The contrasts with Mirage are exactly the paper's contributions:
// no time window Δ (invalidation is immediate), no silent
// reader→writer upgrade, and no downgraded-writer copy retention on
// the write path. Running both engines on the identical substrate
// (internal/ipc with Config.NewDSM) isolates those design choices.
package ivy

import (
	"fmt"
	"time"

	"mirage/internal/core"
	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/vaxmodel"
	"mirage/internal/wire"
)

// kind discriminates IVY protocol messages.
type kind uint8

const (
	kInvalid     kind = iota
	kReadReq          // requester -> manager
	kWriteReq         // requester -> manager
	kForward          // manager -> owner: send page to Req with Mode
	kInvalidate       // manager -> copy holder
	kInvAck           // holder -> manager
	kPage             // owner -> requester (data)
	kConfirm          // requester -> manager: transfer complete
	kRelease          // holder -> manager on detach (data for owners)
	kReleaseDone      // manager -> holder
)

func (k kind) String() string {
	switch k {
	case kReadReq:
		return "ivy-read-req"
	case kWriteReq:
		return "ivy-write-req"
	case kForward:
		return "ivy-forward"
	case kInvalidate:
		return "ivy-invalidate"
	case kInvAck:
		return "ivy-inv-ack"
	case kPage:
		return "ivy-page"
	case kConfirm:
		return "ivy-confirm"
	case kRelease:
		return "ivy-release"
	case kReleaseDone:
		return "ivy-release-done"
	}
	return fmt.Sprintf("ivy-kind(%d)", uint8(k))
}

// Msg is an IVY protocol message. It satisfies core.NetMsg.
type Msg struct {
	Kind    kind
	Mode    wire.Mode
	Seg     int32
	Page    int32
	From    int32
	Req     int32
	Copyset uint64 // dynamic manager: copy set shipped with ownership
	Data    []byte
}

// Size implements core.NetMsg with the same network-buffer rule as the
// Mirage wire format.
func (m *Msg) Size() int {
	if len(m.Data) == 0 {
		return 0
	}
	if len(m.Data) < wire.NetBufBytes {
		return wire.NetBufBytes
	}
	return len(m.Data)
}

func (m *Msg) String() string {
	return fmt.Sprintf("%v seg=%d page=%d from=%d req=%d mode=%v bytes=%d",
		m.Kind, m.Seg, m.Page, m.From, m.Req, m.Mode, len(m.Data))
}

// Stats counts engine activity.
type Stats struct {
	ReadFaults    int
	WriteFaults   int
	RequestsSent  int
	PagesSent     int
	PagesReceived int
	Invalidations int // invalidate orders received
	Forwards      int // forwards handled as owner
}

type mgrReq struct {
	site  int
	write bool
	data  []byte // for releases
	kind  kind
}

// mgrPage is the manager's per-page record.
type mgrPage struct {
	owner   int
	copyset siteMask // read-copy holders, including the owner
	busy    bool
	waitInv int
	grant   mgrReq
	queue   []mgrReq
}

type segNode struct {
	meta *mem.Segment
	m    *mmu.Seg

	waiters map[int32][]func()
	outR    map[int32]bool
	outW    map[int32]bool

	mgr []mgrPage // non-nil at the manager site

	releasing       bool
	releasesPending int
}

// Engine is one site's IVY protocol instance. It implements the same
// DSM surface as the Mirage engine and plugs into ipc.Config.NewDSM.
type Engine struct {
	env   core.Env
	site  int
	segs  map[int32]*segNode
	stats Stats
	costs core.Costs
}

// New creates an IVY engine on env.
func New(env core.Env) *Engine {
	return &Engine{
		env:   env,
		site:  env.Site(),
		segs:  make(map[int32]*segNode),
		costs: core.DefaultCosts(),
	}
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// CreateSegment initializes manager state at the creating site.
func (e *Engine) CreateSegment(meta *mem.Segment) {
	sn := e.register(meta)
	sn.mgr = make([]mgrPage, meta.Pages)
	now := e.env.Now()
	for p := 0; p < meta.Pages; p++ {
		sn.m.Install(p, nil, mmu.ReadWrite, now)
		sn.mgr[p].owner = e.site
		sn.mgr[p].copyset = maskOf(e.site)
	}
}

// AttachSegment registers the segment at a non-manager site.
func (e *Engine) AttachSegment(meta *mem.Segment) { e.register(meta) }

func (e *Engine) register(meta *mem.Segment) *segNode {
	if sn, ok := e.segs[int32(meta.ID)]; ok {
		return sn
	}
	sn := &segNode{
		meta:    meta,
		m:       mmu.NewSeg(meta.Pages, meta.PageSize),
		waiters: make(map[int32][]func()),
		outR:    make(map[int32]bool),
		outW:    make(map[int32]bool),
	}
	e.segs[int32(meta.ID)] = sn
	return sn
}

// DestroySegment drops all local state and wakes pending waiters.
func (e *Engine) DestroySegment(id int32) {
	sn, ok := e.segs[id]
	if !ok {
		return
	}
	delete(e.segs, id)
	for p, ws := range sn.waiters {
		for _, w := range ws {
			w()
		}
		delete(sn.waiters, p)
	}
}

// Attached reports whether the segment is known here.
func (e *Engine) Attached(id int32) bool {
	_, ok := e.segs[id]
	return ok
}

// CheckAccess classifies a local access.
func (e *Engine) CheckAccess(seg, page int32, write bool) mmu.FaultType {
	sn, ok := e.segs[seg]
	if !ok || sn.releasing {
		if write {
			return mmu.WriteFault
		}
		return mmu.ReadFault
	}
	return sn.m.Check(int(page), write)
}

// Frame exposes the local frame for the data path.
func (e *Engine) Frame(seg, page int32) []byte {
	sn, ok := e.segs[seg]
	if !ok {
		return nil
	}
	return sn.m.Frame(int(page))
}

// MappedPages reports resident shared pages for the remap charge.
func (e *Engine) MappedPages() int {
	n := 0
	for _, sn := range e.segs {
		n += sn.m.PresentCount()
	}
	return n
}

// Fault requests page access for a local process.
func (e *Engine) Fault(seg, page int32, write bool, pid int32, wake func()) {
	sn, ok := e.segs[seg]
	if !ok {
		e.env.Exec(0, wake)
		return
	}
	if write {
		e.stats.WriteFaults++
	} else {
		e.stats.ReadFaults++
	}
	sn.waiters[page] = append(sn.waiters[page], wake)

	var k kind
	switch {
	case write && !sn.outW[page]:
		sn.outW[page] = true
		k = kWriteReq
	case !write && !sn.outR[page] && !sn.outW[page]:
		sn.outR[page] = true
		k = kReadReq
	default:
		return
	}
	e.stats.RequestsSent++
	cost := e.costs.Request
	if sn.meta.Library == e.site {
		cost = e.costs.LocalFault
	}
	m := &Msg{Kind: k, Seg: seg, Page: page, From: int32(e.site), Req: int32(e.site)}
	mgr := sn.meta.Library
	e.env.Exec(cost, func() { e.env.Send(mgr, m) })
}

func (e *Engine) wakeWaiters(sn *segNode, page int32) {
	ws := sn.waiters[page]
	if len(ws) == 0 {
		return
	}
	delete(sn.waiters, page)
	for _, w := range ws {
		w()
	}
}

// ReleaseSegment returns this site's copies to the manager on the last
// local detach.
func (e *Engine) ReleaseSegment(seg int32) {
	sn, ok := e.segs[seg]
	if !ok || sn.meta.Library == e.site {
		return
	}
	sn.releasing = true
	for p := 0; p < sn.m.Pages(); p++ {
		if !sn.m.Present(p) {
			continue
		}
		sn.releasesPending++
		e.send(sn.meta.Library, &Msg{
			Kind: kRelease, Seg: seg, Page: int32(p),
			Data: append([]byte(nil), sn.m.Frame(p)...),
		})
	}
	if sn.releasesPending == 0 {
		sn.releasing = false
	}
}

func (e *Engine) send(to int, m *Msg) {
	m.From = int32(e.site)
	e.env.Send(to, m)
}

// Deliver injects a received protocol message.
func (e *Engine) Deliver(payload any) {
	m := payload.(*Msg)
	cost := time.Duration(0)
	if int(m.From) != e.site {
		switch m.Kind {
		case kReadReq, kWriteReq, kConfirm, kInvAck, kRelease:
			cost = e.costs.Server
		case kPage:
			cost = e.costs.Install
		default:
			cost = e.costs.Input
		}
	}
	e.env.Exec(cost, func() { e.handle(m) })
}

func (e *Engine) handle(m *Msg) {
	sn, ok := e.segs[m.Seg]
	if !ok {
		return // straggler after destroy
	}
	switch m.Kind {
	case kReadReq, kWriteReq:
		e.mgrEnqueue(sn, m, mgrReq{site: int(m.From), write: m.Kind == kWriteReq, kind: m.Kind})
	case kRelease:
		e.mgrEnqueue(sn, m, mgrReq{site: int(m.From), data: append([]byte(nil), m.Data...), kind: kRelease})
	case kForward:
		e.handleForward(sn, m)
	case kInvalidate:
		e.handleInvalidate(sn, m)
	case kInvAck:
		e.mgrInvAck(sn, m)
	case kPage:
		e.handlePage(sn, m)
	case kConfirm:
		e.mgrConfirm(sn, m)
	case kReleaseDone:
		e.handleReleaseDone(sn, m)
	default:
		panic(fmt.Sprintf("ivy: site %d: unhandled %v", e.site, m))
	}
}

// --- manager side ---

func (e *Engine) mgrEnqueue(sn *segNode, m *Msg, r mgrReq) {
	if sn.mgr == nil {
		panic(fmt.Sprintf("ivy: site %d is not the manager for %v", e.site, m))
	}
	mp := &sn.mgr[m.Page]
	mp.queue = append(mp.queue, r)
	e.mgrProcess(sn, m.Page)
}

func (e *Engine) mgrProcess(sn *segNode, page int32) {
	mp := &sn.mgr[page]
	for !mp.busy && len(mp.queue) > 0 {
		r := mp.queue[0]
		mp.queue = mp.queue[1:]
		switch r.kind {
		case kRelease:
			e.mgrRelease(sn, page, r)
		case kReadReq:
			mp.busy = true
			mp.grant = r
			e.send(mp.owner, &Msg{Kind: kForward, Mode: wire.Read, Seg: int32(sn.meta.ID), Page: page, Req: int32(r.site)})
		case kWriteReq:
			mp.busy = true
			mp.grant = r
			// Invalidate every copy except the owner's (the owner
			// discards when it forwards) and the requester's own
			// (overwritten by the incoming page; basic IVY ships the
			// data even to a requester that held a read copy).
			targets := mp.copyset.Remove(mp.owner).Remove(r.site)
			mp.waitInv = targets.Count()
			if mp.waitInv == 0 {
				e.mgrForwardWrite(sn, page)
				continue
			}
			targets.ForEach(func(s int) {
				e.send(s, &Msg{Kind: kInvalidate, Seg: int32(sn.meta.ID), Page: page})
			})
		}
	}
}

func (e *Engine) mgrForwardWrite(sn *segNode, page int32) {
	mp := &sn.mgr[page]
	e.send(mp.owner, &Msg{
		Kind: kForward, Mode: wire.Write, Seg: int32(sn.meta.ID), Page: page,
		Req: int32(mp.grant.site),
	})
}

func (e *Engine) mgrInvAck(sn *segNode, m *Msg) {
	mp := &sn.mgr[m.Page]
	if !mp.busy || mp.waitInv <= 0 {
		panic(fmt.Sprintf("ivy: site %d: unexpected inv-ack %v", e.site, m))
	}
	mp.waitInv--
	if mp.waitInv == 0 {
		e.mgrForwardWrite(sn, m.Page)
	}
}

func (e *Engine) mgrConfirm(sn *segNode, m *Msg) {
	mp := &sn.mgr[m.Page]
	if !mp.busy {
		panic(fmt.Sprintf("ivy: site %d: confirm with no grant %v", e.site, m))
	}
	r := mp.grant
	if r.write {
		mp.owner = r.site
		mp.copyset = maskOf(r.site)
	} else {
		mp.copyset = mp.copyset.Add(r.site)
	}
	mp.busy = false
	mp.grant = mgrReq{}
	e.mgrProcess(sn, m.Page)
}

func (e *Engine) mgrRelease(sn *segNode, page int32, r mgrReq) {
	mp := &sn.mgr[page]
	switch {
	case mp.owner == r.site:
		// Owner going away: the manager takes the page home. Other
		// read copies may remain, so the reinstalled home copy is
		// writable only when none do.
		now := e.env.Now()
		if sn.m.Present(int(page)) {
			sn.m.Invalidate(int(page))
		}
		rest := mp.copyset.Remove(r.site)
		prot := mmu.ReadWrite
		if !rest.Remove(e.site).Empty() {
			prot = mmu.ReadOnly
		}
		sn.m.Install(int(page), r.data, prot, now)
		mp.owner = e.site
		mp.copyset = rest.Add(e.site)
	case mp.copyset.Has(r.site):
		mp.copyset = mp.copyset.Remove(r.site)
	}
	e.send(r.site, &Msg{Kind: kReleaseDone, Seg: int32(sn.meta.ID), Page: page})
}

// --- holder side ---

// handleForward runs at the page owner.
func (e *Engine) handleForward(sn *segNode, m *Msg) {
	e.stats.Forwards++
	p := int(m.Page)
	if !sn.m.Present(p) {
		panic(fmt.Sprintf("ivy: site %d: forward for absent page %v", e.site, m))
	}
	now := e.env.Now()
	data := append([]byte(nil), sn.m.Frame(p)...)
	if m.Mode == wire.Write {
		// Ownership moves; this copy dies (write-invalidate).
		sn.m.Invalidate(p)
	} else if sn.m.Prot(p) == mmu.ReadWrite {
		// Owner keeps a read copy on a read forward.
		sn.m.Downgrade(p, now)
	}
	if int(m.Req) == e.site {
		// Forward back to self (manager colocations); install directly.
		e.installPage(sn, m.Page, data, m.Mode)
		return
	}
	e.stats.PagesSent++
	e.send(int(m.Req), &Msg{Kind: kPage, Mode: m.Mode, Seg: m.Seg, Page: m.Page, Req: m.Req, Data: data})
}

func (e *Engine) handleInvalidate(sn *segNode, m *Msg) {
	e.stats.Invalidations++
	p := int(m.Page)
	if sn.m.Present(p) {
		sn.m.Invalidate(p)
	}
	e.send(int(m.From), &Msg{Kind: kInvAck, Seg: m.Seg, Page: m.Page})
}

func (e *Engine) handlePage(sn *segNode, m *Msg) {
	e.stats.PagesReceived++
	e.installPage(sn, m.Page, m.Data, m.Mode)
}

func (e *Engine) installPage(sn *segNode, page int32, data []byte, mode wire.Mode) {
	p := int(page)
	now := e.env.Now()
	if data != nil {
		prot := mmu.ReadOnly
		if mode == wire.Write {
			prot = mmu.ReadWrite
		}
		if sn.m.Present(p) {
			sn.m.Invalidate(p)
		}
		sn.m.Install(p, data, prot, now)
	} else if mode == wire.Write && sn.m.Prot(p) == mmu.ReadOnly {
		sn.m.Upgrade(p, now)
	}
	e.send(int(sn.meta.Library), &Msg{Kind: kConfirm, Mode: mode, Seg: int32(sn.meta.ID), Page: page})
	if mode == wire.Write {
		sn.outW[page] = false
		sn.outR[page] = false
	} else {
		sn.outR[page] = false
	}
	e.wakeWaiters(sn, page)
}

func (e *Engine) handleReleaseDone(sn *segNode, m *Msg) {
	p := int(m.Page)
	if sn.m.Present(p) {
		sn.m.Invalidate(p)
	}
	sn.releasesPending--
	if sn.releasesPending == 0 {
		sn.releasing = false
		for page := range sn.waiters {
			e.wakeWaiters(sn, page)
		}
	}
}

// Paper-cost sanity: the IVY engine uses the same vaxmodel charges.
var _ = vaxmodel.PageSize

// FaultError implements ipc.DSM; the IVY baseline has no failure
// model, so accesses never surface degraded-grant errors.
func (e *Engine) FaultError(seg, page int32) error { return nil }

// RecordOp implements ipc.DSM; the IVY baseline does not emit the
// coherence checker's op events.
func (e *Engine) RecordOp(seg, page int32, off int, write bool, b []byte) {}
