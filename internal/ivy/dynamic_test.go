package ivy

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/mmu"
)

func dynCluster(n int) *ipc.Cluster {
	return ipc.NewCluster(n, ipc.Config{
		NewDSM: func(env core.Env) ipc.DSM { return NewDynamic(env) },
	})
}

func TestDynamicCrossSiteCoherence(t *testing.T) {
	c := dynCluster(3)
	var read uint32
	done := false
	c.Site(0).Spawn("creator", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 42)
		for {
			v, _ := h.Uint32(8)
			if v == 1 {
				break
			}
			p.Yield()
		}
		v, _ := h.Uint32(4)
		read = v
		done = true
	})
	c.Site(2).Spawn("partner", 0, func(p *ipc.Proc) {
		p.Sleep(time.Millisecond)
		var id mem.SegID
		for {
			var err error
			id, err = p.Shmget(7, 512, 0, 0)
			if err == nil {
				break
			}
			p.Sleep(time.Millisecond)
		}
		h, _ := p.Shmat(id, false)
		for {
			v, _ := h.Uint32(0)
			if v == 42 {
				break
			}
			p.Yield()
		}
		h.SetUint32(4, 888)
		h.SetUint32(8, 1)
	})
	c.RunFor(30 * time.Second)
	if !done || read != 888 {
		t.Fatalf("done=%v read=%d", done, read)
	}
}

func TestDynamicOwnershipChases(t *testing.T) {
	// Ownership hops 0 -> 1 -> 2; a request from site 0 must chase the
	// probOwner chain to the true owner.
	c := dynCluster(3)
	var final uint32
	c.Site(0).Spawn("home", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 1)
		p.Sleep(300 * time.Millisecond)
		final, _ = h.Uint32(0) // chases 1 -> 2
	})
	c.Site(1).Spawn("hop1", 0, func(p *ipc.Proc) {
		p.Sleep(20 * time.Millisecond)
		id, _ := p.Shmget(7, 512, 0, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 2)
		p.Sleep(400 * time.Millisecond)
	})
	c.Site(2).Spawn("hop2", 0, func(p *ipc.Proc) {
		p.Sleep(100 * time.Millisecond)
		id, _ := p.Shmget(7, 512, 0, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 3)
		p.Sleep(400 * time.Millisecond)
	})
	c.Run()
	if final != 3 {
		t.Fatalf("read %d, want 3 (forwarding chain broken)", final)
	}
}

func TestDynamicConcurrentWriters(t *testing.T) {
	// All sites write the same word concurrently; ownership must chase
	// correctly and the invariant must hold throughout.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := 2 + rng.Intn(3)
		c := dynCluster(sites)
		oracle := uint32(0)
		ok := true
		steps := 6 + rng.Intn(8)
		plan := make([]struct {
			site  int
			write bool
			val   uint32
		}, steps)
		for i := range plan {
			plan[i].site = rng.Intn(sites)
			plan[i].write = rng.Intn(2) == 0
			plan[i].val = uint32(i + 1)
		}
		for s := 0; s < sites; s++ {
			s := s
			c.Site(s).Spawn("driver", 0, func(p *ipc.Proc) {
				var h *ipc.Shm
				if s == 0 {
					id, _ := p.Shmget(9, 512, mem.Create, rw)
					h, _ = p.Shmat(id, false)
				} else {
					p.Sleep(10 * time.Millisecond)
					id, _ := p.Shmget(9, 512, 0, 0)
					h, _ = p.Shmat(id, false)
				}
				for i, op := range plan {
					slot := time.Duration(i+1) * time.Second
					if d := slot - p.Now(); d > 0 {
						p.Sleep(d)
					}
					if op.site != s {
						continue
					}
					if op.write {
						if h.SetUint32(0, op.val) != nil {
							ok = false
							return
						}
						oracle = op.val
					} else if v, err := h.Uint32(0); err != nil || v != oracle {
						ok = false
					}
					// Invariant.
					writers, readers := 0, 0
					for q := 0; q < sites; q++ {
						eng := c.Site(q).DSM.(*Dynamic)
						sn := eng.segs[1]
						if sn == nil {
							continue
						}
						switch sn.m.Prot(0) {
						case mmu.ReadWrite:
							writers++
						case mmu.ReadOnly:
							readers++
						}
					}
					if writers > 1 || (writers == 1 && readers > 0) {
						ok = false
					}
				}
				p.Sleep(time.Duration(steps+2) * time.Second)
			})
		}
		c.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicOwnerReleaseTransfersHome(t *testing.T) {
	c := dynCluster(2)
	c.Site(1).Spawn("owner", 0, func(p *ipc.Proc) {
		p.Sleep(10 * time.Millisecond)
		id, _ := p.Shmget(7, 512, 0, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 555) // becomes owner
		p.Shmdt(h)
	})
	var back uint32
	c.Site(0).Spawn("home", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		p.Sleep(time.Second)
		back, _ = h.Uint32(0)
	})
	c.Run()
	if back != 555 {
		t.Fatalf("home read %d after owner release, want 555", back)
	}
}

func TestDynamicReadSharingThenUpgrade(t *testing.T) {
	// Several readers share, then one upgrades: every other copy must
	// be invalidated via the shipped copy set.
	c := dynCluster(4)
	c.Site(0).Spawn("home", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 7)
		p.Sleep(2 * time.Second)
	})
	for s := 1; s < 4; s++ {
		s := s
		c.Site(s).Spawn("reader", 0, func(p *ipc.Proc) {
			p.Sleep(time.Duration(s*10) * time.Millisecond)
			id, _ := p.Shmget(7, 512, 0, rw)
			h, _ := p.Shmat(id, false)
			h.Uint32(0)
			if s == 3 {
				p.Sleep(200 * time.Millisecond)
				h.SetUint32(0, 8) // upgrade: invalidates the other readers
			}
			p.Sleep(2 * time.Second)
		})
	}
	c.RunFor(time.Second)
	// After the upgrade, only site 3 may hold a copy.
	for s := 0; s < 3; s++ {
		eng := c.Site(s).DSM.(*Dynamic)
		if sn := eng.segs[1]; sn != nil && sn.m.Present(0) {
			t.Fatalf("site %d still holds a copy after upgrade", s)
		}
	}
	e3 := c.Site(3).DSM.(*Dynamic)
	if e3.segs[1].m.Prot(0) != mmu.ReadWrite {
		t.Fatal("upgrader lacks the writable copy")
	}
	c.Run()
}

func TestDynamicForwardingCounts(t *testing.T) {
	// The probOwner chain self-compresses: after a burst of writes by
	// one remote site, a request from a third site should reach the
	// owner in a bounded number of hops (forwards happen, but far fewer
	// than writes).
	c := dynCluster(3)
	c.Site(0).Spawn("home", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 1)
		p.Sleep(2 * time.Second)
	})
	c.Site(1).Spawn("writer", 0, func(p *ipc.Proc) {
		p.Sleep(10 * time.Millisecond)
		id, _ := p.Shmget(7, 512, 0, rw)
		h, _ := p.Shmat(id, false)
		for i := 0; i < 10; i++ {
			h.SetUint32(0, uint32(i))
			p.Sleep(5 * time.Millisecond)
		}
		p.Sleep(2 * time.Second)
	})
	var got uint32
	c.Site(2).Spawn("latecomer", 0, func(p *ipc.Proc) {
		p.Sleep(300 * time.Millisecond)
		id, _ := p.Shmget(7, 512, 0, rw)
		h, _ := p.Shmat(id, false)
		got, _ = h.Uint32(0)
		p.Sleep(time.Second)
	})
	c.Run()
	if got != 9 {
		t.Fatalf("latecomer read %d, want 9", got)
	}
}
