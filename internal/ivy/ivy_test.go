package ivy

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mirage/internal/core"
	"mirage/internal/ipc"
	"mirage/internal/mem"
	"mirage/internal/mmu"
)

const rw = mem.OwnerRead | mem.OwnerWrite | mem.OtherRead | mem.OtherWrite

func ivyCluster(n int) *ipc.Cluster {
	return ipc.NewCluster(n, ipc.Config{
		NewDSM: func(env core.Env) ipc.DSM { return New(env) },
	})
}

func TestIvyCrossSiteCoherence(t *testing.T) {
	c := ivyCluster(2)
	var read uint32
	done := false
	c.Site(0).Spawn("creator", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 42)
		for {
			v, _ := h.Uint32(8)
			if v == 1 {
				break
			}
			p.Yield()
		}
		v, _ := h.Uint32(4)
		read = v
		done = true
	})
	c.Site(1).Spawn("partner", 0, func(p *ipc.Proc) {
		p.Sleep(time.Millisecond)
		var id mem.SegID
		for {
			var err error
			id, err = p.Shmget(7, 512, 0, 0)
			if err == nil {
				break
			}
			p.Sleep(time.Millisecond)
		}
		h, _ := p.Shmat(id, false)
		for {
			v, _ := h.Uint32(0)
			if v == 42 {
				break
			}
			p.Yield()
		}
		h.SetUint32(4, 777)
		h.SetUint32(8, 1)
	})
	c.RunFor(30 * time.Second)
	if !done || read != 777 {
		t.Fatalf("done=%v read=%d", done, read)
	}
}

func TestIvyWriteShipsPageEvenToReader(t *testing.T) {
	// The defining contrast with Mirage optimization 1: a reader
	// upgrading to writer receives a full page copy.
	c := ivyCluster(2)
	c.Site(0).Spawn("home", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 5)
		p.Sleep(3 * time.Second)
	})
	c.Site(1).Spawn("upgrader", 0, func(p *ipc.Proc) {
		p.Sleep(100 * time.Millisecond)
		id, _ := p.Shmget(7, 512, 0, 0)
		h, _ := p.Shmat(id, false)
		h.Uint32(0)       // read copy
		h.SetUint32(0, 6) // upgrade: IVY ships the page again
		p.Sleep(2 * time.Second)
	})
	c.Run()
	e1 := c.Site(1).DSM.(*Engine)
	if e1.Stats().PagesReceived < 2 {
		t.Fatalf("pages received = %d; IVY must ship data on upgrade", e1.Stats().PagesReceived)
	}
}

func TestIvySingleWriterInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := 2 + rng.Intn(2)
		c := ivyCluster(sites)
		type op struct {
			site  int
			write bool
			val   uint32
		}
		plan := make([]op, 6+rng.Intn(8))
		for i := range plan {
			plan[i] = op{site: rng.Intn(sites), write: rng.Intn(2) == 0, val: uint32(i + 1)}
		}
		ok := true
		var handles []*ipc.Shm
		for s := 0; s < sites; s++ {
			s := s
			c.Site(s).Spawn("driver", 0, func(p *ipc.Proc) {
				var h *ipc.Shm
				if s == 0 {
					id, _ := p.Shmget(9, 512, mem.Create, rw)
					h, _ = p.Shmat(id, false)
				} else {
					p.Sleep(10 * time.Millisecond)
					id, _ := p.Shmget(9, 512, 0, 0)
					h, _ = p.Shmat(id, false)
				}
				handles = append(handles, h)
				for i, o := range plan {
					slot := time.Duration(i+1) * time.Second
					if d := slot - p.Now(); d > 0 {
						p.Sleep(d)
					}
					if o.site != s {
						continue
					}
					if o.write {
						h.SetUint32(0, o.val)
					} else {
						got, _ := h.Uint32(0)
						want := uint32(0)
						for j := i - 1; j >= 0; j-- {
							if plan[j].write {
								want = plan[j].val
								break
							}
						}
						if got != want {
							ok = false
						}
					}
					// Invariant check across sites.
					writers, readers := 0, 0
					for q := 0; q < sites; q++ {
						eng := c.Site(q).DSM.(*Engine)
						seg := eng.segs[1]
						if seg == nil {
							continue
						}
						switch seg.m.Prot(0) {
						case mmu.ReadWrite:
							writers++
						case mmu.ReadOnly:
							readers++
						}
					}
					if writers > 1 || (writers == 1 && readers > 0) {
						ok = false
					}
				}
				p.Sleep(time.Duration(len(plan)+2) * time.Second)
			})
		}
		c.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIvyReleaseReturnsDataHome(t *testing.T) {
	c := ivyCluster(2)
	c.Site(1).Spawn("writer", 0, func(p *ipc.Proc) {
		p.Sleep(50 * time.Millisecond)
		id, _ := p.Shmget(7, 512, 0, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 99)
		p.Shmdt(h)
	})
	var back uint32
	c.Site(0).Spawn("home", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		p.Sleep(time.Second)
		back, _ = h.Uint32(0)
	})
	c.Run()
	if back != 99 {
		t.Fatalf("home read %d after release, want 99", back)
	}
}

func TestIvyNoDeltaNoRetention(t *testing.T) {
	// IVY has no window: a remote write is granted in a handful of
	// round trips even if the holder just received the page.
	c := ivyCluster(2)
	var elapsed time.Duration
	c.Site(1).Spawn("holder", 0, func(p *ipc.Proc) {
		p.Sleep(50 * time.Millisecond)
		id, _ := p.Shmget(7, 512, 0, rw)
		h, _ := p.Shmat(id, false)
		h.SetUint32(0, 1)
		p.Sleep(2 * time.Second)
	})
	c.Site(0).Spawn("taker", 0, func(p *ipc.Proc) {
		id, _ := p.Shmget(7, 512, mem.Create, rw)
		h, _ := p.Shmat(id, false)
		p.Sleep(500 * time.Millisecond)
		t0 := p.Now()
		h.SetUint32(0, 2)
		elapsed = p.Now() - t0
	})
	c.Run()
	if elapsed == 0 || elapsed > 80*time.Millisecond {
		t.Fatalf("IVY write handoff took %v", elapsed)
	}
}
