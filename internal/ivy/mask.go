package ivy

import "math/bits"

// siteMask is a flat uint64 site set. IVY is kept as a paper-scale
// baseline (its wire format ships the copy set as a raw uint64), so it
// keeps the simple 64-site mask the Mirage engine outgrew; ivy
// clusters are capped at 64 sites by construction.
type siteMask uint64

// Add returns m with site s added.
func (m siteMask) Add(s int) siteMask { return m | 1<<uint(s) }

// Remove returns m with site s removed.
func (m siteMask) Remove(s int) siteMask { return m &^ (1 << uint(s)) }

// Has reports whether site s is in the set.
func (m siteMask) Has(s int) bool { return m&(1<<uint(s)) != 0 }

// Count returns the number of sites in the set.
func (m siteMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Empty reports whether the set has no sites.
func (m siteMask) Empty() bool { return m == 0 }

// ForEach calls fn for each member in ascending order.
func (m siteMask) ForEach(fn func(s int)) {
	for v := uint64(m); v != 0; {
		s := bits.TrailingZeros64(v)
		fn(s)
		v &^= 1 << uint(s)
	}
}

// maskOf builds a siteMask from site IDs.
func maskOf(sites ...int) siteMask {
	var m siteMask
	for _, s := range sites {
		m = m.Add(s)
	}
	return m
}
