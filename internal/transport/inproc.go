package transport

import (
	"fmt"
	"sync"

	"mirage/internal/obs"
	"mirage/internal/wire"
)

// InprocMesh connects n sites within one process. Each site owns an
// unbounded FIFO inbox drained by a dedicated delivery goroutine, so
// senders never block and per-sender order is preserved (the inbox is
// globally FIFO, which is stronger).
type InprocMesh struct {
	inboxes []*inbox
}

type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*wire.Msg
	spare  []*wire.Msg // recycled batch backing array
	closed bool
	done   chan struct{}
	site   int
	obs    *obs.Obs // delivery-batch metrics sink; nil when off
}

// NewInprocMesh creates the mesh and starts delivery goroutines; the
// handler for site i receives every message addressed to it.
func NewInprocMesh(handlers []Handler) *InprocMesh {
	m := &InprocMesh{}
	for i := range handlers {
		ib := &inbox{done: make(chan struct{}), site: i}
		ib.cond = sync.NewCond(&ib.mu)
		m.inboxes = append(m.inboxes, ib)
		go ib.drain(handlers[i])
	}
	return m
}

// SetObs attaches an observability sink: each delivery batch a site's
// drain goroutine swaps out is then counted (flush_batches /
// flush_frames, attributed to the receiving site) and sized into the
// flush-frames histogram.
func (m *InprocMesh) SetObs(o *obs.Obs) {
	for _, ib := range m.inboxes {
		ib.mu.Lock()
		ib.obs = o
		ib.mu.Unlock()
	}
}

// Site returns a Transport bound to the given sender site.
func (m *InprocMesh) Site(i int) Transport { return inprocPort{m: m} }

type inprocPort struct {
	m *InprocMesh
}

func (p inprocPort) Send(to int, msg *wire.Msg) error {
	if to < 0 || to >= len(p.m.inboxes) {
		return fmt.Errorf("transport: site %d out of range", to)
	}
	ib := p.m.inboxes[to]
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return errClosed
	}
	ib.queue = append(ib.queue, msg)
	ib.cond.Signal()
	return nil
}

func (p inprocPort) Close() error { return p.m.Close() }

// Close stops all delivery goroutines after their queues drain.
func (m *InprocMesh) Close() error {
	for _, ib := range m.inboxes {
		ib.mu.Lock()
		if !ib.closed {
			ib.closed = true
			ib.cond.Signal()
		}
		ib.mu.Unlock()
	}
	for _, ib := range m.inboxes {
		<-ib.done
	}
	return nil
}

// drain delivers queued messages in batches: each wakeup swaps the
// whole queue out under the lock and hands the batch to the handler
// lock-free. The drained batch's backing array is recycled, so the
// steady-state delivery path allocates nothing.
func (ib *inbox) drain(h Handler) {
	defer close(ib.done)
	for {
		ib.mu.Lock()
		for len(ib.queue) == 0 && !ib.closed {
			ib.cond.Wait()
		}
		if len(ib.queue) == 0 && ib.closed {
			ib.mu.Unlock()
			return
		}
		batch := ib.queue
		ib.queue = ib.spare[:0]
		ib.spare = nil
		o := ib.obs
		ib.mu.Unlock()
		o.Count(ib.site, obs.CFlushBatch)
		o.CountN(ib.site, obs.CFlushFrame, int64(len(batch)))
		o.Observe(obs.HFlushFrames, int64(len(batch)))
		for i, m := range batch {
			h(m)
			batch[i] = nil // drop the reference; the engine owns it now
		}
		ib.mu.Lock()
		if ib.spare == nil {
			ib.spare = batch[:0]
		}
		ib.mu.Unlock()
	}
}
