package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"mirage/internal/wire"
)

// benchPair builds a two-site TCP mesh where site 1 counts deliveries.
func benchPair(b *testing.B, count *atomic.Int64) (*TCPMesh, *TCPMesh) {
	b.Helper()
	drop := func(m *wire.Msg) {}
	recv := func(m *wire.Msg) { count.Add(1) }
	m0, err := NewTCPSite(0, "127.0.0.1:0", drop)
	if err != nil {
		b.Fatal(err)
	}
	m1, err := NewTCPSite(1, "127.0.0.1:0", recv)
	if err != nil {
		m0.Close()
		b.Fatal(err)
	}
	addrs := []string{m0.Addr(), m1.Addr()}
	m0.SetPeers(addrs)
	m1.SetPeers(addrs)
	b.Cleanup(func() { m0.Close(); m1.Close() })
	return m0, m1
}

// waitCount spins until the receiver has seen n messages.
func waitCount(b *testing.B, count *atomic.Int64, n int64) {
	b.Helper()
	deadline := time.Now().Add(time.Minute)
	for count.Load() < n {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d", count.Load(), n)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// BenchmarkTCPMeshShort streams data-free control messages one way and
// reports sustained msgs/sec (the Table 3 "service time per message"
// analogue: the cost of one protocol message through the full stack).
func BenchmarkTCPMeshShort(b *testing.B) {
	var count atomic.Int64
	m0, _ := benchPair(b, &count)
	msg := &wire.Msg{Kind: wire.KReadReq, Seg: 1, Page: 2}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := m0.Send(1, msg); err != nil {
			b.Fatal(err)
		}
	}
	waitCount(b, &count, int64(b.N))
	el := time.Since(start).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/el, "msgs/s")
}

// BenchmarkTCPMeshPages streams 512-byte page messages one way and
// reports throughput in msgs/sec and MB/s of page payload.
func BenchmarkTCPMeshPages(b *testing.B) {
	var count atomic.Int64
	m0, _ := benchPair(b, &count)
	data := make([]byte, 512)
	msg := &wire.Msg{Kind: wire.KPageSend, Seg: 1, Page: 2, Data: data}
	b.SetBytes(512)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := m0.Send(1, msg); err != nil {
			b.Fatal(err)
		}
	}
	waitCount(b, &count, int64(b.N))
	el := time.Since(start).Seconds()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/el, "msgs/s")
	b.ReportMetric(float64(b.N)*512/el/1e6, "MB/s")
}

// BenchmarkTCPMeshRoundTrip measures request/response latency: site 0
// sends a control message, site 1 replies, one cycle per op.
func BenchmarkTCPMeshRoundTrip(b *testing.B) {
	done := make(chan struct{}, 1)
	var m0, m1 *TCPMesh
	var err error
	m0, err = NewTCPSite(0, "127.0.0.1:0", func(m *wire.Msg) { done <- struct{}{} })
	if err != nil {
		b.Fatal(err)
	}
	m1, err = NewTCPSite(1, "127.0.0.1:0", func(m *wire.Msg) {
		m1.Send(0, &wire.Msg{Kind: wire.KInstalled, Seg: m.Seg})
	})
	if err != nil {
		m0.Close()
		b.Fatal(err)
	}
	addrs := []string{m0.Addr(), m1.Addr()}
	m0.SetPeers(addrs)
	m1.SetPeers(addrs)
	b.Cleanup(func() { m0.Close(); m1.Close() })
	req := &wire.Msg{Kind: wire.KReadReq, Seg: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m0.Send(1, req); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// TestInprocSteadyStateAllocFreeWithoutObs gates the observability
// instrumentation's disabled cost on the in-process delivery path: with
// no sink attached (the default), a steady-state send—enqueue—drain
// cycle must stay allocation-free, exactly as it was before the obs
// hooks existed. AllocsPerRun counts mallocs process-wide, so the drain
// goroutine's work is included in the measurement.
func TestInprocSteadyStateAllocFreeWithoutObs(t *testing.T) {
	var delivered atomic.Int64
	m := NewInprocMesh([]Handler{func(*wire.Msg) { delivered.Add(1) }})
	defer m.Close()
	p := m.Site(0)
	msg := &wire.Msg{Kind: wire.KInval, Seg: 1, Page: 2}

	// Warm the inbox so its recycled backing arrays have capacity for
	// anything the measured loop can queue.
	const warm = 512
	for i := 0; i < warm; i++ {
		if err := p.Send(0, msg); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Minute)
	for delivered.Load() < warm {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", delivered.Load(), warm)
		}
		time.Sleep(50 * time.Microsecond)
	}

	if n := testing.AllocsPerRun(100, func() {
		if err := p.Send(0, msg); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("inproc send with obs disabled: %v allocs/op, want 0", n)
	}
}
