// Package transport provides the live-mode message fabrics for the
// Mirage DSM: an in-process mesh for single-address-space clusters and
// a TCP mesh carrying the wire format over real sockets. Both deliver
// *wire.Msg values to a per-site handler, preserving per-sender FIFO
// order — the virtual-circuit guarantee the protocol assumes from
// Locus (§7.1).
package transport

import (
	"fmt"

	"mirage/internal/wire"
)

// Handler receives delivered messages for a site. Implementations call
// it from a single delivery goroutine per site: handlers never race
// with themselves.
//
// Ownership: the message belongs to the handler, which may retain it
// (and its Data) indefinitely. Fabrics whose decode path aliases a
// reused read buffer are responsible for un-aliasing Data (see
// wire.Msg.CloneData) before delivery.
type Handler func(m *wire.Msg)

// Transport sends protocol messages between sites.
type Transport interface {
	// Send queues m for delivery to site `to`. It must not block on
	// the receiver's processing. Loopback (to == own site) is
	// delivered like any other message.
	Send(to int, m *wire.Msg) error
	// Close tears the fabric down; subsequent Sends fail.
	Close() error
}

// ErrClosed is returned by Send after Close.
var errClosed = fmt.Errorf("transport: closed")
