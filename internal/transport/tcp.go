package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"mirage/internal/wire"
)

// TCPMesh carries the Mirage wire protocol over real TCP sockets: one
// listener per site and one outbound connection per (sender, receiver)
// pair, established lazily and kept open — the Locus virtual-circuit
// discipline. Frames are the wire binary encoding prefixed by the
// sender's handshake (once per connection); TCP's ordering gives the
// per-circuit FIFO the protocol assumes.
//
// The mesh is for sites within one OS (typically loopback): the
// control plane (segment naming) stays in-process, as noted in
// DESIGN.md; the data plane is genuinely on the wire.
type TCPMesh struct {
	addrs    []string
	handler  Handler
	site     int
	listener net.Listener

	mu      sync.Mutex
	conns   map[int]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
	errs    TCPErrors
	onError func(error)
	wg      sync.WaitGroup
}

// TCPErrors are a mesh's cumulative transport-fault counters.
type TCPErrors struct {
	DecodeErrors   int // frames that failed wire.Decode (connection dropped)
	CorruptStreams int // length prefixes beyond any legal frame (connection dropped)
	WriteErrors    int // outbound write/flush failures (cached circuit evicted)
	Redials        int // successful re-establishments after an eviction
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

// NewTCPSite starts a listener for one site at addr (use "127.0.0.1:0"
// to pick a free port) and returns the mesh half for that site. After
// all sites are created, call SetPeers with every site's address (in
// site order) on each mesh.
func NewTCPSite(site int, addr string, h Handler) (*TCPMesh, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &TCPMesh{
		site:     site,
		handler:  h,
		listener: l,
		conns:    make(map[int]*tcpConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	m.wg.Add(1)
	go m.accept()
	return m, nil
}

// Addr returns the listener's address for distribution to peers.
func (m *TCPMesh) Addr() string { return m.listener.Addr().String() }

// OnError installs a callback invoked (outside the mesh's locks) for
// every transport fault the mesh absorbs: decode failures, corrupt
// streams, write errors. Install before traffic starts.
func (m *TCPMesh) OnError(fn func(error)) {
	m.mu.Lock()
	m.onError = fn
	m.mu.Unlock()
}

// Errors returns a snapshot of the fault counters.
func (m *TCPMesh) Errors() TCPErrors {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.errs
}

// noteError bumps one counter and reports the fault.
func (m *TCPMesh) noteError(counter *int, err error) {
	m.mu.Lock()
	*counter++
	cb := m.onError
	m.mu.Unlock()
	if cb != nil {
		cb(err)
	}
}

// SetPeers supplies every site's listen address, indexed by site ID.
func (m *TCPMesh) SetPeers(addrs []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addrs = append([]string(nil), addrs...)
}

func (m *TCPMesh) accept() {
	defer m.wg.Done()
	for {
		c, err := m.listener.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			c.Close()
			return
		}
		m.inbound[c] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.serve(c)
	}
}

// serve reads frames from one inbound connection and delivers them.
func (m *TCPMesh) serve(c net.Conn) {
	defer m.wg.Done()
	defer func() {
		c.Close()
		m.mu.Lock()
		delete(m.inbound, c)
		m.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > wire.MaxData+1024 {
			// No legal frame is this long; the stream has lost sync and
			// cannot be resynchronized — drop the connection.
			m.noteError(&m.errs.CorruptStreams,
				fmt.Errorf("transport: site %d: corrupt stream: frame length %d", m.site, n))
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		msg, _, err := wire.Decode(buf)
		if err != nil {
			m.noteError(&m.errs.DecodeErrors,
				fmt.Errorf("transport: site %d: decode inbound frame: %w", m.site, err))
			return
		}
		m.handler(&msg)
	}
}

// Send implements Transport. A write failure on a cached circuit
// evicts it and redials once: the peer may simply have restarted its
// listener, and a stale half-open circuit must not wedge the pair
// forever. If the fresh circuit fails too, the error is returned (the
// reliability layer, when enabled, handles retry pacing).
func (m *TCPMesh) Send(to int, msg *wire.Msg) error {
	if to == m.site {
		// Loopback stays off the wire but keeps FIFO with itself.
		m.handler(msg)
		return nil
	}
	frame := wire.Encode(nil, msg)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, fresh, err := m.conn(to)
		if err != nil {
			return err
		}
		if attempt > 0 && fresh {
			m.mu.Lock()
			m.errs.Redials++
			m.mu.Unlock()
		}
		if lastErr = conn.writeFrame(hdr[:], frame); lastErr == nil {
			return nil
		}
		m.evict(to, conn, lastErr)
	}
	return fmt.Errorf("transport: send to site %d: %w", to, lastErr)
}

// writeFrame writes one length-prefixed frame under the circuit lock.
func (c *tcpConn) writeFrame(hdr, frame []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(hdr); err != nil {
		return err
	}
	if _, err := c.w.Write(frame); err != nil {
		return err
	}
	return c.w.Flush()
}

// evict drops a failed outbound circuit from the cache (unless a
// concurrent sender already replaced it) and records the fault.
func (m *TCPMesh) evict(to int, c *tcpConn, cause error) {
	m.mu.Lock()
	if m.conns[to] == c {
		delete(m.conns, to)
	}
	m.errs.WriteErrors++
	cb := m.onError
	m.mu.Unlock()
	c.c.Close()
	if cb != nil {
		cb(fmt.Errorf("transport: site %d: write to site %d: %w", m.site, to, cause))
	}
}

// conn returns the cached circuit to a peer, dialing one if absent.
// fresh reports whether this call established the circuit.
func (m *TCPMesh) conn(to int) (tc *tcpConn, fresh bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, errClosed
	}
	if c, ok := m.conns[to]; ok {
		return c, false, nil
	}
	if to < 0 || to >= len(m.addrs) {
		return nil, false, fmt.Errorf("transport: no address for site %d", to)
	}
	c, err := net.Dial("tcp", m.addrs[to])
	if err != nil {
		return nil, false, fmt.Errorf("transport: dial site %d: %w", to, err)
	}
	tc = &tcpConn{c: c, w: bufio.NewWriter(c)}
	m.conns[to] = tc
	return tc, true, nil
}

// Close shuts the listener and all connections.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := m.conns
	m.conns = map[int]*tcpConn{}
	inbound := make([]net.Conn, 0, len(m.inbound))
	for c := range m.inbound {
		inbound = append(inbound, c)
	}
	m.mu.Unlock()
	m.listener.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	m.wg.Wait()
	return nil
}
