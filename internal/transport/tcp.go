package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"mirage/internal/wire"
)

// TCPMesh carries the Mirage wire protocol over real TCP sockets: one
// listener per site and one outbound connection per (sender, receiver)
// pair, established lazily and kept open — the Locus virtual-circuit
// discipline. Frames are the wire binary encoding prefixed by the
// sender's handshake (once per connection); TCP's ordering gives the
// per-circuit FIFO the protocol assumes.
//
// The mesh is for sites within one OS (typically loopback): the
// control plane (segment naming) stays in-process, as noted in
// DESIGN.md; the data plane is genuinely on the wire.
type TCPMesh struct {
	addrs    []string
	handler  Handler
	site     int
	listener net.Listener

	mu      sync.Mutex
	conns   map[int]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

// NewTCPSite starts a listener for one site at addr (use "127.0.0.1:0"
// to pick a free port) and returns the mesh half for that site. After
// all sites are created, call SetPeers with every site's address (in
// site order) on each mesh.
func NewTCPSite(site int, addr string, h Handler) (*TCPMesh, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &TCPMesh{
		site:     site,
		handler:  h,
		listener: l,
		conns:    make(map[int]*tcpConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	m.wg.Add(1)
	go m.accept()
	return m, nil
}

// Addr returns the listener's address for distribution to peers.
func (m *TCPMesh) Addr() string { return m.listener.Addr().String() }

// SetPeers supplies every site's listen address, indexed by site ID.
func (m *TCPMesh) SetPeers(addrs []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addrs = append([]string(nil), addrs...)
}

func (m *TCPMesh) accept() {
	defer m.wg.Done()
	for {
		c, err := m.listener.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			c.Close()
			return
		}
		m.inbound[c] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.serve(c)
	}
}

// serve reads frames from one inbound connection and delivers them.
func (m *TCPMesh) serve(c net.Conn) {
	defer m.wg.Done()
	defer func() {
		c.Close()
		m.mu.Lock()
		delete(m.inbound, c)
		m.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > wire.MaxData+1024 {
			return // corrupt stream
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		msg, _, err := wire.Decode(buf)
		if err != nil {
			return
		}
		m.handler(&msg)
	}
}

// Send implements Transport.
func (m *TCPMesh) Send(to int, msg *wire.Msg) error {
	if to == m.site {
		// Loopback stays off the wire but keeps FIFO with itself.
		m.handler(msg)
		return nil
	}
	conn, err := m.conn(to)
	if err != nil {
		return err
	}
	frame := wire.Encode(nil, msg)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if _, err := conn.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := conn.w.Write(frame); err != nil {
		return err
	}
	return conn.w.Flush()
}

func (m *TCPMesh) conn(to int) (*tcpConn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	if c, ok := m.conns[to]; ok {
		return c, nil
	}
	if to < 0 || to >= len(m.addrs) {
		return nil, fmt.Errorf("transport: no address for site %d", to)
	}
	c, err := net.Dial("tcp", m.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial site %d: %w", to, err)
	}
	tc := &tcpConn{c: c, w: bufio.NewWriter(c)}
	m.conns[to] = tc
	return tc, nil
}

// Close shuts the listener and all connections.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := m.conns
	m.conns = map[int]*tcpConn{}
	inbound := make([]net.Conn, 0, len(m.inbound))
	for c := range m.inbound {
		inbound = append(inbound, c)
	}
	m.mu.Unlock()
	m.listener.Close()
	for _, c := range conns {
		c.c.Close()
	}
	for _, c := range inbound {
		c.Close()
	}
	m.wg.Wait()
	return nil
}
