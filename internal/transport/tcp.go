package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"mirage/internal/obs"
	"mirage/internal/wire"
)

// TCPMesh carries the Mirage wire protocol over real TCP sockets: one
// listener per site and one outbound connection per (sender, receiver)
// pair, established lazily and kept open — the Locus virtual-circuit
// discipline. Frames are the wire binary encoding behind a 4-byte
// length prefix; TCP's ordering gives the per-circuit FIFO the
// protocol assumes.
//
// Data path. Send appends the encoded frame straight into the peer
// circuit's staging buffer (wire.AppendFrame); a dedicated writer
// goroutine per circuit swaps the staged bytes out and pushes them
// with one contiguous write, so a burst of N protocol messages costs
// one syscall, not N write+flush pairs. The two staging buffers per
// circuit are recycled forever: the steady-state send path allocates
// nothing. TCP_NODELAY is set explicitly on every circuit:
// batching happens here, where message boundaries are known, never in
// the kernel where it would add delay. Inbound, each connection reuses
// a single read buffer sized up to the max frame; decoded control
// messages borrow nothing from it, and page-carrying messages get their
// Data copied out (wire.Msg.CloneData) before the handler — which may
// retain the message indefinitely — sees them.
//
// The mesh is for sites within one OS (typically loopback): the
// control plane (segment naming) stays in-process, as noted in
// DESIGN.md; the data plane is genuinely on the wire.
type TCPMesh struct {
	addrs    []string
	handler  Handler
	site     int
	listener net.Listener

	mu      sync.Mutex
	conns   map[int]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
	errs    TCPErrors
	onError func(error)
	wg      sync.WaitGroup

	obs *obs.Obs // batch-flush metrics sink; nil when observability is off
}

// SetObs attaches an observability sink: each writer-goroutine batch
// flush is then counted (flush_batches / flush_frames / flush_bytes,
// attributed to the sending site) and sized into the flush histograms.
// Install before traffic starts.
func (m *TCPMesh) SetObs(o *obs.Obs) {
	m.mu.Lock()
	m.obs = o
	m.mu.Unlock()
}

// TCPErrors are a mesh's cumulative transport-fault counters.
type TCPErrors struct {
	DecodeErrors   int // frames that failed wire.Decode (connection dropped)
	CorruptStreams int // length prefixes beyond any legal frame (connection dropped)
	WriteErrors    int // outbound dial/write failures (cached circuit evicted)
	Redials        int // successful re-establishments after an eviction
}

// maxQueuedBytes bounds one circuit's staging buffer. Senders that
// outrun the socket block in Send until the writer drains — the same
// backpressure a blocking write syscall used to provide, but applied
// per batch instead of per message. The bound also caps the circuit's
// memory at two staging buffers of roughly this size.
const maxQueuedBytes = 1 << 20

// tcpConn is one outbound circuit: a staging buffer of encoded frames
// drained by a writer goroutine that owns the socket. Senders encode
// under mu, appending to out; the writer swaps out/offs with the spare
// pair, so the two buffers ping-pong between the roles and the data
// path reaches steady state with zero allocation.
type tcpConn struct {
	m  *TCPMesh
	to int

	mu        sync.Mutex
	cond      *sync.Cond // signaled when the staging buffer becomes non-empty
	space     *sync.Cond // signaled when the writer frees staging space
	out       []byte     // staged length-prefixed frames awaiting write
	offs      []int      // start offset of each staged frame in out
	spareOut  []byte     // recycled staging buffer
	spareOffs []int
	closed    bool

	// c is the established socket. It is owned by the writer goroutine;
	// tests fault it deliberately (under mu) to exercise redial.
	c net.Conn
}

// NewTCPSite starts a listener for one site at addr (use "127.0.0.1:0"
// to pick a free port) and returns the mesh half for that site. After
// all sites are created, call SetPeers with every site's address (in
// site order) on each mesh.
func NewTCPSite(site int, addr string, h Handler) (*TCPMesh, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &TCPMesh{
		site:     site,
		handler:  h,
		listener: l,
		conns:    make(map[int]*tcpConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	m.wg.Add(1)
	go m.accept()
	return m, nil
}

// Addr returns the listener's address for distribution to peers.
func (m *TCPMesh) Addr() string { return m.listener.Addr().String() }

// OnError installs a callback invoked (outside the mesh's locks) for
// every transport fault the mesh absorbs: decode failures, corrupt
// streams, dial and write errors. Install before traffic starts.
func (m *TCPMesh) OnError(fn func(error)) {
	m.mu.Lock()
	m.onError = fn
	m.mu.Unlock()
}

// Errors returns a snapshot of the fault counters.
func (m *TCPMesh) Errors() TCPErrors {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.errs
}

// noteError bumps one counter and reports the fault.
func (m *TCPMesh) noteError(counter *int, err error) {
	m.mu.Lock()
	*counter++
	cb := m.onError
	m.mu.Unlock()
	if cb != nil {
		cb(err)
	}
}

// SetPeers supplies every site's listen address, indexed by site ID.
func (m *TCPMesh) SetPeers(addrs []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addrs = append([]string(nil), addrs...)
}

func (m *TCPMesh) accept() {
	defer m.wg.Done()
	for {
		c, err := m.listener.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			c.Close()
			return
		}
		m.inbound[c] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.serve(c)
	}
}

// readBufSize is the bufio size on both sides of a circuit: big enough
// that a full page frame plus a batch of control frames drains in one
// kernel read.
const readBufSize = 64 * 1024

// serve reads frames from one inbound connection and delivers them.
// One frame buffer is reused for the whole connection; wire.Decode
// aliases message Data into it, so data-carrying messages are cloned
// before the handler retains them. Control messages (the vast majority
// of protocol traffic) borrow nothing and allocate nothing here beyond
// the Msg itself.
func (m *TCPMesh) serve(c net.Conn) {
	defer m.wg.Done()
	defer func() {
		c.Close()
		m.mu.Lock()
		delete(m.inbound, c)
		m.mu.Unlock()
	}()
	r := bufio.NewReaderSize(c, readBufSize)
	var hdr [4]byte
	var buf []byte // reused frame buffer, grown on demand up to MaxFrame
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > wire.MaxFrame {
			// No legal frame is this long; the stream has lost sync and
			// cannot be resynchronized — drop the connection.
			m.noteError(&m.errs.CorruptStreams,
				fmt.Errorf("transport: site %d: corrupt stream: frame length %d", m.site, n))
			return
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		frame := buf[:n]
		if _, err := io.ReadFull(r, frame); err != nil {
			return
		}
		msg, _, err := wire.Decode(frame)
		if err != nil {
			m.noteError(&m.errs.DecodeErrors,
				fmt.Errorf("transport: site %d: decode inbound frame: %w", m.site, err))
			return
		}
		if msg.Data != nil {
			// The handler owns the message from here on and the frame
			// buffer is about to be overwritten: un-alias the payload.
			msg.Data = msg.CloneData()
		}
		m.handler(&msg)
	}
}

// Send implements Transport. It encodes the message into the peer
// circuit's staging buffer and returns; the writer goroutine owns the
// socket, so Send blocks only when the circuit's staging bound is full
// (backpressure), never on the wire. Only structural problems (mesh
// closed, unknown peer) surface here; socket faults are absorbed by
// the writer — it evicts the circuit, redials once, and reports
// through the error counters and OnError (the reliability layer, when
// enabled, owns retry pacing beyond that).
func (m *TCPMesh) Send(to int, msg *wire.Msg) error {
	if to == m.site {
		// Loopback stays off the wire but keeps FIFO with itself.
		m.handler(msg)
		return nil
	}
	tc, err := m.conn(to)
	if err != nil {
		return err
	}
	if !tc.enqueue(msg) {
		return errClosed
	}
	return nil
}

// conn returns the circuit record for a peer, creating it (and its
// writer goroutine) if absent. Dialing happens on the writer, off the
// sender's path.
func (m *TCPMesh) conn(to int) (*tcpConn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	if c, ok := m.conns[to]; ok {
		return c, nil
	}
	if to < 0 || to >= len(m.addrs) {
		return nil, fmt.Errorf("transport: no address for site %d", to)
	}
	tc := &tcpConn{m: m, to: to}
	tc.cond = sync.NewCond(&tc.mu)
	tc.space = sync.NewCond(&tc.mu)
	m.conns[to] = tc
	m.wg.Add(1)
	go tc.writeLoop()
	return tc, nil
}

// enqueue encodes one message into the circuit's staging buffer,
// blocking while the buffer is at its byte bound. It reports false
// when the circuit is closed.
func (c *tcpConn) enqueue(msg *wire.Msg) bool {
	c.mu.Lock()
	for len(c.out) >= maxQueuedBytes && !c.closed {
		c.space.Wait()
	}
	if c.closed {
		c.mu.Unlock()
		return false
	}
	c.offs = append(c.offs, len(c.out))
	c.out = wire.AppendFrame(c.out, msg)
	if len(c.offs) == 1 {
		// 0 → non-empty transition: the writer may be waiting. While the
		// buffer stays non-empty the writer is awake (or already woken)
		// and will re-check before sleeping, so no further signal needed.
		c.cond.Signal()
	}
	c.mu.Unlock()
	return true
}

// shutdown wakes the writer for exit, releases blocked senders, and
// closes the socket out from under any blocked write.
func (c *tcpConn) shutdown() {
	c.mu.Lock()
	c.closed = true
	if c.c != nil {
		c.c.Close()
	}
	c.cond.Signal()
	c.space.Broadcast()
	c.mu.Unlock()
}

// writeLoop drains the staging buffer: all frames staged at wakeup go
// out as one contiguous write, so senders bursting protocol traffic
// pay one syscall per batch. On a write fault it evicts the socket and
// redials once, resending only the frames the dead socket had not
// fully accepted; if the fresh socket fails too, the batch is dropped
// and counted (retransmission is the reliability layer's job).
func (c *tcpConn) writeLoop() {
	defer c.m.wg.Done()
	defer func() {
		c.mu.Lock()
		if c.c != nil {
			c.c.Close()
		}
		c.out, c.offs = nil, nil
		c.mu.Unlock()
	}()
	c.m.mu.Lock()
	o := c.m.obs
	c.m.mu.Unlock()
	var batch []byte
	var offs []int
	for {
		c.mu.Lock()
		for len(c.out) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		batch, c.out = c.out, c.spareOut[:0]
		offs, c.offs = c.offs, c.spareOffs[:0]
		c.spareOut, c.spareOffs = nil, nil
		c.space.Broadcast()
		c.mu.Unlock()

		o.Count(c.m.site, obs.CFlushBatch)
		o.CountN(c.m.site, obs.CFlushFrame, int64(len(offs)))
		o.CountN(c.m.site, obs.CFlushByte, int64(len(batch)))
		o.Observe(obs.HFlushFrames, int64(len(offs)))
		o.Observe(obs.HFlushBytes, int64(len(batch)))

		rest := c.writeFrames(batch, offs, 0)
		if rest > 0 {
			// Evict the dead socket and retry the unsent tail once on a
			// fresh one; drop it if that fails as well.
			if c.redial() {
				rest = c.writeFrames(batch, offs, len(offs)-rest)
			}
			if rest > 0 {
				c.fail(fmt.Errorf("transport: site %d: dropped %d frames to site %d", c.m.site, rest, c.to))
			}
		}
		c.mu.Lock()
		if c.spareOut == nil {
			// Recycle the drained staging pair for the next swap.
			c.spareOut, c.spareOffs = batch[:0], offs[:0]
		}
		c.mu.Unlock()
	}
}

// writeFrames pushes the staged frames starting at frame index `from`
// with one contiguous write, dialing first if the circuit has no
// socket. It returns the number of frames (from the batch's tail) that
// were not fully accepted by the socket; 0 means complete success.
func (c *tcpConn) writeFrames(data []byte, offs []int, from int) (unsent int) {
	if from >= len(offs) {
		return 0
	}
	conn := c.socket()
	if conn == nil {
		return len(offs) - from
	}
	base := offs[from]
	n, err := conn.Write(data[base:])
	if err == nil {
		return 0
	}
	c.evict(conn, err)
	// Find the first frame the socket did not fully accept: everything
	// before it was handed to the kernel (and possibly delivered), so
	// resending those on a fresh circuit would duplicate them. The
	// partially accepted frame itself is safe to resend — the receiver
	// drops a connection that dies mid-frame without delivering it.
	written := base + n
	for i := from; i < len(offs); i++ {
		end := len(data)
		if i+1 < len(offs) {
			end = offs[i+1]
		}
		if end > written {
			return len(offs) - i
		}
	}
	return 0
}

// socket returns the circuit's established socket, dialing if needed.
// A nil return means the peer is unreachable (counted and reported).
func (c *tcpConn) socket() net.Conn {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	if c.c != nil {
		conn := c.c
		c.mu.Unlock()
		return conn
	}
	c.mu.Unlock()

	c.m.mu.Lock()
	addr := ""
	if c.to < len(c.m.addrs) {
		addr = c.m.addrs[c.to]
	}
	c.m.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		c.fail(fmt.Errorf("transport: dial site %d: %w", c.to, err))
		return nil
	}
	if t, ok := conn.(*net.TCPConn); ok {
		// Explicit, though it is Go's default: batching is done here at
		// the frame layer, the kernel must never sit on a flushed batch.
		t.SetNoDelay(true)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil
	}
	c.c = conn
	c.mu.Unlock()
	return conn
}

// evict drops the circuit's socket after a write fault and records it.
func (c *tcpConn) evict(conn net.Conn, cause error) {
	c.mu.Lock()
	if c.c == conn {
		c.c = nil
	}
	c.mu.Unlock()
	conn.Close()
	c.m.noteError(&c.m.errs.WriteErrors,
		fmt.Errorf("transport: site %d: write to site %d: %w", c.m.site, c.to, cause))
}

// redial re-establishes the circuit after an eviction: the peer may
// simply have restarted its listener, and a stale half-open socket
// must not wedge the pair forever.
func (c *tcpConn) redial() bool {
	if c.socket() == nil {
		return false
	}
	c.m.mu.Lock()
	c.m.errs.Redials++
	c.m.mu.Unlock()
	return true
}

// fail counts one unrecoverable outbound fault.
func (c *tcpConn) fail(err error) {
	c.m.noteError(&c.m.errs.WriteErrors, err)
}

// Close shuts the listener and all connections.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := m.conns
	m.conns = map[int]*tcpConn{}
	inbound := make([]net.Conn, 0, len(m.inbound))
	for c := range m.inbound {
		inbound = append(inbound, c)
	}
	m.mu.Unlock()
	m.listener.Close()
	for _, c := range conns {
		c.shutdown()
	}
	for _, c := range inbound {
		c.Close()
	}
	m.wg.Wait()
	return nil
}
