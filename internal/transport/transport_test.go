package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mirage/internal/wire"
)

// collect gathers delivered messages per site, thread-safely.
type collect struct {
	mu   sync.Mutex
	msgs []*wire.Msg
}

func (c *collect) handler() Handler {
	return func(m *wire.Msg) {
		c.mu.Lock()
		c.msgs = append(c.msgs, m)
		c.mu.Unlock()
	}
}

func (c *collect) wait(t *testing.T, n int) []*wire.Msg {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]*wire.Msg(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d messages", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInprocDeliveryAndOrder(t *testing.T) {
	var c0, c1 collect
	mesh := NewInprocMesh([]Handler{c0.handler(), c1.handler()})
	defer mesh.Close()
	p0 := mesh.Site(0)
	for i := 0; i < 100; i++ {
		if err := p0.Send(1, &wire.Msg{Kind: wire.KReadReq, Page: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := c1.wait(t, 100)
	for i, m := range got {
		if m.Page != int32(i) {
			t.Fatalf("order broken at %d: page %d", i, m.Page)
		}
	}
}

func TestInprocLoopback(t *testing.T) {
	var c0 collect
	mesh := NewInprocMesh([]Handler{c0.handler()})
	defer mesh.Close()
	if err := mesh.Site(0).Send(0, &wire.Msg{Kind: wire.KBusy}); err != nil {
		t.Fatal(err)
	}
	got := c0.wait(t, 1)
	if got[0].Kind != wire.KBusy {
		t.Fatalf("kind = %v", got[0].Kind)
	}
}

func TestInprocOutOfRange(t *testing.T) {
	var c0 collect
	mesh := NewInprocMesh([]Handler{c0.handler()})
	defer mesh.Close()
	if err := mesh.Site(0).Send(3, &wire.Msg{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestInprocSendAfterClose(t *testing.T) {
	var c0 collect
	mesh := NewInprocMesh([]Handler{c0.handler()})
	mesh.Close()
	if err := mesh.Site(0).Send(0, &wire.Msg{Kind: wire.KBusy}); err == nil {
		t.Fatal("expected error after close")
	}
}

func newTCPPair(t *testing.T, h0, h1 Handler) (*TCPMesh, *TCPMesh) {
	t.Helper()
	m0, err := NewTCPSite(0, "127.0.0.1:0", h0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewTCPSite(1, "127.0.0.1:0", h1)
	if err != nil {
		m0.Close()
		t.Fatal(err)
	}
	addrs := []string{m0.Addr(), m1.Addr()}
	m0.SetPeers(addrs)
	m1.SetPeers(addrs)
	t.Cleanup(func() { m0.Close(); m1.Close() })
	return m0, m1
}

func TestTCPDelivery(t *testing.T) {
	var c0, c1 collect
	m0, m1 := newTCPPair(t, c0.handler(), c1.handler())
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := m0.Send(1, &wire.Msg{Kind: wire.KPageSend, Seg: 4, Page: 9, Data: data}); err != nil {
		t.Fatal(err)
	}
	got := c1.wait(t, 1)
	if got[0].Seg != 4 || got[0].Page != 9 || len(got[0].Data) != 512 || got[0].Data[5] != 15 {
		t.Fatalf("got %+v", got[0])
	}
	// And back the other way.
	if err := m1.Send(0, &wire.Msg{Kind: wire.KInstalled, Seg: 4}); err != nil {
		t.Fatal(err)
	}
	back := c0.wait(t, 1)
	if back[0].Kind != wire.KInstalled {
		t.Fatalf("kind = %v", back[0].Kind)
	}
}

func TestTCPOrderUnderLoad(t *testing.T) {
	var c0, c1 collect
	m0, _ := newTCPPair(t, c0.handler(), c1.handler())
	const n = 500
	for i := 0; i < n; i++ {
		m := &wire.Msg{Kind: wire.KReadReq, Page: int32(i)}
		if i%3 == 0 {
			m.Kind = wire.KPageSend
			m.Data = make([]byte, 512)
		}
		if err := m0.Send(1, m); err != nil {
			t.Fatal(err)
		}
	}
	got := c1.wait(t, n)
	for i, m := range got {
		if m.Page != int32(i) {
			t.Fatalf("order broken at %d: page %d", i, m.Page)
		}
	}
}

func TestTCPLoopbackSkipsWire(t *testing.T) {
	var c0, c1 collect
	m0, _ := newTCPPair(t, c0.handler(), c1.handler())
	if err := m0.Send(0, &wire.Msg{Kind: wire.KBusy}); err != nil {
		t.Fatal(err)
	}
	got := c0.wait(t, 1)
	if got[0].Kind != wire.KBusy {
		t.Fatalf("kind = %v", got[0].Kind)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	var c0 collect
	m0, err := NewTCPSite(0, "127.0.0.1:0", c0.handler())
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	m0.SetPeers([]string{m0.Addr()})
	if err := m0.Send(5, &wire.Msg{}); err == nil {
		t.Fatal("expected error for unknown peer")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	var c0, c1 collect
	m0, _ := newTCPPair(t, c0.handler(), c1.handler())
	m0.Close()
	if err := m0.Send(1, &wire.Msg{Kind: wire.KBusy}); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	var c0, c1 collect
	m0, _ := newTCPPair(t, c0.handler(), c1.handler())
	var wg sync.WaitGroup
	const per = 50
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := m0.Send(1, &wire.Msg{Kind: wire.KReadReq, Seg: int32(g), Page: int32(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	got := c1.wait(t, 4*per)
	// Per-goroutine order is not guaranteed across goroutines, but
	// every message must arrive intact exactly once.
	seen := map[string]bool{}
	for _, m := range got {
		k := fmt.Sprintf("%d/%d", m.Seg, m.Page)
		if seen[k] {
			t.Fatalf("duplicate %s", k)
		}
		seen[k] = true
	}
	if len(seen) != 4*per {
		t.Fatalf("got %d unique of %d", len(seen), 4*per)
	}
}

func TestTCPWriteFailureEvictsAndRedials(t *testing.T) {
	var c0, c1 collect
	m0, _ := newTCPPair(t, c0.handler(), c1.handler())
	if err := m0.Send(1, &wire.Msg{Kind: wire.KReadReq, Seg: 1}); err != nil {
		t.Fatal(err)
	}
	c1.wait(t, 1)

	// Break the cached circuit behind the mesh's back: the next write
	// must fail the stale socket, evict it, redial, and still deliver.
	m0.mu.Lock()
	tc := m0.conns[1]
	m0.mu.Unlock()
	tc.mu.Lock()
	if tc.c != nil {
		tc.c.Close()
	}
	tc.mu.Unlock()
	var err error
	for i := 0; i < 20; i++ {
		// The first write after a peer close can land in the kernel
		// buffer; keep sending until the failure surfaces and the mesh
		// recovers.
		if err = m0.Send(1, &wire.Msg{Kind: wire.KReadReq, Seg: 2}); err != nil {
			t.Fatalf("send after redial: %v", err)
		}
		if m0.Errors().WriteErrors > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	e := m0.Errors()
	if e.WriteErrors == 0 || e.Redials == 0 {
		t.Fatalf("no eviction/redial recorded: %+v", e)
	}
	// The circuit works again end to end.
	if err := m0.Send(1, &wire.Msg{Kind: wire.KReadReq, Seg: 3}); err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < 100 && !found; i++ {
		c1.mu.Lock()
		for _, m := range c1.msgs {
			if m.Seg == 3 {
				found = true
			}
		}
		c1.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	if !found {
		t.Fatal("message after redial never delivered")
	}
}

func TestTCPRetainedDataSurvivesBufferReuse(t *testing.T) {
	// The receive path reuses one frame buffer per connection and
	// wire.Decode aliases Data into it. The mesh must un-alias before
	// delivery: a handler that retains a page message (as the engine's
	// reliability layer does) must see its payload intact after later
	// frames overwrite the read buffer.
	var c0, c1 collect
	m0, _ := newTCPPair(t, c0.handler(), c1.handler())
	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(i)
	}
	if err := m0.Send(1, &wire.Msg{Kind: wire.KPageSend, Page: 1, Data: page}); err != nil {
		t.Fatal(err)
	}
	got := c1.wait(t, 1)
	retained := got[0]
	// Flood the same connection with frames carrying different bytes so
	// the reused read buffer is overwritten many times.
	junk := make([]byte, 512)
	for i := range junk {
		junk[i] = 0xAA
	}
	for i := 0; i < 200; i++ {
		if err := m0.Send(1, &wire.Msg{Kind: wire.KPageSend, Page: 2, Data: junk}); err != nil {
			t.Fatal(err)
		}
	}
	c1.wait(t, 201)
	for i, b := range retained.Data {
		if b != byte(i) {
			t.Fatalf("retained Data corrupted at %d: got %#x, want %#x (read buffer aliasing)", i, b, byte(i))
		}
	}
}

func TestTCPInboundCorruptionCounted(t *testing.T) {
	var c0 collect
	m0, err := NewTCPSite(0, "127.0.0.1:0", c0.handler())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m0.Close() })
	faults := make(chan error, 4)
	m0.OnError(func(err error) { faults <- err })

	// A garbage frame with a plausible length: decode error.
	c, err := net.Dial("tcp", m0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte{0, 0, 0, 8, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
	<-faults
	c.Close()

	// An absurd length prefix: corrupt stream.
	c, err = net.Dial("tcp", m0.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte{0xff, 0xff, 0xff, 0xff})
	<-faults
	c.Close()

	e := m0.Errors()
	if e.DecodeErrors != 1 || e.CorruptStreams != 1 {
		t.Fatalf("errors = %+v, want 1 decode + 1 corrupt", e)
	}
}
