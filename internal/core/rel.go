package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/wire"
)

// ErrUnreachable reports a degraded grant: a peer the access depended
// on stayed unreachable past the retry budget, so the fault was failed
// back to the accessor instead of blocking forever. The paper (§10.0)
// deferred this whole problem to Locus virtual circuits; see DESIGN.md
// §7 for the recovery semantics chosen here.
var ErrUnreachable = errors.New("core: peer unreachable (degraded grant)")

// Reliability configures the engine's reliable-delivery layer: a
// per-peer sequenced channel with cumulative acks, duplicate
// suppression, resequencing, and bounded exponential-backoff
// retransmission. It restores the Locus virtual-circuit guarantees
// (§5.0: reliable FIFO delivery) that the protocol state machines
// assume, over a fabric that may drop, duplicate, reorder or delay —
// internal/chaos being the resident adversary.
//
// Reliability is opt-in (Options.Reliability nil keeps the engine
// bit-identical to the paper reproduction: no acks, no extra traffic,
// E1–E5 unchanged).
type Reliability struct {
	// AckTimeout is the initial retransmission timeout; it doubles per
	// attempt up to MaxBackoff. Default 30ms (≈4 short RTTs on the
	// calibrated network).
	AckTimeout time.Duration
	// MaxBackoff caps the doubled timeout. Default 1s.
	MaxBackoff time.Duration
	// MaxAttempts is the transmission budget per message (first send
	// included) before the channel declares the peer unreachable and
	// fails every in-flight message to it. Default 8.
	MaxAttempts int
	// RequestTimeout is the requester-side end-to-end deadline for an
	// outstanding page request: when it expires with the request still
	// unsatisfied, the fault is failed back to the accessor with
	// ErrUnreachable. It is the universal backstop against protocol
	// hangs the per-message budget cannot see (e.g. a grant stuck
	// behind a partitioned third party). Default 8s — comfortably past
	// the give-up horizon of the message budget.
	RequestTimeout time.Duration
	// Sites is the cluster size, filled by the cluster constructors
	// (like Failover.Sites). At 16 sites and above, an unset AckTimeout
	// auto-scales linearly with Sites instead of taking the 30ms
	// default: a library serializes N near-simultaneous installs (and
	// their acks) at a few ms each, so a fixed small timeout retransmits
	// into its own backlog and congestion-collapses the cluster into a
	// give-up livelock (first observed in the E20 invalidation sweep).
	// The scaled profile is AckTimeout = Sites×8ms, and — where unset —
	// MaxBackoff = 4×AckTimeout, MaxAttempts = 3, RequestTimeout =
	// 25×AckTimeout. Zero (or Sites < 16) keeps the fixed defaults.
	Sites int
	// NoAutoScale opts out of the Sites-based AckTimeout scaling,
	// keeping the fixed defaults at any cluster size.
	NoAutoScale bool
}

// autoScaleSites is the cluster size at which an unset AckTimeout stops
// defaulting to the fixed 30ms and starts scaling with Sites.
const autoScaleSites = 16

func (r Reliability) withDefaults() Reliability {
	if r.AckTimeout == 0 && r.Sites >= autoScaleSites && !r.NoAutoScale {
		rt := time.Duration(r.Sites) * 8 * time.Millisecond
		r.AckTimeout = rt
		if r.MaxBackoff == 0 {
			r.MaxBackoff = 4 * rt
		}
		if r.MaxAttempts == 0 {
			r.MaxAttempts = 3
		}
		if r.RequestTimeout == 0 {
			r.RequestTimeout = 25 * rt
		}
	}
	if r.AckTimeout == 0 {
		r.AckTimeout = 30 * time.Millisecond
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = time.Second
	}
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 8
	}
	if r.RequestTimeout == 0 {
		r.RequestTimeout = 8 * time.Second
	}
	return r
}

// relPending is one unacknowledged sequenced message at the sender.
type relPending struct {
	m        *wire.Msg
	attempts int // transmissions so far
	cancel   func()
}

// relPeer is the two directions of one peer's channel.
type relPeer struct {
	// Sender half: our stream to the peer.
	nextSeq uint64
	epoch   uint32
	pending map[uint64]*relPending

	// Receiver half: the peer's stream to us.
	rEpoch uint32
	rNext  uint64 // next expected sequence number
	hold   map[uint64]*wire.Msg
}

// rel is an engine's reliability layer.
type rel struct {
	e     *Engine
	opt   Reliability
	peers map[int]*relPeer
}

func newRel(e *Engine, opt Reliability) *rel {
	return &rel{e: e, opt: opt.withDefaults(), peers: make(map[int]*relPeer)}
}

func (r *rel) peer(site int) *relPeer {
	p, ok := r.peers[site]
	if !ok {
		p = &relPeer{nextSeq: 1, rNext: 1, pending: make(map[uint64]*relPending), hold: make(map[uint64]*wire.Msg)}
		r.peers[site] = p
	}
	return p
}

// timeout returns the retransmission timeout for the given attempt
// count (1 = first transmission already made).
func (r *rel) timeout(attempts int) time.Duration {
	d := r.opt.AckTimeout
	for i := 1; i < attempts; i++ {
		d *= 2
		if d >= r.opt.MaxBackoff {
			return r.opt.MaxBackoff
		}
	}
	return d
}

// send stamps m onto the peer's sequenced stream and transmits it,
// arming the retransmission timer. m is shallow-copied so by-reference
// transports and retransmissions never observe caller mutation.
func (r *rel) send(to int, m *wire.Msg) {
	p := r.peer(to)
	cp := *m
	cp.Seq = p.nextSeq
	cp.Epoch = p.epoch
	p.nextSeq++
	pd := &relPending{m: &cp, attempts: 1}
	p.pending[cp.Seq] = pd
	r.e.env.Send(to, &cp)
	r.arm(to, p, pd)
}

func (r *rel) arm(to int, p *relPeer, pd *relPending) {
	pd.cancel = r.e.env.After(r.timeout(pd.attempts), func() {
		// The channel may have moved on (epoch bump) while this timer
		// was in flight; only act on the live incarnation.
		if p.pending[pd.m.Seq] != pd || pd.m.Epoch != p.epoch {
			return
		}
		if pd.attempts >= r.opt.MaxAttempts {
			r.giveUp(to, p)
			return
		}
		pd.attempts++
		r.e.stats.Retransmits++
		r.e.obs.Count(r.e.site, obs.CRetransmit)
		r.e.emit(obs.Event{Type: obs.EvRetransmit, Kind: pd.m.Kind,
			Seg: pd.m.Seg, Page: pd.m.Page, From: int32(r.e.site), To: int32(to),
			Cycle: pd.m.Cycle, Arg: int64(pd.m.Seq)})
		r.e.env.Send(to, pd.m)
		r.arm(to, p, pd)
	})
}

// giveUp declares the peer unreachable: every in-flight message to it
// is abandoned, the stream restarts on a new epoch (so the receiver
// discards zombie retransmissions), and the engine reacts per message
// through deliveryFailed.
func (r *rel) giveUp(to int, p *relPeer) {
	var msgs []*wire.Msg
	for _, pd := range p.pending {
		if pd.cancel != nil {
			pd.cancel()
		}
		msgs = append(msgs, pd.m)
	}
	p.pending = make(map[uint64]*relPending)
	p.epoch++
	p.nextSeq = 1
	r.e.stats.GaveUp++
	r.e.obs.Count(r.e.site, obs.CGaveUp)
	// React in send order: earlier messages set up state later ones
	// depend on.
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Seq < msgs[j].Seq })
	for _, m := range msgs {
		r.e.deliveryFailed(to, m)
	}
}

// onAck retires every pending message up to the cumulative ack.
func (r *rel) onAck(m *wire.Msg) {
	p := r.peer(int(m.From))
	if m.Epoch != p.epoch {
		return // ack for an abandoned incarnation
	}
	for seq, pd := range p.pending {
		if seq <= m.Seq {
			if pd.cancel != nil {
				pd.cancel()
			}
			delete(p.pending, seq)
		}
	}
}

// onSequenced accepts one sequenced message from a peer: it
// deduplicates, resequences (restoring per-circuit FIFO under
// reordering faults), delivers in order, and acks cumulatively.
// Out-of-order messages are held unacked so a sender give-up can never
// strand an acknowledged-but-undelivered message.
func (r *rel) onSequenced(m *wire.Msg) {
	from := int(m.From)
	p := r.peer(from)
	if m.Epoch != p.rEpoch {
		if m.Epoch < p.rEpoch {
			return // zombie from an abandoned incarnation
		}
		// The sender gave up and restarted its stream.
		p.rEpoch = m.Epoch
		p.rNext = 1
		p.hold = make(map[uint64]*wire.Msg)
	}
	switch {
	case m.Seq < p.rNext:
		// Duplicate (retransmission raced the ack, or a chaos dup).
		r.e.stats.DupDrops++
		r.e.obs.Count(r.e.site, obs.CDupDrop)
		r.ack(from, p)
	case m.Seq == p.rNext:
		p.rNext++
		r.e.handle(m)
		for {
			next, ok := p.hold[p.rNext]
			if !ok {
				break
			}
			delete(p.hold, p.rNext)
			p.rNext++
			r.e.handle(next)
		}
		r.ack(from, p)
	default:
		// Gap: an earlier message is missing (dropped or reordered).
		// Hold, bounded; the sender keeps retransmitting into the gap.
		if len(p.hold) < 1024 {
			p.hold[m.Seq] = m
		}
	}
}

// ack sends the cumulative acknowledgement for everything delivered.
func (r *rel) ack(to int, p *relPeer) {
	r.e.env.Send(to, &wire.Msg{
		Kind: wire.KAck, From: int32(r.e.site), Seq: p.rNext - 1, Epoch: p.rEpoch,
	})
}

// deliveryFailed is the engine's reaction to one message the reliable
// channel could not deliver within its budget. Each message kind has a
// recovery that keeps the library record consistent with the copies
// that actually exist and fails blocked accessors instead of hanging
// them; page data in a failed grant is rehomed at the library, never
// lost. See DESIGN.md §7.
func (e *Engine) deliveryFailed(to int, m *wire.Msg) {
	sn, ok := e.segs[m.Seg]
	if !ok {
		e.stats.Dropped++
		return
	}
	switch m.Kind {
	case wire.KReadReq, wire.KWriteReq:
		// The library is unreachable. With failover enabled, nominate a
		// successor and leave the faults blocked — the request deadline
		// stays armed as the backstop and the takeover's epoch adoption
		// wakes them to re-request. Otherwise fail the access.
		if e.failoverEnabled() && to == sn.curLib &&
			e.triggerFailover(sn, m.Seg, mmu.Copyset{}) {
			return
		}
		e.failPage(sn, m.Seg, m.Page, fmt.Errorf("%w: site %d (library) lost %v", ErrUnreachable, to, m.Kind))

	case wire.KInval, wire.KAddReader:
		// The clock site is unreachable: abort the cycle, deny the
		// requesters, leave the record as it was.
		e.libAbortCycle(sn, m.Page)

	case wire.KPageSend:
		if sn.lib != nil && m.Cycle == 0 {
			return // a rollback refresh copy, not part of a cycle
		}
		// A grant could not reach its new holder. Write grants carry
		// the only current copy: home it at the library. Read grants
		// just shrink the batch.
		fail := &wire.Msg{
			Kind: wire.KGrantFail, Mode: m.Mode, Seg: m.Seg, Page: m.Page,
			Req: int32(to), Cycle: m.Cycle,
		}
		if m.Mode == wire.Write {
			fail.Data = m.Data
		}
		e.send(sn.curLib, fail)

	case wire.KUpgradeGrant:
		// The in-place upgrade never reached the requester. The clock
		// (this site) invalidated its own copy when the cycle was
		// accepted; the captured frame rehomes at the library.
		fail := &wire.Msg{
			Kind: wire.KGrantFail, Mode: wire.Write, Upgrade: true,
			Seg: m.Seg, Page: m.Page, Req: int32(to), Cycle: m.Cycle,
			Data: e.stash[pageKey{m.Seg, m.Page}],
		}
		e.send(sn.curLib, fail)

	case wire.KInvalOrder:
		if rl, ok := e.relay[pageKey{m.Seg, m.Page}]; ok && rl.cycle == m.Cycle {
			e.relayOrderFailed(pageKey{m.Seg, m.Page}, rl, to)
			return
		}
		e.invalOrderFailed(sn, m, to)

	case wire.KRecover:
		if sn.recov != nil && int(m.Req) == e.site {
			// Our holdings query never got through: the queried site is
			// crashed too; rebuild without its report.
			e.recovPeerDone(sn, to)
			return
		}
		// A takeover trigger that could not reach its candidate: walk
		// on to the next one. Readers carries the candidates tried.
		if e.failoverEnabled() && int(m.Req) == to &&
			e.triggerFailover(sn, m.Seg, m.Readers) {
			return
		}
		e.stats.Dropped++

	case wire.KMigrate:
		// The migration offer could not reach the successor. The final
		// chunk is abandoned with the rest of the circuit, so the
		// successor can never install the role: resume as library under
		// the unchanged epoch.
		e.abortMigration(sn, false)

	case wire.KReleaseRead, wire.KReleaseWrite:
		if e.opt.Failover != nil && m.SegEpoch != sn.segEpoch {
			// A release conceived under a superseded epoch: adoptEpoch
			// already re-issued it against the current library and reset
			// the pending count, so this give-up must not decrement it.
			e.stats.Dropped++
			return
		}
		// The library never heard the release; keep the copy and stop
		// waiting so local accesses work again.
		if sn.releasesPending > 0 {
			sn.releasesPending--
			if sn.releasesPending == 0 {
				sn.releasing = false
				for page := range sn.waiters {
					e.wakeWaiters(sn, page)
				}
			}
		}

	case wire.KAppend:
		// A follower's append channel gave up: bench it so its slot stops
		// counting toward (or blocking) the quorum.
		e.replFollowerFailed(sn, to)

	case wire.KAppendAck:
		// The leader is unreachable from this follower — the same verdict
		// a lost request gives a requester: nominate a successor.
		if e.failoverEnabled() && to == sn.curLib &&
			e.triggerFailover(sn, m.Seg, mmu.Copyset{}) {
			return
		}
		e.stats.Dropped++

	case wire.KVote:
		// An election solicitation (Req == this site) that never reached
		// its voter; replies are best-effort like other notifications.
		if int(m.Req) == e.site {
			e.voteSolicitFailed(sn, to)
			return
		}
		e.stats.Dropped++

	default:
		// KInstalled, KBusy, KInvalAck, KAlready, KDenied, KGrantFail,
		// KClockHandoff, KReleaseDone: best-effort notifications. Losing
		// one can stall the remote end's cycle, which the requester-side
		// RequestTimeout backstop converts into a degraded grant there.
		e.stats.Dropped++
	}
}

// invalOrderFailed rolls the clock site back when a reader ordered to
// discard its copy stayed unreachable: the write cycle cannot complete
// (the unreachable reader may still serve local reads), so the clock
// reinstates its own copy, re-ships copies to readers that already
// discarded theirs, restores the reader mask, and reports the aborted
// grant to the library — no data moved, record unchanged.
func (e *Engine) invalOrderFailed(sn *segNode, m *wire.Msg, to int) {
	k := pageKey{m.Seg, m.Page}
	pi, ok := e.pend[k]
	if !ok {
		e.markStale()
		return
	}
	delete(e.pend, k)
	p := int(m.Page)
	now := e.env.Now()
	if !sn.m.Present(p) {
		if pi.data == nil {
			// Nothing to roll back with; the library's copy-carrying
			// abort path is the only option left.
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KGrantFail, Mode: wire.Write, Seg: m.Seg, Page: m.Page,
				Req: pi.m.Req, Cycle: pi.m.Cycle,
			})
			return
		}
		sn.m.Install(p, pi.data, mmu.ReadOnly, now)
		// No Cycle: the rolled-back copy carries no window (a.Window = 0
		// below), and the checker keys window grants on Cycle != 0.
		e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Arg: 1})
	}
	a := sn.m.Aux(p)
	a.Writer = mmu.NoWriter
	a.Window = 0
	a.ReaderMask = pi.origMask
	data := sn.m.Frame(p)
	pi.acked.ForEach(func(s int) {
		e.stats.PagesSent++
		e.send(s, &wire.Msg{
			Kind: wire.KPageSend, Mode: wire.Read, Seg: m.Seg, Page: m.Page,
			Data: append([]byte(nil), data...),
		})
	})
	e.send(sn.curLib, &wire.Msg{
		Kind: wire.KGrantFail, Mode: wire.Write, Seg: m.Seg, Page: m.Page,
		Req: pi.m.Req, Cycle: pi.m.Cycle,
	})
}

// failPage fails every blocked accessor on the page with err: the
// degraded-grant path. Outstanding request state is cleared so a later
// access retries from scratch. A failed write intent drops a stale
// read copy when another site is known to hold one (never the last
// copy), bounding staleness after an upgrade grant was rehomed.
func (e *Engine) failPage(sn *segNode, seg, page int32, err error) {
	hadW := sn.outW[page]
	if !sn.outR[page] && !hadW {
		return
	}
	sn.outR[page] = false
	sn.outW[page] = false
	e.cancelReqTimer(sn, page)
	p := int(page)
	if hadW && sn.m.Present(p) && sn.m.Prot(p) == mmu.ReadOnly {
		a := sn.m.Aux(p)
		if !a.ReaderMask.Equal(mmu.CopysetOf(e.site)) {
			// Either we are not the clock (the clock holds a copy) or
			// other readers exist: discarding ours cannot lose data.
			data := append([]byte(nil), sn.m.Frame(p)...)
			sn.m.Invalidate(p)
			a.ReaderMask = mmu.Copyset{}
			a.Writer = mmu.NoWriter
			e.emit(obs.Event{Type: obs.EvPageState, Seg: seg, Page: page})
			// The library still lists this site as a reader — and
			// possibly as the clock. Shed the record entry (the frame
			// rides along as the rehome copy, like any release) so the
			// library reassigns the clock role; otherwise every later
			// write cycle is aimed at a copy that no longer exists and
			// aborts forever.
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KReleaseRead, Seg: seg, Page: page, Data: data,
			})
		}
	}
	if len(sn.waiters[page]) > 0 {
		if sn.pageErr == nil {
			sn.pageErr = make(map[int32]error)
		}
		sn.pageErr[page] = err
		e.stats.Degraded++
		e.obs.Count(e.site, obs.CDegraded)
	}
	e.wakeWaiters(sn, page)
}

// FaultError takes (returns and clears) the pending degraded-grant
// error for a page. Access layers call it after a fault wake: non-nil
// means the access should fail with the error rather than refault.
func (e *Engine) FaultError(seg, page int32) error {
	sn, ok := e.segs[seg]
	if !ok || sn.pageErr == nil {
		return nil
	}
	err := sn.pageErr[page]
	delete(sn.pageErr, page)
	return err
}

// armReqTimer starts the end-to-end request deadline for a page if not
// already running.
func (e *Engine) armReqTimer(sn *segNode, seg, page int32) {
	if e.rel == nil {
		return
	}
	if sn.reqTimer == nil {
		sn.reqTimer = make(map[int32]func())
	}
	if sn.reqTimer[page] != nil {
		return
	}
	sn.reqTimer[page] = e.env.After(e.rel.opt.RequestTimeout, func() {
		cur, ok := e.segs[seg]
		if !ok || cur != sn {
			return
		}
		delete(sn.reqTimer, page)
		e.failPage(sn, seg, page, fmt.Errorf("%w: request for seg %d page %d timed out", ErrUnreachable, seg, page))
	})
}

// cancelReqTimer stops the request deadline once nothing is
// outstanding for the page.
func (e *Engine) cancelReqTimer(sn *segNode, page int32) {
	if sn.reqTimer == nil {
		return
	}
	if c := sn.reqTimer[page]; c != nil {
		c()
		delete(sn.reqTimer, page)
	}
}

// reqProgress cancels the request deadline when both request flags
// have been satisfied.
func (e *Engine) reqProgress(sn *segNode, page int32) {
	if e.rel == nil {
		return
	}
	if !sn.outR[page] && !sn.outW[page] {
		e.cancelReqTimer(sn, page)
	}
}

// handleDenied runs at a requester whose queued request the library
// could not serve (a peer in the grant path is unreachable).
func (e *Engine) handleDenied(sn *segNode, m *wire.Msg) {
	e.stats.Denied++
	e.obs.Count(e.site, obs.CDenied)
	e.failPage(sn, m.Seg, m.Page, fmt.Errorf("%w: library denied %v of seg %d page %d", ErrUnreachable, m.Mode, m.Seg, m.Page))
}

// libAbortCycle abandons the in-flight grant cycle for a page: the
// requesters it served are denied (they surface errors or retry), the
// authoritative record stays as it was, and the queue continues — the
// library's half of the degraded-grant path.
func (e *Engine) libAbortCycle(sn *segNode, page int32) {
	if sn.lib == nil {
		return
	}
	p := &sn.lib.pages[page]
	if !p.busy {
		e.markStale()
		return
	}
	g := p.grant
	if p.cancelRetry != nil {
		p.cancelRetry()
		p.cancelRetry = nil
	}
	p.busy = false
	p.pendingInstalls = 0
	p.grant = grantCycle{}
	if g.write {
		e.libDeny(sn, page, g.to, wire.Write, false)
	} else {
		g.batch.ForEach(func(s int) { e.libDeny(sn, page, s, wire.Read, false) })
	}
	// The cycle's logged intent is void: log the unchanged record so an
	// elected successor does not probe (or adopt) a grant that died here.
	e.replAppendSet(sn, page, replRecOf(p))
	e.libProcess(sn, page)
}

// libDeny tells a requester its request failed. drop hints that the
// requester's stale read copy was superseded (the library rehomed the
// page) and must be discarded.
func (e *Engine) libDeny(sn *segNode, page int32, site int, mode wire.Mode, drop bool) {
	e.send(site, &wire.Msg{
		Kind: wire.KDenied, Mode: mode, Upgrade: drop, Seg: int32(sn.meta.ID), Page: page,
	})
}

// handleGrantFail runs at the library when a grant could not complete.
// At a non-library site (the clock) it relays an upgrade that landed on
// an invalid copy, attaching the frame captured when the cycle was
// accepted so the library can rehome the page.
func (e *Engine) handleGrantFail(sn *segNode, m *wire.Msg) {
	if sn.lib == nil {
		if sn.curLib == e.site {
			// Mid-recovery (the role is claimed but the record is not
			// rebuilt yet) the failed cycle belongs to the old record and
			// cannot be matched after the rebuild; forwarding would loop
			// the message back here at zero cost. Drop it — the denied
			// requester's timeout backstop re-drives the page.
			e.markStale()
			return
		}
		fwd := *m
		fwd.Data = e.stash[pageKey{m.Seg, m.Page}]
		e.send(sn.curLib, &fwd)
		return
	}
	p := &sn.lib.pages[m.Page]
	if !p.busy || !p.grant.active || m.Cycle != p.cycle {
		e.markStale()
		return
	}
	g := p.grant
	switch {
	case m.Mode == wire.Read && m.Req >= 0 && !g.write:
		// One reader of the batch is unreachable; the rest proceed.
		if !g.batch.Has(int(m.Req)) {
			e.markStale()
			return
		}
		p.grant.batch = g.batch.Remove(int(m.Req))
		e.libDeny(sn, m.Page, int(m.Req), wire.Read, false)
		p.pendingInstalls--
		if p.pendingInstalls == 0 {
			e.libFinishCycle(sn, m.Page)
			e.libProcess(sn, m.Page)
		}

	case g.write && len(m.Data) > 0:
		// The grant carried the only current copy (or, for an upgrade,
		// the clock's captured frame): rehome it so the data survives
		// and the page stays grantable. The requester's stale read copy,
		// if any, is superseded — the denial says to drop it.
		if p.cancelRetry != nil {
			p.cancelRetry()
			p.cancelRetry = nil
		}
		p.busy = false
		p.pendingInstalls = 0
		p.grant = grantCycle{}
		e.libReclaim(sn, m.Page, append([]byte(nil), m.Data...))
		e.libDeny(sn, m.Page, g.to, wire.Write, m.Upgrade)
		e.libProcess(sn, m.Page)

	default:
		// Whole-cycle abort before any data moved (the clock rolled
		// back, or never acted): record unchanged, requesters denied.
		e.libAbortCycle(sn, m.Page)
	}
}
