package core

import (
	"encoding/binary"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/wire"
)

// Library-site failover (DESIGN.md §11).
//
// The paper fixes a segment's library site for life (§6.0) and leans on
// Locus for availability; here, when the reliability layer declares the
// library unreachable, the detecting site nominates a successor — the
// next site after the dead library in ID order — and sends it a
// KRecover trigger. The successor bumps the segment's *library epoch*,
// rebuilds the authoritative record by querying every surviving site
// for its page holdings, and resumes granting. Every protocol message
// carries the sender's idea of the epoch (wire.Msg.SegEpoch): messages
// from superseded epochs are rejected, which both fences in-flight
// traffic of the dead epoch and tells a deposed library that comes back
// that it has been replaced.
//
// Pages with no surviving copy are deliberately NOT zero-filled: the
// only good data is wherever the dead library left it, so the record
// keeps naming the dead site as writer. Grants aimed there fail fast
// (ErrUnreachable) while it is down and work again the moment it
// rejoins the new epoch; a site that rejoins and reports holdings the
// record cannot account for is reconciled by lateReport.

// Failover enables library-site takeover. It requires
// Options.Reliability: the takeover trigger is the reliable channel's
// give-up verdict on a request to the library.
type Failover struct {
	// Sites is the cluster size; successor election walks the site ID
	// space, so every engine must agree on it.
	Sites int
	// RecoverTimeout bounds the successor's wait for holder reports;
	// sites that have not replied by then are treated as crashed and
	// their copies as lost. Default 2s.
	RecoverTimeout time.Duration
}

func (f *Failover) recoverTimeout() time.Duration {
	if f.RecoverTimeout == 0 {
		return 2 * time.Second
	}
	return f.RecoverTimeout
}

// recovery is the successor's transient takeover state for one segment.
type recovery struct {
	from    int           // the dead library being replaced
	started time.Duration // for the recovery-latency histogram
	waiting map[int]bool  // sites whose holdings report is still due
	got     map[int32]*recovPage
	// Library-bound messages (new-epoch requests from sites that
	// already adopted) buffered until the record is rebuilt.
	buffered []*wire.Msg
	cancel   func() // RecoverTimeout timer
	// elect is non-nil when this takeover runs as a replicated-log
	// election (docs/REPLICATION.md) instead of a holder rebuild; the
	// record then installs from the merged log in installElectedLib.
	elect *replElect
}

// recovPage accumulates one page's reported holders.
type recovPage struct {
	readers mmu.Copyset
	writer  int
	clock   int // first reporter claiming the clock role, -1 if none
	// window is the granted Δ reported by the most authoritative holder
	// so far (winRank: 3 writer, 2 clock, 1 reader, 0 none). It lets
	// the rebuild restore a tuned per-page Δ instead of clobbering it
	// with the segment default.
	window  time.Duration
	winRank int
}

// Holdings-report record layout: 13 bytes per held page — the page
// number, a state byte, and the holder's granted window Δ — packed
// into KRecoverReply.Data. The window is what lets a takeover restore
// per-page tuned Δs: holders are the only survivors that know them
// (every install carried the grant's Δ), and the replicated log is not
// always on.
const (
	recRead  = 1 << 0 // site holds a read copy
	recWrite = 1 << 1 // site holds the writable copy
	recClock = 1 << 2 // site believes it has the clock role

	holdingBytes = 4 + 1 + 8
)

// holdingsPerChunk keeps each KRecoverReply under wire.MaxData.
const holdingsPerChunk = 8192

// failoverEnabled reports whether takeover is configured. The trigger
// lives in the reliability layer, so Failover without Reliability is
// inert by construction; NewCluster rejects the combination up front.
func (e *Engine) failoverEnabled() bool {
	return e.opt.Failover != nil && e.rel != nil
}

// triggerFailover nominates a successor for the segment's unreachable
// library and sends it a KRecover trigger. tried accumulates candidates
// already attempted (the trigger itself may be undeliverable); it
// returns false when no candidate remains and the caller should fall
// back to the degraded-grant path.
func (e *Engine) triggerFailover(sn *segNode, seg int32, tried mmu.Copyset) bool {
	fo := e.opt.Failover
	dead := sn.curLib
	cand := -1
	for i := 1; i < fo.Sites; i++ {
		c := (dead + i) % fo.Sites
		if c == dead || tried.Has(c) {
			continue
		}
		cand = c
		break
	}
	if cand < 0 {
		return false
	}
	e.stats.Failovers++
	e.obs.Count(e.site, obs.CFailover)
	e.emit(obs.Event{Type: obs.EvFailover, Seg: seg,
		From: int32(dead), To: int32(cand)})
	e.send(cand, &wire.Msg{
		Kind: wire.KRecover, Seg: seg, Page: -1,
		Req: int32(cand), Readers: tried.Add(cand),
	})
	return true
}

// handleRecover dispatches the three uses of KRecover: a takeover
// trigger (Req names this site, same epoch), a holdings query from a
// recovering successor (higher epoch, From == Req), and a stale-epoch
// notice (higher epoch, Req names the library that sender knows).
func (e *Engine) handleRecover(sn *segNode, m *wire.Msg) {
	if e.opt.Failover == nil {
		e.stats.Dropped++
		return
	}
	switch {
	case m.SegEpoch > sn.segEpoch:
		e.adoptEpoch(sn, m.SegEpoch, int(m.Req))
		e.sendHoldings(sn)
	case m.SegEpoch == sn.segEpoch && int(m.Req) == e.site && !m.Readers.Empty():
		// Takeover trigger: only triggerFailover stamps the tried mask,
		// so an empty Readers cannot nominate a successor. Identity
		// notices (staleEpoch, migration redirects) reuse KRecover with
		// Req naming the library the sender knows — if that happens to be
		// the receiver, treating it as a trigger would launch a crash
		// recovery against a live library.
		e.beginRecovery(sn)
	case m.SegEpoch == sn.segEpoch:
		switch {
		case int(m.Req) == e.site:
			// An identity notice naming this site. If we hold the role,
			// there is nothing to learn; if we do not, the sender's belief
			// and ours are both stale — drop it and let the requester-side
			// timeout backstop resolve the page.
		case int(m.From) != sn.curLib:
			// Stale chatter from a site this epoch already left behind.
		case int(m.Req) == int(m.From):
			// A query that raced another new-epoch message which already
			// moved us forward: (re-)report. Reports merge idempotently.
			e.sendHoldings(sn)
		case int(m.Req) != e.site:
			// Same-epoch identity correction: the site this site still
			// addresses as library says the role lives at Req. Happens
			// when the epoch was adopted blind (adoptAhead learns the
			// number, not the identity) after a voluntary migration, which
			// broadcasts nothing. Re-aim outstanding requests at the
			// successor the deposed library names.
			sn.curLib = int(m.Req)
			e.reaimRequests(sn)
		}
	default:
		e.markStale() // trigger or notice from a superseded epoch
	}
}

// beginRecovery starts the takeover at the nominated successor: bump
// the epoch, claim the library role, and query every surviving site
// for its holdings. Granting resumes in finishRecovery.
func (e *Engine) beginRecovery(sn *segNode) {
	if sn.lib != nil || sn.recov != nil || sn.curLib == e.site {
		return // already the library, or a takeover is running
	}
	dead := sn.curLib
	sn.segEpoch++
	sn.curLib = e.site
	rc := &recovery{
		from:    dead,
		started: e.env.Now(),
		waiting: make(map[int]bool),
		got:     make(map[int32]*recovPage),
	}
	sn.recov = rc
	// Requests aimed at the dead library are dead with it; blocked
	// faults re-issue against this site once the record is rebuilt.
	e.forgetRequests(sn)
	if e.replicationEnabled() && e.replGroupHas(dead, e.site) {
		// This site mirrors the dead library's log: run an election and
		// install from the merged log tail instead of interrogating every
		// holder (docs/REPLICATION.md). Falls back to the holder rebuild
		// if the vote quorum cannot be reached.
		e.beginElection(sn, rc)
		return
	}
	e.mergeHoldings(rc, e.site, e.localHoldings(sn))
	e.queryHoldings(sn, rc)
}

// queryHoldings sends the holdings query to every surviving site and
// arms the report timeout; recovery finishes immediately when there is
// nobody to ask.
func (e *Engine) queryHoldings(sn *segNode, rc *recovery) {
	fo := e.opt.Failover
	seg := int32(sn.meta.ID)
	for s := 0; s < fo.Sites; s++ {
		if s == e.site || s == rc.from {
			continue
		}
		rc.waiting[s] = true
		e.send(s, &wire.Msg{Kind: wire.KRecover, Seg: seg, Page: -1, Req: int32(e.site)})
	}
	if len(rc.waiting) == 0 {
		e.finishRecovery(sn)
		return
	}
	rc.cancel = e.env.After(fo.recoverTimeout(), func() {
		if cur, ok := e.segs[seg]; !ok || cur != sn || sn.recov != rc {
			return
		}
		e.finishRecovery(sn)
	})
}

// recovPeerDone marks one queried site's report complete (or the site
// itself unreachable) and finishes recovery when none remain.
func (e *Engine) recovPeerDone(sn *segNode, s int) {
	rc := sn.recov
	if rc == nil || !rc.waiting[s] {
		return
	}
	delete(rc.waiting, s)
	if len(rc.waiting) == 0 {
		e.finishRecovery(sn)
	}
}

// finishRecovery rebuilds the library record from the collected
// reports, installs it, and resumes granting.
func (e *Engine) finishRecovery(sn *segNode) {
	rc := sn.recov
	if rc == nil {
		return
	}
	if rc.elect != nil {
		// Replicated takeover: the record comes from the merged log, not
		// from holder reports (any reports that did arrive were probe
		// replies and are consumed by resolveIntent).
		e.installElectedLib(sn)
		return
	}
	if rc.cancel != nil {
		rc.cancel()
	}
	sn.recov = nil
	seg := int32(sn.meta.ID)
	lib := newLibSeg(sn.meta)
	for pg := range lib.pages {
		p := &lib.pages[pg]
		rp := rc.got[int32(pg)]
		if rp != nil && rp.winRank > 0 {
			// A surviving holder reported the window its copy was granted
			// with: that IS the page's tuned Δ, so the rebuild keeps it
			// instead of clobbering it with the segment default.
			p.delta = rp.window
		}
		switch {
		case rp == nil:
			// No surviving copy: the only data is wherever the dead
			// library left it. Keep naming it writer — grants aimed
			// there fail fast while it is down and work again when it
			// rejoins. Zero-filling would discard the only good copy.
			p.writer = rc.from
			p.clock = rc.from
		case rp.writer != mmu.NoWriter:
			p.writer = rp.writer
			p.clock = rp.writer
			p.readers = mmu.Copyset{}
			// Read copies alongside a writer are leftovers of a write
			// cycle the crash interrupted mid-collection; order them
			// discarded to restore Table 1's exclusivity.
			rp.readers.Remove(rp.writer).ForEach(func(s int) {
				e.send(s, &wire.Msg{Kind: wire.KInvalOrder, Seg: seg, Page: int32(pg)})
			})
		default:
			p.writer = mmu.NoWriter
			p.readers = rp.readers
			clock := rp.clock
			if clock < 0 || !rp.readers.Has(clock) {
				if rp.readers.Has(e.site) {
					clock = e.site
				} else {
					clock = rp.readers.Sites()[0]
				}
			}
			p.clock = clock
			// Refresh the clock's reader mask to the rebuilt set.
			e.send(clock, &wire.Msg{
				Kind: wire.KClockHandoff, Seg: seg, Page: int32(pg),
				Readers: rp.readers,
			})
		}
	}
	sn.lib = lib
	e.stats.Recoveries++
	e.obs.Count(e.site, obs.CRecovery)
	e.obs.Observe(obs.HRecoverLatency, int64(e.env.Now()-rc.started))
	e.emit(obs.Event{Type: obs.EvRecover, Seg: seg, Arg: int64(rc.from)})
	for _, m := range rc.buffered {
		e.handleLibrary(sn, m)
	}
	rc.buffered = nil
	for p := int32(0); p < int32(sn.m.Pages()); p++ {
		e.wakeWaiters(sn, p)
	}
}

// handleRecoverReply merges one site's holdings report. During recovery
// it feeds the record rebuild; at an established library it is a late
// report from a site that just rejoined the epoch (see lateReport).
func (e *Engine) handleRecoverReply(sn *segNode, m *wire.Msg) {
	if e.opt.Failover == nil || m.SegEpoch != sn.segEpoch {
		e.markStale()
		return
	}
	if m.Page == -2 {
		// Refusal: the peer never attached the segment (see handle's
		// unknown-segment branch). As a queried holder it has nothing to
		// report; as a nominated successor it bounces the takeover to
		// the next candidate in the tried mask.
		switch {
		case sn.recov != nil && int(m.Req) == e.site:
			e.recovPeerDone(sn, int(m.From))
		case sn.recov == nil && sn.lib == nil && int(m.Req) == int(m.From):
			e.triggerFailover(sn, m.Seg, m.Readers)
		}
		return
	}
	hs := e.decodeHoldings(sn, m.Data)
	switch {
	case sn.recov != nil:
		e.mergeHoldings(sn.recov, int(m.From), hs)
		if m.Upgrade { // final chunk
			e.recovPeerDone(sn, int(m.From))
		}
	case sn.lib != nil:
		// A late report can span chunks; the reclaim sweep must only
		// run against the complete set.
		if sn.lateHold == nil {
			sn.lateHold = make(map[int][]holding)
		}
		from := int(m.From)
		sn.lateHold[from] = append(sn.lateHold[from], hs...)
		if m.Upgrade {
			all := sn.lateHold[from]
			delete(sn.lateHold, from)
			e.lateReport(sn, from, all)
		}
	default:
		e.markStale()
	}
}

// adoptEpoch moves this site into a newer library epoch: the previous
// epoch's in-flight state is dead with its library, so outstanding
// requests, clock-side collections, and (if this site WAS the library)
// the library role itself are all dropped. Local page copies stay put —
// they are reported to the new library like any holder's.
func (e *Engine) adoptEpoch(sn *segNode, epoch uint32, newLib int) {
	if epoch <= sn.segEpoch {
		return
	}
	sn.segEpoch = epoch
	sn.curLib = newLib
	seg := int32(sn.meta.ID)
	if sn.lib != nil {
		// Deposed: a successor recovered while this site was presumed
		// dead. The successor's record is authoritative now.
		sn.lib = nil
	}
	if sn.repl != nil {
		// Deposed as replication leader too: quorum gates die with the
		// role (their cycles are dead under the old epoch anyway). The
		// follower-side log is kept — it is this site's ballot if it is
		// ever solicited in a later election.
		sn.repl.lead = nil
	}
	if sn.recov != nil {
		// Our own takeover lost the race to a higher epoch.
		if sn.recov.cancel != nil {
			sn.recov.cancel()
		}
		sn.recov = nil
	}
	if sn.migOut != nil {
		// An outbound migration offer superseded by a higher epoch (or
		// committed by the ack that called us): moot either way.
		if sn.migOut.cancel != nil {
			sn.migOut.cancel()
		}
		sn.migOut = nil
	}
	sn.migIn = nil
	e.rollbackSegPend(sn, seg)
	// Delegated inval subtrees are dead with their epoch: the parent
	// resolves them through its own epoch handling, and answering it
	// from the old epoch would be fenced anyway.
	for k := range e.relay {
		if k.seg == seg {
			delete(e.relay, k)
		}
	}
	for k := range e.stash {
		if k.seg == seg {
			delete(e.stash, k)
		}
	}
	if sn.releasing {
		// In-flight releases died with the old epoch (their eventual
		// give-up is fenced by the epoch guard in deliveryFailed, and a
		// deposed library dropped any it had queued): re-issue against
		// the current library for every frame still held, so the detach
		// can complete instead of waiting on confirmations that will
		// never come.
		sn.releasesPending = 0
		for p := 0; p < sn.m.Pages(); p++ {
			if !sn.m.Present(p) {
				continue
			}
			sn.releasesPending++
			kind := wire.KReleaseRead
			if sn.m.Prot(p) == mmu.ReadWrite {
				kind = wire.KReleaseWrite
			}
			e.send(sn.curLib, &wire.Msg{
				Kind: kind, Seg: seg, Page: int32(p),
				Data: append([]byte(nil), sn.m.Frame(p)...),
			})
		}
		if sn.releasesPending == 0 {
			sn.releasing = false
		}
	}
	e.reaimRequests(sn)
}

// rollbackSegPend rolls back every clock-side pending invalidation of
// the segment, in page order so the emitted page-state events (and any
// sim work they schedule) land identically across replays.
func (e *Engine) rollbackSegPend(sn *segNode, seg int32) {
	for p := int32(0); p < int32(sn.m.Pages()); p++ {
		k := pageKey{seg: seg, page: p}
		if pi, ok := e.pend[k]; ok {
			delete(e.pend, k)
			e.rollbackPend(sn, p, pi)
		}
	}
}

// reaimRequests drops the segment's outstanding-request state and wakes
// every blocked fault so it re-issues against the current library. The
// waiters are woken in page order: map order would reorder the re-sent
// requests between otherwise identical runs and break replay
// determinism.
func (e *Engine) reaimRequests(sn *segNode) {
	e.forgetRequests(sn)
	for p := int32(0); p < int32(sn.m.Pages()); p++ {
		e.wakeWaiters(sn, p)
	}
}

// forgetRequests clears every outstanding request and its deadline for
// the segment, and any degraded-grant verdicts of the old epoch: the
// woken faults re-request against the current library, which may well
// be able to serve pages the dead one could not.
func (e *Engine) forgetRequests(sn *segNode) {
	for page := range sn.outR {
		delete(sn.outR, page)
	}
	for page := range sn.outW {
		delete(sn.outW, page)
	}
	for page, cancel := range sn.reqTimer {
		cancel()
		delete(sn.reqTimer, page)
	}
	sn.pageErr = nil
}

// rollbackPend reinstates the copy a clock site invalidated for a write
// cycle that died with its library epoch. Unlike invalOrderFailed there
// is no library to notify: the new one rebuilds from reports.
func (e *Engine) rollbackPend(sn *segNode, page int32, pi *pendingInval) {
	p := int(page)
	if sn.m.Present(p) || pi.data == nil {
		return
	}
	sn.m.Install(p, pi.data, mmu.ReadOnly, e.env.Now())
	e.emit(obs.Event{Type: obs.EvPageState, Seg: int32(sn.meta.ID), Page: page, Arg: 1})
	a := sn.m.Aux(p)
	a.Writer = mmu.NoWriter
	a.Window = 0
	a.ReaderMask = pi.origMask
}

// staleEpoch rejects a message from a superseded epoch and tells the
// sender which epoch is current — a deposed library that comes back
// learns of its replacement from exactly this notice.
func (e *Engine) staleEpoch(sn *segNode, m *wire.Msg) {
	e.stats.StaleEpoch++
	e.obs.Count(e.site, obs.CStaleEpoch)
	e.send(int(m.From), &wire.Msg{
		Kind: wire.KRecover, Seg: m.Seg, Page: -1, Req: int32(sn.curLib),
	})
}

// adoptAhead handles a non-KRecover message stamped with an epoch this
// site has not adopted yet (the query is in flight on another circuit).
// Library-origin kinds identify the new library directly; for the rest
// the epoch number advances now and the identity follows with the query.
func (e *Engine) adoptAhead(sn *segNode, m *wire.Msg) {
	newLib := sn.curLib
	switch m.Kind {
	case wire.KInval, wire.KAddReader, wire.KAlready, wire.KDenied,
		wire.KClockHandoff, wire.KReleaseDone, wire.KAppend, wire.KVote:
		// Library-origin kinds; a KVote ahead of our epoch comes from an
		// election winner, which is the library of the epoch it installs.
		newLib = int(m.From)
	}
	e.adoptEpoch(sn, m.SegEpoch, newLib)
}

// holding is one decoded holdings-report record.
type holding struct {
	page   int32
	state  byte
	window time.Duration // the granted Δ this copy was installed with
}

// localHoldings reports this site's present pages for the segment.
func (e *Engine) localHoldings(sn *segNode) []holding {
	var hs []holding
	for p := 0; p < sn.m.Pages(); p++ {
		if !sn.m.Present(p) {
			continue
		}
		var st byte
		if sn.m.Prot(p) == mmu.ReadWrite {
			st = recWrite | recClock
		} else {
			st = recRead
			if !sn.m.Aux(p).ReaderMask.Empty() {
				st |= recClock
			}
		}
		hs = append(hs, holding{page: int32(p), state: st, window: sn.m.Aux(p).Window})
	}
	return hs
}

// sendHoldings ships this site's holdings to the current library in
// MaxData-sized chunks; Upgrade marks the final chunk.
func (e *Engine) sendHoldings(sn *segNode) {
	seg := int32(sn.meta.ID)
	hs := e.localHoldings(sn)
	for start := 0; ; start += holdingsPerChunk {
		end := start + holdingsPerChunk
		last := end >= len(hs)
		if last {
			end = len(hs)
		}
		data := make([]byte, 0, (end-start)*holdingBytes)
		for _, h := range hs[start:end] {
			var b [holdingBytes]byte
			binary.BigEndian.PutUint32(b[:4], uint32(h.page))
			b[4] = h.state
			binary.BigEndian.PutUint64(b[5:], uint64(h.window))
			data = append(data, b[:]...)
		}
		e.send(sn.curLib, &wire.Msg{
			Kind: wire.KRecoverReply, Seg: seg, Page: -1, Upgrade: last, Data: data,
		})
		if last {
			return
		}
	}
}

// decodeHoldings parses a report chunk, discarding malformed or
// out-of-range records rather than trusting the wire.
func (e *Engine) decodeHoldings(sn *segNode, data []byte) []holding {
	var hs []holding
	for len(data) >= holdingBytes {
		page := int32(binary.BigEndian.Uint32(data[:4]))
		st := data[4]
		window := time.Duration(binary.BigEndian.Uint64(data[5:]))
		data = data[holdingBytes:]
		if page < 0 || int(page) >= sn.m.Pages() || st&(recRead|recWrite) == 0 ||
			window < 0 {
			continue
		}
		hs = append(hs, holding{page: page, state: st, window: window})
	}
	return hs
}

// mergeHoldings folds one site's report into the rebuild state.
func (e *Engine) mergeHoldings(rc *recovery, site int, hs []holding) {
	for _, h := range hs {
		rp := rc.got[h.page]
		if rp == nil {
			rp = &recovPage{writer: mmu.NoWriter, clock: -1}
			rc.got[h.page] = rp
		}
		rank := 1
		if h.state&recWrite != 0 {
			rp.writer = site
			rank = 3
		} else {
			rp.readers = rp.readers.Add(site)
		}
		if h.state&recClock != 0 && rp.clock < 0 {
			rp.clock = site
		}
		if h.state&recClock != 0 && rank < 2 {
			rank = 2
		}
		if rank > rp.winRank {
			rp.window, rp.winRank = h.window, rank
		}
	}
}

// lateReport reconciles a holdings report arriving outside recovery: a
// site (typically the deposed library) rejoined the epoch. Copies the
// record already accounts for stand; copies it cannot account for
// predate the failover and are ordered discarded; pages the record
// attributes to the reporter that it no longer holds are unrecoverable
// and get reclaimed (zero-filled) so they stop wedging every grant.
func (e *Engine) lateReport(sn *segNode, from int, hs []holding) {
	lib := sn.lib
	seg := int32(sn.meta.ID)
	for _, h := range hs {
		p := &lib.pages[h.page]
		if p.busy {
			continue // never disturb a live grant cycle
		}
		switch {
		case p.writer == from:
			if h.state&recWrite == 0 {
				// The record presumed a writable copy (orphan policy)
				// but the survivor only ever read the page: demote the
				// entry so grant cycles use the right invalidation mode.
				p.writer = mmu.NoWriter
				p.readers = mmu.CopysetOf(from)
				p.clock = from
				e.send(from, &wire.Msg{
					Kind: wire.KClockHandoff, Seg: seg, Page: h.page,
					Readers: p.readers,
				})
			}
		case p.readers.Has(from):
			// Consistent read copy; nothing to do.
		default:
			e.send(from, &wire.Msg{Kind: wire.KInvalOrder, Seg: seg, Page: h.page})
		}
	}
	reported := make(map[int32]bool, len(hs))
	for _, h := range hs {
		reported[h.page] = true
	}
	for pg := range lib.pages {
		p := &lib.pages[pg]
		if p.writer == from && !reported[int32(pg)] && !p.busy {
			e.libReclaim(sn, int32(pg), nil)
			e.libProcess(sn, int32(pg))
		}
	}
}
