package core

import (
	"testing"
	"time"

	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/sim"
	"mirage/internal/trace"
)

// testNet wires N engines together over a toy deterministic transport:
// messages are delivered after a fixed per-hop delay, Exec charges run
// as plain timers. It exercises the protocol state machines without
// the CPU scheduler or the Ethernet model.
type testNet struct {
	t       *testing.T
	k       *sim.Kernel
	engines []*Engine
	delay   time.Duration
	down    map[int]bool // crashed sites: traffic to/from them is dropped
}

type tEnv struct {
	n    *testNet
	site int
}

func (e tEnv) Site() int          { return e.site }
func (e tEnv) Now() time.Duration { return e.n.k.Now().Duration() }
func (e tEnv) After(d time.Duration, fn func()) func() {
	t := e.n.k.After(d, fn)
	return func() { t.Cancel() }
}
func (e tEnv) Send(to int, m NetMsg) {
	if e.n.down[to] || e.n.down[e.site] {
		return // a crashed site neither sends nor receives
	}
	d := e.n.delay
	if to == e.site {
		d = 0
	}
	e.n.k.After(d, func() { e.n.engines[to].Deliver(m) })
}
func (e tEnv) Exec(cost time.Duration, fn func()) {
	e.n.k.After(cost, fn)
}

// zeroCosts makes protocol service free so tests reason about Δ and
// message delays only.
func zeroCosts() *Costs { return &Costs{} }

func newTestNet(t *testing.T, sites int, opt Options) *testNet {
	t.Helper()
	if opt.Costs == nil {
		opt.Costs = zeroCosts()
	}
	n := &testNet{t: t, k: sim.NewKernel(), delay: time.Millisecond, down: make(map[int]bool)}
	for i := 0; i < sites; i++ {
		n.engines = append(n.engines, New(tEnv{n, i}, opt))
	}
	return n
}

// newSeg creates a segment with library at site 0 and registers it on
// every engine.
func (n *testNet) newSeg(pages int, delta time.Duration) *mem.Segment {
	meta := &mem.Segment{
		ID: 1, Key: 42, Size: pages * 512, PageSize: 512, Pages: pages,
		Library: 0, Delta: delta, Mode: 0o666,
	}
	n.engines[0].CreateSegment(meta)
	for i := 1; i < len(n.engines); i++ {
		n.engines[i].AttachSegment(meta)
	}
	return meta
}

// acquire drives a fault loop at a site until the access is granted,
// then returns. It fails the test if the simulation drains first.
func (n *testNet) acquire(site int, seg, page int32, write bool) {
	n.t.Helper()
	e := n.engines[site]
	done := false
	var loop func()
	loop = func() {
		if e.CheckAccess(seg, page, write) == mmu.NoFault {
			done = true
			return
		}
		e.Fault(seg, page, write, 100+int32(site), loop)
	}
	loop()
	for !done {
		if !n.k.Step() {
			n.t.Fatalf("site %d: acquire(seg=%d page=%d write=%v) starved", site, seg, page, write)
		}
	}
}

// settle drains all pending events.
func (n *testNet) settle() { n.k.Run() }

// protState summarizes page protections across sites for invariant
// checks: at most one writer; never a writer alongside readers
// elsewhere.
func (n *testNet) checkSingleWriter(seg, page int32) {
	n.t.Helper()
	writers, readers := 0, 0
	for _, e := range n.engines {
		s := e.Seg(seg)
		if s == nil {
			continue
		}
		switch s.Prot(int(page)) {
		case mmu.ReadWrite:
			writers++
		case mmu.ReadOnly:
			readers++
		}
	}
	if writers > 1 {
		n.t.Fatalf("page %d: %d writable copies", page, writers)
	}
	if writers == 1 && readers > 0 {
		n.t.Fatalf("page %d: writable copy coexists with %d read copies", page, readers)
	}
}

func TestInitialStateLibraryIsWriter(t *testing.T) {
	n := newTestNet(t, 3, Options{})
	seg := n.newSeg(2, 0)
	lib := n.engines[0]
	if lib.Seg(int32(seg.ID)).Prot(0) != mmu.ReadWrite {
		t.Fatal("library must hold pages read-write at creation")
	}
	st := lib.LibraryState(1, 0)
	if st.Writer != 0 || st.Clock != 0 || !st.Readers.Empty() {
		t.Fatalf("library state = %+v", st)
	}
	if lib.Seg(1).Aux(0).Window != 0 {
		t.Fatal("creator's initial hold must not carry a window")
	}
}

func TestRemoteReadFaultTransfersPage(t *testing.T) {
	n := newTestNet(t, 3, Options{})
	n.newSeg(1, 0)
	// Put data at the library.
	copy(n.engines[0].Frame(1, 0), []byte{0xAA, 0xBB})

	n.acquire(1, 1, 0, false)
	f := n.engines[1].Frame(1, 0)
	if f[0] != 0xAA || f[1] != 0xBB {
		t.Fatalf("data not transferred: % x", f[:2])
	}
	if n.engines[1].Seg(1).Prot(0) != mmu.ReadOnly {
		t.Fatal("reader should hold a read-only copy")
	}
	n.settle()
	st := n.engines[0].LibraryState(1, 0)
	// Table 1 Writer/Readers: the old writer (library) downgrades and
	// remains a reader and the clock site.
	if st.Writer != mmu.NoWriter {
		t.Fatalf("writer = %d", st.Writer)
	}
	if !st.Readers.Has(0) || !st.Readers.Has(1) {
		t.Fatalf("readers = %v", st.Readers)
	}
	if st.Clock != 0 {
		t.Fatalf("clock = %d, want downgraded writer 0", st.Clock)
	}
	if n.engines[0].Seg(1).Prot(0) != mmu.ReadOnly {
		t.Fatal("optimization 2: downgraded writer retains a read copy")
	}
	n.checkSingleWriter(1, 0)
}

func TestRemoteWriteFaultInvalidatesWriter(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, 0)
	copy(n.engines[0].Frame(1, 0), []byte{7})

	n.acquire(1, 1, 0, true)
	if n.engines[1].Seg(1).Prot(0) != mmu.ReadWrite {
		t.Fatal("new writer should hold read-write")
	}
	if n.engines[1].Frame(1, 0)[0] != 7 {
		t.Fatal("page data lost on write transfer")
	}
	if n.engines[0].Seg(1).Present(0) {
		t.Fatal("old writer's copy must be invalidated (Writer/Writer row)")
	}
	n.settle()
	st := n.engines[0].LibraryState(1, 0)
	if st.Writer != 1 || st.Clock != 1 {
		t.Fatalf("state = %+v", st)
	}
	n.checkSingleWriter(1, 0)
}

func TestReaderUpgradeSendsNoPage(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, false) // site 1 becomes a reader
	n.settle()
	before := n.engines[0].Stats().PagesSent + n.engines[1].Stats().PagesSent

	n.acquire(1, 1, 0, true) // upgrade in place
	n.settle()
	after := n.engines[0].Stats().PagesSent + n.engines[1].Stats().PagesSent
	if after != before {
		t.Fatalf("upgrade moved %d page copies; optimization 1 sends none", after-before)
	}
	if n.engines[1].Stats().Upgrades != 1 {
		t.Fatalf("upgrades = %d", n.engines[1].Stats().Upgrades)
	}
	if n.engines[0].Seg(1).Present(0) {
		t.Fatal("other readers must be invalidated on upgrade")
	}
	st := n.engines[0].LibraryState(1, 0)
	if st.Writer != 1 {
		t.Fatalf("writer = %d", st.Writer)
	}
	n.checkSingleWriter(1, 0)
}

func TestMultipleReadersCoexist(t *testing.T) {
	n := newTestNet(t, 4, Options{})
	n.newSeg(1, 0)
	for s := 1; s < 4; s++ {
		n.acquire(s, 1, 0, false)
	}
	n.settle()
	st := n.engines[0].LibraryState(1, 0)
	if st.Readers.Count() != 4 { // 3 requesters + downgraded library
		t.Fatalf("readers = %v", st.Readers)
	}
	for s := 0; s < 4; s++ {
		if n.engines[s].Seg(1).Prot(0) != mmu.ReadOnly {
			t.Fatalf("site %d prot = %v", s, n.engines[s].Seg(1).Prot(0))
		}
	}
	n.checkSingleWriter(1, 0)
}

func TestWriteInvalidatesAllReaders(t *testing.T) {
	n := newTestNet(t, 4, Options{})
	n.newSeg(1, 0)
	for s := 1; s < 4; s++ {
		n.acquire(s, 1, 0, false)
	}
	n.settle()
	n.acquire(3, 1, 0, true)
	n.settle()
	for s := 0; s < 3; s++ {
		if n.engines[s].Seg(1).Present(0) {
			t.Fatalf("site %d still holds a copy after remote write", s)
		}
	}
	if n.engines[3].Seg(1).Prot(0) != mmu.ReadWrite {
		t.Fatal("writer lacks the page")
	}
	n.checkSingleWriter(1, 0)
}

func TestCoherenceReadSeesLatestWrite(t *testing.T) {
	n := newTestNet(t, 3, Options{})
	n.newSeg(1, 0)
	// Site 1 writes.
	n.acquire(1, 1, 0, true)
	n.engines[1].Frame(1, 0)[10] = 111
	// Site 2 reads: must see 111.
	n.acquire(2, 1, 0, false)
	if got := n.engines[2].Frame(1, 0)[10]; got != 111 {
		t.Fatalf("stale read: %d", got)
	}
	// Site 2 writes.
	n.acquire(2, 1, 0, true)
	n.engines[2].Frame(1, 0)[10] = 222
	// Site 1 reads again: must see 222.
	n.acquire(1, 1, 0, false)
	if got := n.engines[1].Frame(1, 0)[10]; got != 222 {
		t.Fatalf("stale read: %d", got)
	}
	n.settle()
	n.checkSingleWriter(1, 0)
}

func TestDeltaDelaysInvalidation(t *testing.T) {
	delta := 50 * time.Millisecond
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, delta)
	start := n.k.Now()
	n.acquire(1, 1, 0, true) // first transfer: library window is 0
	gotAt := n.k.Now().Sub(start)
	if gotAt > 20*time.Millisecond {
		t.Fatalf("initial grant took %v; creator hold must not delay", gotAt)
	}
	// Immediately request from site 0: site 1's fresh window must hold
	// the page for ~delta.
	start = n.k.Now()
	n.acquire(0, 1, 0, true)
	wait := n.k.Now().Sub(start)
	if wait < delta {
		t.Fatalf("write granted after %v, before Δ=%v expired", wait, delta)
	}
	if wait > delta+30*time.Millisecond {
		t.Fatalf("write granted after %v; too long after Δ=%v", wait, delta)
	}
	if n.engines[1].Stats().BusyReplies == 0 {
		t.Fatal("PolicyRetry should have produced a busy reply")
	}
	if n.engines[0].Stats().Retries == 0 {
		t.Fatal("library should have retried the invalidation")
	}
}

func TestPolicyQueueAvoidsRetry(t *testing.T) {
	delta := 50 * time.Millisecond
	n := newTestNet(t, 2, Options{Policy: PolicyQueue})
	n.newSeg(1, delta)
	n.acquire(1, 1, 0, true)
	start := n.k.Now()
	n.acquire(0, 1, 0, true)
	wait := n.k.Now().Sub(start)
	if wait < delta-time.Millisecond {
		t.Fatalf("granted after %v, inside Δ", wait)
	}
	if n.engines[1].Stats().BusyReplies != 0 {
		t.Fatal("PolicyQueue must not send busy replies")
	}
	if n.engines[0].Stats().Retries != 0 {
		t.Fatal("PolicyQueue must not retry")
	}
}

func TestPolicyHonorClose(t *testing.T) {
	// Window longer than the threshold: behaves like retry. Shorter
	// remaining: honored locally.
	n := newTestNet(t, 2, Options{Policy: PolicyHonorClose, HonorThreshold: 100 * time.Millisecond})
	n.newSeg(1, 40*time.Millisecond)
	n.acquire(1, 1, 0, true)
	n.acquire(0, 1, 0, true) // remaining 40ms < threshold: no busy
	if n.engines[1].Stats().BusyReplies != 0 {
		t.Fatal("within threshold: should be honored without busy")
	}

	n2 := newTestNet(t, 2, Options{Policy: PolicyHonorClose, HonorThreshold: 10 * time.Millisecond})
	n2.newSeg(1, 200*time.Millisecond)
	n2.acquire(1, 1, 0, true)
	n2.acquire(0, 1, 0, true)
	if n2.engines[1].Stats().BusyReplies == 0 {
		t.Fatal("beyond threshold: busy reply expected")
	}
}

func TestReadBatching(t *testing.T) {
	// While the first read cycle is delayed by Δ at the writer, more
	// read requests pile up; they must be granted together.
	delta := 80 * time.Millisecond
	n := newTestNet(t, 4, Options{})
	n.newSeg(1, delta)
	n.acquire(1, 1, 0, true) // site 1 writer with fresh window

	granted := make([]bool, 4)
	for s := 2; s < 4; s++ {
		s := s
		e := n.engines[s]
		var loop func()
		loop = func() {
			if e.CheckAccess(1, 0, false) == mmu.NoFault {
				granted[s] = true
				return
			}
			e.Fault(1, 0, false, int32(s), loop)
		}
		loop()
	}
	n.settle()
	if !granted[2] || !granted[3] {
		t.Fatal("batched readers not granted")
	}
	st := n.engines[0].LibraryState(1, 0)
	if !st.Readers.Has(2) || !st.Readers.Has(3) || !st.Readers.Has(1) {
		t.Fatalf("readers = %v", st.Readers)
	}
	if st.Clock != 1 {
		t.Fatalf("clock = %d, want downgraded writer", st.Clock)
	}
	// One downgrade cycle served both readers: site 1 sent 2 pages but
	// was invalidated/downgraded once.
	if n.engines[1].Stats().Downgrades != 1 {
		t.Fatalf("downgrades = %d", n.engines[1].Stats().Downgrades)
	}
}

func TestAlreadySatisfiedRequest(t *testing.T) {
	// Two colocated faults at protocol level: the second request finds
	// the site already a reader.
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, 0)
	e := n.engines[1]
	got := 0
	var loop1 func()
	loop1 = func() {
		if e.CheckAccess(1, 0, false) == mmu.NoFault {
			got++
			return
		}
		e.Fault(1, 0, false, 1, loop1)
	}
	loop1()
	n.settle()
	// Now force a duplicate read request even though we hold the page:
	// the library replies KAlready.
	e.Fault(1, 0, false, 2, func() { got++ })
	n.settle()
	if got != 2 {
		t.Fatalf("got = %d", got)
	}
	if e.Stats().Already == 0 {
		t.Fatal("expected an already-satisfied reply")
	}
}

func TestClockSelfUpgrade(t *testing.T) {
	// The clock site itself upgrades: reader set {0,1}, clock 0
	// (downgraded library), then the library process writes.
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, false) // library downgraded, clock=0, readers {0,1}
	n.settle()
	n.acquire(0, 1, 0, true) // library upgrades itself
	n.settle()
	st := n.engines[0].LibraryState(1, 0)
	if st.Writer != 0 || st.Clock != 0 {
		t.Fatalf("state = %+v", st)
	}
	if n.engines[1].Seg(1).Present(0) {
		t.Fatal("other reader must be invalidated")
	}
	if n.engines[0].Seg(1).Prot(0) != mmu.ReadWrite {
		t.Fatal("self-upgrade failed")
	}
	n.checkSingleWriter(1, 0)
}

func TestWriterWriterTransfers(t *testing.T) {
	n := newTestNet(t, 3, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, true)
	n.engines[1].Frame(1, 0)[0] = 1
	n.acquire(2, 1, 0, true)
	if n.engines[2].Frame(1, 0)[0] != 1 {
		t.Fatal("Writer/Writer transfer lost data")
	}
	if n.engines[1].Seg(1).Present(0) {
		t.Fatal("old writer must be fully invalidated (no downgrade on write request)")
	}
	n.settle()
	n.checkSingleWriter(1, 0)
}

func TestTracerRecordsRequests(t *testing.T) {
	log := trace.NewLog()
	n := newTestNet(t, 2, Options{Tracer: log})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, false)
	n.acquire(1, 1, 0, true)
	n.settle()
	if log.Len() != 2 {
		t.Fatalf("log entries = %d", log.Len())
	}
	es := log.Entries()
	if es[0].Write || !es[1].Write {
		t.Fatalf("modes: %+v", es)
	}
	if es[0].Site != 1 || es[0].Pid != 101 {
		t.Fatalf("entry = %+v", es[0])
	}
}

func TestDynamicDeltaTuner(t *testing.T) {
	var seen []TuneInfo
	n := newTestNet(t, 2, Options{
		TuneDelta: func(ti TuneInfo) time.Duration {
			seen = append(seen, ti)
			return 5 * time.Millisecond
		},
	})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, true)
	n.settle()
	if len(seen) == 0 {
		t.Fatal("tuner never consulted")
	}
	if n.engines[1].Seg(1).Aux(0).Window != 5*time.Millisecond {
		t.Fatalf("granted window = %v, want tuner's 5ms", n.engines[1].Seg(1).Aux(0).Window)
	}
	st := n.engines[0].LibraryState(1, 0)
	if st.Delta != 5*time.Millisecond {
		t.Fatalf("library Δ = %v", st.Delta)
	}
}

func TestSetPageAndSegmentDelta(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(2, 10*time.Millisecond)
	n.engines[0].SetPageDelta(1, 1, 70*time.Millisecond)
	if n.engines[0].LibraryState(1, 0).Delta != 10*time.Millisecond {
		t.Fatal("page 0 delta changed unexpectedly")
	}
	if n.engines[0].LibraryState(1, 1).Delta != 70*time.Millisecond {
		t.Fatal("page 1 delta not set")
	}
	n.engines[0].SetSegmentDelta(1, 20*time.Millisecond)
	for p := int32(0); p < 2; p++ {
		if n.engines[0].LibraryState(1, p).Delta != 20*time.Millisecond {
			t.Fatal("segment delta not applied")
		}
	}
	n.acquire(1, 1, 1, true)
	if n.engines[1].Seg(1).Aux(1).Window != 20*time.Millisecond {
		t.Fatalf("granted window = %v", n.engines[1].Seg(1).Aux(1).Window)
	}
}

func TestReleaseReaderAndClockHandoff(t *testing.T) {
	n := newTestNet(t, 3, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, false)
	n.acquire(2, 1, 0, false)
	n.settle()
	// Clock is site 0 (downgraded library). Release site 0's role is
	// impossible (library); release reader 1 instead.
	n.engines[1].ReleaseSegment(1)
	n.settle()
	st := n.engines[0].LibraryState(1, 0)
	if st.Readers.Has(1) {
		t.Fatal("released reader still recorded")
	}
	if n.engines[1].Seg(1).Present(0) {
		t.Fatal("released site should drop its copy")
	}
	if n.engines[1].Releasing(1) {
		t.Fatal("release not finalized")
	}
}

func TestReleaseWriterReturnsDataToLibrary(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, true)
	n.engines[1].Frame(1, 0)[3] = 99
	n.engines[1].ReleaseSegment(1)
	n.settle()
	st := n.engines[0].LibraryState(1, 0)
	if st.Writer != 0 || st.Clock != 0 {
		t.Fatalf("library should reclaim: %+v", st)
	}
	if n.engines[0].Frame(1, 0)[3] != 99 {
		t.Fatal("writer's data lost on release")
	}
	if n.engines[0].Seg(1).Prot(0) != mmu.ReadWrite {
		t.Fatal("library should hold the page read-write again")
	}
}

func TestReleaseLastReaderReclaims(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, 0)
	// Move the writable copy to site 1, then downgrade it via a read
	// from site 0... simpler: site 1 becomes sole writer, then library
	// reads (downgrade, clock=1), then site 1 releases: readers {0,1}
	// minus 1 leaves {0}; clock handoff to 0.
	n.acquire(1, 1, 0, true)
	n.engines[1].Frame(1, 0)[0] = 42
	n.acquire(0, 1, 0, false)
	n.settle()
	st := n.engines[0].LibraryState(1, 0)
	if st.Clock != 1 {
		t.Fatalf("clock = %d", st.Clock)
	}
	n.engines[1].ReleaseSegment(1)
	n.settle()
	st = n.engines[0].LibraryState(1, 0)
	if st.Clock != 0 || st.Readers.Has(1) {
		t.Fatalf("after release: %+v", st)
	}
	if n.engines[0].Frame(1, 0)[0] != 42 {
		t.Fatal("data lost")
	}
}

func TestDestroySegmentWakesWaiters(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, time.Hour) // huge window: a write will stall
	n.acquire(1, 1, 0, true)
	woken := false
	n.engines[0].Fault(1, 0, true, 9, func() { woken = true })
	// Destroy before the window ever expires.
	for _, e := range n.engines {
		e.DestroySegment(1)
	}
	n.settle()
	if !woken {
		t.Fatal("waiter not woken on destroy")
	}
	if n.engines[0].Attached(1) || n.engines[1].Attached(1) {
		t.Fatal("segment still attached")
	}
}

func TestStragglersAfterDestroyAreDropped(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, true)
	// Queue a request whose grant will arrive after destruction.
	n.engines[0].Fault(1, 0, true, 9, func() {})
	n.engines[0].DestroySegment(1)
	n.settle()
	if n.engines[0].Stats().Dropped == 0 {
		t.Fatal("expected dropped stragglers counted")
	}
}

func TestMappedPages(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(4, 0)
	if got := n.engines[0].MappedPages(); got != 4 {
		t.Fatalf("library mapped = %d", got)
	}
	if got := n.engines[1].MappedPages(); got != 0 {
		t.Fatalf("remote mapped = %d", got)
	}
	n.acquire(1, 1, 2, false)
	if got := n.engines[1].MappedPages(); got != 1 {
		t.Fatalf("after one fetch mapped = %d", got)
	}
}

func TestWindowWaitAccounted(t *testing.T) {
	n := newTestNet(t, 2, Options{Policy: PolicyQueue})
	n.newSeg(1, 60*time.Millisecond)
	n.acquire(1, 1, 0, true)
	n.acquire(0, 1, 0, true)
	if w := n.engines[1].Stats().WindowWait; w < 40*time.Millisecond {
		t.Fatalf("WindowWait = %v, want most of the 60ms window", w)
	}
}

func TestMultiPageIndependence(t *testing.T) {
	// Cycles on different pages do not serialize against each other: a
	// long window on page 0 must not delay page 1.
	n := newTestNet(t, 2, Options{})
	n.newSeg(2, 200*time.Millisecond)
	n.acquire(1, 1, 0, true) // page 0 with long window at site 1
	start := n.k.Now()
	n.acquire(0, 1, 1, true) // page 1: library already holds it
	if n.k.Now().Sub(start) > 10*time.Millisecond {
		t.Fatal("page 1 delayed by page 0's window")
	}
}
