package core

import (
	"testing"
	"time"

	"mirage/internal/obs"
)

// migOptions enables the full voluntary-migration stack with an
// aggressive policy so a short driven workload crosses the thresholds:
// small windows, low demand floor, and an hour-long cooldown so a test
// sees at most one move per segment per site.
func migOptions(o *obs.Obs, sites int) Options {
	return Options{
		Reliability: &Reliability{
			AckTimeout: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			MaxAttempts: 5, RequestTimeout: 10 * time.Second,
		},
		Failover: &Failover{Sites: sites},
		Placement: &Placement{
			Window: 50 * time.Millisecond, MinRequests: 4,
			Share: 0.5, PingPong: 0.8, Cooldown: time.Hour,
		},
		Obs: o,
	}
}

// driveSkew generates 2:1 demand for site 1 over site 0 on one page:
// site 0's write invalidates site 1, which then pays a read fault plus
// an upgrade — two library requests for site 0's one.
func driveSkew(n *testNet, seg int32, loops int) {
	for i := 0; i < loops; i++ {
		n.acquire(0, seg, 0, true)
		n.acquire(1, seg, 0, false)
		n.acquire(1, seg, 0, true)
	}
}

func TestMigrationRehomesLibrary(t *testing.T) {
	o := obs.New()
	n := newTestNet(t, 3, migOptions(o, 3))
	n.newSeg(2, 0)

	driveSkew(n, 1, 40)
	n.settle()

	if got := n.engines[1].Stats().Migrations; got != 1 {
		t.Fatalf("site 1 accepted %d migrations, want exactly 1", got)
	}
	for _, e := range []int{0, 1} {
		if lib := n.engines[e].segs[1].curLib; lib != 1 {
			t.Errorf("site %d believes library is %d, want 1", e, lib)
		}
		if ep := n.engines[e].segs[1].segEpoch; ep != 1 {
			t.Errorf("site %d at epoch %d, want 1", e, ep)
		}
	}
	if n.engines[0].segs[1].lib != nil {
		t.Error("deposed library still holds the segment record")
	}
	if n.engines[1].segs[1].lib == nil {
		t.Error("successor holds no segment record")
	}
	if r := n.engines[0].Stats().MigrationsRefused; r != 0 {
		t.Errorf("MigrationsRefused = %d, want 0", r)
	}
	if c := o.Metrics.Hist(obs.HMigrateLatency).Count(); c != 1 {
		t.Errorf("migrate_latency_ns has %d samples, want 1", c)
	}
	if got := o.Metrics.Total(obs.CMigration); got != 1 {
		t.Errorf("migrations counter = %d, want 1", got)
	}

	// The handoff commit must be visible in the trace exactly once.
	// (Checker verification of migration traces lives in internal/check,
	// which cannot be imported from here — its harness imports core.)
	migrates := 0
	for _, ev := range o.Buffer().Events() {
		if ev.Type == obs.EvMigrate {
			migrates++
			if ev.Site != 1 || ev.Arg != 0 || ev.Epoch != 1 {
				t.Errorf("EvMigrate site=%d arg=%d epoch=%d, want 1/0/1", ev.Site, ev.Arg, ev.Epoch)
			}
		}
	}
	if migrates != 1 {
		t.Fatalf("trace has %d EvMigrate events, want 1", migrates)
	}
}

// TestMigrationFencesStaleLibraryBelief: a site that slept through the
// handoff still addresses the old library; the deposed site fences the
// stale-epoch request with a redirect and the straggler lands at the
// successor.
func TestMigrationFencesStaleLibraryBelief(t *testing.T) {
	o := obs.New()
	n := newTestNet(t, 3, migOptions(o, 3))
	n.newSeg(2, 0)

	// Site 2 never participates, so its view stays epoch 0 / library 0.
	driveSkew(n, 1, 40)
	n.settle()
	if n.engines[1].Stats().Migrations != 1 {
		t.Fatal("migration did not happen; fencing scenario not reached")
	}
	if lib := n.engines[2].segs[1].curLib; lib != 0 {
		t.Fatalf("site 2 already rehomed to %d; wanted a stale view", lib)
	}

	fencedBefore := n.engines[0].Stats().StaleEpoch
	n.acquire(2, 1, 0, false)
	n.settle()

	if got := n.engines[0].Stats().StaleEpoch; got <= fencedBefore {
		t.Errorf("deposed library fenced nothing (StaleEpoch %d -> %d)", fencedBefore, got)
	}
	if lib := n.engines[2].segs[1].curLib; lib != 1 {
		t.Errorf("straggler rehomed to %d, want 1", lib)
	}
	if ep := n.engines[2].segs[1].segEpoch; ep != 1 {
		t.Errorf("straggler at epoch %d, want 1", ep)
	}
}

// TestMigrationPingPongRefused: two sites alternating writes on the
// same page split the demand window evenly; the ping-pong guard must
// keep the library where it is.
func TestMigrationPingPongRefused(t *testing.T) {
	n := newTestNet(t, 3, migOptions(nil, 3))
	n.newSeg(2, 0)

	for i := 0; i < 40; i++ {
		n.acquire(1, 1, 0, true)
		n.acquire(2, 1, 0, true)
	}
	n.settle()

	for s, e := range n.engines {
		if got := e.Stats().Migrations; got != 0 {
			t.Errorf("site %d: %d migrations under ping-pong sharing, want 0", s, got)
		}
	}
	if lib := n.engines[0].segs[1].curLib; lib != 0 {
		t.Errorf("library moved to %d under ping-pong sharing", lib)
	}
}

// TestMigrationDisabledWithoutPlacement: the demand tracker must stay
// inert when Options.Placement is nil.
func TestMigrationDisabledWithoutPlacement(t *testing.T) {
	opt := migOptions(nil, 3)
	opt.Placement = nil
	n := newTestNet(t, 3, opt)
	n.newSeg(2, 0)

	driveSkew(n, 1, 20)
	n.settle()

	if sn := n.engines[0].segs[1]; sn.place != nil || sn.curLib != 0 {
		t.Errorf("placement state tracked while disabled: place=%v curLib=%d", sn.place, sn.curLib)
	}
}
