package core

import (
	"encoding/binary"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/wire"
)

// Voluntary library migration (DESIGN.md §14).
//
// The paper fixes a segment's library site for life (§6.0); failover
// (DESIGN.md §11) lets it move on crash, never for performance. Here
// the library itself elects to rehome the role to the segment's hottest
// requester, reusing the failover epoch fence: the old library A, once
// the segment is quiescent, ships its page records to the successor B
// inline (KMigrate chunks — transferred, not reconstructed from holder
// reports), B installs them under epoch E+1 and confirms (KMigrateAck),
// and A deposes itself, converting every request that arrived while the
// transfer was in flight into an epoch notice so the requester re-aims
// at B. Stragglers still addressing A are fenced by the ordinary
// stale-epoch path. Unlike a crash takeover nothing is rebuilt, no page
// moves, and no copy is lost: the record is authoritative at the moment
// of transfer because migration only starts when no grant cycle is
// running and no request is queued.
//
// The decision is a pluggable policy (Options.Placement) evaluated
// inline on request arrival at the library — no timers, so simulated
// runs stay deterministic and an idle segment pays nothing.

// Placement configures the voluntary-migration policy: the library
// tracks per-site request demand for each segment in sliding windows
// and offers the library role to a remote site that dominates the
// window. Requires Options.Failover (and therefore Reliability): the
// handoff is built on the library-epoch fence.
type Placement struct {
	// Window is the demand-sampling period; the policy is evaluated at
	// the first request after each window elapses. Default 250ms.
	Window time.Duration
	// MinRequests is the minimum demand in a window before migration is
	// considered, so an idle segment never migrates on noise. Default 32.
	MinRequests int
	// Share is the fraction of the window's requests the hottest remote
	// site must account for. Default 0.6.
	Share float64
	// PingPong suppresses migration when the runner-up site's demand is
	// at least this fraction of the leader's: two sites alternating on
	// the same pages is write sharing, where moving the library just
	// moves the losing side and the Δ window already amortizes the
	// conflict. Default 0.8.
	PingPong float64
	// Cooldown is the minimum time between migrations of one segment at
	// one site (hysteresis against thrashing). A site that just accepted
	// the role starts its cooldown at the installation. Default 1s.
	Cooldown time.Duration
}

func (p Placement) withDefaults() Placement {
	if p.Window == 0 {
		p.Window = 250 * time.Millisecond
	}
	if p.MinRequests == 0 {
		p.MinRequests = 32
	}
	if p.Share == 0 {
		p.Share = 0.6
	}
	if p.PingPong == 0 {
		p.PingPong = 0.8
	}
	if p.Cooldown == 0 {
		p.Cooldown = time.Second
	}
	return p
}

// placeTrack is the library's per-segment demand window.
type placeTrack struct {
	demand      map[int]int
	total       int
	windowStart time.Duration
	lastMove    time.Duration
}

// migration is the old library's in-flight outbound offer.
type migration struct {
	target  int
	started time.Duration
	cancel  func() // offer timeout
}

// migInbound accumulates an incoming offer's record chunks at the
// successor until the final chunk installs them.
type migInbound struct {
	epoch uint32
	from  int
	data  []byte
}

// placementEnabled reports whether voluntary migration is configured.
// Like failover, the machinery is inert without the reliability layer.
func (e *Engine) placementEnabled() bool {
	return e.opt.Placement != nil && e.failoverEnabled()
}

// noteDemand records one library request for the placement policy and
// evaluates the policy at window boundaries. Called before the request
// is queued: if a migration starts here, the triggering request joins
// the frozen queue and is re-aimed at the successor at depose time.
func (e *Engine) noteDemand(sn *segNode, from int) {
	if !e.placementEnabled() || sn.migOut != nil {
		return
	}
	now := e.env.Now()
	pl := sn.place
	if pl == nil {
		pl = &placeTrack{demand: make(map[int]int), windowStart: now}
		sn.place = pl
	}
	pl.demand[from]++
	pl.total++
	p := e.opt.Placement.withDefaults()
	if now-pl.windowStart < p.Window {
		return
	}
	e.evalPlacement(sn, pl, p, now)
	pl.demand = make(map[int]int)
	pl.total = 0
	pl.windowStart = now
}

// evalPlacement applies the policy to one completed demand window.
// Sites are scanned in ID order so the decision is replay-deterministic.
func (e *Engine) evalPlacement(sn *segNode, pl *placeTrack, p Placement, now time.Duration) {
	if pl.total < p.MinRequests {
		return
	}
	if pl.lastMove != 0 && now-pl.lastMove < p.Cooldown {
		return
	}
	fo := e.opt.Failover
	lead, leadN, runN := -1, 0, 0
	for s := 0; s < fo.Sites; s++ {
		n := pl.demand[s]
		if n == 0 {
			continue
		}
		if n > leadN {
			runN = leadN
			lead, leadN = s, n
		} else if n > runN {
			runN = n
		}
	}
	if lead < 0 || lead == e.site {
		return
	}
	if float64(leadN) < p.Share*float64(pl.total) {
		return
	}
	if float64(runN) >= p.PingPong*float64(leadN) {
		return // ping-pong write sharing: Δ wins, moving the library loses
	}
	if !e.segQuiescent(sn) {
		return
	}
	pl.lastMove = now
	e.startMigration(sn, lead, now)
}

// segQuiescent reports whether the segment can migrate right now: this
// site is its (non-recovering) library and no page has a grant cycle in
// flight or a request queued. Quiescence is what lets the record
// transfer be exact — there is no in-flight state to reconcile.
func (e *Engine) segQuiescent(sn *segNode) bool {
	if sn.lib == nil || sn.recov != nil || sn.migOut != nil {
		return false
	}
	for i := range sn.lib.pages {
		p := &sn.lib.pages[i]
		if p.busy || len(p.queue) > 0 {
			return false
		}
	}
	return true
}

// startMigration freezes the segment and offers the library role to
// target. While the offer is in flight the library stays authoritative
// but grants nothing: arriving requests queue frozen and are converted
// to epoch notices at depose time.
func (e *Engine) startMigration(sn *segNode, target int, now time.Duration) {
	seg := int32(sn.meta.ID)
	mig := &migration{target: target, started: now}
	sn.migOut = mig
	e.sendMigrateRecords(sn, target)
	mig.cancel = e.env.After(e.opt.Failover.recoverTimeout(), func() {
		if cur, ok := e.segs[seg]; !ok || cur != sn || sn.migOut != mig {
			return
		}
		e.abortMigration(sn, true)
	})
}

// Migration-record layout: per page a fixed header — page u32, writer
// i32, clock i32, delta u64, then the demand/tuning state (gap EWMA
// u64, last-request age u64, requests u32, denied u32,
// denial-remaining EWMA u64, flip EWMA u16, last writer i32), and the
// copyset length u16 — followed by the readers copyset in its wire
// form. Chunks stay under wire.MaxData.
//
// The demand and tuning fields are what make a rehomed library warm:
// without them the successor restarted cold (the ROADMAP-noted "demand
// window forgets on migration"), and the Δ controller would relearn a
// page it had already converged. lastReq crosses sites as an *age*
// (now − lastReq at the encoder) and is re-based into the successor's
// clock domain at install, so the first post-handoff gap measures real
// request spacing instead of the difference of two unrelated clocks.
const (
	migRecordHeader = 4 + 4 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 2 + 4 + 2
	migChunkBytes   = 60000
)

func encodeMigRecord(buf []byte, page int32, p *libPage, now time.Duration) []byte {
	var h [migRecordHeader]byte
	binary.BigEndian.PutUint32(h[0:], uint32(page))
	binary.BigEndian.PutUint32(h[4:], uint32(int32(p.writer)))
	binary.BigEndian.PutUint32(h[8:], uint32(int32(p.clock)))
	binary.BigEndian.PutUint64(h[12:], uint64(p.delta))
	binary.BigEndian.PutUint64(h[20:], uint64(p.gapEWMA))
	age := time.Duration(0)
	if p.requests > 0 {
		age = now - p.lastReq
	}
	binary.BigEndian.PutUint64(h[28:], uint64(age))
	binary.BigEndian.PutUint32(h[36:], uint32(p.requests))
	binary.BigEndian.PutUint32(h[40:], uint32(p.denied))
	binary.BigEndian.PutUint64(h[44:], uint64(p.denRemEWMA))
	binary.BigEndian.PutUint16(h[52:], uint16(p.flipEWMA))
	binary.BigEndian.PutUint32(h[54:], uint32(int32(p.lastWriter)))
	binary.BigEndian.PutUint16(h[58:], uint16(p.readers.WireLen()))
	buf = append(buf, h[:]...)
	return p.readers.AppendWire(buf)
}

// sendMigrateRecords ships every page record to the successor in
// chunked KMigrate messages; Upgrade marks the final chunk, whose
// SegEpoch (stamped by transmit) is the epoch the successor's
// installation must exceed.
func (e *Engine) sendMigrateRecords(sn *segNode, target int) {
	seg := int32(sn.meta.ID)
	lib := sn.lib
	var data []byte
	flush := func(last bool) {
		e.send(target, &wire.Msg{
			Kind: wire.KMigrate, Seg: seg, Page: -1,
			Req: int32(target), Upgrade: last, Data: data,
		})
		data = nil
	}
	now := e.env.Now()
	for pg := range lib.pages {
		if len(data) >= migChunkBytes {
			flush(false)
		}
		data = encodeMigRecord(data, int32(pg), &lib.pages[pg], now)
	}
	flush(true)
}

// abortMigration cancels an in-flight offer and resumes granting. A
// refusal (KMigrateAck Page -1) or a give-up on the offer circuit
// proves the successor never installed — the final chunk never landed —
// so the epoch stands. A timeout proves nothing: the successor may hold
// the role at E+1 with only the ack lost, so the library jumps to E+2,
// fencing that installation the moment it touches any other site.
func (e *Engine) abortMigration(sn *segNode, timedOut bool) {
	mig := sn.migOut
	if mig == nil {
		return
	}
	if mig.cancel != nil {
		mig.cancel()
	}
	sn.migOut = nil
	e.stats.MigrationsRefused++
	e.obs.Count(e.site, obs.CMigrationRefused)
	if timedOut {
		sn.segEpoch += 2
	}
	for pg := range sn.lib.pages {
		e.libProcess(sn, int32(pg))
	}
}

// handleMigrate runs at the offered successor. It is dispatched before
// the generic epoch fence (like KRecover) so epoch skew resolves here:
// an offer from a superseded epoch is refused, an offer ahead of this
// site moves it forward first.
func (e *Engine) handleMigrate(sn *segNode, m *wire.Msg) {
	if !e.failoverEnabled() {
		e.stats.Dropped++
		return
	}
	from := int(m.From)
	if m.SegEpoch < sn.segEpoch {
		e.markStale()
		e.send(from, &wire.Msg{Kind: wire.KMigrateAck, Seg: m.Seg, Page: -1})
		return
	}
	if m.SegEpoch > sn.segEpoch {
		e.adoptEpoch(sn, m.SegEpoch, from)
	}
	if sn.lib != nil || sn.recov != nil || sn.releasing {
		// Already the library (a duplicate or raced offer), mid-takeover,
		// or detaching: not a home for the role.
		e.send(from, &wire.Msg{Kind: wire.KMigrateAck, Seg: m.Seg, Page: -1})
		return
	}
	in := sn.migIn
	if in == nil || in.epoch != m.SegEpoch || in.from != from {
		in = &migInbound{epoch: m.SegEpoch, from: from}
		sn.migIn = in
	}
	in.data = append(in.data, m.Data...)
	if !m.Upgrade {
		return
	}
	sn.migIn = nil
	e.installMigratedRecord(sn, from, m.SegEpoch, in.data)
}

// installMigratedRecord makes this site the segment's library under
// epoch offerEpoch+1 with the transferred record, then confirms to the
// old library. The epoch is created here, not at the offer: no site can
// address this site as the E+1 library before the record exists.
func (e *Engine) installMigratedRecord(sn *segNode, from int, offerEpoch uint32, data []byte) {
	seg := int32(sn.meta.ID)
	now := e.env.Now()
	lib := newLibSeg(sn.meta)
	for len(data) >= migRecordHeader {
		page := int32(binary.BigEndian.Uint32(data[0:]))
		writer := int(int32(binary.BigEndian.Uint32(data[4:])))
		clock := int(int32(binary.BigEndian.Uint32(data[8:])))
		delta := time.Duration(binary.BigEndian.Uint64(data[12:]))
		gap := time.Duration(binary.BigEndian.Uint64(data[20:]))
		age := time.Duration(binary.BigEndian.Uint64(data[28:]))
		requests := int(int32(binary.BigEndian.Uint32(data[36:])))
		denied := int(int32(binary.BigEndian.Uint32(data[40:])))
		denRem := time.Duration(binary.BigEndian.Uint64(data[44:]))
		flip := int(binary.BigEndian.Uint16(data[52:]))
		lastWriter := int(int32(binary.BigEndian.Uint32(data[54:])))
		cs := int(binary.BigEndian.Uint16(data[58:]))
		data = data[migRecordHeader:]
		if cs > len(data) {
			break
		}
		var readers mmu.Copyset
		if cs > 0 {
			var err error
			readers, err = mmu.DecodeCopysetWire(data[:cs])
			if err != nil {
				data = data[cs:]
				continue
			}
		}
		data = data[cs:]
		if page < 0 || int(page) >= len(lib.pages) || delta < 0 ||
			gap < 0 || age < 0 || denRem < 0 || requests < 0 || denied < 0 {
			continue
		}
		p := &lib.pages[page]
		p.writer, p.clock, p.delta, p.readers = writer, clock, delta, readers
		// Carry the demand window and denial signals so the rehomed
		// library stays warm. lastReq is re-based from the shipped age
		// into this site's clock domain; the controller's rate-limit
		// state is deliberately left fresh (tuned=false restarts the
		// cooldown at the first local grant without touching Δ).
		p.gapEWMA, p.requests = gap, requests
		if requests > 0 {
			p.lastReq = now - age
			if p.lastReq < 0 {
				p.lastReq = 0
			}
		}
		p.denied, p.denRemEWMA = denied, denRem
		p.tuneDenied = denied
		if flip > flipScale {
			flip = flipScale
		}
		p.flipEWMA, p.lastWriter = flip, lastWriter
	}
	sn.segEpoch = offerEpoch + 1
	sn.curLib = e.site
	sn.lib = lib
	// The old epoch's transient state is dead with it (mirrors
	// adoptEpoch; quiescence means there should be none, but a raced
	// abort can leave leftovers).
	e.rollbackSegPend(sn, seg)
	for k := range e.relay {
		if k.seg == seg {
			delete(e.relay, k)
		}
	}
	for k := range e.stash {
		if k.seg == seg {
			delete(e.stash, k)
		}
	}
	// Seed the policy's hysteresis: accepting the role starts a fresh
	// window and a cooldown, so the segment cannot bounce straight back.
	sn.place = &placeTrack{demand: make(map[int]int), windowStart: now, lastMove: now}
	if e.replicationEnabled() {
		// The migrated record IS the log head: re-seed the epoch's log
		// from it and base this leader's follower group eagerly — the
		// offer shipped a reconstruction-free snapshot, and the group
		// changes with the leader.
		e.replSeedLeader(sn)
		e.replBaseFollowers(sn)
	}
	e.stats.Migrations++
	e.obs.Count(e.site, obs.CMigration)
	e.emit(obs.Event{Type: obs.EvMigrate, Seg: seg, Arg: int64(from)})
	e.send(from, &wire.Msg{Kind: wire.KMigrateAck, Seg: seg, Page: 0})
	e.reaimRequests(sn)
}

// handleMigrateAck runs at the old library: a refusal resumes granting
// under the unchanged epoch; an acceptance deposes this site and
// re-aims everything that queued during the transfer at the successor.
func (e *Engine) handleMigrateAck(sn *segNode, m *wire.Msg) {
	if !e.failoverEnabled() {
		e.stats.Dropped++
		return
	}
	mig := sn.migOut
	if mig == nil || int(m.From) != mig.target {
		e.markStale()
		return
	}
	if m.Page < 0 {
		e.abortMigration(sn, false)
		return
	}
	if m.SegEpoch <= sn.segEpoch {
		e.markStale()
		return
	}
	if mig.cancel != nil {
		mig.cancel()
	}
	sn.migOut = nil
	e.obs.Observe(obs.HMigrateLatency, int64(e.env.Now()-mig.started))
	// Collect the frozen queue's requesters before adoptEpoch drops the
	// record. Read/write requesters re-request at the successor when the
	// notice moves them forward; releasing sites re-issue their releases
	// from adoptEpoch's own releasing path.
	seg := int32(sn.meta.ID)
	notify := make(map[int]bool)
	for pg := range sn.lib.pages {
		for _, r := range sn.lib.pages[pg].queue {
			if r.site != e.site {
				notify[r.site] = true
			}
		}
	}
	e.adoptEpoch(sn, m.SegEpoch, mig.target)
	for s := 0; s < e.opt.Failover.Sites; s++ {
		if notify[s] {
			e.send(s, &wire.Msg{
				Kind: wire.KRecover, Seg: seg, Page: -1, Req: int32(mig.target),
			})
		}
	}
}
