package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mirage/internal/mmu"
)

// TestQuickCoherenceRandomSchedule drives random interleavings of
// reads and writes from several sites against a per-address oracle:
// every read must observe the latest completed write, and at no
// instant may a writable copy coexist with any other copy.
func TestQuickCoherenceRandomSchedule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := 2 + rng.Intn(3)
		pages := 1 + rng.Intn(3)
		delta := time.Duration(rng.Intn(3)) * 10 * time.Millisecond
		policy := InvalPolicy(rng.Intn(3))

		n := newTestNet(t, sites, Options{Policy: policy})
		n.newSeg(pages, delta)

		type op struct {
			site  int
			page  int32
			write bool
			val   byte
		}
		nops := 10 + rng.Intn(30)
		oracle := make([]byte, pages) // latest value of byte 0 of each page
		violation := false

		for i := 0; i < nops && !violation; i++ {
			o := op{
				site:  rng.Intn(sites),
				page:  int32(rng.Intn(pages)),
				write: rng.Intn(2) == 0,
				val:   byte(1 + rng.Intn(250)),
			}
			// Drive the access to completion (synchronously in virtual
			// time), then act on the frame — modelling one process per
			// site doing an access and getting descheduled.
			n.acquire(o.site, 1, o.page, o.write)
			e := n.engines[o.site]
			f := e.Frame(1, o.page)
			if o.write {
				f[0] = o.val
				oracle[o.page] = o.val
			} else if f[0] != oracle[o.page] {
				t.Logf("seed %d op %d: stale read %d want %d (site %d page %d)",
					seed, i, f[0], oracle[o.page], o.site, o.page)
				violation = true
			}
			// Invariant: single writer, never writer+readers.
			writers, readers := 0, 0
			for _, en := range n.engines {
				switch en.Seg(1).Prot(int(o.page)) {
				case mmu.ReadWrite:
					writers++
				case mmu.ReadOnly:
					readers++
				}
			}
			if writers > 1 || (writers == 1 && readers > 0) {
				t.Logf("seed %d op %d: invariant broken w=%d r=%d", seed, i, writers, readers)
				violation = true
			}
		}
		n.settle()
		return !violation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcurrentFaultStorm issues overlapping faults from all
// sites at once (not serialized like the schedule test) and checks the
// system quiesces with a consistent library record and every waiter
// woken.
func TestQuickConcurrentFaultStorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := 2 + rng.Intn(4)
		delta := time.Duration(rng.Intn(4)) * 5 * time.Millisecond
		policy := InvalPolicy(rng.Intn(3))

		n := newTestNet(t, sites, Options{Policy: policy})
		n.newSeg(1, delta)

		granted := 0
		want := 0
		for s := 0; s < sites; s++ {
			for j := 0; j < 1+rng.Intn(3); j++ {
				write := rng.Intn(2) == 0
				want++
				s := s
				e := n.engines[s]
				var loop func()
				loop = func() {
					if e.CheckAccess(1, 0, write) == mmu.NoFault {
						granted++
						return
					}
					e.Fault(1, 0, write, int32(s), loop)
				}
				// Stagger the storm a little.
				n.k.After(time.Duration(rng.Intn(20))*time.Millisecond, loop)
			}
		}
		n.settle()
		if granted != want {
			t.Logf("seed %d: granted %d of %d", seed, granted, want)
			return false
		}
		// Library record must agree with actual page placement.
		st := n.engines[0].LibraryState(1, 0)
		if st.Busy || st.Queued != 0 {
			t.Logf("seed %d: library not quiescent: %+v", seed, st)
			return false
		}
		for s := 0; s < sites; s++ {
			prot := n.engines[s].Seg(1).Prot(0)
			switch prot {
			case mmu.ReadWrite:
				if st.Writer != s {
					t.Logf("seed %d: site %d RW but library writer=%d", seed, s, st.Writer)
					return false
				}
			case mmu.ReadOnly:
				if !st.Readers.Has(s) {
					t.Logf("seed %d: site %d RO but not in readers %v", seed, s, st.Readers)
					return false
				}
			case mmu.Invalid:
				if st.Writer == s || st.Readers.Has(s) {
					t.Logf("seed %d: site %d invalid but recorded as holder", seed, s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReleaseNeverLosesData randomly moves a page around and then
// releases sites in random order; the byte written last must survive
// at the library.
func TestQuickReleaseNeverLosesData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := 2 + rng.Intn(3)
		n := newTestNet(t, sites, Options{})
		n.newSeg(1, 0)

		var last byte
		for i := 0; i < 5+rng.Intn(10); i++ {
			s := rng.Intn(sites)
			if rng.Intn(2) == 0 {
				n.acquire(s, 1, 0, true)
				last = byte(i + 1)
				n.engines[s].Frame(1, 0)[0] = last
			} else {
				n.acquire(s, 1, 0, false)
			}
		}
		// Release all non-library sites in random order.
		order := rng.Perm(sites - 1)
		for _, i := range order {
			n.engines[i+1].ReleaseSegment(1)
			if rng.Intn(2) == 0 {
				n.settle()
			}
		}
		n.settle()
		if last == 0 {
			return true // no write ever happened
		}
		// The library must be able to produce the latest data.
		n.acquire(0, 1, 0, false)
		if got := n.engines[0].Frame(1, 0)[0]; got != last {
			t.Logf("seed %d: library has %d want %d", seed, got, last)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
