package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The random-schedule coherence and fault-storm property tests that
// lived here moved to quick_oracle_test.go (package core_test): their
// per-address oracle and single-writer scans are now one implementation
// inside internal/check, which this package cannot import without a
// cycle. Only the release-durability property — not a coherence
// invariant — stays on the in-package harness.

// TestQuickReleaseNeverLosesData randomly moves a page around and then
// releases sites in random order; the byte written last must survive
// at the library.
func TestQuickReleaseNeverLosesData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := 2 + rng.Intn(3)
		n := newTestNet(t, sites, Options{})
		n.newSeg(1, 0)

		var last byte
		for i := 0; i < 5+rng.Intn(10); i++ {
			s := rng.Intn(sites)
			if rng.Intn(2) == 0 {
				n.acquire(s, 1, 0, true)
				last = byte(i + 1)
				n.engines[s].Frame(1, 0)[0] = last
			} else {
				n.acquire(s, 1, 0, false)
			}
		}
		// Release all non-library sites in random order.
		order := rng.Perm(sites - 1)
		for _, i := range order {
			n.engines[i+1].ReleaseSegment(1)
			if rng.Intn(2) == 0 {
				n.settle()
			}
		}
		n.settle()
		if last == 0 {
			return true // no write ever happened
		}
		// The library must be able to produce the latest data.
		n.acquire(0, 1, 0, false)
		if got := n.engines[0].Frame(1, 0)[0]; got != last {
			t.Logf("seed %d: library has %d want %d", seed, got, last)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
