package core

import (
	"testing"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/sim"
	"mirage/internal/wire"
)

// The paper's message-flow figures, asserted as sequences. The testNet
// environment is wrapped so every Send is recorded in order.

// sniffEnv decorates tEnv, logging outgoing messages.
type sniffEnv struct {
	tEnv
	log *[]sniffed
}

type sniffed struct {
	from, to int
	kind     wire.Kind
	large    bool
}

func (e sniffEnv) Send(to int, m NetMsg) {
	wm := m.(*wire.Msg)
	*e.log = append(*e.log, sniffed{from: e.site, to: to, kind: wm.Kind, large: wm.Size() >= 512})
	e.tEnv.Send(to, m)
}

func newSniffedNet(t *testing.T, sites int, opt Options) (*testNet, *[]sniffed) {
	t.Helper()
	if opt.Costs == nil {
		opt.Costs = zeroCosts()
	}
	log := &[]sniffed{}
	n := &testNet{t: t, k: sim.NewKernel(), delay: time.Millisecond}
	for i := 0; i < sites; i++ {
		n.engines = append(n.engines, New(sniffEnv{tEnv{n, i}, log}, opt))
	}
	return n, log
}

// kinds projects the kind sequence.
func kinds(log []sniffed) []wire.Kind {
	out := make([]wire.Kind, len(log))
	for i, s := range log {
		out[i] = s.kind
	}
	return out
}

// TestFigure2WriteFaultSequence asserts Figure 2's first case: "If
// Site A requires a writeable copy, the current writer is
// invalidated." Site 2 write-faults on a page whose writer is site 1;
// the library is site 0.
func TestFigure2WriteFaultSequence(t *testing.T) {
	n, log := newSniffedNet(t, 3, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, true) // site 1 becomes the current writer
	n.settle()
	*log = (*log)[:0]

	n.acquire(2, 1, 0, true)
	n.settle()

	want := []struct {
		kind     wire.Kind
		from, to int
		large    bool
	}{
		{wire.KWriteReq, 2, 0, false}, // requester -> library
		{wire.KInval, 0, 1, false},    // library -> clock site (current writer)
		{wire.KPageSend, 1, 2, true},  // invalidated writer ships the page directly
		{wire.KInstalled, 2, 0, false},
	}
	got := *log
	if len(got) != len(want) {
		t.Fatalf("sequence = %v", kinds(got))
	}
	for i, w := range want {
		g := got[i]
		if g.kind != w.kind || g.from != w.from || g.to != w.to || g.large != w.large {
			t.Fatalf("step %d = %+v, want %+v (sequence %v)", i, g, w, kinds(got))
		}
	}
	if !n.engines[1].Seg(1).Present(0) == false {
		t.Fatal("old writer must be invalidated")
	}
}

// TestFigure2ReadFaultSequence asserts Figure 2's second case: "If
// Site A requires a readable copy, the current writer is downgraded to
// be a reader" — and, unlike the write case, keeps its copy.
func TestFigure2ReadFaultSequence(t *testing.T) {
	n, log := newSniffedNet(t, 3, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, true)
	n.settle()
	*log = (*log)[:0]

	n.acquire(2, 1, 0, false)
	n.settle()

	got := *log
	wantKinds := []wire.Kind{wire.KReadReq, wire.KInval, wire.KPageSend, wire.KInstalled}
	if len(got) != len(wantKinds) {
		t.Fatalf("sequence = %v", kinds(got))
	}
	for i, k := range wantKinds {
		if got[i].kind != k {
			t.Fatalf("step %d = %v, want %v", i, got[i].kind, k)
		}
	}
	if n.engines[1].Seg(1).Prot(0) != mmu.ReadOnly {
		t.Fatal("downgraded writer must retain a read copy")
	}
}

// TestFigure5ModeWalk replays the worst-case application's first cycle
// and asserts the page-mode walk Figure 5 depicts: writer at site 1 →
// readers {1,2} → writer at site 2 (upgrade) → readers {1,2} → writer
// at site 1 (upgrade).
func TestFigure5ModeWalk(t *testing.T) {
	n := newTestNet(t, 3, Options{})
	n.newSeg(1, 0)
	modes := func() (p1, p2 mmu.Prot) {
		return n.engines[1].Seg(1).Prot(0), n.engines[2].Seg(1).Prot(0)
	}

	// Step 1: process 1 (site 1) writes the first location.
	n.acquire(1, 1, 0, true)
	n.settle()
	if p1, p2 := modes(); p1 != mmu.ReadWrite || p2 != mmu.Invalid {
		t.Fatalf("step 1 modes: %v %v", p1, p2)
	}

	// Step 2: process 2 (site 2) reads it — writer downgraded.
	n.acquire(2, 1, 0, false)
	n.settle()
	if p1, p2 := modes(); p1 != mmu.ReadOnly || p2 != mmu.ReadOnly {
		t.Fatalf("step 2 modes: %v %v", p1, p2)
	}

	// Step 3: process 2 writes the second location — upgrade in the
	// old read set; site 1's copy invalidated.
	n.acquire(2, 1, 0, true)
	n.settle()
	if p1, p2 := modes(); p1 != mmu.Invalid || p2 != mmu.ReadWrite {
		t.Fatalf("step 3 modes: %v %v", p1, p2)
	}

	// Step 4: process 1 reads the reply — writer 2 downgraded.
	n.acquire(1, 1, 0, false)
	n.settle()
	if p1, p2 := modes(); p1 != mmu.ReadOnly || p2 != mmu.ReadOnly {
		t.Fatalf("step 4 modes: %v %v", p1, p2)
	}

	// Back to step 1: process 1 writes the next pair.
	n.acquire(1, 1, 0, true)
	n.settle()
	if p1, p2 := modes(); p1 != mmu.ReadWrite || p2 != mmu.Invalid {
		t.Fatalf("step 5 modes: %v %v", p1, p2)
	}
}

// TestFigure6MessageCount counts the protocol messages of one full
// worst-case cycle (steps 2–5 above) with a *separate* library site:
// the paper's Figure 6 timeline has 9 messages (3 large); ours has 16
// (2 large) — the upgrade optimization saves page copies while
// explicit request/completion legs add shorts. In the measured 2-site
// experiment (library colocated with process 1, as in the paper) six
// of these legs are loopback, leaving 10 on the wire — the number
// exp.MeasureWorstCaseTraffic reports against the paper's 9.
func TestFigure6MessageCount(t *testing.T) {
	n, log := newSniffedNet(t, 3, Options{})
	n.newSeg(1, 0)
	n.acquire(1, 1, 0, true)
	n.settle()
	*log = (*log)[:0]

	n.acquire(2, 1, 0, false) // p2 reads the check value
	n.acquire(2, 1, 0, true)  // p2 writes the reply
	n.acquire(1, 1, 0, false) // p1 reads the reply
	n.acquire(1, 1, 0, true)  // p1 writes the next check value
	n.settle()

	total, large := len(*log), 0
	for _, s := range *log {
		if s.large {
			large++
		}
	}
	if total != 16 || large != 2 {
		t.Fatalf("cycle = %d msgs (%d large); this protocol's documented count is 16 (2 large); sequence %v",
			total, large, kinds(*log))
	}
}
