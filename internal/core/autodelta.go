package core

import (
	"time"

	"mirage/internal/obs"
	"mirage/internal/vaxmodel"
)

// The controller's defaults are expressed in the §7.2 scheduling
// constants: the crossover argument is about quanta and ticks, not
// absolute times.
const (
	autoTick    = vaxmodel.ClockTick
	autoQuantum = vaxmodel.Quantum
)

// Closed-loop per-page Δ tuning (DESIGN.md §16, docs/TUNING.md).
//
// The paper hand-picks Δ per workload and §7.2 shows why that is
// fragile: the denial crossover sits at Δ = quantum, and a wrong Δ
// either starves requesters (too large: every invalidation waits out a
// window nobody uses) or ping-pongs pages (too small: thrashing is
// never amortized). E16 located that crossover offline; AutoDelta
// closes the loop online. The library already sees everything the
// decision needs — it receives every KBusy denial with the remaining
// window time, and it grants every write, so it can tell alternating
// writers from a stable one. The controller runs where the grants are
// minted (libTunedDelta), so a retuned Δ rides the very next
// invalidation, replicates through the ordinary record log, and ships
// with the record on voluntary migration.
//
// Policy (AIMD hill-climb, evaluated per page at grant time, at most
// once per Cooldown and MinCycles grant cycles):
//
//   - No denials since the last adjustment: the window never bound a
//     request — no signal, no movement.
//   - Write-sharing (recent write grants alternated sites) or expensive
//     denials (remaining-at-denial EWMA above CheapDenial): the window
//     is pure added latency for the waiting side — halve Δ.
//   - Otherwise (denials present, cheap, stable writer): the holder is
//     using most of its window productively — grow Δ by Step so the
//     work amortizes the page moves (§7.2's thrash amelioration).
//
// Stability: multiplicative decrease dominates additive increase, so
// under persistent write-sharing Δ converges to Min in O(log Δ₀)
// adjustments and stays there; under mixed signals Δ oscillates within
// one Step of a fixed point instead of diverging. The clamp keeps every
// granted window inside [Min, Max], which is what keeps the checker's
// Δ-window invariant meaningful: a trace verified with Delta = Min is a
// sound lower bound on every window the controller ever granted (see
// check.Config.Delta).

// AutoDelta configures the built-in per-page Δ controller. The zero
// value is usable: it tunes within [0, 4·quantum] with tick-sized
// steps. Takes precedence over Options.TuneDelta.
type AutoDelta struct {
	// Min and Max clamp every tuned Δ. Min is also the sound
	// verification bound: pass it as check.Config.Delta when checking a
	// traced AutoDelta run. Default Min 0, Max 4 scheduling quanta.
	Min time.Duration
	Max time.Duration
	// Step is the additive increment of the grow direction. Default one
	// scheduling clock tick.
	Step time.Duration
	// CheapDenial separates denials worth amortizing from denials that
	// only add latency: a denial whose remaining-window EWMA exceeds it
	// means the requester waits longer than the holder can productively
	// run before preemption. Default one scheduling quantum.
	CheapDenial time.Duration
	// MinCycles and Cooldown rate-limit adjustments: at least MinCycles
	// grant cycles and Cooldown elapsed time between retunes of one
	// page, so windows are quasi-static relative to grant traffic.
	// Defaults 4 cycles, 3 clock ticks.
	MinCycles int
	Cooldown  time.Duration
}

// autoDefault* are the paper-calibrated defaults, in terms of the
// §7.2 scheduling constants (vaxmodel: tick 16.7ms, quantum 100ms).
const (
	autoDefaultMaxQuanta = 4
	autoDefaultCooldown  = 3
)

func (a AutoDelta) withDefaults() AutoDelta {
	if a.Min < 0 {
		a.Min = 0
	}
	if a.Max == 0 {
		a.Max = autoDefaultMaxQuanta * autoQuantum
	}
	if a.Max < a.Min {
		a.Max = a.Min
	}
	if a.Step <= 0 {
		a.Step = autoTick
	}
	if a.CheapDenial <= 0 {
		a.CheapDenial = autoQuantum
	}
	if a.MinCycles <= 0 {
		a.MinCycles = 4
	}
	if a.Cooldown <= 0 {
		a.Cooldown = autoDefaultCooldown * autoTick
	}
	return a
}

// flipScale is the fixed-point unit of libPage.flipEWMA: each committed
// write grant folds flipScale (writer changed) or 0 (same writer) into
// the EWMA, so flipScale/2 marks the half-the-grants-alternate line.
const flipScale = 16

// clampDur bounds d to [lo, hi].
func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// autoTuneDelta runs the controller for one page and returns the Δ to
// grant with. Called from libTunedDelta, so the adjusted value lands on
// the invalidation of the very grant cycle being opened and in its
// replicated post-record.
func (e *Engine) autoTuneDelta(sn *segNode, page int32) time.Duration {
	ad := &e.auto
	p := &sn.lib.pages[page]
	now := e.env.Now()
	if !p.tuned {
		// First grant under the controller at this site: clamp the
		// seeded Δ (the segment default, or a migrated/recovered value)
		// into the band before any window goes out — the checker's
		// lower bound must hold from the first granted window.
		p.tuned = true
		p.tuneAt = now
		p.tuneCycle = p.cycle
		p.tuneDenied = p.denied
		p.delta = clampDur(p.delta, ad.Min, ad.Max)
		return p.delta
	}
	if now-p.tuneAt < ad.Cooldown || int(p.cycle-p.tuneCycle) < ad.MinCycles {
		return p.delta
	}
	old := p.delta
	switch {
	case p.denied == p.tuneDenied:
		// The window never turned a request away this interval.
	case p.flipEWMA >= flipScale/2 || p.denRemEWMA > ad.CheapDenial:
		p.delta = clampDur(p.delta/2, ad.Min, ad.Max)
	default:
		p.delta = clampDur(p.delta+ad.Step, ad.Min, ad.Max)
	}
	p.tuneAt = now
	p.tuneCycle = p.cycle
	p.tuneDenied = p.denied
	if p.delta == old {
		return p.delta
	}
	if p.delta > old {
		e.stats.DeltaGrows++
		e.obs.Count(e.site, obs.CDeltaGrow)
	} else {
		e.stats.DeltaShrinks++
		e.obs.Count(e.site, obs.CDeltaShrink)
	}
	e.obs.Observe(obs.HTunedDelta, int64(p.delta))
	e.emit(obs.Event{Type: obs.EvRetune, Seg: int32(sn.meta.ID), Page: page,
		Cycle: p.cycle, Arg: int64(p.delta)})
	return p.delta
}
