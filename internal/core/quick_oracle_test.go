// Package core_test holds the coherence property tests whose oracle is
// internal/check — the external test package breaks the import cycle
// (check drives core engines), so the invariants have exactly one
// implementation: the checker that also verifies production traces.
package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mirage/internal/check"
)

// TestQuickCoherenceRandomSchedule drives random interleavings of reads
// and writes from several sites; the history checker is the oracle
// (latest-write digests, single-writer exclusion, window enforcement,
// quiesced record agreement), fed by the trace of the explored run.
func TestQuickCoherenceRandomSchedule(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := check.Scenario{
			Sites:  2 + rng.Intn(3),
			Pages:  1 + rng.Intn(3),
			Delta:  time.Duration(rng.Intn(3)) * 10 * time.Millisecond,
			Policy: rng.Intn(3),
		}
		res := check.RandomWalk(sc, []int64{seed},
			check.ExploreOpts{OpsPerWalk: 10 + rng.Intn(30)})
		if res.Counterexample != nil {
			t.Logf("seed %d: %v\nrepro: ops=%v choices=%v", seed, res.Violations,
				res.Counterexample.Scenario.Ops, res.Counterexample.Choices)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConcurrentFaultStorm aims every site at one page at once —
// several ops per site, write-heavy — and lets the explorer pick nasty
// same-instant orderings. The checker's final-state pass asserts the
// storm quiesces with the library record agreeing with placement.
func TestQuickConcurrentFaultStorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sites := 2 + rng.Intn(4)
		sc := check.Scenario{
			Sites:  sites,
			Pages:  1,
			Delta:  time.Duration(rng.Intn(4)) * 5 * time.Millisecond,
			Policy: rng.Intn(3),
		}
		for s := 0; s < sites; s++ {
			for j := 0; j < 1+rng.Intn(3); j++ {
				op := check.Op{Site: s, Write: rng.Intn(2) == 0}
				if op.Write {
					op.Val = byte(1 + rng.Intn(250))
				}
				sc.Ops = append(sc.Ops, op)
			}
		}
		res := check.RandomWalk(sc, []int64{seed}, check.ExploreOpts{})
		if res.Counterexample != nil {
			t.Logf("seed %d: %v", seed, res.Violations)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
