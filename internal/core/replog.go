package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/wire"
)

// Consensus-replicated library records (DESIGN.md §15, docs/REPLICATION.md).
//
// Failover (DESIGN.md §11) rebuilds the library record after a crash by
// interrogating every surviving holder — a cluster-wide pause whose
// length grows with the site count. Replication removes the pause: the
// library (leader) mirrors every page-record mutation to a small group
// of follower sites as log entries BEFORE the mutation's effects reach
// the rest of the cluster, so a successor already inside the group can
// install the record from its log tail instead of reconstructing it.
// The log term is the existing per-segment library epoch: a takeover
// bumps it exactly as failover does, and the same epoch fence that
// isolates a dead library's traffic isolates a dead leader's stream.
//
// Safety hinges on WHEN an entry is written relative to the mutation it
// describes. Grant cycles log a write-ahead *intent* (prior and post
// record) and hold the cycle's opening send until a quorum of the group
// acknowledged the intent: recording behind the mutation could elect a
// record that never heard of a granted writer (two writers — unsafe),
// while recording ahead only risks a *ghost* — a record naming holders
// the crash prevented from materializing — which every holder path
// already degrades around (a KInval at an absent page answers
// KGrantFail, a stale reader entry acks invalidation orders vacuously).
// Completed cycles, releases, reclaims and Δ retunes log a *set* entry
// carrying the committed record. Entries are full per-page snapshots,
// so both ends compact the log to the latest entry per page — no
// unbounded log, and a vote reply is at most one entry per page.
type Replication struct {
	// Replicas is the number of follower sites mirroring each segment's
	// record: the R sites after the current library in ID order. 0
	// disables replication (the zero Options.Replication is inert).
	Replicas int
	// SyncMode selects how many acknowledgements gate a mutation.
	SyncMode SyncMode
	// Sites is the cluster size; cluster constructors fill it like
	// Failover.Sites, so every engine derives the same follower groups.
	Sites int
}

// SyncMode selects the replication acknowledgement discipline.
type SyncMode int

const (
	// SyncQuorum (the default) gates each intent on a majority of the
	// group (leader + Replicas followers), leader included.
	SyncQuorum SyncMode = iota
	// SyncAll gates each intent on every live follower, shrinking the
	// election quorum to one: any single group member's log suffices.
	SyncAll
)

// replicationEnabled reports whether the replicated-record machinery is
// configured. Like Placement it is inert without Failover (and
// therefore Reliability): the takeover that consumes the log is the
// failover election.
func (e *Engine) replicationEnabled() bool {
	return e.opt.Replication != nil && e.opt.Replication.Replicas > 0 && e.failoverEnabled()
}

// replFollowers returns the follower group for a segment led by
// leader: the Replicas sites after it in ID order.
func (e *Engine) replFollowers(leader int) []int {
	rp := e.opt.Replication
	var out []int
	for i := 1; len(out) < rp.Replicas && i < rp.Sites; i++ {
		out = append(out, (leader+i)%rp.Sites)
	}
	return out
}

// replGroupHas reports whether s is in the follower group of a segment
// led by leader.
func (e *Engine) replGroupHas(leader, s int) bool {
	for _, f := range e.replFollowers(leader) {
		if f == s {
			return true
		}
	}
	return false
}

// replQuorum is the number of group members (leader counts itself)
// whose applied log must cover an intent before its cycle opens.
func (e *Engine) replQuorum() int {
	rp := e.opt.Replication
	if rp.SyncMode == SyncAll {
		return rp.Replicas + 1
	}
	return (rp.Replicas+1)/2 + 1
}

// replVoteQuorum is the number of group logs (the winner's own
// included) an election must merge before installing: sized so any
// vote set intersects any commit set in at least one surviving
// follower.
func (e *Engine) replVoteQuorum() int {
	return e.opt.Replication.Replicas + 2 - e.replQuorum()
}

// replRec is one page record as carried in a log entry — the same
// fields migration ships (a KMigrate chunk is exactly a compacted log
// head; see docs/REPLICATION.md).
type replRec struct {
	writer  int
	clock   int
	delta   time.Duration
	readers mmu.Copyset
}

func replRecOf(p *libPage) replRec {
	return replRec{writer: p.writer, clock: p.clock, delta: p.delta, readers: p.readers}
}

// replEntry is one log entry: a full page-record snapshot, so per-page
// latest-entry compaction loses nothing.
type replEntry struct {
	intent bool   // write-ahead intent (prior valid) vs committed set
	index  uint32 // position in the leader's log for this epoch
	page   int32
	post   replRec // the record the mutation commits
	prior  replRec // the record before the cycle (intents only)
}

// replSeg is a site's replication state for one segment: the compacted
// log (per-page latest entries) that doubles as the leader's own log
// view and a follower's ballot, plus — at the leader only — the group
// bookkeeping.
type replSeg struct {
	epoch     uint32 // log term: the SegEpoch the entries were written under
	lastIndex uint32 // highest index applied (cumulative-ack value)
	pages     map[int32]*replEntry
	lead      *replLead // non-nil while this site leads the group
}

// replLead is the leader's group bookkeeping.
type replLead struct {
	followers []int
	acked     map[int]uint32 // per-follower cumulative applied index
	dead      map[int]bool   // followers the channel gave up on
	based     map[int]bool   // followers holding this epoch's base snapshot
	gates     []*replGate
}

// replGate is one intent awaiting quorum; release opens the gated
// cycle (or lets a release confirmation go).
type replGate struct {
	index   uint32
	page    int32
	digest  uint32
	started time.Duration
	release func()
}

// replElect is an election winner's vote-merge state, carried on the
// recovery struct so the existing request buffering covers the whole
// takeover.
type replElect struct {
	bestEpoch uint32
	bestIndex uint32
	pages     map[int32]*replEntry
	waiting   map[int]bool // voters whose final chunk is still due
	votes     int          // complete ballots merged, the winner's own included
	need      int          // replVoteQuorum
	bufs      map[int]*voteBuf
}

// voteBuf accumulates one voter's chunked reply; it merges only when
// complete, so a truncated higher-epoch ballot can never replace the
// merge wholesale with a partial page set.
type voteBuf struct {
	epoch   uint32
	last    uint32
	entries []byte
}

func (e *Engine) newReplLead() *replLead {
	return &replLead{
		followers: e.replFollowers(e.site),
		acked:     make(map[int]uint32),
		dead:      make(map[int]bool),
		based:     make(map[int]bool),
	}
}

// replActive reports whether this site is currently gating mutations
// through a live replication group for the segment.
func (e *Engine) replActive(sn *segNode) bool {
	return e.replicationEnabled() && sn.repl != nil && sn.repl.lead != nil &&
		len(sn.repl.lead.followers) > 0
}

// replSeedLeader makes this site the segment's log leader for the
// current epoch: one set entry per page (indexes 1..P) snapshotting
// the just-installed record, so the epoch's log is complete from entry
// one and followers re-base from it.
func (e *Engine) replSeedLeader(sn *segNode) {
	rl := &replSeg{epoch: sn.segEpoch, pages: make(map[int32]*replEntry, len(sn.lib.pages))}
	for pg := range sn.lib.pages {
		idx := uint32(pg + 1)
		rl.pages[int32(pg)] = &replEntry{index: idx, page: int32(pg), post: replRecOf(&sn.lib.pages[pg])}
	}
	rl.lastIndex = uint32(len(sn.lib.pages))
	rl.lead = e.newReplLead()
	sn.repl = rl
}

// ---- Entry wire form ----
//
// Inside KAppend.Data (and after the 8-byte ballot header of a KVote
// reply) entries are self-delimiting and batchable:
//
//	kind u8 (1 intent, 2 set) | index u32 | page i32 | post record | [prior record]
//
// record = writer i32 | clock i32 | delta i64 | cs-len u16 | copyset wire
//
// The copyset reuses the dual inline/bitmap wire form of
// mmu.AppendWire. The 32-bit FNV-1a digest of an entry's encoded bytes
// is its identity in EvReplicate events; leader and follower compute
// it over the identical bytes, so the checker can pin log-prefix
// agreement without shipping the entries in the trace.
const (
	replKindIntent = 1
	replKindSet    = 2
	replRecHeader  = 4 + 4 + 8 + 2
	replEntryHdr   = 1 + 4 + 4
	replChunkBytes = 60000
)

func appendReplRec(buf []byte, r *replRec) []byte {
	var h [replRecHeader]byte
	binary.BigEndian.PutUint32(h[0:], uint32(int32(r.writer)))
	binary.BigEndian.PutUint32(h[4:], uint32(int32(r.clock)))
	binary.BigEndian.PutUint64(h[8:], uint64(r.delta))
	binary.BigEndian.PutUint16(h[16:], uint16(r.readers.WireLen()))
	buf = append(buf, h[:]...)
	return r.readers.AppendWire(buf)
}

func decodeReplRec(data []byte) (replRec, int, error) {
	if len(data) < replRecHeader {
		return replRec{}, 0, fmt.Errorf("repl: record truncated at %d bytes", len(data))
	}
	r := replRec{
		writer: int(int32(binary.BigEndian.Uint32(data[0:]))),
		clock:  int(int32(binary.BigEndian.Uint32(data[4:]))),
		delta:  time.Duration(binary.BigEndian.Uint64(data[8:])),
	}
	cs := int(binary.BigEndian.Uint16(data[16:]))
	if r.delta < 0 {
		return replRec{}, 0, fmt.Errorf("repl: negative Δ %v", r.delta)
	}
	n := replRecHeader + cs
	if cs > len(data)-replRecHeader {
		return replRec{}, 0, fmt.Errorf("repl: copyset truncated: %d of %d bytes", len(data)-replRecHeader, cs)
	}
	if cs > 0 {
		var err error
		r.readers, err = mmu.DecodeCopysetWire(data[replRecHeader:n])
		if err != nil {
			return replRec{}, 0, err
		}
	}
	return r, n, nil
}

func encodeReplEntry(buf []byte, ent *replEntry) []byte {
	kind := byte(replKindSet)
	if ent.intent {
		kind = replKindIntent
	}
	var h [replEntryHdr]byte
	h[0] = kind
	binary.BigEndian.PutUint32(h[1:], ent.index)
	binary.BigEndian.PutUint32(h[5:], uint32(ent.page))
	buf = append(buf, h[:]...)
	buf = appendReplRec(buf, &ent.post)
	if ent.intent {
		buf = appendReplRec(buf, &ent.prior)
	}
	return buf
}

// decodeReplEntry decodes one entry from the head of data, returning
// the bytes consumed (the digest input).
func decodeReplEntry(data []byte) (replEntry, int, error) {
	if len(data) < replEntryHdr {
		return replEntry{}, 0, fmt.Errorf("repl: entry truncated at %d bytes", len(data))
	}
	var ent replEntry
	switch data[0] {
	case replKindIntent:
		ent.intent = true
	case replKindSet:
	default:
		return replEntry{}, 0, fmt.Errorf("repl: unknown entry kind %d", data[0])
	}
	ent.index = binary.BigEndian.Uint32(data[1:])
	ent.page = int32(binary.BigEndian.Uint32(data[5:]))
	n := replEntryHdr
	var err error
	ent.post, err = decodeRecAt(data, &n)
	if err != nil {
		return replEntry{}, 0, err
	}
	if ent.intent {
		ent.prior, err = decodeRecAt(data, &n)
		if err != nil {
			return replEntry{}, 0, err
		}
	}
	return ent, n, nil
}

func decodeRecAt(data []byte, n *int) (replRec, error) {
	r, c, err := decodeReplRec(data[*n:])
	if err != nil {
		return replRec{}, err
	}
	*n += c
	return r, nil
}

// replDigest is the 32-bit FNV-1a digest of an entry's encoded bytes.
func replDigest(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// ---- Leader: appending and gating ----

// replAppend appends one entry to the leader's log and streams it to
// the live followers. A non-nil cont is gated on the group quorum
// acknowledging the entry (released immediately when the quorum is
// already unreachable — degraded, counted, and deliberately without a
// commit event so the checker's durability invariant stays one-sided).
// A nil cont is fire-and-forget: the entry replicates but nothing
// waits on it.
func (e *Engine) replAppend(sn *segNode, ent *replEntry, cont func()) {
	if !e.replActive(sn) {
		if cont != nil {
			cont()
		}
		return
	}
	rl, ld := sn.repl, sn.repl.lead
	rl.lastIndex++
	ent.index = rl.lastIndex
	rl.epoch = sn.segEpoch
	rl.pages[ent.page] = ent
	enc := encodeReplEntry(nil, ent)
	dig := replDigest(enc)
	e.stats.Appends++
	e.obs.Count(e.site, obs.CAppend)
	seg := int32(sn.meta.ID)
	for _, f := range ld.followers {
		if ld.dead[f] {
			continue
		}
		if !ld.based[f] {
			// First contact this epoch (or a re-based revival): ship the
			// whole compacted log — per-page latest entries, the new one
			// included — so the follower's ballot is complete.
			e.replSendLog(sn, f)
			ld.based[f] = true
			continue
		}
		e.send(f, &wire.Msg{Kind: wire.KAppend, Seg: seg, Page: ent.page, Cycle: ent.index, Data: enc})
	}
	if cont == nil {
		return
	}
	g := &replGate{index: ent.index, page: ent.page, digest: dig, started: e.env.Now(), release: cont}
	ld.gates = append(ld.gates, g)
	e.replRecomputeGates(sn)
}

// replSendLog ships the leader's whole compacted log to one follower
// in index order (the follower's applied-index stream must ascend),
// chunked under the wire payload bound.
func (e *Engine) replSendLog(sn *segNode, f int) {
	rl := sn.repl
	ents := make([]*replEntry, 0, len(rl.pages))
	for _, ent := range rl.pages {
		ents = append(ents, ent)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].index < ents[j].index })
	seg := int32(sn.meta.ID)
	var data []byte
	var last uint32
	flush := func() {
		e.send(f, &wire.Msg{Kind: wire.KAppend, Seg: seg, Page: -1, Cycle: last, Data: data})
		data = nil
	}
	for _, ent := range ents {
		if len(data) >= replChunkBytes {
			flush()
		}
		data = encodeReplEntry(data, ent)
		last = ent.index
	}
	if len(data) > 0 || len(ents) == 0 {
		flush()
	}
}

// replRecomputeGates re-evaluates every pending gate against the
// current ack state. A gate whose quorum arrived commits (EvReplicate
// with From == Site, the replication-lag sample, the counter); when
// the live group can no longer form a quorum at all, every gate is
// released degraded instead — blocking grants on acks that cannot come
// would trade durability for a livelock.
func (e *Engine) replRecomputeGates(sn *segNode) {
	ld := sn.repl.lead
	if ld == nil || len(ld.gates) == 0 {
		return
	}
	q := e.replQuorum()
	live := 1
	for _, f := range ld.followers {
		if !ld.dead[f] {
			live++
		}
	}
	degraded := live < q
	seg := int32(sn.meta.ID)
	var keep []*replGate
	for _, g := range ld.gates {
		n := 1 // the leader's own log always covers its gates
		for _, f := range ld.followers {
			if !ld.dead[f] && ld.acked[f] >= g.index {
				n++
			}
		}
		switch {
		case n >= q:
			e.stats.ReplCommits++
			e.obs.Count(e.site, obs.CReplCommit)
			e.obs.Observe(obs.HReplLag, int64(e.env.Now()-g.started))
			e.emit(obs.Event{Type: obs.EvReplicate, Seg: seg, Page: g.page,
				From: int32(e.site), Arg: int64(g.index), Cycle: g.digest})
			g.release()
		case degraded:
			e.stats.ReplDegraded++
			e.obs.Count(e.site, obs.CReplDegraded)
			g.release()
		default:
			keep = append(keep, g)
		}
	}
	ld.gates = keep
}

// replGateCycleOpen logs a grant cycle's write-ahead intent and defers
// the cycle's opening send to the quorum commit. The continuation
// re-checks the cycle (by number) before sending: an epoch change or
// abort in the gap must not fire a dead cycle's invalidation.
func (e *Engine) replGateCycleOpen(sn *segNode, page int32, prior, post replRec, to int, open *wire.Msg) {
	if !e.replActive(sn) {
		e.send(to, open)
		return
	}
	seg := int32(sn.meta.ID)
	cyc := sn.lib.pages[page].cycle
	e.replAppend(sn, &replEntry{intent: true, page: page, post: post, prior: prior}, func() {
		cur, ok := e.segs[seg]
		if !ok || cur != sn || sn.lib == nil {
			return
		}
		p := &sn.lib.pages[page]
		if !p.busy || !p.grant.active || p.cycle != cyc {
			return
		}
		e.send(to, open)
	})
}

// replAppendSet logs a committed record mutation fire-and-forget.
func (e *Engine) replAppendSet(sn *segNode, page int32, rec replRec) {
	if !e.replActive(sn) {
		return
	}
	e.replAppend(sn, &replEntry{page: page, post: rec}, nil)
}

// ---- Follower: applying the stream ----

// handleAppend applies a batch of log entries at a follower and
// acknowledges its cumulative applied index. The generic epoch fence
// already matched the message to this site's epoch; a stream from a
// newer term than the local log resets it (the leader re-bases every
// epoch with a full snapshot, so nothing carried over is needed).
func (e *Engine) handleAppend(sn *segNode, m *wire.Msg) {
	if e.opt.Replication == nil {
		e.stats.Dropped++
		return
	}
	if mutateReplAckWithoutApply {
		// MUTATION BUILD: acknowledge the append without applying it —
		// the lie the acked-append-lost invariant exists to catch.
		e.send(int(m.From), &wire.Msg{Kind: wire.KAppendAck, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
		return
	}
	rl := sn.repl
	if rl == nil {
		rl = &replSeg{pages: make(map[int32]*replEntry)}
		sn.repl = rl
	}
	if m.SegEpoch > rl.epoch {
		rl.epoch = m.SegEpoch
		rl.lastIndex = 0
		rl.pages = make(map[int32]*replEntry)
	}
	data := m.Data
	for len(data) > 0 {
		ent, n, err := decodeReplEntry(data)
		if err != nil {
			e.markStale()
			break
		}
		dig := replDigest(data[:n])
		data = data[n:]
		cur := rl.pages[ent.page]
		if cur != nil && ent.index <= cur.index {
			continue // a re-based snapshot re-sent an entry already held
		}
		entCopy := ent
		rl.pages[ent.page] = &entCopy
		if ent.index > rl.lastIndex {
			rl.lastIndex = ent.index
		}
		e.emit(obs.Event{Type: obs.EvReplicate, Seg: m.Seg, Page: ent.page,
			From: m.From, Arg: int64(ent.index), Cycle: dig})
	}
	e.send(int(m.From), &wire.Msg{Kind: wire.KAppendAck, Seg: m.Seg, Page: m.Page, Cycle: rl.lastIndex})
}

// handleAppendAck runs at the leader: a cumulative-ack advance
// re-evaluates the gates, a refusal (Page -2: the peer holds no state
// for the segment) benches the follower with a timed retry, and any
// current-epoch ack from a benched follower revives it (with a re-base,
// since it missed entries while benched). Stale-epoch acks never get
// here — the generic fence drops them — so the ack counting only ever
// sees appliers of the current term.
func (e *Engine) handleAppendAck(sn *segNode, m *wire.Msg) {
	rl := sn.repl
	if rl == nil || rl.lead == nil {
		e.markStale()
		return
	}
	ld := rl.lead
	f := int(m.From)
	member := false
	for _, s := range ld.followers {
		if s == f {
			member = true
			break
		}
	}
	if !member {
		e.markStale()
		return
	}
	if m.Page == -2 {
		ld.dead[f] = true
		ld.based[f] = false
		e.replArmRevival(sn, f)
		e.replRecomputeGates(sn)
		return
	}
	if m.Cycle > ld.acked[f] {
		ld.acked[f] = m.Cycle
	}
	if ld.dead[f] {
		ld.dead[f] = false
		ld.based[f] = false
	}
	e.replRecomputeGates(sn)
}

// replArmRevival schedules one retry for a benched follower: after the
// recovery timeout the next append re-bases it. A follower that is
// really gone just benches again — bounded, periodic, and deterministic
// in simulation.
func (e *Engine) replArmRevival(sn *segNode, f int) {
	seg := int32(sn.meta.ID)
	epoch := sn.segEpoch
	e.env.After(e.opt.Failover.recoverTimeout(), func() {
		cur, ok := e.segs[seg]
		if !ok || cur != sn || sn.segEpoch != epoch || sn.repl == nil || sn.repl.lead == nil {
			return
		}
		sn.repl.lead.dead[f] = false
		sn.repl.lead.based[f] = false
	})
}

// replFollowerFailed benches a follower whose append channel gave up
// and re-evaluates the gates (the quorum may have shrunk past reach).
func (e *Engine) replFollowerFailed(sn *segNode, f int) {
	rl := sn.repl
	if rl == nil || rl.lead == nil {
		e.stats.Dropped++
		return
	}
	rl.lead.dead[f] = true
	rl.lead.based[f] = false
	e.replArmRevival(sn, f)
	e.replRecomputeGates(sn)
}

// ---- Election: takeover from the log ----

// beginElection starts the replicated branch of a takeover at the
// nominated successor (beginRecovery already bumped the epoch, claimed
// the role and forgot the dead library's requests): solicit the group's
// log tails, merge a vote quorum, and install from the merged log —
// no cluster-wide holdings interrogation. Vote timeout or an
// unreachable quorum falls back to the legacy rebuild under the
// already-bumped epoch.
func (e *Engine) beginElection(sn *segNode, rc *recovery) {
	seg := int32(sn.meta.ID)
	el := &replElect{
		pages:   make(map[int32]*replEntry),
		waiting: make(map[int]bool),
		votes:   1,
		need:    e.replVoteQuorum(),
		bufs:    make(map[int]*voteBuf),
	}
	if rl := sn.repl; rl != nil {
		el.bestEpoch = rl.epoch
		el.bestIndex = rl.lastIndex
		for pg, ent := range rl.pages {
			el.pages[pg] = ent
		}
	}
	rc.elect = el
	var ballot [8]byte
	binary.BigEndian.PutUint32(ballot[0:], el.bestEpoch)
	binary.BigEndian.PutUint32(ballot[4:], el.bestIndex)
	group := append([]int{rc.from}, e.replFollowers(rc.from)...)
	for _, s := range group {
		if s == e.site || s == rc.from {
			continue
		}
		el.waiting[s] = true
		e.send(s, &wire.Msg{Kind: wire.KVote, Seg: seg, Page: -1,
			Req: int32(e.site), Data: append([]byte(nil), ballot[:]...)})
	}
	if el.votes >= el.need || len(el.waiting) == 0 {
		e.settleElection(sn)
		return
	}
	rc.cancel = e.env.After(e.opt.Failover.recoverTimeout(), func() {
		if cur, ok := e.segs[seg]; !ok || cur != sn || sn.recov != rc {
			return
		}
		e.electionFallback(sn)
	})
}

// handleVote serves both directions of the election exchange. A
// solicitation (From == Req, another site) is answered with this
// site's ballot: log epoch, applied index, and the per-page latest
// entries the solicitor's own log cannot already hold, chunked with
// Upgrade marking the final chunk. A reply (Req == this site) is
// buffered per voter and merged when complete.
func (e *Engine) handleVote(sn *segNode, m *wire.Msg) {
	if e.opt.Replication == nil {
		e.stats.Dropped++
		return
	}
	from := int(m.From)
	switch {
	case int(m.Req) == from && from != e.site:
		e.sendVoteReply(sn, from, m.Data)
	case int(m.Req) == e.site && from != e.site:
		rc := sn.recov
		if rc == nil || rc.elect == nil || !rc.elect.waiting[from] {
			e.markStale()
			return
		}
		el := rc.elect
		if len(m.Data) < 8 {
			e.markStale()
			return
		}
		b := el.bufs[from]
		if b == nil {
			b = &voteBuf{
				epoch: binary.BigEndian.Uint32(m.Data[0:]),
				last:  binary.BigEndian.Uint32(m.Data[4:]),
			}
			el.bufs[from] = b
		}
		b.entries = append(b.entries, m.Data[8:]...)
		if !m.Upgrade {
			return
		}
		delete(el.bufs, from)
		delete(el.waiting, from)
		el.merge(b)
		el.votes++
		if el.votes >= el.need || len(el.waiting) == 0 {
			e.settleElection(sn)
		}
	default:
		e.markStale()
	}
}

// merge folds one complete ballot into the election state: a higher
// log epoch wins wholesale, an equal one merges per page by index, a
// lower one contributes nothing but still counts as a vote.
func (el *replElect) merge(b *voteBuf) {
	if b.epoch < el.bestEpoch {
		return
	}
	if b.epoch > el.bestEpoch {
		el.bestEpoch = b.epoch
		el.bestIndex = 0
		el.pages = make(map[int32]*replEntry)
	}
	if b.last > el.bestIndex {
		el.bestIndex = b.last
	}
	data := b.entries
	for len(data) > 0 {
		ent, n, err := decodeReplEntry(data)
		if err != nil {
			return
		}
		data = data[n:]
		cur := el.pages[ent.page]
		if cur == nil || ent.index > cur.index {
			entCopy := ent
			el.pages[ent.page] = &entCopy
		}
	}
}

// sendVoteReply ships this site's ballot to an election winner. The
// solicitation carries the winner's own (epoch, index) so a same-epoch
// reply can skip entries the winner's log already covers.
func (e *Engine) sendVoteReply(sn *segNode, to int, ballot []byte) {
	var solEpoch, solIdx uint32
	if len(ballot) >= 8 {
		solEpoch = binary.BigEndian.Uint32(ballot[0:])
		solIdx = binary.BigEndian.Uint32(ballot[4:])
	}
	rl := sn.repl
	var hdr [8]byte
	var ents []*replEntry
	if rl != nil {
		binary.BigEndian.PutUint32(hdr[0:], rl.epoch)
		binary.BigEndian.PutUint32(hdr[4:], rl.lastIndex)
		// A ballot older than the solicitor's is epoch+index alone: its
		// entries cannot beat anything the winner already merged.
		if rl.epoch >= solEpoch {
			for _, ent := range rl.pages {
				if rl.epoch == solEpoch && ent.index <= solIdx {
					continue
				}
				ents = append(ents, ent)
			}
			sort.Slice(ents, func(i, j int) bool { return ents[i].index < ents[j].index })
		}
	}
	seg := int32(sn.meta.ID)
	send := func(data []byte, last bool) {
		e.send(to, &wire.Msg{Kind: wire.KVote, Seg: seg, Page: -1,
			Req: int32(to), Upgrade: last, Data: data})
	}
	data := append([]byte(nil), hdr[:]...)
	for _, ent := range ents {
		if len(data) >= replChunkBytes {
			send(data, false)
			data = append([]byte(nil), hdr[:]...)
		}
		data = encodeReplEntry(data, ent)
	}
	send(data, true)
}

// voteSolicitFailed reacts to an undeliverable solicitation: the voter
// is gone; if no awaited ballot remains and the quorum is short, the
// election cannot complete and the legacy rebuild takes over.
func (e *Engine) voteSolicitFailed(sn *segNode, to int) {
	rc := sn.recov
	if rc == nil || rc.elect == nil || !rc.elect.waiting[to] {
		e.stats.Dropped++
		return
	}
	el := rc.elect
	delete(el.waiting, to)
	delete(el.bufs, to)
	if el.votes >= el.need {
		e.settleElection(sn)
		return
	}
	if len(el.waiting) == 0 {
		e.electionFallback(sn)
	}
}

// electionFallback abandons the vote and reconstructs the record the
// legacy way (holder interrogation) under the already-bumped epoch:
// quorum lost means the log's completeness can no longer be proven, and
// an unprovable log is worth less than the holders' own word.
func (e *Engine) electionFallback(sn *segNode) {
	rc := sn.recov
	if rc == nil || rc.elect == nil {
		return
	}
	if rc.cancel != nil {
		rc.cancel()
		rc.cancel = nil
	}
	rc.elect = nil
	e.mergeHoldings(rc, e.site, e.localHoldings(sn))
	e.queryHoldings(sn, rc)
}

// settleElection runs once the vote quorum is merged. Pages whose
// latest entry is a still-in-flight intent are ambiguous — the crash
// may have landed before, during, or after the cycle the intent
// announced — so the involved sites (old writer, new writer, clock)
// are probed with the ordinary holdings query; everything else
// installs straight from the log. The probe doubles as the epoch
// notice: it forces adoptEpoch at the target, which rolls back the
// target's pending invalidation state before it reports.
func (e *Engine) settleElection(sn *segNode) {
	rc := sn.recov
	if rc == nil || rc.elect == nil {
		return
	}
	if rc.cancel != nil {
		rc.cancel()
		rc.cancel = nil
	}
	el := rc.elect
	el.waiting = nil
	// This site's own holdings resolve intents it was itself involved in
	// (it is never probed): e.g. an upgrade intent whose new writer is
	// the electing site — whether it took effect is written in the local
	// MMU, not in anyone else's report.
	e.mergeHoldings(rc, e.site, e.localHoldings(sn))
	targets := make(map[int]bool)
	for _, ent := range el.pages {
		if !ent.intent {
			continue
		}
		for _, s := range []int{ent.post.writer, ent.post.clock, ent.prior.clock, ent.prior.writer} {
			if s >= 0 && s != e.site && s != rc.from {
				targets[s] = true
			}
		}
	}
	if len(targets) == 0 {
		e.installElectedLib(sn)
		return
	}
	seg := int32(sn.meta.ID)
	order := make([]int, 0, len(targets))
	for s := range targets {
		order = append(order, s)
	}
	sort.Ints(order)
	for _, s := range order {
		rc.waiting[s] = true
		e.send(s, &wire.Msg{Kind: wire.KRecover, Seg: seg, Page: -1, Req: int32(e.site)})
	}
	rc.cancel = e.env.After(e.opt.Failover.recoverTimeout(), func() {
		if cur, ok := e.segs[seg]; !ok || cur != sn || sn.recov != rc {
			return
		}
		e.installElectedLib(sn)
	})
}

// resolveIntent picks the record for a page whose log tail is an
// in-flight intent, from the probed holdings of the involved sites.
// A write (or upgrade) took effect only if its new writer actually
// holds the writable copy; a downgrade failed only if the old writer
// still holds it; a pure reader extension is always safe to adopt —
// a listed reader without a copy just acks its invalidations vacuously.
func resolveIntent(rc *recovery, ent *replEntry) replRec {
	rp := rc.got[ent.page]
	switch {
	case ent.post.writer != mmu.NoWriter:
		if rp != nil && rp.writer == ent.post.writer {
			return ent.post
		}
		return ent.prior
	case ent.prior.writer != mmu.NoWriter:
		if rp != nil && rp.writer == ent.prior.writer {
			return ent.prior
		}
		return ent.post
	default:
		return ent.post
	}
}

// installElectedLib installs the merged log as the library record and
// resumes granting: the replicated takeover's counterpart of
// finishRecovery. The dead leader is scrubbed from the record; pages
// it alone held stay attributed to it (the orphan fail-fast rule —
// zero-filling would discard the only good copy, exactly as in the
// legacy rebuild).
func (e *Engine) installElectedLib(sn *segNode) {
	rc := sn.recov
	if rc == nil || rc.elect == nil {
		return
	}
	if rc.cancel != nil {
		rc.cancel()
	}
	sn.recov = nil
	el := rc.elect
	seg := int32(sn.meta.ID)
	dead := rc.from
	lib := newLibSeg(sn.meta)
	for pg := range lib.pages {
		p := &lib.pages[pg]
		ent := el.pages[int32(pg)]
		if ent == nil {
			// Never logged: the page never left its creator — the dead
			// leader. Orphan it like the legacy no-surviving-copy rule.
			p.writer, p.clock = dead, dead
			continue
		}
		rec := ent.post
		if ent.intent {
			rec = resolveIntent(rc, ent)
		}
		p.writer = rec.writer
		p.delta = rec.delta
		p.readers = rec.readers.Remove(dead)
		switch {
		case p.writer == dead:
			// The writable copy died with the leader: orphan fail-fast.
			p.readers = mmu.Copyset{}
			p.clock = dead
		case p.writer != mmu.NoWriter:
			p.clock = p.writer
			// Restore writer exclusivity: reader entries alongside a
			// writer are leftovers of an interrupted cycle.
			p.readers.Remove(p.writer).ForEach(func(s int) {
				e.send(s, &wire.Msg{Kind: wire.KInvalOrder, Seg: seg, Page: int32(pg)})
			})
			p.readers = mmu.Copyset{}
		case p.readers.Empty():
			// Reader-mode with every copy at the dead leader: orphaned.
			p.writer, p.clock = dead, dead
		default:
			clock := rec.clock
			if clock == dead || !p.readers.Has(clock) {
				if p.readers.Has(e.site) {
					clock = e.site
				} else {
					clock = p.readers.Sites()[0]
				}
			}
			p.clock = clock
			e.send(clock, &wire.Msg{
				Kind: wire.KClockHandoff, Seg: seg, Page: int32(pg), Readers: p.readers,
			})
		}
	}
	sn.lib = lib
	e.replSeedLeader(sn)
	e.replBaseFollowers(sn)
	e.stats.Recoveries++
	e.stats.Elections++
	e.obs.Count(e.site, obs.CRecovery)
	e.obs.Count(e.site, obs.CElect)
	e.obs.Observe(obs.HRecoverLatency, int64(e.env.Now()-rc.started))
	e.emit(obs.Event{Type: obs.EvElect, Seg: seg, From: int32(dead),
		Cycle: el.bestEpoch, Arg: int64(el.bestIndex)})
	e.emit(obs.Event{Type: obs.EvRecover, Seg: seg, Arg: int64(dead)})
	for _, m := range rc.buffered {
		e.handleLibrary(sn, m)
	}
	rc.buffered = nil
	for p := int32(0); p < int32(sn.m.Pages()); p++ {
		e.wakeWaiters(sn, p)
	}
}

// replBaseFollowers eagerly re-bases the new leader's follower group
// with the epoch's seed log. Used after elections and migrations,
// where the group members are known-attached; initial segment creation
// bases lazily on first append instead, so a follower that has not
// attached yet is not benched before it ever joined.
func (e *Engine) replBaseFollowers(sn *segNode) {
	if !e.replActive(sn) {
		return
	}
	ld := sn.repl.lead
	for _, f := range ld.followers {
		if ld.dead[f] {
			continue
		}
		e.replSendLog(sn, f)
		ld.based[f] = true
	}
}
