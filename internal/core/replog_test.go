package core

import (
	"sync"
	"testing"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
)

// replOptions enables the full replication stack with short timers so
// the sim-driven tests cross the give-up and recovery horizons quickly.
func replOptions(o *obs.Obs, sites, replicas int) Options {
	return Options{
		Reliability: &Reliability{
			AckTimeout: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			MaxAttempts: 5, RequestTimeout: 10 * time.Second,
		},
		Failover:    &Failover{Sites: sites, RecoverTimeout: 500 * time.Millisecond},
		Replication: &Replication{Replicas: replicas, Sites: sites},
		Obs:         o,
	}
}

// crash marks a site dead: every message to or from it is dropped, so
// its peers' reliable channels give up on it.
func (n *testNet) crash(site int) { n.down[site] = true }

// TestReplEntryCodecRoundTrip round-trips entries through the wire form
// across both copyset encodings (the sparse member list and the dense
// bitmap) and both entry kinds.
func TestReplEntryCodecRoundTrip(t *testing.T) {
	sparse := mmu.CopysetOf(1).Add(5).Add(63)
	dense := mmu.Copyset{}
	for s := 0; s < 40; s++ {
		dense = dense.Add(s)
	}
	cases := []replEntry{
		{index: 1, page: 0, post: replRec{writer: 3, clock: 3, delta: 20 * time.Millisecond}},
		{index: 7, page: 2, post: replRec{writer: mmu.NoWriter, clock: 1, readers: sparse}},
		{index: 9, page: 5, post: replRec{writer: mmu.NoWriter, clock: 0, readers: dense,
			delta: time.Second}},
		{intent: true, index: 12, page: 1,
			post:  replRec{writer: 2, clock: 2, delta: 5 * time.Millisecond},
			prior: replRec{writer: mmu.NoWriter, clock: 4, readers: sparse}},
		{intent: true, index: 13, page: 3,
			post:  replRec{writer: mmu.NoWriter, clock: 6, readers: dense},
			prior: replRec{writer: 6, clock: 6}},
	}
	var buf []byte
	for i := range cases {
		buf = encodeReplEntry(buf, &cases[i])
	}
	for i := range cases {
		ent, n, err := decodeReplEntry(buf)
		if err != nil {
			t.Fatalf("entry %d: decode: %v", i, err)
		}
		want := cases[i]
		if ent.intent != want.intent || ent.index != want.index || ent.page != want.page {
			t.Fatalf("entry %d: header %+v, want %+v", i, ent, want)
		}
		for _, pair := range []struct{ got, want replRec }{{ent.post, want.post}, {ent.prior, want.prior}} {
			if pair.got.writer != pair.want.writer || pair.got.clock != pair.want.clock ||
				pair.got.delta != pair.want.delta || !pair.got.readers.Equal(pair.want.readers) {
				t.Fatalf("entry %d: record %+v, want %+v", i, pair.got, pair.want)
			}
		}
		if !want.intent && ent.prior.readers.Count() != 0 {
			t.Fatalf("entry %d: set entry decoded a prior record", i)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after all entries", len(buf))
	}
}

// TestReplEntryCodecRejectsCorrupt feeds truncations and corruptions of
// a valid entry to the decoder; none may round-trip silently.
func TestReplEntryCodecRejectsCorrupt(t *testing.T) {
	ent := replEntry{intent: true, index: 4, page: 1,
		post:  replRec{writer: 2, clock: 2, delta: time.Millisecond},
		prior: replRec{writer: mmu.NoWriter, clock: 3, readers: mmu.CopysetOf(3).Add(4)}}
	good := encodeReplEntry(nil, &ent)
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := decodeReplEntry(good[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", cut, len(good))
		}
	}
	bad := append([]byte(nil), good...)
	bad[0] = 99 // unknown kind
	if _, _, err := decodeReplEntry(bad); err == nil {
		t.Fatal("unknown entry kind decoded")
	}
}

// TestReplQuorumGatesMutations: with two followers, every record
// mutation must append to the log and commit at quorum before the world
// sees its effects.
func TestReplQuorumGatesMutations(t *testing.T) {
	o := obs.New()
	n := newTestNet(t, 3, replOptions(o, 3, 2))
	n.newSeg(2, 0)

	n.acquire(1, 1, 0, true)
	n.acquire(2, 1, 0, false)
	n.acquire(2, 1, 1, true)
	n.settle()

	lib := n.engines[0]
	st := lib.Stats()
	if st.Appends == 0 {
		t.Fatal("no log appends at the leader")
	}
	if st.ReplCommits == 0 {
		t.Fatal("no quorum commits at the leader")
	}
	if st.ReplDegraded != 0 {
		t.Fatalf("ReplDegraded = %d with the whole group alive", st.ReplDegraded)
	}
	// Followers mirror the record: their compacted log's latest entries
	// must agree with the leader's authoritative record.
	for _, f := range []int{1, 2} {
		rl := n.engines[f].segs[1].repl
		if rl == nil {
			t.Fatalf("site %d holds no replica log", f)
		}
		for pg := int32(0); pg < 2; pg++ {
			ent := rl.pages[pg]
			if ent == nil {
				t.Fatalf("site %d: no log entry for page %d", f, pg)
			}
			want := lib.LibraryState(1, pg)
			if ent.post.writer != want.Writer || !ent.post.readers.Equal(want.Readers) {
				t.Errorf("site %d page %d: replica writer=%d readers=%v, record %d/%v",
					f, pg, ent.post.writer, ent.post.readers, want.Writer, want.Readers)
			}
		}
	}
	// Leader commits and follower applies both appear in the trace.
	var leaderCommits, followerApplies int
	for _, ev := range o.Buffer().Events() {
		if ev.Type != obs.EvReplicate {
			continue
		}
		if ev.Site == int32(ev.From) {
			leaderCommits++
		} else {
			followerApplies++
		}
	}
	if leaderCommits == 0 || followerApplies == 0 {
		t.Fatalf("trace: %d leader commits, %d follower applies; want both > 0",
			leaderCommits, followerApplies)
	}
}

// TestReplElectionInstallsFromLog: after the leader crashes, the
// nominated follower installs the record from its replicated log (an
// election, not a holder rebuild) and the record survives exactly.
func TestReplElectionInstallsFromLog(t *testing.T) {
	o := obs.New()
	n := newTestNet(t, 3, replOptions(o, 3, 2))
	n.newSeg(2, 0)

	n.acquire(1, 1, 0, true) // site 1 becomes page 0's writer
	n.acquire(2, 1, 1, false)
	n.settle()

	n.crash(0)
	n.acquire(2, 1, 0, false) // forces a request → give-up → takeover
	n.settle()

	succ := n.engines[1]
	st := succ.Stats()
	if st.Elections != 1 {
		t.Fatalf("successor Elections = %d, want 1", st.Elections)
	}
	if st.Recoveries != 1 {
		t.Fatalf("successor Recoveries = %d, want 1", st.Recoveries)
	}
	ls := succ.LibraryState(1, 0)
	if ls.Writer != mmu.NoWriter || !ls.Readers.Has(2) {
		t.Errorf("page 0 after takeover: writer=%d readers=%v, want read copy at site 2",
			ls.Writer, ls.Readers)
	}
	ls1 := succ.LibraryState(1, 1)
	if !ls1.Readers.Has(2) {
		t.Errorf("page 1 after takeover lost reader 2: %+v", ls1)
	}
	var elects int
	for _, ev := range o.Buffer().Events() {
		if ev.Type == obs.EvElect {
			elects++
			if ev.Site != 1 || ev.From != 0 {
				t.Errorf("EvElect site=%d from=%d, want 1/0", ev.Site, ev.From)
			}
		}
	}
	if elects != 1 {
		t.Fatalf("trace has %d EvElect events, want 1", elects)
	}
	if got := o.Metrics.Total(obs.CElect); got != 1 {
		t.Errorf("elections counter = %d, want 1", got)
	}
}

// TestReplElectionFallback: when the vote quorum is unreachable the
// takeover must fall back to the legacy holder rebuild — a recovery
// without an election.
func TestReplElectionFallback(t *testing.T) {
	n := newTestNet(t, 3, replOptions(nil, 3, 2))
	n.newSeg(2, 0)

	n.acquire(1, 1, 0, false) // survivor holds a read copy of page 0
	n.settle()

	n.crash(0)
	n.crash(2) // the only other voter dies with the leader
	// The write upgrade must reach the library: give-up nominates site 1,
	// whose election cannot reach a quorum and falls back to the rebuild.
	n.acquire(1, 1, 0, true)
	n.settle()

	st := n.engines[1].Stats()
	if st.Elections != 0 {
		t.Fatalf("Elections = %d after quorum loss, want 0 (fallback)", st.Elections)
	}
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", st.Recoveries)
	}
	// The rebuilt record granted the upgrade: site 1 writes page 0.
	if ls := n.engines[1].LibraryState(1, 0); ls.Writer != 1 {
		t.Errorf("page 0 writer = %d after fallback rebuild, want 1", ls.Writer)
	}
}

// TestReplDegradedReleasesGates: when the live group cannot form a
// quorum, gated mutations must release degraded instead of wedging the
// grant path.
func TestReplDegradedReleasesGates(t *testing.T) {
	n := newTestNet(t, 4, replOptions(nil, 4, 3))
	n.newSeg(1, 0)

	n.acquire(1, 1, 0, true)
	n.settle()
	n.crash(2)
	n.crash(3)

	// Quorum is 3 of {0,1,2,3}; only the leader and follower 1 survive.
	n.acquire(0, 1, 0, true)
	n.settle()

	st := n.engines[0].Stats()
	if st.ReplDegraded == 0 {
		t.Fatal("no degraded gate releases with the quorum unreachable")
	}
	if ls := n.engines[0].LibraryState(1, 0); ls.Writer != 0 {
		t.Errorf("page 0 writer = %d, want 0 (grant must proceed degraded)", ls.Writer)
	}
}

// TestReplConcurrentClusters runs the append-storm and crash-election
// scenarios in parallel goroutines, each on a private cluster. The
// engines are actor-serialized; this catches any package-level state
// the replication layer would share across engines under -race.
func TestReplConcurrentClusters(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := newTestNet(t, 3, replOptions(nil, 3, 2))
			n.newSeg(2, 0)
			for i := 0; i < 4; i++ {
				n.acquire(1, 1, 0, true)
				n.acquire(2, 1, 0, false)
				n.acquire(2, 1, 1, true)
			}
			n.settle()
			if g%2 == 0 { // half the clusters also crash their leader
				n.crash(0)
				// Site 1 was invalidated off page 1 by site 2's write, so
				// this access faults, gives up, and triggers the takeover.
				n.acquire(1, 1, 1, false)
				n.settle()
				if el := n.engines[1].Stats().Elections; el != 1 {
					t.Errorf("cluster %d: Elections = %d, want 1", g, el)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReplMigrationShipsLogHead: a voluntary migration must leave the
// successor leading a freshly seeded log (the offer is the log head),
// with the old leader deposed.
func TestReplMigrationShipsLogHead(t *testing.T) {
	opt := replOptions(nil, 3, 2)
	opt.Placement = &Placement{
		Window: 50 * time.Millisecond, MinRequests: 4,
		Share: 0.5, PingPong: 0.8, Cooldown: time.Hour,
	}
	n := newTestNet(t, 3, opt)
	n.newSeg(2, 0)

	driveSkew(n, 1, 40)
	n.settle()

	if got := n.engines[1].Stats().Migrations; got != 1 {
		t.Fatalf("site 1 accepted %d migrations, want 1", got)
	}
	old, succ := n.engines[0].segs[1], n.engines[1].segs[1]
	if old.repl == nil || old.repl.lead != nil {
		t.Error("deposed leader still leads the replication group")
	}
	if succ.repl == nil || succ.repl.lead == nil {
		t.Fatal("successor does not lead the replication group")
	}
	if succ.repl.epoch != succ.segEpoch {
		t.Errorf("successor log epoch %d != segment epoch %d", succ.repl.epoch, succ.segEpoch)
	}
	if len(succ.repl.pages) != 2 {
		t.Errorf("successor log seeded with %d pages, want 2", len(succ.repl.pages))
	}
}
