package core

import (
	"testing"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
)

// fastAuto is an AutoDelta config with the rate limiter opened up so a
// short driven workload crosses several adjustment intervals: one grant
// cycle and one millisecond between retunes instead of the production
// four cycles / three clock ticks.
func fastAuto() *AutoDelta {
	return &AutoDelta{
		Min: 2 * time.Millisecond, Max: 100 * time.Millisecond,
		Step: 5 * time.Millisecond, CheapDenial: time.Second,
		MinCycles: 1, Cooldown: time.Millisecond,
	}
}

// TestAutoDeltaShrinksOnWriteSharing: two sites alternating writes on
// one page is the E16 ping-pong regime — every window is pure latency
// for the waiting writer, so the controller must walk Δ down
// multiplicatively and never below Min.
func TestAutoDeltaShrinksOnWriteSharing(t *testing.T) {
	o := obs.New()
	ad := fastAuto()
	n := newTestNet(t, 3, Options{AutoDelta: ad, Obs: o})
	const seed = 40 * time.Millisecond
	n.newSeg(1, seed)

	for i := 0; i < 12; i++ {
		n.acquire(1, 1, 0, true)
		n.acquire(2, 1, 0, true)
	}
	n.settle()

	st := n.engines[0].Stats()
	if st.DeltaShrinks < 2 {
		t.Fatalf("DeltaShrinks = %d under write-sharing, want >= 2", st.DeltaShrinks)
	}
	ls := n.engines[0].LibraryState(1, 0)
	if ls.Delta > seed/2 {
		t.Errorf("Δ = %v after ping-pong, want <= %v (halving from %v)", ls.Delta, seed/2, seed)
	}
	if ls.Delta < ad.Min {
		t.Errorf("Δ = %v fell below Min %v", ls.Delta, ad.Min)
	}
	if !ls.WriteSharing {
		t.Error("WriteSharing not reported after alternating write grants")
	}
	if ls.Denied == 0 || ls.DenialRemaining == 0 {
		t.Errorf("denial signals empty: denied=%d remEWMA=%v", ls.Denied, ls.DenialRemaining)
	}

	// Every adjustment must surface in the metrics and the trace.
	adjusts := st.DeltaGrows + st.DeltaShrinks
	if got := o.Metrics.Total(obs.CDeltaShrink); int(got) != st.DeltaShrinks {
		t.Errorf("delta_shrink counter = %d, stats say %d", got, st.DeltaShrinks)
	}
	if got := o.Metrics.Total(obs.CDeltaGrow); int(got) != st.DeltaGrows {
		t.Errorf("delta_grow counter = %d, stats say %d", got, st.DeltaGrows)
	}
	if c := o.Metrics.Hist(obs.HTunedDelta).Count(); int(c) != adjusts {
		t.Errorf("tuned_delta_ns has %d samples, want one per adjustment (%d)", c, adjusts)
	}
	retunes := 0
	for _, ev := range o.Buffer().Events() {
		if ev.Type != obs.EvRetune {
			continue
		}
		retunes++
		if ev.Site != 0 || ev.Seg != 1 || ev.Page != 0 {
			t.Errorf("EvRetune site=%d seg=%d page=%d, want 0/1/0", ev.Site, ev.Seg, ev.Page)
		}
		if d := time.Duration(ev.Arg); d < ad.Min || d > ad.Max {
			t.Errorf("EvRetune Arg %v outside [%v, %v]", d, ad.Min, ad.Max)
		}
	}
	if retunes != adjusts {
		t.Errorf("trace has %d EvRetune events, want one per adjustment (%d)", retunes, adjusts)
	}
}

// TestAutoDeltaGrowsOnCheapDenials: a stable writer whose readers keep
// bouncing off the window is the thrash-amelioration regime (§7.2) —
// denials present, cheap, no write alternation — so the controller must
// grow Δ additively, clamped at Max, and never shrink.
func TestAutoDeltaGrowsOnCheapDenials(t *testing.T) {
	ad := &AutoDelta{
		Min: 0, Max: 60 * time.Millisecond,
		Step: 10 * time.Millisecond, CheapDenial: time.Second,
		MinCycles: 1, Cooldown: time.Millisecond,
	}
	n := newTestNet(t, 3, Options{AutoDelta: ad})
	const seed = 10 * time.Millisecond
	n.newSeg(1, seed)

	for i := 0; i < 12; i++ {
		n.acquire(1, 1, 0, true) // always the same writer: no alternation
		n.acquire(2, 1, 0, false)
	}
	n.settle()

	st := n.engines[0].Stats()
	if st.DeltaGrows < 2 {
		t.Fatalf("DeltaGrows = %d with a stable writer and cheap denials, want >= 2", st.DeltaGrows)
	}
	if st.DeltaShrinks != 0 {
		t.Errorf("DeltaShrinks = %d, want 0 (no write-sharing, denials cheap)", st.DeltaShrinks)
	}
	ls := n.engines[0].LibraryState(1, 0)
	if ls.Delta <= seed {
		t.Errorf("Δ = %v never grew above the %v seed", ls.Delta, seed)
	}
	if ls.Delta > ad.Max {
		t.Errorf("Δ = %v exceeds Max %v", ls.Delta, ad.Max)
	}
	if ls.WriteSharing {
		t.Error("WriteSharing reported for a stable writer")
	}
}

// TestAutoDeltaFirstGrantClampsAndRateLimits: a seed Δ above Max must
// be clamped into the band before the first window goes out (that is
// what keeps Delta=Min verification sound), and a long Cooldown must
// pin Δ there no matter how hard the workload ping-pongs.
func TestAutoDeltaFirstGrantClampsAndRateLimits(t *testing.T) {
	o := obs.New()
	ad := &AutoDelta{
		Min: 0, Max: 15 * time.Millisecond,
		Step:      5 * time.Millisecond,
		MinCycles: 1, Cooldown: time.Hour,
	}
	n := newTestNet(t, 3, Options{AutoDelta: ad, Obs: o})
	n.newSeg(1, 40*time.Millisecond) // seed deliberately above Max

	n.acquire(1, 1, 0, true)
	if w := n.engines[1].Seg(1).Aux(0).Window; w != ad.Max {
		t.Fatalf("first granted window = %v, want the clamped %v", w, ad.Max)
	}
	for i := 0; i < 8; i++ {
		n.acquire(2, 1, 0, true)
		n.acquire(1, 1, 0, true)
	}
	n.settle()

	st := n.engines[0].Stats()
	if adj := st.DeltaGrows + st.DeltaShrinks; adj != 0 {
		t.Errorf("%d adjustments under an hour-long Cooldown, want 0", adj)
	}
	if d := n.engines[0].LibraryState(1, 0).Delta; d != ad.Max {
		t.Errorf("Δ = %v, want pinned at the clamped %v", d, ad.Max)
	}
	for _, ev := range o.Buffer().Events() {
		if ev.Type == obs.EvRetune {
			t.Fatalf("EvRetune at t=%v despite the Cooldown (first-grant clamp must not emit)", ev.T)
		}
	}
}

// TestTuneInfoCarriesDenialSignals: the TuneDelta hook must see the
// denial-side signals the library now records — denied count, the
// remaining-window EWMA from KBusy replies, and the write-sharing
// indicator — not just the demand stats.
func TestTuneInfoCarriesDenialSignals(t *testing.T) {
	var captured []TuneInfo
	opt := Options{TuneDelta: func(ti TuneInfo) time.Duration {
		captured = append(captured, ti)
		return ti.Delta
	}}
	n := newTestNet(t, 3, opt)
	const delta = 20 * time.Millisecond
	n.newSeg(1, delta)

	for i := 0; i < 6; i++ {
		n.acquire(1, 1, 0, true)
		n.acquire(2, 1, 0, true)
	}
	n.settle()

	if len(captured) == 0 {
		t.Fatal("tuner hook never called")
	}
	last := captured[len(captured)-1]
	if last.Seg != 1 || last.Page != 0 || last.Delta != delta {
		t.Errorf("TuneInfo header = seg=%d page=%d Δ=%v, want 1/0/%v", last.Seg, last.Page, last.Delta, delta)
	}
	if last.Denied == 0 {
		t.Error("TuneInfo.Denied = 0 after window denials")
	}
	if last.DenialRemaining <= 0 || last.DenialRemaining > delta {
		t.Errorf("TuneInfo.DenialRemaining = %v, want in (0, %v]", last.DenialRemaining, delta)
	}
	if !last.WriteSharing {
		t.Error("TuneInfo.WriteSharing = false after alternating write grants")
	}
	if last.Requests == 0 || last.MeanGap <= 0 {
		t.Errorf("demand stats empty: requests=%d gap=%v", last.Requests, last.MeanGap)
	}
}

// TestMigrationShipsTuningState: a voluntary migration must hand the
// successor the page's whole tuning record — the tuned Δ, the demand
// EWMAs, and the denial-side signals — with lastReq re-based into the
// successor's clock domain, not dropped to zero for it to re-learn.
func TestMigrationShipsTuningState(t *testing.T) {
	n := newTestNet(t, 3, migOptions(nil, 3))
	n.newSeg(2, 0)
	const tuned = 7 * time.Millisecond
	if err := n.engines[0].SetPageDelta(1, 0, tuned); err != nil {
		t.Fatal(err)
	}

	// Drive the 2:1 skew one round at a time and stop at the handoff, so
	// the successor's record is dominated by shipped state, not by
	// post-migration traffic it accumulated itself.
	for i := 0; i < 80 && n.engines[1].Stats().Migrations == 0; i++ {
		driveSkew(n, 1, 1)
	}
	n.settle()
	if got := n.engines[1].Stats().Migrations; got != 1 {
		t.Fatalf("site 1 accepted %d migrations, want 1", got)
	}

	lib := n.engines[1].segs[1].lib
	if lib == nil {
		t.Fatal("successor holds no segment record")
	}
	p := &lib.pages[0]
	if p.delta != tuned {
		t.Errorf("successor Δ = %v, want the tuned %v (segment default is 0)", p.delta, tuned)
	}
	// One driveSkew round generates at most 3 requests, so anything above
	// that proves the demand history crossed the wire.
	if p.requests < 6 {
		t.Errorf("successor requests = %d, want the shipped history (>= 6)", p.requests)
	}
	if p.gapEWMA <= 0 {
		t.Errorf("successor gapEWMA = %v, want carried over", p.gapEWMA)
	}
	if p.denied == 0 || p.denRemEWMA <= 0 {
		t.Errorf("denial signals not shipped: denied=%d remEWMA=%v", p.denied, p.denRemEWMA)
	}
	if p.flipEWMA == 0 || p.lastWriter == mmu.NoWriter {
		t.Errorf("write-sharing state not shipped: flipEWMA=%d lastWriter=%d", p.flipEWMA, p.lastWriter)
	}
	now := n.k.Now().Duration()
	if p.lastReq <= 0 || p.lastReq > now {
		t.Errorf("lastReq = %v not re-based into the successor's clock (now %v)", p.lastReq, now)
	}
	if p.tuned {
		t.Error("controller rate-limit state shipped; the successor must restart its cooldown")
	}
	// The untouched page rides along with the segment default.
	if q := &lib.pages[1]; q.delta != 0 || q.requests != 0 {
		t.Errorf("idle page polluted: Δ=%v requests=%d", q.delta, q.requests)
	}
}

// TestAutoDeltaSurvivesTakeover: the tuned Δ reaches the replicas
// through the ordinary record log, so a takeover election must grant
// with the tuned value — not cold-restart from the segment default.
func TestAutoDeltaSurvivesTakeover(t *testing.T) {
	o := obs.New()
	opt := replOptions(o, 3, 2)
	ad := fastAuto()
	opt.AutoDelta = ad
	n := newTestNet(t, 3, opt)
	const seed = 40 * time.Millisecond
	n.newSeg(1, seed)

	for i := 0; i < 10; i++ {
		n.acquire(2, 1, 0, true)
		n.acquire(1, 1, 0, true)
	}
	n.settle()

	tuned := n.engines[0].LibraryState(1, 0).Delta
	if tuned >= seed {
		t.Fatalf("setup: controller never shrank Δ below the %v seed (got %v)", seed, tuned)
	}

	n.crash(0)
	// Site 2 was invalidated by site 1's last write, so this access
	// faults, gives up on the dead library, and triggers the takeover.
	n.acquire(2, 1, 0, false)
	n.settle()

	succ := n.engines[1]
	if el := succ.Stats().Elections; el != 1 {
		t.Fatalf("successor Elections = %d, want 1", el)
	}
	if got := succ.LibraryState(1, 0).Delta; got != tuned {
		t.Errorf("Δ after takeover = %v, want the tuned %v", got, tuned)
	}
	// The post-takeover grant itself must carry the tuned window: a
	// stale-Δ grant would show up here as the seed.
	if w := n.engines[2].Seg(1).Aux(0).Window; w != tuned {
		t.Errorf("post-takeover grant window = %v, want the tuned %v", w, tuned)
	}
}

// TestFailoverRestoresTunedDeltaFromHoldings: without replication the
// rebuilt record is reconstructed from holder reports, and the holders
// are the only survivors that know their granted windows. The rebuild
// must restore the tuned Δ from them instead of clobbering it with the
// segment default.
func TestFailoverRestoresTunedDeltaFromHoldings(t *testing.T) {
	opt := Options{
		Reliability: &Reliability{
			AckTimeout: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
			MaxAttempts: 5, RequestTimeout: 10 * time.Second,
		},
		Failover: &Failover{Sites: 3, RecoverTimeout: 500 * time.Millisecond},
	}
	n := newTestNet(t, 3, opt)
	n.newSeg(1, 0) // segment default Δ is 0
	const tuned = 25 * time.Millisecond
	if err := n.engines[0].SetPageDelta(1, 0, tuned); err != nil {
		t.Fatal(err)
	}

	n.acquire(1, 1, 0, true) // site 1 holds the page with the tuned window
	n.settle()
	if w := n.engines[1].Seg(1).Aux(0).Window; w != tuned {
		t.Fatalf("setup: holder window = %v, want %v", w, tuned)
	}

	n.crash(0)
	n.acquire(2, 1, 0, false) // give-up → holder rebuild at site 1
	n.settle()

	succ := n.engines[1]
	st := succ.Stats()
	if st.Elections != 0 || st.Recoveries != 1 {
		t.Fatalf("Elections=%d Recoveries=%d, want a legacy rebuild (0/1)", st.Elections, st.Recoveries)
	}
	if got := succ.LibraryState(1, 0).Delta; got != tuned {
		t.Errorf("rebuilt Δ = %v, want %v restored from the holder's window", got, tuned)
	}
	if w := n.engines[2].Seg(1).Aux(0).Window; w != tuned {
		t.Errorf("post-rebuild grant window = %v, want the tuned %v", w, tuned)
	}
}
