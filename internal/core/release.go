package core

import (
	"fmt"

	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/wire"
)

// ReleaseSegment returns this site's page copies to the library when
// the last local process detaches the segment. The site keeps serving
// protocol traffic for pages it still holds until the library confirms
// each release (the release is queued behind any grant cycles already
// targeting this site as a holder); local accesses fault for the
// duration so a racing re-attach refetches coherent copies.
//
// At the library site itself this is a no-op: the library is the
// segment's home.
func (e *Engine) ReleaseSegment(seg int32) {
	sn, ok := e.segs[seg]
	if !ok {
		return
	}
	if sn.curLib == e.site {
		return
	}
	sn.releasing = true
	for p := 0; p < sn.m.Pages(); p++ {
		if !sn.m.Present(p) {
			continue
		}
		sn.releasesPending++
		kind := wire.KReleaseRead
		if sn.m.Prot(p) == mmu.ReadWrite {
			kind = wire.KReleaseWrite
		}
		// Read copies carry data too: if this site turns out to be the
		// last holder, the library reinstalls from it.
		e.send(sn.curLib, &wire.Msg{
			Kind: kind, Seg: seg, Page: int32(p),
			Data: append([]byte(nil), sn.m.Frame(p)...),
		})
		// Trace-wise the copy is surrendered the moment it ships home:
		// the frame stays installed only to serve grant cycles already
		// in flight, and the detached process can never touch it again.
		e.emit(obs.Event{Type: obs.EvPageState, Seg: seg, Page: int32(p)})
	}
	if sn.releasesPending == 0 {
		sn.releasing = false
	}
}

// Releasing reports whether the segment is mid-release at this site.
func (e *Engine) Releasing(seg int32) bool {
	sn, ok := e.segs[seg]
	return ok && sn.releasing
}

// libProcessRelease runs at the library when a queued release reaches
// the head of a page's queue (never while a grant cycle is in flight).
func (e *Engine) libProcessRelease(sn *segNode, page int32, r libReq) {
	p := &sn.lib.pages[page]
	seg := int32(sn.meta.ID)
	mutated := true
	handoffTo := -1
	var handoff *wire.Msg
	switch {
	case r.site == p.writer:
		// The writer hands its (only) copy home: the library becomes
		// writer and clock site again.
		e.libReclaim(sn, page, r.data)
	case p.readers.Has(r.site):
		p.readers = p.readers.Remove(r.site)
		if p.readers.Empty() && p.writer == mmu.NoWriter {
			// Last copy anywhere: reinstall at the library. With no
			// writer outstanding every read copy is current.
			e.libReclaim(sn, page, r.data)
		} else if p.clock == r.site {
			// Hand the clock role to a remaining reader, preferring
			// the library itself.
			nc := e.site
			if !p.readers.Has(e.site) {
				nc = p.readers.Sites()[0]
			}
			p.clock = nc
			handoffTo = nc
			handoff = &wire.Msg{
				Kind: wire.KClockHandoff, Seg: seg, Page: page,
				Readers: p.readers,
			}
		}
	default:
		// Stale: an intervening cycle already removed this holder.
		mutated = false
	}
	done := &wire.Msg{Kind: wire.KReleaseDone, Seg: seg, Page: page}
	confirm := func() {
		if handoff != nil {
			e.send(handoffTo, handoff)
		}
		e.send(r.site, done)
	}
	if mutated && e.replActive(sn) {
		// The released copy is unrecoverable the moment the holder hears
		// KReleaseDone, so the confirmation waits for the record change
		// to be quorum-durable — otherwise an elected successor could
		// grant from a record still naming the departed holder.
		e.replAppend(sn, &replEntry{page: page, post: replRecOf(p)}, func() {
			if cur, ok := e.segs[seg]; !ok || cur != sn || sn.lib == nil {
				return
			}
			confirm()
		})
		return
	}
	confirm()
}

// libReclaim reinstalls a returned page at the library site.
func (e *Engine) libReclaim(sn *segNode, page int32, data []byte) {
	p := &sn.lib.pages[page]
	now := e.env.Now()
	if sn.m.Present(int(page)) {
		sn.m.Invalidate(int(page))
	}
	if data == nil {
		if e.rel == nil {
			panic(fmt.Sprintf("core: site %d: reclaim of page %d with no data", e.site, page))
		}
		// Every recorded copy is gone and nothing came home: the page
		// content is unrecoverable. Zero-fill rather than wedge the page
		// forever, and account for it honestly.
		e.stats.Lost++
		e.obs.Count(e.site, obs.CLost)
		data = make([]byte, sn.meta.PageSize)
	}
	sn.m.Install(int(page), data, mmu.ReadWrite, now)
	a := sn.m.Aux(int(page))
	a.Writer = e.site
	a.Window = 0
	a.ReaderMask = mmu.Copyset{}
	p.writer = e.site
	p.readers = mmu.Copyset{}
	p.clock = e.site
	e.emit(obs.Event{Type: obs.EvPageState, Seg: int32(sn.meta.ID), Page: page, Arg: 2})
	e.replAppendSet(sn, page, replRecOf(p))
}

// handleReleaseDone finalizes one page release at the departing site.
func (e *Engine) handleReleaseDone(sn *segNode, m *wire.Msg) {
	if sn.releasesPending == 0 {
		if e.rel == nil {
			panic(fmt.Sprintf("core: site %d: excess release-done: %v", e.site, m))
		}
		// Confirmation of a record-correction release (handleAlready),
		// not of a segment release. A fresh copy the subsequent request
		// earned may already be installed here (the clock's page send
		// travels a different circuit): leave it alone.
		return
	}
	p := int(m.Page)
	if sn.m.Present(p) {
		// The surrender was already traced when the release shipped
		// (ReleaseSegment); this just frees the frame.
		sn.m.Invalidate(p)
		a := sn.m.Aux(p)
		a.ReaderMask = mmu.Copyset{}
		a.Writer = mmu.NoWriter
	}
	sn.releasesPending--
	if sn.releasesPending == 0 {
		sn.releasing = false
		// A re-attach may have queued faults while releasing.
		for page := range sn.waiters {
			e.wakeWaiters(sn, page)
		}
	}
}
