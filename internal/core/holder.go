package core

import (
	"fmt"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/wire"
)

// pendingInval is clock-site transient state while other readers'
// copies are being collected for a write grant.
type pendingInval struct {
	m         *wire.Msg   // the KInval being honored
	remaining mmu.Copyset // targets whose discard is not yet confirmed
	data      []byte      // page contents captured for the new writer
	// Rollback state for the reliability layer: the reader set as it
	// stood before the cycle, and which targets have discarded so far.
	origMask mmu.Copyset
	acked    mmu.Copyset
	// Tree mode: direct child -> the subtree copyset delegated to it,
	// used to fall back to unicast when a child's circuit gives up.
	sub map[int]mmu.Copyset
}

// invalRelay is interior-site transient state for one delegated
// invalidation subtree: the site discarded its own copy, relayed
// orders onward, and owes its parent one aggregated ack.
type invalRelay struct {
	parent    int
	cycle     uint32
	remaining mmu.Copyset // subtree members not yet confirmed
	acked     mmu.Copyset // confirmed discards (includes this site)
	failed    mmu.Copyset // members given up on (reported via KInvalFail)
	sub       map[int]mmu.Copyset
}

// fanoutInvalOrders sends KInvalOrder to every site in targets. In
// flat mode (InvalFanout < 2) or for small sets each target gets a
// plain unicast order and acks the sender directly. In tree mode the
// sorted target list is partitioned into at most k contiguous slices;
// each slice's first member becomes a relay that receives the whole
// slice as a copyset, discards its own copy, fans out to the rest, and
// returns one aggregated ack. Returns the child->subtree map (nil for
// the unicast path) for give-up fallback bookkeeping.
func (e *Engine) fanoutInvalOrders(m *wire.Msg, targets mmu.Copyset) map[int]mmu.Copyset {
	k := e.opt.InvalFanout
	if k < 2 || targets.Count() <= k {
		targets.ForEach(func(s int) {
			e.send(s, &wire.Msg{Kind: wire.KInvalOrder, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
		})
		return nil
	}
	members := targets.Sites()
	n := len(members)
	sub := make(map[int]mmu.Copyset, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if lo >= hi {
			continue
		}
		slice := mmu.CopysetOf(members[lo:hi]...)
		root := members[lo]
		sub[root] = slice
		e.send(root, &wire.Msg{
			Kind: wire.KInvalOrder, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
			Readers: slice,
		})
	}
	e.obs.Count(e.site, obs.CInvalFanout)
	e.emit(obs.Event{Type: obs.EvInvalFanout, Seg: m.Seg, Page: m.Page,
		Cycle: m.Cycle, Arg: int64(len(sub))})
	return sub
}

// CheckAccess classifies a local access for the ipc layer. Pages of a
// segment being released (detached) always fault so a racing re-attach
// refetches fresh copies through the library.
func (e *Engine) CheckAccess(seg, page int32, write bool) mmu.FaultType {
	sn, ok := e.segs[seg]
	if !ok || sn.releasing {
		if write {
			return mmu.WriteFault
		}
		return mmu.ReadFault
	}
	return sn.m.Check(int(page), write)
}

// Frame exposes the local frame for the data path after a successful
// CheckAccess. It returns nil for absent pages.
func (e *Engine) Frame(seg, page int32) []byte {
	sn, ok := e.segs[seg]
	if !ok {
		return nil
	}
	return sn.m.Frame(int(page))
}

// handleAddReader runs at the clock site for the Readers/Readers row
// of Table 1: no clock check, no invalidation — note the new readers
// and ship them copies directly.
func (e *Engine) handleAddReader(sn *segNode, m *wire.Msg) {
	p := int(m.Page)
	if !sn.m.Present(p) {
		if e.rel == nil {
			panic(fmt.Sprintf("core: site %d: add-reader for absent page: %v", e.site, m))
		}
		// Our copy is gone (dropped by an earlier degraded grant); the
		// library's record is behind. Fail the whole batch back.
		e.markStale()
		m.Readers.ForEach(func(s int) {
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KGrantFail, Mode: wire.Read, Seg: m.Seg, Page: m.Page,
				Req: int32(s), Cycle: m.Cycle,
			})
		})
		return
	}
	a := sn.m.Aux(p)
	a.ReaderMask = a.ReaderMask.Union(m.Readers)
	data := sn.m.Frame(p)
	m.Readers.ForEach(func(s int) {
		e.stats.PagesSent++
		e.send(s, &wire.Msg{
			Kind:  wire.KPageSend,
			Mode:  wire.Read,
			Seg:   m.Seg,
			Page:  m.Page,
			Delta: m.Delta,
			Cycle: m.Cycle,
			Data:  append([]byte(nil), data...),
		})
	})
}

// handleInval runs at the clock site: the Δ check (Table 1), then the
// invalidation cycle of §6.1 — invalidate the local page, invalidate
// any other outstanding readers, and distribute the page to the new
// writer or new readers.
func (e *Engine) handleInval(sn *segNode, m *wire.Msg) {
	e.stats.InvalsReceived++
	p := int(m.Page)
	if !sn.m.Present(p) {
		if e.rel == nil {
			panic(fmt.Sprintf("core: site %d: inval for absent page: %v", e.site, m))
		}
		// Clock copy gone: the cycle cannot be honored here.
		e.markStale()
		e.send(sn.curLib, &wire.Msg{
			Kind: wire.KGrantFail, Mode: wire.Write, Seg: m.Seg, Page: m.Page,
			Req: m.Req, Upgrade: m.Upgrade, Cycle: m.Cycle,
		})
		return
	}
	now := e.env.Now()
	insider := m.Mode == wire.Write && m.Upgrade && e.opt.SkipInsiderUpgradeCheck
	if rem := sn.m.WindowRemaining(p, now); rem > 0 && !insider && !mutateSkipWindowCheck {
		// The window has not expired: §6.1 "the clock site replies
		// immediately with the amount of time the library must wait".
		// However the policy resolves it, this is a Δ denial — the
		// datum behind the Δ-tuning analyses.
		e.obs.Count(e.site, obs.CDeltaDenial)
		e.obs.Observe(obs.HDenialRemaining, int64(rem))
		e.emit(obs.Event{Type: obs.EvDeltaDeny, Seg: m.Seg, Page: m.Page,
			Cycle: m.Cycle, Arg: int64(rem)})
		switch e.opt.Policy {
		case PolicyRetry:
			e.stats.BusyReplies++
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KBusy, Seg: m.Seg, Page: m.Page, Remaining: rem, Cycle: m.Cycle,
			})
			return
		case PolicyHonorClose:
			if rem > e.opt.HonorThreshold {
				e.stats.BusyReplies++
				e.send(sn.curLib, &wire.Msg{
					Kind: wire.KBusy, Seg: m.Seg, Page: m.Page, Remaining: rem, Cycle: m.Cycle,
				})
				return
			}
			fallthrough
		case PolicyQueue:
			e.stats.WindowWait += rem
			e.env.After(rem, func() {
				// Segment may have been destroyed while we waited.
				if cur, ok := e.segs[m.Seg]; ok && cur == sn {
					e.acceptInval(sn, m)
				}
			})
			return
		}
	}
	e.acceptInval(sn, m)
}

// acceptInval performs the clock site's actions once the window allows.
func (e *Engine) acceptInval(sn *segNode, m *wire.Msg) {
	p := int(m.Page)
	now := e.env.Now()
	a := sn.m.Aux(p)

	if m.Mode == wire.Read {
		// Table 1 row Writer/Readers: downgrade the writer to reader
		// (optimization 2: it retains its read copy) and distribute
		// copies to the new readers. The clock site stays here.
		if sn.m.Prot(p) != mmu.ReadWrite {
			if e.rel == nil {
				panic(fmt.Sprintf("core: site %d: downgrade of non-writable page: %v", e.site, m))
			}
			e.markStale()
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KGrantFail, Mode: wire.Write, Seg: m.Seg, Page: m.Page,
				Req: -1, Cycle: m.Cycle,
			})
			return
		}
		sn.m.Downgrade(p, now)
		e.stats.Downgrades++
		e.obs.Count(e.site, obs.CDowngrade)
		if !sn.releasing {
			// Mid-release the surrender was already traced when the copy
			// shipped home; the frame survives only to serve this cycle
			// (local access faults until release-done frees it). Once the
			// library drains the queued release it stops invalidating this
			// site, so tracing a retained read copy here would leave a
			// phantom holder coexisting with later writers.
			e.emit(obs.Event{Type: obs.EvDowngrade, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
			e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Arg: 1})
		}
		a.Writer = mmu.NoWriter
		a.Window = m.Delta
		a.ReaderMask = mmu.CopysetOf(e.site).Union(m.Readers)
		data := sn.m.Frame(p)
		m.Readers.ForEach(func(s int) {
			e.stats.PagesSent++
			e.send(s, &wire.Msg{
				Kind:  wire.KPageSend,
				Mode:  wire.Read,
				Seg:   m.Seg,
				Page:  m.Page,
				Delta: m.Delta,
				Cycle: m.Cycle,
				Data:  append([]byte(nil), data...),
			})
		})
		return
	}

	// Write grant: rows Readers/Writer and Writer/Writer. Collect every
	// readable copy except the new writer's own (upgrade), then grant.
	//
	// Targets are the intersection of the clock's mask with the
	// library's record (m.Readers). The clock's mask goes stale on
	// release — releases flow to the library, which never tells the
	// clock — so it can still name sites that surrendered their copies
	// cycles ago. Ordering those sites is wasted traffic in the happy
	// path, but fatal under an aborted cycle: they ack vacuously, land
	// in the acked set, and the rollback re-ships them copies the
	// library's record no longer tracks.
	origMask := a.ReaderMask
	targets := a.ReaderMask.Intersect(m.Readers).Remove(e.site).Remove(int(m.Req))
	var data []byte
	if int(m.Req) == e.site && m.Upgrade {
		// We are both clock site and upgrading requester: keep our copy.
	} else {
		// The frame is captured even for upgrades (which don't ship it):
		// it is the rollback/rehome copy should the grant fail.
		data = sn.m.Invalidate(p)
		e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
	}
	a.ReaderMask = mmu.Copyset{}
	a.Writer = mmu.NoWriter

	if targets.Empty() {
		e.finishWriteGrant(sn, m, data)
		return
	}
	pi := &pendingInval{m: m, remaining: targets, data: data, origMask: origMask}
	k := pageKey{m.Seg, m.Page}
	e.pend[k] = pi
	pi.sub = e.fanoutInvalOrders(m, targets)
	if e.rel != nil && len(pi.sub) > 0 {
		e.env.After(e.delegationTimeout(), func() {
			if cur, ok := e.pend[k]; ok && cur == pi {
				e.reissueDelegations(k, pi.m.Cycle, pi.sub, pi.remaining)
			}
		})
	}
}

// delegationTimeout is how long a delegating site waits for a
// subtree's aggregated answer before falling back to direct orders:
// twice the reliable channel's give-up horizon, so a child relay that
// legitimately spends the whole horizon giving up on a dead leaf (and
// then reports) still beats the deadline.
func (e *Engine) delegationTimeout() time.Duration {
	var h time.Duration
	for i := 1; i <= e.rel.opt.MaxAttempts; i++ {
		h += e.rel.timeout(i)
	}
	return 2 * h
}

// reissueDelegations converts every still-unanswered subtree to direct
// unicast orders from this site. Flat orders need no watchdog —
// processing an order and acking it are the same instant, so the
// sender's ARQ on the order covers the whole exchange — but a
// delegated order opens a window between the transport ack (order
// delivered to the relay) and the protocol ack (the relay's
// aggregated KInvalAck). A relay that fail-stops inside that window
// has already satisfied the sender's ARQ, so nothing retransmits and
// the cycle would wedge forever. Reissuing as unicast is always safe:
// a member that already discarded holds no copy and acks vacuously, a
// live-but-slow relay's late aggregate merges idempotently, and a
// truly dead member now fails through the normal order give-up path
// (abort at the clock, KInvalFail at a relay) instead of hanging.
func (e *Engine) reissueDelegations(k pageKey, cycle uint32, sub map[int]mmu.Copyset, remaining mmu.Copyset) {
	for root, subtree := range sub {
		delete(sub, root)
		subtree.ForEach(func(s int) {
			if remaining.Has(s) {
				e.stats.Reissued++
				e.send(s, &wire.Msg{Kind: wire.KInvalOrder, Seg: k.seg, Page: k.page, Cycle: cycle})
			}
		})
	}
}

// finishWriteGrant runs at the clock site once no readable copy
// remains anywhere except (for an upgrade) the new writer's.
func (e *Engine) finishWriteGrant(sn *segNode, m *wire.Msg, data []byte) {
	req := int(m.Req)
	if m.Upgrade {
		if req == e.site {
			// Clock site upgrading itself: flip the protection in place
			// and notify the library directly.
			now := e.env.Now()
			sn.m.Upgrade(int(m.Page), now)
			a := sn.m.Aux(int(m.Page))
			a.Writer = e.site
			a.Window = m.Delta
			e.stats.Upgrades++
			e.obs.Count(e.site, obs.CUpgrade)
			e.emit(obs.Event{Type: obs.EvUpgrade, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
			e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Arg: 2})
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KInstalled, Mode: wire.Write, Seg: m.Seg, Page: m.Page,
				Cycle: m.Cycle,
			})
			delete(sn.pageErr, m.Page) // in-place grant supersedes old verdicts
			e.wakeWaiters(sn, m.Page)
			sn.outW[m.Page] = false
			sn.outR[m.Page] = false
			e.reqProgress(sn, m.Page)
			return
		}
		// Optimization 1: no page copy; a notification acknowledges the
		// write request. The captured frame is stashed so a failed
		// delivery (or an upgrade landing on an invalid copy) can still
		// rehome the page at the library.
		if e.rel != nil && data != nil {
			e.stash[pageKey{m.Seg, m.Page}] = data
		}
		e.send(req, &wire.Msg{
			Kind: wire.KUpgradeGrant, Seg: m.Seg, Page: m.Page, Delta: m.Delta,
			Cycle: m.Cycle,
		})
		return
	}
	if data == nil {
		panic(fmt.Sprintf("core: site %d: write grant with no page data: %v", e.site, m))
	}
	e.stats.PagesSent++
	e.send(req, &wire.Msg{
		Kind:  wire.KPageSend,
		Mode:  wire.Write,
		Seg:   m.Seg,
		Page:  m.Page,
		Delta: m.Delta,
		Cycle: m.Cycle,
		Data:  data,
	})
}

// handleInvalOrder runs at a reader told to discard its copy. With a
// non-empty Readers copyset the order also delegates a subtree: after
// discarding its own copy the site relays orders to the remaining
// members and answers its parent with one aggregated ack.
func (e *Engine) handleInvalOrder(sn *segNode, m *wire.Msg) {
	e.stats.InvalOrders++
	p := int(m.Page)
	if sn.m.Present(p) {
		sn.m.Invalidate(p)
		a := sn.m.Aux(p)
		a.ReaderMask = mmu.Copyset{}
		a.Writer = mmu.NoWriter
		e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
	}
	rest := m.Readers.Remove(e.site)
	if rest.Empty() {
		// Leaf (or flat unicast): a single-site ack.
		e.send(int(m.From), &wire.Msg{
			Kind: wire.KInvalAck, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
			Readers: mmu.CopysetOf(e.site),
		})
		return
	}
	// Interior relay: fan out to the delegated subtree and hold the ack
	// until every member is resolved. A newer order for the same page
	// supersedes any stale relay state (its parent has already given up
	// or aborted; late acks to it resolve as stale).
	e.obs.Count(e.site, obs.CRelay)
	e.emit(obs.Event{Type: obs.EvRelay, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
		From: m.From, Arg: int64(rest.Count())})
	rl := &invalRelay{
		parent:    int(m.From),
		cycle:     m.Cycle,
		remaining: rest,
		acked:     mmu.CopysetOf(e.site),
	}
	rl.sub = e.fanoutInvalOrders(m, rest)
	k := pageKey{m.Seg, m.Page}
	e.relay[k] = rl
	if e.rel != nil && len(rl.sub) > 0 {
		e.env.After(e.delegationTimeout(), func() {
			if cur, ok := e.relay[k]; ok && cur == rl {
				e.reissueDelegations(k, rl.cycle, rl.sub, rl.remaining)
			}
		})
	}
}

// ackCovered returns the set of sites an inval-ack confirms: the
// carried copyset on the tree path, the sender alone otherwise.
func ackCovered(m *wire.Msg) mmu.Copyset {
	if m.Readers.Empty() {
		return mmu.CopysetOf(int(m.From))
	}
	return m.Readers
}

// handleInvalAck collects discard confirmations — at the clock site
// for the cycle in flight, or at an interior relay for its delegated
// subtree.
func (e *Engine) handleInvalAck(sn *segNode, m *wire.Msg) {
	e.obs.Count(e.site, obs.CInvalAcked)
	k := pageKey{m.Seg, m.Page}
	if rl, ok := e.relay[k]; ok && rl.cycle == m.Cycle {
		covered := ackCovered(m)
		rl.acked = rl.acked.Union(covered)
		rl.remaining = rl.remaining.Subtract(covered)
		delete(rl.sub, int(m.From))
		e.relayMaybeFinish(k, rl)
		return
	}
	pi, ok := e.pend[k]
	if !ok || (e.rel != nil && m.Cycle != pi.m.Cycle) {
		if e.rel != nil {
			e.markStale()
			return
		}
		panic(fmt.Sprintf("core: site %d: unexpected inval-ack: %v", e.site, m))
	}
	covered := ackCovered(m)
	pi.acked = pi.acked.Union(covered)
	pi.remaining = pi.remaining.Subtract(covered)
	if pi.sub != nil {
		delete(pi.sub, int(m.From))
	}
	if !pi.remaining.Empty() {
		return
	}
	delete(e.pend, k)
	e.finishWriteGrant(sn, pi.m, pi.data)
}

// relayMaybeFinish sends the aggregated answer to the relay's parent
// once every subtree member is resolved. The ack travels first so the
// parent merges this relay's confirmed set before any failure report
// triggers rollback — both messages ride the same FIFO circuit.
func (e *Engine) relayMaybeFinish(k pageKey, rl *invalRelay) {
	if !rl.remaining.Empty() {
		return
	}
	delete(e.relay, k)
	e.send(rl.parent, &wire.Msg{
		Kind: wire.KInvalAck, Seg: k.seg, Page: k.page, Cycle: rl.cycle,
		Readers: rl.acked,
	})
	if !rl.failed.Empty() {
		e.send(rl.parent, &wire.Msg{
			Kind: wire.KInvalFail, Seg: k.seg, Page: k.page, Cycle: rl.cycle,
			Readers: rl.failed,
		})
	}
}

// relayOrderFailed runs at a relay whose circuit to a child gave up:
// the child is recorded as failed, and the rest of the subtree it was
// delegated falls back to direct unicast orders from this relay, so a
// crashed interior site degrades the tree to the flat path instead of
// stranding its descendants.
func (e *Engine) relayOrderFailed(k pageKey, rl *invalRelay, to int) {
	subtree, ok := rl.sub[to]
	delete(rl.sub, to)
	if !ok {
		subtree = mmu.CopysetOf(to)
	}
	if rl.remaining.Has(to) {
		rl.failed = rl.failed.Add(to)
		rl.remaining = rl.remaining.Remove(to)
	}
	subtree.Remove(to).ForEach(func(s int) {
		if rl.remaining.Has(s) {
			e.send(s, &wire.Msg{Kind: wire.KInvalOrder, Seg: k.seg, Page: k.page, Cycle: rl.cycle})
		}
	})
	e.relayMaybeFinish(k, rl)
}

// handleInvalFail receives a relay's unreachable-subtree report. At
// the clock site it aborts the cycle exactly like a direct reader
// circuit giving up; at an intermediate relay it folds the failure
// into the aggregated answer for its own parent.
func (e *Engine) handleInvalFail(sn *segNode, m *wire.Msg) {
	k := pageKey{m.Seg, m.Page}
	if rl, ok := e.relay[k]; ok && rl.cycle == m.Cycle {
		rl.failed = rl.failed.Union(m.Readers)
		rl.remaining = rl.remaining.Subtract(m.Readers)
		e.relayMaybeFinish(k, rl)
		return
	}
	pi, ok := e.pend[k]
	if !ok || m.Cycle != pi.m.Cycle {
		e.markStale()
		return
	}
	e.invalOrderFailed(sn, pi.m, int(m.From))
}

// handlePageSend installs a received page at the requester and
// completes its share of the grant cycle.
func (e *Engine) handlePageSend(sn *segNode, m *wire.Msg) {
	if sn.releasing && !sn.outR[m.Page] && !sn.outW[m.Page] {
		// An unsolicited copy — a clock rollback re-shipping to a
		// reader whose release is still queued at the busy library.
		// The copy was surrendered the moment it shipped home;
		// re-installing would leave a frame the library's record no
		// longer tracks (and, once the record drains, coexist with a
		// reclaimed writable copy at the library).
		e.stats.Dropped++
		return
	}
	e.stats.PagesReceived++
	e.obs.Count(e.site, obs.CPageRecv)
	p := int(m.Page)
	now := e.env.Now()
	prot := mmu.ReadOnly
	state := int64(1)
	if m.Mode == wire.Write {
		prot = mmu.ReadWrite
		state = 2
	}
	e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle, Arg: state})
	if sn.m.Present(p) {
		// A stale copy can exist if a read grant raced a later write
		// request from this site; the incoming page is authoritative.
		sn.m.Invalidate(p)
	}
	sn.m.Install(p, m.Data, prot, now)
	a := sn.m.Aux(p)
	a.Window = m.Delta
	if m.Mode == wire.Write {
		a.Writer = e.site
		a.ReaderMask = mmu.Copyset{}
	} else {
		a.Writer = mmu.NoWriter
	}
	e.send(sn.curLib, &wire.Msg{
		Kind: wire.KInstalled, Mode: m.Mode, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
	})
	if m.Mode == wire.Write {
		sn.outW[m.Page] = false
		sn.outR[m.Page] = false
	} else {
		sn.outR[m.Page] = false
	}
	// A fresh copy supersedes any degraded-grant verdict still cached
	// for the page: without this, an access after the peer heals would
	// fail with the stale error instead of using the installed copy.
	delete(sn.pageErr, m.Page)
	e.reqProgress(sn, m.Page)
	e.wakeWaiters(sn, m.Page)
}

// handleUpgradeGrant flips a read copy to writable in place
// (optimization 1) at the requester.
func (e *Engine) handleUpgradeGrant(sn *segNode, m *wire.Msg) {
	p := int(m.Page)
	if sn.m.Prot(p) != mmu.ReadOnly {
		if e.rel == nil {
			panic(fmt.Sprintf("core: site %d: upgrade grant for %v page: %v", e.site, sn.m.Prot(p), m))
		}
		if sn.m.Prot(p) == mmu.ReadWrite {
			// Raced duplicate: we are already the writer; complete the
			// cycle anyway.
			e.markStale()
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KInstalled, Mode: wire.Write, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
			})
			return
		}
		// Our read copy is gone (dropped by an earlier degraded grant):
		// the in-place upgrade cannot apply. The clock (the sender)
		// holds the frame it captured for this cycle; ask it to rehome
		// the page through the library.
		e.markStale()
		e.send(int(m.From), &wire.Msg{
			Kind: wire.KGrantFail, Mode: wire.Write, Upgrade: true,
			Seg: m.Seg, Page: m.Page, Req: int32(e.site), Cycle: m.Cycle,
		})
		return
	}
	now := e.env.Now()
	sn.m.Upgrade(p, now)
	a := sn.m.Aux(p)
	a.Writer = e.site
	a.Window = m.Delta
	a.ReaderMask = mmu.Copyset{}
	e.stats.Upgrades++
	e.obs.Count(e.site, obs.CUpgrade)
	e.emit(obs.Event{Type: obs.EvUpgrade, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
	e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Arg: 2})
	e.send(sn.curLib, &wire.Msg{
		Kind: wire.KInstalled, Mode: wire.Write, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
	})
	sn.outW[m.Page] = false
	sn.outR[m.Page] = false
	delete(sn.pageErr, m.Page) // the upgraded copy supersedes old verdicts
	e.reqProgress(sn, m.Page)
	e.wakeWaiters(sn, m.Page)
}

// handleAlready clears the satisfied request and lets waiters recheck.
func (e *Engine) handleAlready(sn *segNode, m *wire.Msg) {
	e.stats.Already++
	e.obs.Count(e.site, obs.CAlready)
	if m.Mode == wire.Write {
		sn.outW[m.Page] = false
	} else {
		sn.outR[m.Page] = false
	}
	if sn.m.Present(int(m.Page)) {
		// The record says we hold the page and we do: any cached
		// degraded verdict is from an older failure and must not poison
		// the access that triggered this round trip.
		delete(sn.pageErr, m.Page)
	}
	e.reqProgress(sn, m.Page)
	if e.rel != nil && m.Mode == wire.Read && !sn.m.Present(int(m.Page)) &&
		len(sn.waiters[m.Page]) > 0 && !sn.releasing {
		// The record lists us as a reader but the copy is gone (dropped
		// by an earlier degraded grant). Shed the stale record entry;
		// the refault's fresh request, queued behind this correction on
		// the same circuit, then earns a real grant.
		e.markStale()
		e.send(sn.curLib, &wire.Msg{Kind: wire.KReleaseRead, Seg: m.Seg, Page: m.Page})
	}
	e.wakeWaiters(sn, m.Page)
}

// windowRemainingForTest exposes Δ accounting to package tests.
func (e *Engine) windowRemainingForTest(seg, page int32) time.Duration {
	sn := e.segs[seg]
	return sn.m.WindowRemaining(int(page), e.env.Now())
}
