package core

import (
	"fmt"
	"time"

	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/wire"
)

// pendingInval is clock-site transient state while other readers'
// copies are being collected for a write grant.
type pendingInval struct {
	m        *wire.Msg // the KInval being honored
	needAcks int
	data     []byte // page contents captured for the new writer
	// Rollback state for the reliability layer: the reader mask as it
	// stood before the cycle, and which targets have discarded so far.
	origMask mmu.SiteMask
	acked    mmu.SiteMask
}

// CheckAccess classifies a local access for the ipc layer. Pages of a
// segment being released (detached) always fault so a racing re-attach
// refetches fresh copies through the library.
func (e *Engine) CheckAccess(seg, page int32, write bool) mmu.FaultType {
	sn, ok := e.segs[seg]
	if !ok || sn.releasing {
		if write {
			return mmu.WriteFault
		}
		return mmu.ReadFault
	}
	return sn.m.Check(int(page), write)
}

// Frame exposes the local frame for the data path after a successful
// CheckAccess. It returns nil for absent pages.
func (e *Engine) Frame(seg, page int32) []byte {
	sn, ok := e.segs[seg]
	if !ok {
		return nil
	}
	return sn.m.Frame(int(page))
}

// handleAddReader runs at the clock site for the Readers/Readers row
// of Table 1: no clock check, no invalidation — note the new readers
// and ship them copies directly.
func (e *Engine) handleAddReader(sn *segNode, m *wire.Msg) {
	p := int(m.Page)
	if !sn.m.Present(p) {
		if e.rel == nil {
			panic(fmt.Sprintf("core: site %d: add-reader for absent page: %v", e.site, m))
		}
		// Our copy is gone (dropped by an earlier degraded grant); the
		// library's record is behind. Fail the whole batch back.
		e.markStale()
		mmu.SiteMask(m.Readers).ForEach(func(s int) {
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KGrantFail, Mode: wire.Read, Seg: m.Seg, Page: m.Page,
				Req: int32(s), Cycle: m.Cycle,
			})
		})
		return
	}
	a := sn.m.Aux(p)
	a.ReaderMask |= mmu.SiteMask(m.Readers)
	data := sn.m.Frame(p)
	mmu.SiteMask(m.Readers).ForEach(func(s int) {
		e.stats.PagesSent++
		e.send(s, &wire.Msg{
			Kind:  wire.KPageSend,
			Mode:  wire.Read,
			Seg:   m.Seg,
			Page:  m.Page,
			Delta: m.Delta,
			Cycle: m.Cycle,
			Data:  append([]byte(nil), data...),
		})
	})
}

// handleInval runs at the clock site: the Δ check (Table 1), then the
// invalidation cycle of §6.1 — invalidate the local page, invalidate
// any other outstanding readers, and distribute the page to the new
// writer or new readers.
func (e *Engine) handleInval(sn *segNode, m *wire.Msg) {
	e.stats.InvalsReceived++
	p := int(m.Page)
	if !sn.m.Present(p) {
		if e.rel == nil {
			panic(fmt.Sprintf("core: site %d: inval for absent page: %v", e.site, m))
		}
		// Clock copy gone: the cycle cannot be honored here.
		e.markStale()
		e.send(sn.curLib, &wire.Msg{
			Kind: wire.KGrantFail, Mode: wire.Write, Seg: m.Seg, Page: m.Page,
			Req: m.Req, Upgrade: m.Upgrade, Cycle: m.Cycle,
		})
		return
	}
	now := e.env.Now()
	insider := m.Mode == wire.Write && m.Upgrade && e.opt.SkipInsiderUpgradeCheck
	if rem := sn.m.WindowRemaining(p, now); rem > 0 && !insider && !mutateSkipWindowCheck {
		// The window has not expired: §6.1 "the clock site replies
		// immediately with the amount of time the library must wait".
		// However the policy resolves it, this is a Δ denial — the
		// datum behind the Δ-tuning analyses.
		e.obs.Count(e.site, obs.CDeltaDenial)
		e.obs.Observe(obs.HDenialRemaining, int64(rem))
		e.emit(obs.Event{Type: obs.EvDeltaDeny, Seg: m.Seg, Page: m.Page,
			Cycle: m.Cycle, Arg: int64(rem)})
		switch e.opt.Policy {
		case PolicyRetry:
			e.stats.BusyReplies++
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KBusy, Seg: m.Seg, Page: m.Page, Remaining: rem, Cycle: m.Cycle,
			})
			return
		case PolicyHonorClose:
			if rem > e.opt.HonorThreshold {
				e.stats.BusyReplies++
				e.send(sn.curLib, &wire.Msg{
					Kind: wire.KBusy, Seg: m.Seg, Page: m.Page, Remaining: rem, Cycle: m.Cycle,
				})
				return
			}
			fallthrough
		case PolicyQueue:
			e.stats.WindowWait += rem
			e.env.After(rem, func() {
				// Segment may have been destroyed while we waited.
				if cur, ok := e.segs[m.Seg]; ok && cur == sn {
					e.acceptInval(sn, m)
				}
			})
			return
		}
	}
	e.acceptInval(sn, m)
}

// acceptInval performs the clock site's actions once the window allows.
func (e *Engine) acceptInval(sn *segNode, m *wire.Msg) {
	p := int(m.Page)
	now := e.env.Now()
	a := sn.m.Aux(p)

	if m.Mode == wire.Read {
		// Table 1 row Writer/Readers: downgrade the writer to reader
		// (optimization 2: it retains its read copy) and distribute
		// copies to the new readers. The clock site stays here.
		if sn.m.Prot(p) != mmu.ReadWrite {
			if e.rel == nil {
				panic(fmt.Sprintf("core: site %d: downgrade of non-writable page: %v", e.site, m))
			}
			e.markStale()
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KGrantFail, Mode: wire.Write, Seg: m.Seg, Page: m.Page,
				Req: -1, Cycle: m.Cycle,
			})
			return
		}
		sn.m.Downgrade(p, now)
		e.stats.Downgrades++
		e.obs.Count(e.site, obs.CDowngrade)
		e.emit(obs.Event{Type: obs.EvDowngrade, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
		e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Arg: 1})
		a.Writer = mmu.NoWriter
		a.Window = m.Delta
		a.ReaderMask = mmu.MaskOf(e.site) | mmu.SiteMask(m.Readers)
		data := sn.m.Frame(p)
		mmu.SiteMask(m.Readers).ForEach(func(s int) {
			e.stats.PagesSent++
			e.send(s, &wire.Msg{
				Kind:  wire.KPageSend,
				Mode:  wire.Read,
				Seg:   m.Seg,
				Page:  m.Page,
				Delta: m.Delta,
				Cycle: m.Cycle,
				Data:  append([]byte(nil), data...),
			})
		})
		return
	}

	// Write grant: rows Readers/Writer and Writer/Writer. Collect every
	// readable copy except the new writer's own (upgrade), then grant.
	origMask := a.ReaderMask
	targets := a.ReaderMask.Remove(e.site).Remove(int(m.Req))
	var data []byte
	if int(m.Req) == e.site && m.Upgrade {
		// We are both clock site and upgrading requester: keep our copy.
	} else {
		// The frame is captured even for upgrades (which don't ship it):
		// it is the rollback/rehome copy should the grant fail.
		data = sn.m.Invalidate(p)
		e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
	}
	a.ReaderMask = 0
	a.Writer = mmu.NoWriter

	if targets.Empty() {
		e.finishWriteGrant(sn, m, data)
		return
	}
	e.pend[pageKey{m.Seg, m.Page}] = &pendingInval{
		m: m, needAcks: targets.Count(), data: data, origMask: origMask,
	}
	targets.ForEach(func(s int) {
		e.send(s, &wire.Msg{Kind: wire.KInvalOrder, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
	})
}

// finishWriteGrant runs at the clock site once no readable copy
// remains anywhere except (for an upgrade) the new writer's.
func (e *Engine) finishWriteGrant(sn *segNode, m *wire.Msg, data []byte) {
	req := int(m.Req)
	if m.Upgrade {
		if req == e.site {
			// Clock site upgrading itself: flip the protection in place
			// and notify the library directly.
			now := e.env.Now()
			sn.m.Upgrade(int(m.Page), now)
			a := sn.m.Aux(int(m.Page))
			a.Writer = e.site
			a.Window = m.Delta
			e.stats.Upgrades++
			e.obs.Count(e.site, obs.CUpgrade)
			e.emit(obs.Event{Type: obs.EvUpgrade, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
			e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Arg: 2})
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KInstalled, Mode: wire.Write, Seg: m.Seg, Page: m.Page,
				Cycle: m.Cycle,
			})
			delete(sn.pageErr, m.Page) // in-place grant supersedes old verdicts
			e.wakeWaiters(sn, m.Page)
			sn.outW[m.Page] = false
			sn.outR[m.Page] = false
			e.reqProgress(sn, m.Page)
			return
		}
		// Optimization 1: no page copy; a notification acknowledges the
		// write request. The captured frame is stashed so a failed
		// delivery (or an upgrade landing on an invalid copy) can still
		// rehome the page at the library.
		if e.rel != nil && data != nil {
			e.stash[pageKey{m.Seg, m.Page}] = data
		}
		e.send(req, &wire.Msg{
			Kind: wire.KUpgradeGrant, Seg: m.Seg, Page: m.Page, Delta: m.Delta,
			Cycle: m.Cycle,
		})
		return
	}
	if data == nil {
		panic(fmt.Sprintf("core: site %d: write grant with no page data: %v", e.site, m))
	}
	e.stats.PagesSent++
	e.send(req, &wire.Msg{
		Kind:  wire.KPageSend,
		Mode:  wire.Write,
		Seg:   m.Seg,
		Page:  m.Page,
		Delta: m.Delta,
		Cycle: m.Cycle,
		Data:  data,
	})
}

// handleInvalOrder runs at a reader told to discard its copy.
func (e *Engine) handleInvalOrder(sn *segNode, m *wire.Msg) {
	e.stats.InvalOrders++
	p := int(m.Page)
	if sn.m.Present(p) {
		sn.m.Invalidate(p)
		a := sn.m.Aux(p)
		a.ReaderMask = 0
		a.Writer = mmu.NoWriter
		e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
	}
	e.send(int(m.From), &wire.Msg{Kind: wire.KInvalAck, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
}

// handleInvalAck collects discard confirmations at the clock site.
func (e *Engine) handleInvalAck(sn *segNode, m *wire.Msg) {
	e.obs.Count(e.site, obs.CInvalAcked)
	k := pageKey{m.Seg, m.Page}
	pi, ok := e.pend[k]
	if !ok || (e.rel != nil && m.Cycle != pi.m.Cycle) {
		if e.rel != nil {
			e.markStale()
			return
		}
		panic(fmt.Sprintf("core: site %d: unexpected inval-ack: %v", e.site, m))
	}
	pi.acked = pi.acked.Add(int(m.From))
	pi.needAcks--
	if pi.needAcks > 0 {
		return
	}
	delete(e.pend, k)
	e.finishWriteGrant(sn, pi.m, pi.data)
}

// handlePageSend installs a received page at the requester and
// completes its share of the grant cycle.
func (e *Engine) handlePageSend(sn *segNode, m *wire.Msg) {
	e.stats.PagesReceived++
	e.obs.Count(e.site, obs.CPageRecv)
	p := int(m.Page)
	now := e.env.Now()
	prot := mmu.ReadOnly
	state := int64(1)
	if m.Mode == wire.Write {
		prot = mmu.ReadWrite
		state = 2
	}
	e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle, Arg: state})
	if sn.m.Present(p) {
		// A stale copy can exist if a read grant raced a later write
		// request from this site; the incoming page is authoritative.
		sn.m.Invalidate(p)
	}
	sn.m.Install(p, m.Data, prot, now)
	a := sn.m.Aux(p)
	a.Window = m.Delta
	if m.Mode == wire.Write {
		a.Writer = e.site
		a.ReaderMask = 0
	} else {
		a.Writer = mmu.NoWriter
	}
	e.send(sn.curLib, &wire.Msg{
		Kind: wire.KInstalled, Mode: m.Mode, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
	})
	if m.Mode == wire.Write {
		sn.outW[m.Page] = false
		sn.outR[m.Page] = false
	} else {
		sn.outR[m.Page] = false
	}
	// A fresh copy supersedes any degraded-grant verdict still cached
	// for the page: without this, an access after the peer heals would
	// fail with the stale error instead of using the installed copy.
	delete(sn.pageErr, m.Page)
	e.reqProgress(sn, m.Page)
	e.wakeWaiters(sn, m.Page)
}

// handleUpgradeGrant flips a read copy to writable in place
// (optimization 1) at the requester.
func (e *Engine) handleUpgradeGrant(sn *segNode, m *wire.Msg) {
	p := int(m.Page)
	if sn.m.Prot(p) != mmu.ReadOnly {
		if e.rel == nil {
			panic(fmt.Sprintf("core: site %d: upgrade grant for %v page: %v", e.site, sn.m.Prot(p), m))
		}
		if sn.m.Prot(p) == mmu.ReadWrite {
			// Raced duplicate: we are already the writer; complete the
			// cycle anyway.
			e.markStale()
			e.send(sn.curLib, &wire.Msg{
				Kind: wire.KInstalled, Mode: wire.Write, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
			})
			return
		}
		// Our read copy is gone (dropped by an earlier degraded grant):
		// the in-place upgrade cannot apply. The clock (the sender)
		// holds the frame it captured for this cycle; ask it to rehome
		// the page through the library.
		e.markStale()
		e.send(int(m.From), &wire.Msg{
			Kind: wire.KGrantFail, Mode: wire.Write, Upgrade: true,
			Seg: m.Seg, Page: m.Page, Req: int32(e.site), Cycle: m.Cycle,
		})
		return
	}
	now := e.env.Now()
	sn.m.Upgrade(p, now)
	a := sn.m.Aux(p)
	a.Writer = e.site
	a.Window = m.Delta
	a.ReaderMask = 0
	e.stats.Upgrades++
	e.obs.Count(e.site, obs.CUpgrade)
	e.emit(obs.Event{Type: obs.EvUpgrade, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle})
	e.emit(obs.Event{Type: obs.EvPageState, Seg: m.Seg, Page: m.Page, Arg: 2})
	e.send(sn.curLib, &wire.Msg{
		Kind: wire.KInstalled, Mode: wire.Write, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
	})
	sn.outW[m.Page] = false
	sn.outR[m.Page] = false
	delete(sn.pageErr, m.Page) // the upgraded copy supersedes old verdicts
	e.reqProgress(sn, m.Page)
	e.wakeWaiters(sn, m.Page)
}

// handleAlready clears the satisfied request and lets waiters recheck.
func (e *Engine) handleAlready(sn *segNode, m *wire.Msg) {
	e.stats.Already++
	e.obs.Count(e.site, obs.CAlready)
	if m.Mode == wire.Write {
		sn.outW[m.Page] = false
	} else {
		sn.outR[m.Page] = false
	}
	if sn.m.Present(int(m.Page)) {
		// The record says we hold the page and we do: any cached
		// degraded verdict is from an older failure and must not poison
		// the access that triggered this round trip.
		delete(sn.pageErr, m.Page)
	}
	e.reqProgress(sn, m.Page)
	if e.rel != nil && m.Mode == wire.Read && !sn.m.Present(int(m.Page)) &&
		len(sn.waiters[m.Page]) > 0 && !sn.releasing {
		// The record lists us as a reader but the copy is gone (dropped
		// by an earlier degraded grant). Shed the stale record entry;
		// the refault's fresh request, queued behind this correction on
		// the same circuit, then earns a real grant.
		e.markStale()
		e.send(sn.curLib, &wire.Msg{Kind: wire.KReleaseRead, Seg: m.Seg, Page: m.Page})
	}
	e.wakeWaiters(sn, m.Page)
}

// windowRemainingForTest exposes Δ accounting to package tests.
func (e *Engine) windowRemainingForTest(seg, page int32) time.Duration {
	sn := e.segs[seg]
	return sn.m.WindowRemaining(int(page), e.env.Now())
}
