//go:build !mirage_mutation

package core

// mutateSkipWindowCheck is the production value of the coherence
// mutation switch: the clock site enforces the Δ window on every
// invalidation (Table 1). Building with -tags mirage_mutation flips it,
// deliberately breaking the window guarantee so the schedule explorer's
// mutation test (internal/check) can prove it detects the violation.
const mutateSkipWindowCheck = false

// mutateReplAckWithoutApply is the production value of the replication
// mutation switch: a follower acknowledges only what it durably applied.
// Building with -tags mirage_mutation flips it so the mutation test can
// prove the acked-append-lost invariant catches the resulting lost
// update across a takeover.
const mutateReplAckWithoutApply = false
