//go:build mirage_mutation

package core

// mutateSkipWindowCheck: MUTATION BUILD. The clock site ignores
// unexpired Δ windows and honors every invalidation immediately —
// revoking possession the protocol promised (§6.1). Only the mutation
// test builds with this tag; it asserts the schedule explorer catches
// the violation with a replayable counterexample.
const mutateSkipWindowCheck = true

// mutateReplAckWithoutApply: MUTATION BUILD. A replication follower
// acknowledges appends it never applies — the durability lie the
// acked-append-lost invariant (internal/check) exists to catch: an
// election can then install a log missing mutations the leader already
// acknowledged at quorum.
const mutateReplAckWithoutApply = true
