package core

import (
	"fmt"
	"time"

	"mirage/internal/mem"
	"mirage/internal/mmu"
	"mirage/internal/obs"
	"mirage/internal/trace"
	"mirage/internal/wire"
)

// reqKind discriminates entries in a library page queue.
type reqKind int

const (
	reqRead reqKind = iota
	reqWrite
	reqReleaseRead
	reqReleaseWrite
)

// libReq is one queued request at the library.
type libReq struct {
	kind reqKind
	site int
	pid  int32
	data []byte // release payload
	at   time.Duration
}

// grantCycle describes the in-flight grant for a page.
type grantCycle struct {
	active   bool
	write    bool
	to       int         // new writer (write grants)
	batch    mmu.Copyset // new readers (read grants)
	oldWrite bool        // a writer was downgraded by this read grant
	oldClock int
	inval    *wire.Msg // retained for Δ retries
	attempts int
}

// libPage is the library's authoritative record for one page (§6.0:
// "record which sites are storing a given page", distinguishing
// writers from readers).
type libPage struct {
	readers mmu.Copyset
	writer  int // mmu.NoWriter if none
	clock   int
	delta   time.Duration

	queue           []libReq
	busy            bool
	pendingInstalls int
	grant           grantCycle
	cancelRetry     func()
	// cycle numbers grant cycles; grants carry it and completions echo
	// it back, so the reliability layer can discard stragglers from
	// cycles that were since aborted.
	cycle uint32

	// Demand statistics feeding the dynamic Δ tuner and the trace
	// analyses.
	requests int
	lastReq  time.Duration
	gapEWMA  time.Duration

	// Denial-side tuning signals (DESIGN.md §16). denied counts KBusy
	// replies for this page; denRemEWMA smooths the remaining window
	// time those denials reported. flipEWMA tracks write-sharing in
	// fixed point (flipScale per alternation; see libFinishCycle) and
	// lastWriter is the previous write grantee it compares against.
	// All of it ships in the migration record and, via the demand
	// stats above, survives rehoming.
	denied     int
	denRemEWMA time.Duration
	flipEWMA   int
	lastWriter int

	// AutoDelta controller state: tuned marks the first-grant clamp
	// done; tuneAt/tuneCycle/tuneDenied snapshot the last adjustment
	// for rate limiting (see autoTuneDelta). Deliberately not shipped
	// on migration — the successor restarts its cooldown fresh.
	tuned      bool
	tuneAt     time.Duration
	tuneCycle  uint32
	tuneDenied int
}

// libSeg is the library-site state for one segment.
type libSeg struct {
	meta  *mem.Segment
	pages []libPage
}

func newLibSeg(meta *mem.Segment) *libSeg {
	l := &libSeg{meta: meta, pages: make([]libPage, meta.Pages)}
	for i := range l.pages {
		l.pages[i].writer = mmu.NoWriter
		l.pages[i].clock = meta.Library
		// meta.Delta is the segment default: it seeds pages whose tuned
		// value is unknown. Install paths that know better (migration
		// records, the replicated log, holder-reported windows) overwrite
		// it per page so a rebuild never clobbers a tuned Δ it can see.
		l.pages[i].delta = meta.Delta
		l.pages[i].lastWriter = mmu.NoWriter
	}
	return l
}

// LibraryPageState is a read-only snapshot for tests and diagnostics.
type LibraryPageState struct {
	Readers mmu.Copyset
	Writer  int
	Clock   int
	Delta   time.Duration
	Queued  int
	Busy    bool

	// Tuning signals (DESIGN.md §16).
	Requests        int
	MeanGap         time.Duration
	Denied          int
	DenialRemaining time.Duration
	WriteSharing    bool
}

// LibraryState returns the library's view of a page. It panics when
// called at a non-library site: that is a test bug.
func (e *Engine) LibraryState(seg, page int32) LibraryPageState {
	sn := e.segs[seg]
	if sn == nil || sn.lib == nil {
		panic(fmt.Sprintf("core: LibraryState at non-library site %d", e.site))
	}
	p := &sn.lib.pages[page]
	return LibraryPageState{
		Readers: p.readers, Writer: p.writer, Clock: p.clock,
		Delta: p.delta, Queued: len(p.queue), Busy: p.busy,
		Requests: p.requests, MeanGap: p.gapEWMA,
		Denied: p.denied, DenialRemaining: p.denRemEWMA,
		WriteSharing: p.flipEWMA >= flipScale/2,
	}
}

// ErrNegativeDelta rejects a negative Δ: the window is a duration, and
// a negative one would corrupt every expiry comparison downstream
// (WindowRemaining, the checker's window invariant, the tuner's EWMA).
var ErrNegativeDelta = fmt.Errorf("core: negative Δ")

// SetPageDelta changes one page's Δ at the library (§8.0: "per-page
// Δs may be useful"). It takes effect on the next grant. Negative
// values are rejected with ErrNegativeDelta, leaving Δ unchanged.
//
// The segment-wide meta.Delta is deliberately untouched: it is the
// segment *default*, seeding pages whose tuned value is unknown — not
// a summary of what pages are granted with. Per-page truth lives in
// the page records (LibraryState reads it).
func (e *Engine) SetPageDelta(seg, page int32, delta time.Duration) error {
	if delta < 0 {
		return fmt.Errorf("%w: %v for seg %d page %d", ErrNegativeDelta, delta, seg, page)
	}
	sn := e.segs[seg]
	if sn == nil || sn.lib == nil {
		panic(fmt.Sprintf("core: SetPageDelta at non-library site %d", e.site))
	}
	sn.lib.pages[page].delta = delta
	// Δ retunes replicate fire-and-forget: losing one across a takeover
	// costs tuning quality, never coherence.
	e.replAppendSet(sn, page, replRecOf(&sn.lib.pages[page]))
	return nil
}

// SetSegmentDelta changes Δ for every page of the segment and resets
// the segment default (meta.Delta) that future rebuilds seed unknown
// pages with. Negative values are rejected with ErrNegativeDelta,
// leaving Δ unchanged.
func (e *Engine) SetSegmentDelta(seg int32, delta time.Duration) error {
	if delta < 0 {
		return fmt.Errorf("%w: %v for seg %d", ErrNegativeDelta, delta, seg)
	}
	sn := e.segs[seg]
	if sn == nil || sn.lib == nil {
		panic(fmt.Sprintf("core: SetSegmentDelta at non-library site %d", e.site))
	}
	for i := range sn.lib.pages {
		sn.lib.pages[i].delta = delta
		e.replAppendSet(sn, int32(i), replRecOf(&sn.lib.pages[i]))
	}
	sn.meta.Delta = delta
	return nil
}

// handleLibrary dispatches messages addressed to the library role.
func (e *Engine) handleLibrary(sn *segNode, m *wire.Msg) {
	if sn.lib == nil {
		if e.opt.Failover != nil {
			// A requester addressed us as library at the current epoch but
			// the role lives elsewhere. Reachable when the sender adopted
			// the epoch from a message that does not name the library
			// (adoptAhead keeps its stale belief) — after a voluntary
			// migration nobody broadcasts the new identity, so a silent
			// drop would strand the request until the RequestTimeout
			// backstop. Redirect to this site's own belief; chained
			// handoffs resolve hop by hop, each under a fresh notice.
			if sn.curLib != e.site {
				e.staleEpoch(sn, m)
				return
			}
			e.markStale()
			return
		}
		panic(fmt.Sprintf("core: site %d is not the library for: %v", e.site, m))
	}
	lib := sn.lib
	p := &lib.pages[m.Page]
	switch m.Kind {
	case wire.KReadReq, wire.KWriteReq:
		now := e.env.Now()
		write := m.Kind == wire.KWriteReq
		if e.opt.Tracer != nil {
			e.opt.Tracer.Record(trace.Entry{
				T: now, Seg: m.Seg, Page: m.Page, Site: m.From, Pid: m.Pid, Write: write,
			})
		}
		if p.requests > 0 {
			gap := now - p.lastReq
			if p.gapEWMA == 0 {
				p.gapEWMA = gap
			} else {
				p.gapEWMA = (3*p.gapEWMA + gap) / 4
			}
		}
		p.requests++
		p.lastReq = now
		// Feed the placement policy before queueing: if a migration
		// starts here the request joins the frozen queue and is re-aimed
		// at the successor when the handoff commits.
		e.noteDemand(sn, int(m.From))
		kind := reqRead
		if write {
			kind = reqWrite
		}
		p.queue = append(p.queue, libReq{kind: kind, site: int(m.From), pid: m.Pid, at: now})
		e.libProcess(sn, m.Page)

	case wire.KReleaseRead, wire.KReleaseWrite:
		kind := reqReleaseRead
		if m.Kind == wire.KReleaseWrite {
			kind = reqReleaseWrite
		}
		p.queue = append(p.queue, libReq{
			kind: kind, site: int(m.From), at: e.env.Now(),
			data: append([]byte(nil), m.Data...),
		})
		e.libProcess(sn, m.Page)

	case wire.KInstalled:
		if !p.busy || p.pendingInstalls <= 0 || m.Cycle != p.cycle {
			if e.rel != nil {
				// A completion from an aborted cycle, or a duplicate that
				// survived give-up: harmless once denial went out.
				e.markStale()
				return
			}
			panic(fmt.Sprintf("core: site %d: unexpected installed: %v", e.site, m))
		}
		p.pendingInstalls--
		if p.pendingInstalls == 0 {
			e.libFinishCycle(sn, m.Page)
			e.libProcess(sn, m.Page)
		}

	case wire.KBusy:
		if !p.busy || !p.grant.active || m.Cycle != p.cycle {
			if e.rel != nil {
				e.markStale()
				return
			}
			panic(fmt.Sprintf("core: site %d: busy with no cycle: %v", e.site, m))
		}
		e.stats.Retries++
		e.stats.WindowWait += m.Remaining
		// The library's only denial signal is this KBusy (PolicyQueue
		// absorbs waits at the clock site and never sends one). Feed the
		// per-page tuning record the clock site's global counters
		// (delta_denials / denial_remaining_ns) already see.
		p.denied++
		if p.denRemEWMA == 0 {
			p.denRemEWMA = m.Remaining
		} else {
			p.denRemEWMA = (3*p.denRemEWMA + m.Remaining) / 4
		}
		e.obs.Count(e.site, obs.CRetry)
		e.emit(obs.Event{Type: obs.EvRetry, Seg: m.Seg, Page: m.Page, Cycle: m.Cycle,
			Arg: int64(m.Remaining)})
		inval := p.grant.inval
		p.cancelRetry = e.env.After(m.Remaining, func() {
			// Guards for live mode, where a cancelled timer may already
			// have been queued: only retry the still-open cycle.
			if cur, ok := e.segs[m.Seg]; !ok || cur != sn {
				return
			}
			if !p.busy || !p.grant.active || p.grant.inval != inval {
				return
			}
			p.cancelRetry = nil
			p.grant.attempts++
			e.send(p.clock, inval)
		})

	default:
		panic(fmt.Sprintf("core: handleLibrary: %v", m))
	}
}

// libProcess drains a page's queue: it starts grant cycles until one
// is in flight or the queue is empty. Write requests are processed
// sequentially; all queued read requests are batched and granted
// together (§6.1).
func (e *Engine) libProcess(sn *segNode, page int32) {
	if sn.migOut != nil {
		// Frozen for an in-flight migration offer: queued requests are
		// either re-aimed at the successor (handoff commits) or served
		// when the offer aborts and libProcess re-runs.
		return
	}
	lib := sn.lib
	p := &lib.pages[page]
	for !p.busy && len(p.queue) > 0 {
		head := p.queue[0]
		switch head.kind {
		case reqRead:
			batch := e.libCollectReads(sn, page)
			if batch.Empty() {
				continue
			}
			e.libStartReadCycle(sn, page, batch)
		case reqWrite:
			p.queue = p.queue[1:]
			if head.site == p.writer {
				e.libAlready(sn, page, head.site, wire.Write)
				continue
			}
			e.libStartWriteCycle(sn, page, head.site)
		case reqReleaseRead, reqReleaseWrite:
			p.queue = p.queue[1:]
			e.libProcessRelease(sn, page, head)
		}
	}
}

// libCollectReads removes every read request from the queue, replies
// KAlready to already-satisfied ones, and returns the batch to grant
// together (§6.1: "Read requests for the same page are batched
// together and granted to all the readers at one time").
func (e *Engine) libCollectReads(sn *segNode, page int32) mmu.Copyset {
	p := &sn.lib.pages[page]
	var batch mmu.Copyset
	var rest []libReq
	for _, r := range p.queue {
		if r.kind != reqRead {
			rest = append(rest, r)
			continue
		}
		if batch.Has(r.site) {
			continue // duplicate; one grant covers it
		}
		if p.readers.Has(r.site) || r.site == p.writer {
			e.libAlready(sn, page, r.site, wire.Read)
			continue
		}
		batch = batch.Add(r.site)
	}
	p.queue = rest
	return batch
}

// libAlready tells a requester its request is already satisfied.
func (e *Engine) libAlready(sn *segNode, page int32, site int, mode wire.Mode) {
	e.send(site, &wire.Msg{Kind: wire.KAlready, Mode: mode, Seg: int32(sn.meta.ID), Page: page})
}

// libTunedDelta applies the dynamic tuner (AutoDelta controller or the
// TuneDelta hook) and returns the Δ to grant with. It runs at cycle
// open, so the tuned value lands on this cycle's invalidation and in
// its replicated post-record.
func (e *Engine) libTunedDelta(sn *segNode, page int32, write bool) time.Duration {
	p := &sn.lib.pages[page]
	if e.opt.AutoDelta != nil {
		return e.autoTuneDelta(sn, page)
	}
	if e.opt.TuneDelta != nil {
		d := e.opt.TuneDelta(TuneInfo{
			Seg:             int32(sn.meta.ID),
			Page:            page,
			Delta:           p.delta,
			Write:           write,
			MeanGap:         p.gapEWMA,
			Requests:        p.requests,
			Denied:          p.denied,
			DenialRemaining: p.denRemEWMA,
			WriteSharing:    p.flipEWMA >= flipScale/2,
		})
		// A negative return is a tuner bug; keep the previous Δ rather
		// than grant a corrupt window.
		if d >= 0 {
			p.delta = d
		}
	}
	return p.delta
}

// libStartReadCycle grants a batch of readers (Table 1 rows
// Readers/Readers and Writer/Readers).
func (e *Engine) libStartReadCycle(sn *segNode, page int32, batch mmu.Copyset) {
	p := &sn.lib.pages[page]
	delta := e.libTunedDelta(sn, page, false)
	p.busy = true
	p.pendingInstalls = batch.Count()
	p.cycle++
	e.obs.Count(e.site, obs.CGrantCycle)
	e.emit(obs.Event{Type: obs.EvGrantStart, Seg: int32(sn.meta.ID), Page: page, Cycle: p.cycle})
	if p.writer != mmu.NoWriter {
		// Downgrade the writer; it becomes (and stays) the clock site.
		prior := replRecOf(p)
		p.grant = grantCycle{
			active: true, batch: batch, oldWrite: true, oldClock: p.writer,
			inval: &wire.Msg{
				Kind: wire.KInval, Mode: wire.Read, Seg: int32(sn.meta.ID), Page: page,
				Readers: batch, Delta: delta, Cycle: p.cycle,
			},
		}
		post := replRec{writer: mmu.NoWriter, clock: p.writer, delta: p.delta,
			readers: mmu.CopysetOf(p.writer).Union(batch)}
		e.replGateCycleOpen(sn, page, prior, post, p.writer, p.grant.inval)
		return
	}
	// Pure reader extension: no clock check, no invalidation.
	prior := replRecOf(p)
	p.grant = grantCycle{active: true, batch: batch, oldClock: p.clock}
	post := prior
	post.readers = prior.readers.Union(batch)
	e.replGateCycleOpen(sn, page, prior, post, p.clock, &wire.Msg{
		Kind: wire.KAddReader, Seg: int32(sn.meta.ID), Page: page,
		Readers: batch, Delta: delta, Cycle: p.cycle,
	})
}

// libStartWriteCycle grants the writable copy to site `to` (Table 1
// rows Readers/Writer and Writer/Writer).
func (e *Engine) libStartWriteCycle(sn *segNode, page int32, to int) {
	p := &sn.lib.pages[page]
	delta := e.libTunedDelta(sn, page, true)
	upgrade := p.readers.Has(to)
	p.busy = true
	p.pendingInstalls = 1
	p.cycle++
	e.obs.Count(e.site, obs.CGrantCycle)
	e.emit(obs.Event{Type: obs.EvGrantStart, Seg: int32(sn.meta.ID), Page: page,
		To: int32(to), Cycle: p.cycle, Arg: 1})
	prior := replRecOf(p)
	p.grant = grantCycle{
		active: true, write: true, to: to,
		inval: &wire.Msg{
			Kind: wire.KInval, Mode: wire.Write, Seg: int32(sn.meta.ID), Page: page,
			Req: int32(to), Upgrade: upgrade, Readers: p.readers, Delta: delta,
			Cycle: p.cycle,
		},
	}
	post := replRec{writer: to, clock: to, delta: p.delta}
	e.replGateCycleOpen(sn, page, prior, post, p.clock, p.grant.inval)
}

// libFinishCycle commits the completed grant to the authoritative
// record and releases the page for the next queued request.
func (e *Engine) libFinishCycle(sn *segNode, page int32) {
	p := &sn.lib.pages[page]
	g := p.grant
	if !g.active {
		panic("core: finishing inactive cycle")
	}
	e.emit(obs.Event{Type: obs.EvGrantEnd, Seg: int32(sn.meta.ID), Page: page, Cycle: p.cycle})
	if g.write {
		p.writer = g.to
		p.readers = mmu.Copyset{}
		p.clock = g.to
		// Write-sharing indicator: fold whether this write grant changed
		// hands into the fixed-point flip EWMA. Alternating writers
		// (ping-pong) drive it toward flipScale; a stable writer decays
		// it toward zero. Read grants don't fold in — read batching is
		// already the protocol's answer to read sharing.
		if p.lastWriter != mmu.NoWriter {
			flip := 0
			if g.to != p.lastWriter {
				flip = flipScale
			}
			p.flipEWMA = (3*p.flipEWMA + flip) / 4
		}
		p.lastWriter = g.to
	} else if g.oldWrite {
		p.readers = mmu.CopysetOf(g.oldClock).Union(g.batch)
		p.writer = mmu.NoWriter
		p.clock = g.oldClock
	} else {
		p.readers = p.readers.Union(g.batch)
	}
	p.busy = false
	p.grant = grantCycle{}
	// The committed record supersedes the cycle's intent in the log.
	e.replAppendSet(sn, page, replRecOf(p))
}
