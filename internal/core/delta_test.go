package core

import (
	"errors"
	"testing"
	"time"
)

// TestSetDeltaRejectsNegative pins the Δ-validation bugfix: a negative
// window is a caller bug, rejected with ErrNegativeDelta and without
// touching the stored value, at both library setter entry points.
func TestSetDeltaRejectsNegative(t *testing.T) {
	n := newTestNet(t, 2, Options{})
	n.newSeg(2, 10*time.Millisecond)

	if err := n.engines[0].SetPageDelta(1, 0, -time.Millisecond); !errors.Is(err, ErrNegativeDelta) {
		t.Fatalf("SetPageDelta(-1ms) = %v, want ErrNegativeDelta", err)
	}
	if err := n.engines[0].SetSegmentDelta(1, -time.Second); !errors.Is(err, ErrNegativeDelta) {
		t.Fatalf("SetSegmentDelta(-1s) = %v, want ErrNegativeDelta", err)
	}
	for p := int32(0); p < 2; p++ {
		if d := n.engines[0].LibraryState(1, p).Delta; d != 10*time.Millisecond {
			t.Fatalf("page %d Δ = %v after rejected sets, want the original 10ms", p, d)
		}
	}

	// The valid paths still work and return nil.
	if err := n.engines[0].SetPageDelta(1, 1, 70*time.Millisecond); err != nil {
		t.Fatalf("SetPageDelta(70ms) = %v", err)
	}
	if err := n.engines[0].SetSegmentDelta(1, 20*time.Millisecond); err != nil {
		t.Fatalf("SetSegmentDelta(20ms) = %v", err)
	}
	if d := n.engines[0].LibraryState(1, 0).Delta; d != 20*time.Millisecond {
		t.Fatalf("page 0 Δ = %v, want 20ms", d)
	}
}

// TestTuneDeltaNegativeIgnored pins the tuner-validation bugfix: a
// tuner returning a negative Δ is ignored (the previous window stands)
// instead of being granted verbatim.
func TestTuneDeltaNegativeIgnored(t *testing.T) {
	calls := 0
	n := newTestNet(t, 2, Options{
		TuneDelta: func(ti TuneInfo) time.Duration {
			calls++
			return -5 * time.Millisecond
		},
	})
	n.newSeg(1, 15*time.Millisecond)
	n.acquire(1, 1, 0, true)
	n.settle()
	if calls == 0 {
		t.Fatal("tuner never consulted")
	}
	if w := n.engines[1].Seg(1).Aux(0).Window; w != 15*time.Millisecond {
		t.Fatalf("granted window = %v, want the untuned 15ms (negative tuner return leaked)", w)
	}
	if d := n.engines[0].LibraryState(1, 0).Delta; d != 15*time.Millisecond {
		t.Fatalf("library Δ = %v, want 15ms", d)
	}
}

// TestDegradedErrorClearedByInstall is the degraded-sticky regression:
// a page that was failed back (degraded grant) and later installed by a
// successful grant must not keep serving the cached error — the next
// access after the peer heals retries cleanly.
func TestDegradedErrorClearedByInstall(t *testing.T) {
	n := newTestNet(t, 2, Options{Reliability: &Reliability{}})
	n.newSeg(1, 0)
	sn := n.engines[1].segs[1]
	// A past unreachable-peer verdict is still cached when a grant cycle
	// finally installs the page.
	sn.pageErr = map[int32]error{0: ErrUnreachable}
	n.acquire(1, 1, 0, false)
	n.settle()
	if err := n.engines[1].FaultError(1, 0); err != nil {
		t.Fatalf("FaultError after a successful install = %v, want nil (stale degraded verdict)", err)
	}
}
